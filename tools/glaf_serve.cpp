// glaf_serve — the resident GLAF kernel server.
//
// Server mode (default): bind a Unix-domain socket and serve until a
// client sends shutdown (or SIGINT/SIGTERM):
//
//   glaf_serve --socket=/tmp/glaf.sock --threads=8
//   glaf_serve --socket=/tmp/glaf.sock --preload=sarb --tier=opt
//
// Options: --socket=PATH (default $XDG_RUNTIME_DIR|/tmp + /glaf-serve-$UID.sock),
//          --threads=N (batcher sweep width), --max-batch=N,
//          --preload=sarb|fun3d (warm a session before accepting),
//          --tier=plan|interp|opt (ceiling for preload + --client),
//          --policy=v0..v3, --portable, --cc=PATH, --cache-dir=DIR,
//          --sync-compile (ladder compiles block the load reply —
//          deterministic starts for tests and benches),
//          --max-inflight=N / --max-conn-pending=N (admission control;
//          overload answers kBusy instead of queueing without bound),
//          --drain-timeout-ms=N (SIGTERM grace window),
//          --breaker-threshold=N / --breaker-backoff-ms=N (per-session
//          circuit breaker on repeated native failures).
//
// Signals: SIGTERM drains (stop accepting, finish in-flight work, then
// exit); SIGINT stops immediately.
//
// Client mode: --client drives a running daemon over the same socket:
//
//   glaf_serve --client --socket=/tmp/glaf.sock --load=sarb --run
//   glaf_serve --client --socket=/tmp/glaf.sock --stats
//   glaf_serve --client --socket=/tmp/glaf.sock --health
//   glaf_serve --client --socket=/tmp/glaf.sock --shutdown
//   glaf_serve --client --socket=/tmp/glaf.sock --smoke
//
// Client robustness flags: --timeout-ms=N (reply read timeout, so a
// wedged daemon costs a bounded error instead of a hang),
// --connect-timeout-ms=N, --retries=N (reconnect + resend pure
// requests after transport faults, with exponential backoff),
// --deadline-ms=N (server-side deadline on --run).
//
// --smoke runs the full promotion dance: load sarb, run on the plan
// tier, wait for the native promotion, run again, verify the two
// replies agree bitwise (tier <= interp), print stats, exit 0/1.

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "support/cli.hpp"

using namespace glaf;

namespace {

int fail(const std::string& message) {
  std::fprintf(stderr, "glaf_serve: %s\n", message.c_str());
  return 1;
}

std::string default_socket_path() {
  const char* runtime_dir = std::getenv("XDG_RUNTIME_DIR");
  const std::string dir = runtime_dir != nullptr ? runtime_dir : "/tmp";
  return dir + "/glaf-serve-" + std::to_string(::getuid()) + ".sock";
}

StatusOr<serve::ExecConfig> parse_exec_config(const CliArgs& args) {
  serve::ExecConfig config;
  const std::string tier = args.get("tier", "interp");
  if (tier == "plan") {
    config.target_tier = 0;
  } else if (tier == "interp") {
    config.target_tier = 1;
  } else if (tier == "opt") {
    config.target_tier = 2;
  } else {
    return invalid_argument("unknown --tier '" + tier +
                            "' (plan|interp|opt)");
  }
  const std::string policy = args.get("policy", "v0");
  if (policy.size() != 2 || policy[0] != 'v' || policy[1] < '0' ||
      policy[1] > '3') {
    return invalid_argument("unknown --policy '" + policy + "' (v0..v3)");
  }
  config.policy = static_cast<std::uint8_t>(policy[1] - '0');
  config.portable = args.get_bool("portable", false);
  return config;
}

serve::Server* g_server = nullptr;

void handle_signal(int sig) {
  // Not strictly async-signal-safe (both paths take locks); acceptable
  // for the interactive-interrupt path — the clean shutdown path is
  // the kShutdown frame. SIGTERM is the orchestrated-replacement
  // signal: drain so admitted work still answers; SIGINT is the
  // operator's "now": stop immediately.
  if (g_server == nullptr) return;
  if (sig == SIGTERM) {
    g_server->drain();
  } else {
    g_server->stop();
  }
}

int run_server(const CliArgs& args, const std::string& socket_path) {
  serve::Server::Options options;
  options.socket_path = socket_path;
  options.threads = static_cast<int>(args.get_int("threads", 4));
  options.max_batch =
      static_cast<std::size_t>(args.get_int("max-batch", 4096));
  options.cc = args.get("cc", "");
  options.cache_dir = args.get("cache-dir", "");
  options.max_pool = static_cast<std::size_t>(args.get_int("max-pool", 16));
  options.sync_compile = args.get_bool("sync-compile", false);
  options.max_inflight =
      static_cast<std::size_t>(args.get_int("max-inflight", 4096));
  options.max_conn_pending =
      static_cast<std::size_t>(args.get_int("max-conn-pending", 1024));
  options.drain_timeout_ms =
      static_cast<int>(args.get_int("drain-timeout-ms", 10000));
  options.breaker_threshold =
      static_cast<int>(args.get_int("breaker-threshold", 3));
  options.breaker_backoff_ms =
      static_cast<int>(args.get_int("breaker-backoff-ms", 1000));

  serve::Server server(options);

  const std::string preload = args.get("preload", "");
  if (!preload.empty()) {
    const auto config = parse_exec_config(args);
    if (!config.is_ok()) return fail(config.status().message());
    serve::LoadProgramMsg msg;
    msg.builtin = preload;
    const auto session_config =
        serve::resolve_config(config.value(), options);
    if (!session_config.is_ok()) {
      return fail(session_config.status().message());
    }
    auto program = serve::resolve_program(msg);
    if (!program.is_ok()) return fail(program.status().message());
    const serve::SessionRegistry::Entry entry = server.registry().get_or_create(
        std::move(program).value(), session_config.value());
    if (session_config.value().target_tier > serve::Tier::kPlan) {
      server.compile_queue().enqueue(entry.session);
      if (options.sync_compile) server.compile_queue().wait_idle();
    }
    std::fprintf(stderr, "glaf_serve: preloaded %s (session %llu, tier %s)\n",
                 preload.c_str(),
                 static_cast<unsigned long long>(entry.session->id()),
                 to_string(entry.session->tier()));
  }

  const Status started = server.start();
  if (!started.is_ok()) return fail(started.message());
  std::fprintf(stderr, "glaf_serve: listening on %s (pid %d)\n",
               socket_path.c_str(), static_cast<int>(::getpid()));

  g_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  server.wait();
  g_server = nullptr;
  std::fprintf(stderr, "glaf_serve: shut down\n");
  return 0;
}

/// --smoke: the end-to-end promotion dance against a running daemon.
int run_smoke(serve::Client& client, const serve::ExecConfig& config) {
  const auto load = client.load_builtin("sarb", config);
  if (!load.is_ok()) return fail("load: " + load.status().message());
  const std::uint64_t sid = load.value().session_id;
  std::fprintf(stderr, "smoke: session %llu tier %u hash %s\n",
               static_cast<unsigned long long>(sid),
               static_cast<unsigned>(load.value().current_tier),
               load.value().program_hash.c_str());

  const auto first = client.run(sid, "entropy_interface");
  if (!first.is_ok()) return fail("run: " + first.status().message());
  std::fprintf(stderr, "smoke: first run tier %u result %.17g\n",
               static_cast<unsigned>(first.value().tier),
               first.value().result);

  // Wait (bounded) for the background ladder to finish, then run again.
  serve::RunReplyMsg second = first.value();
  for (int i = 0; i < 600; ++i) {
    const auto reply = client.run(sid, "entropy_interface");
    if (!reply.is_ok()) return fail("run: " + reply.status().message());
    second = reply.value();
    if (second.tier >= config.target_tier) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "smoke: settled run tier %u result %.17g\n",
               static_cast<unsigned>(second.tier), second.result);

  if (config.target_tier >= 1 && second.tier < 1) {
    const auto stats = client.stats(sid);
    std::fprintf(stderr, "smoke: no promotion; session stats: %s\n",
                 stats.is_ok() ? stats.value().c_str() : "?");
    return fail("session never promoted to a native tier");
  }
  // Tiers 0/1 are bit-identical by contract; opt is ulp-bounded, so
  // only check exactness when the settled tier is still interp math.
  if (second.tier <= 1 && second.result != first.value().result) {
    return fail("native result differs from plan result");
  }

  const auto stats = client.stats(sid);
  if (!stats.is_ok()) return fail("stats: " + stats.status().message());
  std::printf("%s\n", stats.value().c_str());
  std::fprintf(stderr, "smoke: OK\n");
  return 0;
}

int run_client(const CliArgs& args, const std::string& socket_path) {
  serve::Client::Options copts;
  copts.read_timeout_ms =
      static_cast<int>(args.get_int("timeout-ms", 30000));
  copts.connect_timeout_ms =
      static_cast<int>(args.get_int("connect-timeout-ms", 10000));
  copts.retries = static_cast<int>(args.get_int("retries", 0));
  copts.retry_backoff_ms =
      static_cast<int>(args.get_int("retry-backoff-ms", 50));
  serve::Client client;
  const Status connected = client.connect(socket_path, copts);
  if (!connected.is_ok()) return fail(connected.message());

  const auto config = parse_exec_config(args);
  if (!config.is_ok()) return fail(config.status().message());

  if (args.get_bool("health", false)) {
    const auto health = client.health();
    if (!health.is_ok()) return fail("health: " + health.status().message());
    const serve::HealthReplyMsg& h = health.value();
    std::printf("{\"ready\": %s, \"draining\": %s, \"top_tier\": %u, "
                "\"sessions\": %u, \"inflight\": %u, \"queued\": %u, "
                "\"compile_queued\": %u, \"max_inflight\": %u}\n",
                h.ready != 0 ? "true" : "false",
                h.draining != 0 ? "true" : "false",
                static_cast<unsigned>(h.top_tier), h.sessions, h.inflight,
                h.queued, h.compile_queued, h.max_inflight);
    return h.ready != 0 ? 0 : 1;
  }

  if (args.get_bool("smoke", false)) {
    return run_smoke(client, config.value());
  }

  std::uint64_t session_id = 0;
  const std::string load = args.get("load", "");
  if (!load.empty()) {
    const auto reply = client.load_builtin(load, config.value());
    if (!reply.is_ok()) return fail("load: " + reply.status().message());
    session_id = reply.value().session_id;
    std::fprintf(stderr, "glaf_serve: session %llu tier %u\n",
                 static_cast<unsigned long long>(session_id),
                 static_cast<unsigned>(reply.value().current_tier));
  }

  if (args.has("run")) {
    if (session_id == 0) {
      session_id = static_cast<std::uint64_t>(args.get_int("session", 0));
    }
    if (session_id == 0) return fail("--run needs --load or --session");
    std::string entry = args.get("run", "");
    if (entry.empty() || entry == "true") entry = "entropy_interface";
    const auto deadline_ms =
        static_cast<std::uint32_t>(args.get_int("deadline-ms", 0));
    const auto reply = client.run(session_id, entry, {}, deadline_ms);
    if (!reply.is_ok()) return fail("run: " + reply.status().message());
    std::printf("%.17g\n", reply.value().result);
    std::fprintf(stderr, "glaf_serve: ran %s at tier %u\n", entry.c_str(),
                 static_cast<unsigned>(reply.value().tier));
  }

  if (args.get_bool("stats", false)) {
    const auto stats = client.stats(session_id);
    if (!stats.is_ok()) return fail("stats: " + stats.status().message());
    std::printf("%s\n", stats.value().c_str());
  }

  if (args.get_bool("shutdown", false)) {
    const Status st = client.shutdown_server();
    if (!st.is_ok()) return fail("shutdown: " + st.message());
    std::fprintf(stderr, "glaf_serve: server shut down\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string socket_path = args.get("socket", default_socket_path());
  if (args.get_bool("client", false)) {
    return run_client(args, socket_path);
  }
  return run_server(args, socket_path);
}
