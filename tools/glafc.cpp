// glafc — the GLAF command-line driver.
//
// Loads a serialized GLAF program (or one of the built-in case-study
// programs), validates it, runs the auto-parallelization analysis, and
// emits code or reports:
//
//   glafc program.glaf --emit=fortran --policy=v3        # FORTRAN + OMP
//   glafc --builtin=sarb --emit=c --serial               # C, no OpenMP
//   glafc --builtin=fun3d --emit=opencl                  # kernels + host
//   glafc program.glaf --report                          # Markdown report
//   glafc --builtin=sarb --dump                          # IR text format
//
// Options: --emit=fortran|c|opencl, --policy=v0..v3, --serial, --soa,
//          --save-temporaries, --no-collapse, --out=FILE,
//          --opt=inline,fold (IR passes applied in order before analysis),
//          --schedule=default|static|dynamic [--schedule-chunk=N].

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/transform.hpp"
#include "codegen/c.hpp"
#include "codegen/fortran.hpp"
#include "codegen/opencl.hpp"
#include "codegen/report.hpp"
#include "core/serialize.hpp"
#include "core/validate.hpp"
#include "fuliou/glaf_kernels.hpp"
#include "fun3d/glaf_fun3d.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"

using namespace glaf;

namespace {

int fail(const std::string& message) {
  std::fprintf(stderr, "glafc: %s\n", message.c_str());
  return 1;
}

StatusOr<Program> load_program(const CliArgs& args) {
  const std::string builtin = args.get("builtin", "");
  if (builtin == "sarb") return fuliou::build_sarb_program();
  if (builtin == "fun3d") return fun3d::build_fun3d_glaf_program();
  if (!builtin.empty()) {
    return invalid_argument("unknown builtin '" + builtin +
                            "' (try sarb or fun3d)");
  }
  if (args.positional().empty()) {
    return invalid_argument(
        "no input: pass a .glaf file or --builtin=sarb|fun3d");
  }
  std::ifstream in(args.positional()[0]);
  if (!in) {
    return not_found("cannot open '" + args.positional()[0] + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_program(text.str());
}

int write_output(const CliArgs& args, const std::string& content) {
  const std::string path = args.get("out", "");
  if (path.empty()) {
    std::fputs(content.c_str(), stdout);
    return 0;
  }
  std::ofstream out(path);
  if (!out) return fail("cannot write '" + path + "'");
  out << content;
  std::fprintf(stderr, "glafc: wrote %zu bytes to %s\n", content.size(),
               path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  auto loaded = load_program(args);
  if (!loaded.is_ok()) return fail(loaded.status().message());
  Program program = std::move(loaded).value();

  // Optimization pipeline: named passes, applied in order.
  for (const std::string& pass : split(args.get("opt", ""), ',')) {
    if (pass.empty()) continue;
    if (pass == "inline") {
      InlineResult r = inline_trivial_calls(program);
      std::fprintf(stderr, "glafc: inlined %d call(s)\n", r.inlined_calls);
      program = std::move(r.program);
    } else if (pass == "fold") {
      FoldResult r = fold_constants(program);
      std::fprintf(stderr, "glafc: folded %d constant expression(s)\n",
                   r.folded_exprs);
      program = std::move(r.program);
    } else {
      return fail("unknown --opt pass '" + pass + "' (inline|fold)");
    }
  }

  const std::vector<Diagnostic> diags = validate(program);
  for (const Diagnostic& d : diags) {
    std::fprintf(stderr, "glafc: %s: %s: %s\n",
                 d.severity == Severity::kError ? "error" : "warning",
                 d.where.c_str(), d.message.c_str());
  }
  if (!is_valid(diags)) return 1;

  if (args.get_bool("dump", false)) {
    return write_output(args, serialize_program(program));
  }

  const ProgramAnalysis analysis = analyze_program(program);

  if (args.get_bool("report", false)) {
    return write_output(args, parallelization_report(program, analysis));
  }

  CodegenOptions opts;
  const std::string policy = args.get("policy", "v0");
  if (policy == "v0") {
    opts.policy = DirectivePolicy::kV0;
  } else if (policy == "v1") {
    opts.policy = DirectivePolicy::kV1;
  } else if (policy == "v2") {
    opts.policy = DirectivePolicy::kV2;
  } else if (policy == "v3") {
    opts.policy = DirectivePolicy::kV3;
  } else {
    return fail("unknown policy '" + policy + "' (v0..v3)");
  }
  opts.enable_openmp = !args.get_bool("serial", false);
  opts.soa_layout = args.get_bool("soa", false);
  opts.save_temporaries = args.get_bool("save-temporaries", false);
  opts.emit_collapse = !args.get_bool("no-collapse", false);
  const std::string schedule = args.get("schedule", "default");
  if (schedule == "dynamic") {
    opts.schedule = OmpSchedule::kDynamic;
  } else if (schedule == "static") {
    opts.schedule = OmpSchedule::kStatic;
  } else if (schedule != "default") {
    return fail("unknown --schedule '" + schedule +
                "' (default|static|dynamic)");
  }
  opts.schedule_chunk =
      static_cast<int>(args.get_int("schedule-chunk", 0));

  const std::string emit = args.get("emit", "fortran");
  if (emit == "fortran") {
    opts.language = Language::kFortran;
    return write_output(args, generate_fortran(program, analysis, opts).source);
  }
  if (emit == "c") {
    opts.language = Language::kC;
    return write_output(args, generate_c(program, analysis, opts).source);
  }
  if (emit == "opencl") {
    opts.language = Language::kOpenCL;
    const OpenClCode code = generate_opencl(program, analysis, opts);
    return write_output(args, code.kernels + "\n" + code.host);
  }
  return fail("unknown --emit '" + emit + "' (fortran|c|opencl)");
}
