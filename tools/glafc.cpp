// glafc — the GLAF command-line driver.
//
// Loads a serialized GLAF program (or one of the built-in case-study
// programs), validates it, runs the auto-parallelization analysis, and
// emits code or reports:
//
//   glafc program.glaf --emit=fortran --policy=v3        # FORTRAN + OMP
//   glafc --builtin=sarb --emit=c --serial               # C, no OpenMP
//   glafc --builtin=fun3d --emit=opencl                  # kernels + host
//   glafc program.glaf --report                          # Markdown report
//   glafc --builtin=sarb --dump                          # IR text format
//   glafc program.glaf --run=ENTRY --engine=plan         # execute directly
//
// Options: --emit=fortran|c|opencl, --policy=v0..v4 (--policies is an
//          alias), --serial, --soa,
//          --save-temporaries, --no-collapse, --out=FILE,
//          --opt=inline,fold (IR passes applied in order before analysis),
//          --schedule=default|static|dynamic [--schedule-chunk=N].
// Run mode: --run[=ENTRY] executes the program on the interpreter
//          (ENTRY defaults to the first zero-parameter subroutine);
//          --engine=plan|treewalk|native selects the execution engine
//          (plan is the default: compiled flat plans on the bytecode VM;
//          treewalk is the reference AST interpreter; native JIT-compiles
//          the program to a shared object and runs it in-process, falling
//          back to plans when it cannot), --parallel enables the
//          auto-parallelized path under --policy, --threads=N sizes it.
//          --strict-engine turns any native-engine fallback — whole-engine
//          unavailability or per-call plan routing — into a non-zero exit
//          instead of a warning. --json prints a machine-readable run
//          report (entry, engine, result, stats, native_report) on
//          stdout — the same native_report schema the glaf_serve stats
//          endpoint embeds.
//          With --engine=native, --emit=interp|opt selects the emission
//          tier: interp (default) is the bit-identical all-double kernel;
//          opt stores grids in native widths with restrict pointers and
//          compiles -O3 with contraction on (serial dispatch, results
//          within a ulp budget of the interpreter). --portable drops
//          -march=native from the opt tier for relocatable kernel caches.
//          --profile-out=FILE runs the entry serially under the memory
//          profiler and writes the observed dependence profile;
//          --profile=FILE attaches a recorded profile so --policy=v4
//          --parallel can speculate on profile-clean serial steps
//          (misspeculating steps are validated, re-run serially, and
//          demoted — see DESIGN.md §10).

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/speculate.hpp"
#include "analysis/transform.hpp"
#include "codegen/c.hpp"
#include "codegen/fortran.hpp"
#include "codegen/opencl.hpp"
#include "codegen/report.hpp"
#include "core/serialize.hpp"
#include "core/validate.hpp"
#include "fuliou/glaf_kernels.hpp"
#include "fun3d/glaf_fun3d.hpp"
#include "interp/machine.hpp"
#include "interp/report_json.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

using namespace glaf;

namespace {

int fail(const std::string& message) {
  std::fprintf(stderr, "glafc: %s\n", message.c_str());
  return 1;
}

StatusOr<Program> load_program(const CliArgs& args) {
  const std::string builtin = args.get("builtin", "");
  if (builtin == "sarb") return fuliou::build_sarb_program();
  if (builtin == "fun3d") return fun3d::build_fun3d_glaf_program();
  if (!builtin.empty()) {
    return invalid_argument("unknown builtin '" + builtin +
                            "' (try sarb or fun3d)");
  }
  if (args.positional().empty()) {
    return invalid_argument(
        "no input: pass a .glaf file or --builtin=sarb|fun3d");
  }
  std::ifstream in(args.positional()[0]);
  if (!in) {
    return not_found("cannot open '" + args.positional()[0] + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_program(text.str());
}

StatusOr<DirectivePolicy> parse_policy(const std::string& policy) {
  if (policy == "v0") return DirectivePolicy::kV0;
  if (policy == "v1") return DirectivePolicy::kV1;
  if (policy == "v2") return DirectivePolicy::kV2;
  if (policy == "v3") return DirectivePolicy::kV3;
  if (policy == "v4") return DirectivePolicy::kV4;
  return invalid_argument("unknown policy '" + policy + "' (v0..v4)");
}

/// --policy with --policies accepted as an alias (the planner-pass
/// spelling); --policy wins when both are given.
std::string policy_arg(const CliArgs& args) {
  if (args.has("policy")) return args.get("policy", "v0");
  return args.get("policies", "v0");
}

/// Execute the program on the interpreter (--run mode).
int run_program(const CliArgs& args, Program program) {
  InterpOptions iopts;
  const std::string engine = args.get("engine", "plan");
  if (engine == "plan") {
    iopts.engine = ExecEngine::kPlan;
  } else if (engine == "treewalk") {
    iopts.engine = ExecEngine::kTreeWalk;
  } else if (engine == "native") {
    iopts.engine = ExecEngine::kNative;
  } else {
    return fail("unknown --engine '" + engine + "' (plan|treewalk|native)");
  }
  const auto policy = parse_policy(policy_arg(args));
  if (!policy.is_ok()) return fail(policy.status().message());
  iopts.policy = policy.value();
  iopts.parallel = args.get_bool("parallel", false);

  // Dependence profiling (policy v4's input): --profile-out records a
  // serial profiling run; --profile attaches a recorded profile for the
  // speculation pass.
  const std::string profile_out = args.get("profile-out", "");
  const std::string profile_in = args.get("profile", "");
  if (!profile_out.empty() && !profile_in.empty()) {
    return fail("--profile and --profile-out are mutually exclusive");
  }
  iopts.profile_deps = !profile_out.empty();
  std::shared_ptr<const DepProfile> dep_profile;
  if (!profile_in.empty()) {
    std::ifstream pin(profile_in);
    if (!pin) return fail("cannot open profile '" + profile_in + "'");
    std::ostringstream ptext;
    ptext << pin.rdbuf();
    auto parsed = parse_dep_profile(ptext.str());
    if (!parsed.is_ok()) {
      return fail("--profile: " + std::string(parsed.status().message()));
    }
    dep_profile = std::make_shared<DepProfile>(std::move(parsed).value());
    iopts.dep_profile = dep_profile;
  }
  iopts.num_threads = static_cast<int>(args.get_int("threads", 4));
  iopts.save_temporaries = args.get_bool("save-temporaries", false);
  iopts.dynamic_schedule = args.get("schedule", "default") == "dynamic";
  if (args.has("schedule-chunk")) {
    iopts.schedule_chunk = args.get_int("schedule-chunk", 4);
  }

  // In run mode --emit selects the native emission tier, not a target
  // language: interp is the bitwise contract, opt the ulp-bounded one.
  const std::string tier = args.get("emit", "interp");
  if (tier == "opt") {
    if (iopts.engine != ExecEngine::kNative) {
      return fail("--emit=opt requires --engine=native");
    }
    iopts.native_model = NumericModel::kOpt;
  } else if (tier != "interp") {
    return fail("unknown --emit '" + tier + "' in run mode (interp|opt)");
  }
  iopts.native_portable = args.get_bool("portable", false);

  std::string entry = args.get("run", "");
  if (entry == "true") entry.clear();  // bare --run (CliArgs boolean form)
  if (entry.empty()) {
    for (const Function& fn : program.functions) {
      if (fn.return_type == DataType::kVoid && fn.params.empty()) {
        entry = fn.name;
        break;
      }
    }
    if (entry.empty()) {
      return fail("--run: no zero-parameter subroutine to use as entry");
    }
  }

  const bool strict_engine = args.get_bool("strict-engine", false);
  if (strict_engine && iopts.engine != ExecEngine::kNative) {
    return fail("--strict-engine requires --engine=native");
  }
  if (dep_profile != nullptr &&
      dep_profile->program_hash != dep_profile_program_hash(program)) {
    return fail(
        "--profile: dependence profile was recorded for a different"
        " program");
  }
  Machine m(std::move(program), iopts);
  if (iopts.engine == ExecEngine::kNative && !m.native_report().available) {
    if (strict_engine) {
      return fail("native engine unavailable (" +
                  m.native_report().fallback_reason + ")");
    }
    std::fprintf(stderr,
                 "glafc: warning: native engine unavailable (%s);"
                 " falling back to the plan engine\n",
                 m.native_report().fallback_reason.c_str());
  }
  const StatusOr<double> result = m.call(entry);
  if (!result.is_ok()) {
    return fail("run '" + entry + "': " + std::string(result.status().message()));
  }
  const InterpStats& st = m.stats();
  if (!profile_out.empty()) {
    const DepProfile recorded = m.dep_profile();
    std::ofstream pout(profile_out);
    if (!pout) return fail("cannot write profile '" + profile_out + "'");
    pout << serialize_dep_profile(recorded);
    std::fprintf(stderr,
                 "glafc: wrote dependence profile (%zu step record(s))"
                 " to %s\n",
                 recorded.steps.size(), profile_out.c_str());
  }
  if (args.get_bool("json", false)) {
    // Machine-readable run report on stdout: one object, the
    // native_report under the same schema the serve stats endpoint
    // embeds (src/interp/report_json.hpp is the shared renderer).
    JsonWriter w;
    w.begin_object();
    w.key("entry");
    w.value(entry);
    w.key("engine");
    w.value(engine);
    w.key("result");
    w.value(result.value());
    w.key("stats");
    w.raw(interp_stats_json(st));
    w.key("native_report");
    if (iopts.engine == ExecEngine::kNative) {
      w.raw(native_report_json(m.native_report()));
    } else {
      w.raw("null");
    }
    w.end_object();
    std::printf("%s\n", std::move(w).str().c_str());
  }
  std::fprintf(stderr,
               "glafc: ran %s (engine=%s): result %.17g, %llu steps, "
               "%llu iterations, %llu parallel regions\n",
               entry.c_str(), engine.c_str(), result.value(),
               static_cast<unsigned long long>(st.steps_executed),
               static_cast<unsigned long long>(st.loop_iterations),
               static_cast<unsigned long long>(st.parallel_regions));
  if (iopts.policy == DirectivePolicy::kV4 && dep_profile != nullptr) {
    const NativeReport& nr = m.native_report();
    std::fprintf(stderr,
                 "glafc: speculation: %llu step(s) promoted, %llu region(s),"
                 " %llu validation(s), %llu misspeculation(s),"
                 " %llu step(s) demoted\n",
                 static_cast<unsigned long long>(nr.spec_promoted_steps),
                 static_cast<unsigned long long>(st.spec_regions),
                 static_cast<unsigned long long>(st.spec_validations),
                 static_cast<unsigned long long>(st.spec_misspeculations),
                 static_cast<unsigned long long>(nr.spec_demoted_steps));
  }
  if (iopts.engine == ExecEngine::kNative && m.native_report().available) {
    const NativeReport& nr = m.native_report();
    std::fprintf(stderr,
                 "glafc: native kernel %s, model=%s (%llu native call(s),"
                 " %llu fallback call(s), %llu parallel call(s),"
                 " %llu parallel region(s), %d thread(s))\n",
                 nr.cache_hit ? "loaded from cache" : "compiled",
                 to_string(nr.model),
                 static_cast<unsigned long long>(nr.native_calls),
                 static_cast<unsigned long long>(nr.fallback_calls),
                 static_cast<unsigned long long>(nr.parallel_calls),
                 static_cast<unsigned long long>(nr.parallel_regions),
                 nr.num_threads);
    if (strict_engine && nr.fallback_calls > 0) {
      return fail(cat(nr.fallback_calls,
                      " call(s) fell back to the plan engine"
                      " (--strict-engine)"));
    }
  }
  return 0;
}

int write_output(const CliArgs& args, const std::string& content) {
  const std::string path = args.get("out", "");
  if (path.empty()) {
    std::fputs(content.c_str(), stdout);
    return 0;
  }
  std::ofstream out(path);
  if (!out) return fail("cannot write '" + path + "'");
  out << content;
  std::fprintf(stderr, "glafc: wrote %zu bytes to %s\n", content.size(),
               path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  auto loaded = load_program(args);
  if (!loaded.is_ok()) return fail(loaded.status().message());
  Program program = std::move(loaded).value();

  // Optimization pipeline: named passes, applied in order.
  for (const std::string& pass : split(args.get("opt", ""), ',')) {
    if (pass.empty()) continue;
    if (pass == "inline") {
      InlineResult r = inline_trivial_calls(program);
      std::fprintf(stderr, "glafc: inlined %d call(s)\n", r.inlined_calls);
      program = std::move(r.program);
    } else if (pass == "fold") {
      FoldResult r = fold_constants(program);
      std::fprintf(stderr, "glafc: folded %d constant expression(s)\n",
                   r.folded_exprs);
      program = std::move(r.program);
    } else {
      return fail("unknown --opt pass '" + pass + "' (inline|fold)");
    }
  }

  const std::vector<Diagnostic> diags = validate(program);
  for (const Diagnostic& d : diags) {
    std::fprintf(stderr, "glafc: %s: %s: %s\n",
                 d.severity == Severity::kError ? "error" : "warning",
                 d.where.c_str(), d.message.c_str());
  }
  if (!is_valid(diags)) return 1;

  if (args.get_bool("dump", false)) {
    return write_output(args, serialize_program(program));
  }

  if (args.has("run")) return run_program(args, std::move(program));

  const ProgramAnalysis analysis = analyze_program(program);

  if (args.get_bool("report", false)) {
    return write_output(args, parallelization_report(program, analysis));
  }

  CodegenOptions opts;
  const auto policy = parse_policy(policy_arg(args));
  if (!policy.is_ok()) return fail(policy.status().message());
  opts.policy = policy.value();
  opts.enable_openmp = !args.get_bool("serial", false);
  opts.soa_layout = args.get_bool("soa", false);
  opts.save_temporaries = args.get_bool("save-temporaries", false);
  opts.emit_collapse = !args.get_bool("no-collapse", false);
  const std::string schedule = args.get("schedule", "default");
  if (schedule == "dynamic") {
    opts.schedule = OmpSchedule::kDynamic;
  } else if (schedule == "static") {
    opts.schedule = OmpSchedule::kStatic;
  } else if (schedule != "default") {
    return fail("unknown --schedule '" + schedule +
                "' (default|static|dynamic)");
  }
  opts.schedule_chunk =
      static_cast<int>(args.get_int("schedule-chunk", 0));

  const std::string emit = args.get("emit", "fortran");
  if (emit == "fortran") {
    opts.language = Language::kFortran;
    return write_output(args, generate_fortran(program, analysis, opts).source);
  }
  if (emit == "c") {
    opts.language = Language::kC;
    return write_output(args, generate_c(program, analysis, opts).source);
  }
  if (emit == "opencl") {
    opts.language = Language::kOpenCL;
    const OpenClCode code = generate_opencl(program, analysis, opts);
    return write_output(args, code.kernels + "\n" + code.host);
  }
  return fail("unknown --emit '" + emit + "' (fortran|c|opencl)");
}
