// glaf-fuzz — property-based fuzzer driving the multi-backend
// differential oracle. Generates random valid GLAF programs, runs each
// through the serial interpreter, the parallel interpreter under every
// directive policy, and the compiled C back-end, and reports any
// divergence. Failing cases are greedily shrunk and written as repro
// files that replay byte-identically from the recorded seed.
//
// Usage:
//   glaf-fuzz --seeds 0:200            sweep a seed range
//   glaf-fuzz --time-budget 60         sweep from --seeds start until the
//                                      wall-clock budget (seconds) runs out
//   glaf-fuzz --shrink                 shrink failures before reporting
//   glaf-fuzz --repro-dir DIR          write <DIR>/seed<N>.glaf on failure
//   glaf-fuzz --replay FILE.glaf       run the oracle on one repro file
//   glaf-fuzz --dump-seed N            print the generated program and exit
//   glaf-fuzz --no-cc                  skip the compiled-C backend
//   glaf-fuzz --no-native              skip the in-process native JIT backend
//   glaf-fuzz --no-parallel            skip the parallel-interpreter backends
//   glaf-fuzz --engine=E               engines to cross-check: plan, treewalk
//                                      or both (default both) select the
//                                      interpreter legs; native runs only the
//                                      in-process JIT leg (no subprocess C)
//   glaf-fuzz --parallel               add the parallel-native + deterministic
//                                      parallel-plan legs, held to bitwise
//                                      equality under every selected policy
//   glaf-fuzz --fuse                   add the fused-region parallel-native
//                                      legs (ABI v3: adjacent fusable steps
//                                      share one fork/join), also bitwise
//   glaf-fuzz --speculate              add the policy-v4 legs: a bitwise
//                                      serial profiling run, the speculative
//                                      parallel plan engine driven by that
//                                      profile, and the same run with the
//                                      validation fault site armed (forced
//                                      misspeculation + serial re-runs) —
//                                      all three held to exact equality
//   glaf-fuzz --policies=all|v0,v2,..  directive policies for those legs
//                                      (default all of v0..v3; v4 implies
//                                      --speculate)
//   glaf-fuzz --emit=opt               add the opt-tier native leg (typed
//                                      storage, -O3, contraction on). The
//                                      comparator forks: every interp-tier
//                                      leg stays bitwise while this leg is
//                                      held to a per-element ulp budget
//   glaf-fuzz --max-ulp N              that budget (default 64); --opt-rtol
//                                      and --opt-atol add a tolerance band
//                                      on top for finite values
//   glaf-fuzz --threads N --rtol X --atol X
//
// Duplicate generated programs (identical serialized text from different
// seeds) are deduplicated by a stable FNV-1a digest and run once.
//
// Exit status: 0 all seeds agreed, 1 divergence found, 2 usage/setup error.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "core/rewrite.hpp"
#include "core/serialize.hpp"
#include "core/validate.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/repro.hpp"
#include "fuzz/shrink.hpp"
#include "support/hash.hpp"

namespace {

using namespace glaf;
using namespace glaf::fuzz;

struct CliOptions {
  std::uint64_t seed_begin = 0;
  std::uint64_t seed_end = 100;  // exclusive
  double time_budget_s = 0.0;    // 0 = no budget, run the whole range
  bool shrink = false;
  std::string repro_dir;
  std::string replay_path;
  bool dump = false;
  std::uint64_t dump_seed = 0;
  OracleOptions oracle;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds A:B] [--time-budget SECONDS] [--shrink]\n"
               "          [--repro-dir DIR] [--replay FILE] [--dump-seed N]\n"
               "          [--threads N] [--rtol X] [--atol X] [--no-cc]\n"
               "          [--no-native] [--no-parallel] [--parallel] [--fuse]\n"
               "          [--speculate] [--policies=all|v0,v1,...]\n"
               "          [--engine=plan|treewalk|both|native]\n"
               "          [--emit=interp|opt] [--max-ulp N]\n"
               "          [--opt-rtol X] [--opt-atol X]\n",
               argv0);
}

bool parse_args(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seeds") {
      const char* v = next();
      if (v == nullptr) return false;
      const char* colon = std::strchr(v, ':');
      if (colon == nullptr) return false;
      opts->seed_begin = std::strtoull(v, nullptr, 10);
      opts->seed_end = std::strtoull(colon + 1, nullptr, 10);
    } else if (arg == "--time-budget") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->time_budget_s = std::strtod(v, nullptr);
    } else if (arg == "--shrink") {
      opts->shrink = true;
    } else if (arg == "--repro-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->repro_dir = v;
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->replay_path = v;
    } else if (arg == "--dump-seed") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->dump = true;
      opts->dump_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->oracle.num_threads = std::atoi(v);
    } else if (arg == "--rtol") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->oracle.rtol = std::strtod(v, nullptr);
    } else if (arg == "--atol") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->oracle.atol = std::strtod(v, nullptr);
    } else if (arg == "--no-cc") {
      opts->oracle.run_compiled_c = false;
    } else if (arg == "--no-native") {
      opts->oracle.run_native = false;
    } else if (arg == "--no-parallel") {
      opts->oracle.run_parallel = false;
    } else if (arg == "--parallel") {
      opts->oracle.run_native_parallel = true;
    } else if (arg == "--fuse") {
      opts->oracle.run_native_fused = true;
    } else if (arg == "--speculate") {
      opts->oracle.run_speculative = true;
    } else if (arg.rfind("--policies", 0) == 0) {
      std::string value;
      if (arg.size() > 10 && arg[10] == '=') {
        value = arg.substr(11);
      } else if (arg.size() == 10) {
        const char* v = next();
        if (v == nullptr) return false;
        value = v;
      } else {
        return false;
      }
      if (value != "all") {
        std::vector<DirectivePolicy> policies;
        std::size_t at = 0;
        while (at <= value.size()) {
          const std::size_t comma = value.find(',', at);
          const std::string name = value.substr(
              at, comma == std::string::npos ? comma : comma - at);
          if (name == "v0") {
            policies.push_back(DirectivePolicy::kV0);
          } else if (name == "v1") {
            policies.push_back(DirectivePolicy::kV1);
          } else if (name == "v2") {
            policies.push_back(DirectivePolicy::kV2);
          } else if (name == "v3") {
            policies.push_back(DirectivePolicy::kV3);
          } else if (name == "v4") {
            // v4 is not a per-policy interpreter leg: it selects the
            // speculative leg set, same as --speculate.
            opts->oracle.run_speculative = true;
          } else {
            std::fprintf(stderr, "unknown policy: %s\n", name.c_str());
            return false;
          }
          if (comma == std::string::npos) break;
          at = comma + 1;
        }
        opts->oracle.policies = policies;
      }
    } else if (arg.rfind("--engine", 0) == 0) {
      std::string value;
      if (arg.size() > 8 && arg[8] == '=') {
        value = arg.substr(9);
      } else if (arg.size() == 8) {
        const char* v = next();
        if (v == nullptr) return false;
        value = v;
      } else {
        return false;
      }
      if (value == "plan") {
        opts->oracle.run_plan = true;
        opts->oracle.run_treewalk_parallel = false;
      } else if (value == "treewalk") {
        opts->oracle.run_plan = false;
        opts->oracle.run_treewalk_parallel = true;
      } else if (value == "both") {
        opts->oracle.run_plan = true;
        opts->oracle.run_treewalk_parallel = true;
      } else if (value == "native") {
        // The fast in-process oracle: serial tree-walk reference vs the
        // JIT kernel, no plan legs and no subprocess C round-trip.
        opts->oracle.run_plan = false;
        opts->oracle.run_treewalk_parallel = false;
        opts->oracle.run_parallel = false;
        opts->oracle.run_native = true;
        opts->oracle.run_compiled_c = false;
      } else {
        std::fprintf(stderr, "unknown engine: %s\n", value.c_str());
        return false;
      }
    } else if (arg.rfind("--emit", 0) == 0) {
      std::string value;
      if (arg.size() > 6 && arg[6] == '=') {
        value = arg.substr(7);
      } else if (arg.size() == 6) {
        const char* v = next();
        if (v == nullptr) return false;
        value = v;
      } else {
        return false;
      }
      if (value == "interp") {
        opts->oracle.run_native_opt = false;
      } else if (value == "opt") {
        opts->oracle.run_native_opt = true;
      } else {
        std::fprintf(stderr, "unknown emit tier: %s\n", value.c_str());
        return false;
      }
    } else if (arg.rfind("--max-ulp", 0) == 0) {
      std::string value;
      if (arg.size() > 9 && arg[9] == '=') {
        value = arg.substr(10);
      } else if (arg.size() == 9) {
        const char* v = next();
        if (v == nullptr) return false;
        value = v;
      } else {
        return false;
      }
      opts->oracle.opt_max_ulp = std::strtoull(value.c_str(), nullptr, 10);
    } else if (arg == "--opt-rtol") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->oracle.opt_rtol = std::strtod(v, nullptr);
    } else if (arg == "--opt-atol") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->oracle.opt_atol = std::strtod(v, nullptr);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void print_report(const OracleReport& report) {
  for (const std::string& err : report.errors) {
    std::fprintf(stderr, "    error: %s\n", err.c_str());
  }
  for (const Divergence& d : report.divergences) {
    std::fprintf(stderr, "    %s: %s[%lld] expected %.17g got %.17g\n",
                 d.backend.c_str(), d.grid.c_str(),
                 static_cast<long long>(d.index), d.expected, d.actual);
  }
}

/// Shrink a failing program down while the oracle keeps disagreeing.
Program shrink_failure(const Program& program, const std::string& entry,
                       const OracleOptions& oracle_opts, ShrinkStats* stats) {
  ShrinkOptions sopts;
  sopts.protected_function = entry;
  return shrink_program(
      program,
      [&](const Program& candidate) {
        const OracleReport r = run_oracle(candidate, entry, oracle_opts);
        return !r.divergences.empty();
      },
      sopts, stats);
}

int handle_failure(const Program& program, const std::string& entry,
                   std::uint64_t seed, const OracleReport& report,
                   const CliOptions& opts) {
  print_report(report);
  Program final_program = program;
  if (opts.shrink && !report.divergences.empty()) {
    ShrinkStats stats;
    final_program = shrink_failure(program, entry, opts.oracle, &stats);
    std::fprintf(stderr,
                 "    shrunk to %lld statements (%d candidates, %d accepted)\n",
                 static_cast<long long>(count_statements(final_program)),
                 stats.candidates_tried, stats.candidates_accepted);
  }
  if (!opts.repro_dir.empty()) {
    ReproInfo info;
    info.seed = seed;
    info.note = report.divergences.empty()
                    ? (report.errors.empty() ? "divergence" : report.errors[0])
                    : report.divergences[0].backend + " diverged on " +
                          report.divergences[0].grid;
    const std::string path =
        opts.repro_dir + "/seed" + std::to_string(seed) + ".glaf";
    const Status st = write_repro(path, final_program, info);
    if (st.is_ok()) {
      std::fprintf(stderr, "    repro written: %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "    repro write failed: %s\n",
                   st.message().c_str());
    }
  }
  return 1;
}

int replay(const CliOptions& opts) {
  auto loaded = load_repro(opts.replay_path);
  if (!loaded.is_ok()) {
    std::fprintf(stderr, "replay: %s\n", loaded.status().message().c_str());
    return 2;
  }
  const Program program = std::move(loaded).value();
  auto entry = find_entry(program);
  if (!entry.is_ok()) {
    std::fprintf(stderr, "replay: %s\n", entry.status().message().c_str());
    return 2;
  }
  const OracleReport report = run_oracle(program, entry.value(), opts.oracle);
  if (report.agreed()) {
    std::printf("replay %s: %d backends agreed\n", opts.replay_path.c_str(),
                report.backends_compared);
    return 0;
  }
  std::fprintf(stderr, "replay %s: FAILED\n", opts.replay_path.c_str());
  print_report(report);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  opts.oracle.cc = default_cc();  // honor GLAF_CC for both compiled legs
  if (!parse_args(argc, argv, &opts)) {
    usage(argv[0]);
    return 2;
  }

  if (!opts.replay_path.empty()) return replay(opts);

  if (opts.dump) {
    auto generated = generate_program(opts.dump_seed);
    if (!generated.is_ok()) {
      std::fprintf(stderr, "seed %llu: generator failed: %s\n",
                   static_cast<unsigned long long>(opts.dump_seed),
                   generated.status().message().c_str());
      return 2;
    }
    std::printf("; glaf-fuzz repro\n; seed: %llu\n%s",
                static_cast<unsigned long long>(opts.dump_seed),
                serialize_program(generated.value().program).c_str());
    return 0;
  }

  if ((opts.oracle.run_compiled_c || opts.oracle.run_native ||
       opts.oracle.run_native_parallel || opts.oracle.run_native_fused ||
       opts.oracle.run_native_opt) &&
      !cc_available(opts.oracle.cc)) {
    std::fprintf(stderr,
                 "note: compiler '%s' unavailable, skipping the C and"
                 " native backends\n",
                 opts.oracle.cc.c_str());
    opts.oracle.run_compiled_c = false;
    opts.oracle.run_native = false;
    opts.oracle.run_native_parallel = false;
    opts.oracle.run_native_fused = false;
    opts.oracle.run_native_opt = false;
  }

  const auto start = std::chrono::steady_clock::now();
  auto out_of_budget = [&]() {
    if (opts.time_budget_s <= 0.0) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() >= opts.time_budget_s;
  };

  int failures = 0;
  std::uint64_t ran = 0;
  std::uint64_t duplicates = 0;
  std::set<std::uint64_t> seen_digests;
  const std::uint64_t end =
      opts.time_budget_s > 0.0 && opts.seed_end <= opts.seed_begin
          ? UINT64_MAX
          : opts.seed_end;
  for (std::uint64_t seed = opts.seed_begin; seed < end; ++seed) {
    if (out_of_budget()) break;
    auto generated = generate_program(seed);
    if (!generated.is_ok()) {
      std::fprintf(stderr, "seed %llu: generator failed: %s\n",
                   static_cast<unsigned long long>(seed),
                   generated.status().message().c_str());
      ++failures;
      continue;
    }
    const FuzzProgram& fp = generated.value();
    if (!seen_digests.insert(fnv1a64(serialize_program(fp.program))).second) {
      ++duplicates;  // identical program already exercised this sweep
      continue;
    }
    OracleOptions oracle = opts.oracle;
    // Different fault-injection decisions per seed, reproducible per seed.
    oracle.spec_fault_seed = seed + 1;
    const OracleReport report = run_oracle(fp.program, fp.entry, oracle);
    ++ran;
    if (!report.agreed()) {
      std::fprintf(stderr, "seed %llu: DIVERGED\n",
                   static_cast<unsigned long long>(seed));
      handle_failure(fp.program, fp.entry, seed, report, opts);
      ++failures;
    }
  }

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  std::printf("glaf-fuzz: %llu seeds, %llu duplicates skipped, %d failures,"
              " %.1fs\n",
              static_cast<unsigned long long>(ran),
              static_cast<unsigned long long>(duplicates), failures,
              elapsed.count());
  return failures == 0 ? 0 : 1;
}
