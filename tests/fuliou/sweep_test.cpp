// Parameterized correctness sweeps for the SARB case study: every
// (policy, thread-count) combination across several zones/seeds must
// reproduce the original serial implementation — the full cross product
// of the paper's §4.1.1 side-by-side methodology.

#include <gtest/gtest.h>

#include "fuliou/glaf_kernels.hpp"
#include "fuliou/harness.hpp"
#include "fuliou/reference.hpp"

namespace glaf::fuliou {
namespace {

struct SweepCase {
  DirectivePolicy policy;
  int threads;
};

class SarbPolicyThreadSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  static const Program& program() {
    static const Program p = build_sarb_program();
    return p;
  }
};

TEST_P(SarbPolicyThreadSweep, MatchesOriginalAcrossZones) {
  const SweepCase sc = GetParam();
  InterpOptions opts;
  opts.parallel = true;
  opts.num_threads = sc.threads;
  opts.policy = sc.policy;
  Machine m(program(), opts);
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const AtmosphereProfile profile = make_profile(seed);
    const SarbOutputs reference = run_reference(profile);
    const auto out = run_glaf_sarb(m, profile);
    ASSERT_TRUE(out.is_ok()) << out.status().message();
    EXPECT_LT(max_abs_diff(reference, out.value()), 1e-7)
        << "seed " << seed << " policy " << to_string(sc.policy) << " "
        << sc.threads << "T";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicyThreadCombos, SarbPolicyThreadSweep,
    ::testing::Values(SweepCase{DirectivePolicy::kV0, 1},
                      SweepCase{DirectivePolicy::kV0, 2},
                      SweepCase{DirectivePolicy::kV0, 8},
                      SweepCase{DirectivePolicy::kV1, 4},
                      SweepCase{DirectivePolicy::kV2, 4},
                      SweepCase{DirectivePolicy::kV3, 1},
                      SweepCase{DirectivePolicy::kV3, 4},
                      SweepCase{DirectivePolicy::kV3, 8}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return std::string(to_string(info.param.policy)) + "_" +
             std::to_string(info.param.threads) + "T";
    });

class SarbSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SarbSeedSweep, SerialBitExactForSeed) {
  static const Program p = build_sarb_program();
  const AtmosphereProfile profile = make_profile(GetParam());
  const SarbOutputs reference = run_reference(profile);
  Machine m(p);
  const auto out = run_glaf_sarb(m, profile);
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(max_abs_diff(reference, out.value()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, SarbSeedSweep,
                         ::testing::Range<std::uint64_t>(100, 120));

}  // namespace
}  // namespace glaf::fuliou
