#include "fuliou/zones.hpp"

#include <gtest/gtest.h>

#include <set>

namespace glaf::fuliou {
namespace {

TEST(Zones, CosineProfileSymmetricAboutEquator) {
  const auto zones = make_zones(72, 180);
  ASSERT_EQ(zones.size(), 72u);
  // Symmetric sizes.
  for (std::size_t i = 0; i < zones.size(); ++i) {
    EXPECT_EQ(zones[i].columns, zones[zones.size() - 1 - i].columns) << i;
  }
  // Equator zones are the largest; poles the smallest.
  EXPECT_GT(zones[36].columns, zones[0].columns);
  EXPECT_GE(zones[0].columns, 1);
  int max_cols = 0;
  for (const Zone& z : zones) max_cols = std::max(max_cols, z.columns);
  EXPECT_EQ(max_cols, zones[35].columns);
}

TEST(Zones, LatitudesSpanTheGlobe) {
  const auto zones = make_zones(10, 100);
  EXPECT_LT(zones.front().latitude_deg, -80.0);
  EXPECT_GT(zones.back().latitude_deg, 80.0);
  for (std::size_t i = 1; i < zones.size(); ++i) {
    EXPECT_GT(zones[i].latitude_deg, zones[i - 1].latitude_deg);
  }
}

void expect_complete_cover(const Schedule& s, std::size_t n_zones) {
  std::set<int> seen;
  for (const auto& rank : s.zones_per_rank) {
    for (const int z : rank) {
      EXPECT_TRUE(seen.insert(z).second) << "zone " << z << " duplicated";
    }
  }
  EXPECT_EQ(seen.size(), n_zones);
}

TEST(Zones, SchedulersCoverEveryZoneExactlyOnce) {
  const auto zones = make_zones(72, 180);
  expect_complete_cover(schedule_block(zones, 8), zones.size());
  expect_complete_cover(schedule_lpt(zones, 8), zones.size());
}

TEST(Zones, LptNeverWorseThanBlock) {
  for (const int ranks : {2, 4, 8, 16}) {
    const auto zones = make_zones(72, 180);
    const Schedule block = schedule_block(zones, ranks);
    const Schedule lpt = schedule_lpt(zones, ranks);
    EXPECT_LE(lpt.makespan, block.makespan) << ranks << " ranks";
    EXPECT_DOUBLE_EQ(lpt.total_work, block.total_work);
  }
}

TEST(Zones, LptWithinClassicBound) {
  // LPT is a 4/3 - 1/(3m) approximation; check against the trivial lower
  // bound max(total/m, largest zone).
  const auto zones = make_zones(72, 180);
  for (const int ranks : {3, 7, 12}) {
    const Schedule lpt = schedule_lpt(zones, ranks);
    double largest = 0.0;
    for (const Zone& z : zones) largest = std::max(largest, double(z.columns));
    const double lower = std::max(lpt.total_work / ranks, largest);
    EXPECT_LE(lpt.makespan, lower * (4.0 / 3.0) + 1e-9) << ranks;
  }
}

TEST(Zones, ImbalanceDefinition) {
  const auto zones = make_zones(72, 180);
  const Schedule s = schedule_lpt(zones, 8);
  EXPECT_GE(s.imbalance, 1.0);
  EXPECT_NEAR(s.imbalance, s.makespan / (s.total_work / 8.0), 1e-12);
}

TEST(Zones, SingleRankDegenerates) {
  const auto zones = make_zones(10, 50);
  const Schedule s = schedule_lpt(zones, 1);
  EXPECT_DOUBLE_EQ(s.makespan, s.total_work);
  EXPECT_DOUBLE_EQ(s.imbalance, 1.0);
}

TEST(Zones, IntraZoneSpeedupDividesMakespan) {
  const auto zones = make_zones(72, 180);
  const Schedule s = schedule_lpt(zones, 8);
  // The paper's v3 kernels give 1.41x inside each zone.
  EXPECT_NEAR(synoptic_hour_time(s, 1.41), s.makespan / 1.41, 1e-9);
  EXPECT_DOUBLE_EQ(synoptic_hour_time(s, 1.0), s.makespan);
}

}  // namespace
}  // namespace glaf::fuliou
