// Side-by-side functional-correctness tests for the SARB case study —
// the reproduction of the paper's §4.1.1 methodology: unit testing of each
// subroutine plus a code-wide comparison of GLAF-generated execution
// against the original serial implementation, for serial AND parallel.

#include <gtest/gtest.h>

#include "codegen/fortran.hpp"
#include "fuliou/glaf_kernels.hpp"
#include "fuliou/harness.hpp"
#include "fuliou/reference.hpp"
#include "support/sloc.hpp"

namespace glaf::fuliou {
namespace {

InterpOptions parallel_opts(int threads = 4,
                            DirectivePolicy policy = DirectivePolicy::kV0) {
  InterpOptions o;
  o.parallel = true;
  o.num_threads = threads;
  o.policy = policy;
  return o;
}

TEST(SarbProgram, BuildsAndValidates) {
  const Program p = build_sarb_program();
  EXPECT_EQ(p.module_name, "sarb_kernels");
  for (const std::string& name : table1_subroutines()) {
    EXPECT_NE(p.find_function(name), nullptr) << name;
  }
}

TEST(SarbProgram, ExercisesEveryIntegrationFeature) {
  const Program p = build_sarb_program();
  // §3.1 existing module, §3.5 TYPE element.
  const Grid* tsfc = p.find_grid("tsfc");
  ASSERT_NE(tsfc, nullptr);
  EXPECT_EQ(tsfc->external, ExternalKind::kModule);
  EXPECT_EQ(tsfc->type_parent, "fo");
  // §3.2 COMMON block.
  const Grid* albedo = p.find_grid("albedo");
  ASSERT_NE(albedo, nullptr);
  EXPECT_EQ(albedo->common_block, "sw_in");
  // §3.3 module scope.
  EXPECT_TRUE(p.find_grid("od")->module_scope);
  // §3.4 all six are subroutines.
  for (const std::string& name : table1_subroutines()) {
    EXPECT_EQ(p.find_function(name)->return_type, DataType::kVoid) << name;
  }
}

TEST(SarbCorrectness, SerialMatchesReferenceExactly) {
  const Program p = build_sarb_program();
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const AtmosphereProfile profile = make_profile(seed);
    const SarbOutputs reference = run_reference(profile);
    Machine m(p);
    const auto glaf_out = run_glaf_sarb(m, profile);
    ASSERT_TRUE(glaf_out.is_ok()) << glaf_out.status().message();
    // Identical operation order: bit-for-bit agreement expected.
    EXPECT_EQ(max_abs_diff(reference, glaf_out.value()), 0.0)
        << "seed " << seed;
  }
}

TEST(SarbCorrectness, ParallelMatchesWithinTolerance) {
  // Parallel execution reassociates the reductions; the paper's criterion
  // for this kind of check is an absolute tolerance of 1e-7 (§4.2.1).
  const Program p = build_sarb_program();
  const AtmosphereProfile profile = make_profile(99);
  const SarbOutputs reference = run_reference(profile);
  for (const auto policy :
       {DirectivePolicy::kV0, DirectivePolicy::kV1, DirectivePolicy::kV2,
        DirectivePolicy::kV3}) {
    Machine m(p, parallel_opts(4, policy));
    const auto out = run_glaf_sarb(m, profile);
    ASSERT_TRUE(out.is_ok()) << out.status().message();
    EXPECT_LT(max_abs_diff(reference, out.value()), 1e-7)
        << "policy " << to_string(policy);
  }
}

TEST(SarbCorrectness, ThreadSweepStable) {
  const Program p = build_sarb_program();
  const AtmosphereProfile profile = make_profile(5);
  const SarbOutputs reference = run_reference(profile);
  for (const int threads : {1, 2, 4, 8}) {
    Machine m(p, parallel_opts(threads));
    const auto out = run_glaf_sarb(m, profile);
    ASSERT_TRUE(out.is_ok());
    EXPECT_LT(max_abs_diff(reference, out.value()), 1e-7)
        << threads << " threads";
  }
}

TEST(SarbCorrectness, PerSubroutineUnitComparison) {
  // Step-by-step unit testing: run each subroutine individually on both
  // sides and compare the arrays it owns.
  const Program p = build_sarb_program();
  const AtmosphereProfile profile = make_profile(11);

  Workspace ws;
  Machine m(p);
  ASSERT_TRUE(load_profile(m, profile).is_ok());

  lw_spectral_integration(profile, ws);
  ASSERT_TRUE(m.call("lw_spectral_integration").is_ok());
  EXPECT_EQ(m.array("planck").value(), ws.out.planck);
  EXPECT_EQ(m.array("lw_flux").value(), ws.out.lw_flux);

  longwave_entropy_model(profile, ws);
  ASSERT_TRUE(m.call("longwave_entropy_model").is_ok());
  EXPECT_EQ(m.array("lw_entropy").value(), ws.out.lw_entropy);
  EXPECT_EQ(m.array("lw_flux").value(), ws.out.lw_flux);

  sw_spectral_integration(profile, ws);
  ASSERT_TRUE(m.call("sw_spectral_integration").is_ok());
  EXPECT_EQ(m.array("sw_flux").value(), ws.out.sw_flux);

  shortwave_entropy_model(profile, ws);
  ASSERT_TRUE(m.call("shortwave_entropy_model").is_ok());
  EXPECT_EQ(m.array("sw_entropy").value(), ws.out.sw_entropy);

  adjust2(profile, ws);
  ASSERT_TRUE(m.call("adjust2").is_ok());
  EXPECT_EQ(m.array("adjusted_flux").value(), ws.out.adjusted_flux);
  EXPECT_EQ(m.array("baseline").value(), ws.out.baseline);
}

TEST(SarbAnalysis, BigLoopsAreComplexAndCollapsed) {
  const Program p = build_sarb_program();
  const ProgramAnalysis pa = analyze_program(p);
  const std::vector<LoopInfo> loops = sarb_loop_inventory(p, pa);

  int complex_parallel = 0;
  for (const LoopInfo& info : loops) {
    if (info.function == "longwave_entropy_model" &&
        (info.step == "le7" || info.step == "le8")) {
      EXPECT_EQ(info.verdict.loop_class, LoopClass::kComplex) << info.step;
      EXPECT_TRUE(info.verdict.parallelizable) << info.step;
      EXPECT_EQ(info.verdict.collapse, 2) << info.step;
      // 2 x 60 = 120 iterations, as the paper reports for COLLAPSE(2).
      EXPECT_EQ(info.verdict.trip_count, 120) << info.step;
      ++complex_parallel;
    }
  }
  EXPECT_EQ(complex_parallel, 2);
}

TEST(SarbAnalysis, LoopClassInventoryCoversTable2Categories) {
  const Program p = build_sarb_program();
  const ProgramAnalysis pa = analyze_program(p);
  int init_zero = 0;
  int broadcast = 0;
  int simple_single = 0;
  int simple_double = 0;
  int complex_loops = 0;
  for (const LoopInfo& info : sarb_loop_inventory(p, pa)) {
    if (!info.verdict.has_loop) continue;
    switch (info.verdict.loop_class) {
      case LoopClass::kInitZero: ++init_zero; break;
      case LoopClass::kBroadcast: ++broadcast; break;
      case LoopClass::kSimpleSingle: ++simple_single; break;
      case LoopClass::kSimpleDouble: ++simple_double; break;
      case LoopClass::kComplex: ++complex_loops; break;
      default: break;
    }
  }
  // Every Table 2 removal category is populated.
  EXPECT_GE(init_zero, 2);
  EXPECT_GE(broadcast, 2);
  EXPECT_GE(simple_single, 4);
  EXPECT_GE(simple_double, 4);
  EXPECT_GE(complex_loops, 2);
}

TEST(SarbAnalysis, ReductionsRecognized) {
  const Program p = build_sarb_program();
  const ProgramAnalysis pa = analyze_program(p);
  bool od_total_reduction = false;
  bool entropy_total_reduction = false;
  for (const LoopInfo& info : sarb_loop_inventory(p, pa)) {
    for (const ReductionClause& r : info.verdict.reductions) {
      if (p.grid(r.grid).name == "od_total") od_total_reduction = true;
      if (p.grid(r.grid).name == "entropy_total") {
        entropy_total_reduction = true;
      }
    }
  }
  EXPECT_TRUE(od_total_reduction);
  EXPECT_TRUE(entropy_total_reduction);
}

TEST(SarbCodegen, FortranHasIntegrationConstructs) {
  const Program p = build_sarb_program();
  const GeneratedCode code = generate_fortran(p, analyze_program(p));
  EXPECT_NE(code.source.find("USE fuliou_input"), std::string::npos);
  EXPECT_NE(code.source.find("COMMON /sw_in/ albedo, cosz"),
            std::string::npos);
  EXPECT_NE(code.source.find("fo%tsfc"), std::string::npos);
  EXPECT_NE(code.source.find("SUBROUTINE entropy_interface()"),
            std::string::npos);
  EXPECT_NE(code.source.find("CALL adjust2()"), std::string::npos);
  EXPECT_NE(code.source.find("COLLAPSE(2)"), std::string::npos);
}

TEST(SarbCodegen, Table1SlocShapeHolds) {
  // We do not match the paper's absolute SLOC (the real fuliou physics is
  // far bigger) but the *ordering* must hold: longwave_entropy_model is by
  // far the largest; shortwave_entropy_model the smallest.
  const Program p = build_sarb_program();
  const GeneratedCode code = generate_fortran(p, analyze_program(p));
  std::map<std::string, int> sloc;
  for (const std::string& name : table1_subroutines()) {
    ASSERT_EQ(code.per_function.count(name), 1u) << name;
    sloc[name] = count_sloc(code.per_function.at(name), SlocLanguage::kFortran);
    EXPECT_GT(sloc[name], 0) << name;
  }
  EXPECT_GT(sloc["longwave_entropy_model"], sloc["lw_spectral_integration"]);
  EXPECT_GT(sloc["longwave_entropy_model"], sloc["sw_spectral_integration"]);
  EXPECT_GT(sloc["longwave_entropy_model"], sloc["entropy_interface"]);
  EXPECT_LT(sloc["shortwave_entropy_model"], sloc["sw_spectral_integration"]);
}

TEST(SarbProfile, DeterministicAndPlausible) {
  const AtmosphereProfile a = make_profile(3);
  const AtmosphereProfile b = make_profile(3);
  EXPECT_EQ(a.temperature, b.temperature);
  EXPECT_NE(a.temperature, make_profile(4).temperature);
  for (int k = 0; k < kNumLevels; ++k) {
    EXPECT_GT(a.temperature[k], 150.0);
    EXPECT_LT(a.temperature[k], 330.0);
    EXPECT_GE(a.cloud_frac[k], 0.0);
    EXPECT_LE(a.cloud_frac[k], 1.0);
    EXPECT_GT(a.tau[k], 0.0);
  }
}

TEST(SarbOutputsStruct, MaxAbsDiffDetectsChanges) {
  SarbOutputs a;
  SarbOutputs b;
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
  b.sw_flux[10] = 0.25;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.25);
  b = a;
  b.entropy_total = 2.0;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 2.0);
}

TEST(SarbTable1, PaperSlocLookup) {
  EXPECT_EQ(paper_sloc("longwave_entropy_model"), 422);
  EXPECT_EQ(paper_sloc("adjust2"), 38);
  EXPECT_EQ(paper_sloc("unknown"), -1);
}

}  // namespace
}  // namespace glaf::fuliou
