// Window-channel extension kernel (paper 2.2 names longwave, shortwave
// AND window channel flux profiles as SARB's outputs; the Table 1 kernels
// cover the first two, this extension adds the third).

#include <gtest/gtest.h>

#include "fuliou/glaf_kernels.hpp"
#include "fuliou/harness.hpp"
#include "fuliou/reference.hpp"

namespace glaf::fuliou {
namespace {

TEST(WindowChannel, GlafMatchesReferenceExactly) {
  const Program p = build_sarb_program();
  for (const std::uint64_t seed : {2ull, 21ull}) {
    const AtmosphereProfile profile = make_profile(seed);
    Workspace ws;
    entropy_interface(profile, ws);
    window_channel_model(profile, ws);

    Machine m(p);
    ASSERT_TRUE(load_profile(m, profile).is_ok());
    ASSERT_TRUE(m.call("entropy_interface").is_ok());
    ASSERT_TRUE(m.call("window_channel_model").is_ok());
    EXPECT_EQ(m.array("wc_flux").value(), ws.out.wc_flux) << "seed " << seed;
  }
}

TEST(WindowChannel, CloudMaskingReducesFlux) {
  // Property: a fully cloudy column has strictly less window flux than a
  // clear one with otherwise identical state.
  AtmosphereProfile clear = make_profile(4);
  AtmosphereProfile cloudy = clear;
  for (int k = 0; k < kNumLevels; ++k) {
    clear.cloud_frac[k] = 0.0;
    cloudy.cloud_frac[k] = 1.0;
  }
  Workspace ws_clear;
  entropy_interface(clear, ws_clear);
  window_channel_model(clear, ws_clear);
  Workspace ws_cloudy;
  entropy_interface(cloudy, ws_cloudy);
  window_channel_model(cloudy, ws_cloudy);
  for (int k = 0; k < kNumLevels; ++k) {
    EXPECT_LT(ws_cloudy.out.wc_flux[k], ws_clear.out.wc_flux[k]) << k;
    EXPECT_GT(ws_clear.out.wc_flux[k], 0.0) << k;
  }
}

TEST(WindowChannel, ParallelInterpWithinTolerance) {
  const Program p = build_sarb_program();
  const AtmosphereProfile profile = make_profile(33);
  Workspace ws;
  entropy_interface(profile, ws);
  window_channel_model(profile, ws);

  InterpOptions opts;
  opts.parallel = true;
  opts.num_threads = 4;
  Machine m(p, opts);
  ASSERT_TRUE(load_profile(m, profile).is_ok());
  ASSERT_TRUE(m.call("entropy_interface").is_ok());
  ASSERT_TRUE(m.call("window_channel_model").is_ok());
  const auto got = m.array("wc_flux").value();
  for (int k = 0; k < kNumLevels; ++k) {
    EXPECT_NEAR(got[k], ws.out.wc_flux[k], 1e-7) << k;
  }
}

}  // namespace
}  // namespace glaf::fuliou
