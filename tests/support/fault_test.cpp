// The deterministic fault-injection registry: spec parsing, seeded
// reproducibility, injection budgets, and the disarmed fast path. The
// whole robustness wall leans on these properties — a chaos soak is
// only debuggable if the same seed injects the same faults.

#include "support/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace glaf::fault {
namespace {

/// Every test leaves the registry disarmed (it is process-global).
struct FaultGuard {
  ~FaultGuard() { clear(); }
};

TEST(FaultSpec, ParsesSitesProbabilitiesAndBudgets) {
  FaultGuard guard;
  ASSERT_TRUE(configure("a,b:0.25,c:1:2").is_ok());
  EXPECT_TRUE(armed());
  const std::vector<SiteStats> sites = stats();
  ASSERT_EQ(sites.size(), 3u);
  EXPECT_EQ(sites[0].site, "a");
  EXPECT_EQ(sites[0].probability, 1.0);
  EXPECT_EQ(sites[0].max_injections, 0u);
  EXPECT_EQ(sites[1].site, "b");
  EXPECT_EQ(sites[1].probability, 0.25);
  EXPECT_EQ(sites[2].site, "c");
  EXPECT_EQ(sites[2].max_injections, 2u);
}

TEST(FaultSpec, RejectsMalformedTokens) {
  FaultGuard guard;
  EXPECT_FALSE(configure(":0.5").is_ok());       // empty site name
  EXPECT_FALSE(configure("x:nope").is_ok());     // non-numeric prob
  EXPECT_FALSE(configure("x:1.5").is_ok());      // prob > 1
  EXPECT_FALSE(configure("x:-0.1").is_ok());     // prob < 0
  EXPECT_FALSE(configure("x:0.5:abc").is_ok());  // non-integer count
  // A failed configure leaves the registry disarmed.
  EXPECT_FALSE(armed());
}

TEST(FaultSpec, EmptySpecDisarms) {
  FaultGuard guard;
  ASSERT_TRUE(configure("a").is_ok());
  EXPECT_TRUE(armed());
  ASSERT_TRUE(configure("").is_ok());
  EXPECT_FALSE(armed());
}

TEST(FaultInjection, UnconfiguredSitesNeverFail) {
  FaultGuard guard;
  ASSERT_TRUE(configure("somewhere.else").is_ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(should_fail("this.site"));
  }
}

TEST(FaultInjection, DisarmedRegistryIsANoOp) {
  FaultGuard guard;
  clear();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(should_fail("any.site"));
  }
  EXPECT_TRUE(stats().empty());
  EXPECT_EQ(injections("any.site"), 0u);
}

TEST(FaultInjection, ProbabilityOneAlwaysFails) {
  FaultGuard guard;
  ASSERT_TRUE(configure("s").is_ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(should_fail("s"));
  }
  EXPECT_EQ(injections("s"), 50u);
}

TEST(FaultInjection, VerdictsAreDeterministicBySeed) {
  FaultGuard guard;
  // Same seed -> identical verdict sequence, run to run.
  std::vector<bool> first;
  ASSERT_TRUE(configure("s:0.5", 7).is_ok());
  for (int i = 0; i < 200; ++i) first.push_back(should_fail("s"));

  ASSERT_TRUE(configure("s:0.5", 7).is_ok());
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(should_fail("s"), first[static_cast<std::size_t>(i)])
        << "occurrence " << i;
  }

  // A different seed draws a different sequence.
  ASSERT_TRUE(configure("s:0.5", 8).is_ok());
  std::vector<bool> other;
  for (int i = 0; i < 200; ++i) other.push_back(should_fail("s"));
  EXPECT_NE(first, other);
}

TEST(FaultInjection, SitesDrawIndependentStreams) {
  FaultGuard guard;
  ASSERT_TRUE(configure("one:0.5,two:0.5", 7).is_ok());
  std::vector<bool> one;
  std::vector<bool> two;
  for (int i = 0; i < 200; ++i) {
    one.push_back(should_fail("one"));
    two.push_back(should_fail("two"));
  }
  EXPECT_NE(one, two);  // site name is part of the draw
}

TEST(FaultInjection, BudgetCapsInjections) {
  FaultGuard guard;
  ASSERT_TRUE(configure("s:1:3").is_ok());
  int injected = 0;
  for (int i = 0; i < 100; ++i) {
    if (should_fail("s")) ++injected;
  }
  EXPECT_EQ(injected, 3);
  EXPECT_EQ(injections("s"), 3u);
  const std::vector<SiteStats> sites = stats();
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].checks, 100u);  // checks keep counting past budget
}

TEST(FaultInjection, ApproximatesTheConfiguredProbability) {
  FaultGuard guard;
  ASSERT_TRUE(configure("s:0.3", 11).is_ok());
  int injected = 0;
  for (int i = 0; i < 2000; ++i) {
    if (should_fail("s")) ++injected;
  }
  // Deterministic given the seed; the band just documents "roughly 30%".
  EXPECT_GT(injected, 2000 * 0.25);
  EXPECT_LT(injected, 2000 * 0.35);
}

}  // namespace
}  // namespace glaf::fault
