#include "support/strings.hpp"

#include <gtest/gtest.h>

namespace glaf {
namespace {

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitLinesDropsTrailingNewlineOnly) {
  const auto lines = split_lines("one\ntwo\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "one");
  EXPECT_EQ(lines[1], "two");
  EXPECT_EQ(split_lines("a\n\nb").size(), 3u);
}

TEST(Strings, JoinRoundTripsSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(join(parts, ", "), "x, y, z");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, CaseConversion) {
  EXPECT_EQ(to_upper("omp parallel do"), "OMP PARALLEL DO");
  EXPECT_EQ(to_lower("SUBROUTINE"), "subroutine");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("!$OMP PARALLEL", "!$OMP"));
  EXPECT_FALSE(starts_with("OMP", "!$OMP"));
  EXPECT_TRUE(ends_with("file.f90", ".f90"));
  EXPECT_FALSE(ends_with("f90", ".f90"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replace_all("abc", "", "x"), "abc");
}

TEST(Strings, RepeatBuildsPadding) {
  EXPECT_EQ(repeat("ab", 3), "ababab");
  EXPECT_EQ(repeat("x", 0), "");
}

TEST(Strings, FormatDoubleRoundTripsAndStaysFloat) {
  EXPECT_EQ(format_double(1.0), "1.0");
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(-3.0), "-3.0");
  // Shortest round-trip: parsing the text must recover the exact value.
  for (const double v : {3.141592653589793, 1e-20, 6.02214076e23, 0.1}) {
    const std::string text = format_double(v);
    EXPECT_EQ(std::stod(text), v) << text;
  }
}

TEST(Strings, IdentifierValidity) {
  EXPECT_TRUE(is_valid_identifier("lw_spectral_integration"));
  EXPECT_TRUE(is_valid_identifier("a1"));
  EXPECT_FALSE(is_valid_identifier(""));
  EXPECT_FALSE(is_valid_identifier("1a"));
  EXPECT_FALSE(is_valid_identifier("has space"));
  EXPECT_FALSE(is_valid_identifier("has-dash"));
  EXPECT_FALSE(is_valid_identifier(std::string(64, 'a')));
  EXPECT_TRUE(is_valid_identifier(std::string(63, 'a')));
}

TEST(Strings, CatConcatenatesMixedTypes) {
  EXPECT_EQ(cat("n=", 42, ", x=", 1.5), "n=42, x=1.5");
}

}  // namespace
}  // namespace glaf
