#include "support/cli.hpp"

#include <gtest/gtest.h>

namespace glaf {
namespace {

CliArgs make(std::initializer_list<const char*> argv) {
  std::vector<const char*> v = {"prog"};
  v.insert(v.end(), argv.begin(), argv.end());
  return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(Cli, EqualsForm) {
  const CliArgs args = make({"--threads=8", "--name=hello"});
  EXPECT_EQ(args.get_int("threads", 1), 8);
  EXPECT_EQ(args.get("name", ""), "hello");
}

TEST(Cli, SpaceSeparatedForm) {
  const CliArgs args = make({"--cells", "1000000"});
  EXPECT_EQ(args.get_int("cells", 0), 1000000);
}

TEST(Cli, BareBooleanFlag) {
  const CliArgs args = make({"--verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("quiet", false));
}

TEST(Cli, BoolSpellings) {
  EXPECT_TRUE(make({"--x=ON"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=Yes"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=1"}).get_bool("x", false));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=false"}).get_bool("x", true));
}

TEST(Cli, DefaultsWhenAbsent) {
  const CliArgs args = make({});
  EXPECT_EQ(args.get_int("n", 42), 42);
  EXPECT_EQ(args.get_double("x", 2.5), 2.5);
  EXPECT_EQ(args.get("s", "dflt"), "dflt");
  EXPECT_FALSE(args.has("n"));
}

TEST(Cli, PositionalArgumentsPreserved) {
  const CliArgs args = make({"input.dat", "--n=3", "out.dat"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.dat");
  EXPECT_EQ(args.positional()[1], "out.dat");
}

TEST(Cli, DoubleParsing) {
  EXPECT_DOUBLE_EQ(make({"--tol=1e-7"}).get_double("tol", 0), 1e-7);
}

}  // namespace
}  // namespace glaf
