// Stable-hash tests: FNV-1a is pinned against published test vectors so
// a refactor can never silently change kernel-cache keys or fuzzer
// corpus dedup digests.

#include <string>

#include <gtest/gtest.h>

#include "support/hash.hpp"

namespace glaf {
namespace {

TEST(Fnv1a64, MatchesPublishedVectors) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);  // offset basis
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1a64, ChainingEqualsConcatenation) {
  EXPECT_EQ(fnv1a64("bar", fnv1a64("foo")), fnv1a64("foobar"));
}

TEST(Fnv1a128, OffsetBasisIsPinned) {
  // 144066263297769815596495629667062367629
  //   = 0x6c62272e07bb014262b821756295c58d
  const Hash128 offset = fnv1a128_offset();
  EXPECT_EQ(offset.hi, 0x6c62272e07bb0142ull);
  EXPECT_EQ(offset.lo, 0x62b821756295c58dull);
  EXPECT_EQ(fnv1a128(""), offset);
}

TEST(Fnv1a128, DistinguishesFieldBoundaries) {
  // NUL separators in callers must produce distinct digests for
  // distinct splits of the same bytes.
  const Hash128 ab_c = fnv1a128("c", fnv1a128(std::string("ab\0", 3)));
  const Hash128 a_bc = fnv1a128("bc", fnv1a128(std::string("a\0", 2)));
  EXPECT_NE(ab_c, a_bc);
}

TEST(Fnv1a128, ChainingEqualsConcatenation) {
  EXPECT_EQ(fnv1a128("bar", fnv1a128("foo")), fnv1a128("foobar"));
  EXPECT_NE(fnv1a128("foo"), fnv1a128("bar"));
}

TEST(HexDigest, FixedWidthLowercaseBigEndian) {
  EXPECT_EQ(hex_digest(fnv1a128_offset()),
            "6c62272e07bb014262b821756295c58d");
  EXPECT_EQ(content_digest(""), "6c62272e07bb014262b821756295c58d");
  const std::string d = content_digest("hello");
  EXPECT_EQ(d.size(), 32u);
  EXPECT_EQ(d.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_NE(d, content_digest("hellp"));
}

}  // namespace
}  // namespace glaf
