#include "support/rng.hpp"

#include <gtest/gtest.h>

namespace glaf {
namespace {

TEST(Rng, DeterministicForSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, DoublesInUnitInterval) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  SplitMix64 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, NextBelowInRange) {
  SplitMix64 rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, RoughlyUniformMean) {
  // Property: mean of many uniform draws approaches 0.5.
  SplitMix64 rng(99);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

}  // namespace
}  // namespace glaf
