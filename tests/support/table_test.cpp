#include "support/table.hpp"

#include <gtest/gtest.h>

#include "support/strings.hpp"

namespace glaf {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"Subroutine name", "SLOC"});
  t.set_alignment({Align::kLeft, Align::kRight});
  t.add_row({"adjust2", "38"});
  t.add_row({"longwave_entropy_model", "422"});
  const std::string out = t.render();
  // Every line must be the same width.
  const auto lines = split_lines(out);
  ASSERT_GE(lines.size(), 6u);
  for (const auto& line : lines) EXPECT_EQ(line.size(), lines[0].size());
  EXPECT_NE(out.find("| adjust2"), std::string::npos);
  EXPECT_NE(out.find(" 422 |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTable, RightAlignmentPadsLeft) {
  TextTable t({"v"});
  t.set_alignment({Align::kRight});
  t.add_row({"7"});
  t.add_row({"123"});
  const auto lines = split_lines(t.render());
  // Row with "7" should contain "   7 " style padding before the cell.
  EXPECT_NE(lines[3].find("  7 |"), std::string::npos) << lines[3];
}

TEST(FormatSpeedup, TwoDecimalsWithSuffix) {
  EXPECT_EQ(format_speedup(1.41), "1.41x");
  EXPECT_EQ(format_speedup(0.479), "0.48x");
  EXPECT_EQ(format_speedup(3.849), "3.85x");
}

}  // namespace
}  // namespace glaf
