#include "support/sloc.hpp"

#include <gtest/gtest.h>

namespace glaf {
namespace {

TEST(Sloc, FortranCountsCodeNotComments) {
  const char* src =
      "! header comment\n"
      "SUBROUTINE foo(x)\n"
      "  REAL :: x\n"
      "\n"
      "  ! explain\n"
      "  x = 1.0\n"
      "END SUBROUTINE foo\n";
  EXPECT_EQ(count_sloc(src, SlocLanguage::kFortran), 4);
}

TEST(Sloc, FortranCountsOmpSentinelsAsCode) {
  const char* src =
      "!$OMP PARALLEL DO\n"
      "DO i = 0, 9\n"
      "END DO\n"
      "!$OMP END PARALLEL DO\n"
      "! just a note\n";
  EXPECT_EQ(count_sloc(src, SlocLanguage::kFortran), 4);
}

TEST(Sloc, FortranCaseInsensitiveSentinel) {
  EXPECT_EQ(count_sloc("!$omp atomic\n", SlocLanguage::kFortran), 1);
}

TEST(Sloc, CLineCommentsExcluded) {
  const char* src =
      "// top\n"
      "int x = 0;\n"
      "  // indented\n"
      "x++;\n";
  EXPECT_EQ(count_sloc(src, SlocLanguage::kC), 2);
}

TEST(Sloc, CBlockComments) {
  const char* src =
      "/* one-liner */\n"
      "int a;\n"
      "/* spans\n"
      "   lines */\n"
      "int b;\n"
      "/* close */ int c;\n";
  EXPECT_EQ(count_sloc(src, SlocLanguage::kC), 3);
}

TEST(Sloc, EmptyInput) {
  EXPECT_EQ(count_sloc("", SlocLanguage::kFortran), 0);
  EXPECT_EQ(count_sloc("\n\n\n", SlocLanguage::kC), 0);
}

}  // namespace
}  // namespace glaf
