#include "support/ulp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

namespace glaf {
namespace {

double from_bits(std::uint64_t bits) {
  double d = 0.0;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

double next_up(double x) { return std::nextafter(x, INFINITY); }
double next_down(double x) { return std::nextafter(x, -INFINITY); }

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kMax = std::numeric_limits<double>::max();
constexpr double kDenormMin = std::numeric_limits<double>::denorm_min();

TEST(UlpDistance, IdenticalValuesAreZero) {
  EXPECT_EQ(ulp_distance(1.0, 1.0), 0u);
  EXPECT_EQ(ulp_distance(-3.25, -3.25), 0u);
  EXPECT_EQ(ulp_distance(kInf, kInf), 0u);
  EXPECT_EQ(ulp_distance(-kInf, -kInf), 0u);
}

TEST(UlpDistance, Neighbors) {
  EXPECT_EQ(ulp_distance(1.0, next_up(1.0)), 1u);
  EXPECT_EQ(ulp_distance(1.0, next_down(1.0)), 1u);
  EXPECT_EQ(ulp_distance(next_down(1.0), next_up(1.0)), 2u);
  EXPECT_EQ(ulp_distance(-1.0, next_down(-1.0)), 1u);
}

TEST(UlpDistance, SignedZerosAreEqual) {
  EXPECT_EQ(ulp_distance(0.0, -0.0), 0u);
  EXPECT_EQ(ulp_distance(-0.0, 0.0), 0u);
}

TEST(UlpDistance, DenormalsAreOrdinarySteps) {
  // 0 -> smallest denormal is one step; denormal neighbors are one step.
  EXPECT_EQ(ulp_distance(0.0, kDenormMin), 1u);
  EXPECT_EQ(ulp_distance(kDenormMin, 2 * kDenormMin), 1u);
  // -denorm_min to +denorm_min crosses zero: two steps.
  EXPECT_EQ(ulp_distance(-kDenormMin, kDenormMin), 2u);
}

TEST(UlpDistance, MixedSignNeighborsMeasureThroughZero) {
  // -x to +x is exactly twice the distance of 0 to x.
  const double x = 1.5e-300;
  EXPECT_EQ(ulp_distance(-x, x), 2 * ulp_distance(0.0, x));
  // A sign flip on a normal-sized value is astronomically far.
  EXPECT_GT(ulp_distance(-1.0, 1.0), std::uint64_t{1} << 62);
}

TEST(UlpDistance, InfinityIsAdjacentToMax) {
  EXPECT_EQ(ulp_distance(kMax, kInf), 1u);
  EXPECT_EQ(ulp_distance(-kMax, -kInf), 1u);
  EXPECT_GT(ulp_distance(kInf, -kInf), std::uint64_t{1} << 62);
  EXPECT_GT(ulp_distance(1.0, kInf), std::uint64_t{1} << 52);
}

TEST(UlpDistance, NanPayloadsAndSignsAllCompareEqual) {
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  // Distinct payloads and a sign-flipped NaN.
  const double payload1 = from_bits(0x7ff8000000000001ull);
  const double payload2 = from_bits(0x7ff80000deadbeefull);
  const double negnan = from_bits(0xfff8000000000042ull);
  ASSERT_TRUE(std::isnan(payload1));
  ASSERT_TRUE(std::isnan(payload2));
  ASSERT_TRUE(std::isnan(negnan));
  EXPECT_EQ(ulp_distance(qnan, qnan), 0u);
  EXPECT_EQ(ulp_distance(payload1, payload2), 0u);
  EXPECT_EQ(ulp_distance(qnan, negnan), 0u);
}

TEST(UlpDistance, OneNanIsIncomparable) {
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(ulp_distance(qnan, 1.0), kUlpIncomparable);
  EXPECT_EQ(ulp_distance(0.0, qnan), kUlpIncomparable);
  EXPECT_EQ(ulp_distance(qnan, kInf), kUlpIncomparable);
}

TEST(UlpClose, PureUlpBudget) {
  EXPECT_TRUE(ulp_close(1.0, 1.0, 0));
  EXPECT_TRUE(ulp_close(1.0, next_up(1.0), 1));
  EXPECT_FALSE(ulp_close(1.0, next_up(next_up(1.0)), 1));
  EXPECT_TRUE(ulp_close(0.0, -0.0, 0));
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(ulp_close(qnan, qnan, 0));
  EXPECT_FALSE(ulp_close(qnan, 1.0, 1u << 20));
  // Infinities only match themselves, never through the band.
  EXPECT_TRUE(ulp_close(kInf, kInf, 0));
  EXPECT_FALSE(ulp_close(kInf, kMax, 0, 1e-2, 1e300));
}

TEST(UlpClose, OneNanIsIncomparableEvenWithHugeBands) {
  // An incomparable pair must never be rescued by a generous budget:
  // neither a near-saturating ulp allowance nor enormous rtol/atol bands
  // may declare a NaN "close" to a number.
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ulp_close(qnan, 1.0, ~std::uint64_t{0} - 1, 1e300, 1e300));
  EXPECT_FALSE(ulp_close(0.0, qnan, ~std::uint64_t{0} - 1, 1e300, 1e300));
  EXPECT_FALSE(ulp_close(qnan, kInf, ~std::uint64_t{0} - 1, 1e300, 1e300));
  EXPECT_FALSE(ulp_close(-qnan, -1.0, 1u << 20, 0.5, 0.5));
}

TEST(UlpClose, SignedZeroAndCrossSignBoundaries) {
  // The ±0 pair is distance 0 — close even with a zero budget and no
  // bands — and the smallest cross-sign pair (-denorm_min, +denorm_min)
  // is exactly two steps through zero: a budget of 2 admits it, 1 does
  // not.
  EXPECT_TRUE(ulp_close(-0.0, 0.0, 0));
  EXPECT_TRUE(ulp_close(0.0, kDenormMin, 1));
  EXPECT_FALSE(ulp_close(0.0, kDenormMin, 0));
  EXPECT_TRUE(ulp_close(-kDenormMin, kDenormMin, 2));
  EXPECT_FALSE(ulp_close(-kDenormMin, kDenormMin, 1));
  // A sign flip on a normal value is astronomically far in ulps, but the
  // absolute band can still admit it — and the tiny pair stays admitted.
  EXPECT_FALSE(ulp_close(-1.0, 1.0, 1u << 30));
  EXPECT_TRUE(ulp_close(-1.0, 1.0, 0, 0.0, 2.5));
  EXPECT_TRUE(ulp_close(-kDenormMin, kDenormMin, 0, 0.0, 1e-300));
}

TEST(UlpClose, RelativeBandCoversWhatUlpsDoNot) {
  // 1 + 1e-12 is thousands of ulps from 1.0 but relatively tiny.
  const double a = 1.0;
  const double b = 1.0 + 1e-12;
  EXPECT_FALSE(ulp_close(a, b, 64));
  EXPECT_TRUE(ulp_close(a, b, 64, 1e-9, 0.0));
  EXPECT_TRUE(ulp_close(a, b, 64, 0.0, 1e-9));
  EXPECT_FALSE(ulp_close(1.0, 2.0, 64, 1e-9, 1e-9));
}

}  // namespace
}  // namespace glaf
