// Subprocess helper tests: exit-status decoding, the explicit
// "did-not-start" bit, and the compiler probe cache.

#include <gtest/gtest.h>

#include "support/subprocess.hpp"

namespace glaf {
namespace {

TEST(RunCommand, CapturesOutputAndExitCode) {
  const RunResult ok = run_command("printf 'hi\\n'");
  EXPECT_TRUE(ok.started);
  EXPECT_EQ(ok.exit_code, 0);
  EXPECT_EQ(ok.output, "hi\n");
  EXPECT_TRUE(ok.ok());
}

TEST(RunCommand, NonZeroExitIsNotOk) {
  const RunResult r = run_command("exit 3");
  EXPECT_TRUE(r.started);
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_FALSE(r.ok());
}

TEST(RunCommand, CapturesStderrToo) {
  const RunResult r = run_command("(echo oops 1>&2)");
  EXPECT_TRUE(r.started);
  EXPECT_EQ(r.output, "oops\n");
}

TEST(CcAvailable, MissingCompilerIsUnavailable) {
  EXPECT_FALSE(cc_available("/nonexistent/compiler"));
  EXPECT_TRUE(compiler_identity("/nonexistent/compiler").empty());
}

TEST(CcAvailable, ShellMetacharactersAreRejected) {
  EXPECT_FALSE(cc_available("cc; rm -rf /"));
  EXPECT_FALSE(cc_available(""));
}

TEST(DefaultCc, PreferredThenEnvThenCc) {
  EXPECT_EQ(default_cc("clang"), "clang");
  const char* saved = ::getenv("GLAF_CC");
  ::setenv("GLAF_CC", "/opt/bin/mycc", 1);
  EXPECT_EQ(default_cc(), "/opt/bin/mycc");
  EXPECT_EQ(default_cc("clang"), "clang");  // explicit choice still wins
  ::unsetenv("GLAF_CC");
  EXPECT_EQ(default_cc(), "cc");
  if (saved != nullptr) ::setenv("GLAF_CC", saved, 1);
}

TEST(CompilerIdentity, FirstVersionLineWhenAvailable) {
  if (!cc_available("cc")) GTEST_SKIP() << "no system compiler";
  const std::string& id = compiler_identity("cc");
  EXPECT_FALSE(id.empty());
  EXPECT_EQ(id.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace glaf
