#include "core/expr.hpp"

#include <gtest/gtest.h>

namespace glaf {
namespace {

TEST(Expr, LiteralConstructors) {
  EXPECT_EQ(make_int(3)->kind, Expr::Kind::kLiteral);
  EXPECT_EQ(std::get<std::int64_t>(make_int(3)->literal), 3);
  EXPECT_EQ(std::get<double>(make_real(2.5)->literal), 2.5);
  EXPECT_TRUE(std::get<bool>(make_bool(true)->literal));
}

TEST(Expr, ToStringRendersNesting) {
  // a[i][j+1] + 2.5
  auto read = make_grid_read(
      0, {make_index("i"), make_binary(BinOp::kAdd, make_index("j"),
                                       make_int(1))});
  auto e = make_binary(BinOp::kAdd, read, make_real(2.5));
  EXPECT_EQ(expr_to_string(*e), "(g#0[i][(j + 1)] + 2.5)");
}

TEST(Expr, ToStringUsesNamer) {
  auto e = make_grid_read(7, {make_index("k")});
  const auto namer = [](GridId id) { return id == 7 ? "flux" : "?"; };
  EXPECT_EQ(expr_to_string(*e, namer), "flux[k]");
}

TEST(Expr, StructuralEquality) {
  auto a = make_binary(BinOp::kMul, make_index("i"), make_int(2));
  auto b = make_binary(BinOp::kMul, make_index("i"), make_int(2));
  auto c = make_binary(BinOp::kMul, make_index("i"), make_int(3));
  EXPECT_TRUE(expr_equal(*a, *b));
  EXPECT_FALSE(expr_equal(*a, *c));
  EXPECT_FALSE(expr_equal(*a, *make_index("i")));
}

TEST(Expr, IsIndexFree) {
  EXPECT_TRUE(is_index_free(*make_binary(BinOp::kAdd, make_int(1),
                                         make_real(2.0))));
  EXPECT_FALSE(is_index_free(*make_index("i")));
  EXPECT_FALSE(is_index_free(*make_grid_read(0, {})));
}

TEST(Expr, VisitReachesAllNodes) {
  auto e = make_call("ABS", {make_binary(BinOp::kSub, make_index("i"),
                                         make_int(4))});
  int count = 0;
  visit_exprs(e, [&](const Expr&) { ++count; });
  EXPECT_EQ(count, 4);  // call, binary, index, literal
}

TEST(FoldConstant, Arithmetic) {
  auto e = make_binary(BinOp::kAdd, make_int(2),
                       make_binary(BinOp::kMul, make_int(3), make_int(4)));
  const auto v = fold_constant(*e);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(std::get<std::int64_t>(*v), 14);
}

TEST(FoldConstant, IntegerDivisionTruncates) {
  auto e = make_binary(BinOp::kDiv, make_int(7), make_int(2));
  const auto v = fold_constant(*e);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(std::get<std::int64_t>(*v), 3);
}

TEST(FoldConstant, NonConstantReturnsNullopt) {
  EXPECT_FALSE(fold_constant(*make_index("i")).has_value());
  EXPECT_FALSE(fold_constant(*make_grid_read(0, {})).has_value());
  auto mixed = make_binary(BinOp::kAdd, make_int(1), make_index("i"));
  EXPECT_FALSE(fold_constant(*mixed).has_value());
}

TEST(FoldConstant, Comparisons) {
  auto e = make_binary(BinOp::kLe, make_int(3), make_int(3));
  const auto v = fold_constant(*e);
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(std::get<bool>(*v));
}

TEST(FoldConstant, UnaryNegation) {
  auto e = make_unary(UnOp::kNeg, make_int(5));
  ASSERT_TRUE(fold_constant(*e).has_value());
  EXPECT_EQ(std::get<std::int64_t>(*fold_constant(*e)), -5);
}

TEST(FoldConstant, ModByZeroIsNullopt) {
  auto e = make_binary(BinOp::kMod, make_int(5), make_int(0));
  EXPECT_FALSE(fold_constant(*e).has_value());
}

TEST(OperatorStrings, Spellings) {
  EXPECT_STREQ(to_string(BinOp::kPow), "**");
  EXPECT_STREQ(to_string(BinOp::kNe), "!=");
  EXPECT_STREQ(to_string(BinOp::kAnd), ".and.");
  EXPECT_STREQ(to_string(UnOp::kNot), ".not.");
  EXPECT_TRUE(is_relational(BinOp::kLe));
  EXPECT_FALSE(is_relational(BinOp::kAdd));
  EXPECT_TRUE(is_logical(BinOp::kOr));
}

}  // namespace
}  // namespace glaf
