#include "core/validate.hpp"

#include <gtest/gtest.h>

#include "core/builder.hpp"

namespace glaf {
namespace {

bool has_error_containing(const std::vector<Diagnostic>& diags,
                          const std::string& needle) {
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError &&
        d.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(Validate, CleanProgramHasNoErrors) {
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble);
  pb.function("f").step("s").assign(x(), 1.0);
  EXPECT_TRUE(is_valid(validate(pb.build_unchecked())));
}

TEST(Validate, DuplicateFunctionNames) {
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble);
  pb.function("f").step("s").assign(x(), 1.0);
  pb.function("f").step("s").assign(x(), 2.0);
  EXPECT_TRUE(has_error_containing(validate(pb.build_unchecked()),
                                   "duplicate function name"));
}

TEST(Validate, FunctionNameCollidingWithLibrary) {
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble);
  pb.function("abs").step("s").assign(x(), 1.0);
  EXPECT_TRUE(has_error_containing(validate(pb.build_unchecked()),
                                   "collides with a library function"));
}

TEST(Validate, ShadowingGlobalIsError) {
  ProgramBuilder pb("m");
  auto g = pb.global("v", DataType::kDouble);
  auto fb = pb.function("f");
  auto local = fb.local("v", DataType::kDouble);
  fb.step("s").assign(local(), E(g));
  EXPECT_TRUE(
      has_error_containing(validate(pb.build_unchecked()), "shadows"));
}

TEST(Validate, ExternalGridMustBeGlobal) {
  ProgramBuilder pb("m");
  auto fb = pb.function("f");
  auto bad = fb.local("t", DataType::kDouble, {},
                      {.from_module = "other_mod"});
  fb.step("s").assign(bad(), 1.0);
  EXPECT_TRUE(has_error_containing(validate(pb.build_unchecked()),
                                   "Global Scope"));
}

TEST(Validate, ExternalGridCannotHaveInitData) {
  ProgramBuilder pb("m");
  pb.global("t", DataType::kDouble, {},
            {.from_module = "other_mod", .init = {1.0}});
  pb.function("f").step("s");
  EXPECT_TRUE(has_error_containing(validate(pb.build_unchecked()),
                                   "initial data"));
}

TEST(Validate, TypeParentRequiresModule) {
  ProgramBuilder pb("m");
  pb.global("q", DataType::kDouble, {}, {.type_parent = "atom1"});
  pb.function("f").step("s");
  EXPECT_TRUE(has_error_containing(validate(pb.build_unchecked()),
                                   "existing module"));
}

TEST(Validate, InitDataLengthMismatch) {
  ProgramBuilder pb("m");
  pb.global("a", DataType::kDouble, {3}, {.init = {1.0, 2.0}});
  pb.function("f").step("s");
  EXPECT_TRUE(has_error_containing(validate(pb.build_unchecked()),
                                   "initial data"));
}

TEST(Validate, UndefinedIndexVariable) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {8});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, 7);
  s.assign(a(idx("j")), 0.0);  // j is not a loop index
  EXPECT_TRUE(has_error_containing(validate(pb.build_unchecked()),
                                   "index variable 'j'"));
}

TEST(Validate, DuplicateIndexVariable) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {8});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, 7).foreach_("i", 0, 3);
  s.assign(a(idx("i")), 0.0);
  EXPECT_TRUE(has_error_containing(validate(pb.build_unchecked()),
                                   "duplicate index variable"));
}

TEST(Validate, NonIntegerSubscript) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {8});
  auto x = pb.global("x", DataType::kDouble);
  auto fb = pb.function("f");
  fb.step("s").assign(a(E(x)), 0.0);
  EXPECT_TRUE(has_error_containing(validate(pb.build_unchecked()),
                                   "subscript is not integer"));
}

TEST(Validate, ConditionMustBeLogical) {
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble);
  auto fb = pb.function("f");
  fb.step("s").if_(E(x) + 1.0, [&](BodyBuilder& b) { b.assign(x(), 0.0); });
  EXPECT_TRUE(has_error_containing(validate(pb.build_unchecked()),
                                   "condition is not logical"));
}

TEST(Validate, SubroutineReturningValueIsError) {
  ProgramBuilder pb("m");
  auto fb = pb.function("f");  // void
  fb.step("s").ret(1.0);
  EXPECT_TRUE(has_error_containing(validate(pb.build_unchecked()),
                                   "subroutine"));
}

TEST(Validate, FunctionWithBareReturnIsError) {
  ProgramBuilder pb("m");
  auto fb = pb.function("f", DataType::kDouble);
  fb.step("s").ret();
  EXPECT_TRUE(has_error_containing(validate(pb.build_unchecked()),
                                   "bare return"));
}

TEST(Validate, CallUnknownFunction) {
  ProgramBuilder pb("m");
  pb.function("f").step("s").call_sub("missing", {});
  EXPECT_TRUE(has_error_containing(validate(pb.build_unchecked()),
                                   "unknown function"));
}

TEST(Validate, CallArityMismatch) {
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble);
  auto callee = pb.function("callee");
  auto p = callee.param("p", DataType::kDouble);
  callee.step("s").assign(p(), 1.0);
  pb.function("caller").step("s").call_sub("callee", {E(x), E(x)});
  EXPECT_TRUE(has_error_containing(validate(pb.build_unchecked()),
                                   "expects 1 argument"));
}

TEST(Validate, CallValueFunctionAsSubroutine) {
  ProgramBuilder pb("m");
  auto f = pb.function("valfn", DataType::kDouble);
  f.step("s").ret(1.0);
  pb.function("caller").step("s").call_sub("valfn", {});
  EXPECT_TRUE(has_error_containing(validate(pb.build_unchecked()),
                                   "returns a value"));
}

TEST(Validate, SubroutineUsedInExpression) {
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble);
  auto sub = pb.function("subr");
  sub.step("s");
  pb.function("caller").step("s").assign(x(), call("subr", {}));
  EXPECT_TRUE(has_error_containing(validate(pb.build_unchecked()),
                                   "returns no value"));
}

TEST(Validate, RecursionRejected) {
  ProgramBuilder pb("m");
  auto a = pb.function("fa");
  a.step("s").call_sub("fb", {});
  auto b = pb.function("fb");
  b.step("s").call_sub("fa", {});
  EXPECT_TRUE(has_error_containing(validate(pb.build_unchecked()),
                                   "recursive"));
}

TEST(Validate, WholeGridOutsideCallRejected) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {4});
  auto x = pb.global("x", DataType::kDouble);
  // x = a  (whole-grid read outside a call argument)
  pb.function("f").step("s").assign(x(), E(a));
  EXPECT_TRUE(has_error_containing(validate(pb.build_unchecked()),
                                   "whole-grid"));
}

TEST(Validate, WholeGridAllowedInSum) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {4});
  auto x = pb.global("x", DataType::kDouble);
  pb.function("f").step("s").assign(x(), call("SUM", {E(a)}));
  EXPECT_TRUE(is_valid(validate(pb.build_unchecked())));
}

TEST(Validate, RankMismatchInWholeGridArgument) {
  ProgramBuilder pb("m");
  auto a2 = pb.global("a2", DataType::kDouble, {2, 2});
  auto callee = pb.function("callee");
  auto v = callee.param("v", DataType::kDouble, {4});
  callee.step("s").assign(v(liti(0)), 1.0);
  pb.function("caller").step("s").call_sub("callee", {E(a2)});
  EXPECT_TRUE(has_error_containing(validate(pb.build_unchecked()), "rank"));
}

TEST(Validate, NegativeExtentRejected) {
  ProgramBuilder pb("m");
  pb.global("a", DataType::kDouble, {liti(0)});
  pb.function("f").step("s");
  EXPECT_TRUE(has_error_containing(validate(pb.build_unchecked()),
                                   "positive"));
}

TEST(Validate, RenderDiagnosticsFormat) {
  std::vector<Diagnostic> diags = {
      {Severity::kError, "function f", "boom"},
      {Severity::kWarning, "grid g", "meh"},
  };
  const std::string text = render_diagnostics(diags);
  EXPECT_NE(text.find("error: function f: boom"), std::string::npos);
  EXPECT_NE(text.find("warning: grid g: meh"), std::string::npos);
}

}  // namespace
}  // namespace glaf
