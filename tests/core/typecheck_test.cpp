#include "core/typecheck.hpp"

#include <gtest/gtest.h>

#include "core/builder.hpp"

namespace glaf {
namespace {

class TypecheckTest : public ::testing::Test {
 protected:
  TypecheckTest() : pb_("m") {
    i_ = pb_.global("gi", DataType::kInt);
    r_ = pb_.global("gr", DataType::kReal);
    d_ = pb_.global("gd", DataType::kDouble);
    l_ = pb_.global("gl", DataType::kLogical);
    auto fb = pb_.function("valfn", DataType::kReal);
    fb.step("s").ret(E(r_));
    program_ = pb_.build_unchecked();
  }

  DataType type_of(const E& e) { return infer_type(program_, *e.node()); }

  ProgramBuilder pb_;
  GridHandle i_, r_, d_, l_;
  Program program_;
};

TEST_F(TypecheckTest, PromotionLattice) {
  EXPECT_EQ(promote(DataType::kInt, DataType::kInt), DataType::kInt);
  EXPECT_EQ(promote(DataType::kInt, DataType::kReal), DataType::kReal);
  EXPECT_EQ(promote(DataType::kReal, DataType::kDouble), DataType::kDouble);
  EXPECT_EQ(promote(DataType::kInt, DataType::kDouble), DataType::kDouble);
  EXPECT_EQ(promote(DataType::kLogical, DataType::kLogical),
            DataType::kLogical);
  EXPECT_EQ(promote(DataType::kLogical, DataType::kInt), DataType::kVoid);
}

TEST_F(TypecheckTest, Literals) {
  EXPECT_EQ(type_of(liti(3)), DataType::kInt);
  EXPECT_EQ(type_of(lit(2.5)), DataType::kDouble);
  EXPECT_EQ(type_of(E(true)), DataType::kLogical);
}

TEST_F(TypecheckTest, IndexIsInt) {
  EXPECT_EQ(type_of(idx("i")), DataType::kInt);
}

TEST_F(TypecheckTest, ArithmeticPromotes) {
  EXPECT_EQ(type_of(E(i_) + liti(1)), DataType::kInt);
  EXPECT_EQ(type_of(E(i_) + E(r_)), DataType::kReal);
  EXPECT_EQ(type_of(E(r_) * E(d_)), DataType::kDouble);
}

TEST_F(TypecheckTest, ComparisonYieldsLogical) {
  EXPECT_EQ(type_of(E(i_) < E(d_)), DataType::kLogical);
  EXPECT_EQ(type_of(E(d_) == E(d_)), DataType::kLogical);
}

TEST_F(TypecheckTest, LogicalOpsRequireLogical) {
  EXPECT_EQ(type_of(E(l_) && E(l_)), DataType::kLogical);
  EXPECT_EQ(type_of(E(l_) && E(i_)), DataType::kVoid);
  EXPECT_EQ(type_of(lnot(E(l_))), DataType::kLogical);
  EXPECT_EQ(type_of(lnot(E(i_))), DataType::kVoid);
}

TEST_F(TypecheckTest, NegationKeepsNumericType) {
  EXPECT_EQ(type_of(-E(i_)), DataType::kInt);
  EXPECT_EQ(type_of(-E(d_)), DataType::kDouble);
  EXPECT_EQ(type_of(-E(l_)), DataType::kVoid);
}

TEST_F(TypecheckTest, LibraryCallResults) {
  EXPECT_EQ(type_of(call("ALOG", {E(r_)})), DataType::kDouble);
  EXPECT_EQ(type_of(call("INT", {E(d_)})), DataType::kInt);
  EXPECT_EQ(type_of(call("ABS", {E(i_)})), DataType::kInt);
  EXPECT_EQ(type_of(call("MAX", {E(i_), E(d_)})), DataType::kDouble);
}

TEST_F(TypecheckTest, UserCallUsesReturnType) {
  EXPECT_EQ(type_of(call("valfn", {})), DataType::kReal);
  EXPECT_EQ(type_of(call("no_such_fn", {})), DataType::kVoid);
}

}  // namespace
}  // namespace glaf
