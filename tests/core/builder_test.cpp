#include "core/builder.hpp"

#include <gtest/gtest.h>

#include "testing/programs.hpp"

namespace glaf {
namespace {

TEST(Builder, SaxpyProgramShape) {
  const Program p = testing::saxpy_program();
  EXPECT_EQ(p.module_name, "saxpy_mod");
  EXPECT_EQ(p.global_grids.size(), 4u);
  ASSERT_EQ(p.functions.size(), 1u);
  const Function& fn = p.functions[0];
  EXPECT_EQ(fn.name, "saxpy");
  EXPECT_EQ(fn.return_type, DataType::kVoid);
  ASSERT_EQ(fn.steps.size(), 1u);
  EXPECT_EQ(fn.steps[0].loops.size(), 1u);
  EXPECT_EQ(fn.steps[0].loops[0].index_var, "i");
  ASSERT_EQ(fn.steps[0].body.size(), 1u);
  EXPECT_EQ(fn.steps[0].body[0].kind, Stmt::Kind::kAssign);
}

TEST(Builder, GridOptsCarryIntegrationAttributes) {
  const Program p = testing::integration_program();
  const Grid* tsfc = p.find_grid("tsfc");
  ASSERT_NE(tsfc, nullptr);
  EXPECT_EQ(tsfc->external, ExternalKind::kModule);
  EXPECT_EQ(tsfc->external_module, "fuliou_data");

  const Grid* press = p.find_grid("press");
  ASSERT_NE(press, nullptr);
  EXPECT_EQ(press->external, ExternalKind::kCommon);
  EXPECT_EQ(press->common_block, "atmos");

  const Grid* accum = p.find_grid("accum");
  ASSERT_NE(accum, nullptr);
  EXPECT_TRUE(accum->module_scope);
  EXPECT_EQ(accum->comment, "module-scope accumulator");

  const Grid* charge = p.find_grid("charge");
  ASSERT_NE(charge, nullptr);
  EXPECT_EQ(charge->type_parent, "atom1");
  EXPECT_EQ(charge->external_module, "particle_mod");
}

TEST(Builder, ParamsAreOrdered) {
  ProgramBuilder pb("m");
  auto fb = pb.function("f", DataType::kDouble);
  auto a = fb.param("a", DataType::kDouble);
  auto n = fb.param("n", DataType::kInt);
  auto arr = fb.param("arr", DataType::kDouble, {E(n)});
  fb.step("s").ret(E(a) + arr(liti(0)));
  const Program p = pb.build().value();
  const Function& fn = p.functions[0];
  ASSERT_EQ(fn.params.size(), 3u);
  EXPECT_EQ(p.grid(fn.params[0]).name, "a");
  EXPECT_EQ(p.grid(fn.params[0]).param_index, 0);
  EXPECT_EQ(p.grid(fn.params[2]).name, "arr");
  EXPECT_EQ(p.grid(fn.params[2]).param_index, 2);
}

TEST(Builder, IfElseBodiesNest) {
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble);
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.if_(E(x) > 0.0,
        [&](BodyBuilder& b) { b.assign(x(), E(x) * 2.0); },
        [&](BodyBuilder& b) {
          b.if_(E(x) < -1.0, [&](BodyBuilder& bb) { bb.assign(x(), 0.0); });
        });
  const Program p = pb.build().value();
  const Stmt& stmt = p.functions[0].steps[0].body[0];
  ASSERT_EQ(stmt.kind, Stmt::Kind::kIf);
  ASSERT_EQ(stmt.arms.size(), 1u);
  EXPECT_EQ(stmt.arms[0].body.size(), 1u);
  ASSERT_EQ(stmt.else_body.size(), 1u);
  EXPECT_EQ(stmt.else_body[0].kind, Stmt::Kind::kIf);
}

TEST(Builder, MultipleStepsAndFunctionsStayStable) {
  // StepBuilder handles must stay valid across later function creation
  // (index-based handles, not pointers).
  ProgramBuilder pb("m");
  auto g = pb.global("g", DataType::kDouble);
  auto f1 = pb.function("first");
  auto s1 = f1.step("a");
  auto f2 = pb.function("second");
  auto s2 = f2.step("b");
  s1.assign(g(), 1.0);  // written after f2 was created
  s2.assign(g(), 2.0);
  const Program p = pb.build().value();
  EXPECT_EQ(p.functions[0].steps[0].body.size(), 1u);
  EXPECT_EQ(p.functions[1].steps[0].body.size(), 1u);
}

TEST(Builder, ForeachDimUsesGridExtent) {
  ProgramBuilder pb("m");
  auto img = pb.global("img", DataType::kInt, {4, 3});
  auto fb = pb.function("touch");
  auto s = fb.step("s");
  s.foreach_dim("r", img, 0).foreach_dim("c", img, 1);
  s.assign(img(idx("r"), idx("c")), 0);
  const Program p = pb.build().value();
  const Step& step = p.functions[0].steps[0];
  ASSERT_EQ(step.loops.size(), 2u);
  const auto end0 = fold_constant(*step.loops[0].end);
  const auto end1 = fold_constant(*step.loops[1].end);
  ASSERT_TRUE(end0 && end1);
  EXPECT_EQ(std::get<std::int64_t>(*end0), 3);
  EXPECT_EQ(std::get<std::int64_t>(*end1), 2);
}

TEST(Builder, CallSubAndRet) {
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble);
  auto helper = pb.function("helper", DataType::kDouble);
  {
    auto hx = helper.param("hx", DataType::kDouble);
    helper.step("s").ret(E(hx) * 2.0);
  }
  auto sub = pb.function("sub");
  {
    auto sx = sub.param("sx", DataType::kDouble);
    sub.step("s").assign(x(), call("helper", {E(sx)}));
  }
  auto main_fn = pb.function("main_fn");
  main_fn.step("s").call_sub("sub", {E(x)});
  ASSERT_TRUE(pb.build().is_ok()) << pb.build().status().message();
}

TEST(Builder, BuildReturnsErrorForInvalidProgram) {
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble, {4});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  // Wrong subscript count: rank-1 grid with two subscripts.
  s.assign(x(liti(0), liti(1)), 1.0);
  const auto result = pb.build();
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("rank"), std::string::npos);
}

}  // namespace
}  // namespace glaf
