#include "core/libfuncs.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace glaf {
namespace {

TEST(LibFuncs, LookupIsCaseInsensitive) {
  EXPECT_NE(find_lib_func("abs"), nullptr);
  EXPECT_NE(find_lib_func("Alog"), nullptr);
  EXPECT_NE(find_lib_func("SUM"), nullptr);
  EXPECT_EQ(find_lib_func("nope"), nullptr);
}

TEST(LibFuncs, PaperAddedFunctionsPresent) {
  // §3.6: "we extended support for the ABS(), ALOG(), SUM(), and other
  // functions".
  for (const char* name : {"ABS", "ALOG", "SUM"}) {
    const LibFunc* f = find_lib_func(name);
    ASSERT_NE(f, nullptr) << name;
    EXPECT_NE(f->eval, nullptr);
  }
}

TEST(LibFuncs, EvalBasics) {
  const double a1[] = {-2.5};
  EXPECT_DOUBLE_EQ(find_lib_func("ABS")->eval(a1, 1), 2.5);
  const double a2[] = {std::exp(2.0)};
  EXPECT_NEAR(find_lib_func("ALOG")->eval(a2, 1), 2.0, 1e-12);
  const double a3[] = {3.0, -4.0, 7.5};
  EXPECT_DOUBLE_EQ(find_lib_func("MIN")->eval(a3, 3), -4.0);
  EXPECT_DOUBLE_EQ(find_lib_func("MAX")->eval(a3, 3), 7.5);
}

TEST(LibFuncs, SumIsWholeGrid) {
  const LibFunc* sum = find_lib_func("SUM");
  ASSERT_NE(sum, nullptr);
  EXPECT_TRUE(sum->whole_grid);
  const double buf[] = {1.0, 2.0, 3.5};
  EXPECT_DOUBLE_EQ(sum->eval(buf, 3), 6.5);
}

TEST(LibFuncs, FortranSignSemantics) {
  const LibFunc* sign = find_lib_func("SIGN");
  const double pos[] = {-3.0, 2.0};
  EXPECT_DOUBLE_EQ(sign->eval(pos, 2), 3.0);
  const double neg[] = {3.0, -2.0};
  EXPECT_DOUBLE_EQ(sign->eval(neg, 2), -3.0);
}

TEST(LibFuncs, ArityMetadata) {
  EXPECT_EQ(find_lib_func("ABS")->arity, 1);
  EXPECT_EQ(find_lib_func("ATAN2")->arity, 2);
  EXPECT_EQ(find_lib_func("MIN")->arity, -1);  // variadic
}

TEST(LibFuncs, RegistryHasNoDuplicates) {
  const auto& all = all_lib_funcs();
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(all[i].name, all[j].name);
    }
  }
  EXPECT_GE(all.size(), 20u);
}

}  // namespace
}  // namespace glaf
