#include "core/program.hpp"

#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "testing/programs.hpp"

namespace glaf {
namespace {

TEST(ProgramApi, FindersReturnNullForUnknown) {
  const Program p = testing::saxpy_program();
  EXPECT_EQ(p.find_function("nope"), nullptr);
  EXPECT_EQ(p.find_grid("nope"), nullptr);
  EXPECT_NE(p.find_function("saxpy"), nullptr);
  EXPECT_NE(p.find_grid("y"), nullptr);
}

TEST(ProgramApi, GridNamerResolvesNames) {
  const Program p = testing::saxpy_program();
  const auto namer = p.grid_namer();
  EXPECT_EQ(namer(p.find_grid("x")->id), "x");
  EXPECT_EQ(namer(9999), "g#9999");
}

TEST(ProgramApi, UsedModulesCollectsDistinctSorted) {
  const Program p = testing::integration_program();
  const Function& fn = *p.find_function("update");
  const std::vector<std::string> mods = p.used_modules(fn);
  ASSERT_EQ(mods.size(), 2u);
  EXPECT_EQ(mods[0], "fuliou_data");
  EXPECT_EQ(mods[1], "particle_mod");
}

TEST(ProgramApi, ReferencedGridsIncludesExtentParameters) {
  // press has extent E(nlev): referencing press must also pull in nlev.
  const Program p = testing::integration_program();
  const Function& fn = *p.find_function("update");
  const std::vector<GridId> ids = p.referenced_grids(fn);
  const auto has = [&](const char* name) {
    const Grid* g = p.find_grid(name);
    return g != nullptr &&
           std::find(ids.begin(), ids.end(), g->id) != ids.end();
  };
  EXPECT_TRUE(has("press"));
  EXPECT_TRUE(has("nlev"));
  EXPECT_TRUE(has("accum"));
  EXPECT_TRUE(has("tsfc"));
}

TEST(ProgramApi, ProgramToStringMentionsEverything) {
  const Program p = testing::integration_program();
  const std::string text = program_to_string(p);
  EXPECT_NE(text.find("program module=integ_mod"), std::string::npos);
  EXPECT_NE(text.find("use=fuliou_data"), std::string::npos);
  EXPECT_NE(text.find("common=/atmos/"), std::string::npos);
  EXPECT_NE(text.find("type_parent=atom1"), std::string::npos);
  EXPECT_NE(text.find("module_scope"), std::string::npos);
  EXPECT_NE(text.find("function update(0 params) -> void"),
            std::string::npos);
  EXPECT_NE(text.find("foreach k in [0, "), std::string::npos);
}

TEST(ProgramApi, StmtToStringRendersIfChains) {
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble);
  auto fb = pb.function("f");
  fb.step("s").if_(
      E(x) > 0.0, [&](BodyBuilder& b) { b.assign(x(), 1.0); },
      [&](BodyBuilder& b) { b.ret(); });
  const Program p = pb.build().value();
  const std::string text =
      stmt_to_string(p, p.functions[0].steps[0].body[0]);
  EXPECT_NE(text.find("if (x > 0.0):"), std::string::npos);
  EXPECT_NE(text.find("x = 1.0"), std::string::npos);
  EXPECT_NE(text.find("else:"), std::string::npos);
  EXPECT_NE(text.find("return"), std::string::npos);
}

TEST(ProgramApi, WrittenGridsScansAllFunctions) {
  const Program p = testing::integration_program();
  const std::set<GridId> written = written_grids(p);
  EXPECT_EQ(written.count(p.find_grid("accum")->id), 1u);
  EXPECT_EQ(written.count(p.find_grid("press")->id), 0u);  // read-only
}

TEST(ProgramApi, FoldWithGlobalsRespectsExternalOwnership) {
  // External grids never fold even when never written here (their values
  // belong to the legacy code).
  const Program p = testing::integration_program();
  const Grid* tsfc = p.find_grid("tsfc");
  auto read = make_grid_read(tsfc->id, {});
  EXPECT_FALSE(fold_with_globals(p, *read).has_value());
  // Owned never-written scalar with init folds.
  const Grid* nlev = p.find_grid("nlev");
  auto nread = make_grid_read(nlev->id, {});
  const auto v = fold_with_globals(p, *nread);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(std::get<std::int64_t>(*v), 4);
}

}  // namespace
}  // namespace glaf
