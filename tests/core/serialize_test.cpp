#include "core/serialize.hpp"

#include <gtest/gtest.h>

#include "core/validate.hpp"
#include "fuliou/glaf_kernels.hpp"
#include "fuliou/harness.hpp"
#include "fuliou/reference.hpp"
#include "interp/machine.hpp"
#include "testing/programs.hpp"

namespace glaf {
namespace {

TEST(Serialize, RoundTripIsStable) {
  // serialize(parse(serialize(p))) == serialize(p) — full fixpoint.
  for (const Program& p :
       {testing::saxpy_program(), testing::prefix_program(),
        testing::reduce_program(), testing::integration_program()}) {
    const std::string once = serialize_program(p);
    const auto parsed = parse_program(once);
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
    EXPECT_EQ(serialize_program(parsed.value()), once);
  }
}

TEST(Serialize, ParsedProgramStillValidates) {
  const Program p = testing::integration_program();
  const auto parsed = parse_program(serialize_program(p));
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_TRUE(is_valid(validate(parsed.value())))
      << render_diagnostics(validate(parsed.value()));
}

TEST(Serialize, SarbProgramRoundTripsAndRunsIdentically) {
  // The full 6-subroutine case-study program survives a round trip and
  // produces bit-identical results through the interpreter.
  const Program original = fuliou::build_sarb_program();
  const std::string text = serialize_program(original);
  const auto parsed = parse_program(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  EXPECT_EQ(serialize_program(parsed.value()), text);

  const fuliou::AtmosphereProfile profile = fuliou::make_profile(3);
  Machine m1(original);
  Machine m2(parsed.value());
  const auto r1 = fuliou::run_glaf_sarb(m1, profile);
  const auto r2 = fuliou::run_glaf_sarb(m2, profile);
  ASSERT_TRUE(r1.is_ok());
  ASSERT_TRUE(r2.is_ok());
  EXPECT_EQ(fuliou::max_abs_diff(r1.value(), r2.value()), 0.0);
}

TEST(Serialize, AttributesSurvive) {
  const Program p = testing::integration_program();
  const Program q = parse_program(serialize_program(p)).value();
  const Grid* tsfc = q.find_grid("tsfc");
  ASSERT_NE(tsfc, nullptr);
  EXPECT_EQ(tsfc->external, ExternalKind::kModule);
  EXPECT_EQ(tsfc->external_module, "fuliou_data");
  const Grid* press = q.find_grid("press");
  EXPECT_EQ(press->common_block, "atmos");
  const Grid* accum = q.find_grid("accum");
  EXPECT_TRUE(accum->module_scope);
  EXPECT_EQ(accum->comment, "module-scope accumulator");
  const Grid* charge = q.find_grid("charge");
  EXPECT_EQ(charge->type_parent, "atom1");
}

TEST(Serialize, CommentsWithQuotesEscape) {
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble, {},
                     {.comment = "a \"quoted\" \\ comment"});
  pb.function("f").step("s").assign(x(), 1.0);
  const Program p = pb.build().value();
  const auto q = parse_program(serialize_program(p));
  ASSERT_TRUE(q.is_ok()) << q.status().message();
  EXPECT_EQ(q.value().find_grid("x")->comment, "a \"quoted\" \\ comment");
}

TEST(Serialize, InitDataTypesPreserved) {
  ProgramBuilder pb("m");
  pb.global("gi", DataType::kInt, {}, {.init = {std::int64_t{42}}});
  pb.global("gd", DataType::kDouble, {}, {.init = {2.5}});
  pb.global("gl", DataType::kLogical, {}, {.init = {true}});
  auto x = pb.global("x", DataType::kDouble);
  pb.function("f").step("s").assign(x(), 0.0);
  const Program q = parse_program(serialize_program(pb.build().value())).value();
  EXPECT_TRUE(std::holds_alternative<std::int64_t>(
      q.find_grid("gi")->init_data[0]));
  EXPECT_TRUE(std::holds_alternative<double>(q.find_grid("gd")->init_data[0]));
  EXPECT_TRUE(std::holds_alternative<bool>(q.find_grid("gl")->init_data[0]));
}

TEST(Parse, RejectsMalformedInput) {
  EXPECT_FALSE(parse_program("").is_ok());
  EXPECT_FALSE(parse_program("(").is_ok());
  EXPECT_FALSE(parse_program("(glaf-program 1").is_ok());
  EXPECT_FALSE(parse_program("(other-format 1)").is_ok());
  EXPECT_FALSE(parse_program("(glaf-program 99 (module m))").is_ok());
  EXPECT_FALSE(parse_program("(glaf-program 1 (module m) (bogus))").is_ok());
  EXPECT_FALSE(parse_program("(glaf-program 1 (module m)) extra").is_ok());
}

TEST(Parse, RejectsOutOfOrderIds) {
  const char* text =
      "(glaf-program 1 (module m) (globals)"
      " (grid 1 a double))";
  const auto r = parse_program(text);
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("id order"), std::string::npos);
}

TEST(Parse, RejectsUnknownExpressionHead) {
  const char* text =
      "(glaf-program 1 (module m) (globals 0)"
      " (grid 0 x double)"
      " (function 0 f void (params) (locals)"
      "  (steps (step s (body (assign (lv 0) (wat 1)))))))";
  const auto r = parse_program(text);
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("unknown expression"),
            std::string::npos);
}

TEST(Parse, LineCommentsIgnored) {
  const char* text =
      "; a saved GLAF program\n"
      "(glaf-program 1 ; version\n"
      " (module m) (globals 0)\n"
      " (grid 0 x double)\n"
      " (function 0 f void (params) (locals)\n"
      "  (steps (step s (body (assign (lv 0) (lit 1.5)))))))";
  const auto r = parse_program(text);
  ASSERT_TRUE(r.is_ok()) << r.status().message();
  EXPECT_EQ(r.value().module_name, "m");
}

TEST(Serialize, DeterministicOutput) {
  const Program p = fuliou::build_sarb_program();
  EXPECT_EQ(serialize_program(p), serialize_program(p));
}

}  // namespace
}  // namespace glaf
