// Parallel native-engine tests: the threaded kernel must be *bitwise*
// identical to the serial kernel (and to the deterministic parallel plan
// engine) under every directive policy — the contract the emitter
// guarantees by only threading bit-exact steps, giving each rank its own
// reduction scratch and combining in rank order.
//
// Covered here: the six SARB Table-1 subroutines and the FUN3D
// decomposition (edgejp drives all five §4.2 sub-functions) under
// v0..v3; integer sum/min/max reduction ordering; ownership-banded
// float accumulation; float reductions staying serial; 1-thread ==
// N-thread; dynamic scheduling; serial/parallel cache coexistence; and
// the forced-fallback path without a compiler.
//
// Equality is value equality (== with NaN==NaN), not bit_cast: the
// rank-ordered combine adds each rank's scratch to the target, and
// `x + 0.0` canonicalizes -0.0 to +0.0 — a representation change with
// no value change, exactly what the fuzz oracle's exact legs accept.

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "fuliou/glaf_kernels.hpp"
#include "fuliou/harness.hpp"
#include "fuliou/profile.hpp"
#include "fun3d/glaf_full.hpp"
#include "fun3d/glaf_fun3d.hpp"
#include "fun3d/mesh.hpp"
#include "interp/machine.hpp"
#include "jit/cache.hpp"
#include "support/strings.hpp"
#include "support/subprocess.hpp"
#include "testing/programs.hpp"

namespace glaf {
namespace {

bool have_cc() { return cc_available("cc"); }

std::string fresh_cache_dir(const std::string& tag) {
  std::string tmpl = cat(::testing::TempDir(), "glaf_pcache_", tag, "_XXXXXX");
  const char* dir = mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return dir != nullptr ? dir : tmpl;
}

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

InterpOptions serial_native() {
  InterpOptions o;
  o.engine = ExecEngine::kNative;
  return o;
}

InterpOptions parallel_native(DirectivePolicy policy, int threads = 4,
                              bool dynamic = false) {
  InterpOptions o;
  o.engine = ExecEngine::kNative;
  o.parallel = true;
  o.num_threads = threads;
  o.policy = policy;
  o.dynamic_schedule = dynamic;
  // These tests exercise the dispatch machinery itself, so the profit
  // gate must not divert small regions to the serial path (on a 1-core
  // host the calibrated gate would serialize everything).
  o.gate_min_units = 0;
  return o;
}

InterpOptions parallel_plan_det(DirectivePolicy policy, int threads = 4) {
  InterpOptions o;
  o.engine = ExecEngine::kPlan;
  o.parallel = true;
  o.num_threads = threads;
  o.policy = policy;
  o.deterministic_parallel = true;
  return o;
}

constexpr DirectivePolicy kAllPolicies[] = {
    DirectivePolicy::kV0, DirectivePolicy::kV1, DirectivePolicy::kV2,
    DirectivePolicy::kV3};

/// Value equality with NaN==NaN (see the file comment for why this is
/// the right comparator, not bit_cast).
void expect_value_equal(double a, double b, const std::string& what) {
  if (std::isnan(a) && std::isnan(b)) return;
  EXPECT_TRUE(a == b) << what << ": reference " << a << " vs " << b;
}

void require_native(const Machine& m) {
  ASSERT_TRUE(m.native_report().available)
      << "native engine unavailable: " << m.native_report().fallback_reason;
}

void compare_all_globals(Machine& reference, Machine& other,
                         const std::string& tag) {
  for (const GridId id : reference.program().global_grids) {
    const Grid& g = reference.program().grid(id);
    if (g.is_struct()) continue;
    const std::vector<double> a = reference.array(g.name).value();
    const std::vector<double> b = other.array(g.name).value();
    ASSERT_EQ(a.size(), b.size()) << tag << ": " << g.name;
    for (std::size_t i = 0; i < a.size(); ++i) {
      expect_value_equal(a[i], b[i], cat(tag, ": ", g.name, "[", i, "]"));
    }
  }
}

// ---- case-study kernels -----------------------------------------------------

TEST(ParallelNativeSarb, Table1SubroutinesBitIdenticalUnderAllPolicies) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const ScopedEnv env("GLAF_KERNEL_CACHE", fresh_cache_dir("sarb"));
  const Program sarb = fuliou::build_sarb_program();
  const fuliou::AtmosphereProfile profile = fuliou::make_profile(7);
  for (const DirectivePolicy policy : kAllPolicies) {
    for (const std::string& name : fuliou::table1_subroutines()) {
      const Function* fn = sarb.find_function(name);
      if (fn == nullptr || !fn->params.empty()) continue;
      const std::string tag = cat(name, "/", to_string(policy));
      Machine serial(sarb, serial_native());
      Machine par(sarb, parallel_native(policy));
      Machine det(sarb, parallel_plan_det(policy));
      require_native(serial);
      require_native(par);
      for (Machine* m : {&serial, &par, &det}) {
        ASSERT_TRUE(fuliou::load_profile(*m, profile).is_ok()) << tag;
        ASSERT_TRUE(m->call(name).is_ok()) << tag;
      }
      EXPECT_GT(par.native_report().native_calls, 0u) << tag;
      compare_all_globals(serial, par, cat(tag, " native"));
      compare_all_globals(serial, det, cat(tag, " plan-det"));
    }
  }
}

TEST(ParallelNativeSarb, OneThreadEqualsEightThreads) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const ScopedEnv env("GLAF_KERNEL_CACHE", fresh_cache_dir("threads"));
  const Program sarb = fuliou::build_sarb_program();
  const fuliou::AtmosphereProfile profile = fuliou::make_profile(11);
  Machine one(sarb, parallel_native(DirectivePolicy::kV0, 1));
  Machine eight(sarb, parallel_native(DirectivePolicy::kV0, 8));
  for (Machine* m : {&one, &eight}) {
    require_native(*m);
    ASSERT_TRUE(fuliou::load_profile(*m, profile).is_ok());
    ASSERT_TRUE(m->call("longwave_entropy_model").is_ok());
  }
  EXPECT_EQ(one.native_report().num_threads, 1);
  EXPECT_EQ(eight.native_report().num_threads, 8);
  EXPECT_GT(eight.native_report().parallel_regions, 0u);
  compare_all_globals(one, eight, "1-vs-8-threads");
}

TEST(ParallelNativeFun3d, SubFunctionsBitIdenticalUnderAllPolicies) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const ScopedEnv env("GLAF_KERNEL_CACHE", fresh_cache_dir("fun3d"));
  // edgejp drives all five §4.2 sub-functions (cell_loop, edge_loop,
  // angle_check, ioff_search via the call tree, plus face_weight).
  const fun3d::Mesh mesh = fun3d::make_mesh(60, 3);
  const Program p = fun3d::build_fun3d_full_program(mesh);
  for (const DirectivePolicy policy : kAllPolicies) {
    const std::string tag = cat("edgejp/", to_string(policy));
    Machine serial(p, serial_native());
    Machine par(p, parallel_native(policy));
    Machine det(p, parallel_plan_det(policy));
    require_native(serial);
    require_native(par);
    for (Machine* m : {&serial, &par, &det}) {
      ASSERT_TRUE(fun3d::load_mesh(*m, mesh).is_ok()) << tag;
      ASSERT_TRUE(m->call("edgejp").is_ok()) << tag;
    }
    EXPECT_GT(par.native_report().native_calls, 0u) << tag;
    compare_all_globals(serial, par, cat(tag, " native"));
    compare_all_globals(serial, det, cat(tag, " plan-det"));
  }
}

TEST(ParallelNativeFun3d, SmallKernelsBitIdentical) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const ScopedEnv env("GLAF_KERNEL_CACHE", fresh_cache_dir("fun3d_small"));
  const Program p = fun3d::build_fun3d_glaf_program();
  const auto load = [](Machine& m) {
    std::vector<double> ea(fun3d::kGlafEdges), eb(fun3d::kGlafEdges);
    std::vector<double> w(fun3d::kGlafEdges), q(fun3d::kGlafNodes);
    for (int e = 0; e < fun3d::kGlafEdges; ++e) {
      ea[static_cast<std::size_t>(e)] = e % fun3d::kGlafNodes;
      eb[static_cast<std::size_t>(e)] = (e * 7 + 3) % fun3d::kGlafNodes;
      w[static_cast<std::size_t>(e)] = 0.25 + 0.5 * (e % 3);
    }
    for (int k = 0; k < fun3d::kGlafNodes; ++k) {
      q[static_cast<std::size_t>(k)] = 1.0 + 0.01 * k;
    }
    ASSERT_TRUE(m.set_array("edge_a", ea).is_ok());
    ASSERT_TRUE(m.set_array("edge_b", eb).is_ok());
    ASSERT_TRUE(m.set_array("w", w).is_ok());
    ASSERT_TRUE(m.set_array("q", q).is_ok());
  };
  for (const std::string& name :
       {std::string("edge_scatter"), std::string("smooth_q")}) {
    for (const DirectivePolicy policy : kAllPolicies) {
      const std::string tag = cat(name, "/", to_string(policy));
      Machine serial(p, serial_native());
      Machine par(p, parallel_native(policy));
      require_native(serial);
      require_native(par);
      for (Machine* m : {&serial, &par}) {
        load(*m);
        ASSERT_TRUE(m->call(name).is_ok()) << tag;
      }
      compare_all_globals(serial, par, tag);
    }
  }
}

// ---- reduction ordering -----------------------------------------------------

/// total += a(i) over an INTEGER array: an exact reduction the emitter
/// may thread (per-rank scratch, rank-ordered combine).
Program int_reduce_program(int n) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kInt, {E(n)});
  auto total = pb.global("total", DataType::kInt);
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, n - 1);
  s.assign(total(), E(total) + a(idx("i")));
  return pb.build().value();
}

TEST(ParallelNativeReductions, IntSumBitwiseAcrossThreadCounts) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const ScopedEnv env("GLAF_KERNEL_CACHE", fresh_cache_dir("intsum"));
  const Program p = int_reduce_program(64);
  std::vector<double> a(64);
  for (int i = 0; i < 64; ++i) a[static_cast<std::size_t>(i)] = (i * 13) % 31 - 15;
  Machine serial(p, serial_native());
  require_native(serial);
  ASSERT_TRUE(serial.set_array("a", a).is_ok());
  ASSERT_TRUE(serial.call("f").is_ok());
  const double expected = serial.scalar("total").value();
  for (const int threads : {1, 2, 4, 8}) {
    Machine par(p, parallel_native(DirectivePolicy::kV0, threads));
    require_native(par);
    ASSERT_TRUE(par.set_array("a", a).is_ok());
    ASSERT_TRUE(par.call("f").is_ok());
    EXPECT_EQ(par.native_report().parallel_calls, 1u) << threads;
    EXPECT_GT(par.native_report().parallel_regions, 0u) << threads;
    expect_value_equal(expected, par.scalar("total").value(),
                       cat("total@", threads, " threads"));
  }
}

TEST(ParallelNativeReductions, IntMinMaxBitwise) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const ScopedEnv env("GLAF_KERNEL_CACHE", fresh_cache_dir("minmax"));
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kInt, {E(48)});
  auto lo = pb.global("lo", DataType::kInt);
  auto hi = pb.global("hi", DataType::kInt);
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, 47);
  s.assign(lo(), call("MIN", {E(lo), a(idx("i"))}));
  s.assign(hi(), call("MAX", {E(hi), a(idx("i"))}));
  const Program p = pb.build().value();
  std::vector<double> a_in(48);
  for (int i = 0; i < 48; ++i) {
    a_in[static_cast<std::size_t>(i)] = (i * 37) % 101 - 50;
  }
  const auto run = [&](InterpOptions o) {
    Machine m(p, o);
    require_native(m);
    EXPECT_TRUE(m.set_scalar("lo", 1000).is_ok());
    EXPECT_TRUE(m.set_scalar("hi", -1000).is_ok());
    EXPECT_TRUE(m.set_array("a", a_in).is_ok());
    EXPECT_TRUE(m.call("f").is_ok());
    return std::pair<double, double>{m.scalar("lo").value(),
                                     m.scalar("hi").value()};
  };
  const auto serial = run(serial_native());
  const auto par = run(parallel_native(DirectivePolicy::kV0, 8));
  expect_value_equal(serial.first, par.first, "lo");
  expect_value_equal(serial.second, par.second, "hi");
}

TEST(ParallelNativeReductions, FloatSumStaysSerialInsideTheKernel) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const ScopedEnv env("GLAF_KERNEL_CACHE", fresh_cache_dir("floatsum"));
  // A float sum is order-sensitive, so it is not bit-exact: the parallel
  // kernel must run it serially (no ranged dispatch) and stay bitwise
  // equal to the serial kernel.
  const Program p = testing::reduce_program();
  std::vector<double> x(16);
  for (int i = 0; i < 16; ++i) x[static_cast<std::size_t>(i)] = 1.0 / (1.0 + i);
  const auto run = [&](InterpOptions o, std::uint64_t* regions) {
    Machine m(p, o);
    require_native(m);
    EXPECT_TRUE(m.set_array("x", x).is_ok());
    EXPECT_TRUE(m.call("reduce_sum").is_ok());
    if (regions != nullptr) *regions = m.native_report().parallel_regions;
    return m.scalar("total").value();
  };
  const double serial = run(serial_native(), nullptr);
  std::uint64_t regions = ~std::uint64_t{0};
  const double par =
      run(parallel_native(DirectivePolicy::kV0, 8), &regions);
  EXPECT_EQ(regions, 0u) << "float reduction must not be threaded";
  expect_value_equal(serial, par, "total");
}

// ---- ownership-banded accumulation ------------------------------------------

/// acc(i) += w(i,j) under a collapse(2) directive: element acc(i) is
/// updated by several j iterations, so a flat partition would race —
/// the ownership band partitions on i only, keeping each element's
/// serial accumulation order even for floats.
Program ownership_program() {
  ProgramBuilder pb("m");
  auto w = pb.global("w", DataType::kDouble, {E(8), E(16)});
  auto acc = pb.global("acc", DataType::kDouble, {E(8)});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, 7).foreach_("j", 0, 15);
  s.assign(acc(idx("i")), acc(idx("i")) + w(idx("i"), idx("j")));
  return pb.build().value();
}

TEST(ParallelNativeOwnership, BandedFloatAccumulationBitwise) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const ScopedEnv env("GLAF_KERNEL_CACHE", fresh_cache_dir("owner"));
  const Program p = ownership_program();
  // The analysis must classify this as bit-exact *with* an ownership
  // band (atomic grid covered by the pure 'i' subscript).
  const Function* fn = p.find_function("f");
  ASSERT_NE(fn, nullptr);
  Machine probe(p, serial_native());
  const auto& verdicts = probe.analysis().verdicts.at(fn->id);
  ASSERT_EQ(verdicts.size(), 1u);
  ASSERT_TRUE(verdicts[0].bit_exact) << verdict_to_string(p, verdicts[0]);
  ASSERT_GE(verdicts[0].exact_partition_dim, 0)
      << verdict_to_string(p, verdicts[0]);

  std::vector<double> w_in(8 * 16);
  for (std::size_t i = 0; i < w_in.size(); ++i) {
    w_in[i] = 1.0 / (3.0 + static_cast<double>(i));
  }
  const auto run = [&](InterpOptions o, std::uint64_t* regions) {
    Machine m(p, o);
    require_native(m);
    EXPECT_TRUE(m.set_array("w", w_in).is_ok());
    EXPECT_TRUE(m.call("f").is_ok());
    if (regions != nullptr) *regions = m.native_report().parallel_regions;
    return m.array("acc").value();
  };
  const std::vector<double> serial = run(serial_native(), nullptr);
  for (const int threads : {2, 8}) {
    std::uint64_t regions = 0;
    const std::vector<double> par =
        run(parallel_native(DirectivePolicy::kV0, threads), &regions);
    EXPECT_GT(regions, 0u) << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      expect_value_equal(serial[i], par[i],
                         cat("acc[", i, "]@", threads, " threads"));
    }
  }
}

TEST(ParallelNativeOwnership, DynamicScheduleStaysBitwise) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const ScopedEnv env("GLAF_KERNEL_CACHE", fresh_cache_dir("dyn"));
  // Dynamic chunks still partition the banded dimension, so ownership
  // holds; per-rank scratch and rank-ordered combine keep reductions
  // deterministic even though chunk assignment is racy.
  for (const Program& p : {ownership_program(), int_reduce_program(64)}) {
    Machine serial(p, serial_native());
    require_native(serial);
    InterpOptions dyn = parallel_native(DirectivePolicy::kV0, 8, true);
    dyn.schedule_chunk = 3;
    Machine par(p, dyn);
    require_native(par);
    const bool owner = p.grid(p.global_grids[0]).name == "w";
    for (Machine* m : {&serial, &par}) {
      if (owner) {
        std::vector<double> w_in(8 * 16);
        for (std::size_t i = 0; i < w_in.size(); ++i) {
          w_in[i] = 1.0 / (5.0 + static_cast<double>(i));
        }
        ASSERT_TRUE(m->set_array("w", w_in).is_ok());
      } else {
        std::vector<double> a(64);
        for (int i = 0; i < 64; ++i) {
          a[static_cast<std::size_t>(i)] = (i * 7) % 23 - 11;
        }
        ASSERT_TRUE(m->set_array("a", a).is_ok());
      }
      ASSERT_TRUE(m->call("f").is_ok());
    }
    EXPECT_GT(par.native_report().parallel_regions, 0u);
    compare_all_globals(serial, par, owner ? "ownership" : "int-reduce");
  }
}

// ---- cache configuration ----------------------------------------------------

TEST(ParallelNativeCache, SerialAndParallelObjectsCoexist) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const std::string dir = fresh_cache_dir("coexist");
  const ScopedEnv env("GLAF_KERNEL_CACHE", dir);
  const Program p = testing::saxpy_program();
  Machine serial(p, serial_native());
  Machine par(p, parallel_native(DirectivePolicy::kV0));
  require_native(serial);
  require_native(par);
  EXPECT_NE(serial.native_report().object_path,
            par.native_report().object_path);
  // Both entries live on under the same directory; a second pair of
  // machines hits both caches.
  Machine serial2(p, serial_native());
  Machine par2(p, parallel_native(DirectivePolicy::kV0));
  require_native(serial2);
  require_native(par2);
  EXPECT_TRUE(serial2.native_report().cache_hit);
  EXPECT_TRUE(par2.native_report().cache_hit);
}

TEST(ParallelNativeCache, KeySeparatesEngineConfig) {
  const std::string base = jit::KernelCache::key("int x;", "cc", "-O2");
  EXPECT_EQ(base, jit::KernelCache::key("int x;", "cc", "-O2", ""));
  const std::string serial_key =
      jit::KernelCache::key("int x;", "cc", "-O2", "parallel=0;policy=v0");
  const std::string par_key =
      jit::KernelCache::key("int x;", "cc", "-O2", "parallel=1;policy=v0");
  EXPECT_EQ(serial_key.size(), 32u);
  EXPECT_NE(serial_key, base);
  EXPECT_NE(serial_key, par_key);
  EXPECT_NE(par_key,
            jit::KernelCache::key("int x;", "cc", "-O2", "parallel=1;policy=v2"));
}

// ---- forced fallback --------------------------------------------------------

TEST(ParallelNativeFallback, MissingCompilerFallsBackToDeterministicPlans) {
  const ScopedEnv env("GLAF_CC", "/nonexistent/compiler");
  const Program p = int_reduce_program(32);
  InterpOptions o = parallel_native(DirectivePolicy::kV0, 4);
  o.deterministic_parallel = true;
  Machine m(p, o);
  EXPECT_FALSE(m.native_report().available);
  EXPECT_FALSE(m.native_report().fallback_reason.empty());
  std::vector<double> a(32);
  for (int i = 0; i < 32; ++i) a[static_cast<std::size_t>(i)] = i - 16;
  Machine serial(p, InterpOptions{});
  for (Machine* mm : {&serial, &m}) {
    ASSERT_TRUE(mm->set_array("a", a).is_ok());
    ASSERT_TRUE(mm->call("f").is_ok());
  }
  EXPECT_EQ(m.native_report().native_calls, 0u);
  EXPECT_GE(m.native_report().fallback_calls, 1u);
  expect_value_equal(serial.scalar("total").value(),
                     m.scalar("total").value(), "total");
}

}  // namespace
}  // namespace glaf
