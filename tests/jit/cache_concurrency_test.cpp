// Multi-process kernel-cache stress: two processes race a cold compile
// of the SAME program into the SAME cache directory. The cache's
// tmp-then-rename publication means both must succeed — each compiles
// into a private temp file and the rename is atomic, so the losers'
// object simply replaces (or is replaced by) an identical winner.
// A corrupted or partially-written entry must never be observable.
//
// fork() is safe here because the test performs the racing work in
// freshly forked children that only call compile_object (which forks
// the system compiler itself) and _exit — no gtest machinery, no
// threads in the child.

#include <sys/wait.h>
#include <unistd.h>

#include <string>

#include <gtest/gtest.h>

#include "analysis/parallelize.hpp"
#include "fuliou/glaf_kernels.hpp"
#include "interp/machine.hpp"
#include "jit/engine.hpp"
#include "support/strings.hpp"
#include "support/subprocess.hpp"

namespace glaf {
namespace {

bool have_cc() { return cc_available("cc"); }

std::string fresh_cache_dir(const std::string& tag) {
  std::string tmpl =
      cat(::testing::TempDir(), "glaf_ccache_", tag, "_XXXXXX");
  const char* dir = mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return dir != nullptr ? dir : tmpl;
}

jit::NativeEngine::Options cache_options(const std::string& cache_dir) {
  jit::NativeEngine::Options options;
  options.cache_dir = cache_dir;
  options.parallel = false;
  options.num_threads = 1;
  return options;
}

/// Compile the SARB program into `cache_dir` inside a forked child;
/// exit code 0 on success, 1 on failure.
pid_t spawn_compiler(const std::string& cache_dir) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  // Child: cold-compile and report via the exit code only.
  const Program program = fuliou::build_sarb_program();
  const ProgramAnalysis analysis = analyze_program(program);
  const auto compiled = jit::NativeEngine::compile_object(
      program, analysis, cache_options(cache_dir));
  _exit(compiled.is_ok() ? 0 : 1);
}

TEST(CacheConcurrency, TwoProcessColdCompileRaceBothSucceed) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const std::string cache_dir = fresh_cache_dir("race2");

  const pid_t a = spawn_compiler(cache_dir);
  ASSERT_GT(a, 0);
  const pid_t b = spawn_compiler(cache_dir);
  ASSERT_GT(b, 0);

  int status_a = 0;
  int status_b = 0;
  ASSERT_EQ(waitpid(a, &status_a, 0), a);
  ASSERT_EQ(waitpid(b, &status_b, 0), b);
  EXPECT_TRUE(WIFEXITED(status_a) && WEXITSTATUS(status_a) == 0)
      << "child A failed";
  EXPECT_TRUE(WIFEXITED(status_b) && WEXITSTATUS(status_b) == 0)
      << "child B failed";

  // The published entry is valid: this process loads it as a cache hit
  // and the engine runs.
  const Program program = fuliou::build_sarb_program();
  const ProgramAnalysis analysis = analyze_program(program);
  const auto compiled = jit::NativeEngine::compile_object(
      program, analysis, cache_options(cache_dir));
  ASSERT_TRUE(compiled.is_ok()) << compiled.status().to_string();
  EXPECT_TRUE(compiled.value().cache_hit)
      << "both children compiled yet the parent saw a cold cache";
  const auto engine = jit::NativeEngine::load_compiled(
      compiled.value(), cache_options(cache_dir));
  ASSERT_TRUE(engine.is_ok()) << engine.status().to_string();
}

TEST(CacheConcurrency, ManyProcessStressLeavesOneValidEntry) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const std::string cache_dir = fresh_cache_dir("raceN");

  constexpr int kProcs = 6;
  pid_t pids[kProcs];
  for (int i = 0; i < kProcs; ++i) {
    pids[i] = spawn_compiler(cache_dir);
    ASSERT_GT(pids[i], 0);
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }

  // End state: a Machine over the same cache serves natively.
  InterpOptions iopts;
  iopts.engine = ExecEngine::kNative;
  iopts.native_cache_dir = cache_dir;
  Machine machine(fuliou::build_sarb_program(), iopts);
  ASSERT_TRUE(machine.native_report().available)
      << machine.native_report().fallback_reason;
  EXPECT_TRUE(machine.native_report().cache_hit);
  const auto result = machine.call("entropy_interface");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
}

}  // namespace
}  // namespace glaf
