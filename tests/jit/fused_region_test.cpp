// Fused-region tests: ABI v3 lets the emitter fuse maximal runs of
// adjacent parallelizable steps that share a partition dimension into a
// single range entry point (one fork/join per region instead of per
// step). Two layers are covered here:
//
//  - region *boundaries*, asserted against the emitted unit's region
//    metadata: producer/consumer elementwise steps fuse; a cross-step
//    carried dependence (reading a neighbour of what the previous step
//    wrote) splits; mismatched loop bounds split; mismatched partition
//    dimensions split; a step consuming a reduction target splits while
//    independent exact reductions fuse;
//
//  - *differential bit-identity*: fused, unfused and serial kernels must
//    agree bitwise on the SARB Table-1 subroutines and the FUN3D
//    decomposition under every directive policy, and at 1 == N threads —
//    fusion is a pure dispatch-cost optimization, never a semantic one.

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "fuliou/glaf_kernels.hpp"
#include "fuliou/harness.hpp"
#include "fuliou/profile.hpp"
#include "fun3d/glaf_full.hpp"
#include "fun3d/mesh.hpp"
#include "interp/machine.hpp"
#include "jit/emit.hpp"
#include "support/strings.hpp"
#include "support/subprocess.hpp"

namespace glaf {
namespace {

bool have_cc() { return cc_available("cc"); }

std::string fresh_cache_dir(const std::string& tag) {
  std::string tmpl = cat(::testing::TempDir(), "glaf_fcache_", tag, "_XXXXXX");
  const char* dir = mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return dir != nullptr ? dir : tmpl;
}

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

InterpOptions serial_native() {
  InterpOptions o;
  o.engine = ExecEngine::kNative;
  return o;
}

/// Parallel native with the profit gate off: these tests compare the
/// dispatch paths themselves, so nothing may be diverted to serial.
InterpOptions parallel_native(DirectivePolicy policy, bool fuse,
                              int threads = 4) {
  InterpOptions o;
  o.engine = ExecEngine::kNative;
  o.parallel = true;
  o.num_threads = threads;
  o.policy = policy;
  o.fuse_regions = fuse;
  o.gate_min_units = 0;
  return o;
}

constexpr DirectivePolicy kAllPolicies[] = {
    DirectivePolicy::kV0, DirectivePolicy::kV1, DirectivePolicy::kV2,
    DirectivePolicy::kV3};

void expect_value_equal(double a, double b, const std::string& what) {
  if (std::isnan(a) && std::isnan(b)) return;
  EXPECT_TRUE(a == b) << what << ": reference " << a << " vs " << b;
}

void require_native(const Machine& m) {
  ASSERT_TRUE(m.native_report().available)
      << "native engine unavailable: " << m.native_report().fallback_reason;
}

void compare_all_globals(Machine& reference, Machine& other,
                         const std::string& tag) {
  for (const GridId id : reference.program().global_grids) {
    const Grid& g = reference.program().grid(id);
    if (g.is_struct()) continue;
    const std::vector<double> a = reference.array(g.name).value();
    const std::vector<double> b = other.array(g.name).value();
    ASSERT_EQ(a.size(), b.size()) << tag << ": " << g.name;
    for (std::size_t i = 0; i < a.size(); ++i) {
      expect_value_equal(a[i], b[i], cat(tag, ": ", g.name, "[", i, "]"));
    }
  }
}

// ---- region-boundary unit tests ---------------------------------------------

/// Emit `p` parallel (v0) and return the region list, optionally with
/// fusion disabled.
std::vector<ParallelRegion> regions_of(const Program& p, bool fuse = true,
                                       std::string* source = nullptr) {
  jit::EmitOptions eo;
  eo.parallel = true;
  eo.fuse_regions = fuse;
  StatusOr<jit::KernelUnit> unit =
      jit::emit_kernel_unit(p, analyze_program(p), eo);
  EXPECT_TRUE(unit.is_ok()) << unit.status().message();
  if (!unit.is_ok()) return {};
  if (source != nullptr) *source = unit.value().source;
  return unit.value().regions;
}

TEST(FusedRegionPlan, ProducerConsumerElementwiseStepsFuse) {
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{32}}});
  auto a = pb.global("a", DataType::kDouble);
  auto x = pb.global("x", DataType::kDouble, {E(n)});
  auto y = pb.global("y", DataType::kDouble, {E(n)});
  auto z = pb.global("z", DataType::kDouble, {E(n)});
  auto fb = pb.function("f");
  auto s1 = fb.step("scale");
  s1.foreach_("i", 0, E(n) - 1);
  s1.assign(y(idx("i")), E(a) * x(idx("i")));
  auto s2 = fb.step("combine");
  s2.foreach_("i", 0, E(n) - 1);
  s2.assign(z(idx("i")), y(idx("i")) + x(idx("i")));
  const Program p = pb.build().value();

  std::string source;
  const std::vector<ParallelRegion> fused = regions_of(p, true, &source);
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_EQ(fused[0].first_step, 0u);
  EXPECT_EQ(fused[0].step_count, 2u);
  EXPECT_NE(source.find("glaf_rg_f_0_range"), std::string::npos)
      << "fused regions use glaf_rg_* entry points";

  const std::vector<ParallelRegion> unfused = regions_of(p, false);
  ASSERT_EQ(unfused.size(), 2u);
  EXPECT_EQ(unfused[0].step_count, 1u);
  EXPECT_EQ(unfused[1].step_count, 1u);
}

TEST(FusedRegionPlan, CrossStepCarriedDependenceSplits) {
  // Step 2 reads y(i+1): rank r's chunk of step 2 would consume values
  // rank r+1 writes in step 1, so the steps cannot share one fork/join.
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{32}}});
  auto x = pb.global("x", DataType::kDouble, {E(n) + 1});
  auto y = pb.global("y", DataType::kDouble, {E(n) + 1});
  auto z = pb.global("z", DataType::kDouble, {E(n)});
  auto fb = pb.function("f");
  auto s1 = fb.step("produce");
  s1.foreach_("i", 0, E(n) - 1);
  s1.assign(y(idx("i")), x(idx("i")) * 2.0);
  auto s2 = fb.step("shift");
  s2.foreach_("i", 0, E(n) - 1);
  s2.assign(z(idx("i")), y(idx("i") + 1));
  const Program p = pb.build().value();

  const std::vector<ParallelRegion> regions = regions_of(p);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].step_count, 1u);
  EXPECT_EQ(regions[1].step_count, 1u);
}

TEST(FusedRegionPlan, MismatchedBoundsSplit) {
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{32}}});
  auto x = pb.global("x", DataType::kDouble, {E(n)});
  auto y = pb.global("y", DataType::kDouble, {E(n)});
  auto fb = pb.function("f");
  auto s1 = fb.step("all");
  s1.foreach_("i", 0, E(n) - 1);
  s1.assign(x(idx("i")), 1.0);
  auto s2 = fb.step("half");
  s2.foreach_("i", 0, E(n) / 2 - 1);
  s2.assign(y(idx("i")), 2.0);
  const Program p = pb.build().value();

  // Different trip counts -> different partition signatures -> two
  // regions, even though the steps touch disjoint grids.
  const std::vector<ParallelRegion> regions = regions_of(p);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].step_count, 1u);
  EXPECT_EQ(regions[1].step_count, 1u);
}

TEST(FusedRegionPlan, MismatchedPartitionDimensionsSplit) {
  // Both steps are collapse(2) over the same 8x16 nest, but step 1
  // accumulates into acc(i) (ownership band on dim 0) while step 2
  // accumulates into col(j) (band on dim 1): the ranks would partition
  // different loops, so the steps cannot share a region.
  ProgramBuilder pb("m");
  auto w = pb.global("w", DataType::kDouble, {E(8), E(16)});
  auto acc = pb.global("acc", DataType::kDouble, {E(8)});
  auto col = pb.global("col", DataType::kDouble, {E(16)});
  auto fb = pb.function("f");
  auto s1 = fb.step("rows");
  s1.foreach_("i", 0, 7).foreach_("j", 0, 15);
  s1.assign(acc(idx("i")), acc(idx("i")) + w(idx("i"), idx("j")));
  auto s2 = fb.step("cols");
  s2.foreach_("i", 0, 7).foreach_("j", 0, 15);
  s2.assign(col(idx("j")), col(idx("j")) + w(idx("i"), idx("j")));
  const Program p = pb.build().value();

  const std::vector<ParallelRegion> regions = regions_of(p);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].step_count, 1u);
  EXPECT_EQ(regions[1].step_count, 1u);
}

TEST(FusedRegionPlan, ReductionConsumerSplitsIndependentReductionsFuse) {
  // t1 += a(i) is an exact (integer) reduction the emitter threads with
  // per-rank scratch combined after the join — so a step *consuming* t1
  // cannot live in the same region (the combine has not happened yet),
  // while a second, independent reduction can.
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{48}}});
  auto a = pb.global("a", DataType::kInt, {E(n)});
  auto b = pb.global("b", DataType::kInt, {E(n)});
  auto t1 = pb.global("t1", DataType::kInt);
  auto t2 = pb.global("t2", DataType::kInt);
  auto out = pb.global("out", DataType::kInt, {E(n)});
  {
    auto fb = pb.function("consumer");
    auto s1 = fb.step("sum");
    s1.foreach_("i", 0, E(n) - 1);
    s1.assign(t1(), E(t1) + a(idx("i")));
    auto s2 = fb.step("use");
    s2.foreach_("i", 0, E(n) - 1);
    s2.assign(out(idx("i")), a(idx("i")) + E(t1));
  }
  {
    auto fb = pb.function("independent");
    auto s1 = fb.step("sum_a");
    s1.foreach_("i", 0, E(n) - 1);
    s1.assign(t1(), E(t1) + a(idx("i")));
    auto s2 = fb.step("sum_b");
    s2.foreach_("i", 0, E(n) - 1);
    s2.assign(t2(), E(t2) + b(idx("i")));
  }
  const Program p = pb.build().value();

  const std::vector<ParallelRegion> regions = regions_of(p);
  std::vector<ParallelRegion> consumer;
  std::vector<ParallelRegion> independent;
  for (const ParallelRegion& r : regions) {
    (r.function == "consumer" ? consumer : independent).push_back(r);
  }
  ASSERT_EQ(consumer.size(), 2u) << "reduction consumer must split";
  EXPECT_EQ(consumer[0].step_count, 1u);
  EXPECT_EQ(consumer[1].step_count, 1u);
  ASSERT_EQ(independent.size(), 1u) << "independent reductions must fuse";
  EXPECT_EQ(independent[0].step_count, 2u);
}

TEST(FusedRegionPlan, SerialStepBreaksARun) {
  // fusable / carried-serial / fusable: the serial middle step is a
  // region boundary, so the two ranged steps stay singletons on either
  // side of it rather than fusing across.
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{16}}});
  auto x = pb.global("x", DataType::kDouble, {E(n)});
  auto y = pb.global("y", DataType::kDouble, {E(n)});
  auto z = pb.global("z", DataType::kDouble, {E(n)});
  auto fb = pb.function("f");
  auto s1 = fb.step("first");
  s1.foreach_("i", 0, E(n) - 1);
  s1.assign(x(idx("i")), 3.0);
  auto s2 = fb.step("prefix");
  s2.foreach_("i", 1, E(n) - 1);
  s2.assign(y(idx("i")), y(idx("i") - 1) + x(idx("i")));
  auto s3 = fb.step("last");
  s3.foreach_("i", 0, E(n) - 1);
  s3.assign(z(idx("i")), x(idx("i")) * 2.0);
  const Program p = pb.build().value();

  // Only the two parallelizable steps appear as dispatch regions, each
  // on its own (the carried-dependence step between them runs serial).
  const std::vector<ParallelRegion> regions = regions_of(p);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].first_step, 0u);
  EXPECT_EQ(regions[0].step_count, 1u);
  EXPECT_EQ(regions[1].first_step, 2u);
  EXPECT_EQ(regions[1].step_count, 1u);
}

TEST(FusedRegionPlan, UnitsPerIterScaleWithBodyCost) {
  // The profit model charges fused regions the sum of their member
  // bodies, and inner (non-partitioned) loops multiply the estimate.
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble, {E(64)});
  auto w = pb.global("w", DataType::kDouble, {E(64), E(32)});
  auto acc = pb.global("acc", DataType::kDouble, {E(64)});
  auto fb = pb.function("f");
  auto s1 = fb.step("cheap");
  s1.foreach_("i", 0, 63);
  s1.assign(x(idx("i")), 1.0);
  const Program cheap = pb.build().value();

  ProgramBuilder pb2("m");
  auto x2 = pb2.global("x", DataType::kDouble, {E(64)});
  auto w2 = pb2.global("w", DataType::kDouble, {E(64), E(32)});
  auto acc2 = pb2.global("acc", DataType::kDouble, {E(64)});
  auto fb2 = pb2.function("f");
  auto s2 = fb2.step("nested");
  s2.foreach_("i", 0, 63).foreach_("j", 0, 31);
  s2.assign(acc2(idx("i")), acc2(idx("i")) + w2(idx("i"), idx("j")));
  const Program nested = pb2.build().value();

  const std::vector<ParallelRegion> rc = regions_of(cheap);
  const std::vector<ParallelRegion> rn = regions_of(nested);
  ASSERT_EQ(rc.size(), 1u);
  ASSERT_EQ(rn.size(), 1u);
  EXPECT_GE(rc[0].units_per_iter, 1);
  // The nested step runs a 32-trip inner loop per partition iteration.
  EXPECT_GT(rn[0].units_per_iter, 8 * rc[0].units_per_iter);
}

// ---- differential bit-identity ----------------------------------------------

TEST(FusedRegionDifferential, SarbTable1BitIdenticalFusedUnfusedSerial) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const ScopedEnv env("GLAF_KERNEL_CACHE", fresh_cache_dir("sarb"));
  const Program sarb = fuliou::build_sarb_program();
  const fuliou::AtmosphereProfile profile = fuliou::make_profile(7);
  for (const DirectivePolicy policy : kAllPolicies) {
    for (const std::string& name : fuliou::table1_subroutines()) {
      const Function* fn = sarb.find_function(name);
      if (fn == nullptr || !fn->params.empty()) continue;
      const std::string tag = cat(name, "/", to_string(policy));
      Machine serial(sarb, serial_native());
      Machine fused(sarb, parallel_native(policy, true));
      Machine unfused(sarb, parallel_native(policy, false));
      require_native(serial);
      require_native(fused);
      require_native(unfused);
      for (Machine* m : {&serial, &fused, &unfused}) {
        ASSERT_TRUE(fuliou::load_profile(*m, profile).is_ok()) << tag;
        ASSERT_TRUE(m->call(name).is_ok()) << tag;
      }
      EXPECT_EQ(fused.native_report().gated_serial_regions, 0u) << tag;
      compare_all_globals(serial, fused, cat(tag, " fused"));
      compare_all_globals(serial, unfused, cat(tag, " unfused"));
    }
  }
}

TEST(FusedRegionDifferential, Fun3dEdgejpBitIdenticalFusedUnfusedSerial) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const ScopedEnv env("GLAF_KERNEL_CACHE", fresh_cache_dir("fun3d"));
  const fun3d::Mesh mesh = fun3d::make_mesh(60, 3);
  const Program p = fun3d::build_fun3d_full_program(mesh);
  for (const DirectivePolicy policy : kAllPolicies) {
    const std::string tag = cat("edgejp/", to_string(policy));
    Machine serial(p, serial_native());
    Machine fused(p, parallel_native(policy, true));
    Machine unfused(p, parallel_native(policy, false));
    require_native(serial);
    require_native(fused);
    require_native(unfused);
    for (Machine* m : {&serial, &fused, &unfused}) {
      ASSERT_TRUE(fun3d::load_mesh(*m, mesh).is_ok()) << tag;
      ASSERT_TRUE(m->call("edgejp").is_ok()) << tag;
    }
    compare_all_globals(serial, fused, cat(tag, " fused"));
    compare_all_globals(serial, unfused, cat(tag, " unfused"));
  }
}

TEST(FusedRegionDifferential, OneThreadEqualsEightThreadsFused) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const ScopedEnv env("GLAF_KERNEL_CACHE", fresh_cache_dir("threads"));
  const Program sarb = fuliou::build_sarb_program();
  const fuliou::AtmosphereProfile profile = fuliou::make_profile(11);
  Machine one(sarb, parallel_native(DirectivePolicy::kV0, true, 1));
  Machine eight(sarb, parallel_native(DirectivePolicy::kV0, true, 8));
  for (Machine* m : {&one, &eight}) {
    require_native(*m);
    ASSERT_TRUE(fuliou::load_profile(*m, profile).is_ok());
    ASSERT_TRUE(m->call("longwave_entropy_model").is_ok());
  }
  EXPECT_GT(eight.native_report().parallel_regions, 0u);
  compare_all_globals(one, eight, "fused 1-vs-8-threads");
}

TEST(FusedRegionDifferential, FusedKernelReportsRegionMetadata) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const ScopedEnv env("GLAF_KERNEL_CACHE", fresh_cache_dir("meta"));
  // The producer/consumer pair from the plan tests, end to end: the
  // report must show one fused region, and one dispatch per call.
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{32}}});
  auto a = pb.global("a", DataType::kDouble);
  auto x = pb.global("x", DataType::kDouble, {E(n)});
  auto y = pb.global("y", DataType::kDouble, {E(n)});
  auto z = pb.global("z", DataType::kDouble, {E(n)});
  auto fb = pb.function("f");
  auto s1 = fb.step("scale");
  s1.foreach_("i", 0, E(n) - 1);
  s1.assign(y(idx("i")), E(a) * x(idx("i")));
  auto s2 = fb.step("combine");
  s2.foreach_("i", 0, E(n) - 1);
  s2.assign(z(idx("i")), y(idx("i")) + x(idx("i")));
  const Program p = pb.build().value();

  std::vector<double> x_in(32);
  for (int i = 0; i < 32; ++i) x_in[static_cast<std::size_t>(i)] = 0.5 * i;

  Machine serial(p, serial_native());
  Machine fused(p, parallel_native(DirectivePolicy::kV0, true));
  Machine unfused(p, parallel_native(DirectivePolicy::kV0, false));
  require_native(serial);
  require_native(fused);
  require_native(unfused);
  for (Machine* m : {&serial, &fused, &unfused}) {
    ASSERT_TRUE(m->set_scalar("a", 1.5).is_ok());
    ASSERT_TRUE(m->set_array("x", x_in).is_ok());
    ASSERT_TRUE(m->call("f").is_ok());
  }
  EXPECT_EQ(fused.native_report().regions_total, 1u);
  EXPECT_EQ(fused.native_report().regions_fused, 1u);
  EXPECT_EQ(fused.native_report().parallel_regions, 1u)
      << "one fork/join for the fused pair";
  EXPECT_EQ(unfused.native_report().regions_total, 2u);
  EXPECT_EQ(unfused.native_report().regions_fused, 0u);
  EXPECT_EQ(unfused.native_report().parallel_regions, 2u);
  compare_all_globals(serial, fused, "fused");
  compare_all_globals(serial, unfused, "unfused");
}

}  // namespace
}  // namespace glaf
