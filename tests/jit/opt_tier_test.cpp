// Opt-tier differentials: the NumericModel::kOpt kernel (typed native
// storage, restrict pointers, -O3 with contraction on, serial dispatch)
// run against the plan engine on the checked-in example kernels — SARB
// Table 1 and the FUN3D pair — with every global held to a per-kernel
// ulp budget. The interp tier's wall stays bitwise (native_test.cpp);
// this file is the tolerance fork of that wall, plus checks that the
// tier's provenance (model, flags, host key) is reported and that the
// two tiers cache independently.
//
// Every test that needs the system compiler GTEST_SKIPs without one.

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuliou/glaf_kernels.hpp"
#include "fuliou/harness.hpp"
#include "fuliou/profile.hpp"
#include "fun3d/glaf_fun3d.hpp"
#include "interp/machine.hpp"
#include "support/strings.hpp"
#include "support/subprocess.hpp"
#include "support/ulp.hpp"

namespace glaf {
namespace {

bool have_cc() { return cc_available("cc"); }

InterpOptions plan_opts() {
  InterpOptions o;
  o.engine = ExecEngine::kPlan;
  return o;
}

InterpOptions opt_opts() {
  InterpOptions o;
  o.engine = ExecEngine::kNative;
  o.native_model = NumericModel::kOpt;
  return o;
}

void require_native(const Machine& m) {
  ASSERT_TRUE(m.native_report().available)
      << "native engine unavailable: " << m.native_report().fallback_reason;
}

/// Per-kernel budgets for the SARB Table-1 subroutines. The wide-band
/// spectral integrations chain hundreds of multiply-adds per element, so
/// contraction drift accumulates; the simple per-level loops sit at a
/// handful of ulps. A kernel absent from the map gets the default.
constexpr std::uint64_t kDefaultBudget = 64;

std::uint64_t sarb_budget(const std::string& name) {
  static const std::map<std::string, std::uint64_t> budgets = {
      {"lw_spectral_integration", 512},
      {"sw_spectral_integration", 512},
      {"shortwave_entropy_model", 256},
  };
  const auto it = budgets.find(name);
  return it == budgets.end() ? kDefaultBudget : it->second;
}

/// Compare every non-struct global element-wise under the ulp budget and
/// report the worst observed distance so budget regressions are visible.
void compare_all_globals_ulp(Machine& reference, Machine& opt,
                             std::uint64_t max_ulp, const std::string& tag) {
  std::uint64_t worst = 0;
  for (const GridId id : reference.program().global_grids) {
    const Grid& g = reference.program().grid(id);
    if (g.is_struct()) continue;
    const std::vector<double> a = reference.array(g.name).value();
    const std::vector<double> b = opt.array(g.name).value();
    ASSERT_EQ(a.size(), b.size()) << tag << ": " << g.name;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const std::uint64_t dist = ulp_distance(a[i], b[i]);
      EXPECT_TRUE(ulp_close(a[i], b[i], max_ulp))
          << tag << ": " << g.name << "[" << i << "]: plan " << a[i]
          << " vs opt " << b[i] << " (" << dist << " ulps, budget "
          << max_ulp << ")";
      if (dist != kUlpIncomparable && dist > worst) worst = dist;
    }
  }
  if (worst > 0) {
    std::printf("[ ulp-wall ] %s: worst distance %llu (budget %llu)\n",
                tag.c_str(), static_cast<unsigned long long>(worst),
                static_cast<unsigned long long>(max_ulp));
  }
}

TEST(OptTier, SarbTable1SubroutinesWithinUlpBudgets) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const Program sarb = fuliou::build_sarb_program();
  const fuliou::AtmosphereProfile profile = fuliou::make_profile(1);
  for (const std::string& name : fuliou::table1_subroutines()) {
    const Function* fn = sarb.find_function(name);
    if (fn == nullptr || !fn->params.empty()) continue;
    Machine pl(sarb, plan_opts());
    Machine opt(sarb, opt_opts());
    require_native(opt);
    EXPECT_EQ(opt.native_report().model, NumericModel::kOpt);
    for (Machine* m : {&pl, &opt}) {
      ASSERT_TRUE(fuliou::load_profile(*m, profile).is_ok());
      ASSERT_TRUE(m->call(name).is_ok()) << name;
    }
    EXPECT_GT(opt.native_report().native_calls, 0u) << name;
    compare_all_globals_ulp(pl, opt, sarb_budget(name), name);
  }
}

TEST(OptTier, Fun3dKernelsWithinUlpBudgets) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const Program p = fun3d::build_fun3d_glaf_program();
  const auto load = [](Machine& m) {
    std::vector<double> ea(fun3d::kGlafEdges), eb(fun3d::kGlafEdges);
    std::vector<double> w(fun3d::kGlafEdges), q(fun3d::kGlafNodes);
    for (int e = 0; e < fun3d::kGlafEdges; ++e) {
      ea[static_cast<std::size_t>(e)] = e % fun3d::kGlafNodes;
      eb[static_cast<std::size_t>(e)] = (e * 7 + 3) % fun3d::kGlafNodes;
      w[static_cast<std::size_t>(e)] = 0.25 + 0.5 * (e % 3);
    }
    for (int k = 0; k < fun3d::kGlafNodes; ++k) {
      q[static_cast<std::size_t>(k)] = 1.0 + 0.01 * k;
    }
    ASSERT_TRUE(m.set_array("edge_a", ea).is_ok());
    ASSERT_TRUE(m.set_array("edge_b", eb).is_ok());
    ASSERT_TRUE(m.set_array("w", w).is_ok());
    ASSERT_TRUE(m.set_array("q", q).is_ok());
  };
  // The edge scatter accumulates per node; smoothing averages over
  // neighbors — both short chains, so the default budget holds.
  for (const std::string& name :
       {std::string("edge_scatter"), std::string("smooth_q")}) {
    Machine pl(p, plan_opts());
    Machine opt(p, opt_opts());
    require_native(opt);
    for (Machine* m : {&pl, &opt}) {
      load(*m);
      ASSERT_TRUE(m->call(name).is_ok()) << name;
    }
    EXPECT_GT(opt.native_report().native_calls, 0u) << name;
    compare_all_globals_ulp(pl, opt, kDefaultBudget, name);
  }
}

TEST(OptTier, ReportsCompileProvenance) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const Program sarb = fuliou::build_sarb_program();
  Machine opt(sarb, opt_opts());
  require_native(opt);
  const NativeReport& nr = opt.native_report();
  EXPECT_EQ(nr.model, NumericModel::kOpt);
  EXPECT_FALSE(nr.compiler.empty());
  EXPECT_FALSE(nr.compiler_version.empty());
  EXPECT_NE(nr.compile_flags.find("-O3"), std::string::npos)
      << nr.compile_flags;
  EXPECT_NE(nr.compile_flags.find("-ffp-contract=fast"), std::string::npos)
      << nr.compile_flags;
  // Non-portable opt kernels are keyed to this host's fingerprint.
  if (nr.compile_flags.find("-march=native") != std::string::npos) {
    EXPECT_EQ(nr.host_key, host_arch_fingerprint());
  } else {
    EXPECT_TRUE(nr.host_key.empty()) << nr.host_key;
  }
}

TEST(OptTier, PortableModeDropsMarchNative) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const Program sarb = fuliou::build_sarb_program();
  InterpOptions o = opt_opts();
  o.native_portable = true;
  Machine opt(sarb, o);
  require_native(opt);
  const NativeReport& nr = opt.native_report();
  EXPECT_EQ(nr.compile_flags.find("-march=native"), std::string::npos)
      << nr.compile_flags;
  EXPECT_TRUE(nr.host_key.empty()) << nr.host_key;
}

TEST(OptTier, InterpTierProvenanceIsUnchanged) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const Program sarb = fuliou::build_sarb_program();
  InterpOptions o;
  o.engine = ExecEngine::kNative;
  Machine nat(sarb, o);
  require_native(nat);
  const NativeReport& nr = nat.native_report();
  EXPECT_EQ(nr.model, NumericModel::kInterp);
  EXPECT_NE(nr.compile_flags.find("-ffp-contract=off"), std::string::npos)
      << nr.compile_flags;
  EXPECT_TRUE(nr.host_key.empty()) << nr.host_key;
}

}  // namespace
}  // namespace glaf
