// Native-engine tests: (a) bit-identical differentials against the plan
// engine on the drift-prone semantics (integer DIV/MOD truncation, NaN
// through MIN/MAX, INTEGER-store truncation) and on the checked-in
// example kernels (SARB Table 1, FUN3D), (b) the kernel cache's
// cold/warm compile behaviour, corruption recovery and directory
// override, and (c) the fallback policy when no compiler is available
// or a program has no flat-argument-block layout.
//
// Every test that needs the system compiler GTEST_SKIPs without one.

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "fuliou/glaf_kernels.hpp"
#include "fuliou/harness.hpp"
#include "fuliou/profile.hpp"
#include "fun3d/glaf_fun3d.hpp"
#include "interp/machine.hpp"
#include "jit/cache.hpp"
#include "support/strings.hpp"
#include "support/subprocess.hpp"
#include "testing/programs.hpp"

namespace glaf {
namespace {

bool have_cc() { return cc_available("cc"); }

/// Fresh per-test cache directory under the gtest temp root, so cache
/// tests see exactly their own entries.
std::string fresh_cache_dir(const std::string& tag) {
  std::string tmpl = cat(::testing::TempDir(), "glaf_cache_", tag, "_XXXXXX");
  const char* dir = mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return dir != nullptr ? dir : tmpl;
}

/// Scoped environment override (restores the previous value).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

InterpOptions native_opts() {
  InterpOptions o;
  o.engine = ExecEngine::kNative;
  return o;
}

InterpOptions plan_opts() {
  InterpOptions o;
  o.engine = ExecEngine::kPlan;
  return o;
}

void expect_bit_equal(double a, double b, const std::string& what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << ": plan " << a << " vs native " << b;
}

/// Assert the machine actually loaded its kernel (tests that exist to
/// prove native execution must not silently pass through the fallback).
void require_native(const Machine& m) {
  ASSERT_TRUE(m.native_report().available)
      << "native engine unavailable: " << m.native_report().fallback_reason;
}

// ---- bit-identical semantics ----------------------------------------------

TEST(NativeVsPlan, IntegerDivisionTruncates) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  ProgramBuilder pb("m");
  auto ia = pb.global("ia", DataType::kInt);
  auto ib = pb.global("ib", DataType::kInt);
  auto q = pb.global("q", DataType::kInt);
  auto fb = pb.function("f");
  fb.step("s").assign(q(), E(ia) / E(ib));
  const Program p = pb.build().value();

  const double cases[][3] = {
      {-7, 2, -3}, {7, -2, -3}, {-7, -2, 3}, {7, 2, 3}, {1, 3, 0}};
  for (const auto& c : cases) {
    Machine pl(p, plan_opts());
    Machine nat(p, native_opts());
    require_native(nat);
    for (Machine* m : {&pl, &nat}) {
      ASSERT_TRUE(m->set_scalar("ia", c[0]).is_ok());
      ASSERT_TRUE(m->set_scalar("ib", c[1]).is_ok());
      ASSERT_TRUE(m->call("f").is_ok());
    }
    EXPECT_GT(nat.native_report().native_calls, 0u);
    EXPECT_DOUBLE_EQ(nat.scalar("q").value(), c[2]);
    expect_bit_equal(pl.scalar("q").value(), nat.scalar("q").value(), "q");
  }
}

TEST(NativeVsPlan, ModIsFmodOnNegatives) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble);
  auto y = pb.global("y", DataType::kDouble);
  auto r = pb.global("r", DataType::kDouble);
  auto ix = pb.global("ix", DataType::kInt);
  auto iy = pb.global("iy", DataType::kInt);
  auto ir = pb.global("ir", DataType::kInt);
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.assign(r(), call("MOD", {E(x), E(y)}));
  s.assign(ir(), call("MOD", {E(ix), E(iy)}));
  const Program p = pb.build().value();

  const double cases[][2] = {{-7, 3}, {7, -3}, {-7.5, 2.5}, {8.25, 3.5}};
  for (const auto& c : cases) {
    Machine pl(p, plan_opts());
    Machine nat(p, native_opts());
    require_native(nat);
    for (Machine* m : {&pl, &nat}) {
      ASSERT_TRUE(m->set_scalar("x", c[0]).is_ok());
      ASSERT_TRUE(m->set_scalar("y", c[1]).is_ok());
      ASSERT_TRUE(m->set_scalar("ix", std::trunc(c[0])).is_ok());
      ASSERT_TRUE(m->set_scalar("iy", std::trunc(c[1])).is_ok());
      ASSERT_TRUE(m->call("f").is_ok());
    }
    expect_bit_equal(pl.scalar("r").value(), nat.scalar("r").value(), "r");
    expect_bit_equal(pl.scalar("ir").value(), nat.scalar("ir").value(), "ir");
  }
}

TEST(NativeVsPlan, NanThroughMinMaxIsBitIdentical) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble);
  auto lo = pb.global("lo", DataType::kDouble);
  auto hi = pb.global("hi", DataType::kDouble);
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.assign(lo(), call("MIN", {E(x), E(1.0)}));
  s.assign(hi(), call("MAX", {E(1.0), E(x)}));
  const Program p = pb.build().value();

  const double nan = std::numeric_limits<double>::quiet_NaN();
  Machine pl(p, plan_opts());
  Machine nat(p, native_opts());
  require_native(nat);
  for (Machine* m : {&pl, &nat}) {
    ASSERT_TRUE(m->set_scalar("x", nan).is_ok());
    ASSERT_TRUE(m->call("f").is_ok());
  }
  expect_bit_equal(pl.scalar("lo").value(), nat.scalar("lo").value(), "lo");
  expect_bit_equal(pl.scalar("hi").value(), nat.scalar("hi").value(), "hi");
}

TEST(NativeVsPlan, IntegerStoreTruncates) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble);
  auto k = pb.global("k", DataType::kInt);
  auto fb = pb.function("f");
  fb.step("s").assign(k(), E(x) * 1.0);
  const Program p = pb.build().value();

  for (const double v : {2.75, -2.75, 0.5, -0.5}) {
    Machine pl(p, plan_opts());
    Machine nat(p, native_opts());
    require_native(nat);
    for (Machine* m : {&pl, &nat}) {
      ASSERT_TRUE(m->set_scalar("x", v).is_ok());
      ASSERT_TRUE(m->call("f").is_ok());
    }
    EXPECT_DOUBLE_EQ(nat.scalar("k").value(), std::trunc(v));
    expect_bit_equal(pl.scalar("k").value(), nat.scalar("k").value(), "k");
  }
}

/// out = k * 2 + b for a scalar parameter k: exercises the wrapper's
/// flat scalar-argument block and the FUNCTION return path.
Program scaled_program() {
  ProgramBuilder pb("m");
  auto out = pb.global("out", DataType::kDouble);
  auto b = pb.global("b", DataType::kDouble);
  auto fb = pb.function("f", DataType::kDouble);
  auto k = fb.param("k", DataType::kDouble);
  auto s = fb.step("s");
  s.assign(out(), E(k) * 2.0 + E(b));
  s.ret(E(out) + 1.0);
  return pb.build().value();
}

TEST(NativeVsPlan, ScalarArgumentsAndReturnValues) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const Program p = scaled_program();
  Machine pl(p, plan_opts());
  Machine nat(p, native_opts());
  require_native(nat);
  for (Machine* m : {&pl, &nat}) ASSERT_TRUE(m->set_scalar("b", 0.125).is_ok());
  const StatusOr<double> r_pl = pl.call("f", {CallArg{2.5}});
  const StatusOr<double> r_nat = nat.call("f", {CallArg{2.5}});
  ASSERT_TRUE(r_pl.is_ok());
  ASSERT_TRUE(r_nat.is_ok());
  EXPECT_GT(nat.native_report().native_calls, 0u);
  expect_bit_equal(r_pl.value(), r_nat.value(), "return");
  expect_bit_equal(pl.scalar("out").value(), nat.scalar("out").value(), "out");
}

TEST(NativeVsPlan, WholeArrayStateBitIdentical) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const Program p = testing::saxpy_program();
  Machine pl(p, plan_opts());
  Machine nat(p, native_opts());
  require_native(nat);
  for (Machine* m : {&pl, &nat}) {
    ASSERT_TRUE(m->set_scalar("a", 2.5).is_ok());
    ASSERT_TRUE(m->set_array("x", {1, 2, 3, 4, 5, 6, 7, 8}).is_ok());
    ASSERT_TRUE(m->call("saxpy").is_ok());
  }
  EXPECT_GT(nat.native_report().native_calls, 0u);
  const std::vector<double> y_pl = pl.array("y").value();
  const std::vector<double> y_nat = nat.array("y").value();
  ASSERT_EQ(y_pl.size(), y_nat.size());
  for (std::size_t i = 0; i < y_pl.size(); ++i) {
    expect_bit_equal(y_pl[i], y_nat[i], cat("y[", i, "]"));
  }
}

// ---- example kernels --------------------------------------------------------

void compare_all_globals(Machine& pl, Machine& nat) {
  for (const GridId id : pl.program().global_grids) {
    const Grid& g = pl.program().grid(id);
    if (g.is_struct()) continue;
    const std::vector<double> a = pl.array(g.name).value();
    const std::vector<double> b = nat.array(g.name).value();
    ASSERT_EQ(a.size(), b.size()) << g.name;
    for (std::size_t i = 0; i < a.size(); ++i) {
      expect_bit_equal(a[i], b[i], cat(g.name, "[", i, "]"));
    }
  }
}

TEST(NativeExamples, SarbTable1SubroutinesBitIdentical) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const Program sarb = fuliou::build_sarb_program();
  const fuliou::AtmosphereProfile profile = fuliou::make_profile(1);
  for (const std::string& name : fuliou::table1_subroutines()) {
    const Function* fn = sarb.find_function(name);
    if (fn == nullptr || !fn->params.empty()) continue;
    Machine pl(sarb, plan_opts());
    Machine nat(sarb, native_opts());
    require_native(nat);
    for (Machine* m : {&pl, &nat}) {
      ASSERT_TRUE(fuliou::load_profile(*m, profile).is_ok());
      ASSERT_TRUE(m->call(name).is_ok()) << name;
    }
    EXPECT_GT(nat.native_report().native_calls, 0u) << name;
    compare_all_globals(pl, nat);
  }
}

TEST(NativeExamples, Fun3dKernelsBitIdentical) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const Program p = fun3d::build_fun3d_glaf_program();
  const auto load = [](Machine& m) {
    std::vector<double> ea(fun3d::kGlafEdges), eb(fun3d::kGlafEdges);
    std::vector<double> w(fun3d::kGlafEdges), q(fun3d::kGlafNodes);
    for (int e = 0; e < fun3d::kGlafEdges; ++e) {
      ea[static_cast<std::size_t>(e)] = e % fun3d::kGlafNodes;
      eb[static_cast<std::size_t>(e)] = (e * 7 + 3) % fun3d::kGlafNodes;
      w[static_cast<std::size_t>(e)] = 0.25 + 0.5 * (e % 3);
    }
    for (int k = 0; k < fun3d::kGlafNodes; ++k) {
      q[static_cast<std::size_t>(k)] = 1.0 + 0.01 * k;
    }
    ASSERT_TRUE(m.set_array("edge_a", ea).is_ok());
    ASSERT_TRUE(m.set_array("edge_b", eb).is_ok());
    ASSERT_TRUE(m.set_array("w", w).is_ok());
    ASSERT_TRUE(m.set_array("q", q).is_ok());
  };
  for (const std::string& name :
       {std::string("edge_scatter"), std::string("smooth_q")}) {
    Machine pl(p, plan_opts());
    Machine nat(p, native_opts());
    require_native(nat);
    for (Machine* m : {&pl, &nat}) {
      load(*m);
      ASSERT_TRUE(m->call(name).is_ok()) << name;
    }
    EXPECT_GT(nat.native_report().native_calls, 0u) << name;
    compare_all_globals(pl, nat);
  }
}

// ---- kernel cache -----------------------------------------------------------

TEST(KernelCache, SecondBindSkipsCompilation) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const ScopedEnv env("GLAF_KERNEL_CACHE", fresh_cache_dir("warm"));
  const Program p = testing::saxpy_program();
  jit::reset_kernel_cache_stats();

  Machine cold(p, native_opts());
  require_native(cold);
  EXPECT_FALSE(cold.native_report().cache_hit);
  const jit::KernelCacheStats after_cold = jit::kernel_cache_stats();
  EXPECT_EQ(after_cold.compiles, 1u);
  EXPECT_EQ(after_cold.misses, 1u);

  Machine warm(p, native_opts());
  require_native(warm);
  EXPECT_TRUE(warm.native_report().cache_hit);
  const jit::KernelCacheStats after_warm = jit::kernel_cache_stats();
  EXPECT_EQ(after_warm.compiles, 1u) << "warm bind must not recompile";
  EXPECT_GE(after_warm.hits, 1u);

  // And the warm machine still computes correctly.
  ASSERT_TRUE(warm.set_scalar("a", 2.0).is_ok());
  ASSERT_TRUE(warm.call("saxpy").is_ok());
  EXPECT_GT(warm.native_report().native_calls, 0u);
}

TEST(KernelCache, CorruptedEntryIsDiscardedAndRebuilt) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const ScopedEnv env("GLAF_KERNEL_CACHE", fresh_cache_dir("corrupt"));
  const Program p = testing::saxpy_program();

  Machine first(p, native_opts());
  require_native(first);
  const std::string object = first.native_report().object_path;
  ASSERT_FALSE(object.empty());
  {  // Truncate the published object to garbage.
    std::ofstream out(object, std::ios::binary | std::ios::trunc);
    out << "not an ELF object";
  }

  jit::reset_kernel_cache_stats();
  Machine second(p, native_opts());
  require_native(second);
  const jit::KernelCacheStats stats = jit::kernel_cache_stats();
  EXPECT_GE(stats.corrupt_discards, 1u);
  EXPECT_EQ(stats.compiles, 1u) << "rebuild after discarding";
  EXPECT_FALSE(second.native_report().cache_hit);

  Machine pl(p, plan_opts());
  for (Machine* m : {&pl, &second}) {
    ASSERT_TRUE(m->set_scalar("a", 3.0).is_ok());
    ASSERT_TRUE(m->call("saxpy").is_ok());
  }
  const std::vector<double> y_pl = pl.array("y").value();
  const std::vector<double> y_nat = second.array("y").value();
  for (std::size_t i = 0; i < y_pl.size(); ++i) {
    expect_bit_equal(y_pl[i], y_nat[i], cat("y[", i, "]"));
  }
}

TEST(KernelCache, EnvironmentOverrideRedirectsTheDirectory) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const std::string dir = fresh_cache_dir("override");
  const ScopedEnv env("GLAF_KERNEL_CACHE", dir);
  Machine m(testing::saxpy_program(), native_opts());
  require_native(m);
  EXPECT_EQ(m.native_report().object_path.rfind(dir + "/", 0), 0u)
      << "object " << m.native_report().object_path << " not under " << dir;
}

TEST(KernelCache, KeySeparatesSourceCompilerAndFlags) {
  const std::string k1 = jit::KernelCache::key("int x;", "cc", "-O2");
  EXPECT_EQ(k1.size(), 32u);
  EXPECT_EQ(k1, jit::KernelCache::key("int x;", "cc", "-O2"));
  EXPECT_NE(k1, jit::KernelCache::key("int y;", "cc", "-O2"));
  EXPECT_NE(k1, jit::KernelCache::key("int x;", "cc", "-O3"));
}

// ---- fallback policy --------------------------------------------------------

TEST(NativeFallback, MissingCompilerFallsBackToPlans) {
  const ScopedEnv env("GLAF_CC", "/nonexistent/compiler");
  const Program p = testing::saxpy_program();
  Machine m(p, native_opts());
  EXPECT_FALSE(m.native_report().available);
  EXPECT_NE(m.native_report().fallback_reason.find("not available"),
            std::string::npos)
      << m.native_report().fallback_reason;
  // Execution still works (plan fallback) and matches the plan engine.
  Machine pl(p, plan_opts());
  for (Machine* mm : {&pl, &m}) {
    ASSERT_TRUE(mm->set_scalar("a", 2.0).is_ok());
    ASSERT_TRUE(mm->call("saxpy").is_ok());
  }
  EXPECT_EQ(m.native_report().native_calls, 0u);
  const std::vector<double> a = pl.array("y").value();
  const std::vector<double> b = m.array("y").value();
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_bit_equal(a[i], b[i], cat("y[", i, "]"));
  }
}

TEST(NativeFallback, StructGlobalsAreWholeEngineFallback) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  ProgramBuilder pb("m");
  auto s = pb.global("s", DataType::kDouble, {E(4)},
                     {.fields = {{"a", DataType::kDouble},
                                 {"b", DataType::kDouble}}});
  auto fb = pb.function("f");
  auto st = fb.step("st");
  st.foreach_("i", 0, 3);
  st.assign(s.at_field("a", idx("i")), idx("i") * 2.0);
  const Program p = pb.build().value();
  Machine m(p, native_opts());
  EXPECT_FALSE(m.native_report().available);
  EXPECT_NE(m.native_report().fallback_reason.find("struct"),
            std::string::npos);
  ASSERT_TRUE(m.call("f").is_ok());  // plan fallback still runs
}

TEST(NativeFallback, GridNameArgumentsFallBackPerCall) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const Program p = scaled_program();
  Machine m(p, native_opts());
  require_native(m);
  ASSERT_TRUE(m.set_scalar("b", 1.0).is_ok());
  // Passing the scalar global by name binds it by reference — the C ABI
  // passes scalars by value, so this call must take the plan path.
  ASSERT_TRUE(m.call("f", {CallArg{std::string("b")}}).is_ok());
  EXPECT_EQ(m.native_report().native_calls, 0u);
  EXPECT_GE(m.native_report().fallback_calls, 1u);
  // A literal argument takes the native path on the same machine.
  ASSERT_TRUE(m.call("f", {CallArg{2.0}}).is_ok());
  EXPECT_EQ(m.native_report().native_calls, 1u);
}

TEST(NativeFallback, TraceRequestsUsePlans) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  InterpOptions o = native_opts();
  o.trace = true;
  Machine m(testing::saxpy_program(), o);
  EXPECT_FALSE(m.native_report().available);
  ASSERT_TRUE(m.set_scalar("a", 2.0).is_ok());
  ASSERT_TRUE(m.call("saxpy").is_ok());
  EXPECT_FALSE(m.trace().empty());
}

}  // namespace
}  // namespace glaf
