// Robustness contract of the glaf-serve wire protocol: well-formed
// frames round-trip bit-exactly, and EVERY malformed input — bad magic,
// unsupported version, oversized length, truncated frames, trailing
// junk, mid-request disconnect, arbitrary random bytes — yields a typed
// Status, never a crash and never an over-read.

#include "serve/protocol.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <thread>

#include "support/rng.hpp"

namespace glaf::serve {
namespace {

/// Feed `bytes` to a fresh decoder and return its first next() result.
StatusOr<std::optional<Frame>> decode_all(
    const std::vector<std::uint8_t>& bytes) {
  FrameDecoder decoder;
  const Status fed = decoder.feed(bytes.data(), bytes.size());
  if (!fed.is_ok()) return fed;
  return decoder.next();
}

TEST(FrameDecoder, RoundTripsAFrame) {
  Frame frame;
  frame.type = MsgType::kRunEntry;
  frame.payload = {1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> wire = encode_frame(frame);
  ASSERT_EQ(wire.size(), kHeaderSize + 5);

  const auto decoded = decode_all(wire);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  ASSERT_TRUE(decoded.value().has_value());
  EXPECT_EQ(decoded.value()->type, MsgType::kRunEntry);
  EXPECT_EQ(decoded.value()->payload, frame.payload);
}

TEST(FrameDecoder, ReassemblesAcrossArbitrarySplits) {
  Frame frame;
  frame.type = MsgType::kStats;
  for (int i = 0; i < 300; ++i) {
    frame.payload.push_back(static_cast<std::uint8_t>(i));
  }
  const std::vector<std::uint8_t> wire = encode_frame(frame);
  // Feed one byte at a time — the worst fragmentation a stream can do.
  FrameDecoder decoder;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    ASSERT_TRUE(decoder.feed(&wire[i], 1).is_ok());
    const auto partial = decoder.next();
    ASSERT_TRUE(partial.is_ok());
    EXPECT_FALSE(partial.value().has_value()) << "frame complete too early";
  }
  ASSERT_TRUE(decoder.feed(&wire[wire.size() - 1], 1).is_ok());
  const auto done = decoder.next();
  ASSERT_TRUE(done.is_ok());
  ASSERT_TRUE(done.value().has_value());
  EXPECT_EQ(done.value()->payload, frame.payload);
}

TEST(FrameDecoder, RejectsBadMagicAndStaysPoisoned) {
  std::vector<std::uint8_t> wire = encode_frame(Frame{MsgType::kHello, {}});
  wire[0] = 'H';  // "HLAF"
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.feed(wire.data(), wire.size()).is_ok());
  const auto first = decoder.next();
  ASSERT_FALSE(first.is_ok());
  EXPECT_EQ(first.status().code(), StatusCode::kInvalidArgument);

  // Poisoned: feeding perfectly valid bytes afterwards changes nothing.
  const std::vector<std::uint8_t> good =
      encode_frame(Frame{MsgType::kHello, {}});
  EXPECT_FALSE(decoder.feed(good.data(), good.size()).is_ok());
  EXPECT_FALSE(decoder.next().is_ok());
}

TEST(FrameDecoder, RejectsUnsupportedVersion) {
  std::vector<std::uint8_t> wire = encode_frame(Frame{MsgType::kHello, {}});
  wire[4] = 0xFF;
  wire[5] = 0xFF;
  const auto decoded = decode_all(wire);
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_NE(decoded.status().message().find("version"), std::string::npos);
}

TEST(FrameDecoder, RejectsOversizedLengthBeforeBuffering) {
  std::vector<std::uint8_t> wire = encode_frame(Frame{MsgType::kHello, {}});
  // Claim a 4 GiB payload; the decoder must refuse at the header, not
  // wait for (or try to allocate) the bytes.
  wire[8] = 0xFF;
  wire[9] = 0xFF;
  wire[10] = 0xFF;
  wire[11] = 0xFF;
  const auto decoded = decode_all(wire);
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_NE(decoded.status().message().find("oversized"), std::string::npos)
      << decoded.status().to_string();
}

TEST(FrameDecoder, TruncatedFrameIsJustIncomplete) {
  const std::vector<std::uint8_t> wire =
      encode_frame(Frame{MsgType::kRunEntry, {1, 2, 3}});
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(wire.begin(),
                                           wire.begin() + cut);
    const auto decoded = decode_all(prefix);
    ASSERT_TRUE(decoded.is_ok()) << "cut at " << cut;
    EXPECT_FALSE(decoded.value().has_value()) << "cut at " << cut;
  }
}

TEST(FrameDecoder, UnknownMessageTypesDecodeFine) {
  // Forward compatibility: the framing layer does not police types —
  // the server answers unknown ones with a typed error instead.
  Frame frame;
  frame.type = static_cast<MsgType>(77);
  const auto decoded = decode_all(encode_frame(frame));
  ASSERT_TRUE(decoded.is_ok());
  ASSERT_TRUE(decoded.value().has_value());
  EXPECT_EQ(static_cast<std::uint16_t>(decoded.value()->type), 77);
}

TEST(FrameDecoder, RandomBytesNeverCrash) {
  // Fuzz smoke: arbitrary garbage must always land in one of three
  // states — incomplete, decoded frame, or typed error.
  SplitMix64 rng(0xF00D);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> junk(rng.next_below(257));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.next_u64());
    }
    FrameDecoder decoder;
    (void)decoder.feed(junk.data(), junk.size());
    // Drain until error or no more frames; must terminate.
    for (int i = 0; i < 64; ++i) {
      const auto result = decoder.next();
      if (!result.is_ok() || !result.value().has_value()) break;
    }
  }
}

TEST(FrameDecoder, RandomizedValidStreamSurvivesResplitting) {
  // Valid frames concatenated then re-split at random boundaries must
  // all come back out, in order, bit-exact.
  SplitMix64 rng(0xBEEF);
  std::vector<Frame> frames;
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 20; ++i) {
    Frame f;
    f.type = MsgType::kRunEntry;
    f.payload.resize(rng.next_below(65));
    for (auto& b : f.payload) {
      b = static_cast<std::uint8_t>(rng.next_u64());
    }
    const auto wire = encode_frame(f);
    stream.insert(stream.end(), wire.begin(), wire.end());
    frames.push_back(std::move(f));
  }
  FrameDecoder decoder;
  std::size_t fed = 0;
  std::size_t seen = 0;
  while (seen < frames.size()) {
    if (fed < stream.size()) {
      const std::size_t n = std::min<std::size_t>(
          stream.size() - fed,
          static_cast<std::size_t>(1 + rng.next_below(13)));
      ASSERT_TRUE(decoder.feed(stream.data() + fed, n).is_ok());
      fed += n;
    }
    while (true) {
      const auto result = decoder.next();
      ASSERT_TRUE(result.is_ok());
      if (!result.value().has_value()) break;
      ASSERT_LT(seen, frames.size());
      EXPECT_EQ(result.value()->payload, frames[seen].payload);
      ++seen;
    }
  }
}

// ---- typed message round-trips -------------------------------------------

TEST(Messages, LoadProgramRoundTrips) {
  LoadProgramMsg msg;
  msg.builtin = "sarb";
  msg.config.target_tier = 2;
  msg.config.policy = 3;
  msg.config.portable = true;
  const auto decoded = decode_load_program(encode(msg));
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().builtin, "sarb");
  EXPECT_EQ(decoded.value().source, "");
  EXPECT_EQ(decoded.value().config.target_tier, 2);
  EXPECT_EQ(decoded.value().config.policy, 3);
  EXPECT_TRUE(decoded.value().config.portable);
}

TEST(Messages, RunEntryRoundTripsDoublesBitExactly) {
  RunEntryMsg msg;
  msg.session_id = 0x0123456789ABCDEFull;
  msg.entry = "entropy_interface";
  msg.args = {0.1, -0.0, 1e308, std::nextafter(1.0, 2.0)};
  const auto decoded = decode_run_entry(encode(msg));
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().session_id, msg.session_id);
  EXPECT_EQ(decoded.value().entry, msg.entry);
  ASSERT_EQ(decoded.value().args.size(), msg.args.size());
  for (std::size_t i = 0; i < msg.args.size(); ++i) {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::memcpy(&a, &msg.args[i], sizeof a);
    std::memcpy(&b, &decoded.value().args[i], sizeof b);
    EXPECT_EQ(a, b) << "arg " << i << " not bit-identical";
  }
  // -0.0 keeps its sign bit through the wire.
  EXPECT_TRUE(std::signbit(decoded.value().args[1]));
}

TEST(Messages, RunBatchValidatesScalarCount) {
  RunBatchMsg msg;
  msg.session_id = 7;
  msg.entry = "e";
  msg.count = 3;
  msg.num_args = 2;
  msg.scalars = {1, 2, 3, 4, 5, 6};
  const auto ok = decode_run_batch(encode(msg));
  ASSERT_TRUE(ok.is_ok()) << ok.status().to_string();
  EXPECT_EQ(ok.value().scalars.size(), 6u);

  // A count/num_args pair that disagrees with the scalar payload is a
  // decode error, not a server-side surprise.
  Frame tampered = encode(msg);
  Writer w;
  w.u64(7);
  w.u32(0);  // deadline_ms
  w.str("e");
  w.u32(3);
  w.u32(2);
  w.u32(5);  // claims 5 scalars for count*num_args == 6
  for (int i = 0; i < 5; ++i) w.f64(i);
  tampered.payload = std::move(w).take();
  EXPECT_FALSE(decode_run_batch(tampered).is_ok());
}

TEST(Messages, RunBatchOverflowingCountTimesArgsIsRejected) {
  // count=2^31, num_args=2^30: the 64-bit product is 2^61, and *8 wraps
  // to 0 — which would "match" this empty scalar payload and then drive
  // a 2^61-element reserve() that kills the process. The decoder must
  // bound count before any multiplication.
  Writer w;
  w.u64(1);
  w.u32(0);  // deadline_ms
  w.str("e");
  w.u32(0x80000000u);  // count
  w.u32(0x40000000u);  // num_args
  Frame frame;
  frame.type = MsgType::kRunBatch;
  frame.payload = std::move(w).take();
  const auto decoded = decode_run_batch(frame);
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("exceeds limit"),
            std::string::npos)
      << decoded.status().to_string();
}

TEST(Messages, RunBatchHugeZeroArgCountIsRejected) {
  // num_args == 0 makes ANY count consistent with an empty payload, so
  // without the cap a 31-byte frame buys ~2^32 server-side calls and a
  // ~68 GB reply allocation.
  Writer w;
  w.u64(1);
  w.u32(0);  // deadline_ms
  w.str("e");
  w.u32(0xFFFFFFFFu);  // count
  w.u32(0);            // num_args
  Frame frame;
  frame.type = MsgType::kRunBatch;
  frame.payload = std::move(w).take();
  const auto decoded = decode_run_batch(frame);
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(Messages, ZeroArgBatchWithinCapRoundTrips) {
  // Zero-argument entries are real (SARB's entry points take none); a
  // zero-arg batch under the count cap must keep decoding.
  RunBatchMsg msg;
  msg.session_id = 3;
  msg.entry = "entropy_interface";
  msg.count = 64;
  msg.num_args = 0;
  const auto decoded = decode_run_batch(encode(msg));
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().count, 64u);
  EXPECT_EQ(decoded.value().num_args, 0u);
  EXPECT_TRUE(decoded.value().scalars.empty());
}

TEST(Messages, RunDeadlinesRideTheWire) {
  // Protocol v2: deadline_ms sits between session_id and entry in both
  // run shapes; 0 means "no deadline".
  RunEntryMsg run;
  run.session_id = 9;
  run.entry = "e";
  run.deadline_ms = 1500;
  const auto run_back = decode_run_entry(encode(run));
  ASSERT_TRUE(run_back.is_ok()) << run_back.status().to_string();
  EXPECT_EQ(run_back.value().deadline_ms, 1500u);

  RunBatchMsg batch;
  batch.session_id = 9;
  batch.entry = "e";
  batch.count = 2;
  batch.num_args = 1;
  batch.scalars = {1.0, 2.0};
  batch.deadline_ms = 250;
  const auto batch_back = decode_run_batch(encode(batch));
  ASSERT_TRUE(batch_back.is_ok()) << batch_back.status().to_string();
  EXPECT_EQ(batch_back.value().deadline_ms, 250u);
}

TEST(Messages, HealthReplyRoundTrips) {
  HealthReplyMsg msg;
  msg.ready = 1;
  msg.draining = 1;
  msg.top_tier = 2;
  msg.sessions = 3;
  msg.inflight = 17;
  msg.queued = 5;
  msg.compile_queued = 1;
  msg.max_inflight = 4096;
  const auto decoded = decode_health_reply(encode(msg));
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().ready, 1);
  EXPECT_EQ(decoded.value().draining, 1);
  EXPECT_EQ(decoded.value().top_tier, 2);
  EXPECT_EQ(decoded.value().sessions, 3u);
  EXPECT_EQ(decoded.value().inflight, 17u);
  EXPECT_EQ(decoded.value().queued, 5u);
  EXPECT_EQ(decoded.value().compile_queued, 1u);
  EXPECT_EQ(decoded.value().max_inflight, 4096u);
}

TEST(Messages, TrailingBytesAreAnError) {
  Frame frame = encode(StatsMsg{42});
  frame.payload.push_back(0);
  EXPECT_FALSE(decode_stats(frame).is_ok());
}

TEST(Messages, TruncatedPayloadIsATypedError) {
  Frame frame = encode(RunEntryMsg{1, "entry", {1.0, 2.0}});
  frame.payload.resize(frame.payload.size() / 2);
  const auto decoded = decode_run_entry(frame);
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(Messages, ErrorFrameCarriesTheStatus) {
  const Frame frame = error_frame(not_found("no such session"));
  EXPECT_EQ(frame.type, MsgType::kError);
  const auto decoded = decode_error(frame);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().code,
            static_cast<std::uint32_t>(StatusCode::kNotFound));
  EXPECT_EQ(decoded.value().message, "no such session");
}

// ---- blocking socket I/O --------------------------------------------------

TEST(SocketIo, WriteThenReadRoundTrips) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Frame frame;
  frame.type = MsgType::kStatsReply;
  frame.payload = encode(StatsReplyMsg{"{}"}).payload;
  ASSERT_TRUE(write_frame(fds[0], frame).is_ok());
  const auto read_back = read_frame(fds[1]);
  ASSERT_TRUE(read_back.is_ok()) << read_back.status().to_string();
  EXPECT_EQ(read_back.value().payload, frame.payload);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(SocketIo, CleanEofAtBoundaryIsFailedPrecondition) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[0]);  // peer leaves without a word
  const auto result = read_frame(fds[1]);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  ::close(fds[1]);
}

TEST(SocketIo, WriteToAStalledPeerTimesOutInsteadOfHanging) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Shrink the buffers so one large frame overfills them; nobody reads
  // the other end, so an unbounded write would block forever.
  const int small = 4096;
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof small);
  ::setsockopt(fds[1], SOL_SOCKET, SO_RCVBUF, &small, sizeof small);
  Frame frame;
  frame.type = MsgType::kStatsReply;
  frame.payload.assign(1u << 20, 0xAB);
  const Status st = write_frame(fds[0], frame, /*stall_timeout_ms=*/100);
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("stalled"), std::string::npos)
      << st.to_string();
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(SocketIo, MidFrameDisconnectIsInternal) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Send the header + half the payload, then hang up mid-request.
  const std::vector<std::uint8_t> wire =
      encode_frame(Frame{MsgType::kRunEntry, {1, 2, 3, 4, 5, 6, 7, 8}});
  ASSERT_GT(::write(fds[0], wire.data(), wire.size() - 4), 0);
  ::close(fds[0]);
  const auto result = read_frame(fds[1]);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("mid-frame"), std::string::npos);
  ::close(fds[1]);
}

}  // namespace
}  // namespace glaf::serve
