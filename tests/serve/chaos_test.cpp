// Fault-hardening wall for the serve stack (label: serve-chaos). Every
// test drives a REAL server over a real Unix socket while the
// deterministic fault registry injects the failure under test, and
// asserts the robustness contract: typed errors, bit-identical results,
// bounded time — never a hang, never a crash, never a wrong answer.
//
// Covers: request deadlines (expired-in-queue answers without running),
// admission control (overload answers kBusy fast), the kHealth frame,
// graceful drain (in-flight work finishes, new work is shed), the
// per-session circuit breaker (repeated native failures demote loudly
// and re-probe after backoff), truncated kernel-cache publishes
// (detected and rebuilt), a wedged daemon (client read timeout), and
// client reconnect after a server restart.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "core/builder.hpp"
#include "core/serialize.hpp"
#include "interp/machine.hpp"
#include "jit/cache.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "support/fault.hpp"
#include "support/strings.hpp"
#include "support/subprocess.hpp"
#include "support/timer.hpp"

namespace glaf::serve {
namespace {

bool have_cc() { return cc_available(default_cc()); }

/// Every test leaves the process-global fault registry disarmed.
struct FaultGuard {
  ~FaultGuard() { fault::clear(); }
};

struct TestDirs {
  std::string root;
  std::string socket_path;
  std::string cache_dir;
};

TestDirs make_dirs(const char* tag) {
  std::string tmpl = cat(::testing::TempDir(), "glaf_chaos_", tag, "_XXXXXX");
  const char* dir = mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  TestDirs dirs;
  dirs.root = dir;
  dirs.socket_path = dirs.root + "/s.sock";
  dirs.cache_dir = dirs.root + "/cache";
  return dirs;
}

/// A deliberately slow plan-tier program: `spin` walks a long reduction
/// so one call occupies the batcher for many milliseconds — the lever
/// the deadline/busy/drain tests use to hold requests in flight.
std::string spin_source(std::int64_t n) {
  ProgramBuilder pb("spin_mod");
  auto nn = pb.global("n", DataType::kInt, {}, {.init = {n}});
  auto total = pb.global("total", DataType::kDouble);
  auto fb = pb.function("spin");
  auto s = fb.step("Step1");
  s.foreach_("i", 0, E(nn) - 1);
  s.assign(total(), E(total) + 1.0);
  return serialize_program(pb.build().value());
}

int raw_connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  EXPECT_LT(path.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

/// Fire a kRunEntry frame without reading the reply (an in-flight run
/// that keeps the batcher busy).
void stuff_run(int fd, std::uint64_t sid, const std::string& entry) {
  RunEntryMsg msg;
  msg.session_id = sid;
  msg.entry = entry;
  ASSERT_TRUE(write_frame(fd, encode(msg)).is_ok());
}

TEST(ServeChaos, ExpiredDeadlineGetsTypedErrorWithoutRunning) {
  const TestDirs dirs = make_dirs("deadline");
  Server::Options options;
  options.socket_path = dirs.socket_path;
  options.cache_dir = dirs.cache_dir;
  options.threads = 1;
  Server server(options);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect(dirs.socket_path).is_ok());
  ExecConfig config;
  config.target_tier = 0;
  const auto load = client.load_source(spin_source(2000000), config);
  ASSERT_TRUE(load.is_ok()) << load.status().to_string();
  const std::uint64_t sid = load.value().session_id;

  // Three slow runs occupy the single-threaded batcher; the probe's
  // 1 ms deadline is long gone by the time its sweep slot arrives.
  const int stuffer = raw_connect(dirs.socket_path);
  for (int i = 0; i < 3; ++i) stuff_run(stuffer, sid, "spin");
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  const auto probe = client.run(sid, "spin", {}, /*deadline_ms=*/1);
  ASSERT_FALSE(probe.is_ok());
  EXPECT_EQ(probe.status().code(), StatusCode::kDeadlineExceeded)
      << probe.status().to_string();

  // The expirations are visible in the server stats.
  const auto stats = client.stats(0);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_NE(stats.value().find("\"deadline_expired\":1"), std::string::npos)
      << stats.value();

  // A generous deadline on an idle server is not a death sentence.
  const auto relaxed = client.run(sid, "spin", {}, /*deadline_ms=*/60000);
  EXPECT_TRUE(relaxed.is_ok()) << relaxed.status().to_string();
  ::close(stuffer);
}

TEST(ServeChaos, PipelinedFramesAllGetReplies) {
  // Regression: the reader used a fresh decoder per frame, so when one
  // read(2) pulled in the current frame PLUS bytes of the next
  // pipelined one, the surplus was silently dropped — the second
  // request simply never happened. Writing several requests in a single
  // syscall forces exactly that coalescing.
  const TestDirs dirs = make_dirs("pipeline");
  Server::Options options;
  options.socket_path = dirs.socket_path;
  options.cache_dir = dirs.cache_dir;
  options.threads = 2;
  Server server(options);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect(dirs.socket_path).is_ok());
  ExecConfig config;
  config.target_tier = 0;
  const auto load = client.load_source(spin_source(64), config);
  ASSERT_TRUE(load.is_ok()) << load.status().to_string();

  RunEntryMsg msg;
  msg.session_id = load.value().session_id;
  msg.entry = "spin";
  std::vector<std::uint8_t> wire;
  constexpr int kRequests = 5;
  for (int i = 0; i < kRequests; ++i) {
    const std::vector<std::uint8_t> one = encode_frame(encode(msg));
    wire.insert(wire.end(), one.begin(), one.end());
  }
  const int fd = raw_connect(dirs.socket_path);
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::write(fd, wire.data() + sent, wire.size() - sent);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }

  // Every request must be answered (replies may also coalesce, so the
  // reading side needs its own persistent decoder).
  FrameDecoder decoder;
  for (int i = 0; i < kRequests; ++i) {
    const StatusOr<Frame> reply = read_frame(fd, decoder, 10000);
    ASSERT_TRUE(reply.is_ok()) << "reply " << i << ": "
                               << reply.status().to_string();
    EXPECT_EQ(reply.value().type, MsgType::kRunReply) << "reply " << i;
  }
  ::close(fd);
}

TEST(ServeChaos, OverloadShedsWithTypedBusy) {
  const TestDirs dirs = make_dirs("busy");
  Server::Options options;
  options.socket_path = dirs.socket_path;
  options.cache_dir = dirs.cache_dir;
  options.threads = 1;
  options.max_inflight = 2;
  Server server(options);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect(dirs.socket_path).is_ok());
  ExecConfig config;
  config.target_tier = 0;
  const auto load = client.load_source(spin_source(8000000), config);
  ASSERT_TRUE(load.is_ok()) << load.status().to_string();
  const std::uint64_t sid = load.value().session_id;

  // Fill the admission budget with two slow in-flight runs; the health
  // frame (never admission-controlled) tells us when both are admitted.
  const int stuffer = raw_connect(dirs.socket_path);
  stuff_run(stuffer, sid, "spin");
  stuff_run(stuffer, sid, "spin");
  for (int i = 0; i < 2000; ++i) {
    const auto health = client.health();
    ASSERT_TRUE(health.is_ok()) << health.status().to_string();
    if (health.value().inflight >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const auto probe = client.run(sid, "spin");
  ASSERT_FALSE(probe.is_ok());
  EXPECT_EQ(probe.status().code(), StatusCode::kBusy)
      << probe.status().to_string();
  EXPECT_NE(probe.status().message().find("capacity"), std::string::npos);

  const auto stats = client.stats(0);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_NE(stats.value().find("\"requests_shed\":1"), std::string::npos)
      << stats.value();
  ::close(stuffer);
}

TEST(ServeChaos, HealthFrameReportsReadiness) {
  const TestDirs dirs = make_dirs("health");
  Server::Options options;
  options.socket_path = dirs.socket_path;
  options.cache_dir = dirs.cache_dir;
  options.threads = 2;
  options.max_inflight = 128;
  Server server(options);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect(dirs.socket_path).is_ok());
  auto health = client.health();
  ASSERT_TRUE(health.is_ok()) << health.status().to_string();
  EXPECT_EQ(health.value().ready, 1);
  EXPECT_EQ(health.value().draining, 0);
  EXPECT_EQ(health.value().sessions, 0u);
  EXPECT_EQ(health.value().max_inflight, 128u);

  ExecConfig config;
  config.target_tier = 0;
  ASSERT_TRUE(client.load_builtin("sarb", config).is_ok());
  health = client.health();
  ASSERT_TRUE(health.is_ok());
  EXPECT_EQ(health.value().sessions, 1u);
  EXPECT_EQ(health.value().top_tier, 0);
}

TEST(ServeChaos, GracefulDrainFinishesInFlightWorkAndShedsNew) {
  const TestDirs dirs = make_dirs("drain");
  Server::Options options;
  options.socket_path = dirs.socket_path;
  options.cache_dir = dirs.cache_dir;
  options.threads = 1;
  options.drain_timeout_ms = 30000;
  Server server(options);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect(dirs.socket_path).is_ok());
  ExecConfig config;
  config.target_tier = 0;
  const auto load = client.load_source(spin_source(8000000), config);
  ASSERT_TRUE(load.is_ok()) << load.status().to_string();
  const std::uint64_t sid = load.value().session_id;

  // One slow run is in flight when the drain starts; its reply must
  // still be delivered.
  const int inflight = raw_connect(dirs.socket_path);
  stuff_run(inflight, sid, "spin");
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  std::thread drainer([&server] { server.drain(); });
  for (int i = 0; i < 2000 && !server.draining(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(server.draining()) << "drain never entered its window";

  // New runs are shed with a typed kBusy naming the drain. (If the
  // in-flight work finished and the server already stopped, the probe
  // sees a transport error instead — also a legal outcome.)
  const auto shed = client.run(sid, "spin");
  ASSERT_FALSE(shed.is_ok());
  if (shed.status().code() == StatusCode::kBusy) {
    EXPECT_NE(shed.status().message().find("draining"), std::string::npos)
        << shed.status().to_string();
    // ...while kHealth keeps answering so orchestration can tell
    // draining from dead.
    const auto health = client.health();
    if (health.is_ok()) {
      EXPECT_EQ(health.value().ready, 0);
      EXPECT_EQ(health.value().draining, 1);
    }
  }

  drainer.join();
  EXPECT_FALSE(server.running());
  // The in-flight run's reply made it out before the teardown.
  const auto reply = read_frame(inflight);
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_EQ(reply.value().type, MsgType::kRunReply);
  ::close(inflight);
}

TEST(ServeChaos, BreakerDemotesLoudlyAndReprobesAfterBackoff) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  FaultGuard guard;
  const TestDirs dirs = make_dirs("breaker");
  Server::Options options;
  options.socket_path = dirs.socket_path;
  options.cache_dir = dirs.cache_dir;
  options.threads = 2;
  options.sync_compile = true;
  options.max_pool = 0;  // no idle pool: every acquire constructs
  options.breaker_threshold = 2;
  options.breaker_backoff_ms = 150;
  Server server(options);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect(dirs.socket_path).is_ok());
  const auto load = client.load_builtin("sarb", ExecConfig{});  // tier 1
  ASSERT_TRUE(load.is_ok()) << load.status().to_string();
  const std::uint64_t sid = load.value().session_id;
  const std::shared_ptr<Session> session = server.registry().find(sid);
  ASSERT_NE(session, nullptr);
  ASSERT_EQ(session->tier(), Tier::kNativeInterp)
      << "sync compile should have promoted before the load reply";

  const auto native = client.run(sid, "entropy_interface");
  ASSERT_TRUE(native.is_ok()) << native.status().to_string();
  ASSERT_EQ(native.value().tier, 1);
  const double golden = native.value().result;

  // Every native construction now refuses (cache gone bad, dlopen
  // failing — the shape does not matter, the response does).
  ASSERT_TRUE(fault::configure("jit.engine.load").is_ok());

  // Failure one: the request silently-degrades to the plan tier — but
  // NOT silently: the reply says tier 0 and stats count the failure.
  // This is the regression test for the demotion path: the result must
  // stay bit-identical while the tier honestly reports the fallback.
  const auto first = client.run(sid, "entropy_interface");
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  EXPECT_EQ(first.value().tier, 0);
  EXPECT_EQ(first.value().result, golden) << "degraded run changed the value";
  EXPECT_EQ(session->stats().native_load_failures, 1u);
  EXPECT_FALSE(session->stats().breaker_open);

  // Failure two trips the breaker: the session demotes its serving tier
  // so later acquires stop paying the doomed native attempt.
  const auto second = client.run(sid, "entropy_interface");
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();
  EXPECT_EQ(second.value().tier, 0);
  EXPECT_EQ(second.value().result, golden);
  {
    const SessionStats stats = session->stats();
    EXPECT_TRUE(stats.breaker_open);
    EXPECT_EQ(stats.breaker_trips, 1u);
    EXPECT_NE(stats.breaker_reason.find("fault injected"),
              std::string::npos)
        << stats.breaker_reason;
  }
  EXPECT_EQ(session->tier(), Tier::kPlan);
  // The tripped state is on the stats wire too.
  const auto json = client.stats(sid);
  ASSERT_TRUE(json.is_ok());
  EXPECT_NE(json.value().find("\"breaker_open\":true"), std::string::npos)
      << json.value();

  // While open, runs serve from plan without touching native.
  const auto demoted = client.run(sid, "entropy_interface");
  ASSERT_TRUE(demoted.is_ok());
  EXPECT_EQ(demoted.value().tier, 0);
  EXPECT_EQ(demoted.value().result, golden);

  // Heal the fault, wait out the backoff: the breaker re-probes and the
  // session climbs back to its promoted tier.
  fault::clear();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const auto healed = client.run(sid, "entropy_interface");
  ASSERT_TRUE(healed.is_ok()) << healed.status().to_string();
  EXPECT_EQ(healed.value().tier, 1) << "breaker never re-probed";
  EXPECT_EQ(healed.value().result, golden);
  EXPECT_FALSE(session->stats().breaker_open);
}

TEST(ServeChaos, TruncatedPublishIsDetectedAndRebuilt) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  FaultGuard guard;
  const TestDirs dirs = make_dirs("publish");
  jit::KernelCache cache(dirs.cache_dir);
  const std::string source =
      "double glaf_answer(void) { return 42.0; }\n";
  const std::string flags = "-shared -fPIC -O1";
  const std::uint64_t discards_before =
      jit::kernel_cache_stats().corrupt_discards;

  // First publish crashes mid-writeback: rename lands, data does not.
  ASSERT_TRUE(fault::configure("jit.cache.publish:1:1").is_ok());
  const auto corrupt = cache.object_for(source, default_cc(), flags);
  ASSERT_TRUE(corrupt.is_ok()) << corrupt.status().to_string();
  {
    struct stat st{};
    ASSERT_EQ(stat(corrupt.value().c_str(), &st), 0);
    EXPECT_EQ(st.st_size, 2) << "fault should have truncated the object";
  }
  fault::clear();

  // The next lookup must refuse the damaged entry and rebuild it.
  bool was_hit = true;
  const auto rebuilt = cache.object_for(source, default_cc(), flags,
                                        &was_hit);
  ASSERT_TRUE(rebuilt.is_ok()) << rebuilt.status().to_string();
  EXPECT_FALSE(was_hit) << "a truncated entry must not count as a hit";
  EXPECT_GE(jit::kernel_cache_stats().corrupt_discards, discards_before + 1);
  std::ifstream in(rebuilt.value(), std::ios::binary);
  char magic[4] = {};
  in.read(magic, 4);
  ASSERT_EQ(in.gcount(), 4);
  EXPECT_EQ(magic[0], '\x7f');
  EXPECT_EQ(magic[1], 'E');
  EXPECT_EQ(magic[2], 'L');
  EXPECT_EQ(magic[3], 'F');
}

TEST(ServeChaos, WedgedDaemonCostsATimeoutNotAHang) {
  // A listener that accepts into its backlog and never answers — the
  // shape of a daemon stuck under a lock. Before the client grew a read
  // timeout, `glaf_serve --stats` would hang here forever.
  const TestDirs dirs = make_dirs("wedged");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(dirs.socket_path.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, dirs.socket_path.c_str(),
              dirs.socket_path.size() + 1);
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 8), 0);

  Client::Options copts;
  copts.connect_timeout_ms = 2000;
  copts.read_timeout_ms = 200;
  Client client;
  Timer elapsed;
  const Status connected = client.connect(dirs.socket_path, copts);
  ASSERT_FALSE(connected.is_ok());
  EXPECT_NE(connected.message().find("stalled"), std::string::npos)
      << connected.to_string();
  EXPECT_LT(elapsed.milliseconds(), 5000.0);
  ::close(listener);
}

TEST(ServeChaos, ClientReconnectsAcrossAServerRestart) {
  const TestDirs dirs = make_dirs("restart");
  Server::Options options;
  options.socket_path = dirs.socket_path;
  options.cache_dir = dirs.cache_dir;
  options.threads = 2;

  auto first = std::make_unique<Server>(options);
  ASSERT_TRUE(first->start().is_ok());

  Client::Options copts;
  copts.retries = 5;
  copts.retry_backoff_ms = 10;
  copts.read_timeout_ms = 5000;
  Client client;
  ASSERT_TRUE(client.connect(dirs.socket_path, copts).is_ok());
  ASSERT_TRUE(client.stats(0).is_ok());

  // The daemon dies and a replacement binds the same path.
  first->stop();
  first.reset();
  Server second(options);
  ASSERT_TRUE(second.start().is_ok());

  // The old connection is dead; the retry path must re-dial and land
  // the request on the replacement — invisibly to the caller.
  const auto stats = client.stats(0);
  EXPECT_TRUE(stats.is_ok()) << stats.status().to_string();
}

}  // namespace
}  // namespace glaf::serve
