// End-to-end tests of the glaf-serve daemon: a real Unix socket, the
// real client library, and the real async tier ladder.
//
// The load-bearing check is the promotion e2e: with a cold kernel cache
// the first run-entry reply MUST come from the plan VM (the compile
// queue cannot possibly have finished), later replies must come from
// the native tier, results must agree bitwise with a local Machine, and
// the stats endpoint must show the promotion. Native legs skip when the
// host has no C compiler (the daemon then keeps serving plan — that
// degradation is itself asserted).

#include "serve/server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <thread>

#include "core/serialize.hpp"
#include "fuliou/glaf_kernels.hpp"
#include "interp/machine.hpp"
#include "serve/client.hpp"
#include "support/strings.hpp"
#include "support/subprocess.hpp"

namespace glaf::serve {
namespace {

bool have_cc() { return cc_available(default_cc()); }

/// Fresh socket path + cold cache dir per test (promotion determinism
/// depends on the cache being cold).
struct TestDirs {
  std::string root;
  std::string socket_path;
  std::string cache_dir;
};

TestDirs make_dirs(const char* tag) {
  std::string tmpl = cat(::testing::TempDir(), "glaf_serve_", tag, "_XXXXXX");
  const char* dir = mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  TestDirs dirs;
  dirs.root = dir;
  dirs.socket_path = dirs.root + "/s.sock";
  dirs.cache_dir = dirs.root + "/cache";
  return dirs;
}

Server::Options server_options(const TestDirs& dirs) {
  Server::Options options;
  options.socket_path = dirs.socket_path;
  options.cache_dir = dirs.cache_dir;
  options.threads = 2;
  return options;
}

TEST(ServeServer, HelloHandshake) {
  const TestDirs dirs = make_dirs("hello");
  Server server(server_options(dirs));
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect(dirs.socket_path).is_ok());
  EXPECT_EQ(client.server_pid(), static_cast<std::uint64_t>(::getpid()));
}

TEST(ServeServer, PlanTierServesWithoutACompiler) {
  const TestDirs dirs = make_dirs("plan");
  Server server(server_options(dirs));
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect(dirs.socket_path).is_ok());
  ExecConfig config;
  config.target_tier = 0;  // plan only: no compile queue involvement
  const auto load = client.load_builtin("sarb", config);
  ASSERT_TRUE(load.is_ok()) << load.status().to_string();
  EXPECT_EQ(load.value().current_tier, 0);

  const auto reply =
      client.run(load.value().session_id, "entropy_interface");
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_EQ(reply.value().tier, 0);

  // Bit-identical to a local plan-engine Machine.
  Machine local(fuliou::build_sarb_program(), InterpOptions{});
  const auto expected = local.call("entropy_interface");
  ASSERT_TRUE(expected.is_ok());
  EXPECT_EQ(reply.value().result, expected.value());
}

TEST(ServeServer, PromotionEndToEnd) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const TestDirs dirs = make_dirs("promo");
  Server server(server_options(dirs));
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect(dirs.socket_path).is_ok());
  const auto load = client.load_builtin("sarb", ExecConfig{});  // tier 1
  ASSERT_TRUE(load.is_ok()) << load.status().to_string();
  const std::uint64_t sid = load.value().session_id;
  // The cache is cold, so the load reply itself precedes any compile.
  EXPECT_EQ(load.value().current_tier, 0);

  // First run: the plan VM answers while the native kernel compiles.
  const auto first = client.run(sid, "entropy_interface");
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  EXPECT_EQ(first.value().tier, 0) << "first reply must be the plan VM";

  // Wait for the ladder, then the next reply must be native.
  server.compile_queue().wait_idle();
  const auto promoted = client.run(sid, "entropy_interface");
  ASSERT_TRUE(promoted.is_ok()) << promoted.status().to_string();
  const auto debug_stats = client.stats(sid);
  ASSERT_EQ(promoted.value().tier, 1)
      << "session stats: "
      << (debug_stats.is_ok() ? debug_stats.value() : "(unavailable)");

  // Interp-math native is bit-identical to the plan VM by contract.
  EXPECT_EQ(promoted.value().result, first.value().result);

  // And bit-identical to what a local `glafc --run`-equivalent Machine
  // computes for the same entry.
  Machine local(fuliou::build_sarb_program(), InterpOptions{});
  const auto expected = local.call("entropy_interface");
  ASSERT_TRUE(expected.is_ok());
  EXPECT_EQ(promoted.value().result, expected.value());

  // The stats endpoint records the promotion and both tiers' runs.
  const auto stats = client.stats(sid);
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  EXPECT_NE(stats.value().find("\"tier\":\"native-interp\""),
            std::string::npos)
      << stats.value();
  EXPECT_NE(stats.value().find("\"promotions\":[{"), std::string::npos)
      << stats.value();
  EXPECT_NE(stats.value().find("\"runs_plan\":"), std::string::npos);
  EXPECT_NE(stats.value().find("\"native_report\":{"), std::string::npos)
      << stats.value();
}

TEST(ServeServer, CompileFailureDegradesToPlanAndIsReported) {
  const TestDirs dirs = make_dirs("nocc");
  Server::Options options = server_options(dirs);
  options.cc = "/nonexistent/compiler";
  options.sync_compile = true;  // surface the failure deterministically
  Server server(options);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect(dirs.socket_path).is_ok());
  const auto load = client.load_builtin("sarb", ExecConfig{});
  ASSERT_TRUE(load.is_ok()) << load.status().to_string();
  EXPECT_EQ(load.value().current_tier, 0) << "ladder cannot have climbed";

  const auto reply =
      client.run(load.value().session_id, "entropy_interface");
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_EQ(reply.value().tier, 0);

  const auto stats = client.stats(load.value().session_id);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_NE(stats.value().find("\"compile_error\":\""), std::string::npos);
  EXPECT_EQ(stats.value().find("\"compile_error\":\"\""), std::string::npos)
      << "compile_error should be nonempty: " << stats.value();
}

TEST(ServeServer, BatchMatchesSequentialRuns) {
  const TestDirs dirs = make_dirs("batch");
  Server server(server_options(dirs));
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect(dirs.socket_path).is_ok());
  ExecConfig config;
  config.target_tier = 0;
  const auto load = client.load_builtin("sarb", config);
  ASSERT_TRUE(load.is_ok());
  const std::uint64_t sid = load.value().session_id;

  const auto single = client.run(sid, "entropy_interface");
  ASSERT_TRUE(single.is_ok());

  constexpr std::uint32_t kCount = 16;
  const auto batch =
      client.run_batch(sid, "entropy_interface", kCount, 0, {});
  ASSERT_TRUE(batch.is_ok()) << batch.status().to_string();
  ASSERT_EQ(batch.value().results.size(), kCount);
  for (const RunReplyMsg& r : batch.value().results) {
    EXPECT_EQ(r.result, single.value().result);
  }
  // The batcher must have coalesced the frame's 16 requests: they are
  // submitted back-to-back (microseconds) while each sweep runs a full
  // SARB call (milliseconds), so at least one drain sees several.
  const Batcher::Stats bstats = server.batcher().stats();
  EXPECT_EQ(bstats.requests, 1u + kCount);
  EXPECT_GE(bstats.max_batch, 2u) << "no coalescing happened";
  // The wire-visible counters agree.
  const auto stats = client.stats(0);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_NE(stats.value().find("\"batcher\":{"), std::string::npos)
      << stats.value();
}

TEST(ServeServer, ConcurrentClientsAllGetTheSameAnswer) {
  const TestDirs dirs = make_dirs("conc");
  Server server(server_options(dirs));
  ASSERT_TRUE(server.start().is_ok());

  Client loader;
  ASSERT_TRUE(loader.connect(dirs.socket_path).is_ok());
  ExecConfig config;
  config.target_tier = 0;
  const auto load = loader.load_builtin("sarb", config);
  ASSERT_TRUE(load.is_ok());
  const std::uint64_t sid = load.value().session_id;
  const auto expected = loader.run(sid, "entropy_interface");
  ASSERT_TRUE(expected.is_ok());

  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::vector<int> failures(kClients, 1);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client c;
      if (!c.connect(dirs.socket_path).is_ok()) return;
      for (int run = 0; run < 4; ++run) {
        const auto r = c.run(sid, "entropy_interface");
        if (!r.is_ok() || r.value().result != expected.value().result) {
          return;
        }
      }
      failures[i] = 0;
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(failures[i], 0) << "client " << i;
  }
}

TEST(ServeServer, SharedProgramAndConfigShareOneSession) {
  const TestDirs dirs = make_dirs("share");
  Server server(server_options(dirs));
  ASSERT_TRUE(server.start().is_ok());

  Client a;
  Client b;
  ASSERT_TRUE(a.connect(dirs.socket_path).is_ok());
  ASSERT_TRUE(b.connect(dirs.socket_path).is_ok());
  ExecConfig config;
  config.target_tier = 0;
  const auto la = a.load_builtin("sarb", config);
  const auto lb = b.load_builtin("sarb", config);
  ASSERT_TRUE(la.is_ok());
  ASSERT_TRUE(lb.is_ok());
  EXPECT_EQ(la.value().session_id, lb.value().session_id);
  EXPECT_EQ(la.value().program_hash, lb.value().program_hash);

  // A different config is a different session.
  config.policy = 3;
  const auto lc = a.load_builtin("sarb", config);
  ASSERT_TRUE(lc.is_ok());
  EXPECT_NE(lc.value().session_id, la.value().session_id);
}

TEST(ServeServer, LoadsSerializedSourcePrograms) {
  const TestDirs dirs = make_dirs("src");
  Server server(server_options(dirs));
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect(dirs.socket_path).is_ok());
  ExecConfig config;
  config.target_tier = 0;
  const std::string source =
      serialize_program(fuliou::build_sarb_program());
  const auto load = client.load_source(source, config);
  ASSERT_TRUE(load.is_ok()) << load.status().to_string();
  const auto reply =
      client.run(load.value().session_id, "entropy_interface");
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
}

TEST(ServeServer, TypedErrorsForBadRequests) {
  const TestDirs dirs = make_dirs("err");
  Server server(server_options(dirs));
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect(dirs.socket_path).is_ok());

  // Unknown session.
  const auto run = client.run(999999, "entropy_interface");
  ASSERT_FALSE(run.is_ok());
  EXPECT_EQ(run.status().code(), StatusCode::kNotFound);

  // Unknown builtin.
  const auto load = client.load_builtin("nope", ExecConfig{});
  ASSERT_FALSE(load.is_ok());
  EXPECT_EQ(load.status().code(), StatusCode::kInvalidArgument);

  // Garbage source.
  const auto bad = client.load_source("(not a program", ExecConfig{});
  ASSERT_FALSE(bad.is_ok());

  // The connection survived all three errors.
  ExecConfig config;
  config.target_tier = 0;
  const auto good = client.load_builtin("sarb", config);
  ASSERT_TRUE(good.is_ok()) << good.status().to_string();
}

TEST(ServeServer, MalformedBytesKillOnlyThatConnection) {
  const TestDirs dirs = make_dirs("mal");
  Server server(server_options(dirs));
  ASSERT_TRUE(server.start().is_ok());

  // A well-behaved client first.
  Client good;
  ASSERT_TRUE(good.connect(dirs.socket_path).is_ok());
  ExecConfig config;
  config.target_tier = 0;
  const auto load = good.load_builtin("sarb", config);
  ASSERT_TRUE(load.is_ok());

  // Raw socket spraying garbage at the daemon.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, dirs.socket_path.c_str(),
              dirs.socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const char junk[] = "GET / HTTP/1.1\r\nHost: not-glaf\r\n\r\n";
  ASSERT_GT(::write(fd, junk, sizeof junk - 1), 0);
  // The daemon replies with a typed error frame and closes; drain it.
  char buf[512];
  while (::read(fd, buf, sizeof buf) > 0) {
  }
  ::close(fd);

  // Another connection: half a frame, then vanish mid-request.
  const int fd2 = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd2, 0);
  ASSERT_EQ(::connect(fd2, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::vector<std::uint8_t> wire =
      encode_frame(Frame{MsgType::kRunEntry, {1, 2, 3, 4, 5, 6, 7, 8}});
  ASSERT_GT(::write(fd2, wire.data(), wire.size() - 3), 0);
  ::close(fd2);

  // The good client is unaffected.
  const auto reply =
      good.run(load.value().session_id, "entropy_interface");
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();

  // And the server counted the abuse.
  const auto stats = good.stats(0);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_NE(stats.value().find("\"protocol_errors\":"), std::string::npos);
  EXPECT_EQ(stats.value().find("\"protocol_errors\":0,"),
            std::string::npos)
      << stats.value();
}

TEST(ServeServer, CraftedBatchHeadersGetTypedErrorsNotACrash) {
  const TestDirs dirs = make_dirs("craft");
  Server server(server_options(dirs));
  ASSERT_TRUE(server.start().is_ok());

  Client good;
  ASSERT_TRUE(good.connect(dirs.socket_path).is_ok());
  ExecConfig config;
  config.target_tier = 0;
  const auto load = good.load_builtin("sarb", config);
  ASSERT_TRUE(load.is_ok());

  // Raw socket: kRunBatch frames the client library would never build.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, dirs.socket_path.c_str(),
              dirs.socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  const auto expect_error_reply = [fd](std::uint32_t count,
                                       std::uint32_t num_args) {
    Writer w;
    w.u64(1);
    w.u32(0);  // deadline_ms
    w.str("entropy_interface");
    w.u32(count);
    w.u32(num_args);
    Frame frame;
    frame.type = MsgType::kRunBatch;
    frame.payload = std::move(w).take();
    ASSERT_TRUE(write_frame(fd, frame).is_ok());
    const auto reply = read_frame(fd);
    ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
    EXPECT_EQ(reply.value().type, MsgType::kError);
  };
  // count*num_args wraps to 0 mod 2^64, "matching" the empty payload.
  expect_error_reply(0x80000000u, 0x40000000u);
  // Zero args per call: any count "matches"; 2^32-1 calls for 31 bytes.
  expect_error_reply(0xFFFFFFFFu, 0);
  ::close(fd);

  // The daemon survived both and still serves the well-behaved client.
  const auto reply =
      good.run(load.value().session_id, "entropy_interface");
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
}

TEST(ServeServer, ShutdownFrameStopsTheServer) {
  const TestDirs dirs = make_dirs("down");
  Server server(server_options(dirs));
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect(dirs.socket_path).is_ok());
  ASSERT_TRUE(client.shutdown_server().is_ok());

  // wait() returns because the client-initiated stop completed.
  server.wait();
  EXPECT_FALSE(server.running());

  // The socket is gone; new connections fail.
  Client late;
  EXPECT_FALSE(late.connect(dirs.socket_path).is_ok());
}

}  // namespace
}  // namespace glaf::serve
