// Execution-trace tests: the interpreter's step trace is the debugging /
// visualization facility the GPI provides in the original GLAF.

#include <gtest/gtest.h>

#include "fuliou/glaf_kernels.hpp"
#include "fuliou/harness.hpp"
#include "interp/machine.hpp"
#include "testing/programs.hpp"

namespace glaf {
namespace {

TEST(Trace, OffByDefault) {
  Machine m(testing::saxpy_program());
  ASSERT_TRUE(m.call("saxpy").is_ok());
  EXPECT_TRUE(m.trace().empty());
}

TEST(Trace, RecordsStepWithIterations) {
  InterpOptions opts;
  opts.trace = true;
  Machine m(testing::saxpy_program(), opts);
  ASSERT_TRUE(m.call("saxpy").is_ok());
  ASSERT_EQ(m.trace().size(), 1u);
  const TraceEntry& e = m.trace()[0];
  EXPECT_EQ(e.function, "saxpy");
  EXPECT_EQ(e.step, "Step1");
  EXPECT_EQ(e.iterations, 8u);
  EXPECT_FALSE(e.parallel);
}

TEST(Trace, ParallelFlagSet) {
  InterpOptions opts;
  opts.trace = true;
  opts.parallel = true;
  opts.num_threads = 4;
  Machine m(testing::saxpy_program(), opts);
  ASSERT_TRUE(m.call("saxpy").is_ok());
  ASSERT_EQ(m.trace().size(), 1u);
  EXPECT_TRUE(m.trace()[0].parallel);
  EXPECT_EQ(m.trace()[0].iterations, 8u);
}

TEST(Trace, SarbDriverTraceFollowsCallOrder) {
  InterpOptions opts;
  opts.trace = true;
  Machine m(fuliou::build_sarb_program(), opts);
  const fuliou::AtmosphereProfile profile = fuliou::make_profile(1);
  ASSERT_TRUE(fuliou::run_glaf_sarb(m, profile).is_ok());

  // The trace interleaves callee steps inside the driver's: find the
  // first entry of each subroutine and check the §4.1 wrapper order.
  std::vector<std::string> first_seen;
  for (const TraceEntry& e : m.trace()) {
    if (std::find(first_seen.begin(), first_seen.end(), e.function) ==
        first_seen.end()) {
      first_seen.push_back(e.function);
    }
  }
  const std::vector<std::string> expected = {
      "entropy_interface",       "lw_spectral_integration",
      "longwave_entropy_model",  "sw_spectral_integration",
      "shortwave_entropy_model", "adjust2",
  };
  EXPECT_EQ(first_seen, expected);

  // The 2x60 complex loops report 120 iterations each.
  int found_120 = 0;
  for (const TraceEntry& e : m.trace()) {
    if (e.step == "le7" || e.step == "le8") {
      EXPECT_EQ(e.iterations, 120u);
      ++found_120;
    }
  }
  EXPECT_EQ(found_120, 2);
}

TEST(Trace, ClearResets) {
  InterpOptions opts;
  opts.trace = true;
  Machine m(testing::saxpy_program(), opts);
  ASSERT_TRUE(m.call("saxpy").is_ok());
  EXPECT_FALSE(m.trace().empty());
  m.clear_trace();
  EXPECT_TRUE(m.trace().empty());
  ASSERT_TRUE(m.call("saxpy").is_ok());
  EXPECT_EQ(m.trace().size(), 1u);
}

TEST(Trace, EarlyReturnStopsTraceMidFunction) {
  ProgramBuilder pb("m");
  auto g = pb.global("g", DataType::kDouble);
  auto fb = pb.function("f", DataType::kInt);
  auto s1 = fb.step("first");
  s1.ret(liti(7));
  auto s2 = fb.step("second");
  s2.assign(g(), 1.0);
  InterpOptions opts;
  opts.trace = true;
  Machine m(pb.build().value(), opts);
  ASSERT_TRUE(m.call("f").is_ok());
  ASSERT_EQ(m.trace().size(), 1u);
  EXPECT_EQ(m.trace()[0].step, "first");
}

}  // namespace
}  // namespace glaf
