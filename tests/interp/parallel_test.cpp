#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "interp/machine.hpp"
#include "testing/programs.hpp"

namespace glaf {
namespace {

InterpOptions parallel_opts(int threads = 4,
                            DirectivePolicy policy = DirectivePolicy::kV0) {
  InterpOptions o;
  o.parallel = true;
  o.num_threads = threads;
  o.policy = policy;
  return o;
}

TEST(ParallelInterp, SaxpyMatchesSerial) {
  const Program p = testing::saxpy_program();
  std::vector<double> x(8), y0(8);
  for (int i = 0; i < 8; ++i) {
    x[i] = 0.5 * i;
    y0[i] = 3.0 - i;
  }
  const auto run = [&](InterpOptions opts) {
    Machine m(p, opts);
    EXPECT_TRUE(m.set_scalar("a", 1.5).is_ok());
    EXPECT_TRUE(m.set_array("x", x).is_ok());
    EXPECT_TRUE(m.set_array("y", y0).is_ok());
    EXPECT_TRUE(m.call("saxpy").is_ok());
    return m.array("y").value();
  };
  const auto serial = run({});
  const auto parallel = run(parallel_opts());
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(serial[i], parallel[i]);
}

TEST(ParallelInterp, ParallelRegionCounted) {
  Machine m(testing::saxpy_program(), parallel_opts());
  ASSERT_TRUE(m.set_scalar("a", 1.0).is_ok());
  ASSERT_TRUE(m.call("saxpy").is_ok());
  EXPECT_EQ(m.stats().parallel_regions, 1u);
}

TEST(ParallelInterp, SerialLoopNotParallelized) {
  Machine m(testing::prefix_program(), parallel_opts());
  ASSERT_TRUE(m.set_array("arr", {1, 0, 0, 0, 0, 0, 0, 0}).is_ok());
  ASSERT_TRUE(m.call("prefix").is_ok());
  EXPECT_EQ(m.stats().parallel_regions, 0u);
  EXPECT_DOUBLE_EQ(m.array("arr").value()[7], 8.0);
}

TEST(ParallelInterp, ReductionMatchesSerialWithinTolerance) {
  // Parallel float summation reassociates; the paper's FUN3D check uses an
  // RMS tolerance of 1e-7 for the same reason.
  const Program p = testing::reduce_program();
  std::vector<double> x(16);
  for (int i = 0; i < 16; ++i) x[i] = 1.0 / (1.0 + i);
  const auto run = [&](InterpOptions opts) {
    Machine m(p, opts);
    EXPECT_TRUE(m.set_array("x", x).is_ok());
    EXPECT_TRUE(m.call("reduce_sum").is_ok());
    return m.scalar("total").value();
  };
  EXPECT_NEAR(run({}), run(parallel_opts()), 1e-12);
}

TEST(ParallelInterp, PolicyControlsWhichLoopsParallelize) {
  // An init-to-zero loop keeps its directive only under v0.
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{64}}});
  auto a = pb.global("a", DataType::kDouble, {E(n)});
  auto fb = pb.function("init");
  auto s = fb.step("s");
  s.foreach_("i", 0, E(n) - 1);
  s.assign(a(idx("i")), 0.0);
  const Program p = pb.build().value();

  Machine v0(p, parallel_opts(4, DirectivePolicy::kV0));
  ASSERT_TRUE(v0.call("init").is_ok());
  EXPECT_EQ(v0.stats().parallel_regions, 1u);

  Machine v1(p, parallel_opts(4, DirectivePolicy::kV1));
  ASSERT_TRUE(v1.call("init").is_ok());
  EXPECT_EQ(v1.stats().parallel_regions, 0u);
}

TEST(ParallelInterp, PrivateGridsGivePerThreadStorage) {
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{512}}});
  auto a = pb.global("a", DataType::kDouble, {E(n)});
  auto fb = pb.function("f");
  auto t = fb.local("t", DataType::kDouble);
  auto s = fb.step("s");
  s.foreach_("i", 0, E(n) - 1);
  s.assign(t(), idx("i") * 2.0);
  s.assign(a(idx("i")), E(t));
  const Program p = pb.build().value();

  Machine m(p, parallel_opts(4));
  ASSERT_TRUE(m.call("f").is_ok());
  EXPECT_EQ(m.stats().parallel_regions, 1u);
  const auto out = m.array("a").value();
  for (int i = 0; i < 512; ++i) EXPECT_DOUBLE_EQ(out[i], 2.0 * i);
}

TEST(ParallelInterp, AtomicScatterMatchesSerial) {
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{256}}});
  auto index = pb.global("index", DataType::kInt, {E(n)});
  auto w = pb.global("w", DataType::kDouble, {E(n)});
  auto out = pb.global("out", DataType::kDouble, {8});
  auto fb = pb.function("scatter");
  auto s = fb.step("s");
  s.foreach_("i", 0, E(n) - 1);
  s.assign(out(index(idx("i"))), out(index(idx("i"))) + w(idx("i")));
  const Program p = pb.build().value();

  std::vector<double> idx_data(256), w_data(256);
  for (int i = 0; i < 256; ++i) {
    idx_data[i] = i % 8;
    w_data[i] = 0.25;
  }
  const auto run = [&](InterpOptions opts) {
    Machine m(p, opts);
    EXPECT_TRUE(m.set_array("index", idx_data).is_ok());
    EXPECT_TRUE(m.set_array("w", w_data).is_ok());
    EXPECT_TRUE(m.call("scatter").is_ok());
    return m.array("out").value();
  };
  const auto serial = run({});
  const auto parallel = run(parallel_opts(4));
  for (int i = 0; i < 8; ++i) EXPECT_NEAR(serial[i], parallel[i], 1e-9);
}

TEST(ParallelInterp, CollapsedDoubleLoopMatchesSerial) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {60, 60});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, 59).foreach_("j", 0, 59);
  s.assign(a(idx("i"), idx("j")), idx("i") * 100 + idx("j"));
  const Program p = pb.build().value();
  const auto run = [&](InterpOptions opts) {
    Machine m(p, opts);
    EXPECT_TRUE(m.call("f").is_ok());
    return m.array("a").value();
  };
  EXPECT_EQ(run({}), run(parallel_opts(8)));
}

TEST(ParallelInterp, DynamicScheduleMatchesStatic) {
  const Program p = testing::saxpy_program();
  const auto run = [&](bool dynamic) {
    InterpOptions o;
    o.parallel = true;
    o.num_threads = 4;
    o.dynamic_schedule = dynamic;
    o.schedule_chunk = 2;
    Machine m(p, o);
    EXPECT_TRUE(m.set_scalar("a", 2.5).is_ok());
    EXPECT_TRUE(m.call("saxpy").is_ok());
    return m.array("y").value();
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(ParallelInterp, DynamicScheduleReductionWithinTolerance) {
  const Program p = testing::reduce_program();
  std::vector<double> x(16);
  for (int i = 0; i < 16; ++i) x[i] = 1.0 / (3.0 + i);
  InterpOptions o;
  o.parallel = true;
  o.num_threads = 4;
  o.dynamic_schedule = true;
  o.schedule_chunk = 3;
  Machine m(p, o);
  ASSERT_TRUE(m.set_array("x", x).is_ok());
  ASSERT_TRUE(m.call("reduce_sum").is_ok());
  double expect = 0.0;
  for (const double v : x) expect += v;
  EXPECT_NEAR(m.scalar("total").value(), expect, 1e-12);
}

TEST(ParallelInterp, CollapseDistributesFullIterationSpace) {
  // A 2x60 nest (the paper's complex-loop shape): with COLLAPSE the
  // interpreter distributes all 120 points, not just the 2 outer ones.
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {2, 60});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("h", 0, 1).foreach_("k", 0, 59);
  s.assign(a(idx("h"), idx("k")), idx("h") * 1000 + idx("k"));
  const Program p = pb.build().value();

  Machine serial(p);
  ASSERT_TRUE(serial.call("f").is_ok());
  Machine parallel(p, parallel_opts(8));
  ASSERT_TRUE(parallel.call("f").is_ok());
  EXPECT_EQ(serial.array("a").value(), parallel.array("a").value());
  EXPECT_EQ(parallel.stats().loop_iterations, 120u);
  EXPECT_EQ(parallel.stats().parallel_regions, 1u);
}

TEST(ParallelInterp, CollapseWithStridesMatchesSerial) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {10, 10});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, 9, 2).foreach_("j", 1, 9, 3);
  s.assign(a(idx("i"), idx("j")), idx("i") * 10 + idx("j"));
  const Program p = pb.build().value();
  Machine serial(p);
  ASSERT_TRUE(serial.call("f").is_ok());
  Machine parallel(p, parallel_opts(4));
  ASSERT_TRUE(parallel.call("f").is_ok());
  EXPECT_EQ(serial.array("a").value(), parallel.array("a").value());
}

TEST(ParallelInterp, ThreadCountsProduceSameResult) {
  const Program p = testing::reduce_program();
  std::vector<double> x(16, 0.125);
  double reference = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    Machine m(p, parallel_opts(threads));
    ASSERT_TRUE(m.set_array("x", x).is_ok());
    ASSERT_TRUE(m.call("reduce_sum").is_ok());
    const double total = m.scalar("total").value();
    if (threads == 1) {
      reference = total;
    } else {
      EXPECT_NEAR(total, reference, 1e-12) << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace glaf
