#include "interp/machine.hpp"

#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "testing/programs.hpp"

namespace glaf {
namespace {

TEST(Machine, SaxpyComputes) {
  Machine m(testing::saxpy_program());
  ASSERT_TRUE(m.set_scalar("a", 2.0).is_ok());
  ASSERT_TRUE(m.set_array("x", {1, 2, 3, 4, 5, 6, 7, 8}).is_ok());
  ASSERT_TRUE(m.set_array("y", {1, 1, 1, 1, 1, 1, 1, 1}).is_ok());
  ASSERT_TRUE(m.call("saxpy").is_ok());
  const auto y = m.array("y");
  ASSERT_TRUE(y.is_ok());
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(y.value()[static_cast<std::size_t>(i)],
                     2.0 * (i + 1) + 1.0);
  }
}

TEST(Machine, PrefixSerialSemantics) {
  Machine m(testing::prefix_program());
  ASSERT_TRUE(m.set_array("arr", {5, 0, 0, 0, 0, 0, 0, 0}).is_ok());
  ASSERT_TRUE(m.call("prefix").is_ok());
  const auto arr = m.array("arr").value();
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(arr[i], 5.0 + i);
}

TEST(Machine, ReductionSum) {
  Machine m(testing::reduce_program());
  std::vector<double> x(16);
  for (int i = 0; i < 16; ++i) x[i] = i + 1;
  ASSERT_TRUE(m.set_array("x", x).is_ok());
  ASSERT_TRUE(m.call("reduce_sum").is_ok());
  EXPECT_DOUBLE_EQ(m.scalar("total").value(), 136.0);
}

TEST(Machine, FunctionReturnValue) {
  ProgramBuilder pb("m");
  auto fb = pb.function("twice", DataType::kDouble);
  auto x = fb.param("x", DataType::kDouble);
  fb.step("s").ret(E(x) * 2.0);
  Machine m(pb.build().value());
  const auto r = m.call("twice", {3.5});
  ASSERT_TRUE(r.is_ok());
  EXPECT_DOUBLE_EQ(r.value(), 7.0);
}

TEST(Machine, EarlyReturnStopsExecution) {
  ProgramBuilder pb("m");
  auto g = pb.global("g", DataType::kDouble);
  auto fb = pb.function("f", DataType::kInt);
  auto s1 = fb.step("s1");
  s1.foreach_("i", 0, 99);
  s1.if_(idx("i") == 3, [&](BodyBuilder& b) { b.ret(idx("i")); });
  auto s2 = fb.step("s2");
  s2.assign(g(), 99.0);  // must not run
  Machine m(pb.build().value());
  const auto r = m.call("f");
  ASSERT_TRUE(r.is_ok());
  EXPECT_DOUBLE_EQ(r.value(), 3.0);
  EXPECT_DOUBLE_EQ(m.scalar("g").value(), 0.0);
}

TEST(Machine, NestedCallsByReference) {
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{4}}});
  auto buf = pb.global("buf", DataType::kDouble, {E(n)});
  auto inner = pb.function("fill");
  {
    auto v = inner.param("v", DataType::kDouble, {E(n)});
    auto s = inner.step("s");
    s.foreach_("i", 0, E(n) - 1);
    s.assign(v(idx("i")), idx("i") * 10);
  }
  auto outer = pb.function("driver");
  outer.step("s").call_sub("fill", {E(buf)});
  Machine m(pb.build().value());
  ASSERT_TRUE(m.call("driver").is_ok());
  const auto out = m.array("buf").value();
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[3], 30.0);
}

TEST(Machine, IntegerDivisionTruncates) {
  ProgramBuilder pb("m");
  auto i1 = pb.global("i1", DataType::kInt);
  auto i2 = pb.global("i2", DataType::kInt);
  auto out = pb.global("res", DataType::kInt);
  pb.function("f").step("s").assign(out(), E(i1) / E(i2));
  Machine m(pb.build().value());
  ASSERT_TRUE(m.set_scalar("i1", 7).is_ok());
  ASSERT_TRUE(m.set_scalar("i2", 2).is_ok());
  ASSERT_TRUE(m.call("f").is_ok());
  EXPECT_DOUBLE_EQ(m.scalar("res").value(), 3.0);
}

TEST(Machine, AssignToIntTruncates) {
  ProgramBuilder pb("m");
  auto out = pb.global("res", DataType::kInt);
  pb.function("f").step("s").assign(out(), 2.9);
  Machine m(pb.build().value());
  ASSERT_TRUE(m.call("f").is_ok());
  EXPECT_DOUBLE_EQ(m.scalar("res").value(), 2.0);
}

TEST(Machine, LibraryFunctions) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {4},
                     {.init = {1.0, 2.0, 3.0, 4.0}});
  auto r1 = pb.global("r1", DataType::kDouble);
  auto r2 = pb.global("r2", DataType::kDouble);
  auto r3 = pb.global("r3", DataType::kDouble);
  auto fb = pb.function("f");
  fb.step("s")
      .assign(r1(), call("SUM", {E(a)}))
      .assign(r2(), call("ABS", {lit(-2.5)}))
      .assign(r3(), call("MAX", {lit(1.0), lit(7.0), lit(3.0)}));
  Machine m(pb.build().value());
  ASSERT_TRUE(m.call("f").is_ok());
  EXPECT_DOUBLE_EQ(m.scalar("r1").value(), 10.0);
  EXPECT_DOUBLE_EQ(m.scalar("r2").value(), 2.5);
  EXPECT_DOUBLE_EQ(m.scalar("r3").value(), 7.0);
}

TEST(Machine, InitDataAppliedToGlobals) {
  ProgramBuilder pb("m");
  pb.global("tbl", DataType::kDouble, {3}, {.init = {1.5, 2.5, 3.5}});
  auto x = pb.global("x", DataType::kDouble);
  pb.function("noop").step("s").assign(x(), 0.0);
  Machine m(pb.build().value());
  const auto tbl = m.array("tbl").value();
  EXPECT_DOUBLE_EQ(tbl[1], 2.5);
}

TEST(Machine, SymbolicExtentsFromScalarGlobals) {
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{5}}});
  auto a = pb.global("a", DataType::kDouble, {E(n) * 2});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, E(n) * 2 - 1);
  s.assign(a(idx("i")), 1.0);
  Machine m(pb.build().value());
  ASSERT_TRUE(m.call("f").is_ok());
  EXPECT_EQ(m.array("a").value().size(), 10u);
}

TEST(Machine, OutOfBoundsSubscriptReported) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {4});
  auto k = pb.global("k", DataType::kInt);
  auto fb = pb.function("f");
  fb.step("s").assign(a(E(k)), 1.0);
  Machine m(pb.build().value());
  ASSERT_TRUE(m.set_scalar("k", 9).is_ok());
  const auto r = m.call("f");
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("out of range"), std::string::npos);
}

TEST(Machine, StructGridFieldsIndependent) {
  ProgramBuilder pb("m");
  auto pts = pb.global("pts", DataType::kDouble, {4},
                       {.fields = {{"px", DataType::kDouble},
                                   {"py", DataType::kDouble}}});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, 3);
  s.assign(pts.at_field("px", idx("i")), idx("i") * 1.0);
  s.assign(pts.at_field("py", idx("i")), idx("i") * -1.0);
  Machine m(pb.build().value());
  ASSERT_TRUE(m.call("f").is_ok());
  EXPECT_DOUBLE_EQ(m.array("pts", "px").value()[2], 2.0);
  EXPECT_DOUBLE_EQ(m.array("pts", "py").value()[2], -2.0);
}

TEST(Machine, SaveTemporariesReduceAllocations) {
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{8}}});
  auto a = pb.global("a", DataType::kDouble, {E(n)});
  auto callee = pb.function("work");
  {
    auto t = callee.local("t", DataType::kDouble, {E(n)});
    auto s = callee.step("s");
    s.foreach_("i", 0, E(n) - 1);
    s.assign(t(idx("i")), a(idx("i")));
    s.assign(a(idx("i")), t(idx("i")) + 1.0);
  }
  auto driver = pb.function("driver");
  {
    auto s = driver.step("s");
    s.foreach_("c", 0, 9);
    s.call_sub("work", {});
  }
  const Program p = pb.build().value();

  Machine realloc_m(p);
  ASSERT_TRUE(realloc_m.call("driver").is_ok());
  EXPECT_EQ(realloc_m.stats().local_allocations, 10u);

  InterpOptions opts;
  opts.save_temporaries = true;
  Machine saved_m(p, opts);
  ASSERT_TRUE(saved_m.call("driver").is_ok());
  EXPECT_EQ(saved_m.stats().local_allocations, 1u);
}

TEST(Machine, StatsCountIterationsAndCalls) {
  Machine m(testing::saxpy_program());
  ASSERT_TRUE(m.call("saxpy").is_ok());
  EXPECT_EQ(m.stats().loop_iterations, 8u);
  EXPECT_EQ(m.stats().function_calls, 1u);
  EXPECT_EQ(m.stats().steps_executed, 1u);
}

TEST(Machine, ErrorsForBadHostCalls) {
  Machine m(testing::saxpy_program());
  EXPECT_FALSE(m.call("missing").is_ok());
  EXPECT_FALSE(m.set_scalar("missing", 1.0).is_ok());
  EXPECT_FALSE(m.set_scalar("x", 1.0).is_ok());  // x is an array
  EXPECT_FALSE(m.set_array("x", {1.0}).is_ok()); // wrong length
  EXPECT_FALSE(m.array("missing").is_ok());
}

TEST(Machine, ConditionalBranching) {
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble);
  auto y = pb.global("y", DataType::kDouble);
  auto fb = pb.function("f");
  fb.step("s").if_(
      E(x) > 0.0, [&](BodyBuilder& b) { b.assign(y(), 1.0); },
      [&](BodyBuilder& b) { b.assign(y(), -1.0); });
  const Program p = pb.build().value();
  {
    Machine m(p);
    ASSERT_TRUE(m.set_scalar("x", 5.0).is_ok());
    ASSERT_TRUE(m.call("f").is_ok());
    EXPECT_DOUBLE_EQ(m.scalar("y").value(), 1.0);
  }
  {
    Machine m(p);
    ASSERT_TRUE(m.set_scalar("x", -5.0).is_ok());
    ASSERT_TRUE(m.call("f").is_ok());
    EXPECT_DOUBLE_EQ(m.scalar("y").value(), -1.0);
  }
}

TEST(Machine, StrideLoops) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {10});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, 9, 2);
  s.assign(a(idx("i")), 1.0);
  Machine m(pb.build().value());
  ASSERT_TRUE(m.call("f").is_ok());
  const auto a_out = m.array("a").value();
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a_out[i], i % 2 == 0 ? 1.0 : 0.0);
  }
}

}  // namespace
}  // namespace glaf
