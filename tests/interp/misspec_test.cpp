// Runtime misspeculation wall for policy v4. The plan VM's validation
// leg is forced to fail through the `interp.spec.validate` fault site:
// the speculative region must discard its scratch, re-run serially on
// untouched shared state (bit-identical to a serial machine), bump the
// misspeculation and demotion counters, and — the step being demoted —
// run the next call serially without spawning another validation.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/speculate.hpp"
#include "core/builder.hpp"
#include "interp/machine.hpp"
#include "support/fault.hpp"

namespace glaf {
namespace {

constexpr int kN = 64;

// Blocked-but-clean step: a(MOD(65*i, 64)) = w(i) + a(i)/2. The MOD
// write subscript defeats the static analysis, but 65 ≡ 1 (mod 64) so
// the "permutation" is the identity: the element-level profile is
// conflict-free AND per-rank [min,max] write bands stay contiguous and
// disjoint, so an unfaulted validation must commit.
Program spec_program() {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {kN});
  auto w = pb.global("w", DataType::kDouble, {kN});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, kN - 1);
  s.assign(a(call("MOD", {idx("i") * (kN + 1), E(kN)})),
           w(idx("i")) + a(idx("i")) * 0.5);
  return pb.build().value();
}

std::vector<double> inputs() {
  std::vector<double> v(kN);
  for (int i = 0; i < kN; ++i) v[i] = 1.0 / (3.0 + i);
  return v;
}

std::shared_ptr<const DepProfile> record_profile(const Program& p) {
  InterpOptions opts;
  opts.profile_deps = true;
  Machine m(p, opts);
  EXPECT_TRUE(m.set_array("w", inputs()).is_ok());
  EXPECT_TRUE(m.call("f").is_ok());
  return std::make_shared<const DepProfile>(m.dep_profile());
}

std::vector<double> serial_reference(const Program& p) {
  Machine m(p, {});
  EXPECT_TRUE(m.set_array("w", inputs()).is_ok());
  EXPECT_TRUE(m.call("f").is_ok());
  return m.array("a").value();
}

InterpOptions v4_opts(std::shared_ptr<const DepProfile> profile) {
  InterpOptions o;
  o.engine = ExecEngine::kPlan;
  o.parallel = true;
  o.num_threads = 4;
  o.deterministic_parallel = true;
  o.policy = DirectivePolicy::kV4;
  o.dep_profile = std::move(profile);
  return o;
}

class MisspecTest : public testing::Test {
 protected:
  void TearDown() override { fault::clear(); }
};

TEST_F(MisspecTest, ForcedMisspeculationIsBitIdenticalAndDemotes) {
  const Program p = spec_program();
  const std::vector<double> expect = serial_reference(p);

  // Arm the validator: every validation reports a conflict.
  ASSERT_TRUE(fault::configure("interp.spec.validate", 1).is_ok());

  Machine m(p, v4_opts(record_profile(p)));
  EXPECT_EQ(m.native_report().spec_promoted_steps, 1u);
  EXPECT_FALSE(m.native_report().spec_profile_rejected);
  ASSERT_TRUE(m.set_array("w", inputs()).is_ok());
  ASSERT_TRUE(m.call("f").is_ok());

  // The serial re-run must leave shared state exactly as a serial
  // machine would: scratch bands were discarded, not committed.
  const std::vector<double> got = m.array("a").value();
  ASSERT_EQ(got.size(), expect.size());
  for (int i = 0; i < kN; ++i) EXPECT_EQ(got[i], expect[i]) << "a[" << i << "]";

  EXPECT_EQ(m.stats().spec_regions, 1u);
  EXPECT_EQ(m.stats().spec_validations, 1u);
  EXPECT_EQ(m.stats().spec_misspeculations, 1u);
  EXPECT_EQ(m.native_report().spec_demoted_steps, 1u);

  // Second call: the step is demoted — it must run serially without
  // spawning another speculative region or validation.
  m.reset_stats();
  ASSERT_TRUE(m.call("f").is_ok());
  EXPECT_EQ(m.stats().spec_regions, 0u);
  EXPECT_EQ(m.stats().spec_validations, 0u);
  EXPECT_EQ(m.stats().spec_misspeculations, 0u);
  EXPECT_EQ(m.native_report().spec_demoted_steps, 1u);
}

TEST_F(MisspecTest, CleanSpeculationCommitsBitIdentical) {
  const Program p = spec_program();
  const std::vector<double> expect = serial_reference(p);

  Machine m(p, v4_opts(record_profile(p)));
  ASSERT_TRUE(m.set_array("w", inputs()).is_ok());
  ASSERT_TRUE(m.call("f").is_ok());

  const std::vector<double> got = m.array("a").value();
  for (int i = 0; i < kN; ++i) EXPECT_EQ(got[i], expect[i]) << "a[" << i << "]";

  EXPECT_EQ(m.stats().spec_regions, 1u);
  EXPECT_EQ(m.stats().spec_validations, 1u);
  EXPECT_EQ(m.stats().spec_misspeculations, 0u);
  EXPECT_EQ(m.native_report().spec_demoted_steps, 0u);
  // Committed speculative regions count as parallel regions too.
  EXPECT_EQ(m.stats().parallel_regions, 1u);
}

TEST_F(MisspecTest, WithoutProfileV4FallsBackToSerial) {
  // Policy v4 with no attached profile has nothing to promote: the
  // blocked step stays serial and no speculative machinery engages.
  const Program p = spec_program();
  Machine m(p, v4_opts(nullptr));
  EXPECT_EQ(m.native_report().spec_promoted_steps, 0u);
  ASSERT_TRUE(m.set_array("w", inputs()).is_ok());
  ASSERT_TRUE(m.call("f").is_ok());
  EXPECT_EQ(m.stats().spec_regions, 0u);
  const std::vector<double> expect = serial_reference(p);
  const std::vector<double> got = m.array("a").value();
  for (int i = 0; i < kN; ++i) EXPECT_EQ(got[i], expect[i]);
}

TEST_F(MisspecTest, StaleProfileIsRejectedNotApplied) {
  // A profile recorded against a different program must be rejected at
  // machine construction: report flag set, nothing promoted.
  const Program p = spec_program();
  auto stale = std::make_shared<DepProfile>(*record_profile(p));
  stale->program_hash ^= 1;
  Machine m(p, v4_opts(std::move(stale)));
  EXPECT_TRUE(m.native_report().spec_profile_rejected);
  EXPECT_EQ(m.native_report().spec_promoted_steps, 0u);
  ASSERT_TRUE(m.set_array("w", inputs()).is_ok());
  ASSERT_TRUE(m.call("f").is_ok());
  EXPECT_EQ(m.stats().spec_regions, 0u);
}

}  // namespace
}  // namespace glaf
