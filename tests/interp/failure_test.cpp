// Failure-injection tests for the interpreter: runtime errors must come
// back as Status (never crash or UB), and the machine must remain usable
// afterwards.

#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "interp/machine.hpp"
#include "testing/programs.hpp"

namespace glaf {
namespace {

TEST(InterpFailure, ZeroStrideLoopReported) {
  ProgramBuilder pb("m");
  auto stride = pb.global("stride", DataType::kInt);
  auto a = pb.global("a", DataType::kDouble, {8});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, 7, E(stride));
  s.assign(a(idx("i")), 1.0);
  Machine m(pb.build().value());
  ASSERT_TRUE(m.set_scalar("stride", 0).is_ok());
  const auto r = m.call("f");
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("stride"), std::string::npos);
  // Machine still usable with a fixed stride.
  ASSERT_TRUE(m.set_scalar("stride", 2).is_ok());
  EXPECT_TRUE(m.call("f").is_ok());
}

TEST(InterpFailure, NegativeSubscript) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {4});
  auto k = pb.global("k", DataType::kInt);
  pb.function("f").step("s").assign(a(E(k)), 1.0);
  Machine m(pb.build().value());
  ASSERT_TRUE(m.set_scalar("k", -1).is_ok());
  const auto r = m.call("f");
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("out of range"), std::string::npos);
}

TEST(InterpFailure, NonPositiveRuntimeExtent) {
  // Extent depends on a parameter; a bad value must be a clean error.
  ProgramBuilder pb("m");
  auto fb = pb.function("f");
  auto n = fb.param("n", DataType::kInt);
  auto t = fb.local("t", DataType::kDouble, {E(n)});
  auto s = fb.step("s");
  s.foreach_("i", 0, E(n) - 1);
  s.assign(t(idx("i")), 0.0);
  Machine m(pb.build().value());
  const auto r = m.call("f", {0.0});
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("extent"), std::string::npos);
  EXPECT_TRUE(m.call("f", {4.0}).is_ok());
}

TEST(InterpFailure, IntegerDivisionByZero) {
  ProgramBuilder pb("m");
  auto num = pb.global("num", DataType::kInt);
  auto den = pb.global("den", DataType::kInt);
  auto out = pb.global("res", DataType::kInt);
  pb.function("f").step("s").assign(out(), E(num) / E(den));
  Machine m(pb.build().value());
  ASSERT_TRUE(m.set_scalar("num", 4).is_ok());
  const auto r = m.call("f");
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("division by zero"),
            std::string::npos);
}

TEST(InterpFailure, WrongArgumentCount) {
  Machine m(testing::saxpy_program());
  const auto r = m.call("saxpy", {1.0});
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("expects 0 arguments"),
            std::string::npos);
}

TEST(InterpFailure, UnknownGlobalInCallArg) {
  ProgramBuilder pb("m");
  auto fb = pb.function("f");
  auto x = fb.param("x", DataType::kDouble);
  fb.step("s").assign(x(), 1.0);
  Machine m(pb.build().value());
  const auto r = m.call("f", {std::string("no_such_grid")});
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(InterpFailure, ErrorsInsideParallelRegionPropagate) {
  // An out-of-range access inside a parallel step must surface as Status.
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{64}}});
  auto index = pb.global("index", DataType::kInt, {E(n)});
  auto out = pb.global("res", DataType::kDouble, {E(n)});
  auto w = pb.global("w", DataType::kDouble, {E(n)});
  auto fb = pb.function("scatter");
  auto s = fb.step("s");
  s.foreach_("i", 0, E(n) - 1);
  s.assign(out(index(idx("i"))), out(index(idx("i"))) + w(idx("i")));
  InterpOptions opts;
  opts.parallel = true;
  opts.num_threads = 4;
  Machine m(pb.build().value(), opts);
  std::vector<double> bad_index(64, 9999.0);  // all out of range
  ASSERT_TRUE(m.set_array("index", bad_index).is_ok());
  const auto r = m.call("scatter");
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("out of range"), std::string::npos);
  // Machine survives and works with fixed indices.
  ASSERT_TRUE(m.set_array("index", std::vector<double>(64, 0.0)).is_ok());
  EXPECT_TRUE(m.call("scatter").is_ok());
}

TEST(InterpFailure, StatusToString) {
  EXPECT_EQ(Status::ok().to_string(), "OK");
  EXPECT_EQ(not_found("x").to_string(), "NOT_FOUND: x");
  EXPECT_STREQ(to_string(StatusCode::kFailedPrecondition),
               "FAILED_PRECONDITION");
}

}  // namespace
}  // namespace glaf
