// Plan-engine tests: (a) lowering unit tests against the compiled
// FunctionPlans (index-slot resolution, affine/dynamic subscript
// classification, constant folding of loop bounds), and (b) differential
// tests asserting the plan VM is bit-identical to the tree-walk reference
// on the semantics most likely to drift: integer DIV/MOD truncation, NaN
// propagation through MIN/MAX, INTEGER-store truncation, stats and trace.

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "analysis/parallelize.hpp"
#include "core/builder.hpp"
#include "interp/machine.hpp"
#include "interp/plan.hpp"
#include "testing/programs.hpp"

namespace glaf {
namespace {

interp::ProgramPlan plans_of(const Program& p) {
  return interp::compile_plans(p, analyze_program(p), {});
}

FunctionId fn_id(const Program& p, const std::string& name) {
  const Function* fn = p.find_function(name);
  EXPECT_NE(fn, nullptr) << name;
  return fn == nullptr ? FunctionId{} : fn->id;
}

// ---- lowering --------------------------------------------------------------

TEST(PlanLowering, SaxpyResolvesIndexSlotsAndAffineDims) {
  const Program p = testing::saxpy_program();
  const interp::ProgramPlan plans = plans_of(p);
  const interp::FunctionPlan& fp = plans.functions[fn_id(p, "saxpy")];
  ASSERT_EQ(fp.steps.size(), 1u);
  const interp::StepPlan& sp = fp.steps[0];
  ASSERT_EQ(sp.loops.size(), 1u);
  EXPECT_EQ(sp.loops[0].idx_slot, 0);
  EXPECT_EQ(fp.num_idx, 1);
  // The constant lower bound folds: no instructions to execute.
  EXPECT_TRUE(sp.loops[0].begin.is_const);
  EXPECT_DOUBLE_EQ(sp.loops[0].begin.const_value, 0.0);
  // The upper bound reads the scalar n: not a constant program.
  EXPECT_FALSE(sp.loops[0].end.is_const);
  // Every access in the body (x[i], y[i] read, y[i] write) is a pure
  // affine function of the loop slot: one multiply-add at run time.
  ASSERT_FALSE(fp.accesses.empty());
  for (const interp::AccessPlan& ap : fp.accesses) {
    if (ap.dims.empty()) continue;  // scalar access (a)
    ASSERT_EQ(ap.dims.size(), 1u);
    EXPECT_EQ(ap.dims[0].kind, interp::DimPlan::Kind::kAffine);
    EXPECT_EQ(ap.dims[0].slot, 0);
    EXPECT_EQ(ap.dims[0].coeff, 1);
    EXPECT_EQ(ap.dims[0].constant, 0);
  }
}

TEST(PlanLowering, StridedAndDynamicSubscriptsClassify) {
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{8}}});
  auto a = pb.global("a", DataType::kDouble, {E(n), E(n)});
  auto look = pb.global("look", DataType::kInt, {E(n)});
  auto out = pb.global("out", DataType::kDouble, {E(n)});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, 2).foreach_("j", 0, 7);
  // a(2*i + 1, j): affine with coefficient 2, addend 1.
  s.assign(a(2 * idx("i") + 1, idx("j")), idx("j"));
  // out(look(j)): a dynamic (gather) subscript.
  s.assign(out(look(idx("j"))), idx("j"));
  const Program p = pb.build().value();
  const interp::ProgramPlan plans = plans_of(p);
  const interp::FunctionPlan& fp = plans.functions[fn_id(p, "f")];
  EXPECT_EQ(fp.num_idx, 2);

  bool saw_strided = false;
  bool saw_dynamic = false;
  for (const interp::AccessPlan& ap : fp.accesses) {
    if (ap.dims.size() == 2) {
      saw_strided = true;
      EXPECT_EQ(ap.dims[0].kind, interp::DimPlan::Kind::kAffine);
      EXPECT_EQ(ap.dims[0].coeff, 2);
      EXPECT_EQ(ap.dims[0].constant, 1);
      EXPECT_EQ(ap.dims[0].slot, 0);
      EXPECT_EQ(ap.dims[1].kind, interp::DimPlan::Kind::kAffine);
      EXPECT_EQ(ap.dims[1].slot, 1);
    }
    if (ap.dims.size() == 1 &&
        ap.dims[0].kind == interp::DimPlan::Kind::kDyn) {
      saw_dynamic = true;
    }
  }
  EXPECT_TRUE(saw_strided);
  EXPECT_TRUE(saw_dynamic);
}

TEST(PlanLowering, LiteralArithmeticBoundsFold) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {E(8)});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", E(2.0) + 3.0, E(14.0) / 2.0);
  s.assign(a(idx("i")), 1.0);
  const Program p = pb.build().value();
  const interp::ProgramPlan plans = plans_of(p);
  const interp::StepPlan& sp = plans.functions[fn_id(p, "f")].steps[0];
  ASSERT_TRUE(sp.loops[0].begin.is_const);
  EXPECT_DOUBLE_EQ(sp.loops[0].begin.const_value, 5.0);
  ASSERT_TRUE(sp.loops[0].end.is_const);
  EXPECT_DOUBLE_EQ(sp.loops[0].end.const_value, 7.0);
}

// ---- bit-identical semantics ----------------------------------------------

InterpOptions with_engine(ExecEngine e) {
  InterpOptions o;
  o.engine = e;
  return o;
}

void expect_bit_equal(double a, double b, const std::string& what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << ": treewalk " << a << " vs plan " << b;
}

TEST(PlanVsTreeWalk, IntegerDivisionTruncates) {
  ProgramBuilder pb("m");
  auto ia = pb.global("ia", DataType::kInt);
  auto ib = pb.global("ib", DataType::kInt);
  auto q = pb.global("q", DataType::kInt);
  auto fb = pb.function("f");
  fb.step("s").assign(q(), E(ia) / E(ib));
  const Program p = pb.build().value();

  const double cases[][3] = {
      {-7, 2, -3}, {7, -2, -3}, {-7, -2, 3}, {7, 2, 3}, {1, 3, 0}};
  for (const auto& c : cases) {
    Machine tw(p, with_engine(ExecEngine::kTreeWalk));
    Machine pl(p, with_engine(ExecEngine::kPlan));
    for (Machine* m : {&tw, &pl}) {
      ASSERT_TRUE(m->set_scalar("ia", c[0]).is_ok());
      ASSERT_TRUE(m->set_scalar("ib", c[1]).is_ok());
      ASSERT_TRUE(m->call("f").is_ok());
    }
    EXPECT_DOUBLE_EQ(tw.scalar("q").value(), c[2]);
    expect_bit_equal(tw.scalar("q").value(), pl.scalar("q").value(), "q");
  }
}

TEST(PlanVsTreeWalk, IntegerDivisionByZeroFailsIdentically) {
  ProgramBuilder pb("m");
  auto ia = pb.global("ia", DataType::kInt, {}, {.init = {std::int64_t{1}}});
  auto ib = pb.global("ib", DataType::kInt);
  auto q = pb.global("q", DataType::kInt);
  auto fb = pb.function("f");
  fb.step("s").assign(q(), E(ia) / E(ib));
  const Program p = pb.build().value();

  Machine tw(p, with_engine(ExecEngine::kTreeWalk));
  Machine pl(p, with_engine(ExecEngine::kPlan));
  const auto r_tw = tw.call("f");
  const auto r_pl = pl.call("f");
  ASSERT_FALSE(r_tw.is_ok());
  ASSERT_FALSE(r_pl.is_ok());
  EXPECT_EQ(r_tw.status().message(), r_pl.status().message());
  EXPECT_NE(r_pl.status().message().find("integer division by zero"),
            std::string::npos);
}

TEST(PlanVsTreeWalk, ModIsFmodOnNegatives) {
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble);
  auto y = pb.global("y", DataType::kDouble);
  auto r = pb.global("r", DataType::kDouble);
  auto fb = pb.function("f");
  fb.step("s").assign(r(), call("MOD", {E(x), E(y)}));
  const Program p = pb.build().value();

  const double cases[][2] = {{-7, 3}, {7, -3}, {-7.5, 2.5}, {8.25, 3.5}};
  for (const auto& c : cases) {
    Machine tw(p, with_engine(ExecEngine::kTreeWalk));
    Machine pl(p, with_engine(ExecEngine::kPlan));
    for (Machine* m : {&tw, &pl}) {
      ASSERT_TRUE(m->set_scalar("x", c[0]).is_ok());
      ASSERT_TRUE(m->set_scalar("y", c[1]).is_ok());
      ASSERT_TRUE(m->call("f").is_ok());
    }
    EXPECT_DOUBLE_EQ(tw.scalar("r").value(), std::fmod(c[0], c[1]));
    expect_bit_equal(tw.scalar("r").value(), pl.scalar("r").value(), "r");
  }
}

TEST(PlanVsTreeWalk, NanThroughMinMaxIsBitIdentical) {
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble);
  auto lo = pb.global("lo", DataType::kDouble);
  auto hi = pb.global("hi", DataType::kDouble);
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.assign(lo(), call("MIN", {E(x), E(1.0)}));
  s.assign(hi(), call("MAX", {E(1.0), E(x)}));
  const Program p = pb.build().value();

  const double nan = std::numeric_limits<double>::quiet_NaN();
  Machine tw(p, with_engine(ExecEngine::kTreeWalk));
  Machine pl(p, with_engine(ExecEngine::kPlan));
  for (Machine* m : {&tw, &pl}) {
    ASSERT_TRUE(m->set_scalar("x", nan).is_ok());
    ASSERT_TRUE(m->call("f").is_ok());
  }
  // Whatever the library's NaN policy is, both engines must share it bit
  // for bit (the plan pre-binds the same evaluator pointer).
  expect_bit_equal(tw.scalar("lo").value(), pl.scalar("lo").value(), "lo");
  expect_bit_equal(tw.scalar("hi").value(), pl.scalar("hi").value(), "hi");
}

TEST(PlanVsTreeWalk, IntegerStoreTruncates) {
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble);
  auto k = pb.global("k", DataType::kInt);
  auto fb = pb.function("f");
  fb.step("s").assign(k(), E(x) * 1.0);
  const Program p = pb.build().value();

  for (const double v : {2.75, -2.75, 0.5, -0.5}) {
    Machine tw(p, with_engine(ExecEngine::kTreeWalk));
    Machine pl(p, with_engine(ExecEngine::kPlan));
    for (Machine* m : {&tw, &pl}) {
      ASSERT_TRUE(m->set_scalar("x", v).is_ok());
      ASSERT_TRUE(m->call("f").is_ok());
    }
    EXPECT_DOUBLE_EQ(tw.scalar("k").value(), std::trunc(v));
    expect_bit_equal(tw.scalar("k").value(), pl.scalar("k").value(), "k");
  }
}

TEST(PlanVsTreeWalk, StatsAndTraceIdentical) {
  const Program p = testing::saxpy_program();
  InterpOptions tw_opts = with_engine(ExecEngine::kTreeWalk);
  InterpOptions pl_opts = with_engine(ExecEngine::kPlan);
  tw_opts.trace = pl_opts.trace = true;
  Machine tw(p, tw_opts);
  Machine pl(p, pl_opts);
  for (Machine* m : {&tw, &pl}) {
    ASSERT_TRUE(m->set_scalar("a", 2.0).is_ok());
    ASSERT_TRUE(m->call("saxpy").is_ok());
  }
  EXPECT_EQ(tw.stats().steps_executed, pl.stats().steps_executed);
  EXPECT_EQ(tw.stats().loop_iterations, pl.stats().loop_iterations);
  EXPECT_EQ(tw.stats().local_allocations, pl.stats().local_allocations);
  EXPECT_EQ(tw.stats().parallel_regions, pl.stats().parallel_regions);
  EXPECT_EQ(tw.stats().function_calls, pl.stats().function_calls);
  ASSERT_EQ(tw.trace().size(), pl.trace().size());
  for (std::size_t i = 0; i < tw.trace().size(); ++i) {
    EXPECT_EQ(tw.trace()[i].function, pl.trace()[i].function);
    EXPECT_EQ(tw.trace()[i].step, pl.trace()[i].step);
    EXPECT_EQ(tw.trace()[i].iterations, pl.trace()[i].iterations);
    EXPECT_EQ(tw.trace()[i].parallel, pl.trace()[i].parallel);
  }
}

TEST(PlanVsTreeWalk, ParallelCollapseBandBitIdentical) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {E(12), E(10)});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, 11).foreach_("j", 0, 9);
  s.assign(a(idx("i"), idx("j")),
           idx("i") * 100.0 + idx("j") + call("SQRT", {idx("i") + 1.0}));
  const Program p = pb.build().value();

  for (const bool dynamic : {false, true}) {
    InterpOptions tw_opts = with_engine(ExecEngine::kTreeWalk);
    InterpOptions pl_opts = with_engine(ExecEngine::kPlan);
    for (InterpOptions* o : {&tw_opts, &pl_opts}) {
      o->parallel = true;
      o->num_threads = 3;
      o->policy = DirectivePolicy::kV0;
      o->dynamic_schedule = dynamic;
    }
    Machine tw(p, tw_opts);
    Machine pl(p, pl_opts);
    ASSERT_TRUE(tw.call("f").is_ok());
    ASSERT_TRUE(pl.call("f").is_ok());
    EXPECT_GE(pl.stats().parallel_regions, 1u);
    const auto va = tw.array("a").value();
    const auto vb = pl.array("a").value();
    ASSERT_EQ(va.size(), vb.size());
    for (std::size_t i = 0; i < va.size(); ++i) {
      expect_bit_equal(va[i], vb[i], "a[" + std::to_string(i) + "]");
    }
  }
}

TEST(PlanVsTreeWalk, GatherScatterBitIdentical) {
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{8}}});
  auto look = pb.global("look", DataType::kInt, {E(n)});
  auto w = pb.global("w", DataType::kDouble, {E(n)});
  auto out = pb.global("out", DataType::kDouble, {E(n)});
  auto fb = pb.function("scatter");
  auto s = fb.step("s");
  s.foreach_("i", 0, E(n) - 1);
  s.assign(out(look(idx("i"))), out(look(idx("i"))) + w(idx("i")));
  const Program p = pb.build().value();

  Machine tw(p, with_engine(ExecEngine::kTreeWalk));
  Machine pl(p, with_engine(ExecEngine::kPlan));
  for (Machine* m : {&tw, &pl}) {
    ASSERT_TRUE(m->set_array("look", {3, 1, 4, 1, 5, 2, 6, 0}).is_ok());
    ASSERT_TRUE(m->set_array("w", {.5, .25, 1, 2, 4, 8, 16, 32}).is_ok());
    ASSERT_TRUE(m->call("scatter").is_ok());
  }
  const auto va = tw.array("out").value();
  const auto vb = pl.array("out").value();
  for (std::size_t i = 0; i < va.size(); ++i) {
    expect_bit_equal(va[i], vb[i], "out[" + std::to_string(i) + "]");
  }
}

}  // namespace
}  // namespace glaf
