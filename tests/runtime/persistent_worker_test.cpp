// Persistent-worker tests for the spin-then-park thread pool. The pool
// spawns its workers once; between dispatches they spin briefly on the
// job generation counter and park on a condition variable when the spin
// budget runs out. These tests pin down the lifecycle invariants the
// fused-region dispatch path depends on (and run under TSan in CI via
// the `jit` label):
//
//  - worker identity is stable: a long burst of dispatches reuses the
//    same ranks, never spawning or losing a worker;
//  - the park/wake handshake cannot deadlock: dispatches that arrive
//    while workers spin AND dispatches that arrive long after every
//    worker parked both complete;
//  - exceptions keep propagating, and the pool stays usable afterwards.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/thread_pool.hpp"

namespace glaf {
namespace {

constexpr int kDispatches = 100;

TEST(PersistentWorkers, StableRankSetAcrossManyDispatches) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.size(), 4);
  std::mutex mu;
  std::set<std::thread::id> worker_ids;
  std::vector<std::int64_t> sums(static_cast<std::size_t>(kDispatches), 0);
  for (int d = 0; d < kDispatches; ++d) {
    std::atomic<std::int64_t> sum{0};
    pool.parallel_for(1000, [&](int rank, std::int64_t begin,
                                std::int64_t end) {
      ASSERT_GE(rank, 0);
      ASSERT_LT(rank, pool.size());
      std::int64_t local = 0;
      for (std::int64_t i = begin; i < end; ++i) local += i;
      sum.fetch_add(local, std::memory_order_relaxed);
      if (rank != 0) {
        const std::lock_guard<std::mutex> lock(mu);
        worker_ids.insert(std::this_thread::get_id());
      }
    });
    sums[static_cast<std::size_t>(d)] = sum.load();
  }
  for (const std::int64_t s : sums) EXPECT_EQ(s, 999 * 1000 / 2);
  // Workers are persistent: across 100 dispatches only the three
  // constructor-spawned threads ever ran a non-zero rank.
  EXPECT_LE(worker_ids.size(), 3u);
  EXPECT_GE(worker_ids.size(), 1u);
  EXPECT_EQ(pool.dispatches(), static_cast<std::uint64_t>(kDispatches));
}

TEST(PersistentWorkers, BackToBackDispatchesStayOnTheSpinPath) {
  ThreadPool pool(4);
  // Drive a hot burst with no idle gaps. Absolute park counts depend on
  // scheduling, so assert only the invariant: the pool completes every
  // dispatch and never needs more wakeups than dispatches * workers.
  std::atomic<std::int64_t> total{0};
  for (int d = 0; d < kDispatches; ++d) {
    pool.parallel_for(64, [&](int, std::int64_t begin, std::int64_t end) {
      total.fetch_add(end - begin, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 64 * kDispatches);
  EXPECT_LE(pool.parks(),
            static_cast<std::uint64_t>(kDispatches + 1) * 3u);
}

TEST(PersistentWorkers, WakesParkedWorkersWithoutDeadlock) {
  ThreadPool pool(4);
  pool.parallel_for(16, [](int, std::int64_t, std::int64_t) {});
  // Let every worker exhaust its spin budget and park (the budget is
  // thousands of relaxed loads — microseconds; poll rather than guess).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (pool.parks() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(pool.parks(), 3u) << "workers never parked";
  // A dispatch against a fully parked pool must wake all of them.
  std::atomic<int> ranks_seen{0};
  pool.parallel_for(4, [&](int, std::int64_t begin, std::int64_t end) {
    ranks_seen.fetch_add(static_cast<int>(end - begin),
                         std::memory_order_relaxed);
  });
  EXPECT_EQ(ranks_seen.load(), 4);
  // And the park/wake cycle is repeatable.
  for (int round = 0; round < 3; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::atomic<std::int64_t> n{0};
    pool.parallel_for(100, [&](int, std::int64_t begin, std::int64_t end) {
      n.fetch_add(end - begin, std::memory_order_relaxed);
    });
    EXPECT_EQ(n.load(), 100) << round;
  }
}

TEST(PersistentWorkers, ExceptionsPropagateAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [](int, std::int64_t begin, std::int64_t) {
                          if (begin == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The failed dispatch must not wedge the generation/pending protocol.
  for (int d = 0; d < 10; ++d) {
    std::atomic<std::int64_t> n{0};
    pool.parallel_for(32, [&](int, std::int64_t begin, std::int64_t end) {
      n.fetch_add(end - begin, std::memory_order_relaxed);
    });
    EXPECT_EQ(n.load(), 32) << d;
  }
}

TEST(PersistentWorkers, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::int64_t sum = 0;
  pool.parallel_for(10, [&](int rank, std::int64_t begin, std::int64_t end) {
    EXPECT_EQ(rank, 0);
    for (std::int64_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 45);
  // Inline execution bypasses the dispatch protocol entirely.
  EXPECT_EQ(pool.dispatches(), 0u);
  EXPECT_EQ(pool.parks(), 0u);
}

TEST(PersistentWorkers, DynamicScheduleDrainsEverything) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(200);
  for (auto& h : hits) h.store(0);
  pool.parallel_for_dynamic(200, 7, [&](int, std::int64_t begin,
                                        std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(
          1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(PersistentWorkers, ConcurrentCallersFromDifferentPoolsDoNotInterfere) {
  // Two pools side by side: each keeps its own generation protocol.
  ThreadPool a(2);
  ThreadPool b(3);
  std::atomic<std::int64_t> total_a{0};
  std::atomic<std::int64_t> total_b{0};
  std::thread ta([&] {
    for (int d = 0; d < 50; ++d) {
      a.parallel_for(128, [&](int, std::int64_t begin, std::int64_t end) {
        total_a.fetch_add(end - begin, std::memory_order_relaxed);
      });
    }
  });
  std::thread tb([&] {
    for (int d = 0; d < 50; ++d) {
      b.parallel_for(128, [&](int, std::int64_t begin, std::int64_t end) {
        total_b.fetch_add(end - begin, std::memory_order_relaxed);
      });
    }
  });
  ta.join();
  tb.join();
  EXPECT_EQ(total_a.load(), 128 * 50);
  EXPECT_EQ(total_b.load(), 128 * 50);
}

}  // namespace
}  // namespace glaf
