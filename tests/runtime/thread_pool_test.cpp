#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace glaf {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](int, std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::int64_t sum = 0;
  pool.parallel_for(100, [&](int, std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](int, std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, FewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(3, [&](int, std::int64_t b, std::int64_t e) {
    count.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, RanksAreDistinctAndBounded) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> rank_hits(4);
  pool.parallel_for(4000, [&](int rank, std::int64_t, std::int64_t) {
    ASSERT_GE(rank, 0);
    ASSERT_LT(rank, 4);
    rank_hits[rank].fetch_add(1);
  });
  int total = 0;
  for (auto& h : rank_hits) total += h.load();
  EXPECT_EQ(total, 4);  // one chunk per rank
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](int, std::int64_t b, std::int64_t) {
                          if (b == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Pool must remain usable after an exception.
  std::atomic<int> ok{0};
  pool.parallel_for(10, [&](int, std::int64_t b, std::int64_t e) {
    ok.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, ReductionViaPerThreadPartials) {
  ThreadPool pool(4);
  constexpr std::int64_t kN = 100000;
  std::vector<double> partial(4, 0.0);
  pool.parallel_for(kN, [&](int rank, std::int64_t b, std::int64_t e) {
    double s = 0.0;
    for (std::int64_t i = b; i < e; ++i) s += static_cast<double>(i);
    partial[static_cast<std::size_t>(rank)] += s;
  });
  const double total = std::accumulate(partial.begin(), partial.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, static_cast<double>(kN) * (kN - 1) / 2.0);
}

TEST(ThreadPool, ManySequentialRegions) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(64, [&](int, std::int64_t b, std::int64_t e) {
      total.fetch_add(e - b);
    });
  }
  EXPECT_EQ(total.load(), 200 * 64);
}

TEST(ThreadPoolDynamic, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::int64_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for_dynamic(kN, 7, [&](int, std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolDynamic, ChunkSizesRespected) {
  ThreadPool pool(2);
  std::vector<std::int64_t> sizes;
  std::mutex m;
  pool.parallel_for_dynamic(100, 8, [&](int, std::int64_t b, std::int64_t e) {
    const std::lock_guard<std::mutex> lock(m);
    sizes.push_back(e - b);
  });
  std::int64_t total = 0;
  for (const std::int64_t s : sizes) {
    EXPECT_LE(s, 8);
    EXPECT_GE(s, 1);
    total += s;
  }
  EXPECT_EQ(total, 100);
}

TEST(ThreadPoolDynamic, DegenerateChunkClamped) {
  ThreadPool pool(2);
  std::atomic<std::int64_t> total{0};
  pool.parallel_for_dynamic(10, 0, [&](int, std::int64_t b, std::int64_t e) {
    total.fetch_add(e - b);
  });
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPoolDynamic, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for_dynamic(0, 4,
                            [&](int, std::int64_t, std::int64_t) {
                              called = true;
                            });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolDynamic, ReductionViaPartialsMatchesStatic) {
  ThreadPool pool(4);
  constexpr std::int64_t kN = 20000;
  std::atomic<std::int64_t> dynamic_sum{0};
  pool.parallel_for_dynamic(kN, 16, [&](int, std::int64_t b, std::int64_t e) {
    std::int64_t local = 0;
    for (std::int64_t i = b; i < e; ++i) local += i;
    dynamic_sum.fetch_add(local);
  });
  EXPECT_EQ(dynamic_sum.load(), kN * (kN - 1) / 2);
}

TEST(ThreadPool, SharedPoolSingleton) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1);
}

}  // namespace
}  // namespace glaf
