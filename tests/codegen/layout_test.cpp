// Data-layout option of the code-optimization back-end: struct grids can
// be generated as array-of-structures (derived TYPE arrays / C structs)
// or structure-of-arrays (one array per field).

#include <gtest/gtest.h>

#include "codegen/c.hpp"
#include "codegen/fortran.hpp"
#include "core/builder.hpp"

namespace glaf {
namespace {

Program struct_program() {
  ProgramBuilder pb("pm");
  auto atoms = pb.global("atoms", DataType::kDouble, {16},
                         {.fields = {{"q", DataType::kDouble},
                                     {"x", DataType::kDouble}}});
  auto out = pb.global("pot", DataType::kDouble, {16});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, 15);
  s.assign(out(idx("i")),
           atoms.at_field("q", idx("i")) * atoms.at_field("x", idx("i")));
  return pb.build().value();
}

std::string gen_fortran(bool soa) {
  const Program p = struct_program();
  CodegenOptions opts;
  opts.soa_layout = soa;
  return generate_fortran(p, analyze_program(p), opts).source;
}

std::string gen_c(bool soa) {
  const Program p = struct_program();
  CodegenOptions opts;
  opts.language = Language::kC;
  opts.soa_layout = soa;
  return generate_c(p, analyze_program(p), opts).source;
}

TEST(Layout, FortranAosUsesDerivedType) {
  const std::string src = gen_fortran(/*soa=*/false);
  EXPECT_NE(src.find("TYPE :: atoms_t"), std::string::npos);
  EXPECT_NE(src.find("TYPE(atoms_t) :: atoms(0:15)"), std::string::npos);
  EXPECT_NE(src.find("atoms(i)%q"), std::string::npos);
}

TEST(Layout, FortranSoaUsesPerFieldArrays) {
  const std::string src = gen_fortran(/*soa=*/true);
  EXPECT_EQ(src.find("TYPE :: atoms_t"), std::string::npos);
  EXPECT_NE(src.find(":: atoms_q(0:15)"), std::string::npos);
  EXPECT_NE(src.find(":: atoms_x(0:15)"), std::string::npos);
  EXPECT_NE(src.find("atoms_q(i)"), std::string::npos);
}

TEST(Layout, CAosUsesStruct) {
  const std::string src = gen_c(/*soa=*/false);
  EXPECT_NE(src.find("typedef struct atoms_s"), std::string::npos);
  EXPECT_NE(src.find("atoms[(i)].q"), std::string::npos);
}

TEST(Layout, CSoaUsesPerFieldArrays) {
  const std::string src = gen_c(/*soa=*/true);
  EXPECT_EQ(src.find("typedef struct"), std::string::npos);
  EXPECT_NE(src.find("static double atoms_q[16];"), std::string::npos);
  EXPECT_NE(src.find("atoms_q[(i)]"), std::string::npos);
}

TEST(Layout, BothLayoutsKeepOmpDirective) {
  EXPECT_NE(gen_fortran(false).find("!$OMP PARALLEL DO"), std::string::npos);
  EXPECT_NE(gen_fortran(true).find("!$OMP PARALLEL DO"), std::string::npos);
}

}  // namespace
}  // namespace glaf
