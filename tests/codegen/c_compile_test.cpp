// End-to-end validation of the C back-end: the generated translation
// units are COMPILED with the system C compiler (with -fopenmp, so the
// emitted pragmas must be syntactically valid OpenMP) and EXECUTED, and
// their outputs compared with the interpreter's results for the same
// programs. This is the strongest possible check that generated code is
// real code, not plausible-looking text.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "codegen/c.hpp"
#include "core/builder.hpp"
#include "interp/machine.hpp"
#include "testing/programs.hpp"

namespace glaf {
namespace {

bool have_cc() { return std::system("cc --version > /dev/null 2>&1") == 0; }

/// Compile `source` + run the binary; return its stdout (or nullopt).
std::optional<std::string> compile_and_run(const std::string& source,
                                           const std::string& tag) {
  const std::string dir = ::testing::TempDir();
  const std::string c_path = dir + "/glaf_gen_" + tag + ".c";
  const std::string bin_path = dir + "/glaf_gen_" + tag;
  {
    std::ofstream out(c_path);
    out << source;
  }
  const std::string compile =
      "cc -O1 -fopenmp -o " + bin_path + " " + c_path +
      " -lm > /dev/null 2>&1";
  if (std::system(compile.c_str()) != 0) return std::nullopt;
  FILE* pipe = ::popen((bin_path + " 2>/dev/null").c_str(), "r");
  if (pipe == nullptr) return std::nullopt;
  std::string output;
  char buf[256];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) output += buf;
  const int rc = ::pclose(pipe);
  if (rc != 0) return std::nullopt;
  return output;
}

std::vector<double> parse_numbers(const std::string& text) {
  std::vector<double> out;
  std::istringstream in(text);
  double v = 0.0;
  while (in >> v) out.push_back(v);
  return out;
}

TEST(CCompile, SaxpyMatchesInterpreter) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";
  const Program p = testing::saxpy_program();
  const ProgramAnalysis analysis = analyze_program(p);
  CodegenOptions opts;
  opts.language = Language::kC;
  std::string source = generate_c(p, analysis, opts).source;
  // Harness main: set inputs, run, print results (globals are static in
  // the generated TU, so the driver lives in the same file).
  source +=
      "\n#include <stdio.h>\n"
      "int main(void) {\n"
      "  a = 2.0;\n"
      "  for (int i = 0; i < 8; ++i) { x[i] = i + 1; y[i] = 1.0; }\n"
      "  saxpy();\n"
      "  for (int i = 0; i < 8; ++i) printf(\"%.17g\\n\", y[i]);\n"
      "  return 0;\n"
      "}\n";
  const auto output = compile_and_run(source, "saxpy");
  ASSERT_TRUE(output.has_value()) << "compilation or execution failed";
  const std::vector<double> got = parse_numbers(*output);
  ASSERT_EQ(got.size(), 8u);

  Machine m(p);
  ASSERT_TRUE(m.set_scalar("a", 2.0).is_ok());
  std::vector<double> x(8);
  std::vector<double> y(8, 1.0);
  for (int i = 0; i < 8; ++i) x[i] = i + 1;
  ASSERT_TRUE(m.set_array("x", x).is_ok());
  ASSERT_TRUE(m.set_array("y", y).is_ok());
  ASSERT_TRUE(m.call("saxpy").is_ok());
  const std::vector<double> expect = m.array("y").value();
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(got[i], expect[i]) << i;
}

TEST(CCompile, ReductionMatchesInterpreter) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";
  const Program p = testing::reduce_program();
  std::string source = generate_c(p, analyze_program(p)).source;
  source +=
      "\n#include <stdio.h>\n"
      "int main(void) {\n"
      "  for (int i = 0; i < 16; ++i) x[i] = 1.0 / (1.0 + i);\n"
      "  reduce_sum();\n"
      "  printf(\"%.17g\\n\", total);\n"
      "  return 0;\n"
      "}\n";
  const auto output = compile_and_run(source, "reduce");
  ASSERT_TRUE(output.has_value());
  const std::vector<double> got = parse_numbers(*output);
  ASSERT_EQ(got.size(), 1u);

  Machine m(p);
  std::vector<double> x(16);
  for (int i = 0; i < 16; ++i) x[i] = 1.0 / (1.0 + i);
  ASSERT_TRUE(m.set_array("x", x).is_ok());
  ASSERT_TRUE(m.call("reduce_sum").is_ok());
  EXPECT_NEAR(got[0], m.scalar("total").value(), 1e-12);
}

TEST(CCompile, ControlFlowAndIntrinsics) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";
  // Conditionals, MIN/MAX/ABS/ALOG and a function with a return value.
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{10}}});
  auto v = pb.global("v", DataType::kDouble, {E(n)});
  auto out = pb.global("res", DataType::kDouble, {E(n)});
  auto fb = pb.function("transform");
  auto s = fb.step("s");
  s.foreach_("i", 0, E(n) - 1);
  s.if_(
      v(idx("i")) > 0.5,
      [&](BodyBuilder& b) {
        b.assign(out(idx("i")),
                 call("ALOG", {1.0 + call("ABS", {v(idx("i"))})}));
      },
      [&](BodyBuilder& b) {
        b.assign(out(idx("i")),
                 call("MAX", {v(idx("i")) * 2.0, lit(-1.0)}));
      });
  const Program p = pb.build().value();
  std::string source = generate_c(p, analyze_program(p)).source;
  source +=
      "\n#include <stdio.h>\n"
      "int main(void) {\n"
      "  for (int i = 0; i < 10; ++i) v[i] = (i - 5) * 0.3;\n"
      "  transform();\n"
      "  for (int i = 0; i < 10; ++i) printf(\"%.17g\\n\", res[i]);\n"
      "  return 0;\n"
      "}\n";
  const auto output = compile_and_run(source, "ctrl");
  ASSERT_TRUE(output.has_value());
  const std::vector<double> got = parse_numbers(*output);
  ASSERT_EQ(got.size(), 10u);

  Machine m(p);
  std::vector<double> vin(10);
  for (int i = 0; i < 10; ++i) vin[i] = (i - 5) * 0.3;
  ASSERT_TRUE(m.set_array("v", vin).is_ok());
  ASSERT_TRUE(m.call("transform").is_ok());
  const std::vector<double> expect = m.array("res").value();
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(got[i], expect[i]) << i;
}

TEST(CCompile, CommonBlockDefinitionLinks) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";
  // A COMMON-block grid: the generated TU declares the interop struct
  // extern; the legacy side (our driver) defines it.
  ProgramBuilder pb("m");
  auto scale = pb.global("scale", DataType::kDouble, {},
                         {.common_block = "cfg"});
  auto out = pb.global("res", DataType::kDouble, {4});
  auto fb = pb.function("apply");
  auto s = fb.step("s");
  s.foreach_("i", 0, 3);
  s.assign(out(idx("i")), E(scale) * idx("i"));
  const Program p = pb.build().value();
  std::string source = generate_c(p, analyze_program(p)).source;
  source +=
      "\n#include <stdio.h>\n"
      "struct cfg_common cfg_;  /* the legacy code's COMMON storage */\n"
      "int main(void) {\n"
      "  cfg_.scale = 2.5;\n"
      "  apply();\n"
      "  for (int i = 0; i < 4; ++i) printf(\"%.17g\\n\", res[i]);\n"
      "  return 0;\n"
      "}\n";
  const auto output = compile_and_run(source, "common");
  ASSERT_TRUE(output.has_value());
  const std::vector<double> got = parse_numbers(*output);
  ASSERT_EQ(got.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(got[i], 2.5 * i) << i;
}

TEST(CCompile, SubroutineCallsAndLocals) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";
  // Nested subprogram calls with whole-grid arguments and a local with
  // symbolic extent (malloc/free path).
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{6}}});
  auto data = pb.global("data", DataType::kDouble, {E(n)});
  auto fill = pb.function("fill");
  {
    auto v = fill.param("v", DataType::kDouble, {E(n)});
    auto count = fill.param("count", DataType::kInt);
    auto tmp = fill.local("tmp", DataType::kDouble, {E(count)});
    auto s = fill.step("s");
    s.foreach_("i", 0, E(count) - 1);
    s.assign(tmp(idx("i")), idx("i") * 3.0);
    s.assign(v(idx("i")), tmp(idx("i")) + 1.0);
  }
  auto driver = pb.function("driver");
  driver.step("s").call_sub("fill", {E(data), E(n)});
  const Program p = pb.build().value();
  std::string source = generate_c(p, analyze_program(p)).source;
  source +=
      "\n#include <stdio.h>\n"
      "int main(void) {\n"
      "  driver();\n"
      "  for (int i = 0; i < 6; ++i) printf(\"%.17g\\n\", data[i]);\n"
      "  return 0;\n"
      "}\n";
  const auto output = compile_and_run(source, "subr");
  ASSERT_TRUE(output.has_value());
  const std::vector<double> got = parse_numbers(*output);
  ASSERT_EQ(got.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(got[i], i * 3.0 + 1.0) << i;
}

}  // namespace
}  // namespace glaf
