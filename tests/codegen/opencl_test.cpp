#include "codegen/opencl.hpp"

#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "testing/programs.hpp"

namespace glaf {
namespace {

OpenClCode gen(const Program& p, CodegenOptions opts = {}) {
  opts.language = Language::kOpenCL;
  return generate_opencl(p, analyze_program(p), opts);
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(OpenCl, KernelForParallelStep) {
  const OpenClCode code = gen(testing::saxpy_program());
  EXPECT_TRUE(contains(code.kernels, "__kernel void saxpy_step0("));
  EXPECT_TRUE(contains(code.kernels, "get_global_id(0)"));
  ASSERT_EQ(code.kernels_by_function.count("saxpy"), 1u);
  EXPECT_EQ(code.kernels_by_function.at("saxpy").size(), 1u);
}

TEST(OpenCl, Fp64ExtensionEnabled) {
  const OpenClCode code = gen(testing::saxpy_program());
  EXPECT_TRUE(contains(code.kernels, "cl_khr_fp64"));
}

TEST(OpenCl, SerialLoopGetsNoKernel) {
  const OpenClCode code = gen(testing::prefix_program());
  EXPECT_EQ(code.kernels_by_function.count("prefix"), 0u);
  EXPECT_FALSE(contains(code.kernels, "__kernel"));
}

TEST(OpenCl, GlobalPointersAndScalarsInSignature) {
  const OpenClCode code = gen(testing::saxpy_program());
  EXPECT_TRUE(contains(code.kernels, "__global double* x"));
  EXPECT_TRUE(contains(code.kernels, "__global double* y"));
  EXPECT_TRUE(contains(code.kernels, "const double a"));
}

TEST(OpenCl, BoundsGuardEmitted) {
  const OpenClCode code = gen(testing::saxpy_program());
  EXPECT_TRUE(contains(code.kernels, "if (i > ((n - 1))) return;"));
}

TEST(OpenCl, HostLauncherEmitted) {
  const OpenClCode code = gen(testing::saxpy_program());
  EXPECT_TRUE(contains(code.host, "launch_saxpy_step0"));
  EXPECT_TRUE(contains(code.host, "clEnqueueNDRangeKernel"));
}

TEST(OpenCl, TwoDimensionalNdrangeForCollapsedNest) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {16, 16});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, 15).foreach_("j", 0, 15);
  s.assign(a(idx("i"), idx("j")), 1.0);
  const OpenClCode code = gen(pb.build().value());
  EXPECT_TRUE(contains(code.kernels, "get_global_id(0)"));
  EXPECT_TRUE(contains(code.kernels, "get_global_id(1)"));
  EXPECT_TRUE(contains(code.host, "size_t gws[2]"));
}

}  // namespace
}  // namespace glaf
