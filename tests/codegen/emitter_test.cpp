#include "codegen/emitter.hpp"

#include <gtest/gtest.h>

#include "support/strings.hpp"

namespace glaf {
namespace {

TEST(Emitter, IndentationApplied) {
  CodeWriter w;
  w.line("a");
  w.indent();
  w.line("b");
  w.dedent();
  w.line("c");
  EXPECT_EQ(w.str(), "a\n  b\nc\n");
}

TEST(Emitter, DedentBelowZeroIsSafe) {
  CodeWriter w;
  w.dedent();
  w.line("x");
  EXPECT_EQ(w.str(), "x\n");
}

TEST(Emitter, RawSkipsIndent) {
  CodeWriter w;
  w.indent();
  w.raw("!$OMP PARALLEL DO");
  EXPECT_EQ(w.str(), "!$OMP PARALLEL DO\n");
}

TEST(Emitter, FortranContinuationWrapsLongLines) {
  CodeWriter w("&", 40);
  const std::string long_expr =
      "x = aaaa + bbbb + cccc + dddd + eeee + ffff + gggg + hhhh";
  w.line(long_expr);
  const auto lines = split_lines(w.str());
  ASSERT_GE(lines.size(), 2u);
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    EXPECT_TRUE(ends_with(lines[i], "&")) << lines[i];
    EXPECT_LE(lines[i].size(), 40u);
  }
  // Reassembling the content (minus continuations) must preserve tokens.
  std::string joined;
  for (const auto& line : lines) {
    std::string body(trim(line));
    if (ends_with(body, "&")) body = std::string(trim(body.substr(0, body.size() - 1)));
    if (!joined.empty()) joined += " ";
    joined += body;
  }
  EXPECT_EQ(joined, long_expr);
}

TEST(Emitter, NoWrapWhenDisabled) {
  CodeWriter w("", 10);
  const std::string text(50, 'x');
  w.line(text);
  EXPECT_EQ(split_lines(w.str()).size(), 1u);
}

TEST(Emitter, MarkAndTextSince) {
  CodeWriter w;
  w.line("before");
  const std::size_t m = w.mark();
  w.line("after1");
  w.line("after2");
  EXPECT_EQ(w.text_since(m), "after1\nafter2\n");
}

TEST(Emitter, BlankLines) {
  CodeWriter w;
  w.line("a");
  w.blank();
  w.line("b");
  EXPECT_EQ(w.str(), "a\n\nb\n");
  EXPECT_EQ(w.line_count(), 3u);
}

}  // namespace
}  // namespace glaf
