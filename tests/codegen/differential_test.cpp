// Differential fuzzing of the execution semantics: randomly generated
// expression programs are run through the interpreter AND through the C
// back-end compiled with the system compiler; the two executions must
// agree. Any divergence pinpoints a semantics bug in one of the layers
// (expression typing, intrinsic lowering, operator precedence, ...).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "codegen/c.hpp"
#include "core/builder.hpp"
#include "interp/machine.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace glaf {
namespace {

constexpr int kInputs = 8;
constexpr int kOutputs = 64;
constexpr int kMaxDepth = 4;

/// Random, numerically tame expression over the input scalars: guarded
/// divisions, bounded EXP, SQRT of absolute values.
E random_expr(SplitMix64& rng, const std::vector<GridHandle>& inputs,
              int depth) {
  if (depth >= kMaxDepth || rng.next_below(5) == 0) {
    // Leaf: input or literal.
    if (rng.next_below(2) == 0) {
      return E(inputs[rng.next_below(kInputs)]);
    }
    return lit(rng.uniform(-3.0, 3.0));
  }
  const auto sub = [&] { return random_expr(rng, inputs, depth + 1); };
  switch (rng.next_below(9)) {
    case 0: return sub() + sub();
    case 1: return sub() - sub();
    case 2: return sub() * sub();
    case 3: return sub() / (call("ABS", {sub()}) + 1.0);  // guarded
    case 4: return call("ABS", {sub()});
    case 5: return call("MIN", {sub(), sub()});
    case 6: return call("MAX", {sub(), sub()});
    case 7: return call("SIN", {sub()});
    case 8: return call("SQRT", {call("ABS", {sub()}) + 0.5});
  }
  return lit(1.0);
}

TEST(Differential, RandomExpressionsAgreeBetweenInterpreterAndC) {
  if (std::system("cc --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "no system C compiler";
  }
  SplitMix64 rng(20260707);

  ProgramBuilder pb("fuzz_mod");
  std::vector<GridHandle> inputs;
  std::vector<double> input_values;
  for (int i = 0; i < kInputs; ++i) {
    const double v = rng.uniform(-2.0, 2.0);
    input_values.push_back(v);
    inputs.push_back(pb.global(cat("in", i), DataType::kDouble, {},
                               {.init = {v}}));
  }
  auto out = pb.global("outv", DataType::kDouble, {kOutputs});
  auto fb = pb.function("fuzz");
  auto s = fb.step("s");
  for (int i = 0; i < kOutputs; ++i) {
    s.assign(out(liti(i)), random_expr(rng, inputs, 0));
  }
  const auto built = pb.build();
  ASSERT_TRUE(built.is_ok()) << built.status().message();
  const Program& p = built.value();

  // Interpreter execution.
  Machine m(p);
  ASSERT_TRUE(m.call("fuzz").is_ok());
  const std::vector<double> interp_out = m.array("outv").value();

  // Compiled execution of the generated C.
  std::string source = generate_c(p, analyze_program(p)).source;
  source += cat("\n#include <stdio.h>\n",
                "int main(void) {\n  fuzz();\n  for (int i = 0; i < ",
                kOutputs, "; ++i) printf(\"%.17g\\n\", outv[i]);\n",
                "  return 0;\n}\n");
  const std::string dir = ::testing::TempDir();
  const std::string c_path = dir + "/glaf_fuzz.c";
  const std::string bin = dir + "/glaf_fuzz";
  {
    std::ofstream f(c_path);
    f << source;
  }
  ASSERT_EQ(std::system(("cc -O1 -fopenmp -o " + bin + " " + c_path +
                         " -lm > /dev/null 2>&1")
                            .c_str()),
            0)
      << "generated C failed to compile";
  FILE* pipe = ::popen(bin.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::vector<double> compiled_out;
  char buf[128];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    compiled_out.push_back(std::strtod(buf, nullptr));
  }
  ::pclose(pipe);

  ASSERT_EQ(compiled_out.size(), static_cast<std::size_t>(kOutputs));
  for (int i = 0; i < kOutputs; ++i) {
    const double a = interp_out[static_cast<std::size_t>(i)];
    const double b = compiled_out[static_cast<std::size_t>(i)];
    const double tol = 1e-12 * std::max(1.0, std::max(std::fabs(a),
                                                      std::fabs(b)));
    EXPECT_NEAR(a, b, tol) << "output " << i;
  }
}

}  // namespace
}  // namespace glaf
