#include "codegen/fortran.hpp"

#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "testing/programs.hpp"

namespace glaf {
namespace {

std::string gen(const Program& p, CodegenOptions opts = {}) {
  return generate_fortran(p, analyze_program(p), opts).source;
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(Fortran, ModuleSkeleton) {
  const std::string src = gen(testing::saxpy_program());
  EXPECT_TRUE(contains(src, "MODULE saxpy_mod"));
  EXPECT_TRUE(contains(src, "IMPLICIT NONE"));
  EXPECT_TRUE(contains(src, "CONTAINS"));
  EXPECT_TRUE(contains(src, "END MODULE saxpy_mod"));
}

TEST(Fortran, SubroutineForVoidFunction) {
  const std::string src = gen(testing::saxpy_program());
  EXPECT_TRUE(contains(src, "SUBROUTINE saxpy()"));
  EXPECT_TRUE(contains(src, "END SUBROUTINE saxpy"));
}

TEST(Fortran, LoopAndAssignment) {
  const std::string src = gen(testing::saxpy_program());
  EXPECT_TRUE(contains(src, "DO i = 0, (n - 1)"));
  EXPECT_TRUE(contains(src, "END DO"));
  EXPECT_TRUE(contains(src, "y(i) = ((a * x(i)) + y(i))"));
}

TEST(Fortran, OmpDirectiveOnParallelLoop) {
  const std::string src = gen(testing::saxpy_program());
  EXPECT_TRUE(contains(src, "!$OMP PARALLEL DO"));
  EXPECT_TRUE(contains(src, "!$OMP END PARALLEL DO"));
}

TEST(Fortran, SerialOptionDropsDirectives) {
  CodegenOptions opts;
  opts.enable_openmp = false;
  const std::string src = gen(testing::saxpy_program(), opts);
  EXPECT_FALSE(contains(src, "!$OMP"));
}

TEST(Fortran, SerialLoopGetsNoDirective) {
  const std::string src = gen(testing::prefix_program());
  EXPECT_FALSE(contains(src, "!$OMP"));
}

TEST(Fortran, ReductionClause) {
  const std::string src = gen(testing::reduce_program());
  EXPECT_TRUE(contains(src, "REDUCTION(+:total)"));
}

TEST(Fortran, UseStatementForExistingModule) {
  const std::string src = gen(testing::integration_program());
  // §3.1: USE for each existing module referenced by the subprogram.
  EXPECT_TRUE(contains(src, "USE fuliou_data"));
  EXPECT_TRUE(contains(src, "USE particle_mod"));
  // Existing-module variables are NOT re-declared.
  EXPECT_FALSE(contains(src, ":: tsfc"));
}

TEST(Fortran, CommonBlockDeclared) {
  const std::string src = gen(testing::integration_program());
  // §3.2: type declaration plus grouped COMMON statement. The extent folds
  // through the never-written size parameter nlev (= 4).
  EXPECT_TRUE(contains(src, "REAL(KIND=8) :: press(0:3)"));
  EXPECT_TRUE(contains(src, "COMMON /atmos/ press"));
}

TEST(Fortran, ModuleScopeVariableDeclaredAtModuleLevel) {
  const std::string src = gen(testing::integration_program());
  // §3.3: declared once, before CONTAINS.
  const std::size_t decl = src.find(":: accum");
  const std::size_t contains_kw = src.find("CONTAINS");
  ASSERT_NE(decl, std::string::npos);
  ASSERT_NE(contains_kw, std::string::npos);
  EXPECT_LT(decl, contains_kw);
}

TEST(Fortran, TypeElementAccessViaParent) {
  const std::string src = gen(testing::integration_program());
  // §3.5: atom1%charge spelling.
  EXPECT_TRUE(contains(src, "atom1%charge"));
}

TEST(Fortran, FunctionResultAssignment) {
  ProgramBuilder pb("m");
  auto fb = pb.function("twice", DataType::kDouble);
  auto x = fb.param("x", DataType::kDouble);
  fb.step("s").ret(E(x) * 2.0);
  const Program p = pb.build().value();
  const std::string src = gen(p);
  EXPECT_TRUE(contains(src, "REAL(KIND=8) FUNCTION twice(x)"));
  EXPECT_TRUE(contains(src, "twice = (x * 2.0d0)"));
  EXPECT_TRUE(contains(src, "RETURN"));
  EXPECT_TRUE(contains(src, "END FUNCTION twice"));
}

TEST(Fortran, CallSiteUsesCallKeyword) {
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble);
  auto sub = pb.function("subr");
  {
    auto v = sub.param("v", DataType::kDouble);
    sub.step("s").assign(x(), E(v));
  }
  auto caller = pb.function("caller");
  caller.step("s").call_sub("subr", {lit(1.5)});
  const std::string src = gen(pb.build().value());
  EXPECT_TRUE(contains(src, "CALL subr(1.5d0)"));
}

TEST(Fortran, IntentFromEffects) {
  ProgramBuilder pb("m");
  auto fb = pb.function("f");
  auto inp = fb.param("inp", DataType::kDouble, {4});
  auto outp = fb.param("outp", DataType::kDouble, {4});
  auto both = fb.param("both", DataType::kDouble);
  auto s = fb.step("s");
  s.foreach_("i", 0, 3);
  s.assign(outp(idx("i")), inp(idx("i")));
  s.assign(both(), E(both) + 1.0);
  const std::string src = gen(pb.build().value());
  EXPECT_TRUE(contains(src, "INTENT(IN) :: inp"));
  EXPECT_TRUE(contains(src, "INTENT(OUT) :: outp"));
  EXPECT_TRUE(contains(src, "INTENT(INOUT) :: both"));
}

TEST(Fortran, DoubleLiteralsUseDSuffix) {
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble);
  pb.function("f").step("s").assign(x(), 0.001);
  const std::string src = gen(pb.build().value());
  EXPECT_TRUE(contains(src, "0.001d0"));
}

TEST(Fortran, CollapseClauseOnPerfectNest) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {60, 60});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, 59).foreach_("j", 0, 59);
  s.assign(a(idx("i"), idx("j")), 1.0);
  const std::string src = gen(pb.build().value());
  EXPECT_TRUE(contains(src, "COLLAPSE(2)"));
}

TEST(Fortran, PrivateClauseForInnerIndexWithoutCollapse) {
  CodegenOptions opts;
  opts.emit_collapse = false;
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {8, 8});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, 7).foreach_("j", 0, 7);
  s.assign(a(idx("i"), idx("j")), 2.0);
  const Program p = pb.build().value();
  const std::string src = gen(p, opts);
  EXPECT_TRUE(contains(src, "PRIVATE(j)"));
}

TEST(Fortran, SaveTemporariesEmitsGuardedAllocate) {
  ProgramBuilder pb("m");
  auto fb = pb.function("f");
  auto n = fb.param("n", DataType::kInt);
  auto t = fb.local("t", DataType::kDouble, {E(n)}, {.save = true});
  auto s = fb.step("s");
  s.foreach_("i", 0, E(n) - 1);
  s.assign(t(idx("i")), 0.0);
  const std::string src = gen(pb.build().value());
  EXPECT_TRUE(contains(src, "ALLOCATABLE, SAVE :: t(:)"));
  EXPECT_TRUE(contains(src, "IF (.NOT. ALLOCATED(t)) ALLOCATE(t(0:n-1))"));
}

TEST(Fortran, AtomicDirectiveOnIndirectUpdate) {
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{8}}});
  auto index = pb.global("index", DataType::kInt, {E(n)});
  auto w = pb.global("w", DataType::kDouble, {E(n)});
  auto out = pb.global("out", DataType::kDouble, {E(n)});
  auto fb = pb.function("scatter");
  auto s = fb.step("s");
  s.foreach_("i", 0, E(n) - 1);
  s.assign(out(index(idx("i"))), out(index(idx("i"))) + w(idx("i")));
  const std::string src = gen(pb.build().value());
  EXPECT_TRUE(contains(src, "!$OMP ATOMIC"));
}

TEST(Fortran, ScheduleClauseEmitted) {
  CodegenOptions opts;
  opts.schedule = OmpSchedule::kDynamic;
  opts.schedule_chunk = 4;
  const std::string src = gen(testing::saxpy_program(), opts);
  EXPECT_TRUE(contains(src, "SCHEDULE(DYNAMIC, 4)"));
  opts.schedule = OmpSchedule::kStatic;
  opts.schedule_chunk = 0;
  EXPECT_TRUE(contains(gen(testing::saxpy_program(), opts),
                       "SCHEDULE(STATIC)"));
}

TEST(Fortran, PerFunctionExcerptsProvided) {
  const Program p = testing::saxpy_program();
  const GeneratedCode code = generate_fortran(p, analyze_program(p));
  ASSERT_EQ(code.per_function.count("saxpy"), 1u);
  EXPECT_TRUE(contains(code.per_function.at("saxpy"), "SUBROUTINE saxpy"));
}

TEST(Fortran, LibFunctionSpelling) {
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble);
  pb.function("f").step("s").assign(x(), call("ALOG", {E(x)}));
  const std::string src = gen(pb.build().value());
  EXPECT_TRUE(contains(src, "ALOG(x)"));
}

TEST(Fortran, InitDataEmitted) {
  ProgramBuilder pb("m");
  pb.global("tbl", DataType::kDouble, {3}, {.init = {1.0, 2.0, 3.0}});
  auto x = pb.global("x", DataType::kDouble);
  pb.function("f").step("s").assign(x(), 0.0);
  const std::string src = gen(pb.build().value());
  EXPECT_TRUE(contains(src, "(/ 1.0d0, 2.0d0, 3.0d0 /)"));
}

}  // namespace
}  // namespace glaf
