// Golden-file tests: the generated FORTRAN for the SARB case-study
// program and its serialized IR are checked against files under
// tests/golden/. Any intentional change to the generators or the kernel
// definitions must regenerate the goldens:
//
//   build/tools/glafc --builtin=sarb --emit=fortran --policy=v0
//       --out=tests/golden/sarb_kernels.f90
//   build/tools/glafc --builtin=sarb --dump
//       --out=tests/golden/sarb_kernels.glaf

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "codegen/fortran.hpp"
#include "core/serialize.hpp"
#include "fuliou/glaf_kernels.hpp"

namespace glaf {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::string golden_path(const std::string& name) {
#ifdef GLAF_SOURCE_DIR
  return std::string(GLAF_SOURCE_DIR) + "/tests/golden/" + name;
#else
  return "tests/golden/" + name;
#endif
}

TEST(Golden, SarbFortranMatches) {
  const std::string expected = read_file(golden_path("sarb_kernels.f90"));
  ASSERT_FALSE(expected.empty()) << "golden file missing";
  const Program program = fuliou::build_sarb_program();
  const std::string actual =
      generate_fortran(program, analyze_program(program)).source;
  EXPECT_EQ(actual, expected)
      << "generated FORTRAN drifted from tests/golden/sarb_kernels.f90 — "
         "regenerate the golden if the change is intentional";
}

TEST(Golden, SarbSerializedIrMatches) {
  const std::string expected = read_file(golden_path("sarb_kernels.glaf"));
  ASSERT_FALSE(expected.empty()) << "golden file missing";
  const Program program = fuliou::build_sarb_program();
  EXPECT_EQ(serialize_program(program), expected);
}

TEST(Golden, GoldenIrParsesAndValidates) {
  const std::string text = read_file(golden_path("sarb_kernels.glaf"));
  ASSERT_FALSE(text.empty());
  const auto parsed = parse_program(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value().module_name, "sarb_kernels");
}

}  // namespace
}  // namespace glaf
