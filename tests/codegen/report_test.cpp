#include "codegen/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "fuliou/glaf_kernels.hpp"
#include "testing/programs.hpp"

namespace glaf {
namespace {

TEST(Report, SummarizesCounts) {
  const Program p = testing::saxpy_program();
  const std::string report = parallelization_report(p, analyze_program(p));
  EXPECT_NE(report.find("# Parallelization report: module saxpy_mod"),
            std::string::npos);
  EXPECT_NE(report.find("1 parallelizable loop(s), 0 serial loop(s)"),
            std::string::npos);
}

TEST(Report, SerialLoopReported) {
  const Program p = testing::prefix_program();
  const std::string report = parallelization_report(p, analyze_program(p));
  EXPECT_NE(report.find("0 parallelizable loop(s), 1 serial loop(s)"),
            std::string::npos);
  EXPECT_NE(report.find("loop-carried dependence"), std::string::npos);
}

TEST(Report, SarbReportListsEveryStep) {
  const Program p = fuliou::build_sarb_program();
  const std::string report = parallelization_report(p, analyze_program(p));
  // Section per subroutine.
  for (const std::string& name : fuliou::table1_subroutines()) {
    EXPECT_NE(report.find("subroutine " + name), std::string::npos) << name;
  }
  // The complex loops with their policy retention.
  EXPECT_NE(report.find("| le7 | complex | 120 |"), std::string::npos);
  EXPECT_NE(report.find("v0 v1 v2 v3"), std::string::npos);
  // Reduction clause surfaced.
  EXPECT_NE(report.find("reduction(+:od_total)"), std::string::npos);
}

TEST(Report, MarkdownTableWellFormed) {
  const Program p = fuliou::build_sarb_program();
  const std::string report = parallelization_report(p, analyze_program(p));
  // Every table row has the same number of pipes as the header.
  std::istringstream lines(report);
  std::string line;
  int header_pipes = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("| step |", 0) == 0) {
      header_pipes = static_cast<int>(std::count(line.begin(), line.end(), '|'));
    } else if (!line.empty() && line[0] == '|' && header_pipes > 0) {
      EXPECT_EQ(std::count(line.begin(), line.end(), '|'), header_pipes)
          << line;
    }
  }
  EXPECT_GT(header_pipes, 0);
}

}  // namespace
}  // namespace glaf
