#include "codegen/directive_policy.hpp"

#include <gtest/gtest.h>

namespace glaf {
namespace {

StepVerdict verdict_of(LoopClass c, bool parallel = true) {
  StepVerdict v;
  v.has_loop = c != LoopClass::kStraightLine;
  v.parallelizable = parallel;
  v.loop_class = c;
  return v;
}

// Table 2: which loop classes keep directives under each policy.
struct Case {
  DirectivePolicy policy;
  LoopClass cls;
  bool kept;
};

class PolicyTable : public ::testing::TestWithParam<Case> {};

TEST_P(PolicyTable, MatchesTable2) {
  const Case c = GetParam();
  EXPECT_EQ(keep_directive(c.policy, verdict_of(c.cls)), c.kept);
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, PolicyTable,
    ::testing::Values(
        // v0 keeps every parallelizable loop.
        Case{DirectivePolicy::kV0, LoopClass::kInitZero, true},
        Case{DirectivePolicy::kV0, LoopClass::kBroadcast, true},
        Case{DirectivePolicy::kV0, LoopClass::kSimpleSingle, true},
        Case{DirectivePolicy::kV0, LoopClass::kSimpleDouble, true},
        Case{DirectivePolicy::kV0, LoopClass::kComplex, true},
        // v1 drops init/broadcast.
        Case{DirectivePolicy::kV1, LoopClass::kInitZero, false},
        Case{DirectivePolicy::kV1, LoopClass::kBroadcast, false},
        Case{DirectivePolicy::kV1, LoopClass::kSimpleSingle, true},
        Case{DirectivePolicy::kV1, LoopClass::kSimpleDouble, true},
        Case{DirectivePolicy::kV1, LoopClass::kComplex, true},
        // v2 additionally drops simple single loops.
        Case{DirectivePolicy::kV2, LoopClass::kSimpleSingle, false},
        Case{DirectivePolicy::kV2, LoopClass::kSimpleDouble, true},
        Case{DirectivePolicy::kV2, LoopClass::kComplex, true},
        // v3 additionally drops simple double loops; complex only.
        Case{DirectivePolicy::kV3, LoopClass::kInitZero, false},
        Case{DirectivePolicy::kV3, LoopClass::kBroadcast, false},
        Case{DirectivePolicy::kV3, LoopClass::kSimpleSingle, false},
        Case{DirectivePolicy::kV3, LoopClass::kSimpleDouble, false},
        Case{DirectivePolicy::kV3, LoopClass::kComplex, true}));

TEST(Policy, NonParallelizableNeverKept) {
  for (const DirectivePolicy p :
       {DirectivePolicy::kV0, DirectivePolicy::kV1, DirectivePolicy::kV2,
        DirectivePolicy::kV3}) {
    EXPECT_FALSE(keep_directive(p, verdict_of(LoopClass::kComplex, false)));
  }
}

TEST(Policy, StraightLineNeverKept) {
  EXPECT_FALSE(keep_directive(DirectivePolicy::kV0,
                              verdict_of(LoopClass::kStraightLine)));
}

TEST(Policy, Names) {
  EXPECT_STREQ(to_string(DirectivePolicy::kV0), "v0");
  EXPECT_STREQ(to_string(DirectivePolicy::kV3), "v3");
  EXPECT_STREQ(to_string(Language::kFortran), "FORTRAN");
}

}  // namespace
}  // namespace glaf
