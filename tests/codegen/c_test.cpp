#include "codegen/c.hpp"

#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "testing/programs.hpp"

namespace glaf {
namespace {

std::string gen(const Program& p, CodegenOptions opts = {}) {
  opts.language = Language::kC;
  return generate_c(p, analyze_program(p), opts).source;
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(CGen, PreambleAndHelpers) {
  const std::string src = gen(testing::saxpy_program());
  EXPECT_TRUE(contains(src, "#include <math.h>"));
  EXPECT_TRUE(contains(src, "static double glaf_sum"));
}

TEST(CGen, VoidFunctionAndLoop) {
  const std::string src = gen(testing::saxpy_program());
  EXPECT_TRUE(contains(src, "void saxpy(void) {"));
  EXPECT_TRUE(contains(src, "for (i = 0; i <= (n - 1); ++i) {"));
}

TEST(CGen, OmpPragma) {
  const std::string src = gen(testing::saxpy_program());
  EXPECT_TRUE(contains(src, "#pragma omp parallel for"));
}

TEST(CGen, ReductionClause) {
  const std::string src = gen(testing::reduce_program());
  EXPECT_TRUE(contains(src, "reduction(+:total)"));
}

TEST(CGen, SerialLoopHasNoPragma) {
  const std::string src = gen(testing::prefix_program());
  EXPECT_FALSE(contains(src, "#pragma omp parallel"));
}

TEST(CGen, CommonBlockInteropStruct) {
  const std::string src = gen(testing::integration_program());
  EXPECT_TRUE(contains(src, "extern struct atmos_common"));
  EXPECT_TRUE(contains(src, "} atmos_;"));
  EXPECT_TRUE(contains(src, "atmos_.press["));
}

TEST(CGen, ExternForExistingModuleVariable) {
  const std::string src = gen(testing::integration_program());
  EXPECT_TRUE(contains(src, "extern double tsfc; /* from module fuliou_data */"));
}

TEST(CGen, TypeElementMemberAccess) {
  const std::string src = gen(testing::integration_program());
  EXPECT_TRUE(contains(src, "atom1.charge"));
}

TEST(CGen, ModuleScopeStaticDefinition) {
  const std::string src = gen(testing::integration_program());
  EXPECT_TRUE(contains(src, "static double accum[4];"));
}

TEST(CGen, RowMajorFlattening) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {4, 5});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, 3).foreach_("j", 0, 4);
  s.assign(a(idx("i"), idx("j")), 1.0);
  const std::string src = gen(pb.build().value());
  EXPECT_TRUE(contains(src, "a[((i) * (5) + (j))]"));
}

TEST(CGen, CallocFreeForSymbolicLocals) {
  ProgramBuilder pb("m");
  auto fb = pb.function("f");
  auto n = fb.param("n", DataType::kInt);
  auto t = fb.local("t", DataType::kDouble, {E(n)});
  auto s = fb.step("s");
  s.foreach_("i", 0, E(n) - 1);
  s.assign(t(idx("i")), 0.0);
  const std::string src = gen(pb.build().value());
  // calloc, not malloc: interpreter instances start zero-filled, so the
  // generated code must match (caught by the differential fuzzer).
  EXPECT_TRUE(contains(src, "calloc"));
  EXPECT_FALSE(contains(src, "malloc"));
  EXPECT_TRUE(contains(src, "free(t);"));
}

TEST(CGen, ScalarAndFixedLocalsZeroInitialized) {
  ProgramBuilder pb("m");
  auto fb = pb.function("f");
  auto t = fb.local("t", DataType::kDouble);
  auto a = fb.local("a", DataType::kDouble, {E(4)});
  auto s = fb.step("s");
  s.assign(t(), E(a(liti(0))) + 1.0);
  const std::string src = gen(pb.build().value());
  EXPECT_TRUE(contains(src, "double t = 0;"));
  EXPECT_TRUE(contains(src, "double a[4] = {0};"));
}

TEST(CGen, SaveTemporariesUsesStaticGuard) {
  CodegenOptions opts;
  opts.save_temporaries = true;
  ProgramBuilder pb("m");
  auto fb = pb.function("f");
  auto n = fb.param("n", DataType::kInt);
  auto t = fb.local("t", DataType::kDouble, {E(n)});
  auto s = fb.step("s");
  s.foreach_("i", 0, E(n) - 1);
  s.assign(t(idx("i")), 0.0);
  const std::string src = gen(pb.build().value(), opts);
  EXPECT_TRUE(contains(src, "static double* t = 0;"));
  EXPECT_TRUE(contains(src, "if (!t) t ="));
  EXPECT_FALSE(contains(src, "free(t);"));
}

TEST(CGen, VariadicMinFoldsToNestedCalls) {
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble);
  auto y = pb.global("y", DataType::kDouble);
  auto z = pb.global("z", DataType::kDouble);
  pb.function("f").step("s").assign(
      x(), call("MIN", {E(x), E(y), E(z)}));
  const std::string src = gen(pb.build().value());
  // Left-associative like the interpreter's fold, so NaN propagation
  // through the accumulator is identical in both backends.
  EXPECT_TRUE(contains(src, "glaf_min(glaf_min(x, y), z)"));
}

TEST(CGen, IntegerModVsFmod) {
  ProgramBuilder pb("m");
  auto i1 = pb.global("i1", DataType::kInt);
  auto i2 = pb.global("i2", DataType::kInt);
  auto d1 = pb.global("d1", DataType::kDouble);
  auto fb = pb.function("f");
  fb.step("s")
      .assign(i1(), mod(E(i1), E(i2)))
      .assign(d1(), mod(E(d1), 2.0));
  const std::string src = gen(pb.build().value());
  EXPECT_TRUE(contains(src, "(i1 % i2)"));
  EXPECT_TRUE(contains(src, "fmod(d1, 2.0)"));
}

TEST(CGen, ReturnStatement) {
  ProgramBuilder pb("m");
  auto fb = pb.function("twice", DataType::kDouble);
  auto x = fb.param("x", DataType::kDouble);
  fb.step("s").ret(E(x) * 2.0);
  const std::string src = gen(pb.build().value());
  EXPECT_TRUE(contains(src, "double twice(double x)"));
  EXPECT_TRUE(contains(src, "return (x * 2.0);"));
}

TEST(CGen, PrototypesBeforeDefinitions) {
  const std::string src = gen(testing::saxpy_program());
  const std::size_t proto = src.find("void saxpy(void);");
  const std::size_t defn = src.find("void saxpy(void) {");
  ASSERT_NE(proto, std::string::npos);
  ASSERT_NE(defn, std::string::npos);
  EXPECT_LT(proto, defn);
}

TEST(CGen, ScheduleClauseEmitted) {
  CodegenOptions opts;
  opts.schedule = OmpSchedule::kDynamic;
  opts.schedule_chunk = 8;
  const std::string src = gen(testing::saxpy_program(), opts);
  EXPECT_TRUE(contains(src, "schedule(dynamic, 8)"));
}

TEST(CGen, SumWholeGridLowersToHelper) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {6});
  auto x = pb.global("x", DataType::kDouble);
  pb.function("f").step("s").assign(x(), call("SUM", {E(a)}));
  const std::string src = gen(pb.build().value());
  EXPECT_TRUE(contains(src, "glaf_sum(a, (6))"));
}

}  // namespace
}  // namespace glaf
