// CLI-level checks for the glafc driver's --strict-engine contract:
// with --engine=native it must exit non-zero whenever the native
// engine falls back — whole-engine unavailability or per-call plan
// routing — and print the reason; without fallback it must exit 0.
// Also covers the run-mode --emit tier switch (interp|opt) and its
// interaction with --engine/--strict-engine, and the machine-readable
// --json run report (whose native_report object shares its schema with
// the glaf_serve stats endpoint).
// Runs the real binary (path injected by CMake) through the shell.

#include <gtest/gtest.h>

#include <string>

#include "support/subprocess.hpp"

namespace glaf {
namespace {

std::string glafc() { return std::string(GLAF_GLAFC_PATH); }

bool have_cc() { return cc_available(default_cc()); }

TEST(GlafcStrictEngine, SucceedsWhenTheNativeEngineHandlesEveryCall) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const RunResult r = run_command(
      glafc() +
      " --builtin=sarb --run --engine=native --parallel --threads 2"
      " --strict-engine 2>&1");
  ASSERT_TRUE(r.started);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("native kernel"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("0 fallback call(s)"), std::string::npos)
      << r.output;
}

TEST(GlafcStrictEngine, FailsWithReasonWhenTheEngineIsUnavailable) {
  const RunResult r = run_command(
      "GLAF_CC=/nonexistent/compiler " + glafc() +
      " --builtin=sarb --run --engine=native --strict-engine 2>&1");
  ASSERT_TRUE(r.started);
  EXPECT_NE(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("native engine unavailable"), std::string::npos)
      << r.output;
}

TEST(GlafcStrictEngine, WithoutStrictTheSameFallbackOnlyWarns) {
  const RunResult r = run_command(
      "GLAF_CC=/nonexistent/compiler " + glafc() +
      " --builtin=sarb --run --engine=native 2>&1");
  ASSERT_TRUE(r.started);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("native engine unavailable"), std::string::npos)
      << r.output;
}

TEST(GlafcStrictEngine, RejectsNonNativeEngines) {
  const RunResult r = run_command(
      glafc() + " --builtin=sarb --run --engine=plan --strict-engine 2>&1");
  ASSERT_TRUE(r.started);
  EXPECT_NE(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("requires --engine=native"), std::string::npos)
      << r.output;
}

TEST(GlafcEmitTier, OptTierRunsNativelyUnderStrictEngine) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  // Opt kernels dispatch serially, so every call must still be native:
  // --strict-engine holds the tier to zero fallbacks.
  const RunResult r = run_command(
      glafc() +
      " --builtin=sarb --run --engine=native --emit=opt"
      " --strict-engine 2>&1");
  ASSERT_TRUE(r.started);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("model=opt"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("0 fallback call(s)"), std::string::npos)
      << r.output;
}

TEST(GlafcEmitTier, DefaultTierIsInterp) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const RunResult r = run_command(
      glafc() + " --builtin=sarb --run --engine=native 2>&1");
  ASSERT_TRUE(r.started);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("model=interp"), std::string::npos) << r.output;
}

TEST(GlafcEmitTier, PortableOptTierRuns) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  // --portable drops -march=native; the kernel must still build and run.
  const RunResult r = run_command(
      glafc() +
      " --builtin=sarb --run --engine=native --emit=opt --portable"
      " --strict-engine 2>&1");
  ASSERT_TRUE(r.started);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("model=opt"), std::string::npos) << r.output;
}

TEST(GlafcEmitTier, OptRequiresTheNativeEngine) {
  const RunResult r = run_command(
      glafc() + " --builtin=sarb --run --engine=plan --emit=opt 2>&1");
  ASSERT_TRUE(r.started);
  EXPECT_NE(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("requires --engine=native"), std::string::npos)
      << r.output;
}

TEST(GlafcEmitTier, RejectsUnknownRunModeTier) {
  const RunResult r = run_command(
      glafc() + " --builtin=sarb --run --engine=native --emit=fast 2>&1");
  ASSERT_TRUE(r.started);
  EXPECT_NE(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("interp|opt"), std::string::npos) << r.output;
}

TEST(GlafcJson, PrintsTheRunReportOnStdout) {
  // stdout only (stderr dropped): the report must be one JSON object
  // with the shared native_report schema the serve stats endpoint uses.
  // run_command merges stderr itself, so drop it inside a subshell.
  const RunResult r = run_command(
      "( " + glafc() + " --builtin=sarb --run --engine=plan --json"
      " 2>/dev/null )");
  ASSERT_TRUE(r.started);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.rfind("{\"entry\":", 0), 0u) << r.output;
  EXPECT_NE(r.output.find("\"engine\":\"plan\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"result\":"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"stats\":{"), std::string::npos) << r.output;
  // Non-native engines render native_report as null, not absent.
  EXPECT_NE(r.output.find("\"native_report\":null"), std::string::npos)
      << r.output;
}

TEST(GlafcJson, NativeRunEmbedsTheSharedNativeReportSchema) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const RunResult r = run_command(
      "( " + glafc() +
      " --builtin=sarb --run --engine=native --json 2>/dev/null )");
  ASSERT_TRUE(r.started);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // The schema fields the serve stats endpoint greps for too.
  for (const char* field :
       {"\"native_report\":{", "\"available\":true", "\"model\":\"interp\"",
        "\"native_calls\":", "\"cache_hit\":", "\"object_path\":",
        "\"compiler\":", "\"compile_flags\":"}) {
    EXPECT_NE(r.output.find(field), std::string::npos)
        << "missing " << field << " in: " << r.output;
  }
}

TEST(GlafcJson, WithoutTheFlagStdoutStaysEmpty) {
  const RunResult r = run_command(
      "( " + glafc() + " --builtin=sarb --run --engine=plan 2>/dev/null )");
  ASSERT_TRUE(r.started);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "") << "run mode must not pollute stdout";
}

TEST(GlafcPolicies, RejectsUnknownPolicyNames) {
  // --policies is the documented alias for --policy; both must reject
  // names outside v0..v4 with the full range in the message.
  for (const char* flag : {"--policies=v9", "--policy=v9"}) {
    const RunResult r = run_command(glafc() + " --builtin=sarb --run"
                                              " --engine=plan " +
                                    flag + " 2>&1");
    ASSERT_TRUE(r.started);
    EXPECT_NE(r.exit_code, 0) << flag << ": " << r.output;
    EXPECT_NE(r.output.find("unknown policy 'v9' (v0..v4)"),
              std::string::npos)
        << flag << ": " << r.output;
  }
}

TEST(GlafcPolicies, AcceptsV4WithoutAProfile) {
  // v4 with no --profile degrades to the static verdicts: nothing to
  // promote, but the run itself must succeed.
  const RunResult r = run_command(
      glafc() + " --builtin=sarb --run --engine=plan --policies=v4"
                " --parallel --threads 2 2>&1");
  ASSERT_TRUE(r.started);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(GlafcEmitTier, CodegenModeEmitStillSelectsLanguages) {
  // Outside run mode --emit keeps its original meaning (target language).
  const RunResult r = run_command(
      glafc() + " --builtin=sarb --emit=c --serial 2>&1 | head -5");
  ASSERT_TRUE(r.started);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

}  // namespace
}  // namespace glaf
