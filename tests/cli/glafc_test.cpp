// CLI-level checks for the glafc driver's --strict-engine contract:
// with --engine=native it must exit non-zero whenever the native
// engine falls back — whole-engine unavailability or per-call plan
// routing — and print the reason; without fallback it must exit 0.
// Runs the real binary (path injected by CMake) through the shell.

#include <gtest/gtest.h>

#include <string>

#include "support/subprocess.hpp"

namespace glaf {
namespace {

std::string glafc() { return std::string(GLAF_GLAFC_PATH); }

bool have_cc() { return cc_available(default_cc()); }

TEST(GlafcStrictEngine, SucceedsWhenTheNativeEngineHandlesEveryCall) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const RunResult r = run_command(
      glafc() +
      " --builtin=sarb --run --engine=native --parallel --threads 2"
      " --strict-engine 2>&1");
  ASSERT_TRUE(r.started);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("native kernel"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("0 fallback call(s)"), std::string::npos)
      << r.output;
}

TEST(GlafcStrictEngine, FailsWithReasonWhenTheEngineIsUnavailable) {
  const RunResult r = run_command(
      "GLAF_CC=/nonexistent/compiler " + glafc() +
      " --builtin=sarb --run --engine=native --strict-engine 2>&1");
  ASSERT_TRUE(r.started);
  EXPECT_NE(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("native engine unavailable"), std::string::npos)
      << r.output;
}

TEST(GlafcStrictEngine, WithoutStrictTheSameFallbackOnlyWarns) {
  const RunResult r = run_command(
      "GLAF_CC=/nonexistent/compiler " + glafc() +
      " --builtin=sarb --run --engine=native 2>&1");
  ASSERT_TRUE(r.started);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("native engine unavailable"), std::string::npos)
      << r.output;
}

TEST(GlafcStrictEngine, RejectsNonNativeEngines) {
  const RunResult r = run_command(
      glafc() + " --builtin=sarb --run --engine=plan --strict-engine 2>&1");
  ASSERT_TRUE(r.started);
  EXPECT_NE(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("requires --engine=native"), std::string::npos)
      << r.output;
}

}  // namespace
}  // namespace glaf
