// Planner-side tests for profile-guided speculation (policy v4):
// apply_speculation must promote profile-clean blocked steps to
// StepVerdict::speculative (with the (grid, field) bands the runtime
// validator checks), leave observed-conflict steps serial with a note,
// reject profiles recorded against a different program with a typed
// error, and the DepProfiler must actually observe the conflicts the
// plan VM feeds it. Serialization round-trips the profile text format.

#include "analysis/speculate.hpp"

#include <gtest/gtest.h>

#include <string>

#include "analysis/parallelize.hpp"
#include "core/builder.hpp"
#include "interp/machine.hpp"

namespace glaf {
namespace {

// One blocked-but-profile-clean step: the MOD write subscript defeats
// the affine analysis, but 17 is coprime to 16 so the writes are a
// permutation — no element is ever touched twice.
Program permute_program() {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {16});
  auto w = pb.global("w", DataType::kDouble, {16});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, 15);
  s.assign(a(call("MOD", {idx("i") * 17, E(16)})), w(idx("i")) + 1.0);
  return pb.build().value();
}

DepProfile clean_profile(const Program& p, std::uint64_t conflicts = 0) {
  DepProfile prof;
  prof.program_hash = dep_profile_program_hash(p);
  prof.steps[{"f", 0}] = {1, 16, conflicts};
  return prof;
}

TEST(Speculate, ProfileCleanComplexStepPromotes) {
  const Program p = permute_program();
  ProgramAnalysis pa = analyze_program(p);
  const Function* fn = p.find_function("f");
  ASSERT_FALSE(pa.verdict(fn->id, 0).parallelizable)
      << "MOD subscript must block the static analysis";

  const auto summary = apply_speculation(p, &pa, clean_profile(p));
  ASSERT_TRUE(summary.is_ok()) << summary.status().message();
  EXPECT_EQ(summary.value().promoted, 1);
  EXPECT_EQ(summary.value().conflicted, 0);

  const StepVerdict& v = pa.verdict(fn->id, 0);
  EXPECT_TRUE(v.speculative);
  ASSERT_EQ(v.spec_bands.size(), 2u);
  // Bands carry the write/read split the validator needs: a written,
  // w read-only.
  bool saw_written = false, saw_read_only = false;
  for (const auto& band : v.spec_bands) {
    if (band.written) {
      saw_written = true;
      EXPECT_EQ(p.grid(band.grid).name, "a");
    } else {
      saw_read_only = true;
      EXPECT_EQ(p.grid(band.grid).name, "w");
    }
  }
  EXPECT_TRUE(saw_written);
  EXPECT_TRUE(saw_read_only);
}

TEST(Speculate, ObservedConflictStaysSerial) {
  const Program p = permute_program();
  ProgramAnalysis pa = analyze_program(p);
  const auto summary =
      apply_speculation(p, &pa, clean_profile(p, /*conflicts=*/3));
  ASSERT_TRUE(summary.is_ok());
  EXPECT_EQ(summary.value().promoted, 0);
  EXPECT_EQ(summary.value().conflicted, 1);
  const StepVerdict& v = pa.verdict(p.find_function("f")->id, 0);
  EXPECT_FALSE(v.speculative);
  EXPECT_TRUE(v.spec_bands.empty());
  bool noted = false;
  for (const std::string& n : v.notes) {
    noted = noted || n.find("speculation rejected") != std::string::npos;
  }
  EXPECT_TRUE(noted);
}

TEST(Speculate, UnprofiledCandidateStaysSerial) {
  const Program p = permute_program();
  ProgramAnalysis pa = analyze_program(p);
  DepProfile prof;
  prof.program_hash = dep_profile_program_hash(p);  // valid but empty
  const auto summary = apply_speculation(p, &pa, prof);
  ASSERT_TRUE(summary.is_ok());
  EXPECT_EQ(summary.value().promoted, 0);
  EXPECT_EQ(summary.value().unprofiled, 1);
  EXPECT_FALSE(pa.verdict(p.find_function("f")->id, 0).speculative);
}

TEST(Speculate, HashMismatchRejectsWithTypedError) {
  const Program p = permute_program();
  ProgramAnalysis pa = analyze_program(p);
  DepProfile prof = clean_profile(p);
  prof.program_hash ^= 1;  // profile from "a different program"
  const auto summary = apply_speculation(p, &pa, prof);
  ASSERT_FALSE(summary.is_ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(summary.status().message().find("different program"),
            std::string::npos)
      << summary.status().message();
  // A rejected profile must not have touched any verdict.
  EXPECT_FALSE(pa.verdict(p.find_function("f")->id, 0).speculative);
}

TEST(Speculate, ProfilerObservesRealCarriedDependence) {
  // a(i) = a(i-1) + 1: every interior element is written at trip i and
  // read back at trip i+1 — the profiler must count those conflicts, and
  // apply_speculation must then refuse to promote the step.
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {16});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 1, 15);
  s.assign(a(idx("i")), a(idx("i") - 1) + 1.0);
  const Program p = pb.build().value();

  InterpOptions opts;
  opts.profile_deps = true;
  Machine m(p, opts);
  ASSERT_TRUE(m.call("f").is_ok());
  const DepProfile prof = m.dep_profile();
  EXPECT_EQ(prof.program_hash, dep_profile_program_hash(p));
  const auto it = prof.steps.find({"f", 0});
  ASSERT_NE(it, prof.steps.end());
  EXPECT_EQ(it->second.invocations, 1u);
  EXPECT_EQ(it->second.iterations, 15u);
  // a(1)..a(14) are each touched in two trips with a write.
  EXPECT_EQ(it->second.conflicts, 14u);

  ProgramAnalysis pa = analyze_program(p);
  const auto summary = apply_speculation(p, &pa, prof);
  ASSERT_TRUE(summary.is_ok());
  EXPECT_EQ(summary.value().promoted, 0);
  EXPECT_EQ(summary.value().conflicted, 1);
}

TEST(Speculate, ProfilerSeesPermutationAsClean) {
  const Program p = permute_program();
  InterpOptions opts;
  opts.profile_deps = true;
  Machine m(p, opts);
  ASSERT_TRUE(m.call("f").is_ok());
  const DepProfile prof = m.dep_profile();
  const auto it = prof.steps.find({"f", 0});
  ASSERT_NE(it, prof.steps.end());
  EXPECT_EQ(it->second.conflicts, 0u);

  ProgramAnalysis pa = analyze_program(p);
  const auto summary = apply_speculation(p, &pa, prof);
  ASSERT_TRUE(summary.is_ok());
  EXPECT_EQ(summary.value().promoted, 1);
}

TEST(Speculate, SerializeRoundTrips) {
  DepProfile prof;
  prof.program_hash = 0xdeadbeef12345678ull;
  prof.steps[{"alpha", 0}] = {2, 32, 0};
  prof.steps[{"beta", 3}] = {1, 7, 5};
  const std::string text = serialize_dep_profile(prof);
  const auto parsed = parse_dep_profile(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value().program_hash, prof.program_hash);
  ASSERT_EQ(parsed.value().steps.size(), 2u);
  const DepProfileStep& beta = parsed.value().steps.at({"beta", 3});
  EXPECT_EQ(beta.invocations, 1u);
  EXPECT_EQ(beta.iterations, 7u);
  EXPECT_EQ(beta.conflicts, 5u);
}

TEST(Speculate, ParseRejectsMalformedProfiles) {
  EXPECT_FALSE(parse_dep_profile("").is_ok());
  EXPECT_FALSE(parse_dep_profile("not-a-profile\n").is_ok());
  // Header but no program hash line.
  EXPECT_FALSE(parse_dep_profile("glaf-dep-profile 1\n").is_ok());
  // Bad hash digits.
  EXPECT_FALSE(
      parse_dep_profile("glaf-dep-profile 1\nprogram zzzz\n").is_ok());
  // Unknown record tag.
  EXPECT_FALSE(parse_dep_profile(
                   "glaf-dep-profile 1\nprogram 0\nbogus f 0 1 1 0\n")
                   .is_ok());
}

}  // namespace
}  // namespace glaf
