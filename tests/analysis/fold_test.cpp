#include <gtest/gtest.h>

#include "analysis/transform.hpp"
#include "core/builder.hpp"
#include "core/validate.hpp"
#include "interp/machine.hpp"

namespace glaf {
namespace {

TEST(FoldConstants, ArithmeticCollapses) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {8});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, liti(4) + liti(3));  // 0..7
  s.assign(a(idx("i")), lit(2.0) * 3.0 + 1.0);
  const FoldResult r = fold_constants(pb.build().value());
  EXPECT_GE(r.folded_exprs, 2);
  const Step& step = r.program.functions[0].steps[0];
  const auto end = fold_constant(*step.loops[0].end);
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(std::get<std::int64_t>(*end), 7);
  // rhs became a single literal 7.0.
  EXPECT_EQ(step.body[0].rhs->kind, Expr::Kind::kLiteral);
  EXPECT_DOUBLE_EQ(value_as_double(step.body[0].rhs->literal), 7.0);
}

TEST(FoldConstants, SizeParametersResolve) {
  // Reads of never-written global scalars with init data fold away.
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{16}}});
  auto a = pb.global("a", DataType::kDouble, {E(n)});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, E(n) - 1);
  s.assign(a(idx("i")), 0.0);
  const FoldResult r = fold_constants(pb.build().value());
  const auto end = fold_constant(*r.program.functions[0].steps[0].loops[0].end);
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(std::get<std::int64_t>(*end), 15);
}

TEST(FoldConstants, WrittenGlobalNotFolded) {
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{16}}});
  auto x = pb.global("x", DataType::kDouble);
  auto fb = pb.function("f");
  fb.step("s").assign(n(), liti(8));  // n is written: no longer constant
  fb.step("s2").assign(x(), E(n) * 2);
  const FoldResult r = fold_constants(pb.build().value());
  const Stmt& assign = r.program.functions[0].steps[1].body[0];
  EXPECT_NE(assign.rhs->kind, Expr::Kind::kLiteral);
}

TEST(FoldConstants, SemanticsPreserved) {
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{12}}});
  auto a = pb.global("a", DataType::kDouble, {E(n)});
  auto total = pb.global("total", DataType::kDouble);
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, E(n) - 1);
  s.assign(a(idx("i")), idx("i") * (lit(3.0) - 1.0) + call("ABS", {lit(-2.0)}));
  auto s2 = fb.step("s2");
  s2.foreach_("i", 0, E(n) - 1);
  s2.assign(total(), E(total) + a(idx("i")));
  const Program p = pb.build().value();
  const FoldResult r = fold_constants(p);
  EXPECT_TRUE(is_valid(validate(r.program)));

  Machine m1(p);
  Machine m2(r.program);
  ASSERT_TRUE(m1.call("f").is_ok());
  ASSERT_TRUE(m2.call("f").is_ok());
  EXPECT_EQ(m1.array("a").value(), m2.array("a").value());
  EXPECT_DOUBLE_EQ(m1.scalar("total").value(), m2.scalar("total").value());
}

TEST(FoldConstants, LibraryCallsWithConstantArgsFoldViaChildren) {
  // ABS(-2.0) folds only through literal substitution inside
  // fold_with_globals when reachable; calls themselves are not folded,
  // but their arguments are.
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble);
  pb.function("f").step("s").assign(
      x(), call("SQRT", {lit(2.0) * 2.0}));
  const FoldResult r = fold_constants(pb.build().value());
  const Stmt& assign = r.program.functions[0].steps[0].body[0];
  ASSERT_EQ(assign.rhs->kind, Expr::Kind::kCall);
  EXPECT_EQ(assign.rhs->args[0]->kind, Expr::Kind::kLiteral);
  EXPECT_DOUBLE_EQ(value_as_double(assign.rhs->args[0]->literal), 4.0);
}

TEST(FoldConstants, IdempotentOnFoldedProgram) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {4});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, 3);
  s.assign(a(idx("i")), lit(1.0) + 1.0);
  const FoldResult once = fold_constants(pb.build().value());
  const FoldResult twice = fold_constants(once.program);
  EXPECT_EQ(twice.folded_exprs, 0);
}

}  // namespace
}  // namespace glaf
