#include <gtest/gtest.h>

#include "analysis/transform.hpp"
#include "core/builder.hpp"
#include "core/validate.hpp"
#include "interp/machine.hpp"

namespace glaf {
namespace {

/// driver() calls a trivial void helper that writes through its params.
Program trivial_call_program() {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble);
  auto b = pb.global("b", DataType::kDouble);
  auto helper = pb.function("scale_pair");
  {
    auto x = helper.param("x", DataType::kDouble);
    auto y = helper.param("y", DataType::kDouble);
    auto s = helper.step("only");
    s.assign(x(), E(x) * 2.0);
    s.assign(y(), E(y) + E(x));
  }
  auto driver = pb.function("driver");
  driver.step("run").call_sub("scale_pair", {E(a), E(b)});
  return pb.build().value();
}

TEST(Inline, ReplacesCallWithSubstitutedBody) {
  const InlineResult r = inline_trivial_calls(trivial_call_program());
  EXPECT_EQ(r.inlined_calls, 1);
  const Function* driver = r.program.find_function("driver");
  ASSERT_EQ(driver->steps[0].body.size(), 2u);
  EXPECT_EQ(driver->steps[0].body[0].kind, Stmt::Kind::kAssign);
  // The substituted statements write the caller's grids.
  EXPECT_EQ(r.program.grid(driver->steps[0].body[0].lhs.grid).name, "a");
  EXPECT_EQ(r.program.grid(driver->steps[0].body[1].lhs.grid).name, "b");
}

TEST(Inline, ResultStillValidatesAndRunsIdentically) {
  const Program p = trivial_call_program();
  const InlineResult r = inline_trivial_calls(p);
  EXPECT_TRUE(is_valid(validate(r.program)))
      << render_diagnostics(validate(r.program));

  Machine m1(p);
  Machine m2(r.program);
  for (Machine* m : {&m1, &m2}) {
    ASSERT_TRUE(m->set_scalar("a", 3.0).is_ok());
    ASSERT_TRUE(m->set_scalar("b", 1.0).is_ok());
    ASSERT_TRUE(m->call("driver").is_ok());
  }
  EXPECT_DOUBLE_EQ(m1.scalar("a").value(), m2.scalar("a").value());
  EXPECT_DOUBLE_EQ(m1.scalar("b").value(), m2.scalar("b").value());
  // Inlined version makes one fewer function call.
  EXPECT_EQ(m1.stats().function_calls, 2u);
  EXPECT_EQ(m2.stats().function_calls, 1u);
}

TEST(Inline, WholeGridArgumentsSubstitute) {
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{4}}});
  auto data = pb.global("data", DataType::kDouble, {E(n)});
  auto helper = pb.function("zero_first");
  {
    auto v = helper.param("v", DataType::kDouble, {E(n)});
    helper.step("only").assign(v(liti(0)), 0.0);
  }
  auto driver = pb.function("driver");
  driver.step("run").call_sub("zero_first", {E(data)});
  const Program p = pb.build().value();
  const InlineResult r = inline_trivial_calls(p);
  EXPECT_EQ(r.inlined_calls, 1);
  const Function* d = r.program.find_function("driver");
  EXPECT_EQ(r.program.grid(d->steps[0].body[0].lhs.grid).name, "data");
}

TEST(Inline, LoopedCalleeNotInlined) {
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{4}}});
  auto data = pb.global("data", DataType::kDouble, {E(n)});
  auto helper = pb.function("fill");
  {
    auto v = helper.param("v", DataType::kDouble, {E(n)});
    auto s = helper.step("loop");
    s.foreach_("i", 0, E(n) - 1);
    s.assign(v(idx("i")), 1.0);
  }
  auto driver = pb.function("driver");
  driver.step("run").call_sub("fill", {E(data)});
  const InlineResult r = inline_trivial_calls(pb.build().value());
  EXPECT_EQ(r.inlined_calls, 0);
}

TEST(Inline, ExpressionArgumentBlocksInlining) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble);
  auto helper = pb.function("setit");
  {
    auto x = helper.param("x", DataType::kDouble);
    helper.step("only").assign(x(), 1.0);
  }
  auto driver = pb.function("driver");
  // Argument is an expression, not a plain grid: by-value semantics would
  // change under naive substitution, so the pass must refuse.
  driver.step("run").call_sub("setit", {E(a) + 1.0});
  const InlineResult r = inline_trivial_calls(pb.build().value());
  EXPECT_EQ(r.inlined_calls, 0);
}

TEST(Inline, CallsInsideIfArmsInlined) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble);
  auto helper = pb.function("bump");
  {
    auto x = helper.param("x", DataType::kDouble);
    helper.step("only").assign(x(), E(x) + 1.0);
  }
  auto driver = pb.function("driver");
  driver.step("run").if_(E(a) > 0.0, [&](BodyBuilder& b) {
    b.call_sub("bump", {E(a)});
  });
  const InlineResult r = inline_trivial_calls(pb.build().value());
  EXPECT_EQ(r.inlined_calls, 1);
  const Stmt& s = r.program.find_function("driver")->steps[0].body[0];
  ASSERT_EQ(s.kind, Stmt::Kind::kIf);
  ASSERT_EQ(s.arms[0].body.size(), 1u);
  EXPECT_EQ(s.arms[0].body[0].kind, Stmt::Kind::kAssign);
}

TEST(Inline, NestedCalleeNotInlined) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble);
  auto inner = pb.function("inner");
  inner.step("s").assign(a(), 1.0);
  auto middle = pb.function("middle");
  middle.step("s").call_sub("inner", {});
  auto driver = pb.function("driver");
  driver.step("s").call_sub("middle", {});
  const InlineResult r = inline_trivial_calls(pb.build().value());
  // inner is inlinable into middle; middle (containing a call) is not
  // inlinable into driver in one pass.
  EXPECT_EQ(r.inlined_calls, 1);
}

}  // namespace
}  // namespace glaf
