#include "analysis/access.hpp"

#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "testing/programs.hpp"

namespace glaf {
namespace {

TEST(Access, SaxpyReadsAndWrites) {
  const Program p = testing::saxpy_program();
  const Function& fn = *p.find_function("saxpy");
  const EffectsMap effects = compute_effects(p);
  const StepAccesses acc = collect_step_accesses(p, fn.steps[0], effects);

  int writes = 0;
  int reads = 0;
  for (const ArrayAccess& a : acc.accesses) {
    (a.is_write ? writes : reads)++;
  }
  EXPECT_EQ(writes, 1);  // y[i]
  EXPECT_EQ(reads, 3);   // a, x[i], y[i]
  EXPECT_FALSE(acc.has_return);
  EXPECT_TRUE(acc.callees.empty());
}

TEST(Access, SubscriptAffineFormsExtracted) {
  const Program p = testing::prefix_program();
  const Function& fn = *p.find_function("prefix");
  const StepAccesses acc =
      collect_step_accesses(p, fn.steps[0], compute_effects(p));
  bool found_shifted = false;
  for (const ArrayAccess& a : acc.accesses) {
    if (!a.is_write && !a.subs.empty() && a.subs[0].affine &&
        a.subs[0].constant == -1 && a.subs[0].coeff("i") == 1) {
      found_shifted = true;
    }
  }
  EXPECT_TRUE(found_shifted);
}

TEST(Access, ConditionalFlagSetUnderIf) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {8});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, 7);
  s.if_(a(idx("i")) > 0.0,
        [&](BodyBuilder& b) { b.assign(a(idx("i")), 0.0); });
  const Program p = pb.build().value();
  const StepAccesses acc = collect_step_accesses(
      p, p.functions[0].steps[0], compute_effects(p));
  bool conditional_write = false;
  for (const ArrayAccess& x : acc.accesses) {
    if (x.is_write) conditional_write = x.conditional;
  }
  EXPECT_TRUE(conditional_write);
}

TEST(Effects, ParamReadWriteFlags) {
  ProgramBuilder pb("m");
  auto fb = pb.function("f");
  auto in = fb.param("inp", DataType::kDouble, {4});
  auto out = fb.param("outp", DataType::kDouble, {4});
  auto s = fb.step("s");
  s.foreach_("i", 0, 3);
  s.assign(out(idx("i")), in(idx("i")) * 2.0);
  const Program p = pb.build().value();
  const EffectsMap fx = compute_effects(p);
  const FunctionEffects& f = fx.at(p.functions[0].id);
  ASSERT_EQ(f.param_read.size(), 2u);
  EXPECT_TRUE(f.param_read[0]);
  EXPECT_FALSE(f.param_written[0]);
  EXPECT_TRUE(f.param_written[1]);
  EXPECT_FALSE(f.param_read[1]);
}

TEST(Effects, GlobalWritesPropagateThroughCalls) {
  ProgramBuilder pb("m");
  auto g = pb.global("g", DataType::kDouble, {4});
  auto inner = pb.function("inner");
  {
    auto s = inner.step("s");
    s.foreach_("i", 0, 3);
    s.assign(g(idx("i")), 1.0);
  }
  auto outer = pb.function("outer");
  outer.step("s").call_sub("inner", {});
  const Program p = pb.build().value();
  const EffectsMap fx = compute_effects(p);
  const FunctionEffects& outer_fx = fx.at(p.find_function("outer")->id);
  EXPECT_EQ(outer_fx.global_writes.count(g.id()), 1u);
}

TEST(Effects, ParamEffectsMapThroughWholeGridArgs) {
  ProgramBuilder pb("m");
  auto callee = pb.function("callee");
  {
    auto v = callee.param("v", DataType::kDouble, {4});
    auto s = callee.step("s");
    s.foreach_("i", 0, 3);
    s.assign(v(idx("i")), 0.0);
  }
  auto caller = pb.function("caller");
  {
    auto mine = caller.param("mine", DataType::kDouble, {4});
    caller.step("s").call_sub("callee", {E(mine)});
  }
  const Program p = pb.build().value();
  const EffectsMap fx = compute_effects(p);
  const FunctionEffects& caller_fx = fx.at(p.find_function("caller")->id);
  ASSERT_EQ(caller_fx.param_written.size(), 1u);
  EXPECT_TRUE(caller_fx.param_written[0]);
}

TEST(Access, CallContributesCalleeGlobalTouches) {
  ProgramBuilder pb("m");
  auto g = pb.global("shared", DataType::kDouble, {4});
  auto inner = pb.function("inner");
  {
    auto s = inner.step("s");
    s.foreach_("k", 0, 3);
    s.assign(g(idx("k")), 2.0);
  }
  auto outer = pb.function("outer");
  {
    auto s = outer.step("loop");
    s.foreach_("c", 0, 9);
    s.call_sub("inner", {});
  }
  const Program p = pb.build().value();
  const EffectsMap fx = compute_effects(p);
  const StepAccesses acc = collect_step_accesses(
      p, p.find_function("outer")->steps[0], fx);
  bool whole_write = false;
  for (const ArrayAccess& a : acc.accesses) {
    if (a.is_write && a.grid == g.id() && a.whole_grid) whole_write = true;
  }
  EXPECT_TRUE(whole_write);
  ASSERT_EQ(acc.callees.size(), 1u);
  EXPECT_EQ(acc.callees[0], "inner");
}

TEST(Access, ReturnDetected) {
  ProgramBuilder pb("m");
  auto fb = pb.function("f", DataType::kInt);
  auto a = fb.param("a", DataType::kDouble, {8});
  auto s = fb.step("s");
  s.foreach_("i", 0, 7);
  s.if_(a(idx("i")) > 0.5, [&](BodyBuilder& b) { b.ret(idx("i")); });
  s.ret(liti(-1));
  const Program p = pb.build().value();
  const StepAccesses acc =
      collect_step_accesses(p, p.functions[0].steps[0], compute_effects(p));
  EXPECT_TRUE(acc.has_return);
}

}  // namespace
}  // namespace glaf
