#include "analysis/affine.hpp"

#include <gtest/gtest.h>

#include "core/builder.hpp"

namespace glaf {
namespace {

const std::set<std::string> kIJ = {"i", "j"};

AffineForm form(const E& e) { return extract_affine(*e.node(), kIJ); }

TEST(Affine, ConstantsAndIndices) {
  const AffineForm c = form(liti(5));
  EXPECT_TRUE(c.affine);
  EXPECT_EQ(c.constant, 5);
  EXPECT_TRUE(c.invariant());

  const AffineForm i = form(idx("i"));
  EXPECT_TRUE(i.affine);
  EXPECT_EQ(i.coeff("i"), 1);
  EXPECT_FALSE(i.invariant());
}

TEST(Affine, LinearCombination) {
  // 2*i + j - 3
  const AffineForm f = form(liti(2) * idx("i") + idx("j") - liti(3));
  EXPECT_TRUE(f.affine);
  EXPECT_EQ(f.coeff("i"), 2);
  EXPECT_EQ(f.coeff("j"), 1);
  EXPECT_EQ(f.constant, -3);
}

TEST(Affine, ScaleOnEitherSide) {
  EXPECT_EQ(form(idx("i") * liti(4)).coeff("i"), 4);
  EXPECT_EQ(form(liti(4) * idx("i")).coeff("i"), 4);
}

TEST(Affine, NegationFlipsSigns) {
  const AffineForm f = form(-(idx("i") - liti(2)));
  EXPECT_EQ(f.coeff("i"), -1);
  EXPECT_EQ(f.constant, 2);
}

TEST(Affine, CancellationRemovesVariable) {
  const AffineForm f = form(idx("i") - idx("i") + liti(1));
  EXPECT_TRUE(f.affine);
  EXPECT_EQ(f.coeff("i"), 0);
  EXPECT_TRUE(f.invariant());
  EXPECT_EQ(f.constant, 1);
}

TEST(Affine, NonLoopIndexBecomesSymbol) {
  // "k" is not in the tested loop's index set: loop-invariant symbol.
  const AffineForm f = form(idx("k") + idx("i"));
  EXPECT_TRUE(f.affine);
  EXPECT_EQ(f.coeff("i"), 1);
  EXPECT_FALSE(f.symbol.empty());
}

TEST(Affine, IndirectionIsNonAffine) {
  // a[i] used as a subscript (unstructured-mesh indirection).
  auto read = make_grid_read(0, {make_index("i")});
  const AffineForm f = extract_affine(*read, kIJ);
  EXPECT_FALSE(f.affine);
}

TEST(Affine, InvariantGridReadIsSymbol) {
  // a[0] does not vary with i/j: symbolic invariant.
  auto read = make_grid_read(0, {make_int(0)});
  const AffineForm f = extract_affine(*read, kIJ);
  EXPECT_TRUE(f.affine);
  EXPECT_TRUE(f.invariant());
  EXPECT_FALSE(f.symbol.empty());
}

TEST(Affine, ProductOfIndicesIsNonAffine) {
  EXPECT_FALSE(form(idx("i") * idx("j")).affine);
}

TEST(Affine, SameInvariantPartComparison) {
  const AffineForm a = form(idx("i") + liti(1));
  const AffineForm b = form(idx("i") + liti(1));
  const AffineForm c = form(idx("i") + liti(2));
  EXPECT_TRUE(a.same_invariant_part(b));
  EXPECT_FALSE(a.same_invariant_part(c));
}

TEST(Affine, ToStringReadable) {
  EXPECT_EQ(affine_to_string(form(liti(2) * idx("i") + liti(3))), "2*i + 3");
  EXPECT_EQ(affine_to_string(form(idx("i"))), "i");
  EXPECT_EQ(affine_to_string(AffineForm{}), "<non-affine>");
}

}  // namespace
}  // namespace glaf
