#include "analysis/transform.hpp"

#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "interp/machine.hpp"

namespace glaf {
namespace {

Program rectangular_program() {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {8, 12});
  auto fb = pb.function("fill");
  auto s = fb.step("s");
  s.foreach_("i", 0, 7).foreach_("j", 0, 11);
  s.assign(a(idx("i"), idx("j")), idx("i") * 100 + idx("j"));
  return pb.build().value();
}

TEST(Interchange, SwapsLoopOrder) {
  const Program p = rectangular_program();
  const auto swapped = interchange_loops(p, "fill", "s", 0, 1);
  ASSERT_TRUE(swapped.is_ok()) << swapped.status().message();
  const Step& step = swapped.value().find_function("fill")->steps[0];
  EXPECT_EQ(step.loops[0].index_var, "j");
  EXPECT_EQ(step.loops[1].index_var, "i");
}

TEST(Interchange, ResultsUnchangedAfterInterchange) {
  // Property: a legal interchange never changes program output.
  const Program p = rectangular_program();
  const Program q = interchange_loops(p, "fill", "s", 0, 1).value();
  Machine mp(p);
  Machine mq(q);
  ASSERT_TRUE(mp.call("fill").is_ok());
  ASSERT_TRUE(mq.call("fill").is_ok());
  EXPECT_EQ(mp.array("a").value(), mq.array("a").value());
}

TEST(Interchange, TriangularNestRejected) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {8, 8});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, 7).foreach_("j", 0, idx("i"));
  s.assign(a(idx("i"), idx("j")), 1.0);
  const Program p = pb.build().value();
  const auto r = interchange_loops(p, "f", "s", 0, 1);
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("triangular"), std::string::npos);
}

TEST(Interchange, CarriedDependenceRejected) {
  // a[i][j] = a[i-1][j] + 1 carries a dependence on i: not interchangeable
  // by our conservative rule (band must be fully parallel).
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {8, 8});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 1, 7).foreach_("j", 0, 7);
  s.assign(a(idx("i"), idx("j")), a(idx("i") - 1, idx("j")) + 1.0);
  const Program p = pb.build().value();
  EXPECT_FALSE(interchange_loops(p, "f", "s", 0, 1).is_ok());
}

TEST(Interchange, UnknownTargetsReported) {
  const Program p = rectangular_program();
  EXPECT_EQ(interchange_loops(p, "nope", "s", 0, 1).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(interchange_loops(p, "fill", "nope", 0, 1).status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(interchange_loops(p, "fill", "s", 0, 5).is_ok());
  EXPECT_FALSE(interchange_loops(p, "fill", "s", 1, 1).is_ok());
}

TEST(Interchange, ThreeDeepBandPermutes) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {4, 5, 6});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, 3).foreach_("j", 0, 4).foreach_("k", 0, 5);
  s.assign(a(idx("i"), idx("j"), idx("k")),
           idx("i") * 100 + idx("j") * 10 + idx("k"));
  const Program p = pb.build().value();
  // Swap outer and innermost.
  const auto r = interchange_loops(p, "f", "s", 0, 2);
  ASSERT_TRUE(r.is_ok()) << r.status().message();
  const Step& step = r.value().find_function("f")->steps[0];
  EXPECT_EQ(step.loops[0].index_var, "k");
  EXPECT_EQ(step.loops[2].index_var, "i");
  Machine mp(p);
  Machine mq(r.value());
  ASSERT_TRUE(mp.call("f").is_ok());
  ASSERT_TRUE(mq.call("f").is_ok());
  EXPECT_EQ(mp.array("a").value(), mq.array("a").value());
}

TEST(Interchange, OriginalProgramUntouched) {
  const Program p = rectangular_program();
  (void)interchange_loops(p, "fill", "s", 0, 1);
  EXPECT_EQ(p.find_function("fill")->steps[0].loops[0].index_var, "i");
}

}  // namespace
}  // namespace glaf
