#include "analysis/dependence.hpp"

#include <gtest/gtest.h>

namespace glaf {
namespace {

ArrayAccess access(bool write, std::vector<AffineForm> subs) {
  ArrayAccess a;
  a.grid = 0;
  a.is_write = write;
  a.subs = std::move(subs);
  return a;
}

AffineForm aff(std::int64_t c, std::int64_t i_coeff = 0,
               std::string symbol = {}) {
  AffineForm f;
  f.affine = true;
  f.constant = c;
  if (i_coeff != 0) f.coeffs["i"] = i_coeff;
  f.symbol = std::move(symbol);
  return f;
}

AffineForm non_affine() { return AffineForm{}; }

TEST(Dependence, SameElementEachIterationIsLoopIndependent) {
  // a[i] write vs a[i] read: distance 0.
  const auto w = access(true, {aff(0, 1)});
  const auto r = access(false, {aff(0, 1)});
  EXPECT_EQ(test_dependence(w, r, "i", 100), DepResult::kLoopIndependent);
}

TEST(Dependence, ShiftedAccessIsCarried) {
  // a[i] write vs a[i-1] read: distance 1.
  const auto w = access(true, {aff(0, 1)});
  const auto r = access(false, {aff(-1, 1)});
  EXPECT_EQ(test_dependence(w, r, "i", 100), DepResult::kCarried);
}

TEST(Dependence, StrongSivNonDivisibleIsIndependent) {
  // a[2i] vs a[2i+1]: parity separation.
  const auto w = access(true, {aff(0, 2)});
  const auto r = access(false, {aff(1, 2)});
  EXPECT_EQ(test_dependence(w, r, "i", 100), DepResult::kIndependent);
}

TEST(Dependence, DistanceBeyondTripCountIsIndependent) {
  // a[i] vs a[i+100] with 50 iterations.
  const auto w = access(true, {aff(0, 1)});
  const auto r = access(false, {aff(100, 1)});
  EXPECT_EQ(test_dependence(w, r, "i", 50), DepResult::kIndependent);
  EXPECT_EQ(test_dependence(w, r, "i", -1), DepResult::kCarried);
}

TEST(Dependence, ZivDistinctConstantsIndependent) {
  const auto w = access(true, {aff(3)});
  const auto r = access(false, {aff(5)});
  EXPECT_EQ(test_dependence(w, r, "i", 10), DepResult::kIndependent);
}

TEST(Dependence, ZivSameConstantIsCarried) {
  // a[3] touched by every iteration behaves like a shared scalar: the
  // write-read pair is carried (needs privatization or reduction).
  const auto w = access(true, {aff(3)});
  const auto r = access(false, {aff(3)});
  EXPECT_EQ(test_dependence(w, r, "i", 10), DepResult::kCarried);
}

TEST(Dependence, GcdTestProvesIndependence) {
  // a[2i] vs a[4i+1]: gcd(2,4)=2 does not divide 1.
  AffineForm f1 = aff(0, 2);
  AffineForm f2 = aff(1);
  f2.coeffs["i"] = 4;
  const auto w = access(true, {f1});
  const auto r = access(false, {f2});
  EXPECT_EQ(test_dependence(w, r, "i", 100), DepResult::kIndependent);
}

TEST(Dependence, GcdDividesIsConservativelyCarried) {
  // a[2i] vs a[4i+2]: gcd divides; weak SIV falls back to carried.
  AffineForm f2 = aff(2);
  f2.coeffs["i"] = 4;
  const auto w = access(true, {aff(0, 2)});
  const auto r = access(false, {f2});
  EXPECT_EQ(test_dependence(w, r, "i", 100), DepResult::kCarried);
}

TEST(Dependence, MismatchedSymbolsAreConservative) {
  const auto w = access(true, {aff(0, 1, "n")});
  const auto r = access(false, {aff(0, 1, "m")});
  EXPECT_EQ(test_dependence(w, r, "i", 100), DepResult::kCarried);
}

TEST(Dependence, MatchingSymbolsComparable) {
  // a[i+n] vs a[i+n]: distance 0 despite symbolic part.
  const auto w = access(true, {aff(0, 1, "n")});
  const auto r = access(false, {aff(0, 1, "n")});
  EXPECT_EQ(test_dependence(w, r, "i", 100), DepResult::kLoopIndependent);
}

TEST(Dependence, NonAffineIsCarried) {
  const auto w = access(true, {non_affine()});
  const auto r = access(false, {aff(0, 1)});
  EXPECT_EQ(test_dependence(w, r, "i", 100), DepResult::kCarried);
}

TEST(Dependence, AnyIndependentDimensionDecides) {
  // a[i][3] vs a[i][5]: second dim proves disjoint.
  const auto w = access(true, {aff(0, 1), aff(3)});
  const auto r = access(false, {aff(0, 1), aff(5)});
  EXPECT_EQ(test_dependence(w, r, "i", 100), DepResult::kIndependent);
}

TEST(Dependence, ScalarIsAlwaysCarried) {
  const auto w = access(true, {});
  const auto r = access(false, {});
  EXPECT_EQ(test_dependence(w, r, "i", 100), DepResult::kCarried);
}

TEST(Dependence, WholeGridIsCarried) {
  auto w = access(true, {});
  w.whole_grid = true;
  const auto r = access(false, {aff(0, 1)});
  EXPECT_EQ(test_dependence(w, r, "i", 100), DepResult::kCarried);
}

TEST(Dependence, InnerIndexWithEqualCoeffsDeltaNonZeroIsUnknown) {
  // a[j] vs a[j+1] tested w.r.t. i: inner loop can realign -> carried.
  AffineForm f1 = aff(0);
  f1.coeffs["j"] = 1;
  AffineForm f2 = aff(1);
  f2.coeffs["j"] = 1;
  const auto w = access(true, {f1});
  const auto r = access(false, {f2});
  EXPECT_EQ(test_dependence(w, r, "i", 100), DepResult::kCarried);
}

TEST(Dependence, ToStringNames) {
  EXPECT_STREQ(to_string(DepResult::kIndependent), "independent");
  EXPECT_STREQ(to_string(DepResult::kCarried), "carried");
}

}  // namespace
}  // namespace glaf
