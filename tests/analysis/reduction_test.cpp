#include "analysis/reduction.hpp"

#include <gtest/gtest.h>

#include "core/builder.hpp"

namespace glaf {
namespace {

const std::set<std::string> kI = {"i"};

struct Rig {
  Rig() : pb("m") {
    total = pb.global("total", DataType::kDouble);
    x = pb.global("x", DataType::kDouble, {16});
    best = pb.global("best", DataType::kDouble);
    program = pb.build_unchecked();
  }
  ProgramBuilder pb;
  GridHandle total, x, best;
  Program program;
};

Stmt assign_of(const Access& lhs, const E& rhs) {
  return make_assign(lhs.ir(), rhs.node());
}

TEST(Reduction, SumMatchesBothOperandOrders) {
  Rig r;
  const auto m1 = match_reduction(
      r.program, assign_of(r.total(), E(r.total) + r.x(idx("i"))), kI);
  ASSERT_TRUE(m1.has_value());
  EXPECT_EQ(m1->op, ReduceOp::kSum);

  const auto m2 = match_reduction(
      r.program, assign_of(r.total(), r.x(idx("i")) + E(r.total)), kI);
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(m2->op, ReduceOp::kSum);
}

TEST(Reduction, SubtractionOnlyLeftForm) {
  Rig r;
  EXPECT_TRUE(match_reduction(
                  r.program,
                  assign_of(r.total(), E(r.total) - r.x(idx("i"))), kI)
                  .has_value());
  EXPECT_FALSE(match_reduction(
                   r.program,
                   assign_of(r.total(), r.x(idx("i")) - E(r.total)), kI)
                   .has_value());
}

TEST(Reduction, ProductMatches) {
  Rig r;
  const auto m = match_reduction(
      r.program, assign_of(r.total(), E(r.total) * r.x(idx("i"))), kI);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->op, ReduceOp::kProd);
}

TEST(Reduction, MinMaxViaIntrinsics) {
  Rig r;
  const auto mn = match_reduction(
      r.program, assign_of(r.best(), call("MIN", {E(r.best), r.x(idx("i"))})),
      kI);
  ASSERT_TRUE(mn.has_value());
  EXPECT_EQ(mn->op, ReduceOp::kMin);

  const auto mx = match_reduction(
      r.program, assign_of(r.best(), call("MAX", {r.x(idx("i")), E(r.best)})),
      kI);
  ASSERT_TRUE(mx.has_value());
  EXPECT_EQ(mx->op, ReduceOp::kMax);
}

TEST(Reduction, TargetInCombinedExpressionRejected) {
  Rig r;
  // total = total + total * 0.5 — target appears twice.
  EXPECT_FALSE(match_reduction(
                   r.program,
                   assign_of(r.total(), E(r.total) + E(r.total) * 0.5), kI)
                   .has_value());
}

TEST(Reduction, VaryingSubscriptRejected) {
  Rig r;
  // x[i] = x[i] + 1 is an elementwise update, not a reduction.
  EXPECT_FALSE(match_reduction(
                   r.program,
                   assign_of(r.x(idx("i")), r.x(idx("i")) + 1.0), kI)
                   .has_value());
}

TEST(Reduction, InvariantElementAccepted) {
  Rig r;
  // x[3] = x[3] + v is a reduction into a fixed element.
  const auto m = match_reduction(
      r.program, assign_of(r.x(liti(3)), r.x(liti(3)) + 1.0), kI);
  EXPECT_TRUE(m.has_value());
}

TEST(Reduction, PlainAssignRejected) {
  Rig r;
  EXPECT_FALSE(
      match_reduction(r.program, assign_of(r.total(), r.x(idx("i"))), kI)
          .has_value());
}

TEST(Atomic, UpdateShapeMatches) {
  Rig r;
  // x[i] = x[i] + d: atomic-eligible elementwise accumulation.
  EXPECT_TRUE(matches_atomic_update(
      r.program, assign_of(r.x(idx("i")), r.x(idx("i")) + 1.5)));
}

TEST(Atomic, MinNotAtomicEligible) {
  Rig r;
  EXPECT_FALSE(matches_atomic_update(
      r.program,
      assign_of(r.best(), call("MIN", {E(r.best), r.x(idx("i"))}))));
}

TEST(Atomic, PlainStoreNotAtomic) {
  Rig r;
  EXPECT_FALSE(matches_atomic_update(
      r.program, assign_of(r.x(idx("i")), 0.0)));
}

TEST(ReduceOp, Spellings) {
  EXPECT_STREQ(omp_spelling(ReduceOp::kSum), "+");
  EXPECT_STREQ(omp_spelling(ReduceOp::kProd), "*");
  EXPECT_STREQ(omp_spelling(ReduceOp::kMin), "min");
  EXPECT_STREQ(to_string(ReduceOp::kMax), "max");
}

}  // namespace
}  // namespace glaf
