#include "analysis/parallelize.hpp"

#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "testing/programs.hpp"

namespace glaf {
namespace {

StepVerdict analyze_first(const Program& p, const std::string& fn_name,
                          const TweaksByFunction& tweaks = {}) {
  const ProgramAnalysis pa = analyze_program(p, tweaks);
  const Function* fn = p.find_function(fn_name);
  return pa.verdict(fn->id, 0);
}

TEST(Parallelize, SaxpyIsParallel) {
  const Program p = testing::saxpy_program();
  const StepVerdict v = analyze_first(p, "saxpy");
  EXPECT_TRUE(v.has_loop);
  EXPECT_TRUE(v.parallelizable);
  EXPECT_TRUE(v.reductions.empty());
  EXPECT_TRUE(v.private_grids.empty());
}

TEST(Parallelize, PrefixIsSerial) {
  const Program p = testing::prefix_program();
  const StepVerdict v = analyze_first(p, "prefix");
  EXPECT_TRUE(v.has_loop);
  EXPECT_FALSE(v.parallelizable);
}

TEST(Parallelize, ReductionRecognized) {
  const Program p = testing::reduce_program();
  const StepVerdict v = analyze_first(p, "reduce_sum");
  EXPECT_TRUE(v.parallelizable);
  ASSERT_EQ(v.reductions.size(), 1u);
  EXPECT_EQ(v.reductions[0].op, ReduceOp::kSum);
  EXPECT_EQ(p.grid(v.reductions[0].grid).name, "total");
}

TEST(Parallelize, LocalScalarPrivatized) {
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{8}}});
  auto a = pb.global("a", DataType::kDouble, {E(n)});
  auto fb = pb.function("f");
  auto t = fb.local("t", DataType::kDouble);
  auto s = fb.step("s");
  s.foreach_("i", 0, E(n) - 1);
  s.assign(t(), a(idx("i")) * 2.0);     // write-before-read
  s.assign(a(idx("i")), E(t) + 1.0);
  const Program p = pb.build().value();
  const StepVerdict v = analyze_first(p, "f");
  EXPECT_TRUE(v.parallelizable);
  ASSERT_EQ(v.private_grids.size(), 1u);
  EXPECT_EQ(p.grid(v.private_grids[0]).name, "t");
}

TEST(Parallelize, LiveOutLocalNotPrivatized) {
  // A local written in one step and read in a later step must NOT be
  // privatized: a private copy's value is discarded at region end.
  // (Regression: caught by compiling the generated FUN3D decomposition.)
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{8}}});
  auto a = pb.global("a", DataType::kDouble, {E(n)});
  auto fb = pb.function("f");
  auto t = fb.local("t", DataType::kDouble, {E(n)});
  auto s1 = fb.step("produce");
  s1.foreach_("i", 0, E(n) - 1);
  s1.assign(t(idx("i")), a(idx("i")) * 2.0);
  auto s2 = fb.step("consume");
  s2.foreach_("i", 0, E(n) - 1);
  s2.assign(a(idx("i")), t(idx("i")) + 1.0);
  const Program p = pb.build().value();
  const ProgramAnalysis pa = analyze_program(p);
  const Function* fn = p.find_function("f");
  // Still parallel (elementwise), but t must be shared, not private.
  const StepVerdict& produce = pa.verdict(fn->id, 0);
  EXPECT_TRUE(produce.parallelizable);
  EXPECT_TRUE(produce.private_grids.empty());
}

TEST(Parallelize, SavedLocalNeverPrivatized) {
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{8}}});
  auto a = pb.global("a", DataType::kDouble, {E(n)});
  auto fb = pb.function("f");
  auto t = fb.local("t", DataType::kDouble, {E(n)}, {.save = true});
  auto s = fb.step("s");
  s.foreach_("i", 0, E(n) - 1);
  s.assign(t(idx("i")), a(idx("i")));
  s.assign(a(idx("i")), t(idx("i")) * 2.0);
  const Program p = pb.build().value();
  const StepVerdict v = analyze_first(p, "f");
  EXPECT_TRUE(v.private_grids.empty());
}

TEST(Parallelize, GlobalScalarReadBeforeWriteBlocks) {
  // t is read before written within the iteration: not privatizable.
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{8}}});
  auto a = pb.global("a", DataType::kDouble, {E(n)});
  auto fb = pb.function("f");
  auto t = fb.local("t", DataType::kDouble);
  auto s = fb.step("s");
  s.foreach_("i", 0, E(n) - 1);
  s.assign(a(idx("i")), E(t) + 1.0);  // read first
  s.assign(t(), a(idx("i")));
  const Program p = pb.build().value();
  EXPECT_FALSE(analyze_first(p, "f").parallelizable);
}

TEST(Parallelize, CollapseOfPerfectNest) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {60, 60});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, 59).foreach_("j", 0, 59);
  s.assign(a(idx("i"), idx("j")), idx("i") + idx("j") * 2);
  const Program p = pb.build().value();
  const StepVerdict v = analyze_first(p, "f");
  EXPECT_TRUE(v.parallelizable);
  EXPECT_EQ(v.collapse, 2);
  EXPECT_EQ(v.trip_count, 3600);
}

TEST(Parallelize, TriangularLoopNotCollapsed) {
  ProgramBuilder pb("m");
  auto a = pb.global("a", DataType::kDouble, {64, 64});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, 63).foreach_("j", 0, idx("i"));
  s.assign(a(idx("i"), idx("j")), 1.0);
  const Program p = pb.build().value();
  const StepVerdict v = analyze_first(p, "f");
  EXPECT_TRUE(v.parallelizable);
  EXPECT_EQ(v.collapse, 1);
  EXPECT_EQ(v.trip_count, -1);  // inner bound not constant
}

TEST(Parallelize, EarlyReturnNeedsCriticalTweak) {
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{8}}});
  auto a = pb.global("a", DataType::kDouble, {E(n)});
  auto fb = pb.function("search", DataType::kInt);
  auto s = fb.step("s");
  s.foreach_("i", 0, E(n) - 1);
  s.if_(a(idx("i")) > 0.5, [&](BodyBuilder& b) { b.ret(idx("i")); });
  s.ret(liti(-1));
  const Program p = pb.build().value();

  const StepVerdict no_tweak = analyze_first(p, "search");
  EXPECT_TRUE(no_tweak.needs_critical);
  EXPECT_FALSE(no_tweak.parallelizable);

  TweaksByFunction tweaks;
  tweaks["search"].allow_critical = true;
  const StepVerdict with_tweak = analyze_first(p, "search", tweaks);
  EXPECT_TRUE(with_tweak.needs_critical);
  EXPECT_TRUE(with_tweak.parallelizable);
}

TEST(Parallelize, IndirectAccumulationBecomesAtomic) {
  // out[index[i]] = out[index[i]] + w[i]: indirection, atomic eligible.
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{8}}});
  auto index = pb.global("index", DataType::kInt, {E(n)});
  auto w = pb.global("w", DataType::kDouble, {E(n)});
  auto out = pb.global("out", DataType::kDouble, {E(n)});
  auto fb = pb.function("scatter");
  auto s = fb.step("s");
  s.foreach_("i", 0, E(n) - 1);
  s.assign(out(index(idx("i"))), out(index(idx("i"))) + w(idx("i")));
  const Program p = pb.build().value();
  const StepVerdict v = analyze_first(p, "scatter");
  EXPECT_TRUE(v.parallelizable);
  ASSERT_EQ(v.atomic_grids.size(), 1u);
  EXPECT_EQ(p.grid(v.atomic_grids[0]).name, "out");
}

TEST(Parallelize, IndirectPlainStoreBlocks) {
  // out[index[i]] = w[i]: not an accumulation; conservative serial.
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{8}}});
  auto index = pb.global("index", DataType::kInt, {E(n)});
  auto w = pb.global("w", DataType::kDouble, {E(n)});
  auto out = pb.global("out", DataType::kDouble, {E(n)});
  auto fb = pb.function("scatter");
  auto s = fb.step("s");
  s.foreach_("i", 0, E(n) - 1);
  s.assign(out(index(idx("i"))), w(idx("i")));
  const Program p = pb.build().value();
  EXPECT_FALSE(analyze_first(p, "scatter").parallelizable);
}

TEST(Parallelize, ManualTweakForcesPrivate) {
  // A global scratch array blocks parallelization until marked private —
  // the §4.2.1 scenario (219 variables declared OpenMP private).
  ProgramBuilder pb("m");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{8}}});
  auto scratch = pb.global("scratch", DataType::kDouble, {E(n)});
  auto a = pb.global("a", DataType::kDouble, {E(n)});
  auto fb = pb.function("f");
  auto s = fb.step("s");
  s.foreach_("i", 0, E(n) - 1);
  s.assign(scratch(liti(0)), a(idx("i")));
  s.assign(a(idx("i")), scratch(liti(0)) * 2.0);
  const Program p = pb.build().value();

  EXPECT_FALSE(analyze_first(p, "f").parallelizable);

  TweaksByFunction tweaks;
  tweaks["f"].force_private.insert(scratch.id());
  const StepVerdict v = analyze_first(p, "f", tweaks);
  EXPECT_TRUE(v.parallelizable);
  ASSERT_EQ(v.private_grids.size(), 1u);
}

TEST(Parallelize, CallWritingSharedGlobalBlocksOuterLoop) {
  ProgramBuilder pb("m");
  auto g = pb.global("g", DataType::kDouble, {4});
  auto inner = pb.function("inner");
  {
    auto s = inner.step("s");
    s.foreach_("k", 0, 3);
    s.assign(g(idx("k")), 1.0);
  }
  auto outer = pb.function("outer");
  {
    auto s = outer.step("loop");
    s.foreach_("c", 0, 9);
    s.call_sub("inner", {});
  }
  const Program p = pb.build().value();
  EXPECT_FALSE(analyze_first(p, "outer").parallelizable);

  // Forcing the written global private unblocks it (thread-private arrays).
  TweaksByFunction tweaks;
  tweaks["outer"].force_private.insert(g.id());
  EXPECT_TRUE(analyze_first(p, "outer", tweaks).parallelizable);
}

TEST(Parallelize, VerdictToStringMentionsClauses) {
  const Program p = testing::reduce_program();
  const ProgramAnalysis pa = analyze_program(p);
  const std::string text =
      verdict_to_string(p, pa.verdict(p.find_function("reduce_sum")->id, 0));
  EXPECT_NE(text.find("reduction(+:total)"), std::string::npos) << text;
}

TEST(Parallelize, StraightLineStepVerdict) {
  ProgramBuilder pb("m");
  auto x = pb.global("x", DataType::kDouble);
  pb.function("f").step("s").assign(x(), 3.0);
  const Program p = pb.build().value();
  const StepVerdict v = analyze_first(p, "f");
  EXPECT_FALSE(v.has_loop);
  EXPECT_FALSE(v.parallelizable);
}

}  // namespace
}  // namespace glaf
