#include "analysis/loopclass.hpp"

#include <gtest/gtest.h>

#include "core/builder.hpp"

namespace glaf {
namespace {

struct Rig {
  Rig() : pb("m") {
    n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{8}}});
    a = pb.global("a", DataType::kDouble, {E(n)});
    b = pb.global("b", DataType::kDouble, {E(n)});
    m2 = pb.global("m2", DataType::kDouble, {E(n), E(n)});
    s = pb.global("s", DataType::kDouble);
  }
  Program finish() { return pb.build_unchecked(); }
  ProgramBuilder pb;
  GridHandle n, a, b, m2, s;
};

TEST(LoopClass, StraightLine) {
  Rig r;
  auto fb = r.pb.function("f");
  fb.step("s").assign(r.s(), 1.0);
  const Program p = r.finish();
  EXPECT_EQ(classify_loop(p, p.functions[0].steps[0]),
            LoopClass::kStraightLine);
}

TEST(LoopClass, InitZero) {
  Rig r;
  auto fb = r.pb.function("f");
  auto st = fb.step("s");
  st.foreach_("i", 0, E(r.n) - 1);
  st.assign(r.a(idx("i")), 0.0);
  const Program p = r.finish();
  EXPECT_EQ(classify_loop(p, p.functions[0].steps[0]), LoopClass::kInitZero);
}

TEST(LoopClass, InitZeroMultipleTargets) {
  Rig r;
  auto fb = r.pb.function("f");
  auto st = fb.step("s");
  st.foreach_("i", 0, E(r.n) - 1);
  st.assign(r.a(idx("i")), 0.0);
  st.assign(r.b(idx("i")), 0);
  const Program p = r.finish();
  EXPECT_EQ(classify_loop(p, p.functions[0].steps[0]), LoopClass::kInitZero);
}

TEST(LoopClass, BroadcastFromScalar) {
  Rig r;
  auto fb = r.pb.function("f");
  auto st = fb.step("s");
  st.foreach_("i", 0, E(r.n) - 1);
  st.assign(r.a(idx("i")), E(r.s));
  const Program p = r.finish();
  EXPECT_EQ(classify_loop(p, p.functions[0].steps[0]), LoopClass::kBroadcast);
}

TEST(LoopClass, BroadcastFromFixedElement) {
  Rig r;
  auto fb = r.pb.function("f");
  auto st = fb.step("s");
  st.foreach_("i", 0, E(r.n) - 1);
  st.assign(r.a(idx("i")), r.b(liti(0)));
  const Program p = r.finish();
  EXPECT_EQ(classify_loop(p, p.functions[0].steps[0]), LoopClass::kBroadcast);
}

TEST(LoopClass, SimpleSingleMath) {
  Rig r;
  auto fb = r.pb.function("f");
  auto st = fb.step("s");
  st.foreach_("i", 0, E(r.n) - 1);
  st.assign(r.a(idx("i")), r.b(idx("i")) * 2.0 + 1.0);
  st.assign(r.b(idx("i")), call("ABS", {r.a(idx("i"))}));
  const Program p = r.finish();
  EXPECT_EQ(classify_loop(p, p.functions[0].steps[0]),
            LoopClass::kSimpleSingle);
}

TEST(LoopClass, ReductionIsSimpleSingle) {
  Rig r;
  auto fb = r.pb.function("f");
  auto st = fb.step("s");
  st.foreach_("i", 0, E(r.n) - 1);
  st.assign(r.s(), E(r.s) + r.a(idx("i")));
  const Program p = r.finish();
  EXPECT_EQ(classify_loop(p, p.functions[0].steps[0]),
            LoopClass::kSimpleSingle);
}

TEST(LoopClass, SimpleDouble) {
  Rig r;
  auto fb = r.pb.function("f");
  auto st = fb.step("s");
  st.foreach_("i", 0, E(r.n) - 1).foreach_("j", 0, E(r.n) - 1);
  st.assign(r.m2(idx("i"), idx("j")), r.a(idx("i")) * r.b(idx("j")));
  const Program p = r.finish();
  EXPECT_EQ(classify_loop(p, p.functions[0].steps[0]),
            LoopClass::kSimpleDouble);
}

TEST(LoopClass, IfMakesComplex) {
  Rig r;
  auto fb = r.pb.function("f");
  auto st = fb.step("s");
  st.foreach_("i", 0, E(r.n) - 1);
  st.if_(r.a(idx("i")) > 0.0,
         [&](BodyBuilder& bb) { bb.assign(r.a(idx("i")), 0.0); });
  const Program p = r.finish();
  EXPECT_EQ(classify_loop(p, p.functions[0].steps[0]), LoopClass::kComplex);
}

TEST(LoopClass, CallMakesComplex) {
  Rig r;
  auto helper = r.pb.function("helper");
  helper.step("s");
  auto fb = r.pb.function("f");
  auto st = fb.step("s");
  st.foreach_("i", 0, E(r.n) - 1);
  st.call_sub("helper", {});
  const Program p = r.finish();
  EXPECT_EQ(classify_loop(p, *&p.find_function("f")->steps[0]),
            LoopClass::kComplex);
}

TEST(LoopClass, ManyStatementsMakeComplex) {
  Rig r;
  auto fb = r.pb.function("f");
  auto st = fb.step("s");
  st.foreach_("i", 0, E(r.n) - 1);
  for (int k = 0; k < 5; ++k) {
    st.assign(r.a(idx("i")), r.b(idx("i")) + static_cast<double>(k));
  }
  const Program p = r.finish();
  EXPECT_EQ(classify_loop(p, p.functions[0].steps[0]), LoopClass::kComplex);
}

TEST(LoopClass, TripleNestIsComplex) {
  Rig r;
  auto fb = r.pb.function("f");
  auto st = fb.step("s");
  st.foreach_("i", 0, 3).foreach_("j", 0, 3).foreach_("k", 0, 3);
  st.assign(r.s(), 0.0);
  const Program p = r.finish();
  EXPECT_EQ(classify_loop(p, p.functions[0].steps[0]), LoopClass::kComplex);
}

TEST(LoopClass, Names) {
  EXPECT_STREQ(to_string(LoopClass::kInitZero), "init-zero");
  EXPECT_STREQ(to_string(LoopClass::kComplex), "complex");
}

}  // namespace
}  // namespace glaf
