#pragma once
// Canonical mini-programs shared across the test suites.

#include "core/builder.hpp"

namespace glaf::testing {

/// y[i] = a * x[i] + y[i] over n elements — the classic parallelizable loop.
/// Globals: n (scalar int, init 8), a (scalar), x, y (arrays of extent n).
inline Program saxpy_program() {
  ProgramBuilder pb("saxpy_mod");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{8}}});
  auto a = pb.global("a", DataType::kDouble);
  auto x = pb.global("x", DataType::kDouble, {E(n)});
  auto y = pb.global("y", DataType::kDouble, {E(n)});
  auto fb = pb.function("saxpy");
  auto s = fb.step("Step1");
  s.foreach_("i", 0, E(n) - 1);
  s.assign(y(idx("i")), E(a) * x(idx("i")) + y(idx("i")));
  return pb.build().value();
}

/// a[i] = a[i-1] + 1.0 — a loop-carried dependence (must stay serial).
inline Program prefix_program() {
  ProgramBuilder pb("prefix_mod");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{8}}});
  auto arr = pb.global("arr", DataType::kDouble, {E(n)});
  auto fb = pb.function("prefix");
  auto s = fb.step("Step1");
  s.foreach_("i", 1, E(n) - 1);
  s.assign(arr(idx("i")), arr(idx("i") - 1) + 1.0);
  return pb.build().value();
}

/// total = total + x[i] — a sum reduction.
inline Program reduce_program() {
  ProgramBuilder pb("reduce_mod");
  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{16}}});
  auto x = pb.global("x", DataType::kDouble, {E(n)});
  auto total = pb.global("total", DataType::kDouble);
  auto fb = pb.function("reduce_sum");
  auto s = fb.step("Step1");
  s.foreach_("i", 0, E(n) - 1);
  s.assign(total(), E(total) + x(idx("i")));
  return pb.build().value();
}

/// The §3 integration features in one program: a grid from an existing
/// module, a COMMON-block grid, a module-scope grid, a TYPE element, and a
/// subroutine writing them.
inline Program integration_program() {
  ProgramBuilder pb("integ_mod");
  auto nlev = pb.global("nlev", DataType::kInt, {},
                        {.init = {std::int64_t{4}}});
  auto tsfc = pb.global("tsfc", DataType::kDouble, {},
                        {.from_module = "fuliou_data"});
  auto press = pb.global("press", DataType::kDouble, {E(nlev)},
                         {.common_block = "atmos"});
  auto accum = pb.global("accum", DataType::kDouble, {E(nlev)},
                         {.comment = "module-scope accumulator",
                          .module_scope = true});
  auto charge = pb.global("charge", DataType::kDouble, {},
                          {.from_module = "particle_mod",
                           .type_parent = "atom1"});
  auto fb = pb.function("update");  // void -> SUBROUTINE
  auto s = fb.step("Step1");
  s.foreach_("k", 0, E(nlev) - 1);
  s.assign(accum(idx("k")), press(idx("k")) * E(tsfc) + E(charge));
  return pb.build().value();
}

}  // namespace glaf::testing
