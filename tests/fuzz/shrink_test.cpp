// Shrinker properties on synthetic, fully deterministic predicates: the
// result must be minimal, still satisfy the predicate, and be reached
// identically on every run.

#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "core/rewrite.hpp"
#include "core/serialize.hpp"
#include "core/validate.hpp"
#include "fuzz/shrink.hpp"

namespace glaf::fuzz {
namespace {

/// A program with an auxiliary function, two steps, a loop nest and
/// several irrelevant statements around one TANH call.
Program make_noisy_program() {
  ProgramBuilder pb("shrinkme");
  auto g = pb.global("g", DataType::kDouble, {E(4)});
  auto h = pb.global("h", DataType::kDouble, {E(4)});
  auto x = pb.global("x", DataType::kDouble, {}, {.init = {Value{0.5}}});

  auto aux = pb.function("aux");
  aux.step("a").assign(Access(h.id(), "", {liti(0).node()}), lit(2.0));

  auto fb = pb.function("fz_main");
  auto s1 = fb.step("one");
  s1.foreach_("i0", 0, 3);
  s1.foreach_("i1", 0, 3);
  s1.assign(g(idx("i0")), call("TANH", {E(x)}) + E(idx("i1")) * 0.5);
  s1.assign(h(idx("i0")), E(x) * 2.0 + 1.0);
  auto s2 = fb.step("two");
  s2.assign(x(), E(x) + 1.0);
  return pb.build().value();
}

bool mentions_tanh(const Program& p) {
  return serialize_program(p).find("TANH") != std::string::npos;
}

TEST(FuzzShrink, ReducesToSingleStatement) {
  ShrinkOptions opts;
  opts.protected_function = "fz_main";
  ShrinkStats stats;
  const Program shrunk =
      shrink_program(make_noisy_program(), mentions_tanh, opts, &stats);

  EXPECT_TRUE(mentions_tanh(shrunk));
  EXPECT_TRUE(is_valid(validate(shrunk)));
  EXPECT_EQ(count_statements(shrunk), 1);
  ASSERT_EQ(shrunk.functions.size(), 1u);
  EXPECT_EQ(shrunk.functions[0].name, "fz_main");
  // Both loop levels are droppable: the surviving statement subscripts
  // with the pinned loop-begin literal.
  for (const Step& step : shrunk.functions[0].steps) {
    EXPECT_TRUE(step.loops.empty());
  }
  EXPECT_GT(stats.candidates_accepted, 0);
}

TEST(FuzzShrink, DeterministicAcrossRuns) {
  ShrinkOptions opts;
  opts.protected_function = "fz_main";
  const Program a = shrink_program(make_noisy_program(), mentions_tanh, opts);
  const Program b = shrink_program(make_noisy_program(), mentions_tanh, opts);
  EXPECT_EQ(serialize_program(a), serialize_program(b));
}

TEST(FuzzShrink, ResultAlwaysSatisfiesPredicate) {
  // A predicate that also rejects some shrunk forms: require BOTH the
  // TANH call and at least two statements.
  const auto pred = [](const Program& p) {
    return serialize_program(p).find("TANH") != std::string::npos &&
           count_statements(p) >= 2;
  };
  ShrinkOptions opts;
  opts.protected_function = "fz_main";
  const Program shrunk = shrink_program(make_noisy_program(), pred, opts);
  EXPECT_TRUE(pred(shrunk));
  EXPECT_EQ(count_statements(shrunk), 2);
}

TEST(FuzzShrink, RespectsCandidateBudget) {
  ShrinkOptions opts;
  opts.protected_function = "fz_main";
  opts.max_candidates = 3;
  ShrinkStats stats;
  shrink_program(make_noisy_program(), mentions_tanh, opts, &stats);
  EXPECT_LE(stats.candidates_tried, 3);
}

TEST(FuzzShrink, FunctionIdsStayCoherentAfterDrop) {
  ShrinkOptions opts;
  opts.protected_function = "fz_main";
  const Program shrunk =
      shrink_program(make_noisy_program(), mentions_tanh, opts);
  for (std::size_t i = 0; i < shrunk.functions.size(); ++i) {
    EXPECT_EQ(shrunk.functions[i].id, static_cast<FunctionId>(i));
  }
}

}  // namespace
}  // namespace glaf::fuzz
