// Regression corpus replay: every tests/fuzz/corpus/*.glaf file is a
// previously-diverging (now fixed) or structurally interesting case.
// Each file is registered as its own parameterized test case, must
// load, validate, and agree across all available backends — including
// the parallel native JIT legs under every directive policy, held to
// bitwise equality.

#include <gtest/gtest.h>

#include <cctype>

#include "core/validate.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/repro.hpp"

namespace glaf::fuzz {
namespace {

std::vector<std::string> corpus_paths() {
  return list_corpus(GLAF_SOURCE_DIR "/tests/fuzz/corpus");
}

std::string corpus_case_name(
    const testing::TestParamInfo<std::string>& info) {
  std::string stem = info.param;
  const std::size_t slash = stem.find_last_of('/');
  if (slash != std::string::npos) stem = stem.substr(slash + 1);
  const std::size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos) stem = stem.substr(0, dot);
  for (char& c : stem) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return stem;
}

TEST(FuzzCorpus, CorpusIsNotEmpty) {
  EXPECT_GE(corpus_paths().size(), 6u);
}

class CorpusReplay : public testing::TestWithParam<std::string> {};

TEST_P(CorpusReplay, LoadsAndValidates) {
  auto loaded = load_repro(GetParam());
  ASSERT_TRUE(loaded.is_ok())
      << GetParam() << ": " << loaded.status().message();
  EXPECT_TRUE(find_entry(loaded.value()).is_ok()) << GetParam();
}

TEST_P(CorpusReplay, AgreesAcrossBackends) {
  OracleOptions opts;
  opts.run_compiled_c = cc_available(opts.cc);
  // Replay each repro through the parallel native legs too: every
  // directive policy, threaded kernels held bitwise to serial native
  // and to the deterministic parallel plan engine — both per-step
  // (unfused) and with fused region dispatch.
  opts.run_native_parallel = opts.run_compiled_c;
  opts.run_native_fused = opts.run_compiled_c;
  // Policy-v4 legs: profile serially, then speculate on the recorded
  // profile — plus the fault-armed variant where every validation
  // misspeculates and re-runs serially. All bitwise; no compiler needed.
  opts.run_speculative = true;
  auto loaded = load_repro(GetParam());
  ASSERT_TRUE(loaded.is_ok()) << GetParam();
  auto entry = find_entry(loaded.value());
  ASSERT_TRUE(entry.is_ok()) << GetParam();
  const OracleReport report =
      run_oracle(loaded.value(), entry.value(), opts);
  EXPECT_TRUE(report.agreed()) << GetParam() << ": "
      << (report.errors.empty()
              ? (report.divergences.empty()
                     ? "?"
                     : report.divergences[0].backend + " diverged on " +
                           report.divergences[0].grid)
              : report.errors[0]);
  // Serial plan + 4 policies x {treewalk, plan} = 9 interpreter legs,
  // plus the 3 speculative legs (profile-serial, parallel-v4-spec,
  // parallel-v4-spec-fault), plus the native-JIT and compiled-C
  // backends and 4 policies x {parallel-native, parallel-plan-det,
  // parallel-fused-native} when a system compiler is present (those
  // gate on the same cc probe).
  EXPECT_GE(report.backends_compared, opts.run_compiled_c ? 26 : 12);
  EXPECT_EQ(report.native_backend_ran, opts.run_compiled_c) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusReplay,
                         testing::ValuesIn(corpus_paths()),
                         corpus_case_name);

}  // namespace
}  // namespace glaf::fuzz
