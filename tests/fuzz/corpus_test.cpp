// Regression corpus replay: every tests/fuzz/corpus/*.glaf file is a
// previously-diverging (now fixed) or structurally interesting case.
// Each must load, validate, and agree across all available backends.

#include <gtest/gtest.h>

#include "core/validate.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/repro.hpp"

namespace glaf::fuzz {
namespace {

std::vector<std::string> corpus_paths() {
  return list_corpus(GLAF_SOURCE_DIR "/tests/fuzz/corpus");
}

TEST(FuzzCorpus, CorpusIsNotEmpty) {
  EXPECT_GE(corpus_paths().size(), 4u);
}

TEST(FuzzCorpus, EveryEntryLoadsAndValidates) {
  for (const std::string& path : corpus_paths()) {
    auto loaded = load_repro(path);
    ASSERT_TRUE(loaded.is_ok())
        << path << ": " << loaded.status().message();
    EXPECT_TRUE(find_entry(loaded.value()).is_ok()) << path;
  }
}

TEST(FuzzCorpus, EveryEntryAgreesAcrossBackends) {
  OracleOptions opts;
  opts.run_compiled_c = cc_available(opts.cc);
  for (const std::string& path : corpus_paths()) {
    auto loaded = load_repro(path);
    ASSERT_TRUE(loaded.is_ok()) << path;
    auto entry = find_entry(loaded.value());
    ASSERT_TRUE(entry.is_ok()) << path;
    const OracleReport report =
        run_oracle(loaded.value(), entry.value(), opts);
    EXPECT_TRUE(report.agreed()) << path << ": "
        << (report.errors.empty()
                ? (report.divergences.empty()
                       ? "?"
                       : report.divergences[0].backend + " diverged on " +
                             report.divergences[0].grid)
                : report.errors[0]);
    // Serial plan + 4 policies x {treewalk, plan} = 9 interpreter legs,
    // plus the native-JIT and compiled-C backends when a system compiler
    // is present (both gate on the same cc probe).
    EXPECT_GE(report.backends_compared, opts.run_compiled_c ? 11 : 9);
    EXPECT_EQ(report.native_backend_ran, opts.run_compiled_c) << path;
  }
}

}  // namespace
}  // namespace glaf::fuzz
