// End-to-end differential-oracle properties (the slower, `fuzz`-labeled
// suite): a bounded deterministic seed sweep must agree across every
// backend, and an injected semantics bug in the C output must be caught
// and shrunk to a small witness.

#include <gtest/gtest.h>

#include "core/rewrite.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/shrink.hpp"

namespace glaf::fuzz {
namespace {

TEST(FuzzOracle, BoundedSeedSweepAgrees) {
  OracleOptions opts;
  opts.run_compiled_c = cc_available(opts.cc);
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    auto generated = generate_program(seed);
    ASSERT_TRUE(generated.is_ok()) << "seed " << seed;
    const OracleReport report =
        run_oracle(generated.value().program, generated.value().entry, opts);
    EXPECT_TRUE(report.agreed()) << "seed " << seed << ": "
        << (report.errors.empty()
                ? (report.divergences.empty()
                       ? "?"
                       : report.divergences[0].backend + " diverged on " +
                             report.divergences[0].grid)
                : report.errors[0]);
  }
}

TEST(FuzzOracle, OptTierLegAgreesUnderUlpBudget) {
  if (!cc_available("cc")) GTEST_SKIP() << "no C compiler available";

  // The opt-tier leg (typed storage, -O3, contraction on) under its ulp
  // comparator, alongside the bitwise serial-native leg: the comparator
  // fork must hold both contracts in one oracle run.
  OracleOptions opts;
  opts.run_parallel = false;
  opts.run_plan = false;
  opts.run_compiled_c = false;
  opts.run_native = true;
  opts.run_native_opt = true;
  opts.opt_max_ulp = 64;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto generated = generate_program(seed);
    ASSERT_TRUE(generated.is_ok()) << "seed " << seed;
    const OracleReport report =
        run_oracle(generated.value().program, generated.value().entry, opts);
    EXPECT_TRUE(report.opt_backend_ran) << "seed " << seed;
    EXPECT_TRUE(report.agreed()) << "seed " << seed << ": "
        << (report.errors.empty()
                ? (report.divergences.empty()
                       ? "?"
                       : report.divergences[0].backend + " diverged on " +
                             report.divergences[0].grid)
                : report.errors[0]);
  }
}

TEST(FuzzOracle, InjectedCBugIsCaughtAndShrunk) {
  if (!cc_available("cc")) GTEST_SKIP() << "no C compiler available";

  // Flip one operation in the emitted C: every sin() becomes cos().
  // Interpreter backends are untouched, so any program whose observable
  // output passes through SIN must diverge.
  OracleOptions opts;
  opts.run_parallel = false;  // serial vs broken-C is the fast signal
  opts.run_native = false;    // the bug is injected into the C leg only;
                              // skip one kernel build per shrink candidate
  opts.c_source_transform = [](const std::string& src) {
    std::string out = src;
    std::size_t pos = 0;
    while ((pos = out.find("sin(", pos)) != std::string::npos) {
      out.replace(pos, 4, "cos(");
      pos += 4;
    }
    return out;
  };

  Program failing;
  std::string entry;
  bool found = false;
  for (std::uint64_t seed = 0; seed < 40 && !found; ++seed) {
    auto generated = generate_program(seed);
    ASSERT_TRUE(generated.is_ok()) << "seed " << seed;
    const OracleReport report =
        run_oracle(generated.value().program, generated.value().entry, opts);
    ASSERT_TRUE(report.errors.empty())
        << "seed " << seed << ": " << report.errors[0];
    if (!report.divergences.empty()) {
      failing = generated.value().program;
      entry = generated.value().entry;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no seed in 0:40 exposed the injected sin->cos bug";

  ShrinkOptions sopts;
  sopts.protected_function = entry;
  sopts.max_candidates = 500;
  ShrinkStats stats;
  const Program shrunk = shrink_program(
      failing,
      [&](const Program& candidate) {
        return !run_oracle(candidate, entry, opts).divergences.empty();
      },
      sopts, &stats);

  EXPECT_FALSE(run_oracle(shrunk, entry, opts).divergences.empty());
  EXPECT_LE(count_statements(shrunk), 10);
  EXPECT_GT(stats.candidates_accepted, 0);
}

}  // namespace
}  // namespace glaf::fuzz
