// Generator validity properties: every seed must yield a program that
// validates, round-trips through the serializer, and (sampled) executes
// under the serial interpreter without runtime failures.

#include <gtest/gtest.h>

#include "core/rewrite.hpp"
#include "core/serialize.hpp"
#include "core/typecheck.hpp"
#include "core/validate.hpp"
#include "fuzz/generator.hpp"
#include "interp/machine.hpp"

namespace glaf::fuzz {
namespace {

TEST(FuzzGenerator, FiveHundredSeedsValidate) {
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    auto generated = generate_program(seed);
    ASSERT_TRUE(generated.is_ok()) << "seed " << seed;
    const auto diags = validate(generated.value().program);
    EXPECT_TRUE(is_valid(diags))
        << "seed " << seed << ":\n" << render_diagnostics(diags);
  }
}

TEST(FuzzGenerator, EverySubexpressionTypechecks) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    auto generated = generate_program(seed);
    ASSERT_TRUE(generated.is_ok()) << "seed " << seed;
    Program program = std::move(generated).value().program;
    int ill_typed = 0;
    rewrite_program_exprs(program, [&](const ExprPtr& e) -> ExprPtr {
      if (infer_type(program, *e) == DataType::kVoid) ++ill_typed;
      return nullptr;
    });
    EXPECT_EQ(ill_typed, 0) << "seed " << seed;
  }
}

TEST(FuzzGenerator, Deterministic) {
  for (std::uint64_t seed : {0ULL, 17ULL, 99ULL}) {
    auto a = generate_program(seed);
    auto b = generate_program(seed);
    ASSERT_TRUE(a.is_ok() && b.is_ok());
    EXPECT_EQ(serialize_program(a.value().program),
              serialize_program(b.value().program));
  }
}

TEST(FuzzGenerator, SeedsProduceDistinctPrograms) {
  auto a = generate_program(1);
  auto b = generate_program(2);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  EXPECT_NE(serialize_program(a.value().program),
            serialize_program(b.value().program));
}

TEST(FuzzGenerator, SerializeRoundTrip) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    auto generated = generate_program(seed);
    ASSERT_TRUE(generated.is_ok()) << "seed " << seed;
    const std::string text = serialize_program(generated.value().program);
    auto parsed = parse_program(text);
    ASSERT_TRUE(parsed.is_ok())
        << "seed " << seed << ": " << parsed.status().message();
    EXPECT_EQ(text, serialize_program(parsed.value())) << "seed " << seed;
  }
}

TEST(FuzzGenerator, SampledSeedsExecuteSerially) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    auto generated = generate_program(seed);
    ASSERT_TRUE(generated.is_ok()) << "seed " << seed;
    Machine machine(generated.value().program, InterpOptions{});
    const auto result = machine.call(generated.value().entry);
    EXPECT_TRUE(result.is_ok())
        << "seed " << seed << ": " << result.status().message();
  }
}

}  // namespace
}  // namespace glaf::fuzz
