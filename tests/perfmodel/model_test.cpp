// Performance-model tests: the modeled Figure 5/6/7 series must reproduce
// the paper's *shape* — orderings, crossovers, and rough factors — and
// obey basic model laws (monotonicity, Amdahl bounds).

#include <gtest/gtest.h>

#include <map>

#include "fuliou/glaf_kernels.hpp"
#include "fuliou/harness.hpp"
#include "perfmodel/fun3d_model.hpp"
#include "perfmodel/machine_model.hpp"
#include "perfmodel/sarb_model.hpp"

namespace glaf {
namespace {

std::vector<fuliou::LoopInfo> sarb_inventory() {
  static const Program program = fuliou::build_sarb_program();
  static const ProgramAnalysis analysis = analyze_program(program);
  return fuliou::sarb_loop_inventory(program, analysis);
}

std::map<std::string, double> as_map(const std::vector<SarbPoint>& pts) {
  std::map<std::string, double> out;
  for (const SarbPoint& p : pts) out[p.label] = p.speedup;
  return out;
}

TEST(MachineModelTest, EffectiveParallelism) {
  const MachineModel m = MachineModel::i5_2400();
  EXPECT_DOUBLE_EQ(m.effective_parallelism(1), 1.0);
  EXPECT_DOUBLE_EQ(m.effective_parallelism(4), 4.0);
  // Hyper-threads contribute only fractionally.
  EXPECT_LT(m.effective_parallelism(8), 5.0);
  EXPECT_GT(m.effective_parallelism(8), 4.0);
  // Clamped at logical cores.
  EXPECT_DOUBLE_EQ(m.effective_parallelism(64), m.effective_parallelism(8));
}

TEST(MachineModelTest, BandwidthCapApplies) {
  const MachineModel xeon = MachineModel::dual_xeon_e5_2637v4();
  EXPECT_LT(xeon.effective_bandwidth_parallelism(16),
            xeon.effective_parallelism(16));
  EXPECT_DOUBLE_EQ(xeon.effective_bandwidth_parallelism(2), 2.0);
}

TEST(SarbModel, Figure5ShapeHolds) {
  const auto series = as_map(figure5_series(
      sarb_inventory(), 4, MachineModel::i5_2400()));
  const double serial = series.at("GLAF serial");
  const double v0 = series.at("GLAF-parallel v0");
  const double v1 = series.at("GLAF-parallel v1");
  const double v2 = series.at("GLAF-parallel v2");
  const double v3 = series.at("GLAF-parallel v3");

  // Paper: 0.89 / 0.48 / 0.66 / 1.11 / 1.41.
  EXPECT_LT(serial, 1.0);
  EXPECT_GT(serial, 0.8);
  EXPECT_LT(v0, v1);     // removing init/broadcast directives helps
  EXPECT_LT(v1, serial); // v1 still loses to plain serial
  EXPECT_LT(v1, v2);     // removing simple single loops helps more
  EXPECT_GT(v2, 1.0);    // v2 crosses over the original serial
  EXPECT_LT(v2, v3);     // keeping only the complex loops is best
  EXPECT_GT(v3, 1.2);    // clearly faster than original serial
  EXPECT_LT(v0, 0.8);    // naive v0 is clearly slower
}

TEST(SarbModel, Figure5RoughMagnitudes) {
  const auto series = as_map(figure5_series(
      sarb_inventory(), 4, MachineModel::i5_2400()));
  // Within ~25% of the paper's bars.
  EXPECT_NEAR(series.at("GLAF serial"), 0.89, 0.10);
  EXPECT_NEAR(series.at("GLAF-parallel v0"), 0.48, 0.15);
  EXPECT_NEAR(series.at("GLAF-parallel v1"), 0.66, 0.17);
  EXPECT_NEAR(series.at("GLAF-parallel v2"), 1.11, 0.25);
  EXPECT_NEAR(series.at("GLAF-parallel v3"), 1.41, 0.30);
}

TEST(SarbModel, Figure6ShapeHolds) {
  const auto pts = figure6_series(sarb_inventory(), {1, 2, 4, 8},
                                  MachineModel::i5_2400());
  std::map<std::string, double> series;
  for (const auto& p : pts) series[p.label] = p.speedup;
  const double t1 = series.at("GLAF-parallel (1T)");
  const double t2 = series.at("GLAF-parallel (2T)");
  const double t4 = series.at("GLAF-parallel (4T)");
  const double t8 = series.at("GLAF-parallel (8T)");
  // Paper: 0.92 / 1.24 / 1.59 / 0.70.
  EXPECT_LT(t1, 1.0);   // OMP runtime tax at one thread
  EXPECT_GT(t1, 0.8);
  EXPECT_GT(t2, t1);
  EXPECT_GT(t4, t2);    // four threads is the sweet spot
  EXPECT_GT(t4, 1.3);
  EXPECT_LT(t8, t1);    // hyper-threaded oversubscription collapses
}

TEST(SarbModel, CollapseAblationCapsParallelism) {
  // Without COLLAPSE(2), the 2-iteration hemisphere loops cap v3's
  // parallel benefit (the ablation_collapse bench's law).
  const auto inventory = sarb_inventory();
  const MachineModel m = MachineModel::i5_2400();
  SarbModelParams with;
  SarbModelParams without;
  without.collapse_directive = false;
  const double t_with = model_sarb_time(
      inventory, SarbVariant::kGlafParallel, DirectivePolicy::kV3, 4, m,
      with);
  const double t_without = model_sarb_time(
      inventory, SarbVariant::kGlafParallel, DirectivePolicy::kV3, 4, m,
      without);
  EXPECT_GT(t_without, t_with);
  // At one thread the clause makes no difference.
  EXPECT_DOUBLE_EQ(
      model_sarb_time(inventory, SarbVariant::kGlafParallel,
                      DirectivePolicy::kV3, 1, m, with),
      model_sarb_time(inventory, SarbVariant::kGlafParallel,
                      DirectivePolicy::kV3, 1, m, without));
}

TEST(SarbModel, ParallelismNeverExceedsTripCount) {
  // Model law: a 2-iteration loop cannot speed up more than 2x however
  // many threads are modeled.
  fuliou::LoopInfo tiny;
  tiny.function = "f";
  tiny.step = "s";
  tiny.verdict.has_loop = true;
  tiny.verdict.parallelizable = true;
  tiny.verdict.loop_class = LoopClass::kComplex;
  tiny.verdict.trip_count = 2;
  tiny.verdict.outer_trip_count = 2;
  tiny.stmt_count = 1000;  // big body so region costs are negligible
  const MachineModel m = MachineModel::i5_2400();
  const double serial = model_loop_time(tiny, SarbVariant::kOriginalSerial,
                                        DirectivePolicy::kV0, 1, m, {});
  const double parallel = model_loop_time(tiny, SarbVariant::kGlafParallel,
                                          DirectivePolicy::kV3, 4, m, {});
  EXPECT_GT(parallel, serial / 2.5);  // bounded by the 2-way trip count
}

TEST(SarbModel, MoreStatementsCostMore) {
  const auto inventory = sarb_inventory();
  const MachineModel m = MachineModel::i5_2400();
  SarbModelParams params;
  const double base = model_sarb_time(inventory, SarbVariant::kOriginalSerial,
                                      DirectivePolicy::kV0, 1, m, params);
  params.stmt_cost = 2.0;
  const double doubled = model_sarb_time(
      inventory, SarbVariant::kOriginalSerial, DirectivePolicy::kV0, 1, m,
      params);
  EXPECT_NEAR(doubled, 2.0 * base, 1e-9);
}

TEST(SarbModel, GlafSerialSlowerThanOriginal) {
  const auto inventory = sarb_inventory();
  const MachineModel m = MachineModel::i5_2400();
  EXPECT_GT(model_sarb_time(inventory, SarbVariant::kGlafSerial,
                            DirectivePolicy::kV0, 1, m),
            model_sarb_time(inventory, SarbVariant::kOriginalSerial,
                            DirectivePolicy::kV0, 1, m));
}

// ---- FUN3D / Figure 7 -------------------------------------------------

Fun3dWorkload paper_workload() {
  // The paper's dataset: ~1M cells, ~10M edge visits, ~5% skipped.
  Fun3dWorkload w;
  w.cells = 1000000;
  w.processed_cells = 950000;
  w.edges = 9500000;
  w.avg_edges_per_cell = 10.0;
  w.avg_row_entries = 8.0;
  return w;
}

TEST(Fun3dModel, Figure7ShapeHolds) {
  const auto series = figure7_series(paper_workload(), 16,
                                     MachineModel::dual_xeon_e5_2637v4());
  double manual = 0.0;
  double best_glaf = 0.0;
  std::string best_label;
  for (const Fun3dPoint& p : series) {
    if (p.manual) {
      manual = p.speedup;
    } else if (p.speedup > best_glaf) {
      best_glaf = p.speedup;
      best_label = p.label;
    }
  }
  // Paper: manual 3.85x, best GLAF 1.67x (manual/best ~ 2.3).
  EXPECT_GT(manual, 3.0);
  EXPECT_LT(manual, 4.5);
  EXPECT_GT(best_glaf, 1.2);
  EXPECT_LT(best_glaf, 2.5);
  EXPECT_GT(manual / best_glaf, 1.6);
  EXPECT_LT(manual / best_glaf, 3.2);
  // Best GLAF configuration is coarse-grained + no reallocation.
  EXPECT_NE(best_label.find("EdgeJP"), std::string::npos) << best_label;
  EXPECT_NE(best_label.find("no-realloc"), std::string::npos) << best_label;
}

TEST(Fun3dModel, InnerOnlyParallelismIsCatastrophic) {
  const Fun3dWorkload w = paper_workload();
  const MachineModel xeon = MachineModel::dual_xeon_e5_2637v4();
  // cell_loop-only: a fork/join for every cell (the figure's deep 1/2^n
  // bars).
  Fun3dConfig cfg;
  cfg.options.par_cell_loop = true;
  cfg.options.threads = 16;
  Fun3dConfig original;
  original.manual = true;  // manual at 1 thread == the original serial
  const double t_original = model_fun3d_time(w, original, 1, xeon);
  const double t_cell = model_fun3d_time(w, cfg, 16, xeon);
  // Figure 7's log scale: these bars sit around 1/16x..1/128x.
  EXPECT_GT(t_cell, 10.0 * t_original);

  // ioff-search parallelism forks per edge: even worse.
  Fun3dConfig ioff;
  ioff.options.par_ioff_search = true;
  ioff.options.threads = 16;
  EXPECT_GT(model_fun3d_time(w, ioff, 16, xeon), t_cell);
}

TEST(Fun3dModel, NoReallocHelpsEveryConfiguration) {
  const Fun3dWorkload w = paper_workload();
  const MachineModel xeon = MachineModel::dual_xeon_e5_2637v4();
  for (int mask = 0; mask < 16; ++mask) {
    Fun3dConfig with;
    with.options.par_edgejp = (mask & 1) != 0;
    with.options.par_cell_loop = (mask & 2) != 0;
    with.options.par_edge_loop = (mask & 4) != 0;
    with.options.par_ioff_search = (mask & 8) != 0;
    with.options.threads = 16;
    Fun3dConfig without = with;
    with.options.no_realloc = true;
    EXPECT_LT(model_fun3d_time(w, with, 16, xeon),
              model_fun3d_time(w, without, 16, xeon))
        << mask;
  }
}

TEST(Fun3dModel, SeriesCoversAllCombinationsPlusManual) {
  const auto series = figure7_series(paper_workload(), 16,
                                     MachineModel::dual_xeon_e5_2637v4());
  EXPECT_EQ(series.size(), 33u);  // 32 combinations + manual
  int manual_count = 0;
  for (const auto& p : series) manual_count += p.manual ? 1 : 0;
  EXPECT_EQ(manual_count, 1);
}

TEST(Fun3dModel, WorkloadFromMeshAndStats) {
  const fun3d::Mesh mesh = fun3d::make_mesh(500, 3);
  const fun3d::ReconResult r = fun3d::reconstruct_original(mesh);
  const Fun3dWorkload w = workload_from(mesh, r.stats);
  EXPECT_EQ(w.cells, 500);
  EXPECT_EQ(w.processed_cells,
            500 - static_cast<std::int64_t>(r.stats.cells_skipped));
  EXPECT_EQ(w.edges, static_cast<std::int64_t>(r.stats.edge_calls));
  EXPECT_GT(w.avg_edges_per_cell, 8.0);
  EXPECT_GT(w.avg_row_entries, 1.0);
}

TEST(Fun3dModel, ManualScalesWithThreadsUpToBandwidth) {
  const Fun3dWorkload w = paper_workload();
  const MachineModel xeon = MachineModel::dual_xeon_e5_2637v4();
  Fun3dConfig manual;
  manual.manual = true;
  const double t1 = model_fun3d_time(w, manual, 1, xeon);
  const double t2 = model_fun3d_time(w, manual, 2, xeon);
  const double t4 = model_fun3d_time(w, manual, 4, xeon);
  const double t16 = model_fun3d_time(w, manual, 16, xeon);
  EXPECT_GT(t1, t2);
  EXPECT_GT(t2, t4);
  // Bandwidth cap: 16T is essentially the same as 4T (the extra threads
  // only add fork cost).
  EXPECT_NEAR(t16 / t4, 1.0, 0.01);
}

}  // namespace
}  // namespace glaf
