// Profit-gate tests: the native engine must keep parallel regions on
// the calling thread when the modeled work cannot pay for a fork/join.
//
//  - sub-threshold kernels (the smooth_q shape that motivated the gate:
//    a few dozen cheap iterations) never leave serial under the
//    calibrated auto gate OR an explicit threshold — the report shows
//    zero dispatched regions and counts the gated ones;
//  - the gate is monotone: raising the threshold can only divert more
//    regions to serial, and the break-even threshold itself shrinks as
//    threads are added (more workers amortize the same fork/join);
//  - resolve_gate_units maps the Options knob to an installed value
//    (explicit pass-through, 0 = off, single-threaded hosts = never
//    dispatch);
//  - measure_parallel_gate round-trips through a live pool into a
//    usable threshold.

#include <cstdint>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "interp/machine.hpp"
#include "jit/engine.hpp"
#include "perfmodel/calibrate.hpp"
#include "perfmodel/machine_model.hpp"
#include "runtime/thread_pool.hpp"
#include "support/strings.hpp"
#include "support/subprocess.hpp"

namespace glaf {
namespace {

bool have_cc() { return cc_available("cc"); }

std::string fresh_cache_dir(const std::string& tag) {
  std::string tmpl = cat(::testing::TempDir(), "glaf_gcache_", tag, "_XXXXXX");
  const char* dir = mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return dir != nullptr ? dir : tmpl;
}

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

/// The shape that motivated the gate: smooth_q's neighbour average over
/// a handful of nodes — parallelizable, bit-exact, and far too small to
/// pay for a fork/join.
Program tiny_smooth_program(int n) {
  ProgramBuilder pb("m");
  auto q = pb.global("q", DataType::kDouble, {E(n + 2)});
  auto q2 = pb.global("q2", DataType::kDouble, {E(n)});
  auto fb = pb.function("smooth");
  auto s = fb.step("s");
  s.foreach_("i", 0, n - 1);
  s.assign(q2(idx("i")),
           (q(idx("i")) + q(idx("i") + 1) + q(idx("i") + 2)) / 3.0);
  return pb.build().value();
}

InterpOptions gated_native(std::int64_t gate, int threads = 4) {
  InterpOptions o;
  o.engine = ExecEngine::kNative;
  o.parallel = true;
  o.num_threads = threads;
  o.gate_min_units = gate;
  return o;
}

/// Run `smooth` once and return the report.
NativeReport run_tiny(const Program& p, const InterpOptions& o) {
  Machine m(p, o);
  EXPECT_TRUE(m.native_report().available)
      << m.native_report().fallback_reason;
  EXPECT_TRUE(m.call("smooth").is_ok());
  return m.native_report();
}

TEST(ProfitGate, SubThresholdKernelNeverLeavesSerial) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const ScopedEnv env("GLAF_KERNEL_CACHE", fresh_cache_dir("tiny"));
  const Program p = tiny_smooth_program(16);
  // Auto gate (-1): on a single-core host the gate is "never dispatch";
  // on a real multi-core host the calibrated break-even sits at
  // thousands of units — either way 16 cheap iterations stay serial.
  const NativeReport auto_gate = run_tiny(p, gated_native(-1));
  EXPECT_EQ(auto_gate.parallel_regions, 0u);
  EXPECT_EQ(auto_gate.parallel_calls, 0u);
  EXPECT_GT(auto_gate.gated_serial_regions, 0u)
      << "the region must be counted as gated, not silently dropped";
  EXPECT_GT(auto_gate.gate_min_units, 0);

  // An explicit threshold above the region's n * units product behaves
  // identically.
  const NativeReport explicit_gate = run_tiny(p, gated_native(1 << 20));
  EXPECT_EQ(explicit_gate.parallel_regions, 0u);
  EXPECT_GT(explicit_gate.gated_serial_regions, 0u);
  EXPECT_EQ(explicit_gate.gate_min_units, 1 << 20);
}

TEST(ProfitGate, GateOffDispatchesAndGateIsMonotone) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const ScopedEnv env("GLAF_KERNEL_CACHE", fresh_cache_dir("mono"));
  const Program p = tiny_smooth_program(16);
  // gate 0 = gating off: even the tiny kernel dispatches.
  const NativeReport off = run_tiny(p, gated_native(0));
  EXPECT_EQ(off.gate_min_units, 0);
  EXPECT_EQ(off.gated_serial_regions, 0u);
  EXPECT_GT(off.parallel_regions, 0u);
  // gate 1: the region carries at least one unit per iteration, so a
  // threshold of 1 still dispatches...
  const NativeReport one = run_tiny(p, gated_native(1));
  EXPECT_GT(one.parallel_regions, 0u);
  // ...and each higher threshold can only gate more, never less: the
  // dispatch decision is a single >= compare against n * units.
  std::uint64_t last_dispatched = one.parallel_regions;
  for (const std::int64_t gate : {std::int64_t{1} << 10, std::int64_t{1} << 30,
                                  ParallelGate::kAlwaysSerialUnits}) {
    const NativeReport r = run_tiny(p, gated_native(gate));
    EXPECT_LE(r.parallel_regions, last_dispatched) << gate;
    last_dispatched = r.parallel_regions;
  }
  EXPECT_EQ(last_dispatched, 0u);
}

TEST(ProfitGate, GateDoesNotChangeResults) {
  if (!have_cc()) GTEST_SKIP() << "no system compiler";
  const ScopedEnv env("GLAF_KERNEL_CACHE", fresh_cache_dir("same"));
  const Program p = tiny_smooth_program(16);
  std::vector<double> q(18);
  for (std::size_t i = 0; i < q.size(); ++i) {
    q[i] = 1.0 / (1.0 + static_cast<double>(i));
  }
  const auto run = [&](std::int64_t gate) {
    Machine m(p, gated_native(gate));
    EXPECT_TRUE(m.set_array("q", q).is_ok());
    EXPECT_TRUE(m.call("smooth").is_ok());
    return m.array("q2").value();
  };
  const std::vector<double> gated = run(ParallelGate::kAlwaysSerialUnits);
  const std::vector<double> ungated = run(0);
  ASSERT_EQ(gated.size(), ungated.size());
  for (std::size_t i = 0; i < gated.size(); ++i) {
    EXPECT_EQ(gated[i], ungated[i]) << i;
  }
}

TEST(ProfitGate, ResolveGateUnits) {
  // Explicit values pass through untouched (0 = gating off).
  EXPECT_EQ(jit::resolve_gate_units(0, 8, 8), 0);
  EXPECT_EQ(jit::resolve_gate_units(12345, 8, 8), 12345);
  // Auto on a host that cannot win: never dispatch.
  EXPECT_EQ(jit::resolve_gate_units(-1, 1, 8),
            ParallelGate::kAlwaysSerialUnits);
  EXPECT_EQ(jit::resolve_gate_units(-1, 8, 1),
            ParallelGate::kAlwaysSerialUnits);
  // Auto on a real parallel host: the model's break-even threshold.
  EXPECT_EQ(jit::resolve_gate_units(-1, 8, 8),
            ParallelGate{}.threshold_units(8));
  EXPECT_LT(jit::resolve_gate_units(-1, 8, 8),
            ParallelGate::kAlwaysSerialUnits);
  EXPECT_GT(jit::resolve_gate_units(-1, 8, 8), 0);
}

TEST(ProfitGate, ThresholdShrinksAsThreadsGrow) {
  const ParallelGate gate;
  EXPECT_EQ(gate.threshold_units(0), ParallelGate::kAlwaysSerialUnits);
  EXPECT_EQ(gate.threshold_units(1), ParallelGate::kAlwaysSerialUnits);
  std::int64_t last = ParallelGate::kAlwaysSerialUnits;
  for (int threads = 2; threads <= 64; threads *= 2) {
    const std::int64_t t = gate.threshold_units(threads);
    EXPECT_GT(t, 0) << threads;
    EXPECT_LT(t, ParallelGate::kAlwaysSerialUnits) << threads;
    EXPECT_LE(t, last) << threads;
    last = t;
  }
  // Two threads save half the serial time, so the break-even is twice
  // the fork/join cost in units.
  const double expected2 =
      gate.fork_join_seconds / (gate.unit_seconds * 0.5);
  EXPECT_NEAR(static_cast<double>(gate.threshold_units(2)), expected2,
              expected2 * 0.01);
}

TEST(ProfitGate, CalibrationRoundTrip) {
  ThreadPool pool(2);
  const ParallelGate gate = measure_parallel_gate(pool);
  EXPECT_GT(gate.fork_join_seconds, 0.0);
  EXPECT_GT(gate.unit_seconds, 0.0);
  const std::int64_t threshold = gate.threshold_units(pool.size());
  EXPECT_GE(threshold, 1);
  EXPECT_LT(threshold, ParallelGate::kAlwaysSerialUnits);
  // The calibrated threshold must agree with the formula it claims.
  const double expected =
      gate.fork_join_seconds / (gate.unit_seconds * (1.0 - 0.5));
  if (expected >= 1.0) {
    EXPECT_NEAR(static_cast<double>(threshold), expected,
                expected * 0.01 + 1.0);
  }
}

TEST(ProfitGate, SingleThreadPoolCalibratesToDefaults) {
  ThreadPool pool(1);
  const ParallelGate gate = measure_parallel_gate(pool);
  // No second rank to time a dispatch against: the fork cost keeps its
  // documented default, and the gate still yields a sane threshold.
  EXPECT_GT(gate.unit_seconds, 0.0);
  EXPECT_GT(gate.fork_join_seconds, 0.0);
  EXPECT_EQ(gate.threshold_units(1), ParallelGate::kAlwaysSerialUnits);
}

}  // namespace
}  // namespace glaf
