// Capstone integration check: the C generated for the COMPLETE five-
// sub-function FUN3D decomposition (EdgeJP -> cell_loop -> edge_loop /
// angle_check / ioff_search / face_weight) is compiled with the system
// compiler, linked against a driver providing the legacy mesh storage,
// executed, and compared against the native C++ mini-app — generated
// code end-to-end against an independent implementation.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "codegen/c.hpp"
#include "fun3d/glaf_full.hpp"
#include "fun3d/recon.hpp"
#include "support/strings.hpp"

namespace glaf::fun3d {
namespace {

std::string array_literal(const char* type, const char* name,
                          const std::vector<double>& values, bool integral) {
  std::string out = cat(type, " ", name, "[", values.size(), "] = {");
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += integral ? std::to_string(static_cast<long long>(values[i]))
                    : format_double(values[i]);
  }
  out += "};\n";
  return out;
}

std::vector<double> widen32(const std::vector<std::int32_t>& v) {
  return {v.begin(), v.end()};
}

TEST(Fun3dFullCCompile, GeneratedDecompositionMatchesNativeMiniApp) {
  if (std::system("cc --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "no system C compiler";
  }
  const Mesh mesh = make_mesh(64, 123);
  const ReconResult native = reconstruct_original(mesh);
  const Program p = build_fun3d_full_program(mesh);

  std::string source = generate_c(p, analyze_program(p)).source;
  std::string driver =
      "\n#include <stdio.h>\n"
      "/* the legacy FUN3D mesh storage (existing fun3d_grid module) */\n";
  driver += array_literal("long", "cell_nodes", widen32(mesh.cell_nodes),
                          true);
  driver += array_literal("double", "coords", mesh.coords, false);
  driver += array_literal("double", "q", mesh.q, false);
  driver += array_literal("long", "cell_edge_ptr",
                          widen32(mesh.cell_edge_ptr), true);
  driver += array_literal("long", "edge_a", widen32(mesh.edge_a), true);
  driver += array_literal("long", "edge_b", widen32(mesh.edge_b), true);
  driver += array_literal("long", "row_ptr", widen32(mesh.row_ptr), true);
  driver += array_literal("long", "col_idx", widen32(mesh.col_idx), true);
  driver += cat("int main(void) {\n  edgejp();\n  for (long i = 0; i < ",
                mesh.n_nodes * kNumEq,
                "; ++i) printf(\"%.17g\\n\", jac[i]);\n  return 0;\n}\n");
  source += driver;

  const std::string dir = ::testing::TempDir();
  const std::string c_path = dir + "/glaf_fun3d_full.c";
  const std::string bin = dir + "/glaf_fun3d_full";
  {
    std::ofstream f(c_path);
    f << source;
  }
  ASSERT_EQ(std::system(("cc -O1 -fopenmp -o " + bin + " " + c_path +
                         " -lm > /dev/null 2>&1")
                            .c_str()),
            0)
      << "generated decomposition failed to compile";
  FILE* pipe = ::popen(bin.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::vector<double> got;
  char buf[128];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    got.push_back(std::strtod(buf, nullptr));
  }
  ::pclose(pipe);

  ASSERT_EQ(got.size(), native.jac.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    worst = std::max(worst, std::fabs(got[i] - native.jac[i]));
  }
  // Identical operation order; printf round-trips via %.17g: exact.
  EXPECT_EQ(worst, 0.0);
}

}  // namespace
}  // namespace glaf::fun3d
