// Correctness of the Jacobian-reconstruction implementations: the GLAF
// decomposition (in all Figure 7 option combinations) and the manual
// parallel version must reproduce the original's output, checked via the
// paper's criterion — RMS agreement at 1e-7 absolute tolerance.

#include "fun3d/recon.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace glaf::fun3d {
namespace {

constexpr std::int64_t kCells = 600;
constexpr std::uint64_t kSeed = 17;

double max_abs_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

TEST(Recon, OriginalIsDeterministic) {
  const Mesh mesh = make_mesh(kCells, kSeed);
  const ReconResult a = reconstruct_original(mesh);
  const ReconResult b = reconstruct_original(mesh);
  EXPECT_EQ(a.jac, b.jac);
  EXPECT_GT(rms_of(a.jac), 0.0);
  EXPECT_EQ(a.stats.allocations, 0u);  // stack temporaries
  EXPECT_GT(a.stats.edge_calls, 0u);
}

TEST(Recon, GlafSerialMatchesOriginalExactly) {
  const Mesh mesh = make_mesh(kCells, kSeed);
  const ReconResult original = reconstruct_original(mesh);
  const ReconResult glaf = reconstruct_glaf(mesh, {});
  EXPECT_EQ(max_abs_diff(original.jac, glaf.jac), 0.0);
}

TEST(Recon, GlafSerialPaysReallocation) {
  const Mesh mesh = make_mesh(kCells, kSeed);
  const ReconResult glaf = reconstruct_glaf(mesh, {});
  // 50 temporaries per edge_loop call.
  EXPECT_EQ(glaf.stats.allocations,
            glaf.stats.edge_calls * static_cast<std::uint64_t>(kEdgeTemps));
  ReconOptions no_realloc;
  no_realloc.no_realloc = true;
  const ReconResult saved = reconstruct_glaf(mesh, no_realloc);
  // SAVE'd buffers: at most one materialization per thread.
  EXPECT_LE(saved.stats.allocations,
            static_cast<std::uint64_t>(kEdgeTemps));
  EXPECT_EQ(max_abs_diff(glaf.jac, saved.jac), 0.0);
}

struct OptionCase {
  bool edgejp, cell, edge, ioff, norealloc;
};

class ReconOptionSweep : public ::testing::TestWithParam<OptionCase> {};

TEST_P(ReconOptionSweep, MatchesOriginalWithinPaperTolerance) {
  const OptionCase oc = GetParam();
  const Mesh mesh = make_mesh(kCells, kSeed);
  const ReconResult original = reconstruct_original(mesh);
  const double reference_rms = rms_of(original.jac);

  ReconOptions opt;
  opt.par_edgejp = oc.edgejp;
  opt.par_cell_loop = oc.cell;
  opt.par_edge_loop = oc.edge;
  opt.par_ioff_search = oc.ioff;
  opt.no_realloc = oc.norealloc;
  opt.threads = 4;
  const ReconResult got = reconstruct_glaf(mesh, opt);
  // The paper's check: RMS of the output arrays at 1e-7 absolute.
  EXPECT_NEAR(rms_of(got.jac), reference_rms, 1e-7);
  EXPECT_LT(max_abs_diff(original.jac, got.jac), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Figure7Combinations, ReconOptionSweep,
    ::testing::Values(OptionCase{false, false, false, false, false},
                      OptionCase{true, false, false, false, false},
                      OptionCase{false, true, false, false, false},
                      OptionCase{false, false, true, false, false},
                      OptionCase{false, false, false, true, false},
                      OptionCase{true, false, false, false, true},
                      OptionCase{false, true, true, false, true},
                      OptionCase{true, true, true, true, true},
                      OptionCase{false, false, false, false, true}));

TEST(Recon, ManualParallelMatchesOriginal) {
  const Mesh mesh = make_mesh(kCells, kSeed);
  const ReconResult original = reconstruct_original(mesh);
  for (const int threads : {1, 2, 4, 16}) {
    const ReconResult manual = reconstruct_manual(mesh, threads);
    EXPECT_LT(max_abs_diff(original.jac, manual.jac), 1e-7)
        << threads << " threads";
    EXPECT_EQ(manual.stats.allocations, 0u);
  }
}

TEST(Recon, ForkJoinAccountingMatchesStructure) {
  const Mesh mesh = make_mesh(kCells, kSeed);
  const ReconResult serial = reconstruct_glaf(mesh, {});
  EXPECT_EQ(serial.stats.fork_joins, 0u);

  ReconOptions outer;
  outer.par_edgejp = true;
  outer.threads = 4;
  EXPECT_EQ(reconstruct_glaf(mesh, outer).stats.fork_joins, 1u);

  ReconOptions cell;
  cell.par_cell_loop = true;
  cell.threads = 4;
  const ReconResult cell_result = reconstruct_glaf(mesh, cell);
  const std::uint64_t processed_cells =
      static_cast<std::uint64_t>(mesh.n_cells) -
      cell_result.stats.cells_skipped;
  EXPECT_EQ(cell_result.stats.fork_joins, 2 * processed_cells);

  ReconOptions edge;
  edge.par_edge_loop = true;
  edge.threads = 4;
  EXPECT_EQ(reconstruct_glaf(mesh, edge).stats.fork_joins, processed_cells);

  ReconOptions ioff;
  ioff.par_ioff_search = true;
  ioff.threads = 4;
  const ReconResult ioff_result = reconstruct_glaf(mesh, ioff);
  EXPECT_EQ(ioff_result.stats.fork_joins, ioff_result.stats.edge_calls);
}

TEST(Recon, AngleCheckSkipsSomeCellsButNotMost) {
  const Mesh mesh = make_mesh(4000, 23);
  const ReconResult r = reconstruct_original(mesh);
  EXPECT_GT(r.stats.cells_skipped, 0u);
  EXPECT_LT(r.stats.cells_skipped, static_cast<std::uint64_t>(mesh.n_cells / 2));
}

TEST(Recon, IoffSearchFindsCorrectOffsets) {
  const Mesh mesh = make_mesh(200, 31);
  for (std::int64_t e = 0; e < mesh.n_edges; e += 11) {
    const std::int32_t a = mesh.edge_a[static_cast<std::size_t>(e)];
    const std::int32_t b = mesh.edge_b[static_cast<std::size_t>(e)];
    const std::int64_t off = ioff_search(mesh, a, b);
    ASSERT_GE(off, 0);
    EXPECT_EQ(mesh.col_idx[static_cast<std::size_t>(
                  mesh.row_ptr[static_cast<std::size_t>(a)] + off)],
              b);
  }
  // Absent target returns -1.
  EXPECT_EQ(ioff_search(mesh, 0, -5), -1);
}

TEST(Recon, RmsOfBasics) {
  EXPECT_DOUBLE_EQ(rms_of({}), 0.0);
  EXPECT_DOUBLE_EQ(rms_of({3.0, 4.0, 0.0, 0.0}), 2.5);
}

}  // namespace
}  // namespace glaf::fun3d
