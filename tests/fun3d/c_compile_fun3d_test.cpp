// End-to-end: the C generated for the FUN3D GLAF kernels is compiled
// with the system compiler, linked against a driver that plays the legacy
// FUN3D side (defining the extern mesh arrays — the C equivalent of the
// existing fun3d_grid module), executed, and compared with the
// interpreter. This is the integration story of §4.2 exercised literally:
// generated code linking against the encompassing program's storage.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "codegen/c.hpp"
#include "fun3d/glaf_fun3d.hpp"
#include "interp/machine.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace glaf::fun3d {
namespace {

TEST(Fun3dCCompile, EdgeScatterLinksAgainstLegacyStorage) {
  if (std::system("cc --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "no system C compiler";
  }
  const Program p = build_fun3d_glaf_program();

  // Deterministic edge set, shared by both executions.
  SplitMix64 rng(515);
  std::vector<double> ea(kGlafEdges);
  std::vector<double> eb(kGlafEdges);
  std::vector<double> w(kGlafEdges);
  std::vector<double> q(kGlafNodes);
  for (int e = 0; e < kGlafEdges; ++e) {
    const auto a = static_cast<std::int64_t>(rng.next_below(kGlafNodes));
    std::int64_t b = static_cast<std::int64_t>(rng.next_below(kGlafNodes));
    if (b == a) b = (b + 1) % kGlafNodes;
    ea[e] = static_cast<double>(a);
    eb[e] = static_cast<double>(b);
    w[e] = rng.uniform(0.1, 1.0);
  }
  for (int n = 0; n < kGlafNodes; ++n) q[n] = rng.uniform(-1.0, 1.0);

  // Interpreter run.
  Machine m(p);
  ASSERT_TRUE(m.set_array("edge_a", ea).is_ok());
  ASSERT_TRUE(m.set_array("edge_b", eb).is_ok());
  ASSERT_TRUE(m.set_array("w", w).is_ok());
  ASSERT_TRUE(m.set_array("q", q).is_ok());
  ASSERT_TRUE(m.call("edge_scatter").is_ok());
  const std::vector<double> expected = m.array("jac").value();

  // Compiled run: the driver defines the "legacy module" storage the
  // generated TU declared extern, fills it, and calls the kernel.
  std::string source = generate_c(p, analyze_program(p)).source;
  std::string driver =
      "\n#include <stdio.h>\n"
      "/* legacy FUN3D storage (the existing fun3d_grid module) */\n";
  driver += cat("long edge_a[", kGlafEdges, "];\nlong edge_b[", kGlafEdges,
                "];\ndouble w[", kGlafEdges, "];\ndouble q[", kGlafNodes,
                "];\nlong row_ptr[", kGlafNodes + 1, "];\nlong col_idx[",
                kGlafEdges * 2, "];\n");
  driver += "int main(void) {\n";
  for (int e = 0; e < kGlafEdges; ++e) {
    driver += cat("  edge_a[", e, "] = ", static_cast<long>(ea[e]),
                  "; edge_b[", e, "] = ", static_cast<long>(eb[e]),
                  "; w[", e, "] = ", format_double(w[e]), ";\n");
  }
  for (int n = 0; n < kGlafNodes; ++n) {
    driver += cat("  q[", n, "] = ", format_double(q[n]), ";\n");
  }
  driver += cat("  edge_scatter();\n  for (int n = 0; n < ", kGlafNodes,
                "; ++n) printf(\"%.17g\\n\", jac[n]);\n  return 0;\n}\n");
  source += driver;

  const std::string dir = ::testing::TempDir();
  const std::string c_path = dir + "/glaf_fun3d_gen.c";
  const std::string bin = dir + "/glaf_fun3d_gen";
  {
    std::ofstream f(c_path);
    f << source;
  }
  ASSERT_EQ(std::system(("cc -O1 -fopenmp -o " + bin + " " + c_path +
                         " -lm > /dev/null 2>&1")
                            .c_str()),
            0)
      << "generated FUN3D C failed to compile";
  FILE* pipe = ::popen(bin.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::vector<double> got;
  char buf[128];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    got.push_back(std::strtod(buf, nullptr));
  }
  ::pclose(pipe);

  ASSERT_EQ(got.size(), static_cast<std::size_t>(kGlafNodes));
  for (int n = 0; n < kGlafNodes; ++n) {
    EXPECT_NEAR(got[static_cast<std::size_t>(n)],
                expected[static_cast<std::size_t>(n)], 1e-12)
        << "node " << n;
  }
}

}  // namespace
}  // namespace glaf::fun3d
