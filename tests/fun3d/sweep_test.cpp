// Parameterized sweeps for the FUN3D mini-app: mesh sizes and seeds, all
// reproducing the original's output; plus a GLAF-IR-vs-native sweep.

#include <gtest/gtest.h>

#include <cmath>

#include "fun3d/glaf_full.hpp"
#include "fun3d/recon.hpp"

namespace glaf::fun3d {
namespace {

struct MeshCase {
  std::int64_t cells;
  std::uint64_t seed;
};

class MeshSweep : public ::testing::TestWithParam<MeshCase> {};

TEST_P(MeshSweep, GlafDecompositionMatchesOriginal) {
  const MeshCase mc = GetParam();
  const Mesh mesh = make_mesh(mc.cells, mc.seed);
  const ReconResult original = reconstruct_original(mesh);

  ReconOptions best;  // the paper's best configuration
  best.par_edgejp = true;
  best.no_realloc = true;
  best.threads = 4;
  const ReconResult glaf = reconstruct_glaf(mesh, best);
  EXPECT_NEAR(rms_of(glaf.jac), rms_of(original.jac), 1e-7);

  const ReconResult manual = reconstruct_manual(mesh, 4);
  EXPECT_NEAR(rms_of(manual.jac), rms_of(original.jac), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, MeshSweep,
    ::testing::Values(MeshCase{100, 1}, MeshCase{100, 2}, MeshCase{500, 1},
                      MeshCase{500, 3}, MeshCase{2000, 1},
                      MeshCase{2000, 7}),
    [](const ::testing::TestParamInfo<MeshCase>& info) {
      return "c" + std::to_string(info.param.cells) + "_s" +
             std::to_string(info.param.seed);
    });

class IrSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IrSweep, FullIrDecompositionBitEqualToNative) {
  const Mesh mesh = make_mesh(64, GetParam());
  const ReconResult native = reconstruct_original(mesh);
  Machine m(build_fun3d_full_program(mesh));
  ASSERT_TRUE(load_mesh(m, mesh).is_ok());
  ASSERT_TRUE(m.call("edgejp").is_ok());
  const std::vector<double> jac = extract_jacobian(m).value();
  ASSERT_EQ(jac.size(), native.jac.size());
  for (std::size_t i = 0; i < jac.size(); ++i) {
    ASSERT_EQ(jac[i], native.jac[i]) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrSweep,
                         ::testing::Range<std::uint64_t>(40, 48));

}  // namespace
}  // namespace glaf::fun3d
