// The FUN3D patterns through the GLAF framework itself: indirect atomic
// scatter, the early-return search with the CRITICAL manual tweak, and
// SAVE'd temporaries — executed by the interpreter serially and in
// parallel, and generated as FORTRAN.

#include "fun3d/glaf_fun3d.hpp"

#include <gtest/gtest.h>

#include "codegen/fortran.hpp"
#include "fun3d/mesh.hpp"
#include "interp/machine.hpp"
#include "support/rng.hpp"

namespace glaf::fun3d {
namespace {

/// Bind a small synthetic edge set into the machine's globals.
void load_edges(Machine& m, SplitMix64& rng) {
  std::vector<double> ea(kGlafEdges);
  std::vector<double> eb(kGlafEdges);
  std::vector<double> w(kGlafEdges);
  std::vector<double> q(kGlafNodes);
  for (int e = 0; e < kGlafEdges; ++e) {
    const auto a = static_cast<std::int64_t>(rng.next_below(kGlafNodes));
    std::int64_t b = static_cast<std::int64_t>(rng.next_below(kGlafNodes));
    if (b == a) b = (b + 1) % kGlafNodes;
    ea[e] = static_cast<double>(a);
    eb[e] = static_cast<double>(b);
    w[e] = rng.uniform(0.1, 1.0);
  }
  for (int n = 0; n < kGlafNodes; ++n) q[n] = rng.uniform(-1.0, 1.0);
  ASSERT_TRUE(m.set_array("edge_a", ea).is_ok());
  ASSERT_TRUE(m.set_array("edge_b", eb).is_ok());
  ASSERT_TRUE(m.set_array("w", w).is_ok());
  ASSERT_TRUE(m.set_array("q", q).is_ok());
}

void load_csr(Machine& m, SplitMix64& rng) {
  // Simple CSR: each node adjacent to the next 4 node ids.
  std::vector<double> row_ptr(kGlafNodes + 1);
  std::vector<double> col_idx(static_cast<std::size_t>(kGlafEdges) * 2, 0.0);
  int cursor = 0;
  for (int n = 0; n <= kGlafNodes; ++n) row_ptr[n] = n * 4;
  for (int n = 0; n < kGlafNodes; ++n) {
    for (int j = 0; j < 4; ++j) {
      col_idx[cursor++] = (n + j + 1) % kGlafNodes;
    }
  }
  (void)rng;
  ASSERT_TRUE(m.set_array("row_ptr", row_ptr).is_ok());
  ASSERT_TRUE(m.set_array("col_idx", col_idx).is_ok());
}

TEST(GlafFun3d, ProgramValidates) {
  const Program p = build_fun3d_glaf_program();
  EXPECT_NE(p.find_function("edge_scatter"), nullptr);
  EXPECT_NE(p.find_function("find_offset"), nullptr);
  EXPECT_NE(p.find_function("smooth_q"), nullptr);
}

TEST(GlafFun3d, ScatterStepGetsAtomicVerdict) {
  const Program p = build_fun3d_glaf_program();
  const ProgramAnalysis pa = analyze_program(p);
  const Function* fn = p.find_function("edge_scatter");
  const StepVerdict& scatter = pa.verdict(fn->id, 1);
  EXPECT_TRUE(scatter.parallelizable);
  ASSERT_EQ(scatter.atomic_grids.size(), 1u);
  EXPECT_EQ(p.grid(scatter.atomic_grids[0]).name, "jac");
}

TEST(GlafFun3d, FindOffsetNeedsCriticalTweak) {
  const Program p = build_fun3d_glaf_program();
  const Function* fn = p.find_function("find_offset");

  const ProgramAnalysis no_tweak = analyze_program(p);
  EXPECT_FALSE(no_tweak.verdict(fn->id, 0).parallelizable);
  EXPECT_TRUE(no_tweak.verdict(fn->id, 0).needs_critical);

  const ProgramAnalysis tweaked = analyze_program(p, fun3d_manual_tweaks(p));
  EXPECT_TRUE(tweaked.verdict(fn->id, 0).parallelizable);
  EXPECT_TRUE(tweaked.verdict(fn->id, 0).needs_critical);
}

TEST(GlafFun3d, ParallelScatterMatchesSerial) {
  const Program p = build_fun3d_glaf_program();
  SplitMix64 rng(77);

  Machine serial(p);
  {
    SplitMix64 r2(77);
    load_edges(serial, r2);
  }
  ASSERT_TRUE(serial.call("edge_scatter").is_ok());
  const auto expected = serial.array("jac").value();

  InterpOptions opts;
  opts.parallel = true;
  opts.num_threads = 4;
  Machine parallel(p, opts);
  load_edges(parallel, rng);
  ASSERT_TRUE(parallel.call("edge_scatter").is_ok());
  EXPECT_GE(parallel.stats().parallel_regions, 1u);
  const auto got = parallel.array("jac").value();
  ASSERT_EQ(expected.size(), got.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(expected[i], got[i], 1e-9) << i;
  }
}

TEST(GlafFun3d, FindOffsetReturnsCorrectOffsets) {
  const Program p = build_fun3d_glaf_program();
  Machine m(p);
  SplitMix64 rng(5);
  load_csr(m, rng);
  // Node 10's adjacency is {11, 12, 13, 14}: offset of 13 is 2.
  const auto r = m.call("find_offset", {10.0, 13.0});
  ASSERT_TRUE(r.is_ok()) << r.status().message();
  EXPECT_DOUBLE_EQ(r.value(), 2.0);
  // Absent target -> -1.
  const auto miss = m.call("find_offset", {10.0, 40.0});
  ASSERT_TRUE(miss.is_ok());
  EXPECT_DOUBLE_EQ(miss.value(), -1.0);
}

TEST(GlafFun3d, SaveScratchPersistsAcrossCalls) {
  const Program p = build_fun3d_glaf_program();
  Machine m(p);
  SplitMix64 rng(9);
  load_edges(m, rng);
  ASSERT_TRUE(m.call("edge_scatter").is_ok());
  m.reset_stats();
  ASSERT_TRUE(m.call("smooth_q").is_ok());
  const std::uint64_t first = m.stats().local_allocations;
  EXPECT_EQ(first, 1u);  // scratch materialized once
  ASSERT_TRUE(m.call("smooth_q").is_ok());
  EXPECT_EQ(m.stats().local_allocations, first);  // reused, not reallocated
}

TEST(GlafFun3d, FortranShowsAtomicAndSavePatterns) {
  const Program p = build_fun3d_glaf_program();
  const GeneratedCode code = generate_fortran(p, analyze_program(p));
  EXPECT_NE(code.source.find("!$OMP ATOMIC"), std::string::npos);
  // n_nodes folds to a constant, so the SAVE'd scratch array is emitted
  // with fixed extents (the guarded-ALLOCATE form only appears for truly
  // symbolic extents, covered in the codegen tests).
  EXPECT_NE(code.source.find(", SAVE :: scratch(0:63)"), std::string::npos);
  EXPECT_NE(code.source.find("USE fun3d_grid"), std::string::npos);

  // With the critical tweak, find_offset's early-return section is
  // wrapped in OMP CRITICAL.
  const GeneratedCode tweaked =
      generate_fortran(p, analyze_program(p, fun3d_manual_tweaks(p)));
  EXPECT_NE(tweaked.source.find("!$OMP CRITICAL"), std::string::npos);
  EXPECT_NE(tweaked.source.find("!$OMP END CRITICAL"), std::string::npos);
}

}  // namespace
}  // namespace glaf::fun3d
