// The complete §4.2 check: the five-sub-function FUN3D decomposition in
// GLAF IR reproduces the native mini-app's Jacobian bit for bit when
// interpreted serially, and within the paper's 1e-7 RMS tolerance when
// parallelized with the §4.2.1 manual tweaks.

#include "fun3d/glaf_full.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "codegen/fortran.hpp"
#include "fun3d/recon.hpp"

namespace glaf::fun3d {
namespace {

constexpr std::int64_t kCells = 120;
constexpr std::uint64_t kSeed = 9;

double max_abs_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  if (a.size() != b.size()) return 1e300;
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

TEST(GlafFull, ProgramBuildsForAnyMesh) {
  const Mesh mesh = make_mesh(kCells, kSeed);
  const Program p = build_fun3d_full_program(mesh);
  for (const char* fn : {"edgejp", "cell_loop", "edge_loop", "angle_check",
                         "ioff_search", "face_weight"}) {
    EXPECT_NE(p.find_function(fn), nullptr) << fn;
  }
}

TEST(GlafFull, SerialInterpretationMatchesNativeExactly) {
  const Mesh mesh = make_mesh(kCells, kSeed);
  const ReconResult native = reconstruct_original(mesh);

  Machine m(build_fun3d_full_program(mesh));
  ASSERT_TRUE(load_mesh(m, mesh).is_ok());
  const auto r = m.call("edgejp");
  ASSERT_TRUE(r.is_ok()) << r.status().message();
  const auto jac = extract_jacobian(m);
  ASSERT_TRUE(jac.is_ok());
  EXPECT_EQ(max_abs_diff(native.jac, jac.value()), 0.0);
}

TEST(GlafFull, SeveralMeshesAgree) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Mesh mesh = make_mesh(80, seed);
    const ReconResult native = reconstruct_original(mesh);
    Machine m(build_fun3d_full_program(mesh));
    ASSERT_TRUE(load_mesh(m, mesh).is_ok());
    ASSERT_TRUE(m.call("edgejp").is_ok());
    EXPECT_EQ(max_abs_diff(native.jac, extract_jacobian(m).value()), 0.0)
        << "seed " << seed;
  }
}

TEST(GlafFull, OuterLoopBlockedWithoutTweaks) {
  // The outer cell loop writes shared module-scope state through its
  // callees: the analysis must refuse to parallelize it until the §4.2.1
  // manual tweaks mark those grids private/atomic.
  const Mesh mesh = make_mesh(kCells, kSeed);
  const Program p = build_fun3d_full_program(mesh);
  const ProgramAnalysis pa = analyze_program(p);
  const Function* edgejp = p.find_function("edgejp");
  EXPECT_FALSE(pa.verdict(edgejp->id, 1).parallelizable);
}

TweaksByFunction full_tweaks(const Program& p) {
  // The paper's tweak list: module-scope intermediates thread-private,
  // the shared output atomic.
  TweaksByFunction tweaks;
  ManualTweaks& t = tweaks["edgejp"];
  for (const char* name : {"cell_avg", "dq", "contrib", "wgt_total"}) {
    t.force_private.insert(p.find_grid(name)->id);
  }
  t.force_atomic.insert(p.find_grid("jac")->id);
  return tweaks;
}

TEST(GlafFull, TweaksUnblockOuterLoop) {
  const Mesh mesh = make_mesh(kCells, kSeed);
  const Program p = build_fun3d_full_program(mesh);
  const ProgramAnalysis pa = analyze_program(p, full_tweaks(p));
  const Function* edgejp = p.find_function("edgejp");
  const StepVerdict& v = pa.verdict(edgejp->id, 1);
  EXPECT_TRUE(v.parallelizable);
  EXPECT_EQ(v.private_grids.size(), 4u);
  ASSERT_EQ(v.atomic_grids.size(), 1u);
  EXPECT_EQ(p.grid(v.atomic_grids[0]).name, "jac");
}

TEST(GlafFull, ParallelWithTweaksMatchesWithinPaperTolerance) {
  const Mesh mesh = make_mesh(kCells, kSeed);
  const ReconResult native = reconstruct_original(mesh);
  const Program p = build_fun3d_full_program(mesh);

  InterpOptions opts;
  opts.parallel = true;
  opts.num_threads = 4;
  opts.tweaks = full_tweaks(p);
  Machine m(p, opts);
  ASSERT_TRUE(load_mesh(m, mesh).is_ok());
  const auto r = m.call("edgejp");
  ASSERT_TRUE(r.is_ok()) << r.status().message();
  EXPECT_GE(m.stats().parallel_regions, 1u);
  // RMS at 1e-7 absolute — the paper's criterion (§4.2.1).
  const std::vector<double> jac = extract_jacobian(m).value();
  EXPECT_NEAR(rms_of(jac), rms_of(native.jac), 1e-7);
  EXPECT_LT(max_abs_diff(native.jac, jac), 1e-7);
}

TEST(GlafFull, SaveTempsAllocateOncePerThread) {
  const Mesh mesh = make_mesh(kCells, kSeed);
  Machine m(build_fun3d_full_program(mesh));
  ASSERT_TRUE(load_mesh(m, mesh).is_ok());
  ASSERT_TRUE(m.call("edgejp").is_ok());
  // temps is SAVE'd: one materialization across all edge_loop calls.
  // Every other local is scalar (not counted as array allocations).
  EXPECT_EQ(m.stats().local_allocations, 1u);
  const std::uint64_t first = m.stats().local_allocations;
  ASSERT_TRUE(m.call("edgejp").is_ok());
  EXPECT_EQ(m.stats().local_allocations, first);
}

TEST(GlafFull, FortranShowsDecompositionStructure) {
  const Mesh mesh = make_mesh(kCells, kSeed);
  const Program p = build_fun3d_full_program(mesh);
  const GeneratedCode code = generate_fortran(p, analyze_program(p));
  EXPECT_NE(code.source.find("SUBROUTINE edgejp()"), std::string::npos);
  EXPECT_NE(code.source.find("CALL cell_loop(c)"), std::string::npos);
  EXPECT_NE(code.source.find("CALL edge_loop(e)"), std::string::npos);
  EXPECT_NE(code.source.find("INTEGER FUNCTION ioff_search(row, target)"),
            std::string::npos);
  EXPECT_NE(code.source.find(", SAVE :: temps"), std::string::npos);
  EXPECT_NE(code.source.find("USE fun3d_grid"), std::string::npos);
}

}  // namespace
}  // namespace glaf::fun3d
