#include "fun3d/mesh.hpp"

#include <gtest/gtest.h>

#include <set>

namespace glaf::fun3d {
namespace {

TEST(Mesh, Deterministic) {
  const Mesh a = make_mesh(200, 7);
  const Mesh b = make_mesh(200, 7);
  EXPECT_EQ(a.cell_nodes, b.cell_nodes);
  EXPECT_EQ(a.edge_a, b.edge_a);
  EXPECT_EQ(a.q, b.q);
  const Mesh c = make_mesh(200, 8);
  EXPECT_NE(a.cell_nodes, c.cell_nodes);
}

TEST(Mesh, SizesScaleAsInPaper) {
  // 1M cells -> ~10M edge visits in the paper's dataset; verify the ratio
  // at a smaller scale.
  const Mesh m = make_mesh(5000, 1);
  EXPECT_EQ(m.n_cells, 5000);
  const double edges_per_cell =
      static_cast<double>(m.n_edges) / static_cast<double>(m.n_cells);
  EXPECT_GE(edges_per_cell, 8.0);
  EXPECT_LE(edges_per_cell, 12.0);
  EXPECT_NEAR(edges_per_cell, 10.0, 1.0);
}

TEST(Mesh, CellNodesAreDistinctAndInRange) {
  const Mesh m = make_mesh(1000, 3);
  for (std::int64_t c = 0; c < m.n_cells; ++c) {
    std::set<std::int32_t> nodes;
    for (int i = 0; i < kNodesPerCell; ++i) {
      const std::int32_t n =
          m.cell_nodes[static_cast<std::size_t>(c) * kNodesPerCell + i];
      EXPECT_GE(n, 0);
      EXPECT_LT(n, m.n_nodes);
      nodes.insert(n);
    }
    EXPECT_EQ(nodes.size(), static_cast<std::size_t>(kNodesPerCell)) << c;
  }
}

TEST(Mesh, EdgeEndpointsBelongToCell) {
  const Mesh m = make_mesh(500, 5);
  for (std::int64_t c = 0; c < m.n_cells; ++c) {
    std::set<std::int32_t> cell_node_set;
    for (int i = 0; i < kNodesPerCell; ++i) {
      cell_node_set.insert(
          m.cell_nodes[static_cast<std::size_t>(c) * kNodesPerCell + i]);
    }
    for (std::int64_t e = m.edges_of_cell_begin(c); e < m.edges_of_cell_end(c);
         ++e) {
      EXPECT_EQ(cell_node_set.count(m.edge_a[static_cast<std::size_t>(e)]), 1u);
      EXPECT_EQ(cell_node_set.count(m.edge_b[static_cast<std::size_t>(e)]), 1u);
      EXPECT_NE(m.edge_a[static_cast<std::size_t>(e)],
                m.edge_b[static_cast<std::size_t>(e)]);
    }
  }
}

TEST(Mesh, CsrAdjacencyIsSortedAndCoversEdges) {
  const Mesh m = make_mesh(300, 11);
  ASSERT_EQ(m.row_ptr.size(), static_cast<std::size_t>(m.n_nodes) + 1);
  EXPECT_EQ(m.row_ptr[0], 0);
  EXPECT_EQ(static_cast<std::size_t>(m.row_ptr.back()), m.col_idx.size());
  for (std::int64_t n = 0; n < m.n_nodes; ++n) {
    for (std::int32_t i = m.row_ptr[static_cast<std::size_t>(n)] + 1;
         i < m.row_ptr[static_cast<std::size_t>(n) + 1]; ++i) {
      EXPECT_LT(m.col_idx[static_cast<std::size_t>(i) - 1],
                m.col_idx[static_cast<std::size_t>(i)]);
    }
  }
  // Every edge endpoint pair appears in the adjacency.
  for (std::int64_t e = 0; e < m.n_edges; e += 37) {
    const std::int32_t a = m.edge_a[static_cast<std::size_t>(e)];
    const std::int32_t b = m.edge_b[static_cast<std::size_t>(e)];
    bool found = false;
    for (std::int32_t i = m.row_ptr[static_cast<std::size_t>(a)];
         i < m.row_ptr[static_cast<std::size_t>(a) + 1]; ++i) {
      found = found || m.col_idx[static_cast<std::size_t>(i)] == b;
    }
    EXPECT_TRUE(found) << "edge " << e;
  }
}

TEST(Mesh, SolutionVectorPlausible) {
  const Mesh m = make_mesh(100, 2);
  for (std::int64_t n = 0; n < m.n_nodes; ++n) {
    const double density = m.q[static_cast<std::size_t>(n) * kNumEq];
    const double energy = m.q[static_cast<std::size_t>(n) * kNumEq + 4];
    EXPECT_GT(density, 0.5);
    EXPECT_LT(density, 1.5);
    EXPECT_GT(energy, 1.0);
  }
}

}  // namespace
}  // namespace glaf::fun3d
