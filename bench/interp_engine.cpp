// Execution-engine comparison: tree-walk interpreter vs the compiled
// flat-plan VM vs the native JIT engine (both emission tiers), serial
// and parallel, over the Fu-Liou SARB kernels (Table 1) and the FUN3D
// kernel program.
//
// Prints a table and writes BENCH_interp.json with per-kernel wall
// times and speedups plus the serial geometric-mean speedups over the
// SARB kernels (the checked-in acceptance numbers: plan >= 3x over
// tree-walk, native > 1x over plan, opt >= interp-tier native). Native
// rows are skipped (zeros) when no system compiler is present.
//
// The "serial opt" column is the NumericModel::kOpt tier: typed native
// storage, restrict pointers, -O3 with contraction (and -march=native
// unless GLAF_NATIVE_PORTABLE is set) — serial dispatch only, results
// within a ulp budget of the interpreter rather than bit-identical.
//
// Parallel native is measured twice: *gated* (the default calibrated
// profit gate, which keeps regions whose modeled work cannot pay for a
// fork/join on the calling thread) and *ungated* (gate 0, every region
// dispatched) — the gap between the two is what the cost model buys.
// Fused-region counts come from the kernel's ABI-v3 metadata.
//
// Usage: interp_engine [--threads N] [--levels N] [--min-seconds X]
//        [--out FILE] [--check-gate X]
//
// --check-gate X exits nonzero when any gated parallel-native kernel
// runs slower than X times serial native — the CI smoke that the gate
// never lets dispatch overhead win (0.9 allows measurement noise).
//
// --levels scales the SARB atmosphere (default 60, the paper's size):
// per-level extents and loop bounds are symbolic over the n_levels
// grid, so larger atmospheres give the threaded engines enough work
// per dispatch for the parallel rows to be meaningful. The checked-in
// BENCH_interp.json is regenerated with:
//   bench/interp_engine --threads 8 --levels 4096 --out BENCH_interp.json

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/speculate.hpp"
#include "fuliou/glaf_kernels.hpp"
#include "fuliou/harness.hpp"
#include "fuliou/profile.hpp"
#include "fun3d/glaf_fun3d.hpp"
#include "interp/machine.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

using namespace glaf;

namespace {

struct KernelResult {
  std::string suite;  ///< "sarb" or "fun3d"
  std::string name;
  double serial_treewalk_s = 0.0;
  double serial_plan_s = 0.0;
  double serial_native_s = 0.0;
  /// Serial native under the opt emission tier (typed storage, -O3).
  double serial_opt_s = 0.0;
  double parallel_treewalk_s = 0.0;
  double parallel_plan_s = 0.0;
  /// Parallel plan VM under policy v4: profile-guided speculation on a
  /// dependence profile recorded just beforehand (profiling time is not
  /// included in the measurement).
  double parallel_plan_v4_s = 0.0;
  /// Steps the v4 pass promoted to speculative, and misspeculations
  /// observed across the measured calls (demoted steps re-run serially).
  std::uint64_t spec_promoted = 0;
  std::uint64_t spec_misspeculations = 0;
  /// Parallel native under the calibrated profit gate (the default).
  double parallel_native_s = 0.0;
  /// Parallel native with the gate off (every region dispatched).
  double parallel_native_ungated_s = 0.0;
  /// ABI-v3 region metadata and gate activity from the gated run.
  std::uint64_t regions_total = 0;
  std::uint64_t regions_fused = 0;
  std::uint64_t gated_regions = 0;
};

InterpOptions engine_opts(ExecEngine engine, bool parallel, int threads,
                          std::int64_t gate_min_units = -1) {
  InterpOptions o;
  o.engine = engine;
  o.parallel = parallel;
  o.num_threads = threads;
  o.gate_min_units = gate_min_units;
  return o;
}

InterpOptions opt_tier_opts(int threads) {
  InterpOptions o = engine_opts(ExecEngine::kNative, false, threads);
  o.native_model = NumericModel::kOpt;
  return o;
}

/// Best wall time per call of `entry` on a fresh machine. Native
/// measurements require the kernel to have actually loaded — a silent
/// plan fallback would report plan numbers under the native label.
double measure(const Program& program, const InterpOptions& opts,
               const std::string& entry, double min_seconds,
               const std::function<void(Machine&)>& prepare,
               NativeReport* report_out = nullptr) {
  Machine m(program, opts);
  if (opts.engine == ExecEngine::kNative && !m.native_report().available) {
    std::fprintf(stderr, "interp_engine: native unavailable for %s: %s\n",
                 entry.c_str(), m.native_report().fallback_reason.c_str());
    return 0.0;
  }
  if (prepare) prepare(m);
  const StatusOr<double> probe = m.call(entry);
  if (!probe.is_ok()) {
    std::fprintf(stderr, "interp_engine: %s: %s\n", entry.c_str(),
                 probe.status().message().c_str());
    return 0.0;
  }
  const double best = time_best([&] { (void)m.call(entry); }, min_seconds, 3);
  if (report_out != nullptr) *report_out = m.native_report();
  return best;
}

/// The policy-v4 leg: record a dependence profile on a serial run, then
/// measure the parallel plan VM speculating on it. Returns 0 (and zero
/// counters) when profiling or the measured run fails.
double measure_v4(const Program& program, const std::string& entry,
                  int threads, double min_seconds,
                  const std::function<void(Machine&)>& prepare,
                  std::uint64_t* promoted, std::uint64_t* misspecs) {
  InterpOptions prof_opts;
  prof_opts.profile_deps = true;
  Machine profiler(program, prof_opts);
  if (prepare) prepare(profiler);
  if (!profiler.call(entry).is_ok()) return 0.0;
  InterpOptions o = engine_opts(ExecEngine::kPlan, true, threads);
  o.policy = DirectivePolicy::kV4;
  o.deterministic_parallel = true;
  o.dep_profile =
      std::make_shared<const DepProfile>(profiler.dep_profile());
  Machine m(program, o);
  if (prepare) prepare(m);
  const StatusOr<double> probe = m.call(entry);
  if (!probe.is_ok()) {
    std::fprintf(stderr, "interp_engine: v4 %s: %s\n", entry.c_str(),
                 probe.status().message().c_str());
    return 0.0;
  }
  const double best = time_best([&] { (void)m.call(entry); }, min_seconds, 3);
  *promoted = m.native_report().spec_promoted_steps;
  *misspecs = m.stats().spec_misspeculations;
  return best;
}

std::string fmt(double v, const char* spec = "%.3g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int threads = static_cast<int>(args.get_int("threads", 4));
  const int levels =
      static_cast<int>(args.get_int("levels", fuliou::kNumLevels));
  const double min_seconds = args.get("min-seconds", "").empty()
                                 ? 0.05
                                 : std::stod(args.get("min-seconds", "0.05"));
  const std::string out_path = args.get("out", "BENCH_interp.json");
  const std::string check_gate_arg = args.get("check-gate", "");
  const double check_gate =
      check_gate_arg.empty() ? 0.0 : std::stod(check_gate_arg);

  std::vector<KernelResult> results;
  // Provenance of the opt-tier kernels (compiler identity and the exact
  // flag set), recorded into the JSON so the checked-in numbers say what
  // produced them. Filled by the last successful opt measurement.
  NativeReport opt_report;

  // --- SARB: the six Table 1 subroutines, inputs from a synthetic
  // profile (the role the legacy FORTRAN modules play in the paper).
  const Program sarb = fuliou::build_sarb_program(levels);
  const fuliou::AtmosphereProfile profile = fuliou::make_profile(1, levels);
  const auto load_sarb = [&](Machine& m) {
    const Status s = fuliou::load_profile(m, profile);
    if (!s.is_ok()) {
      std::fprintf(stderr, "interp_engine: load_profile: %s\n",
                   s.message().c_str());
    }
  };
  for (const std::string& name : fuliou::table1_subroutines()) {
    const Function* fn = sarb.find_function(name);
    if (fn == nullptr || !fn->params.empty()) continue;
    KernelResult r;
    r.suite = "sarb";
    r.name = name;
    r.serial_treewalk_s =
        measure(sarb, engine_opts(ExecEngine::kTreeWalk, false, threads),
                name, min_seconds, load_sarb);
    r.serial_plan_s =
        measure(sarb, engine_opts(ExecEngine::kPlan, false, threads), name,
                min_seconds, load_sarb);
    r.serial_native_s =
        measure(sarb, engine_opts(ExecEngine::kNative, false, threads),
                name, min_seconds, load_sarb);
    r.serial_opt_s = measure(sarb, opt_tier_opts(threads), name, min_seconds,
                             load_sarb, &opt_report);
    r.parallel_treewalk_s =
        measure(sarb, engine_opts(ExecEngine::kTreeWalk, true, threads),
                name, min_seconds, load_sarb);
    r.parallel_plan_s =
        measure(sarb, engine_opts(ExecEngine::kPlan, true, threads), name,
                min_seconds, load_sarb);
    r.parallel_plan_v4_s =
        measure_v4(sarb, name, threads, min_seconds, load_sarb,
                   &r.spec_promoted, &r.spec_misspeculations);
    NativeReport nrep;
    r.parallel_native_s =
        measure(sarb, engine_opts(ExecEngine::kNative, true, threads),
                name, min_seconds, load_sarb, &nrep);
    r.parallel_native_ungated_s =
        measure(sarb, engine_opts(ExecEngine::kNative, true, threads, 0),
                name, min_seconds, load_sarb);
    r.regions_total = nrep.regions_total;
    r.regions_fused = nrep.regions_fused;
    r.gated_regions = nrep.gated_serial_regions;
    results.push_back(r);
  }

  // --- FUN3D kernels: deterministic synthetic mesh inputs.
  const Program f3d = fun3d::build_fun3d_glaf_program();
  const auto load_f3d = [&](Machine& m) {
    std::vector<double> ea(fun3d::kGlafEdges), eb(fun3d::kGlafEdges);
    std::vector<double> w(fun3d::kGlafEdges), q(fun3d::kGlafNodes);
    for (int e = 0; e < fun3d::kGlafEdges; ++e) {
      ea[static_cast<std::size_t>(e)] = e % fun3d::kGlafNodes;
      eb[static_cast<std::size_t>(e)] = (e * 7 + 3) % fun3d::kGlafNodes;
      w[static_cast<std::size_t>(e)] = 0.25 + 0.5 * (e % 3);
    }
    for (int k = 0; k < fun3d::kGlafNodes; ++k) {
      q[static_cast<std::size_t>(k)] = 1.0 + 0.01 * k;
    }
    (void)m.set_array("edge_a", ea);
    (void)m.set_array("edge_b", eb);
    (void)m.set_array("w", w);
    (void)m.set_array("q", q);
  };
  for (const std::string& name : {std::string("edge_scatter"),
                                  std::string("smooth_q")}) {
    KernelResult r;
    r.suite = "fun3d";
    r.name = name;
    r.serial_treewalk_s =
        measure(f3d, engine_opts(ExecEngine::kTreeWalk, false, threads),
                name, min_seconds, load_f3d);
    r.serial_plan_s =
        measure(f3d, engine_opts(ExecEngine::kPlan, false, threads), name,
                min_seconds, load_f3d);
    r.serial_native_s =
        measure(f3d, engine_opts(ExecEngine::kNative, false, threads),
                name, min_seconds, load_f3d);
    r.serial_opt_s = measure(f3d, opt_tier_opts(threads), name, min_seconds,
                             load_f3d, &opt_report);
    r.parallel_treewalk_s =
        measure(f3d, engine_opts(ExecEngine::kTreeWalk, true, threads),
                name, min_seconds, load_f3d);
    r.parallel_plan_s =
        measure(f3d, engine_opts(ExecEngine::kPlan, true, threads), name,
                min_seconds, load_f3d);
    r.parallel_plan_v4_s =
        measure_v4(f3d, name, threads, min_seconds, load_f3d,
                   &r.spec_promoted, &r.spec_misspeculations);
    NativeReport nrep;
    r.parallel_native_s =
        measure(f3d, engine_opts(ExecEngine::kNative, true, threads),
                name, min_seconds, load_f3d, &nrep);
    r.parallel_native_ungated_s =
        measure(f3d, engine_opts(ExecEngine::kNative, true, threads, 0),
                name, min_seconds, load_f3d);
    r.regions_total = nrep.regions_total;
    r.regions_fused = nrep.regions_fused;
    r.gated_regions = nrep.gated_serial_regions;
    results.push_back(r);
  }

  // --- report
  TextTable table({"kernel", "serial treewalk", "serial plan",
                   "serial native", "serial opt", "plan x", "native x",
                   "opt x", "parallel plan", "par plan v4", "spec",
                   "par native gated", "gated x",
                   "par native ungated", "ungated x", "regions",
                   "fused", "gated"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight, Align::kRight});
  double log_sum = 0.0;
  double native_log_sum = 0.0;
  double opt_log_sum = 0.0;
  double pnative_log_sum = 0.0;
  double ungated_log_sum = 0.0;
  int sarb_count = 0;
  int native_count = 0;
  int opt_count = 0;
  int pnative_count = 0;
  int ungated_count = 0;
  int gate_violations = 0;
  for (const KernelResult& r : results) {
    const double s_speed =
        r.serial_plan_s > 0.0 ? r.serial_treewalk_s / r.serial_plan_s : 0.0;
    // Native speedup over the *plan* engine: the number the native
    // engine has to win to justify the compile round-trip.
    const double n_speed = r.serial_native_s > 0.0
                               ? r.serial_plan_s / r.serial_native_s
                               : 0.0;
    // Opt-tier speedup over the plan VM — the same denominator as the
    // interp-tier native column, so "opt x >= native x" reads directly
    // as the typed/-O3 emission paying for its looser numeric contract.
    const double o_speed =
        r.serial_opt_s > 0.0 ? r.serial_plan_s / r.serial_opt_s : 0.0;
    // Parallel-native speedup over *serial native*: what threading the
    // kernel itself buys on this host (bounded by its core count).
    // Gated is the default configuration; ungated (gate 0) shows what
    // the profit gate saved by keeping sub-threshold regions serial.
    const double pn_speed = r.parallel_native_s > 0.0
                                ? r.serial_native_s / r.parallel_native_s
                                : 0.0;
    const double pu_speed =
        r.parallel_native_ungated_s > 0.0
            ? r.serial_native_s / r.parallel_native_ungated_s
            : 0.0;
    if (r.suite == "sarb" && s_speed > 0.0) {
      log_sum += std::log(s_speed);
      ++sarb_count;
    }
    if (r.suite == "sarb" && n_speed > 0.0) {
      native_log_sum += std::log(n_speed);
      ++native_count;
    }
    if (r.suite == "sarb" && o_speed > 0.0) {
      opt_log_sum += std::log(o_speed);
      ++opt_count;
    }
    if (r.suite == "sarb" && pn_speed > 0.0) {
      pnative_log_sum += std::log(pn_speed);
      ++pnative_count;
    }
    if (r.suite == "sarb" && pu_speed > 0.0) {
      ungated_log_sum += std::log(pu_speed);
      ++ungated_count;
    }
    if (check_gate > 0.0 && pn_speed > 0.0 && pn_speed < check_gate) {
      std::fprintf(stderr,
                   "interp_engine: GATE CHECK FAILED: %s/%s gated parallel"
                   " native is %.3fx serial native (< %.2fx)\n",
                   r.suite.c_str(), r.name.c_str(), pn_speed, check_gate);
      ++gate_violations;
    }
    table.add_row({r.suite + "/" + r.name,
                   fmt(r.serial_treewalk_s * 1e6) + " us",
                   fmt(r.serial_plan_s * 1e6) + " us",
                   fmt(r.serial_native_s * 1e6) + " us",
                   fmt(r.serial_opt_s * 1e6) + " us",
                   fmt(s_speed, "%.2f") + "x",
                   fmt(n_speed, "%.2f") + "x",
                   fmt(o_speed, "%.2f") + "x",
                   fmt(r.parallel_plan_s * 1e6) + " us",
                   fmt(r.parallel_plan_v4_s * 1e6) + " us",
                   std::to_string(r.spec_promoted) + "/" +
                       std::to_string(r.spec_misspeculations),
                   fmt(r.parallel_native_s * 1e6) + " us",
                   fmt(pn_speed, "%.2f") + "x",
                   fmt(r.parallel_native_ungated_s * 1e6) + " us",
                   fmt(pu_speed, "%.2f") + "x",
                   std::to_string(r.regions_total),
                   std::to_string(r.regions_fused),
                   std::to_string(r.gated_regions)});
  }
  const double geomean =
      sarb_count > 0 ? std::exp(log_sum / sarb_count) : 0.0;
  const double native_geomean =
      native_count > 0 ? std::exp(native_log_sum / native_count) : 0.0;
  const double opt_geomean =
      opt_count > 0 ? std::exp(opt_log_sum / opt_count) : 0.0;
  const double pnative_geomean =
      pnative_count > 0 ? std::exp(pnative_log_sum / pnative_count) : 0.0;
  const double ungated_geomean =
      ungated_count > 0 ? std::exp(ungated_log_sum / ungated_count) : 0.0;
  const unsigned host_cores = std::thread::hardware_concurrency();
  std::printf("== execution engines: tree-walk vs flat plans vs native JIT "
              "(%d threads for parallel rows, %u host cores) ==\n\n%s\n",
              threads, host_cores, table.render().c_str());
  std::printf("SARB serial geomean speedup (plan vs tree-walk):      %.2fx\n",
              geomean);
  std::printf("SARB serial geomean speedup (native vs plan):         %.2fx\n",
              native_geomean);
  std::printf("SARB serial geomean speedup (opt vs plan):            %.2fx\n",
              opt_geomean);
  std::printf("SARB parallel geomean speedup (gated vs ser-native):  %.2fx\n",
              pnative_geomean);
  std::printf("SARB parallel geomean speedup (ungated vs ser-nat):   %.2fx\n",
              ungated_geomean);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "interp_engine: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"benchmark\": \"interp_engine\",\n"
      << "  \"threads\": " << threads << ",\n"
      << "  \"levels\": " << levels << ",\n"
      << "  \"host_cores\": " << host_cores << ",\n"
      << "  \"regenerate\": \"bench/interp_engine --threads " << threads
      << " --levels " << levels << " --min-seconds " << fmt(min_seconds, "%g")
      << (check_gate > 0.0 ? cat(" --check-gate ", fmt(check_gate, "%g")) : "")
      << " --out BENCH_interp.json\",\n"
      << "  \"compiler\": \"" << opt_report.compiler << "\",\n"
      << "  \"compiler_version\": \"" << opt_report.compiler_version
      << "\",\n"
      << "  \"opt_compile_flags\": \"" << opt_report.compile_flags << "\",\n"
      << "  \"opt_host_key\": \"" << opt_report.host_key << "\",\n"
      << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    const double s_speed =
        r.serial_plan_s > 0.0 ? r.serial_treewalk_s / r.serial_plan_s : 0.0;
    const double n_speed = r.serial_native_s > 0.0
                               ? r.serial_plan_s / r.serial_native_s
                               : 0.0;
    const double o_speed =
        r.serial_opt_s > 0.0 ? r.serial_plan_s / r.serial_opt_s : 0.0;
    const double p_speed = r.parallel_plan_s > 0.0
                               ? r.parallel_treewalk_s / r.parallel_plan_s
                               : 0.0;
    // v4 vs the default-policy parallel plan run: what speculating on
    // the profile buys (or costs, via validation) beyond the static
    // verdicts — keep_directive treats v4 like v0, so the static
    // regions are identical between the two columns.
    const double v4_speed = r.parallel_plan_v4_s > 0.0
                                ? r.parallel_plan_s / r.parallel_plan_v4_s
                                : 0.0;
    const double pn_speed = r.parallel_native_s > 0.0
                                ? r.serial_native_s / r.parallel_native_s
                                : 0.0;
    const double pu_speed =
        r.parallel_native_ungated_s > 0.0
            ? r.serial_native_s / r.parallel_native_ungated_s
            : 0.0;
    out << "    {\"suite\": \"" << r.suite << "\", \"name\": \"" << r.name
        << "\", \"serial_treewalk_s\": " << fmt(r.serial_treewalk_s, "%.6g")
        << ", \"serial_plan_s\": " << fmt(r.serial_plan_s, "%.6g")
        << ", \"serial_native_s\": " << fmt(r.serial_native_s, "%.6g")
        << ", \"serial_opt_s\": " << fmt(r.serial_opt_s, "%.6g")
        << ", \"serial_speedup\": " << fmt(s_speed, "%.3f")
        << ", \"serial_native_speedup\": " << fmt(n_speed, "%.3f")
        << ", \"serial_opt_speedup\": " << fmt(o_speed, "%.3f")
        << ", \"parallel_treewalk_s\": " << fmt(r.parallel_treewalk_s, "%.6g")
        << ", \"parallel_plan_s\": " << fmt(r.parallel_plan_s, "%.6g")
        << ", \"parallel_plan_v4_s\": "
        << fmt(r.parallel_plan_v4_s, "%.6g")
        << ", \"parallel_plan_v4_speedup\": " << fmt(v4_speed, "%.3f")
        << ", \"spec_promoted_steps\": " << r.spec_promoted
        << ", \"spec_misspeculations\": " << r.spec_misspeculations
        << ", \"parallel_native_s\": " << fmt(r.parallel_native_s, "%.6g")
        << ", \"parallel_speedup\": " << fmt(p_speed, "%.3f")
        << ", \"parallel_native_speedup\": " << fmt(pn_speed, "%.3f")
        << ", \"parallel_native_ungated_s\": "
        << fmt(r.parallel_native_ungated_s, "%.6g")
        << ", \"parallel_native_ungated_speedup\": " << fmt(pu_speed, "%.3f")
        << ", \"regions_total\": " << r.regions_total
        << ", \"regions_fused\": " << r.regions_fused
        << ", \"gated_regions\": " << r.gated_regions << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"sarb_serial_geomean_speedup\": " << fmt(geomean, "%.3f")
      << ",\n  \"sarb_serial_native_geomean_speedup\": "
      << fmt(native_geomean, "%.3f")
      << ",\n  \"sarb_serial_opt_geomean_speedup\": "
      << fmt(opt_geomean, "%.3f")
      << ",\n  \"sarb_parallel_native_geomean_speedup\": "
      << fmt(pnative_geomean, "%.3f")
      << ",\n  \"sarb_parallel_native_ungated_geomean_speedup\": "
      << fmt(ungated_geomean, "%.3f") << "\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  if (gate_violations > 0) {
    std::fprintf(stderr, "interp_engine: %d kernel(s) failed the"
                 " --check-gate %.2f floor\n", gate_violations, check_gate);
    return 1;
  }
  return 0;
}
