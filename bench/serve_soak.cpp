// serve_soak — chaos soak for the glaf-serve daemon.
//
// Spins up an in-process Server on a private Unix socket, arms the
// deterministic fault registry (GLAF_FAULT sites: connection kills at
// accept, read/write faults and write stalls on both ends of the
// socket, frame-allocation failures, background-compile failures,
// instance-pool construction failures, kernel-cache load corruption
// and truncated publishes), then hammers the server from C client
// threads with a deterministic mix of kRun, kRunBatch, deadline-
// carrying, kHealth and kStats requests.
//
// The acceptance contract is the robustness tentpole's: EVERY request
// ends in exactly one of {bit-identical result, typed error} — never a
// hang (watchdog aborts the process), never a crash, never a wrong
// answer. The tier ceiling is native-interp, where results are
// bitwise identical to the plan tier by contract, so "wrong answer"
// is a plain != against a golden value computed before the faults
// arm.
//
//   bench/serve_soak --requests 6000 --clients 8 --seed 42
//       --out BENCH_soak.json
//   bench/serve_soak --smoke        # small counts for ctest/CI

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "support/cli.hpp"
#include "support/fault.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"
#include "support/strings.hpp"
#include "support/subprocess.hpp"
#include "support/timer.hpp"

using namespace glaf;

namespace {

/// Shared outcome ledger: every sub-request lands in exactly one
/// bucket, so ok + wrong + sum(errors) must equal the total issued.
struct Ledger {
  std::mutex mutex;
  std::uint64_t ok = 0;           ///< bit-identical result
  std::uint64_t wrong = 0;        ///< result mismatch (must stay 0)
  std::uint64_t health_probes = 0;
  std::uint64_t stats_probes = 0;
  std::uint64_t probe_errors = 0;
  std::map<std::string, std::uint64_t> errors;  ///< by status code name

  void record(const StatusOr<double>& result, double golden) {
    std::lock_guard<std::mutex> lock(mutex);
    if (!result.is_ok()) {
      ++errors[std::string(to_string(result.status().code()))];
    } else if (result.value() == golden) {
      ++ok;
    } else {
      ++wrong;
    }
  }
};

/// One soak client: its own connection, timeouts and retry budget, and
/// a per-thread deterministic request mix.
void client_main(const std::string& socket_path, std::uint64_t sid,
                 double golden, std::uint64_t seed, int thread_id,
                 int requests, Ledger* ledger) {
  serve::Client::Options copts;
  copts.connect_timeout_ms = 5000;
  copts.read_timeout_ms = 20000;
  copts.retries = 8;
  copts.retry_backoff_ms = 2;
  copts.retry_seed = seed ^ static_cast<std::uint64_t>(thread_id) * 977;
  serve::Client client;
  // Initial connect may hit the accept-kill fault repeatedly; the
  // retry budget absorbs it. A client that still cannot connect books
  // every planned request as a typed error — accounted, not lost.
  Status connected = client.connect(socket_path, copts);

  SplitMix64 rng(seed ^ (static_cast<std::uint64_t>(thread_id) + 1) *
                            0x9E3779B97F4A7C15ULL);
  int issued = 0;
  while (issued < requests) {
    if (!client.connected()) {
      connected = client.connect(socket_path, copts);
      if (!connected.is_ok()) {
        std::lock_guard<std::mutex> lock(ledger->mutex);
        ++ledger->errors[std::string(to_string(connected.code()))];
        ++issued;
        continue;
      }
    }
    const std::uint64_t roll = rng.next_below(100);
    if (roll < 12 && issued + 4 <= requests) {
      // Batch of 4 (one wire frame, one ledger entry per sub-result).
      const auto reply =
          client.run_batch(sid, "entropy_interface", 4, 0, {});
      if (reply.is_ok()) {
        for (const serve::RunReplyMsg& r : reply.value().results) {
          ledger->record(StatusOr<double>(r.result), golden);
        }
      } else {
        std::lock_guard<std::mutex> lock(ledger->mutex);
        ledger->errors[std::string(to_string(reply.status().code()))] += 4;
      }
      issued += 4;
    } else if (roll < 18) {
      // Tight deadline: kDeadlineExceeded and success are both
      // legitimate endings; a wrong VALUE never is.
      const auto reply = client.run(sid, "entropy_interface", {},
                                    /*deadline_ms=*/1);
      if (reply.is_ok()) {
        ledger->record(StatusOr<double>(reply.value().result), golden);
      } else {
        ledger->record(StatusOr<double>(reply.status()), golden);
      }
      ++issued;
    } else if (roll < 21) {
      // Control-plane probe under chaos (not a run; tracked apart).
      const bool use_health = (roll & 1) != 0;
      const Status st = use_health
                            ? client.health().status()
                            : client.stats(0).status();
      std::lock_guard<std::mutex> lock(ledger->mutex);
      ++(use_health ? ledger->health_probes : ledger->stats_probes);
      if (!st.is_ok()) ++ledger->probe_errors;
    } else {
      const auto reply = client.run(sid, "entropy_interface");
      if (reply.is_ok()) {
        ledger->record(StatusOr<double>(reply.value().result), golden);
      } else {
        ledger->record(StatusOr<double>(reply.status()), golden);
      }
      ++issued;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const int requests =
      static_cast<int>(args.get_int("requests", smoke ? 400 : 6000));
  const int clients = static_cast<int>(args.get_int("clients", smoke ? 4 : 8));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42));
  const int watchdog_s =
      static_cast<int>(args.get_int("watchdog-s", smoke ? 120 : 300));
  const std::string out_path = args.get("out", "");

  // Private cache dir: the publish-truncation fault corrupts cache
  // files on purpose, and that must never leak into the shared
  // environment cache.
  const std::string cache_dir = cat("/tmp/glaf-soak-cache-", ::getpid());
  const std::string socket_path =
      cat("/tmp/glaf-serve-soak-", ::getpid(), ".sock");

  serve::Server::Options options;
  options.socket_path = socket_path;
  options.threads =
      std::max(2, static_cast<int>(std::thread::hardware_concurrency()) / 2);
  options.cache_dir = cache_dir;
  options.breaker_backoff_ms = 50;  // let tripped breakers re-probe
  serve::Server server(options);
  const Status started = server.start();
  if (!started.is_ok()) {
    std::fprintf(stderr, "serve_soak: %s\n", started.message().c_str());
    return 1;
  }

  // Tier ceiling native-interp: every successful result must be
  // bitwise identical to the plan tier (the opt tier is only
  // ulp-bounded, which would turn "wrong answer" into a judgement
  // call).
  serve::ExecConfig config;
  config.target_tier = cc_available(default_cc()) ? 1 : 0;

  serve::Client loader;
  if (!loader.connect(socket_path).is_ok()) {
    std::fprintf(stderr, "serve_soak: cannot connect\n");
    return 1;
  }
  const auto load = loader.load_builtin("sarb", config);
  if (!load.is_ok()) {
    std::fprintf(stderr, "serve_soak: load: %s\n",
                 load.status().message().c_str());
    return 1;
  }
  const std::uint64_t sid = load.value().session_id;
  const auto golden_reply = loader.run(sid, "entropy_interface");
  if (!golden_reply.is_ok()) {
    std::fprintf(stderr, "serve_soak: golden run: %s\n",
                 golden_reply.status().message().c_str());
    return 1;
  }
  const double golden = golden_reply.value().result;
  loader.close();

  // Arm the chaos. Probabilities are per-occurrence; the compile and
  // cache sites run rarely, so they get the big ones.
  const std::string spec =
      "serve.accept:0.02,"
      "serve.sock.read:0.004,"
      "serve.sock.write:0.004,"
      "serve.sock.write_stall:0.01,"
      "serve.frame.alloc:0.002,"
      "serve.compile:0.25,"
      "serve.pool.construct:0.05,"
      "jit.engine.load:0.05,"
      "jit.cache.load:0.1,"
      "jit.cache.publish:0.25";
  const Status armed = fault::configure(spec, seed);
  if (!armed.is_ok()) {
    std::fprintf(stderr, "serve_soak: fault spec: %s\n",
                 armed.message().c_str());
    return 1;
  }

  // Watchdog: the whole point is "never a hang" — if the soak wedges,
  // die loudly with a distinct exit code instead of timing CI out.
  std::atomic<bool> done{false};
  std::thread watchdog([&done, watchdog_s] {
    for (int i = 0; i < watchdog_s * 10; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      if (done.load(std::memory_order_acquire)) return;
    }
    std::fprintf(stderr, "serve_soak: WATCHDOG: soak wedged, aborting\n");
    std::fflush(stderr);
    ::_exit(3);
  });

  Ledger ledger;
  const int per_client = std::max(1, requests / std::max(1, clients));
  std::vector<std::thread> threads;
  Timer total;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back(client_main, socket_path, sid, golden, seed, c,
                         per_client, &ledger);
  }
  for (auto& t : threads) t.join();
  const double seconds = total.seconds();

  // Disarm before teardown so shutdown itself is fault-free.
  const std::vector<fault::SiteStats> fstats = fault::stats();
  fault::clear();
  done.store(true, std::memory_order_release);
  watchdog.join();
  server.stop();
  (void)run_command("rm -rf " + cache_dir);

  const std::uint64_t issued =
      static_cast<std::uint64_t>(per_client) *
      static_cast<std::uint64_t>(clients);
  std::uint64_t error_total = 0;
  for (const auto& [code, n] : ledger.errors) error_total += n;
  const std::uint64_t accounted = ledger.ok + ledger.wrong + error_total;

  JsonWriter w;
  w.begin_object();
  w.key("benchmark");
  w.value("serve_soak");
  w.key("seed");
  w.value(seed);
  w.key("clients");
  w.value(clients);
  w.key("requests_issued");
  w.value(issued);
  w.key("seconds");
  w.value(seconds);
  w.key("qps");
  w.value(seconds > 0 ? static_cast<double>(issued) / seconds : 0.0);
  w.key("tier_ceiling");
  w.value(static_cast<std::uint64_t>(config.target_tier));
  w.key("regenerate");
  w.value(cat("bench/serve_soak --requests ", requests, " --clients ",
              clients, " --seed ", seed, " --out BENCH_soak.json"));
  w.key("fault_spec");
  w.value(spec);
  w.key("ok_bit_identical");
  w.value(ledger.ok);
  w.key("wrong_value");
  w.value(ledger.wrong);
  w.key("typed_errors");
  w.begin_object();
  for (const auto& [code, n] : ledger.errors) {
    w.key(code);
    w.value(n);
  }
  w.end_object();
  w.key("accounted");
  w.value(accounted);
  w.key("health_probes");
  w.value(ledger.health_probes);
  w.key("stats_probes");
  w.value(ledger.stats_probes);
  w.key("probe_errors");
  w.value(ledger.probe_errors);
  w.key("faults");
  w.begin_array();
  for (const fault::SiteStats& s : fstats) {
    w.begin_object();
    w.key("site");
    w.value(s.site);
    w.key("probability");
    w.value(s.probability);
    w.key("checks");
    w.value(s.checks);
    w.key("injections");
    w.value(s.injections);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  const std::string json = std::move(w).str();
  if (out_path.empty()) {
    std::printf("%s\n", json.c_str());
  } else {
    FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "serve_soak: cannot write %s\n",
                   out_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::fprintf(stderr, "serve_soak: wrote %s\n", out_path.c_str());
  }

  std::fprintf(stderr,
               "serve_soak: %llu issued, %llu ok, %llu wrong, %llu typed"
               " errors (%.0f qps)\n",
               static_cast<unsigned long long>(issued),
               static_cast<unsigned long long>(ledger.ok),
               static_cast<unsigned long long>(ledger.wrong),
               static_cast<unsigned long long>(error_total),
               seconds > 0 ? static_cast<double>(issued) / seconds : 0.0);
  if (ledger.wrong != 0) {
    std::fprintf(stderr, "serve_soak: FAIL: wrong answers under fault\n");
    return 1;
  }
  if (accounted != issued) {
    std::fprintf(stderr,
                 "serve_soak: FAIL: %llu of %llu requests unaccounted\n",
                 static_cast<unsigned long long>(issued - accounted),
                 static_cast<unsigned long long>(issued));
    return 1;
  }
  if (ledger.ok == 0) {
    std::fprintf(stderr, "serve_soak: FAIL: no request ever succeeded\n");
    return 1;
  }
  std::fprintf(stderr, "serve_soak: OK\n");
  return 0;
}
