// Google-benchmark microbenchmarks of the framework itself: IR
// construction, validation, auto-parallelization analysis, code
// generation for each back-end, and interpreter throughput. These guard
// the framework's own performance (a tooling concern, not a paper
// figure).

#include <benchmark/benchmark.h>

#include "codegen/c.hpp"
#include "codegen/fortran.hpp"
#include "codegen/opencl.hpp"
#include "analysis/transform.hpp"
#include "core/serialize.hpp"
#include "core/validate.hpp"
#include "fuliou/glaf_kernels.hpp"
#include "fuliou/harness.hpp"
#include "fuliou/reference.hpp"
#include "fun3d/recon.hpp"
#include "interp/machine.hpp"

namespace {

using namespace glaf;
using namespace glaf::fuliou;

const Program& sarb_program() {
  static const Program p = build_sarb_program();
  return p;
}

const ProgramAnalysis& sarb_analysis() {
  static const ProgramAnalysis a = analyze_program(sarb_program());
  return a;
}

void BM_BuildSarbProgram(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_sarb_program());
  }
}
BENCHMARK(BM_BuildSarbProgram);

void BM_ValidateSarb(benchmark::State& state) {
  const Program& p = sarb_program();
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate(p));
  }
}
BENCHMARK(BM_ValidateSarb);

void BM_AnalyzeSarb(benchmark::State& state) {
  const Program& p = sarb_program();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_program(p));
  }
}
BENCHMARK(BM_AnalyzeSarb);

void BM_GenerateFortran(benchmark::State& state) {
  const Program& p = sarb_program();
  const ProgramAnalysis& a = sarb_analysis();
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_fortran(p, a));
  }
}
BENCHMARK(BM_GenerateFortran);

void BM_GenerateC(benchmark::State& state) {
  const Program& p = sarb_program();
  const ProgramAnalysis& a = sarb_analysis();
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_c(p, a));
  }
}
BENCHMARK(BM_GenerateC);

void BM_GenerateOpenCl(benchmark::State& state) {
  const Program& p = sarb_program();
  const ProgramAnalysis& a = sarb_analysis();
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_opencl(p, a));
  }
}
BENCHMARK(BM_GenerateOpenCl);

void BM_InterpretSarbZone(benchmark::State& state) {
  Machine machine(sarb_program());
  const AtmosphereProfile profile = make_profile(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_glaf_sarb(machine, profile));
  }
  state.SetItemsProcessed(state.iterations() * kNumLevels);
}
BENCHMARK(BM_InterpretSarbZone);

void BM_ReferenceSarbZone(benchmark::State& state) {
  const AtmosphereProfile profile = make_profile(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_reference(profile));
  }
  state.SetItemsProcessed(state.iterations() * kNumLevels);
}
BENCHMARK(BM_ReferenceSarbZone);

void BM_ReconstructOriginal(benchmark::State& state) {
  const fun3d::Mesh mesh =
      fun3d::make_mesh(state.range(0), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fun3d::reconstruct_original(mesh));
  }
  state.SetItemsProcessed(state.iterations() * mesh.n_edges);
}
BENCHMARK(BM_ReconstructOriginal)->Arg(1000)->Arg(4000);

void BM_MakeMesh(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(fun3d::make_mesh(state.range(0), 42));
  }
}
BENCHMARK(BM_MakeMesh)->Arg(1000)->Arg(4000);

void BM_SerializeSarb(benchmark::State& state) {
  const Program& p = sarb_program();
  for (auto _ : state) {
    benchmark::DoNotOptimize(serialize_program(p));
  }
}
BENCHMARK(BM_SerializeSarb);

void BM_ParseSarb(benchmark::State& state) {
  const std::string text = serialize_program(sarb_program());
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_program(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_ParseSarb);

void BM_FoldConstantsSarb(benchmark::State& state) {
  const Program& p = sarb_program();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fold_constants(p));
  }
}
BENCHMARK(BM_FoldConstantsSarb);

}  // namespace

BENCHMARK_MAIN();
