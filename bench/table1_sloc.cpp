// Reproduces Table 1: "Subroutines implemented using GLAF" — source lines
// of code per Synoptic SARB subroutine.
//
// The paper reports the SLOC of the original FORTRAN subroutines the NASA
// scientists selected; we report the SLOC of the FORTRAN that our GLAF
// generates for the synthetic kernel set (the real fuliou physics is far
// larger, so absolute counts differ; the *ordering* — which subroutine
// dominates — is the reproducible shape). C back-end counts are shown for
// reference.

#include <cstdio>

#include "codegen/c.hpp"
#include "codegen/fortran.hpp"
#include "fuliou/glaf_kernels.hpp"
#include "support/sloc.hpp"
#include "support/table.hpp"

using namespace glaf;
using namespace glaf::fuliou;

int main() {
  std::printf("== Table 1: Subroutines implemented using GLAF ==\n\n");

  const Program program = build_sarb_program();
  const ProgramAnalysis analysis = analyze_program(program);
  const GeneratedCode fortran = generate_fortran(program, analysis);
  const GeneratedCode c_code = generate_c(program, analysis);

  TextTable table({"Subroutine name", "SLOC (paper)", "SLOC (gen. FORTRAN)",
                   "SLOC (gen. C)"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight,
                       Align::kRight});
  int paper_total = 0;
  int fortran_total = 0;
  int c_total = 0;
  for (const std::string& name : table1_subroutines()) {
    const int paper = paper_sloc(name);
    const int f = count_sloc(fortran.per_function.at(name),
                             SlocLanguage::kFortran);
    const int c = count_sloc(c_code.per_function.at(name), SlocLanguage::kC);
    paper_total += paper;
    fortran_total += f;
    c_total += c;
    table.add_row({name, std::to_string(paper), std::to_string(f),
                   std::to_string(c)});
  }
  table.add_row({"TOTAL", std::to_string(paper_total),
                 std::to_string(fortran_total), std::to_string(c_total)});
  std::printf("%s\n", table.render().c_str());

  std::printf("shape check: longwave_entropy_model is the largest "
              "subroutine in both columns; shortwave_entropy_model the "
              "smallest (as in the paper).\n");
  return 0;
}
