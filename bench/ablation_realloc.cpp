// Ablation: the no-reallocation (SAVE) option of §4.2.1 — measured on
// this host for real (the reallocation cost is a serial effect and needs
// no multi-core hardware), across mesh sizes.
//
// "the innermost edge loop has 50 dynamically allocated temporary arrays
// and is called an average of 10 times per cell ... Once this dynamic
// reallocation was eliminated via FORTRAN SAVE attributes ...
// parallelization began to yield a performance benefit."

#include <cstdio>

#include "fun3d/recon.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

using namespace glaf;
using namespace glaf::fun3d;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  std::printf("== Ablation: temporary reallocation vs SAVE'd buffers "
              "(measured on this host, serial) ==\n\n");

  TextTable table({"cells", "edge calls", "realloc time (s)",
                   "no-realloc time (s)", "realloc slowdown"});
  table.set_alignment({Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight});

  for (const std::int64_t cells : {2000, 8000, 32000}) {
    const Mesh mesh = make_mesh(cells, 7);
    ReconOptions realloc_opt;     // default: reallocate
    ReconOptions save_opt;
    save_opt.no_realloc = true;

    volatile double sink = 0.0;
    const double t_realloc = time_best(
        [&] { sink = rms_of(reconstruct_glaf(mesh, realloc_opt).jac); },
        0.05, 2);
    const double t_saved = time_best(
        [&] { sink = rms_of(reconstruct_glaf(mesh, save_opt).jac); }, 0.05,
        2);
    (void)sink;
    const ReconResult counted = reconstruct_glaf(mesh, realloc_opt);
    char slow[32];
    std::snprintf(slow, sizeof(slow), "%.2fx", t_realloc / t_saved);
    char tr[32];
    char ts[32];
    std::snprintf(tr, sizeof(tr), "%.4f", t_realloc);
    std::snprintf(ts, sizeof(ts), "%.4f", t_saved);
    table.add_row({std::to_string(cells),
                   std::to_string(counted.stats.edge_calls), tr, ts, slow});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("every edge_loop call reallocates %d temporary arrays unless "
              "the SAVE option is on; the slowdown is what made the "
              "paper's early parallel runs lose to serial.\n", kEdgeTemps);
  return 0;
}
