// Reproduces Figure 7: 16-thread parallel speed-up of the GLAF-generated
// FUN3D matrix reconstruction for ALL combinations of parallelization and
// no-reallocation options, plus the manually parallelized comparison
// version.
//
// Pipeline:
//  1. build a synthetic mesh and RUN the mini-app on this host (serial)
//     to obtain real execution counters and calibrate the unit costs
//     (allocation cost, fork/join cost, atomic cost, body throughput);
//  2. scale the workload shape to the paper's dataset (1M cells / 10M
//     edges by default; --cells to override);
//  3. evaluate the calibrated model at 16 threads on the dual-Xeon
//     machine model and print every Figure 7 bar.

#include <algorithm>
#include <cstdio>

#include "fun3d/recon.hpp"
#include "perfmodel/calibrate.hpp"
#include "perfmodel/fun3d_model.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace glaf;
using namespace glaf::fun3d;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::int64_t probe_cells = args.get_int("probe-cells", 20000);
  const std::int64_t paper_cells = args.get_int("cells", 1000000);
  const int threads = static_cast<int>(args.get_int("threads", 16));

  std::printf("== Figure 7: FUN3D matrix reconstruction, %d-thread "
              "speed-ups (modeled dual Xeon E5-2637v4) ==\n\n", threads);

  // 1. Real run on this host for counters + calibration.
  const Mesh probe = make_mesh(probe_cells, 42);
  const ReconResult probe_run = reconstruct_original(probe);
  std::printf("probe run on this host: %lld cells, %lld edge calls, "
              "%llu skipped cells, output RMS %.6e\n",
              static_cast<long long>(probe.n_cells),
              static_cast<long long>(probe.n_edges),
              static_cast<unsigned long long>(probe_run.stats.cells_skipped),
              rms_of(probe_run.jac));
  const Fun3dUnitCosts costs = measure_fun3d_unit_costs(probe);
  std::printf("calibrated unit costs: edge %.3f us, alloc %.4f us, "
              "fork %.2f us, atomic factor %.2f\n\n",
              costs.edge_us, costs.alloc_us, costs.fork_base_us,
              costs.atomic_factor);

  // 2. Scale the workload shape to the paper's dataset.
  Fun3dWorkload workload = workload_from(probe, probe_run.stats);
  const double scale = static_cast<double>(paper_cells) /
                       static_cast<double>(probe.n_cells);
  workload.cells = paper_cells;
  workload.processed_cells =
      static_cast<std::int64_t>(workload.processed_cells * scale);
  workload.edges = static_cast<std::int64_t>(workload.edges * scale);
  std::printf("modeled dataset: %lld cells, %lld edge visits "
              "(paper: ~1M cells, ~10M edges)\n\n",
              static_cast<long long>(workload.cells),
              static_cast<long long>(workload.edges));

  // 3. Every Figure 7 bar.
  std::vector<Fun3dPoint> series =
      figure7_series(workload, threads, MachineModel::dual_xeon_e5_2637v4(),
                     costs);
  std::sort(series.begin(), series.end(),
            [](const Fun3dPoint& a, const Fun3dPoint& b) {
              return a.speedup > b.speedup;
            });

  TextTable table({"configuration", "speed-up vs original serial", "note"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kLeft});
  for (const Fun3dPoint& p : series) {
    std::string note;
    if (p.manual) note = "paper: 3.85x";
    if (!p.manual && p.options.par_edgejp && p.options.no_realloc &&
        !p.options.par_cell_loop && !p.options.par_edge_loop &&
        !p.options.par_ioff_search) {
      note = "paper best GLAF: 1.67x";
    }
    const double s = p.speedup;
    // The figure's log scale: deep slowdowns read better as 1/Nx.
    const std::string text =
        s >= 0.75 ? format_speedup(s)
                  : ("1/" + std::to_string(static_cast<int>(0.5 + 1.0 / s)) +
                     "x");
    table.add_row({p.label, text, note});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("shape: the manual version leads, the best GLAF "
              "configuration is coarse-grained EdgeJP parallelism with "
              "no-reallocation (~2.3x behind manual), and fine-grained "
              "interior parallelism falls off the bottom of the log scale "
              "— as in the paper.\n");
  return 0;
}
