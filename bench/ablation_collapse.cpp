// Ablation: the COLLAPSE(2) clause GLAF generates for nested parallel
// loops (paper §4.1.2 notes the v3 loops run 2 x 60 = 120 iterations
// *because* of COLLAPSE(2)). Without collapsing, only the outer
// 2-iteration hemisphere loop distributes, capping parallelism at 2.

#include <cstdio>

#include "fuliou/glaf_kernels.hpp"
#include "fuliou/harness.hpp"
#include "perfmodel/sarb_model.hpp"
#include "support/table.hpp"

using namespace glaf;
using namespace glaf::fuliou;

int main() {
  std::printf("== Ablation: COLLAPSE(2) on the v3 complex loops "
              "(modeled i5-2400) ==\n\n");

  const Program program = build_sarb_program();
  const ProgramAnalysis analysis = analyze_program(program);
  const std::vector<LoopInfo> inventory =
      sarb_loop_inventory(program, analysis);
  const MachineModel machine = MachineModel::i5_2400();

  SarbModelParams with;
  SarbModelParams without;
  without.collapse_directive = false;

  const double original = model_sarb_time(
      inventory, SarbVariant::kOriginalSerial, DirectivePolicy::kV0, 1,
      machine, with);

  TextTable table({"threads", "v3 speed-up (COLLAPSE(2))",
                   "v3 speed-up (no collapse)"});
  table.set_alignment({Align::kRight, Align::kRight, Align::kRight});
  for (const int t : {1, 2, 4, 8}) {
    const double t_with = model_sarb_time(
        inventory, SarbVariant::kGlafParallel, DirectivePolicy::kV3, t,
        machine, with);
    const double t_without = model_sarb_time(
        inventory, SarbVariant::kGlafParallel, DirectivePolicy::kV3, t,
        machine, without);
    table.add_row({std::to_string(t), format_speedup(original / t_with),
                   format_speedup(original / t_without)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("without COLLAPSE(2) the 2-iteration hemisphere loop caps "
              "parallel gains at ~2 ways regardless of thread count — the "
              "clause is what makes 4 threads worthwhile.\n");
  return 0;
}
