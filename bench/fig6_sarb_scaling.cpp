// Reproduces Figure 6: parallel scalability — speed-up of the fastest
// GLAF-generated version (GLAF-parallel v3) with 1/2/4/8 threads versus
// the GLAF serial implementation, on the modeled Intel i5-2400.
//
// The paper's explanation is reproduced structurally: under v3 only the
// two COLLAPSE(2) complex loops (2 x 60 = 120 iterations) are parallel,
// so four threads is the sweet spot and eight (hyper-threaded,
// oversubscribed) collapses.

#include <cstdio>

#include "fuliou/glaf_kernels.hpp"
#include "fuliou/harness.hpp"
#include "perfmodel/sarb_model.hpp"
#include "support/table.hpp"

using namespace glaf;
using namespace glaf::fuliou;

int main() {
  std::printf("== Figure 6: GLAF-parallel v3 scalability vs GLAF serial "
              "(modeled i5-2400) ==\n\n");

  const Program program = build_sarb_program();
  const ProgramAnalysis analysis = analyze_program(program);
  const std::vector<LoopInfo> inventory =
      sarb_loop_inventory(program, analysis);

  const std::vector<SarbPoint> series = figure6_series(
      inventory, {1, 2, 4, 8}, MachineModel::i5_2400());
  const double paper[] = {1.00, 0.92, 1.24, 1.59, 0.70};

  TextTable table({"Implementation", "speed-up (paper)",
                   "speed-up (modeled)"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight});
  for (std::size_t i = 0; i < series.size(); ++i) {
    table.add_row({series[i].label,
                   i < 5 ? format_speedup(paper[i]) : "-",
                   format_speedup(series[i].speedup)});
  }
  std::printf("%s\n", table.render().c_str());

  // Structural facts behind the curve (from the real analysis).
  int collapsed = 0;
  for (const LoopInfo& info : inventory) {
    if (info.function == "longwave_entropy_model" &&
        info.verdict.loop_class == LoopClass::kComplex &&
        info.verdict.parallelizable) {
      std::printf("parallel loop under v3: %s/%s — COLLAPSE(%d), %lld "
                  "iterations\n",
                  info.function.c_str(), info.step.c_str(),
                  info.verdict.collapse,
                  static_cast<long long>(info.verdict.trip_count));
      ++collapsed;
    }
  }
  std::printf("\n%d collapsed 2x60 loops carry all v3 parallelism; beyond "
              "4 physical cores the small iteration count cannot amortize "
              "the OpenMP runtime and coherence overheads (paper §4.1.2)."
              "\n", collapsed);
  return 0;
}
