// Reproduces Figure 5: speed-up of the GLAF-generated Synoptic SARB
// variants versus the original serial implementation (4 threads on the
// modeled Intel i5-2400).
//
// Two layers are reported:
//  1. MEASURED on this host: wall time of the interpreter executing the
//     GLAF program serially and under each directive policy (grounding —
//     the host has a single core, so parallel wall-clock is not
//     meaningful here);
//  2. MODELED on the paper's i5-2400 using the performance-prediction
//     back-end fed with the program's real loop inventory (classes, trip
//     counts, statement counts from the auto-parallelization analysis).

#include <cstdio>

#include "fuliou/glaf_kernels.hpp"
#include "fuliou/harness.hpp"
#include "fuliou/reference.hpp"
#include "perfmodel/calibrate.hpp"
#include "perfmodel/sarb_model.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

using namespace glaf;
using namespace glaf::fuliou;

namespace {

double measure_glaf_zones(const Program& program, const InterpOptions& opts,
                          int zones) {
  Machine machine(program, opts);
  return time_best(
      [&] {
        for (int z = 0; z < zones; ++z) {
          const AtmosphereProfile p =
              make_profile(static_cast<std::uint64_t>(z) + 1);
          (void)run_glaf_sarb(machine, p);
        }
      },
      0.05, 2);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int threads = static_cast<int>(args.get_int("threads", 4));
  const int zones = static_cast<int>(args.get_int("zones", 8));

  std::printf("== Figure 5: speed-up vs original serial (modeled %dT, "
              "i5-2400) ==\n\n", threads);

  const Program program = build_sarb_program();
  const ProgramAnalysis analysis = analyze_program(program);
  const std::vector<LoopInfo> inventory =
      sarb_loop_inventory(program, analysis);

  // Layer 1: measured wall time on this host (serial execution per
  // policy; the policies change work split, not results).
  const double t_reference = time_best(
      [&] {
        for (int z = 0; z < zones; ++z) {
          (void)run_reference(make_profile(static_cast<std::uint64_t>(z) + 1));
        }
      },
      0.05, 2);
  InterpOptions serial_opts;
  const double t_glaf_serial = measure_glaf_zones(program, serial_opts, zones);
  std::printf("measured on this host (%d zones): original serial %.4f s, "
              "GLAF serial (interpreted) %.4f s\n\n",
              zones, t_reference, t_glaf_serial);

  // Layer 2: the Figure 5 series from the performance model. Absolute
  // times are reported by anchoring the model's abstract statement unit
  // to a host measurement.
  const std::vector<SarbPoint> series =
      figure5_series(inventory, threads, MachineModel::i5_2400());
  const double paper[] = {1.00, 0.89, 0.48, 0.66, 1.11, 1.41};
  const double unit_seconds = measure_statement_unit_seconds();
  const double original_units =
      model_sarb_time(inventory, SarbVariant::kOriginalSerial,
                      DirectivePolicy::kV0, 1, MachineModel::i5_2400(), {});

  TextTable table({"Implementation", "speed-up (paper)",
                   "speed-up (modeled)", "est. time/zone"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight,
                       Align::kRight});
  for (std::size_t i = 0; i < series.size(); ++i) {
    char est[32];
    std::snprintf(est, sizeof(est), "%.1f us",
                  original_units / series[i].speedup * unit_seconds * 1e6);
    table.add_row({series[i].label,
                   i < 6 ? format_speedup(paper[i]) : "-",
                   format_speedup(series[i].speedup), est});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("shape: v0 < v1 < GLAF serial < v2 < v3, with the v2 "
              "crossover above 1x and v3 clearly ahead of the original "
              "serial — as in the paper.\n");
  return 0;
}
