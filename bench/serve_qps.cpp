// serve_qps — load generator for the glaf-serve daemon.
//
// Spins up an in-process Server on a private Unix socket and drives it
// through three phases, all running the SARB entropy_interface entry:
//
//   serial      one client, one request at a time (baseline latency)
//   concurrent  C clients, each running requests back-to-back — socket
//               concurrency the batcher coalesces into parallel sweeps
//   batched     kRunBatch frames of B requests — one round trip, one
//               sweep, the throughput ceiling
//
// Reports QPS and p50/p99 latency per phase, the session's tier
// promotion timeline (load → native-interp [→ native-opt]), and the
// batcher's coalescing counters. The acceptance bar: batched QPS must
// beat serial one-at-a-time QPS.
//
//   bench/serve_qps --threads 8 --requests 400 --clients 8 --batch 64
//       --tier interp --out BENCH_serve.json
//   bench/serve_qps --smoke        # tiny counts, exercise every phase

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "support/subprocess.hpp"
#include "support/timer.hpp"

using namespace glaf;

namespace {

struct PhaseResult {
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t requests = 0;
};

double percentile(std::vector<double> ms, double p) {
  if (ms.empty()) return 0.0;
  std::sort(ms.begin(), ms.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(ms.size() - 1) + 0.5);
  return ms[std::min(idx, ms.size() - 1)];
}

PhaseResult phase_from_latencies(const std::vector<double>& latencies_ms,
                                 double seconds) {
  PhaseResult r;
  r.seconds = seconds;
  r.requests = latencies_ms.size();
  r.qps = seconds > 0 ? static_cast<double>(latencies_ms.size()) / seconds
                      : 0.0;
  r.p50_ms = percentile(latencies_ms, 0.50);
  r.p99_ms = percentile(latencies_ms, 0.99);
  return r;
}

/// Phase 1: one connection, blocking request/reply, no pipelining.
PhaseResult run_serial(const std::string& socket_path, std::uint64_t sid,
                       int requests) {
  serve::Client client;
  if (!client.connect(socket_path).is_ok()) return {};
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(requests));
  Timer total;
  for (int i = 0; i < requests; ++i) {
    Timer t;
    const auto reply = client.run(sid, "entropy_interface");
    if (!reply.is_ok()) {
      std::fprintf(stderr, "serve_qps: serial run failed: %s\n",
                   reply.status().message().c_str());
      return {};
    }
    latencies.push_back(t.milliseconds());
  }
  return phase_from_latencies(latencies, total.seconds());
}

/// Phase 2: `clients` threads, each its own connection, all hammering
/// concurrently — this is the load shape the batcher coalesces.
PhaseResult run_concurrent(const std::string& socket_path,
                           std::uint64_t sid, int clients,
                           int requests_per_client) {
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  Timer total;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::Client client;
      if (!client.connect(socket_path).is_ok()) return;
      auto& mine = latencies[static_cast<std::size_t>(c)];
      mine.reserve(static_cast<std::size_t>(requests_per_client));
      for (int i = 0; i < requests_per_client; ++i) {
        Timer t;
        if (!client.run(sid, "entropy_interface").is_ok()) return;
        mine.push_back(t.milliseconds());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = total.seconds();
  std::vector<double> all;
  for (const auto& v : latencies) {
    all.insert(all.end(), v.begin(), v.end());
  }
  return phase_from_latencies(all, seconds);
}

/// Phase 3: kRunBatch frames — B requests per round trip. Latency here
/// is per-frame (the whole batch), so only QPS is comparable.
PhaseResult run_batched(const std::string& socket_path, std::uint64_t sid,
                        int requests, int batch) {
  serve::Client client;
  if (!client.connect(socket_path).is_ok()) return {};
  std::vector<double> frame_ms;
  std::uint64_t done = 0;
  Timer total;
  while (done < static_cast<std::uint64_t>(requests)) {
    const auto count = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(batch),
        static_cast<std::uint64_t>(requests) - done));
    Timer t;
    const auto reply =
        client.run_batch(sid, "entropy_interface", count, 0, {});
    if (!reply.is_ok()) {
      std::fprintf(stderr, "serve_qps: batch failed: %s\n",
                   reply.status().message().c_str());
      return {};
    }
    frame_ms.push_back(t.milliseconds());
    done += count;
  }
  PhaseResult r;
  r.seconds = total.seconds();
  r.requests = done;
  r.qps = r.seconds > 0 ? static_cast<double>(done) / r.seconds : 0.0;
  r.p50_ms = percentile(frame_ms, 0.50);
  r.p99_ms = percentile(frame_ms, 0.99);
  return r;
}

void write_phase(JsonWriter& w, const char* name, const PhaseResult& r) {
  w.key(name);
  w.begin_object();
  w.key("requests");
  w.value(r.requests);
  w.key("seconds");
  w.value(r.seconds);
  w.key("qps");
  w.value(r.qps);
  w.key("p50_ms");
  w.value(r.p50_ms);
  w.key("p99_ms");
  w.value(r.p99_ms);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  // Default the sweep pool to the host: oversubscribing a small box turns
  // the batch sweep into pure context-switch overhead.
  const int host_threads =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  const int threads = static_cast<int>(args.get_int("threads", host_threads));
  const int requests =
      static_cast<int>(args.get_int("requests", smoke ? 20 : 400));
  const int clients = static_cast<int>(args.get_int("clients", smoke ? 2 : 8));
  const int batch = static_cast<int>(args.get_int("batch", smoke ? 8 : 64));
  const std::string tier = args.get("tier", "interp");
  const std::string out_path = args.get("out", "");

  serve::ExecConfig config;
  if (tier == "plan") {
    config.target_tier = 0;
  } else if (tier == "interp") {
    config.target_tier = 1;
  } else if (tier == "opt") {
    config.target_tier = 2;
  } else {
    std::fprintf(stderr, "serve_qps: unknown --tier '%s'\n", tier.c_str());
    return 1;
  }
  if (config.target_tier > 0 && !cc_available(default_cc())) {
    std::fprintf(stderr,
                 "serve_qps: no system compiler; falling back to"
                 " --tier plan\n");
    config.target_tier = 0;
  }

  // Private socket; the kernel cache intentionally follows the
  // environment default so repeat runs measure warm-cache serving.
  const std::string socket_path =
      cat("/tmp/glaf-serve-qps-", ::getpid(), ".sock");
  serve::Server::Options options;
  options.socket_path = socket_path;
  options.threads = threads;
  options.cache_dir = args.get("cache-dir", "");
  serve::Server server(options);
  const Status started = server.start();
  if (!started.is_ok()) {
    std::fprintf(stderr, "serve_qps: %s\n", started.message().c_str());
    return 1;
  }

  // Load + wait out the tier ladder so every phase measures the settled
  // tier; the promotion timeline itself is part of the report.
  serve::Client loader;
  if (!loader.connect(socket_path).is_ok()) {
    std::fprintf(stderr, "serve_qps: cannot connect\n");
    return 1;
  }
  const auto load = loader.load_builtin("sarb", config);
  if (!load.is_ok()) {
    std::fprintf(stderr, "serve_qps: load: %s\n",
                 load.status().message().c_str());
    return 1;
  }
  const std::uint64_t sid = load.value().session_id;
  // One run on the load tier (the plan VM on a cold cache) so the
  // timeline starts with a served request, then wait for the ladder.
  (void)loader.run(sid, "entropy_interface");
  server.compile_queue().wait_idle();
  const auto session = server.registry().find(sid);
  const serve::SessionStats warm = session->stats();

  std::fprintf(stderr, "serve_qps: settled at tier %s (%zu promotion(s))\n",
               to_string(warm.tier), warm.promotions.size());

  const PhaseResult serial = run_serial(socket_path, sid, requests);
  const PhaseResult concurrent =
      run_concurrent(socket_path, sid, clients,
                     std::max(1, requests / std::max(1, clients)));
  const PhaseResult batched =
      run_batched(socket_path, sid, requests, batch);
  if (serial.requests == 0 || concurrent.requests == 0 ||
      batched.requests == 0) {
    std::fprintf(stderr, "serve_qps: a phase failed\n");
    return 1;
  }

  const serve::Batcher::Stats bstats = server.batcher().stats();
  const serve::SessionStats sstats = session->stats();

  JsonWriter w;
  w.begin_object();
  w.key("benchmark");
  w.value("serve_qps");
  w.key("threads");
  w.value(threads);
  w.key("requests");
  w.value(requests);
  w.key("clients");
  w.value(clients);
  w.key("batch");
  w.value(batch);
  w.key("tier");
  w.value(to_string(sstats.tier));
  w.key("host_cores");
  w.value(static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  w.key("regenerate");
  w.value(cat("bench/serve_qps --threads ", threads, " --requests ",
              requests, " --clients ", clients, " --batch ", batch,
              " --tier ", tier, " --out BENCH_serve.json"));
  w.key("compiler");
  w.value(default_cc());
  w.key("compiler_version");
  w.value(compiler_identity(default_cc()));
  w.key("host_key");
  w.value(host_arch_fingerprint());

  w.key("promotions");
  w.begin_array();
  for (const auto& [tier_reached, seconds_after_load] : sstats.promotions) {
    w.begin_object();
    w.key("tier");
    w.value(to_string(tier_reached));
    w.key("seconds_after_load");
    w.value(seconds_after_load);
    w.end_object();
  }
  w.end_array();

  write_phase(w, "serial", serial);
  write_phase(w, "concurrent", concurrent);
  write_phase(w, "batched", batched);
  w.key("batched_vs_serial_speedup");
  w.value(serial.qps > 0 ? batched.qps / serial.qps : 0.0);
  w.key("concurrent_vs_serial_speedup");
  w.value(serial.qps > 0 ? concurrent.qps / serial.qps : 0.0);

  w.key("batcher");
  w.begin_object();
  w.key("requests");
  w.value(bstats.requests);
  w.key("batches");
  w.value(bstats.batches);
  w.key("max_batch");
  w.value(bstats.max_batch);
  w.key("avg_batch");
  w.value(bstats.batches > 0
              ? static_cast<double>(bstats.requests) /
                    static_cast<double>(bstats.batches)
              : 0.0);
  w.end_object();
  w.end_object();

  const std::string json = std::move(w).str();
  if (out_path.empty()) {
    std::printf("%s\n", json.c_str());
  } else {
    FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "serve_qps: cannot write %s\n",
                   out_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::fprintf(stderr, "serve_qps: wrote %s\n", out_path.c_str());
  }

  std::fprintf(stderr,
               "serve_qps: serial %.0f qps, concurrent %.0f qps, batched"
               " %.0f qps (%.2fx serial)\n",
               serial.qps, concurrent.qps, batched.qps,
               serial.qps > 0 ? batched.qps / serial.qps : 0.0);
  if (batched.qps <= serial.qps) {
    std::fprintf(stderr,
                 "serve_qps: WARNING batched throughput did not beat"
                 " one-at-a-time dispatch\n");
    return smoke ? 0 : 1;
  }
  return 0;
}
