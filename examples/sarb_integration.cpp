// The Synoptic SARB case study end to end (paper §4.1): author the six
// Table 1 subroutines in GLAF, generate integrable FORTRAN, and run the
// §4.1.1 functional-correctness methodology — a side-by-side comparison
// of the GLAF execution (serial and parallel) against the original serial
// implementation across multiple zones.
//
//   ./sarb_integration [--zones=N] [--show-fortran]

#include <cstdio>

#include "codegen/fortran.hpp"
#include "fuliou/glaf_kernels.hpp"
#include "fuliou/harness.hpp"
#include "fuliou/reference.hpp"
#include "support/cli.hpp"
#include "support/sloc.hpp"

using namespace glaf;
using namespace glaf::fuliou;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::int64_t zones = args.get_int("zones", 16);

  const Program program = build_sarb_program();
  const ProgramAnalysis analysis = analyze_program(program);
  const GeneratedCode fortran = generate_fortran(program, analysis);

  if (args.get_bool("show-fortran", false)) {
    std::printf("%s\n", fortran.source.c_str());
  }

  std::printf("== generated subroutines (Table 1) ==\n");
  std::printf("%-26s %14s %14s\n", "subroutine", "SLOC (paper)",
              "SLOC (ours)");
  for (const std::string& name : table1_subroutines()) {
    std::printf("%-26s %14d %14d\n", name.c_str(), paper_sloc(name),
                count_sloc(fortran.per_function.at(name),
                           SlocLanguage::kFortran));
  }

  // Side-by-side comparison, zone by zone, for serial and parallel GLAF.
  std::printf("\n== functional correctness (vs original serial) ==\n");
  InterpOptions parallel;
  parallel.parallel = true;
  parallel.num_threads = 4;
  Machine serial_machine(program);
  Machine parallel_machine(program, parallel);

  double worst_serial = 0.0;
  double worst_parallel = 0.0;
  for (std::int64_t zone = 0; zone < zones; ++zone) {
    const AtmosphereProfile profile =
        make_profile(static_cast<std::uint64_t>(zone) + 1);
    const SarbOutputs reference = run_reference(profile);

    const auto serial_out = run_glaf_sarb(serial_machine, profile);
    const auto parallel_out = run_glaf_sarb(parallel_machine, profile);
    if (!serial_out.is_ok() || !parallel_out.is_ok()) {
      std::printf("zone %lld: execution failed\n",
                  static_cast<long long>(zone));
      return 1;
    }
    const double ds = max_abs_diff(reference, serial_out.value());
    const double dp = max_abs_diff(reference, parallel_out.value());
    worst_serial = std::max(worst_serial, ds);
    worst_parallel = std::max(worst_parallel, dp);
    if (zone < 4) {
      std::printf("zone %2lld: |serial - original| = %.3e, "
                  "|parallel - original| = %.3e\n",
                  static_cast<long long>(zone), ds, dp);
    }
  }
  std::printf("...\nacross %lld zones: worst serial diff %.3e (expect 0), "
              "worst parallel diff %.3e (tolerance 1e-7)\n",
              static_cast<long long>(zones), worst_serial, worst_parallel);
  std::printf("verdict: %s\n",
              worst_serial == 0.0 && worst_parallel < 1e-7
                  ? "functionally equivalent (PASS)"
                  : "MISMATCH (FAIL)");

  std::printf("\n== interpreter statistics ==\n");
  std::printf("serial:   %llu steps, %llu loop iterations\n",
              static_cast<unsigned long long>(
                  serial_machine.stats().steps_executed),
              static_cast<unsigned long long>(
                  serial_machine.stats().loop_iterations));
  std::printf("parallel: %llu parallel regions entered\n",
              static_cast<unsigned long long>(
                  parallel_machine.stats().parallel_regions));
  return worst_serial == 0.0 && worst_parallel < 1e-7 ? 0 : 1;
}
