// The FUN3D Jacobian-reconstruction case study (paper §4.2): build a
// synthetic unstructured mesh, run the original serial implementation,
// the GLAF five-sub-function decomposition under several Figure 7 option
// combinations, and the manually parallelized version; check every output
// with the paper's RMS-at-1e-7 criterion and report the execution
// counters that drive the performance model.
//
//   ./fun3d_jacobian [--cells=N] [--threads=T]

#include <cmath>
#include <cstdio>

#include "fun3d/recon.hpp"
#include "support/cli.hpp"
#include "support/timer.hpp"

using namespace glaf;
using namespace glaf::fun3d;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::int64_t cells = args.get_int("cells", 20000);
  const int threads = static_cast<int>(args.get_int("threads", 4));

  std::printf("building mesh: %lld cells...\n",
              static_cast<long long>(cells));
  const Mesh mesh = make_mesh(cells, 42);
  std::printf("  %lld nodes, %lld edge visits (%.1f per cell)\n",
              static_cast<long long>(mesh.n_nodes),
              static_cast<long long>(mesh.n_edges),
              static_cast<double>(mesh.n_edges) /
                  static_cast<double>(mesh.n_cells));

  Timer t;
  const ReconResult original = reconstruct_original(mesh);
  const double t_original = t.seconds();
  const double reference_rms = rms_of(original.jac);
  std::printf("\noriginal serial: %.3f s, output RMS %.6e\n", t_original,
              reference_rms);

  struct Case {
    const char* label;
    ReconOptions opt;
  };
  std::vector<Case> cases;
  {
    Case serial{"GLAF serial (realloc)", {}};
    cases.push_back(serial);
    Case serial_nr{"GLAF serial + no-realloc", {}};
    serial_nr.opt.no_realloc = true;
    cases.push_back(serial_nr);
    Case outer{"GLAF parallel EdgeJP", {}};
    outer.opt.par_edgejp = true;
    cases.push_back(outer);
    Case best{"GLAF parallel EdgeJP + no-realloc", {}};
    best.opt.par_edgejp = true;
    best.opt.no_realloc = true;
    cases.push_back(best);
    Case inner{"GLAF parallel cell_loop (fine-grained)", {}};
    inner.opt.par_cell_loop = true;
    cases.push_back(inner);
    Case everything{"GLAF all levels + no-realloc", {}};
    everything.opt.par_edgejp = true;
    everything.opt.par_cell_loop = true;
    everything.opt.par_edge_loop = true;
    everything.opt.par_ioff_search = true;
    everything.opt.no_realloc = true;
    cases.push_back(everything);
  }

  std::printf("\n%-40s %10s %12s %12s %8s\n", "configuration", "RMS ok",
              "allocations", "fork/joins", "time(s)");
  for (Case& c : cases) {
    c.opt.threads = threads;
    Timer ct;
    const ReconResult r = reconstruct_glaf(mesh, c.opt);
    const double secs = ct.seconds();
    const bool ok = std::fabs(rms_of(r.jac) - reference_rms) < 1e-7;
    std::printf("%-40s %10s %12llu %12llu %8.3f\n", c.label,
                ok ? "PASS" : "FAIL",
                static_cast<unsigned long long>(r.stats.allocations),
                static_cast<unsigned long long>(r.stats.fork_joins), secs);
  }

  Timer mt;
  const ReconResult manual = reconstruct_manual(mesh, threads);
  const double manual_secs = mt.seconds();
  const bool manual_ok = std::fabs(rms_of(manual.jac) - reference_rms) < 1e-7;
  std::printf("%-40s %10s %12llu %12llu %8.3f\n",
              "manual parallel (outermost scope)", manual_ok ? "PASS" : "FAIL",
              static_cast<unsigned long long>(manual.stats.allocations),
              static_cast<unsigned long long>(manual.stats.fork_joins),
              manual_secs);

  std::printf("\nnote: wall-clock parallel speedups on this host reflect "
              "its core count;\nthe Figure 7 reproduction "
              "(bench/fig7_fun3d) scales these counters with the\n"
              "dual-Xeon machine model.\n");
  return manual_ok ? 0 : 1;
}
