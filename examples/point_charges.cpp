// The paper's Figure 2 example: calcPointCharge().
//
// A struct grid of atoms (x, y, z, q fields — the AoS/SoA data-layout
// option applies to it) and a grid of surface points; for every surface
// point, sum the Coulomb-style contribution of every atom. Demonstrates:
//   - struct grids and field access,
//   - a double loop with a reduction into a per-point result,
//   - OpenCL kernel generation for the parallel loop,
//   - interpreter execution checked against a direct C++ computation.

#include <cmath>
#include <cstdio>
#include <vector>

#include "codegen/opencl.hpp"
#include "core/builder.hpp"
#include "interp/machine.hpp"
#include "support/rng.hpp"

using namespace glaf;

namespace {
constexpr int kAtoms = 32;
constexpr int kPoints = 16;
constexpr double kKe = 8.99;  // scaled Coulomb constant
}  // namespace

int main() {
  ProgramBuilder pb("charge_mod");

  auto n_atoms = pb.global("n_atoms", DataType::kInt, {},
                           {.init = {std::int64_t{kAtoms}}});
  auto n_points = pb.global("n_points", DataType::kInt, {},
                            {.init = {std::int64_t{kPoints}}});
  auto ke = pb.global("ke", DataType::kDouble, {}, {.init = {kKe}});
  // The atoms struct grid of Figure 2: charge plus coordinates.
  auto atoms = pb.global("atoms", DataType::kDouble, {E(n_atoms)},
                         {.fields = {{"q", DataType::kDouble},
                                     {"x", DataType::kDouble},
                                     {"y", DataType::kDouble},
                                     {"z", DataType::kDouble}}});
  auto pts = pb.global("surface_pts", DataType::kDouble, {E(n_points)},
                       {.fields = {{"px", DataType::kDouble},
                                   {"py", DataType::kDouble},
                                   {"pz", DataType::kDouble}}});
  auto potential = pb.global("potential", DataType::kDouble, {E(n_points)});

  auto fb = pb.function("calcPointCharge");
  fb.comment("Loop through all atoms vs surface points");
  auto dx = fb.local("dx", DataType::kDouble);
  auto dy = fb.local("dy", DataType::kDouble);
  auto dz = fb.local("dz", DataType::kDouble);
  auto r = fb.local("r", DataType::kDouble);

  auto init = fb.step("Step1");
  init.comment("zero the potentials");
  init.foreach_("row", 0, E(n_points) - 1);
  init.assign(potential(idx("row")), 0.0);

  auto accum = fb.step("Step2");
  accum.comment("sum contributions of every atom at every surface point");
  accum.foreach_("row", 0, E(n_points) - 1).foreach_("col", 0, E(n_atoms) - 1);
  const E row = idx("row");
  const E col = idx("col");
  accum.assign(dx(), atoms.at_field("x", col) - pts.at_field("px", row));
  accum.assign(dy(), atoms.at_field("y", col) - pts.at_field("py", row));
  accum.assign(dz(), atoms.at_field("z", col) - pts.at_field("pz", row));
  accum.assign(r(), call("SQRT", {E(dx) * E(dx) + E(dy) * E(dy) +
                                  E(dz) * E(dz) + 0.01}));
  accum.assign(potential(row),
               potential(row) + E(ke) * atoms.at_field("q", col) / E(r));

  const StatusOr<Program> built = pb.build();
  if (!built.is_ok()) {
    std::printf("validation failed:\n%s\n", built.status().message().c_str());
    return 1;
  }
  const Program& program = built.value();
  const ProgramAnalysis analysis = analyze_program(program);

  const Function* fn = program.find_function("calcPointCharge");
  for (std::size_t s = 0; s < fn->steps.size(); ++s) {
    std::printf("step %-6s -> %s\n", fn->steps[s].name.c_str(),
                verdict_to_string(program, analysis.verdict(fn->id, s)).c_str());
  }

  // OpenCL back-end: offload kernels for the parallel steps.
  const OpenClCode cl = generate_opencl(program, analysis);
  std::printf("\n== OpenCL kernels ==\n%s\n", cl.kernels.c_str());

  // Execute and cross-check against a direct C++ evaluation.
  Machine machine(program);
  SplitMix64 rng(2024);
  std::vector<double> q(kAtoms), x(kAtoms), y(kAtoms), z(kAtoms);
  for (int i = 0; i < kAtoms; ++i) {
    q[i] = rng.uniform(-1.0, 1.0);
    x[i] = rng.next_double();
    y[i] = rng.next_double();
    z[i] = rng.next_double();
  }
  std::vector<double> px(kPoints), py(kPoints), pz(kPoints);
  for (int i = 0; i < kPoints; ++i) {
    px[i] = rng.next_double();
    py[i] = rng.next_double();
    pz[i] = 1.2;  // probe plane above the charges
  }
  machine.set_array("atoms", q, "q");
  machine.set_array("atoms", x, "x");
  machine.set_array("atoms", y, "y");
  machine.set_array("atoms", z, "z");
  machine.set_array("surface_pts", px, "px");
  machine.set_array("surface_pts", py, "py");
  machine.set_array("surface_pts", pz, "pz");
  if (const auto call_result = machine.call("calcPointCharge");
      !call_result.is_ok()) {
    std::printf("call failed: %s\n",
                call_result.status().message().c_str());
    return 1;
  }
  const std::vector<double> got = machine.array("potential").value();

  double max_err = 0.0;
  std::printf("\npoint   potential (GLAF)   potential (direct C++)\n");
  for (int p = 0; p < kPoints; ++p) {
    double expect = 0.0;
    for (int a = 0; a < kAtoms; ++a) {
      const double ddx = x[a] - px[p];
      const double ddy = y[a] - py[p];
      const double ddz = z[a] - pz[p];
      const double rr =
          std::sqrt(ddx * ddx + ddy * ddy + ddz * ddz + 0.01);
      expect += kKe * q[a] / rr;
    }
    max_err = std::max(max_err, std::fabs(expect - got[p]));
    if (p < 6) std::printf("%5d %18.12f %18.12f\n", p, got[p], expect);
  }
  std::printf("...\nmax |GLAF - direct| = %.3e  %s\n", max_err,
              max_err < 1e-12 ? "(PASS)" : "(FAIL)");
  return max_err < 1e-12 ? 0 : 1;
}
