// Quickstart: the paper's Figure 1 example end to end.
//
// Builds the 4x4 "img_src" grid and a small filtering kernel through the
// builder API (the GPI stand-in), runs validation and the
// auto-parallelization analysis, generates FORTRAN and C, and executes
// the program with the interpreter.
//
//   ./quickstart            # prints analysis, generated code, and results

#include <cstdio>

#include "codegen/c.hpp"
#include "codegen/fortran.hpp"
#include "core/builder.hpp"
#include "interp/machine.hpp"

using namespace glaf;

int main() {
  // ---- 1. Author the program (what the GPI's point-and-click builds) ----
  ProgramBuilder pb("img_mod");

  // Figure 1: a 4x4 integer grid named img_src with a comment.
  auto img_src = pb.global("img_src", DataType::kInt, {4, 4},
                           {.comment = "Image before filtering"});
  auto img_dst = pb.global("img_dst", DataType::kInt, {4, 4},
                           {.comment = "Image after filtering"});

  auto fb = pb.function("brighten");  // void -> generated as a SUBROUTINE
  fb.comment("Double every pixel and clamp to 255");
  auto step = fb.step("Step1");
  step.comment("Loop through all pixels");
  step.foreach_("row", 0, 3).foreach_("col", 0, 3);
  step.assign(img_dst(idx("row"), idx("col")),
              call("MIN", {img_src(idx("row"), idx("col")) * 2, liti(255)}));

  // ---- 2. Validate and analyze --------------------------------------------
  const StatusOr<Program> built = pb.build();
  if (!built.is_ok()) {
    std::printf("validation failed:\n%s\n", built.status().message().c_str());
    return 1;
  }
  const Program& program = built.value();
  const ProgramAnalysis analysis = analyze_program(program);

  const Function* fn = program.find_function("brighten");
  const StepVerdict& verdict = analysis.verdict(fn->id, 0);
  std::printf("== auto-parallelization verdict ==\n%s\n\n",
              verdict_to_string(program, verdict).c_str());

  // ---- 3. Generate code ---------------------------------------------------
  std::printf("== generated FORTRAN ==\n%s\n",
              generate_fortran(program, analysis).source.c_str());
  std::printf("== generated C ==\n%s\n",
              generate_c(program, analysis).source.c_str());

  // ---- 4. Execute with the interpreter ------------------------------------
  Machine machine(program);
  std::vector<double> pixels(16);
  for (int i = 0; i < 16; ++i) pixels[i] = 10.0 * (i + 1);
  if (Status s = machine.set_array("img_src", pixels); !s) {
    std::printf("set_array failed: %s\n", s.message().c_str());
    return 1;
  }
  if (const auto r = machine.call("brighten"); !r.is_ok()) {
    std::printf("call failed: %s\n", r.status().message().c_str());
    return 1;
  }
  const std::vector<double> out = machine.array("img_dst").value();
  std::printf("== interpreted result (img_dst) ==\n");
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      std::printf("%6.0f", out[static_cast<std::size_t>(r) * 4 + c]);
    }
    std::printf("\n");
  }
  return 0;
}
