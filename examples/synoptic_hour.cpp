// Simulates one Synoptic SARB "synoptic hour" (paper §2.2): the earth
// split into latitude zones processed across MPI ranks (coarse-grained
// inter-zone parallelism — the legacy behaviour), combined with the
// intra-zone OpenMP parallelism this paper's kernels add.
//
// Runs a sample of real zone computations through the interpreter, then
// models the full hour: rank makespan (block vs LPT scheduling) divided
// by the intra-zone v3 speedup.
//
//   ./synoptic_hour [--zones=72] [--ranks=8] [--equator-columns=180]

#include <cstdio>

#include "fuliou/glaf_kernels.hpp"
#include "fuliou/harness.hpp"
#include "fuliou/reference.hpp"
#include "fuliou/zones.hpp"
#include "perfmodel/sarb_model.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace glaf;
using namespace glaf::fuliou;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int n_zones = static_cast<int>(args.get_int("zones", 72));
  const int ranks = static_cast<int>(args.get_int("ranks", 8));
  const int equator = static_cast<int>(args.get_int("equator-columns", 180));

  const std::vector<Zone> zones = make_zones(n_zones, equator);
  std::printf("synoptic hour: %d zones, %d MPI ranks, %d columns at the "
              "equator\n\n", n_zones, ranks, equator);

  // A few real zone computations through the GLAF kernels (correctness).
  const Program program = build_sarb_program();
  Machine machine(program);
  double worst = 0.0;
  for (const int zi : {0, n_zones / 4, n_zones / 2}) {
    const Zone& zone = zones[static_cast<std::size_t>(zi)];
    const AtmosphereProfile profile = make_profile(zone.seed);
    const auto out = run_glaf_sarb(machine, profile);
    if (!out.is_ok()) {
      std::printf("zone %d failed: %s\n", zone.index,
                  out.status().message().c_str());
      return 1;
    }
    const double diff = max_abs_diff(run_reference(profile), out.value());
    worst = std::max(worst, diff);
    std::printf("zone %2d (lat %+6.1f, %3d columns): GLAF vs original "
                "diff %.2e\n",
                zone.index, zone.latitude_deg, zone.columns, diff);
  }
  std::printf("worst sampled deviation: %.2e (PASS requires 0)\n\n", worst);

  // Rank-level scheduling of the full hour.
  const Schedule block = schedule_block(zones, ranks);
  const Schedule lpt = schedule_lpt(zones, ranks);

  // Intra-zone speedup from the Figure 5 model (v3 at 4 threads).
  const ProgramAnalysis analysis = analyze_program(program);
  const auto inventory = sarb_loop_inventory(program, analysis);
  const auto fig5 = figure5_series(inventory, 4, MachineModel::i5_2400());
  const double v3 = fig5.back().speedup;

  TextTable table({"configuration", "makespan (column-units)", "imbalance",
                   "speed-up vs legacy"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight,
                       Align::kRight});
  const double legacy = synoptic_hour_time(block, 1.0);
  const auto row = [&](const char* label, const Schedule& s, double intra) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", s.imbalance);
    char make[32];
    std::snprintf(make, sizeof(make), "%.0f", synoptic_hour_time(s, intra));
    table.add_row({label, make, buf,
                   format_speedup(legacy / synoptic_hour_time(s, intra))});
  };
  row("legacy: block MPI, serial zones", block, 1.0);
  row("LPT MPI, serial zones", lpt, 1.0);
  row("block MPI + intra-zone OMP v3", block, v3);
  row("LPT MPI + intra-zone OMP v3", lpt, v3);
  std::printf("%s\n", table.render().c_str());

  std::printf("the paper's contribution composes with the legacy MPI "
              "layer: each rank's zones finish ~%.2fx faster with the v3 "
              "kernels, on top of whatever the scheduler saves.\n", v3);
  return worst == 0.0 ? 0 : 1;
}
