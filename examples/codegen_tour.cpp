// A tour of the §3 legacy-integration features: one program exercising
// every extension this paper added to GLAF, generated as FORTRAN (the
// integration target), C, and with the Table 2 directive policies.
//
//   ./codegen_tour                 # full FORTRAN + per-policy summary
//   ./codegen_tour --lang=c        # C back-end instead

#include <cstdio>

#include "codegen/c.hpp"
#include "codegen/directive_policy.hpp"
#include "codegen/fortran.hpp"
#include "core/builder.hpp"
#include "support/cli.hpp"

using namespace glaf;

namespace {

Program build_tour_program() {
  ProgramBuilder pb("integration_tour");

  auto n = pb.global("n", DataType::kInt, {}, {.init = {std::int64_t{32}}});

  // §3.1: a variable from an existing FORTRAN module -> USE generation.
  auto gas_const = pb.global("gas_const", DataType::kDouble, {},
                             {.comment = "from the legacy physics module",
                              .from_module = "phys_constants"});

  // §3.2: COMMON-block variables -> grouped COMMON declaration.
  auto t_ref = pb.global("t_ref", DataType::kDouble, {},
                         {.common_block = "refstate"});
  auto p_ref = pb.global("p_ref", DataType::kDouble, {},
                         {.common_block = "refstate"});

  // §3.3: module-scope variable, declared in the generated MODULE.
  auto work = pb.global("work", DataType::kDouble, {E(n)},
                        {.comment = "module-scope scratch shared by steps",
                         .module_scope = true});

  // §3.5: an element of an existing TYPE variable -> state%density.
  auto density = pb.global("density", DataType::kDouble, {},
                           {.from_module = "flow_state",
                            .type_parent = "state"});

  auto result = pb.global("result", DataType::kDouble, {E(n)});
  auto total = pb.global("total", DataType::kDouble);

  // §3.4: a void subprogram becomes a SUBROUTINE with CALL sites.
  auto compute = pb.function("compute_work");
  {
    auto s1 = compute.step("init");
    s1.comment("Table 2 class: initialization to zero");
    s1.foreach_("i", 0, E(n) - 1);
    s1.assign(work(idx("i")), 0.0);

    auto s2 = compute.step("fill");
    s2.comment("Table 2 class: simple single loop (SIMD-able)");
    s2.foreach_("i", 0, E(n) - 1);
    // §3.6: ALOG and ABS library functions (added by this paper).
    s2.assign(work(idx("i")),
              call("ALOG", {1.0 + call("ABS", {E(density) * idx("i")})}) *
                  E(gas_const));
  }

  auto reduce_fn = pb.function("reduce_work", DataType::kDouble);
  {
    auto s = reduce_fn.step("sum");
    s.comment("Table 2 class: reduction loop");
    s.foreach_("i", 0, E(n) - 1);
    s.assign(total(), E(total) + work(idx("i")));
    auto fin = reduce_fn.step("fin");
    fin.ret(E(total) / (E(t_ref) + E(p_ref) + 1.0));
  }

  auto driver = pb.function("driver");
  {
    auto s = driver.step("run");
    s.call_sub("compute_work", {});
    auto s2 = driver.step("scale");
    s2.comment("Table 2 class: broadcast of a single value");
    s2.foreach_("i", 0, E(n) - 1);
    s2.assign(result(idx("i")), work(liti(0)));
  }

  return pb.build().value();
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const Program program = build_tour_program();
  const ProgramAnalysis analysis = analyze_program(program);

  CodegenOptions opts;
  if (args.get("lang", "fortran") == "c") {
    std::printf("%s\n", generate_c(program, analysis, opts).source.c_str());
  } else {
    std::printf("%s\n",
                generate_fortran(program, analysis, opts).source.c_str());
  }

  // Directive policies: which steps keep OMP under v0..v3 (Table 2).
  std::printf("== directive policy summary (Table 2) ==\n");
  std::printf("%-16s %-8s %-14s v0 v1 v2 v3\n", "function", "step", "class");
  for (const Function& fn : program.functions) {
    for (std::size_t s = 0; s < fn.steps.size(); ++s) {
      const StepVerdict& v = analysis.verdict(fn.id, s);
      if (!v.has_loop) continue;
      std::printf("%-16s %-8s %-14s", fn.name.c_str(),
                  fn.steps[s].name.c_str(), to_string(v.loop_class));
      for (const DirectivePolicy p :
           {DirectivePolicy::kV0, DirectivePolicy::kV1, DirectivePolicy::kV2,
            DirectivePolicy::kV3}) {
        std::printf(" %2s", keep_directive(p, v) ? "Y" : ".");
      }
      std::printf("\n");
    }
  }
  return 0;
}
