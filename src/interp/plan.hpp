#pragma once
// Flat execution plans — the interpreter's bytecode tier. A one-time
// per-function compiler lowers each step's loop nest and statement list
// into a register-based instruction stream:
//
//  - index variables are resolved to integer slots (no string lookups);
//  - grid accesses are resolved to access descriptors whose constant and
//    loop-affine subscript parts are folded into precomputed row-major
//    stride terms at bind time, so the hot loop does one multiply-add per
//    varying dimension instead of re-evaluating subscript trees;
//  - literals are constant-folded with interpreter-exact semantics and
//    lib functions are pre-bound to their evaluator pointers.
//
// The plans are execution-engine input only: the tree-walk Executor in
// machine.cpp remains the semantic reference, and the VM (vm.cpp) is
// required to produce bit-identical results (the fuzz oracle and
// tests/interp enforce this).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/parallelize.hpp"
#include "core/program.hpp"

namespace glaf {

struct LibFunc;

namespace interp {

/// Plan opcodes. All values flow through double registers, mirroring the
/// tree-walk evaluator's "everything is a double" model.
enum class POp : std::uint8_t {
  kConst,        ///< regs[dst] = consts[c]
  kLoadIdx,      ///< regs[dst] = idx[a]
  kLoadGrid,     ///< regs[dst] = *element(accesses[c])
  kStoreGrid,    ///< *element(accesses[c]) = regs[a] (flags: trunc-to-int)
  kStoreAtomic,  ///< like kStoreGrid but under the machine atomic lock
  kAdd, kSub, kMul, kDiv, kIntDiv, kPow, kMod,
  kLt, kLe, kGt, kGe, kEq, kNe, kAnd, kOr,
  kNeg, kNot,
  kCallLib,      ///< regs[dst] = lib_calls[c].eval(args...)
  kCallLibGrid,  ///< whole-grid lib reduction (SUM/MINVAL/MAXVAL)
  kCallUser,     ///< regs[dst] = call user function (call_sites[c])
  kCallSub,      ///< CALL statement (call_sites[c]); no result
  kJump,         ///< pc = c
  kJumpIfZero,   ///< if (regs[a] == 0) pc = c
  kJumpIfAtomic, ///< if this store site is atomic right now, pc = c
  kGuardRef,     ///< fail "has no storage" now if refs[c] is unbound
  kReturnValue,  ///< function RETURN expr (regs[a])
  kReturnVoid,   ///< function RETURN
  kTrap,         ///< raise traps[c] (lazily-failing statements)
};

/// Instruction flags.
inline constexpr std::uint8_t kFlagTruncStore = 1;  ///< INTEGER lhs truncation
inline constexpr std::uint8_t kFlagTruncResult = 2; ///< INTEGER lib result
inline constexpr std::uint8_t kFlagNint = 4;        ///< NINT rounding override
inline constexpr std::uint8_t kFlagStepAtomic = 8;  ///< lhs in step atomic set
inline constexpr std::uint8_t kFlagMachineAtomic = 16; ///< lhs machine-atomic

struct PlanInstr {
  POp op = POp::kTrap;
  std::uint8_t flags = 0;
  std::uint16_t dst = 0;  ///< destination register
  std::uint16_t a = 0;    ///< operand register / idx slot
  std::uint16_t b = 0;    ///< second operand register
  std::uint32_t c = 0;    ///< const / access / call-site / jump target
};

/// One grid (+field) referenced by a plan; bound to a raw buffer per call.
struct GridRefPlan {
  GridId grid = 0;
  std::string field;  ///< empty for non-struct grids
};

/// One subscript dimension of an access, classified at compile time.
struct DimPlan {
  enum class Kind : std::uint8_t {
    kConst,   ///< constant subscript
    kAffine,  ///< coeff * idx[slot] + constant
    kDyn,     ///< arbitrary expression, evaluated into a register
  };
  Kind kind = Kind::kConst;
  std::int64_t constant = 0;  ///< kConst value / kAffine addend
  std::int64_t coeff = 1;     ///< kAffine multiplier
  std::uint16_t slot = 0;     ///< kAffine index slot
  std::uint16_t reg = 0;      ///< kDyn source register
};

/// One grid element access (read or write site). The binder folds every
/// kConst part and pre-multiplies kAffine coefficients by the bound
/// row-major strides, hoisting all loop-invariant subscript arithmetic
/// out of the instruction stream.
struct AccessPlan {
  std::uint32_t ref = 0;  ///< index into FunctionPlan::refs
  std::vector<DimPlan> dims;
};

/// A call site (user function or subroutine) with pre-resolved target.
struct CallSitePlan {
  FunctionId callee = 0;
  struct Arg {
    bool whole_grid = false;
    /// Whole-grid argument: the slot passed by reference. Value argument:
    /// the callee's parameter grid (binds the temporary scalar instance).
    GridId grid = 0;
    std::uint16_t reg = 0;  ///< value argument: evaluated into this register
  };
  std::vector<Arg> args;
};

/// A pre-bound lib-function call.
struct LibCallPlan {
  const LibFunc* lib = nullptr;
  std::uint32_t args_begin = 0;  ///< range into FunctionPlan::arg_regs
  std::uint32_t argc = 0;
  std::uint32_t ref = 0;         ///< whole-grid calls: FunctionPlan::refs idx
};

/// A compiled expression program: run code[begin,end), read regs[reg].
/// Single-constant programs are precomputed (is_const) so loop bounds and
/// extents that fold don't touch the dispatch loop at all.
struct ExprProg {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  std::uint16_t reg = 0;
  bool is_const = false;
  double const_value = 0.0;
  std::uint32_t idx_mask = 0;   ///< bit d set if the program reads idx[d]
  std::uint16_t first_idx = 0;  ///< first idx slot read (when idx_mask != 0)
};

struct LoopPlan {
  ExprProg begin;
  ExprProg end;
  ExprProg stride;
  bool has_stride = false;
  std::uint16_t idx_slot = 0;
};

struct StepPlan {
  std::vector<LoopPlan> loops;
  std::uint32_t body_begin = 0;
  std::uint32_t body_end = 0;
};

/// Everything needed to execute one function without touching the AST.
struct FunctionPlan {
  const Function* fn = nullptr;
  std::vector<PlanInstr> code;     ///< all programs are ranges into this
  std::vector<double> consts;
  std::vector<GridRefPlan> refs;
  std::vector<AccessPlan> accesses;
  std::vector<CallSitePlan> call_sites;
  std::vector<LibCallPlan> lib_calls;
  std::vector<std::uint16_t> arg_regs;  ///< lib-call argument registers
  std::vector<std::string> traps;
  std::vector<StepPlan> steps;
  std::uint16_t num_regs = 0;
  std::uint16_t num_idx = 0;
};

/// Plans for a whole program, indexed by FunctionId.
struct ProgramPlan {
  std::vector<FunctionPlan> functions;
};

/// Compile every function. `atomic_grids` is the machine-wide orphaned
/// ATOMIC set (verdict unions + force_atomic tweaks): stores to those
/// grids get a dual checked/atomic lowering selected at run time.
ProgramPlan compile_plans(const Program& program,
                          const ProgramAnalysis& analysis,
                          const std::set<GridId>& atomic_grids);

}  // namespace interp
}  // namespace glaf
