#include "interp/machine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <stdexcept>

#include "analysis/speculate.hpp"
#include "codegen/directive_policy.hpp"
#include "core/libfuncs.hpp"
#include "core/typecheck.hpp"
#include "interp/exec_common.hpp"
#include "interp/native_options.hpp"
#include "interp/plan.hpp"
#include "interp/vm.hpp"
#include "jit/engine.hpp"
#include "runtime/thread_pool.hpp"
#include "support/strings.hpp"

namespace glaf {

// Shared with the plan VM (interp/exec_common.hpp): both engines must
// agree exactly on error unwinding and reduction algebra.
using interp::InterpError;
using interp::fail;
using interp::reduction_combine;
using interp::reduction_identity;

namespace {

/// Loop index bindings; tiny linear map (loop nests are 1-3 deep).
class IndexEnv {
 public:
  void push(const std::string& name, std::int64_t value) {
    vars_.emplace_back(&name, value);
  }
  void pop() { vars_.pop_back(); }
  void set_top(std::int64_t value) { vars_.back().second = value; }

  [[nodiscard]] std::int64_t lookup(const std::string& name) const {
    for (auto it = vars_.rbegin(); it != vars_.rend(); ++it) {
      if (*it->first == name) return it->second;
    }
    fail(cat("index variable '", name, "' not bound"));
  }

 private:
  std::vector<std::pair<const std::string*, std::int64_t>> vars_;
};

}  // namespace

// ---- Instance --------------------------------------------------------------

std::int64_t Instance::element_count() const {
  std::int64_t n = 1;
  for (const std::int64_t e : extents) n *= e;
  return n;
}

std::int64_t Instance::offset(const std::vector<std::int64_t>& idx) const {
  std::int64_t off = 0;
  for (std::size_t d = 0; d < extents.size(); ++d) {
    const std::int64_t i = idx[d];
    if (i < 0 || i >= extents[d]) {
      fail(cat("subscript ", i, " out of range [0,", extents[d] - 1,
               "] in dimension ", d, " of grid '",
               grid != nullptr ? grid->name : "?", "'"));
    }
    off = off * extents[d] + i;
  }
  return off;
}

std::int64_t Instance::offset_unchecked(
    const std::vector<std::int64_t>& idx) const {
  std::int64_t off = 0;
  for (std::size_t d = 0; d < extents.size(); ++d) {
    off = off * extents[d] + idx[d];
  }
  return off;
}

// ---- Executor ---------------------------------------------------------------

using InstancePtr = std::shared_ptr<Instance>;

/// Per-call binding of GridId -> storage (TU-local implementation detail).
struct Frame {
  const Function* fn = nullptr;
  std::vector<InstancePtr> slots;  ///< indexed by GridId
};

/// Step-execution context flags shared down the statement walkers.
struct StepCtx {
  const StepVerdict* verdict = nullptr;
  bool parallel_active = false;
};

/// Executes one top-level call tree; merges its stats into the Machine at
/// destruction. Parallel regions spawn per-thread recursion through the
/// same class with separate stat counters.
class Executor {
 public:
  Executor(Machine& m) : m_(m) {}

  double call_function(const Function& fn, std::vector<InstancePtr> args);

  /// Allocate storage for a grid, evaluating extents in `frame`.
  InstancePtr make_instance(const Grid& g, const Frame& frame);

  InterpStats stats;

  /// Per-thread replacements for global grids (private/firstprivate/
  /// reduction copies inside a parallel region). Threaded into every
  /// callee frame so subprograms called from the region see the thread's
  /// copies, mirroring OpenMP's threadprivate semantics.
  std::map<GridId, InstancePtr> global_overrides;

  /// True when this executor runs inside a parallel region (set on the
  /// per-thread workers): updates to machine-level atomic grids are then
  /// serialized, modeling orphaned OMP ATOMIC directives in callees.
  bool in_parallel_region = false;

  /// Thread-local SAVE'd-locals cache used inside parallel regions: SAVE'd
  /// temporaries become threadprivate there (§4.2.1 pairs the SAVE
  /// attribute with private/thread-private declarations).
  std::map<GridId, InstancePtr> saved_locals_local;

 private:
  void init_instance(Instance& inst, const Grid& g);

  void exec_step_serial(Frame& frame, const Step& step, const StepCtx& ctx,
                        bool* returned, double* ret_value);
  void exec_step_parallel(Frame& frame, const Step& step,
                          const StepVerdict& verdict);
  void exec_loops(Frame& frame, const Step& step, std::size_t depth,
                  IndexEnv& env, const StepCtx& ctx, bool* returned,
                  double* ret_value);
  bool exec_body(Frame& frame, const std::vector<Stmt>& body, IndexEnv& env,
                 const StepCtx& ctx, double* ret_value);
  bool exec_stmt(Frame& frame, const Stmt& stmt, IndexEnv& env,
                 const StepCtx& ctx, double* ret_value);
  void exec_assign(Frame& frame, const Stmt& stmt, IndexEnv& env,
                   const StepCtx& ctx);

  double eval(Frame& frame, const Expr& e, IndexEnv& env);
  std::int64_t eval_int(Frame& frame, const Expr& e, IndexEnv& env) {
    return static_cast<std::int64_t>(std::llround(eval(frame, e, env)));
  }
  double eval_call(Frame& frame, const Expr& e, IndexEnv& env);
  double* element_ptr(Frame& frame, GridId grid, const std::string& field,
                      const std::vector<ExprPtr>& subs, IndexEnv& env);
  std::vector<double>& buffer_of(Instance& inst, const std::string& field);

  DataType type_of(const Expr& e) {
    // Per-executor memoization keeps repeated evaluation cheap.
    const auto it = type_cache_.find(&e);
    if (it != type_cache_.end()) return it->second;
    const DataType t = infer_type(m_.program_, e);
    type_cache_.emplace(&e, t);
    return t;
  }

  Machine& m_;
  std::map<const Expr*, DataType> type_cache_;
};

std::vector<double>& Executor::buffer_of(Instance& inst,
                                         const std::string& field) {
  if (field.empty()) return inst.data;
  const auto it = inst.fields.find(field);
  if (it == inst.fields.end()) {
    fail(cat("no field '", field, "' in grid '", inst.grid->name, "'"));
  }
  return it->second;
}

InstancePtr Executor::make_instance(const Grid& g, const Frame& frame) {
  auto inst = std::make_shared<Instance>();
  inst->grid = &g;
  IndexEnv no_indices;
  for (const Dim& d : g.dims) {
    // Extents are expressions over scalar grids; evaluate in the caller's
    // frame (size parameters are already bound).
    Frame& mutable_frame = const_cast<Frame&>(frame);
    const std::int64_t e = eval_int(mutable_frame, *d.extent, no_indices);
    if (e < 1) fail(cat("non-positive extent ", e, " for grid '", g.name, "'"));
    inst->extents.push_back(e);
  }
  init_instance(*inst, g);
  return inst;
}

void Executor::init_instance(Instance& inst, const Grid& g) {
  const std::size_t n = static_cast<std::size_t>(inst.element_count());
  if (g.is_struct()) {
    for (const Field& f : g.fields) inst.fields[f.name].assign(n, 0.0);
  } else {
    inst.data.assign(n, 0.0);
    for (std::size_t i = 0; i < g.init_data.size() && i < n; ++i) {
      inst.data[i] = value_as_double(g.init_data[i]);
    }
  }
}

double Executor::call_function(const Function& fn,
                               std::vector<InstancePtr> args) {
  ++stats.function_calls;
  Frame frame;
  frame.fn = &fn;
  frame.slots.resize(m_.program_.grids.size());

  // Globals are visible everywhere; a parallel region's per-thread copies
  // take precedence.
  for (const auto& [id, inst] : m_.globals_) frame.slots[id] = inst;
  for (const auto& [id, inst] : global_overrides) frame.slots[id] = inst;

  // Bind parameters by reference.
  if (args.size() != fn.params.size()) {
    fail(cat("call to '", fn.name, "': expected ", fn.params.size(),
             " arguments, got ", args.size()));
  }
  for (std::size_t i = 0; i < args.size(); ++i) {
    frame.slots[fn.params[i]] = std::move(args[i]);
  }

  // Materialize locals. SAVE'd locals (or the global no-reallocation
  // option) are created once and cached across calls — the FUN3D §4.2.1
  // mechanism; everything else is reallocated per call and counted.
  for (const GridId id : fn.locals) {
    const Grid& g = m_.program_.grid(id);
    const bool save = g.save_attr || m_.options_.save_temporaries;
    if (save) {
      // Inside a parallel region the cache is per-thread (threadprivate
      // SAVE); otherwise it is the machine-wide FORTRAN SAVE storage.
      auto& cache =
          in_parallel_region ? saved_locals_local : m_.saved_locals_;
      auto it = cache.find(id);
      if (it == cache.end()) {
        it = cache.emplace(id, make_instance(g, frame)).first;
        if (!g.dims.empty()) ++stats.local_allocations;
      }
      frame.slots[id] = it->second;
    } else {
      frame.slots[id] = make_instance(g, frame);
      if (!g.dims.empty()) ++stats.local_allocations;
    }
  }

  const auto verdict_it = m_.analysis_.verdicts.find(fn.id);
  double ret_value = 0.0;
  for (std::size_t s = 0; s < fn.steps.size(); ++s) {
    const StepVerdict* verdict =
        verdict_it != m_.analysis_.verdicts.end() &&
                s < verdict_it->second.size()
            ? &verdict_it->second[s]
            : nullptr;
    ++stats.steps_executed;
    // A RETURN inside any step ends the subprogram.
    bool returned = false;
    const Step& step = fn.steps[s];
    // Nested regions execute serially (OpenMP's default nested-parallel
    // behaviour; also what our single-level pool supports).
    const bool parallel =
        m_.options_.parallel && !in_parallel_region && verdict != nullptr &&
        verdict->has_loop && !verdict->needs_critical &&
        keep_directive(m_.options_.policy, *verdict) && m_.pool_ != nullptr &&
        // Deterministic mode only threads steps whose parallel execution
        // is bitwise identical to serial under a flat partition (the
        // interpreter's banding); ownership-banded steps run serially.
        (!m_.options_.deterministic_parallel ||
         (verdict->bit_exact && verdict->exact_partition_dim < 0));
    const std::uint64_t iterations_before = stats.loop_iterations;
    if (parallel) {
      ++stats.parallel_regions;
      exec_step_parallel(frame, step, *verdict);
    } else {
      StepCtx ctx{verdict, false};
      exec_step_serial(frame, step, ctx, &returned, &ret_value);
    }
    if (m_.options_.trace) {
      const std::lock_guard<std::mutex> lock(m_.trace_mutex_);
      m_.trace_.push_back(TraceEntry{
          fn.name, step.name, stats.loop_iterations - iterations_before,
          parallel});
    }
    if (returned) break;
  }
  return ret_value;
}

void Executor::exec_step_serial(Frame& frame, const Step& step,
                                const StepCtx& ctx, bool* returned,
                                double* ret_value) {
  IndexEnv env;
  exec_loops(frame, step, 0, env, ctx, returned, ret_value);
}

void Executor::exec_loops(Frame& frame, const Step& step, std::size_t depth,
                          IndexEnv& env, const StepCtx& ctx, bool* returned,
                          double* ret_value) {
  if (depth == step.loops.size()) {
    if (exec_body(frame, step.body, env, ctx, ret_value)) *returned = true;
    return;
  }
  const LoopSpec& loop = step.loops[depth];
  const std::int64_t begin = eval_int(frame, *loop.begin, env);
  const std::int64_t end = eval_int(frame, *loop.end, env);
  const std::int64_t stride =
      loop.stride ? eval_int(frame, *loop.stride, env) : 1;
  if (stride == 0) fail("zero loop stride");
  env.push(loop.index_var, begin);
  for (std::int64_t i = begin; stride > 0 ? i <= end : i >= end;
       i += stride) {
    env.set_top(i);
    if (depth + 1 == step.loops.size()) ++stats.loop_iterations;
    exec_loops(frame, step, depth + 1, env, ctx, returned, ret_value);
    if (*returned) break;
  }
  env.pop();
}

void Executor::exec_step_parallel(Frame& frame, const Step& step,
                                  const StepVerdict& verdict) {
  // COLLAPSE semantics: the leading `collapse` loops (whose bounds are
  // invariant by the analysis' legality rule) form one flattened iteration
  // space distributed across threads — for the paper's 2x60 loops that is
  // the difference between 2-way and 120-way parallelism.
  struct CollapsedLoop {
    std::int64_t begin = 0;
    std::int64_t stride = 1;
    std::int64_t trips = 0;
  };
  const std::size_t depth = std::min<std::size_t>(
      std::max(verdict.collapse, 1), step.loops.size());
  IndexEnv no_indices;
  std::vector<CollapsedLoop> band;
  std::int64_t iters = 1;
  for (std::size_t d = 0; d < depth; ++d) {
    const LoopSpec& loop = step.loops[d];
    CollapsedLoop cl;
    cl.begin = eval_int(frame, *loop.begin, no_indices);
    const std::int64_t end = eval_int(frame, *loop.end, no_indices);
    cl.stride = loop.stride ? eval_int(frame, *loop.stride, no_indices) : 1;
    if (cl.stride == 0) fail("zero loop stride");
    const std::int64_t span =
        cl.stride > 0 ? end - cl.begin : cl.begin - end;
    cl.trips = span < 0 ? 0 : span / std::llabs(cl.stride) + 1;
    band.push_back(cl);
    iters *= cl.trips;
  }
  if (iters <= 0) return;

  std::mutex merge_mutex;

  // Reduction targets: remember the shared instances; threads work on
  // identity-initialized copies that are merged on completion. The chunk
  // body is schedule-agnostic (private copies and merges are per chunk).
  const auto chunk_body =
      [&](int /*rank*/, std::int64_t chunk_begin, std::int64_t chunk_end) {
        Executor worker(m_);
        worker.global_overrides = global_overrides;
        worker.in_parallel_region = true;
        Frame tframe = frame;  // shared_ptr copies: shared storage
        const auto thread_local_copy = [&](GridId id, InstancePtr inst) {
          tframe.slots[id] = inst;
          if (m_.program_.grid(id).is_global) {
            worker.global_overrides[id] = std::move(inst);
          }
        };
        // Private grids: per-thread uninitialized (zeroed) copies.
        for (const GridId id : verdict.private_grids) {
          thread_local_copy(id, worker.make_instance(m_.program_.grid(id),
                                                     frame));
        }
        // Firstprivate: per-thread copies of the current values.
        for (const GridId id : verdict.firstprivate_grids) {
          thread_local_copy(id, std::make_shared<Instance>(*frame.slots[id]));
        }
        // Reductions: identity-initialized per-thread copies. Snapshot
        // under the merge mutex: a faster chunk may already be combining
        // its results into the shared instance while this one is still
        // setting up (the racing buffer is refilled with the identity
        // below, but the copy itself must not race those writes).
        for (const ReductionClause& r : verdict.reductions) {
          InstancePtr copy;
          {
            const std::lock_guard<std::mutex> lock(merge_mutex);
            copy = std::make_shared<Instance>(*frame.slots[r.grid]);
          }
          auto& buf = copy->grid->is_struct() ? copy->fields.at(r.field)
                                              : copy->data;
          std::fill(buf.begin(), buf.end(), reduction_identity(r.op));
          thread_local_copy(r.grid, std::move(copy));
        }

        StepCtx ctx{&verdict, true};
        IndexEnv env;
        for (std::size_t d = 0; d < depth; ++d) {
          env.push(step.loops[d].index_var, band[d].begin);
        }
        bool returned = false;
        double ret_value = 0.0;
        std::vector<std::int64_t> values(depth, 0);
        for (std::int64_t k = chunk_begin; k < chunk_end && !returned; ++k) {
          // Unflatten k into the collapsed band (row-major, as OMP does).
          std::int64_t rest = k;
          for (std::size_t d = depth; d-- > 0;) {
            const std::int64_t trip = rest % band[d].trips;
            rest /= band[d].trips;
            values[d] = band[d].begin + trip * band[d].stride;
          }
          // Rebind all band indices for this iteration point.
          for (std::size_t d = 0; d < depth; ++d) env.pop();
          for (std::size_t d = 0; d < depth; ++d) {
            env.push(step.loops[d].index_var, values[d]);
          }
          if (depth == step.loops.size()) ++worker.stats.loop_iterations;
          worker.exec_loops(tframe, step, depth, env, ctx, &returned,
                            &ret_value);
        }

        // Merge reductions into the shared instances.
        const std::lock_guard<std::mutex> lock(merge_mutex);
        for (const ReductionClause& r : verdict.reductions) {
          Instance& shared = *frame.slots[r.grid];
          Instance& local = *tframe.slots[r.grid];
          auto& sbuf = shared.grid->is_struct() ? shared.fields.at(r.field)
                                                : shared.data;
          auto& lbuf = local.grid->is_struct() ? local.fields.at(r.field)
                                               : local.data;
          for (std::size_t i = 0; i < sbuf.size(); ++i) {
            sbuf[i] = reduction_combine(r.op, sbuf[i], lbuf[i]);
          }
        }
        stats.loop_iterations += worker.stats.loop_iterations;
        stats.function_calls += worker.stats.function_calls;
        stats.local_allocations += worker.stats.local_allocations;
        stats.steps_executed += worker.stats.steps_executed;
      };
  if (m_.options_.dynamic_schedule) {
    m_.pool_->parallel_for_dynamic(iters, m_.options_.schedule_chunk,
                                   chunk_body);
  } else {
    m_.pool_->parallel_for(iters, chunk_body);
  }
}

bool Executor::exec_body(Frame& frame, const std::vector<Stmt>& body,
                         IndexEnv& env, const StepCtx& ctx,
                         double* ret_value) {
  for (const Stmt& s : body) {
    if (exec_stmt(frame, s, env, ctx, ret_value)) return true;
  }
  return false;
}

bool Executor::exec_stmt(Frame& frame, const Stmt& stmt, IndexEnv& env,
                         const StepCtx& ctx, double* ret_value) {
  switch (stmt.kind) {
    case Stmt::Kind::kAssign:
      exec_assign(frame, stmt, env, ctx);
      return false;
    case Stmt::Kind::kIf: {
      for (const IfArm& arm : stmt.arms) {
        if (eval(frame, *arm.cond, env) != 0.0) {
          return exec_body(frame, arm.body, env, ctx, ret_value);
        }
      }
      return exec_body(frame, stmt.else_body, env, ctx, ret_value);
    }
    case Stmt::Kind::kCallSub: {
      const Function* target = m_.program_.find_function(stmt.callee);
      if (target == nullptr) fail(cat("unknown subroutine ", stmt.callee));
      std::vector<InstancePtr> args;
      args.reserve(stmt.args.size());
      for (const ExprPtr& a : stmt.args) {
        if (a->kind == Expr::Kind::kGridRead && a->args.empty()) {
          // Whole grid (or scalar grid) passed by reference.
          args.push_back(frame.slots[a->grid]);
        } else {
          auto tmp = std::make_shared<Instance>();
          tmp->grid = &m_.program_.grid(
              target->params[args.size()]);
          tmp->data.assign(1, eval(frame, *a, env));
          args.push_back(std::move(tmp));
        }
      }
      call_function(*target, std::move(args));
      return false;
    }
    case Stmt::Kind::kReturn: {
      if (stmt.ret) *ret_value = eval(frame, *stmt.ret, env);
      return true;
    }
  }
  return false;
}

void Executor::exec_assign(Frame& frame, const Stmt& stmt, IndexEnv& env,
                           const StepCtx& ctx) {
  const bool step_atomic =
      ctx.parallel_active && ctx.verdict != nullptr &&
      std::find(ctx.verdict->atomic_grids.begin(),
                ctx.verdict->atomic_grids.end(),
                stmt.lhs.grid) != ctx.verdict->atomic_grids.end();
  const bool orphaned_atomic =
      in_parallel_region && m_.atomic_grids_.count(stmt.lhs.grid) != 0;
  if (step_atomic || orphaned_atomic) {
    // The read-modify-write is redone under the lock: re-evaluating the
    // rhs inside the critical section mirrors OMP ATOMIC semantics (the
    // captured update re-reads the target).
    const std::lock_guard<std::mutex> lock(m_.atomic_mutex_);
    double* p = element_ptr(frame, stmt.lhs.grid, stmt.lhs.field,
                            stmt.lhs.subscripts, env);
    *p = eval(frame, *stmt.rhs, env);
    return;
  }
  const double value = eval(frame, *stmt.rhs, env);
  double* p = element_ptr(frame, stmt.lhs.grid, stmt.lhs.field,
                          stmt.lhs.subscripts, env);
  // FORTRAN semantics: assignment to INTEGER truncates.
  const Grid& g = m_.program_.grid(stmt.lhs.grid);
  if (g.field_type(stmt.lhs.field) == DataType::kInt) {
    *p = std::trunc(value);
  } else {
    *p = value;
  }
}

double* Executor::element_ptr(Frame& frame, GridId grid,
                              const std::string& field,
                              const std::vector<ExprPtr>& subs,
                              IndexEnv& env) {
  const InstancePtr& inst = frame.slots[grid];
  if (!inst) {
    fail(cat("grid '", m_.program_.grid(grid).name, "' has no storage here"));
  }
  std::vector<std::int64_t> idx;
  idx.reserve(subs.size());
  for (const ExprPtr& s : subs) idx.push_back(eval_int(frame, *s, env));
  const std::int64_t off = inst->offset(idx);
  return &buffer_of(*inst, field)[static_cast<std::size_t>(off)];
}

double Executor::eval(Frame& frame, const Expr& e, IndexEnv& env) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return value_as_double(e.literal);
    case Expr::Kind::kIndex:
      return static_cast<double>(env.lookup(e.index_name));
    case Expr::Kind::kGridRead: {
      const InstancePtr& inst = frame.slots[e.grid];
      if (!inst) {
        fail(cat("grid '", m_.program_.grid(e.grid).name,
                 "' has no storage here"));
      }
      if (e.args.empty() && !inst->grid->dims.empty()) {
        fail(cat("whole-grid read of '", inst->grid->name,
                 "' outside a call argument"));
      }
      return *element_ptr(frame, e.grid, e.field, e.args, env);
    }
    case Expr::Kind::kBinary: {
      const double a = eval(frame, *e.args[0], env);
      const double b = eval(frame, *e.args[1], env);
      switch (e.bop) {
        case BinOp::kAdd: return a + b;
        case BinOp::kSub: return a - b;
        case BinOp::kMul: return a * b;
        case BinOp::kDiv: {
          // Integer division truncates (FORTRAN / C semantics).
          if (type_of(*e.args[0]) == DataType::kInt &&
              type_of(*e.args[1]) == DataType::kInt) {
            if (b == 0.0) fail("integer division by zero");
            return std::trunc(a / b);
          }
          return a / b;
        }
        case BinOp::kPow: return std::pow(a, b);
        case BinOp::kMod: return std::fmod(a, b);
        case BinOp::kLt: return a < b ? 1.0 : 0.0;
        case BinOp::kLe: return a <= b ? 1.0 : 0.0;
        case BinOp::kGt: return a > b ? 1.0 : 0.0;
        case BinOp::kGe: return a >= b ? 1.0 : 0.0;
        case BinOp::kEq: return a == b ? 1.0 : 0.0;
        case BinOp::kNe: return a != b ? 1.0 : 0.0;
        case BinOp::kAnd: return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
        case BinOp::kOr: return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
      }
      return 0.0;
    }
    case Expr::Kind::kUnary: {
      const double a = eval(frame, *e.args[0], env);
      return e.uop == UnOp::kNeg ? -a : (a == 0.0 ? 1.0 : 0.0);
    }
    case Expr::Kind::kCall:
      return eval_call(frame, e, env);
  }
  return 0.0;
}

double Executor::eval_call(Frame& frame, const Expr& e, IndexEnv& env) {
  if (const LibFunc* lib = find_lib_func(e.callee)) {
    if (lib->whole_grid) {
      const Expr& arg = *e.args[0];
      if (arg.kind != Expr::Kind::kGridRead || !arg.args.empty()) {
        fail(cat(lib->name, " expects a whole-grid argument"));
      }
      const InstancePtr& inst = frame.slots[arg.grid];
      if (!inst) fail(cat("grid has no storage for ", lib->name));
      const std::vector<double>& buf =
          arg.field.empty() ? inst->data : inst->fields.at(arg.field);
      return lib->eval(buf.data(), static_cast<int>(buf.size()));
    }
    double stack_args[8];
    std::vector<double> heap_args;
    double* args = stack_args;
    if (e.args.size() > 8) {
      heap_args.resize(e.args.size());
      args = heap_args.data();
    }
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      args[i] = eval(frame, *e.args[i], env);
    }
    double result = lib->eval(args, static_cast<int>(e.args.size()));
    if (lib->result == LibResult::kInt ||
        (lib->result == LibResult::kSameAsArg && type_of(e) == DataType::kInt)) {
      result = std::trunc(result);
      if (lib->name == "NINT") result = std::nearbyint(args[0]);
    }
    return result;
  }
  const Function* target = m_.program_.find_function(e.callee);
  if (target == nullptr) fail(cat("unknown function ", e.callee));
  std::vector<InstancePtr> args;
  args.reserve(e.args.size());
  for (const ExprPtr& a : e.args) {
    if (a->kind == Expr::Kind::kGridRead && a->args.empty()) {
      args.push_back(frame.slots[a->grid]);
    } else {
      auto tmp = std::make_shared<Instance>();
      tmp->grid = &m_.program_.grid(target->params[args.size()]);
      tmp->data.assign(1, eval(frame, *a, env));
      args.push_back(std::move(tmp));
    }
  }
  return call_function(*target, std::move(args));
}

// ---- Machine ----------------------------------------------------------------

jit::NativeEngine::Options native_engine_options(const InterpOptions& options,
                                                 ThreadPool* pool) {
  jit::NativeEngine::Options nopts;
  nopts.parallel = options.parallel;
  nopts.num_threads = options.num_threads;
  nopts.policy = options.policy;
  nopts.save_temporaries = options.save_temporaries;
  nopts.dynamic_schedule = options.dynamic_schedule;
  nopts.schedule_chunk = options.schedule_chunk;
  nopts.fuse_regions = options.fuse_regions;
  nopts.gate_min_units = options.gate_min_units;
  nopts.pool = pool;
  nopts.cc = options.native_cc;
  nopts.cache_dir = options.native_cache_dir;
  nopts.model = options.native_model;
  nopts.portable = options.native_portable;
  return nopts;
}

Machine::Machine(Program program, InterpOptions options)
    : program_(std::move(program)), options_(std::move(options)),
      analysis_(analyze_program(program_, options_.tweaks)) {
  // Memory-profiling mode is a serial plan-VM mode: the profiler's
  // per-element observation hooks live in the VM, and cross-iteration
  // ordering is only meaningful when iterations run in program order.
  if (options_.profile_deps) {
    options_.engine = ExecEngine::kPlan;
    options_.parallel = false;
    profiler_ = std::make_unique<DepProfiler>();
  }
  if (options_.parallel) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  // Union of atomic-update targets across all verdicts and tweaks: these
  // are serialized anywhere inside a parallel region (orphaned ATOMIC).
  for (const auto& [fn_id, verdicts] : analysis_.verdicts) {
    for (const StepVerdict& v : verdicts) {
      atomic_grids_.insert(v.atomic_grids.begin(), v.atomic_grids.end());
    }
  }
  for (const auto& [fn_name, tweaks] : options_.tweaks) {
    atomic_grids_.insert(tweaks.force_atomic.begin(),
                         tweaks.force_atomic.end());
  }
  // Policy v4: promote profile-clean blocked steps to speculative before
  // plans compile. A profile recorded for a different program is ignored
  // (and reported) rather than trusted.
  if (options_.policy == DirectivePolicy::kV4 &&
      options_.dep_profile != nullptr) {
    const StatusOr<SpeculationSummary> applied =
        apply_speculation(program_, &analysis_, *options_.dep_profile);
    if (applied.is_ok()) {
      native_report_.spec_promoted_steps =
          static_cast<std::uint64_t>(applied.value().promoted);
      if (options_.parallel) {
        for (const auto& [fn_id, verdicts] : analysis_.verdicts) {
          for (const StepVerdict& v : verdicts) {
            if (v.speculative) {
              spec_functions_.insert(fn_id);
              break;
            }
          }
        }
      }
    } else {
      native_report_.spec_profile_rejected = true;
    }
  }
  // Allocate global grids in declaration order: scalars that define other
  // globals' extents are created (and initialized) before their users.
  Executor boot(*this);
  Frame scope;
  scope.slots.resize(program_.grids.size());
  for (const GridId id : program_.global_grids) {
    auto inst = boot.make_instance(program_.grid(id), scope);
    scope.slots[id] = inst;
    globals_[id] = std::move(inst);
  }
  // Plan engine: compile once per machine, and precompute the slot
  // prototype (raw global pointers) every call frame starts from. Global
  // instances are stable for the machine's lifetime, so the raw pointers
  // stay valid. kNative compiles plans too — they are its per-call
  // fallback path.
  plan_slots_proto_.assign(program_.grids.size(), nullptr);
  for (const auto& [id, inst] : globals_) plan_slots_proto_[id] = inst.get();
  if (options_.engine != ExecEngine::kTreeWalk) {
    plans_ = std::make_unique<interp::ProgramPlan>(
        interp::compile_plans(program_, analysis_, atomic_grids_));
  }
  if (options_.engine == ExecEngine::kNative) {
    if (options_.trace) {
      // The kernel cannot record per-step traces; run on plans instead.
      native_report_.fallback_reason = "tracing requested";
    } else {
      StatusOr<std::unique_ptr<jit::NativeEngine>> engine =
          jit::NativeEngine::create(
              program_, analysis_,
              native_engine_options(options_, pool_.get()));
      if (engine.is_ok()) {
        native_ = std::move(engine).value();
        native_report_.available = true;
        native_report_.cache_hit = native_->cache_hit();
        native_report_.object_path = native_->object_path();
        native_report_.num_threads = pool_ != nullptr ? pool_->size() : 1;
        native_report_.regions_total = native_->regions_total();
        native_report_.regions_fused = native_->fused_regions();
        native_report_.gate_min_units = native_->gate_min_units();
        native_report_.model = native_->model();
        native_report_.compiler = native_->compiler();
        native_report_.compiler_version = native_->compiler_version();
        native_report_.compile_flags = native_->compile_flags();
        native_report_.host_key = native_->host_key();
      } else {
        native_report_.fallback_reason =
            std::string(engine.status().message());
      }
    }
  }
}

Machine::~Machine() = default;

DepProfile Machine::dep_profile() const {
  if (profiler_ == nullptr) return DepProfile{};
  return profiler_->profile(dep_profile_program_hash(program_));
}

bool Machine::spec_is_demoted(FunctionId fn, std::size_t step) {
  const std::lock_guard<std::mutex> lock(spec_mutex_);
  return spec_demoted_.count({fn, step}) != 0;
}

void Machine::spec_demote(FunctionId fn, std::size_t step) {
  const std::lock_guard<std::mutex> lock(spec_mutex_);
  if (spec_demoted_.insert({fn, step}).second) {
    ++native_report_.spec_demoted_steps;
  }
}

Instance* Machine::find_global(const std::string& name) {
  for (const auto& [id, inst] : globals_) {
    if (program_.grid(id).name == name) return inst.get();
  }
  return nullptr;
}

const Instance* Machine::find_global(const std::string& name) const {
  for (const auto& [id, inst] : globals_) {
    if (program_.grid(id).name == name) return inst.get();
  }
  return nullptr;
}

Status Machine::set_scalar(const std::string& grid, double value) {
  Instance* inst = find_global(grid);
  if (inst == nullptr) return not_found(cat("global grid '", grid, "'"));
  if (!inst->grid->is_scalar()) {
    return invalid_argument(cat("'", grid, "' is not a scalar"));
  }
  inst->data[0] = value;
  return Status::ok();
}

Status Machine::set_array(const std::string& grid,
                          const std::vector<double>& data,
                          const std::string& field) {
  Instance* inst = find_global(grid);
  if (inst == nullptr) return not_found(cat("global grid '", grid, "'"));
  std::vector<double>& buf =
      field.empty() ? inst->data : inst->fields[field];
  if (buf.size() != data.size()) {
    return invalid_argument(cat("'", grid, "' holds ", buf.size(),
                                " elements, got ", data.size()));
  }
  buf = data;
  return Status::ok();
}

StatusOr<double> Machine::scalar(const std::string& grid) const {
  const Instance* inst = find_global(grid);
  if (inst == nullptr) return not_found(cat("global grid '", grid, "'"));
  if (!inst->grid->is_scalar()) {
    return invalid_argument(cat("'", grid, "' is not a scalar"));
  }
  return inst->data[0];
}

StatusOr<std::vector<double>> Machine::array(const std::string& grid,
                                             const std::string& field) const {
  const Instance* inst = find_global(grid);
  if (inst == nullptr) return not_found(cat("global grid '", grid, "'"));
  if (field.empty()) return inst->data;
  const auto it = inst->fields.find(field);
  if (it == inst->fields.end()) {
    return not_found(cat("field '", field, "' of '", grid, "'"));
  }
  return it->second;
}

StatusOr<double> Machine::call(const std::string& function,
                               const std::vector<CallArg>& args) {
  const Function* fn = program_.find_function(function);
  if (fn == nullptr) return not_found(cat("function '", function, "'"));
  if (args.size() != fn->params.size()) {
    return invalid_argument(cat("'", function, "' expects ",
                                fn->params.size(), " arguments, got ",
                                args.size()));
  }
  // Native dispatch: the kernel handles calls whose arguments are all
  // literal scalars (C passes scalar parameters by value, so a global
  // passed by name — bound by reference in the interpreter — must take
  // the plan path).
  // Policy v4 routes calls into functions with speculative steps to the
  // plan VM, where the validation leg lives — the kernel has no
  // misspeculation protocol.
  const bool spec_routed = spec_functions_.count(fn->id) != 0;
  if (native_ != nullptr && !spec_routed) {
    const jit::AbiFunction* abi = native_->find(function);
    const bool literal_args =
        std::all_of(args.begin(), args.end(), [](const CallArg& a) {
          return std::holds_alternative<double>(a);
        });
    if (abi != nullptr && abi->supported && literal_args) {
      std::vector<double> scalars;
      scalars.reserve(args.size());
      for (const CallArg& a : args) scalars.push_back(std::get<double>(a));
      std::vector<jit::GlobalBinding> bindings;
      bindings.reserve(native_->slots().size());
      for (const jit::AbiSlot& slot : native_->slots()) {
        Instance* inst = globals_.at(slot.grid).get();
        bindings.push_back(jit::GlobalBinding{
            inst->data.data(),
            static_cast<std::int64_t>(inst->data.size())});
      }
      const std::uint64_t regions_before = native_->parallel_regions();
      const std::uint64_t gated_before = native_->gated_regions();
      StatusOr<double> result = native_->call(*abi, scalars, bindings);
      if (!result.is_ok()) return result.status();
      const std::uint64_t regions =
          native_->parallel_regions() - regions_before;
      native_report_.parallel_regions += regions;
      native_report_.gated_serial_regions +=
          native_->gated_regions() - gated_before;
      if (regions > 0) ++native_report_.parallel_calls;
      ++native_report_.native_calls;
      ++stats_.function_calls;
      return result;
    }
  }
  // Count every kNative call the kernel did not run — per-call routing
  // (unsupported ABI, grid-name arguments) and whole-engine
  // unavailability alike — so --strict-engine can refuse both.
  // Speculation-routed calls are intentional plan dispatches, counted
  // separately so strict mode does not mistake them for fallbacks.
  if (options_.engine == ExecEngine::kNative) {
    if (spec_routed && native_ != nullptr) {
      ++native_report_.spec_plan_calls;
    } else {
      ++native_report_.fallback_calls;
    }
  }

  std::vector<InstancePtr> bound;
  bound.reserve(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    const Grid& param = program_.grid(fn->params[i]);
    if (const auto* name = std::get_if<std::string>(&args[i])) {
      Instance* inst = find_global(*name);
      if (inst == nullptr) {
        return not_found(cat("argument ", i + 1, ": global grid '", *name,
                             "'"));
      }
      // Borrow the global's storage by reference.
      for (const auto& [id, shared] : globals_) {
        if (shared.get() == inst) bound.push_back(shared);
      }
    } else {
      auto tmp = std::make_shared<Instance>();
      tmp->grid = &param;
      tmp->data.assign(1, std::get<double>(args[i]));
      bound.push_back(std::move(tmp));
    }
  }
  try {
    double result = 0.0;
    InterpStats call_stats;
    if (plans_ != nullptr) {
      interp::PlanExecutor ex(*this);
      std::vector<Instance*> argv;
      argv.reserve(bound.size());
      for (const InstancePtr& b : bound) argv.push_back(b.get());
      result =
          ex.call_function(plans_->functions[fn->id], argv.data(), argv.size());
      call_stats = ex.stats;
    } else {
      Executor ex(*this);
      result = ex.call_function(*fn, std::move(bound));
      call_stats = ex.stats;
    }
    stats_.steps_executed += call_stats.steps_executed;
    stats_.loop_iterations += call_stats.loop_iterations;
    stats_.local_allocations += call_stats.local_allocations;
    stats_.parallel_regions += call_stats.parallel_regions;
    stats_.function_calls += call_stats.function_calls;
    stats_.spec_regions += call_stats.spec_regions;
    stats_.spec_validations += call_stats.spec_validations;
    stats_.spec_misspeculations += call_stats.spec_misspeculations;
    return result;
  } catch (const InterpError& err) {
    return failed_precondition(err.what());
  }
}

}  // namespace glaf
