#pragma once
// The single source of truth for how InterpOptions map onto the native
// engine's options. Machine's constructor uses it to build its engine;
// the serve compile queue uses it to background-compile the SAME kernel
// (same emitted source, same flags, same cache-key config) a later
// Machine will load as a cache hit. Kept out of machine.hpp so that
// header stays free of jit types.

#include "interp/machine.hpp"
#include "jit/engine.hpp"

namespace glaf {

/// The jit options a Machine constructed with `options` would compile
/// and load its kernel with. `pool` is the machine's thread pool
/// (nullptr when !options.parallel).
[[nodiscard]] jit::NativeEngine::Options native_engine_options(
    const InterpOptions& options, ThreadPool* pool);

}  // namespace glaf
