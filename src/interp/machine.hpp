#pragma once
// Direct execution of GLAF programs — the reproduction's substitute for
// compiling the generated FORTRAN with gfortran/ifort (no Fortran compiler
// is available offline). The interpreter implements the same semantics the
// generators emit, serially or in parallel:
//
//  - serial mode mirrors the "GLAF serial" build;
//  - parallel mode honours the auto-parallelization verdicts and a
//    directive policy (v0..v3), running directive-kept steps on the thread
//    pool with private copies, reduction merging and atomic updates —
//    mirroring the OpenMP builds of §4.
//
// This is what enables the paper's §4.1.1 methodology: "a code-wide
// side-by-side comparison of the results from the execution using the GLAF
// auto-generated subroutines, against the results from executing the
// original code ... for both the serial and parallel versions".

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "analysis/parallelize.hpp"
#include "codegen/options.hpp"
#include "core/program.hpp"
#include "support/status.hpp"

namespace glaf {

class ThreadPool;

namespace interp {
class PlanExecutor;
struct ProgramPlan;
}  // namespace interp

/// Runtime storage for one grid instance. All numeric values are held as
/// doubles (integers are exact below 2^53, far beyond any workload here);
/// struct grids hold one buffer per field (SoA).
struct Instance {
  const Grid* grid = nullptr;
  std::vector<std::int64_t> extents;  ///< evaluated dimension extents
  std::vector<double> data;           ///< non-struct grids
  std::map<std::string, std::vector<double>> fields;  ///< struct grids

  [[nodiscard]] std::int64_t element_count() const;
  /// Flat row-major offset (bounds-checked).
  [[nodiscard]] std::int64_t offset(const std::vector<std::int64_t>& idx) const;
  /// Flat row-major offset without bounds checks — for the plan engine,
  /// whose compiled accesses are guarded once per access instead of once
  /// per dimension (see interp/vm.cpp).
  [[nodiscard]] std::int64_t offset_unchecked(
      const std::vector<std::int64_t>& idx) const;
};

/// Which execution engine runs function calls.
enum class ExecEngine {
  kTreeWalk,  ///< the reference AST interpreter (Executor in machine.cpp)
  kPlan,      ///< compiled flat plans (plan.cpp) on the VM (vm.cpp)
};

/// Interpreter execution options.
struct InterpOptions {
  /// Execution engine; plans are the default, the tree-walk remains as the
  /// semantic reference (the fuzz oracle cross-checks them).
  ExecEngine engine = ExecEngine::kPlan;
  bool parallel = false;              ///< run directive-kept steps in parallel
  int num_threads = 4;
  DirectivePolicy policy = DirectivePolicy::kV0;
  /// Manual tweaks forwarded to the analysis (ioff_search critical etc.).
  TweaksByFunction tweaks;
  /// Treat every function-local array as SAVE'd (no-reallocation option).
  bool save_temporaries = false;
  /// Record a per-step execution trace (the GPI's debugging/visualization
  /// facility): which steps ran, in order, with iteration counts.
  bool trace = false;
  /// Dynamic loop scheduling (OMP SCHEDULE(DYNAMIC, chunk)) instead of the
  /// default static partition.
  bool dynamic_schedule = false;
  std::int64_t schedule_chunk = 4;
};

/// One trace record: a step that executed.
struct TraceEntry {
  std::string function;
  std::string step;
  std::uint64_t iterations = 0;  ///< innermost-loop iterations executed
  bool parallel = false;         ///< ran as a parallel region
};

/// Execution statistics (drive the reallocation/parallel-region analyses).
struct InterpStats {
  std::uint64_t steps_executed = 0;
  std::uint64_t loop_iterations = 0;
  std::uint64_t local_allocations = 0;  ///< local-array materializations
  std::uint64_t parallel_regions = 0;
  std::uint64_t function_calls = 0;
};

/// A host-side call argument: a literal scalar, or the name of a Global
/// Scope grid passed by reference.
using CallArg = std::variant<double, std::string>;

/// The GLAF abstract machine: owns global-grid storage and executes
/// functions of one validated program.
class Machine {
 public:
  /// Takes the program by value: the machine owns its own copy, so callers
  /// may pass temporaries safely.
  explicit Machine(Program program, InterpOptions options = {});
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// --- host access to Global Scope grids -------------------------------
  Status set_scalar(const std::string& grid, double value);
  Status set_array(const std::string& grid, const std::vector<double>& data,
                   const std::string& field = {});
  [[nodiscard]] StatusOr<double> scalar(const std::string& grid) const;
  [[nodiscard]] StatusOr<std::vector<double>> array(
      const std::string& grid, const std::string& field = {}) const;

  /// Call a function. Returns its value (0.0 for subroutines).
  StatusOr<double> call(const std::string& function,
                        const std::vector<CallArg>& args = {});

  [[nodiscard]] const InterpStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// The recorded execution trace (empty unless options.trace).
  [[nodiscard]] const std::vector<TraceEntry>& trace() const {
    return trace_;
  }
  void clear_trace() { trace_.clear(); }

  [[nodiscard]] const ProgramAnalysis& analysis() const { return analysis_; }
  [[nodiscard]] const Program& program() const { return program_; }

 private:
  friend class Executor;
  friend class interp::PlanExecutor;

  Instance* find_global(const std::string& name);
  const Instance* find_global(const std::string& name) const;

  const Program program_;
  InterpOptions options_;
  ProgramAnalysis analysis_;
  std::unique_ptr<ThreadPool> pool_;

  /// GridId -> storage for globals; save-cache for SAVE'd locals.
  std::map<GridId, std::shared_ptr<Instance>> globals_;
  std::map<GridId, std::shared_ptr<Instance>> saved_locals_;

  /// Plan-engine state: compiled plans plus the slot prototype (raw
  /// global-instance pointers, indexed by GridId) each call frame copies.
  std::unique_ptr<interp::ProgramPlan> plans_;
  std::vector<Instance*> plan_slots_proto_;

  InterpStats stats_;
  std::vector<TraceEntry> trace_;
  mutable std::mutex trace_mutex_;

  /// Grids whose updates must be atomic anywhere inside a parallel region
  /// (verdict-detected plus force_atomic tweaks): models OpenMP's
  /// "orphaned" ATOMIC directives in callees.
  std::set<GridId> atomic_grids_;
  std::mutex atomic_mutex_;
};

}  // namespace glaf
