#pragma once
// Direct execution of GLAF programs — the reproduction's substitute for
// compiling the generated FORTRAN with gfortran/ifort (no Fortran compiler
// is available offline). The interpreter implements the same semantics the
// generators emit, serially or in parallel:
//
//  - serial mode mirrors the "GLAF serial" build;
//  - parallel mode honours the auto-parallelization verdicts and a
//    directive policy (v0..v3), running directive-kept steps on the thread
//    pool with private copies, reduction merging and atomic updates —
//    mirroring the OpenMP builds of §4.
//
// This is what enables the paper's §4.1.1 methodology: "a code-wide
// side-by-side comparison of the results from the execution using the GLAF
// auto-generated subroutines, against the results from executing the
// original code ... for both the serial and parallel versions".

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "analysis/parallelize.hpp"
#include "codegen/options.hpp"
#include "core/program.hpp"
#include "support/status.hpp"

namespace glaf {

class ThreadPool;
class DepProfiler;
struct DepProfile;

namespace interp {
class PlanExecutor;
struct ProgramPlan;
}  // namespace interp

namespace jit {
class NativeEngine;
struct AbiFunction;
}  // namespace jit

/// Runtime storage for one grid instance. All numeric values are held as
/// doubles (integers are exact below 2^53, far beyond any workload here);
/// struct grids hold one buffer per field (SoA).
struct Instance {
  const Grid* grid = nullptr;
  std::vector<std::int64_t> extents;  ///< evaluated dimension extents
  std::vector<double> data;           ///< non-struct grids
  std::map<std::string, std::vector<double>> fields;  ///< struct grids

  [[nodiscard]] std::int64_t element_count() const;
  /// Flat row-major offset (bounds-checked).
  [[nodiscard]] std::int64_t offset(const std::vector<std::int64_t>& idx) const;
  /// Flat row-major offset without bounds checks — for the plan engine,
  /// whose compiled accesses are guarded once per access instead of once
  /// per dimension (see interp/vm.cpp).
  [[nodiscard]] std::int64_t offset_unchecked(
      const std::vector<std::int64_t>& idx) const;
};

/// Which execution engine runs function calls.
enum class ExecEngine {
  kTreeWalk,  ///< the reference AST interpreter (Executor in machine.cpp)
  kPlan,      ///< compiled flat plans (plan.cpp) on the VM (vm.cpp)
  kNative,    ///< JIT-compiled shared object (src/jit), plan fallback
};

/// Native (JIT) engine status for one machine (see native_report()).
struct NativeReport {
  bool available = false;       ///< the kernel compiled and loaded
  std::string fallback_reason;  ///< why not, when !available
  std::uint64_t native_calls = 0;    ///< calls run in the kernel
  std::uint64_t fallback_calls = 0;  ///< calls routed to the plan engine
  /// Native calls that dispatched at least one threaded range (subset of
  /// native_calls; a parallel kernel whose steps all lost their
  /// directives under the policy counts as serial).
  std::uint64_t parallel_calls = 0;
  /// Total parallel regions dispatched through the host pfor trampoline.
  std::uint64_t parallel_regions = 0;
  /// Region dispatches the profit gate kept on the calling thread
  /// (estimated work below gate_min_units).
  std::uint64_t gated_serial_regions = 0;
  /// Static dispatch regions in the kernel, and how many of them fused
  /// two or more adjacent steps into a single fork/join.
  std::uint64_t regions_total = 0;
  std::uint64_t regions_fused = 0;
  /// The profit-gate threshold installed into the kernel (work units;
  /// 0 = gating off).
  std::int64_t gate_min_units = 0;
  /// Profile-guided speculation (policy v4; analysis/speculate.hpp).
  /// Unlike the fields above, these are filled under *any* engine when a
  /// dependence profile is attached: steps the planner promoted, steps
  /// the runtime demoted back to serial after a misspeculation, calls
  /// the kNative dispatcher routed to the plan VM because the function
  /// contains a speculative step (counted here, not as fallback_calls),
  /// and whether the attached profile was rejected (hash mismatch).
  std::uint64_t spec_promoted_steps = 0;
  std::uint64_t spec_demoted_steps = 0;
  std::uint64_t spec_plan_calls = 0;
  bool spec_profile_rejected = false;
  int num_threads = 1;          ///< pool width behind parallel kernels
  bool cache_hit = false;       ///< compilation skipped (kernel cache)
  std::string object_path;      ///< published cache entry ("" if none)
  /// Numeric model the kernel was emitted with (kInterp = bit-identical,
  /// kOpt = typed/ulp-bounded).
  NumericModel model = NumericModel::kInterp;
  /// Build provenance as keyed into the kernel cache: the resolved
  /// compiler command, its --version identity line, the exact flag
  /// string, and the host-CPU fingerprint for -march=native objects
  /// ("" when the object is portable).
  std::string compiler;
  std::string compiler_version;
  std::string compile_flags;
  std::string host_key;
};

/// Interpreter execution options.
struct InterpOptions {
  /// Execution engine; plans are the default, the tree-walk remains as the
  /// semantic reference (the fuzz oracle cross-checks them).
  ExecEngine engine = ExecEngine::kPlan;
  bool parallel = false;              ///< run directive-kept steps in parallel
  int num_threads = 4;
  DirectivePolicy policy = DirectivePolicy::kV0;
  /// Manual tweaks forwarded to the analysis (ioff_search critical etc.).
  TweaksByFunction tweaks;
  /// Treat every function-local array as SAVE'd (no-reallocation option).
  bool save_temporaries = false;
  /// Record a per-step execution trace (the GPI's debugging/visualization
  /// facility): which steps ran, in order, with iteration counts.
  bool trace = false;
  /// Dynamic loop scheduling (OMP SCHEDULE(DYNAMIC, chunk)) instead of the
  /// default static partition.
  bool dynamic_schedule = false;
  std::int64_t schedule_chunk = 4;
  /// Restrict parallel execution to steps the analysis proved bitwise
  /// deterministic (StepVerdict::bit_exact without an ownership-band
  /// constraint); everything else runs serially. Results are then
  /// bit-identical to a serial run at any thread count — the contract
  /// the parallel native engine provides by construction, surfaced here
  /// so plan/tree-walk legs can be held to exact equality too.
  bool deterministic_parallel = false;
  /// kNative: compiler command ("" resolves $GLAF_CC, then "cc") and
  /// kernel-cache directory ("" resolves $GLAF_KERNEL_CACHE / XDG).
  std::string native_cc;
  std::string native_cache_dir;
  /// kNative parallel kernels: fuse adjacent fusable steps into single
  /// region dispatches (one fork/join per region instead of per step).
  bool fuse_regions = true;
  /// kNative parallel kernels: profit-gate threshold in work units
  /// (NativeEngine::Options::gate_min_units; -1 = calibrated auto,
  /// 0 = always dispatch).
  std::int64_t gate_min_units = -1;
  /// kNative: numeric model of the emitted kernel. kInterp is the
  /// bit-identical all-double tier; kOpt stores grids in native widths
  /// and compiles -O3 -march=native — fast, but compared against the
  /// interpreter under ulp budgets rather than bitwise. kOpt kernels
  /// are always serial.
  NumericModel native_model = NumericModel::kInterp;
  /// kNative opt tier: compile a portable object (generic -O3, no
  /// -march=native). Also forced by $GLAF_NATIVE_PORTABLE.
  bool native_portable = false;
  /// Memory-profiling mode (LAMP analog, analysis/speculate.hpp): run
  /// serially on the plan VM and record observed cross-iteration
  /// read/write conflicts per (function, step) into a DepProfile
  /// (Machine::dep_profile()). Forces engine = kPlan and parallel = off.
  bool profile_deps = false;
  /// A dependence profile recorded by a profile_deps run. Under policy
  /// v4, profile-clean "complex" steps are promoted to speculative
  /// parallel execution with runtime band validation; a profile whose
  /// program hash does not match is ignored and reported through
  /// NativeReport::spec_profile_rejected.
  std::shared_ptr<const DepProfile> dep_profile;
};

/// One trace record: a step that executed.
struct TraceEntry {
  std::string function;
  std::string step;
  std::uint64_t iterations = 0;  ///< innermost-loop iterations executed
  bool parallel = false;         ///< ran as a parallel region
};

/// Execution statistics (drive the reallocation/parallel-region analyses).
struct InterpStats {
  std::uint64_t steps_executed = 0;
  std::uint64_t loop_iterations = 0;
  std::uint64_t local_allocations = 0;  ///< local-array materializations
  std::uint64_t parallel_regions = 0;
  std::uint64_t function_calls = 0;
  /// Policy v4: speculative parallel executions dispatched, post-join
  /// validations performed, and misspeculations (validation conflicts →
  /// scratch discarded, step re-run serially).
  std::uint64_t spec_regions = 0;
  std::uint64_t spec_validations = 0;
  std::uint64_t spec_misspeculations = 0;
};

/// A host-side call argument: a literal scalar, or the name of a Global
/// Scope grid passed by reference.
using CallArg = std::variant<double, std::string>;

/// The GLAF abstract machine: owns global-grid storage and executes
/// functions of one validated program.
class Machine {
 public:
  /// Takes the program by value: the machine owns its own copy, so callers
  /// may pass temporaries safely.
  explicit Machine(Program program, InterpOptions options = {});
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// --- host access to Global Scope grids -------------------------------
  Status set_scalar(const std::string& grid, double value);
  Status set_array(const std::string& grid, const std::vector<double>& data,
                   const std::string& field = {});
  [[nodiscard]] StatusOr<double> scalar(const std::string& grid) const;
  [[nodiscard]] StatusOr<std::vector<double>> array(
      const std::string& grid, const std::string& field = {}) const;

  /// Call a function. Returns its value (0.0 for subroutines).
  StatusOr<double> call(const std::string& function,
                        const std::vector<CallArg>& args = {});

  [[nodiscard]] const InterpStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// The recorded execution trace (empty unless options.trace).
  [[nodiscard]] const std::vector<TraceEntry>& trace() const {
    return trace_;
  }
  void clear_trace() { trace_.clear(); }

  [[nodiscard]] const ProgramAnalysis& analysis() const { return analysis_; }
  [[nodiscard]] const Program& program() const { return program_; }

  /// Native-engine status: whether the kernel loaded, the fallback
  /// reason when it did not, and per-call dispatch counters. Meaningful
  /// only under ExecEngine::kNative — except the spec_* speculation
  /// counters, which any engine fills under policy v4.
  [[nodiscard]] const NativeReport& native_report() const {
    return native_report_;
  }

  /// The dependence profile recorded so far (profile_deps runs only;
  /// empty otherwise). Stamped with this program's content hash.
  [[nodiscard]] DepProfile dep_profile() const;

 private:
  friend class Executor;
  friend class interp::PlanExecutor;

  Instance* find_global(const std::string& name);
  const Instance* find_global(const std::string& name) const;

  /// Policy v4 demotion protocol: a step that misspeculated once runs
  /// serially for the rest of the machine's life, without re-validation.
  bool spec_is_demoted(FunctionId fn, std::size_t step);
  void spec_demote(FunctionId fn, std::size_t step);

  const Program program_;
  InterpOptions options_;
  ProgramAnalysis analysis_;
  std::unique_ptr<ThreadPool> pool_;

  /// GridId -> storage for globals; save-cache for SAVE'd locals.
  std::map<GridId, std::shared_ptr<Instance>> globals_;
  std::map<GridId, std::shared_ptr<Instance>> saved_locals_;

  /// Plan-engine state: compiled plans plus the slot prototype (raw
  /// global-instance pointers, indexed by GridId) each call frame copies.
  std::unique_ptr<interp::ProgramPlan> plans_;
  std::vector<Instance*> plan_slots_proto_;

  /// Native-engine state (kNative): the loaded kernel, or null when the
  /// machine fell back to plans (see native_report_.fallback_reason).
  std::unique_ptr<jit::NativeEngine> native_;
  NativeReport native_report_;

  InterpStats stats_;
  std::vector<TraceEntry> trace_;
  mutable std::mutex trace_mutex_;

  /// Grids whose updates must be atomic anywhere inside a parallel region
  /// (verdict-detected plus force_atomic tweaks): models OpenMP's
  /// "orphaned" ATOMIC directives in callees.
  std::set<GridId> atomic_grids_;
  std::mutex atomic_mutex_;

  /// Memory profiler behind options_.profile_deps (null otherwise).
  std::unique_ptr<DepProfiler> profiler_;
  /// Policy v4: functions containing at least one promoted step (kNative
  /// routes their calls to the plan VM, where the validation leg lives)
  /// and the steps demoted to serial after a misspeculation.
  std::set<FunctionId> spec_functions_;
  std::set<std::pair<FunctionId, std::size_t>> spec_demoted_;
  std::mutex spec_mutex_;
};

}  // namespace glaf
