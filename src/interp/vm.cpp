#include "interp/vm.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "analysis/speculate.hpp"
#include "codegen/directive_policy.hpp"
#include "core/libfuncs.hpp"
#include "core/typecheck.hpp"
#include "interp/exec_common.hpp"
#include "runtime/thread_pool.hpp"
#include "support/fault.hpp"
#include "support/strings.hpp"

namespace glaf::interp {

namespace {
std::int64_t to_index(double v) {
  return static_cast<std::int64_t>(std::llround(v));
}
}  // namespace

PlanExecutor::PlanExecutor(Machine& m)
    : m_(m), atomic_lock_(m.atomic_mutex_, std::defer_lock) {}

PlanExecutor::~PlanExecutor() = default;

// ---- scratch pool ----------------------------------------------------------

CallScratch& PlanExecutor::acquire_scratch() {
  if (depth_ == scratch_.size()) {
    scratch_.push_back(std::make_unique<CallScratch>());
  }
  return *scratch_[depth_++];
}

void PlanExecutor::release_scratch(CallScratch& cs) {
  cs.keepalive.clear();
  cs.temps_used = 0;
  --depth_;
}

void PlanExecutor::reset_after_error() {
  depth_ = 0;
  atomic_depth_ = 0;
  if (atomic_lock_.owns_lock()) atomic_lock_.unlock();
  for (const auto& s : scratch_) {
    s->keepalive.clear();
    s->temps_used = 0;
  }
}

// ---- binding ---------------------------------------------------------------

void PlanExecutor::bind(CallScratch& cs, const FunctionPlan& plan) {
  cs.refs.resize(plan.refs.size());
  for (std::size_t i = 0; i < plan.refs.size(); ++i) {
    const GridRefPlan& rp = plan.refs[i];
    BoundRef& br = cs.refs[i];
    br = BoundRef{};
    Instance* inst = cs.frame.slots[rp.grid];
    if (inst == nullptr) {
      br.err = 1;
      continue;
    }
    br.inst = inst;
    std::vector<double>* buf = nullptr;
    if (rp.field.empty()) {
      buf = &inst->data;
    } else {
      const auto it = inst->fields.find(rp.field);
      if (it == inst->fields.end()) {
        br.err = 2;
        br.size = inst->element_count();
        continue;
      }
      buf = &it->second;
    }
    br.base = buf->data();
    br.size = static_cast<std::int64_t>(buf->size());
  }
  cs.terms.clear();
  cs.accesses.resize(plan.accesses.size());
  for (std::size_t i = 0; i < plan.accesses.size(); ++i) {
    const AccessPlan& ap = plan.accesses[i];
    BoundAccess& ba = cs.accesses[i];
    ba = BoundAccess{};
    ba.ref = ap.ref;
    ba.terms_begin = ba.terms_end =
        static_cast<std::uint32_t>(cs.terms.size());
    const BoundRef& br = cs.refs[ap.ref];
    if (br.err == 1) continue;  // reported at access time
    const auto& extents = br.inst->extents;
    if (ap.dims.size() != extents.size()) {
      ba.arity_bad = true;
      continue;
    }
    // Fold constant subscript parts and pre-multiply affine coefficients
    // by the row-major strides (built right-to-left so no stride array is
    // needed). Term order within an access is irrelevant to the sum.
    std::int64_t stride = 1;
    for (std::size_t d = ap.dims.size(); d-- > 0;) {
      const DimPlan& dp = ap.dims[d];
      switch (dp.kind) {
        case DimPlan::Kind::kConst:
          ba.folded += stride * dp.constant;
          break;
        case DimPlan::Kind::kAffine:
          ba.folded += stride * dp.constant;
          cs.terms.push_back(BoundTerm{stride * dp.coeff, dp.slot, false});
          break;
        case DimPlan::Kind::kDyn:
          cs.terms.push_back(BoundTerm{stride, dp.reg, true});
          break;
      }
      stride *= extents[d];
    }
    ba.terms_end = static_cast<std::uint32_t>(cs.terms.size());
  }
}

void PlanExecutor::ref_fail(Ctx& C, std::uint32_t ref_idx) {
  const GridRefPlan& rp = C.plan->refs[ref_idx];
  fail(cat("grid '", m_.program_.grid(rp.grid).name, "' has no storage here"));
}

double* PlanExecutor::elem_addr(Ctx& C, std::uint32_t access) {
  CallScratch& cs = *C.cs;
  const BoundAccess& ba = cs.accesses[access];
  const BoundRef& br = cs.refs[ba.ref];
  if (br.err == 1) ref_fail(C, ba.ref);
  if (ba.arity_bad) {
    fail(cat("subscript count does not match rank of grid '",
             br.inst->grid->name, "'"));
  }
#ifdef GLAF_CHECKED_PLANS
  // Debug mode: re-derive every subscript and bounds-check it per
  // dimension, with the tree-walk's exact failure message.
  const AccessPlan& ap = C.plan->accesses[access];
  const auto& extents = br.inst->extents;
  const double* regs = cs.frame.regs.data();
  const std::int64_t* idx = cs.frame.idx.data();
  std::int64_t off = 0;
  for (std::size_t d = 0; d < ap.dims.size(); ++d) {
    const DimPlan& dp = ap.dims[d];
    std::int64_t i = 0;
    switch (dp.kind) {
      case DimPlan::Kind::kConst: i = dp.constant; break;
      case DimPlan::Kind::kAffine:
        i = dp.coeff * idx[dp.slot] + dp.constant;
        break;
      case DimPlan::Kind::kDyn: i = to_index(regs[dp.reg]); break;
    }
    if (i < 0 || i >= extents[d]) {
      fail(cat("subscript ", i, " out of range [0,", extents[d] - 1,
               "] in dimension ", d, " of grid '", br.inst->grid->name,
               "'"));
    }
    off = off * extents[d] + i;
  }
#else
  // Validated-plan fast path: one flat range compare guards memory safety
  // and keeps the failure-as-Status contract for runtime errors.
  std::int64_t off = ba.folded;
  const double* regs = cs.frame.regs.data();
  const std::int64_t* idx = cs.frame.idx.data();
  for (std::uint32_t t = ba.terms_begin; t < ba.terms_end; ++t) {
    const BoundTerm& bt = cs.terms[t];
    off += bt.scale * (bt.dyn ? to_index(regs[bt.src]) : idx[bt.src]);
  }
  if (static_cast<std::uint64_t>(off) >=
      static_cast<std::uint64_t>(br.size)) {
    fail(cat("subscript out of range in grid '", br.inst->grid->name,
             "' (flat offset ", off, ", size ", br.size, ")"));
  }
#endif
  if (br.err == 2) {
    fail(cat("no field '", C.plan->refs[ba.ref].field, "' in grid '",
             br.inst->grid->name, "'"));
  }
  return br.base + off;
}

void PlanExecutor::note_access(Ctx& C, std::uint32_t access, const double* p,
                               bool write) {
  const BoundAccess& ba = C.cs->accesses[access];
  if (C.prof != nullptr) C.prof->record(p, write);
  if (C.spec != nullptr) {
    C.spec->note(ba.ref, p - C.cs->refs[ba.ref].base, write);
  }
}

// ---- dispatch --------------------------------------------------------------

void PlanExecutor::run_range(Ctx& C, std::uint32_t begin, std::uint32_t end) {
  const PlanInstr* code = C.plan->code.data();
  const double* consts = C.plan->consts.data();
  PlanFrame& f = C.cs->frame;
  double* regs = f.regs.data();
  const std::int64_t* idx = f.idx.data();
  std::uint32_t pc = begin;
  while (pc < end) {
    const PlanInstr& in = code[pc++];
    switch (in.op) {
      case POp::kConst: regs[in.dst] = consts[in.c]; break;
      case POp::kLoadIdx:
        regs[in.dst] = static_cast<double>(idx[in.a]);
        break;
      case POp::kLoadGrid: {
        const double* p = elem_addr(C, in.c);
        if (C.prof != nullptr || C.spec != nullptr) {
          note_access(C, in.c, p, false);
        }
        regs[in.dst] = *p;
        break;
      }
      case POp::kStoreGrid: {
        const double v = regs[in.a];
        double* p = elem_addr(C, in.c);
        if (C.prof != nullptr || C.spec != nullptr) {
          note_access(C, in.c, p, true);
        }
        *p = (in.flags & kFlagTruncStore) != 0 ? std::trunc(v) : v;
        break;
      }
      case POp::kStoreAtomic: {
        double* p = elem_addr(C, in.c);
        if (C.prof != nullptr || C.spec != nullptr) {
          note_access(C, in.c, p, true);
        }
        *p = regs[in.a];
        if (--atomic_depth_ == 0) atomic_lock_.unlock();
        break;
      }
      case POp::kAdd: regs[in.dst] = regs[in.a] + regs[in.b]; break;
      case POp::kSub: regs[in.dst] = regs[in.a] - regs[in.b]; break;
      case POp::kMul: regs[in.dst] = regs[in.a] * regs[in.b]; break;
      case POp::kDiv: regs[in.dst] = regs[in.a] / regs[in.b]; break;
      case POp::kIntDiv: {
        const double b = regs[in.b];
        if (b == 0.0) fail("integer division by zero");
        regs[in.dst] = std::trunc(regs[in.a] / b);
        break;
      }
      case POp::kPow: regs[in.dst] = std::pow(regs[in.a], regs[in.b]); break;
      case POp::kMod: regs[in.dst] = std::fmod(regs[in.a], regs[in.b]); break;
      case POp::kLt: regs[in.dst] = regs[in.a] < regs[in.b] ? 1.0 : 0.0; break;
      case POp::kLe:
        regs[in.dst] = regs[in.a] <= regs[in.b] ? 1.0 : 0.0;
        break;
      case POp::kGt: regs[in.dst] = regs[in.a] > regs[in.b] ? 1.0 : 0.0; break;
      case POp::kGe:
        regs[in.dst] = regs[in.a] >= regs[in.b] ? 1.0 : 0.0;
        break;
      case POp::kEq:
        regs[in.dst] = regs[in.a] == regs[in.b] ? 1.0 : 0.0;
        break;
      case POp::kNe:
        regs[in.dst] = regs[in.a] != regs[in.b] ? 1.0 : 0.0;
        break;
      case POp::kAnd:
        regs[in.dst] = (regs[in.a] != 0.0 && regs[in.b] != 0.0) ? 1.0 : 0.0;
        break;
      case POp::kOr:
        regs[in.dst] = (regs[in.a] != 0.0 || regs[in.b] != 0.0) ? 1.0 : 0.0;
        break;
      case POp::kNeg: regs[in.dst] = -regs[in.a]; break;
      case POp::kNot: regs[in.dst] = regs[in.a] == 0.0 ? 1.0 : 0.0; break;
      case POp::kCallLib: {
        const LibCallPlan& lc = C.plan->lib_calls[in.c];
        double stack_args[8];
        std::vector<double> heap_args;
        double* args = stack_args;
        if (lc.argc > 8) {
          heap_args.resize(lc.argc);
          args = heap_args.data();
        }
        const std::uint16_t* arg_regs = C.plan->arg_regs.data();
        for (std::uint32_t i = 0; i < lc.argc; ++i) {
          args[i] = regs[arg_regs[lc.args_begin + i]];
        }
        double result = lc.lib->eval(args, static_cast<int>(lc.argc));
        // Mirror the tree-walk's INTEGER-result rule: truncate, with NINT
        // overriding to round-to-nearest on the raw argument.
        if ((in.flags & kFlagTruncResult) != 0) result = std::trunc(result);
        if ((in.flags & kFlagNint) != 0) result = std::nearbyint(args[0]);
        regs[in.dst] = result;
        break;
      }
      case POp::kCallLibGrid: {
        const LibCallPlan& lc = C.plan->lib_calls[in.c];
        const BoundRef& br = C.cs->refs[lc.ref];
        if (br.err == 1) {
          fail(cat("grid has no storage for ", lc.lib->name));
        }
        if (br.err == 2) {
          fail(cat("no field '", C.plan->refs[lc.ref].field, "' in grid '",
                   br.inst->grid->name, "'"));
        }
        if (C.prof != nullptr) C.prof->record_range(br.base, br.size, false);
        if (C.spec != nullptr) {
          C.spec->note_range(lc.ref, 0, br.size - 1, false);
        }
        regs[in.dst] = lc.lib->eval(br.base, static_cast<int>(br.size));
        break;
      }
      case POp::kCallUser: {
        double result = 0.0;
        run_call_site(C, in, &result);
        regs[in.dst] = result;
        break;
      }
      case POp::kCallSub: run_call_site(C, in, nullptr); break;
      case POp::kJump: pc = in.c; break;
      case POp::kJumpIfZero:
        if (regs[in.a] == 0.0) pc = in.c;
        break;
      case POp::kJumpIfAtomic: {
        const bool hit =
            ((in.flags & kFlagStepAtomic) != 0 && C.parallel_active) ||
            ((in.flags & kFlagMachineAtomic) != 0 && in_parallel_region);
        if (hit) {
          // Re-entrant on the same executor (the tree-walk would
          // self-deadlock here); the store releases at depth zero.
          if (atomic_depth_++ == 0) atomic_lock_.lock();
          pc = in.c;
        }
        break;
      }
      case POp::kGuardRef:
        if (C.cs->refs[in.c].err == 1) ref_fail(C, in.c);
        break;
      case POp::kReturnValue:
        f.ret_value = regs[in.a];
        f.returned = true;
        return;
      case POp::kReturnVoid: f.returned = true; return;
      case POp::kTrap: fail(C.plan->traps[in.c]);
    }
  }
}

void PlanExecutor::run_call_site(Ctx& C, const PlanInstr& in, double* result) {
  CallScratch& cs = *C.cs;
  const CallSitePlan& site = C.plan->call_sites[in.c];
  const FunctionPlan& callee = m_.plans_->functions[site.callee];
  auto& argv = cs.call_args;
  argv.clear();
  const std::size_t tmark = cs.temps_used;
  const double* regs = cs.frame.regs.data();
  for (const CallSitePlan::Arg& a : site.args) {
    if (a.whole_grid) {
      argv.push_back(cs.frame.slots[a.grid]);
    } else {
      if (cs.temps_used == cs.temp_pool.size()) {
        cs.temp_pool.push_back(std::make_shared<Instance>());
      }
      Instance* t = cs.temp_pool[cs.temps_used++].get();
      t->grid = &m_.program_.grid(a.grid);
      t->extents.clear();
      t->fields.clear();
      t->data.assign(1, regs[a.reg]);
      argv.push_back(t);
    }
  }
  const double r = call_function(callee, argv.data(), argv.size());
  cs.temps_used = tmark;
  if (result != nullptr) *result = r;
}

// ---- loops and calls -------------------------------------------------------

std::int64_t PlanExecutor::eval_prog_int(Ctx& C, const ExprProg& p) {
  if (p.is_const) return to_index(p.const_value);
  run_range(C, p.begin, p.end);
  return to_index(C.cs->frame.regs[p.reg]);
}

void PlanExecutor::run_loops(Ctx& C, const StepPlan& sp, std::size_t depth) {
  if (depth == sp.loops.size()) {
    run_range(C, sp.body_begin, sp.body_end);
    return;
  }
  PlanFrame& f = C.cs->frame;
  const LoopPlan& lp = sp.loops[depth];
  const std::int64_t begin = eval_prog_int(C, lp.begin);
  const std::int64_t end = eval_prog_int(C, lp.end);
  const std::int64_t stride =
      lp.has_stride ? eval_prog_int(C, lp.stride) : 1;
  if (stride == 0) fail("zero loop stride");
  for (std::int64_t i = begin; stride > 0 ? i <= end : i >= end;
       i += stride) {
    f.idx[lp.idx_slot] = i;
    if (depth == 0 && C.prof != nullptr) C.prof->set_iteration(i);
    if (depth + 1 == sp.loops.size()) ++stats.loop_iterations;
    run_loops(C, sp, depth + 1);
    if (f.returned) break;
  }
}

double PlanExecutor::call_function(const FunctionPlan& plan,
                                   Instance* const* args, std::size_t nargs) {
  ++stats.function_calls;
  const Function& fn = *plan.fn;
  CallScratch& cs = acquire_scratch();
  PlanFrame& f = cs.frame;
  f.slots.assign(m_.plan_slots_proto_.begin(), m_.plan_slots_proto_.end());
  for (const auto& [id, inst] : global_overrides) f.slots[id] = inst;

  if (nargs != fn.params.size()) {
    fail(cat("call to '", fn.name, "': expected ", fn.params.size(),
             " arguments, got ", nargs));
  }
  for (std::size_t i = 0; i < nargs; ++i) f.slots[fn.params[i]] = args[i];

  // Materialize locals (mirrors Executor::call_function, including the
  // SAVE caches and allocation counting).
  for (const GridId id : fn.locals) {
    const Grid& g = m_.program_.grid(id);
    const bool save = g.save_attr || m_.options_.save_temporaries;
    if (save) {
      auto& cache =
          in_parallel_region ? saved_locals_local_ : m_.saved_locals_;
      auto it = cache.find(id);
      if (it == cache.end()) {
        it = cache.emplace(id, make_instance(g, f)).first;
        if (!g.dims.empty()) ++stats.local_allocations;
      }
      f.slots[id] = it->second.get();
    } else {
      auto inst = make_instance(g, f);
      f.slots[id] = inst.get();
      cs.keepalive.push_back(std::move(inst));
      if (!g.dims.empty()) ++stats.local_allocations;
    }
  }

  f.regs.resize(plan.num_regs);
  f.idx.resize(plan.num_idx);
  f.ret_value = 0.0;
  bind(cs, plan);

  const auto verdict_it = m_.analysis_.verdicts.find(fn.id);
  for (std::size_t s = 0; s < plan.steps.size(); ++s) {
    const StepVerdict* verdict =
        verdict_it != m_.analysis_.verdicts.end() &&
                s < verdict_it->second.size()
            ? &verdict_it->second[s]
            : nullptr;
    ++stats.steps_executed;
    f.returned = false;
    const StepPlan& sp = plan.steps[s];
    const bool parallel =
        m_.options_.parallel && !in_parallel_region && verdict != nullptr &&
        verdict->has_loop && !verdict->needs_critical &&
        keep_directive(m_.options_.policy, *verdict) && m_.pool_ != nullptr &&
        // Deterministic mode: thread only steps proved bitwise identical
        // to serial under a flat partition (see InterpOptions).
        (!m_.options_.deterministic_parallel ||
         (verdict->bit_exact && verdict->exact_partition_dim < 0));
    const std::uint64_t iterations_before = stats.loop_iterations;
    bool ran_parallel = parallel;
    if (parallel) {
      ++stats.parallel_regions;
      run_step_parallel(cs, plan, sp, fn.steps[s], *verdict);
    } else {
      // Policy v4: profile-promoted steps run speculatively in parallel
      // with post-join validation; a misspeculated step is demoted for
      // the rest of the run (see run_step_speculative).
      SpecOutcome spec = SpecOutcome::kNotRun;
      if (m_.options_.parallel && !in_parallel_region && verdict != nullptr &&
          verdict->speculative &&
          m_.options_.policy == DirectivePolicy::kV4 &&
          m_.pool_ != nullptr && !m_.spec_is_demoted(fn.id, s)) {
        spec = run_step_speculative(cs, plan, sp, *verdict, fn.id, s);
      }
      if (spec == SpecOutcome::kNotRun) {
        Ctx C{&plan, &cs, verdict, false};
        if (m_.profiler_ != nullptr) {
          C.prof = m_.profiler_.get();
          C.prof->begin_step(fn.name, s);
          run_loops(C, sp, 0);
          C.prof->end_step();
        } else {
          run_loops(C, sp, 0);
        }
      }
      ran_parallel = spec == SpecOutcome::kCommitted;
    }
    if (m_.options_.trace) {
      const std::lock_guard<std::mutex> lock(m_.trace_mutex_);
      m_.trace_.push_back(TraceEntry{
          fn.name, fn.steps[s].name,
          stats.loop_iterations - iterations_before, ran_parallel});
    }
    if (f.returned) break;
  }
  const double ret = f.ret_value;
  release_scratch(cs);
  return ret;
}

// ---- parallel execution ----------------------------------------------------

PlanExecutor& PlanExecutor::worker(int rank) {
  auto& slot = workers_[static_cast<std::size_t>(rank)];
  if (!slot) {
    slot = std::unique_ptr<PlanExecutor>(new PlanExecutor(m_));
    slot->in_parallel_region = true;
  }
  return *slot;
}

std::shared_ptr<Instance> PlanExecutor::cached_copy(GridId id) {
  auto& slot = copy_cache_[id];
  if (!slot) slot = std::make_shared<Instance>();
  return slot;
}

void PlanExecutor::run_step_parallel(CallScratch& cs, const FunctionPlan& plan,
                                     const StepPlan& sp, const Step& step,
                                     const StepVerdict& verdict) {
  struct CollapsedLoop {
    std::int64_t begin = 0;
    std::int64_t stride = 1;
    std::int64_t trips = 0;
  };
  const std::size_t depth = std::min<std::size_t>(
      std::max(verdict.collapse, 1), sp.loops.size());
  Ctx C{&plan, &cs, nullptr, false};
  // Band bounds are loop-invariant by the collapse legality rule; a bound
  // that does reference an index must fail exactly like the tree-walk's
  // empty IndexEnv lookup.
  const auto band_eval = [&](const ExprProg& p) -> std::int64_t {
    if (p.idx_mask != 0) {
      fail(cat("index variable '", step.loops[p.first_idx].index_var,
               "' not bound"));
    }
    return eval_prog_int(C, p);
  };
  std::vector<CollapsedLoop> band;
  std::int64_t iters = 1;
  for (std::size_t d = 0; d < depth; ++d) {
    const LoopPlan& lp = sp.loops[d];
    CollapsedLoop cl;
    cl.begin = band_eval(lp.begin);
    const std::int64_t end = band_eval(lp.end);
    cl.stride = lp.has_stride ? band_eval(lp.stride) : 1;
    if (cl.stride == 0) fail("zero loop stride");
    const std::int64_t span =
        cl.stride > 0 ? end - cl.begin : cl.begin - end;
    cl.trips = span < 0 ? 0 : span / std::llabs(cl.stride) + 1;
    band.push_back(cl);
    iters *= cl.trips;
  }
  if (iters <= 0) return;

  if (workers_.empty()) {
    workers_.resize(static_cast<std::size_t>(m_.pool_->size()));
  }
  std::mutex merge_mutex;

  const auto chunk_body = [&](int rank, std::int64_t chunk_begin,
                              std::int64_t chunk_end) {
    PlanExecutor& w = worker(rank);
    w.stats = {};
    w.global_overrides = global_overrides;
    // SAVE'd locals are per-chunk threadprivate, exactly like the
    // tree-walk's fresh worker Executors.
    w.saved_locals_local_.clear();
    CallScratch& wcs = w.acquire_scratch();
    try {
      PlanFrame& tf = wcs.frame;
      tf.slots.assign(cs.frame.slots.begin(), cs.frame.slots.end());
      const auto thread_local_copy = [&](GridId id,
                                         std::shared_ptr<Instance> inst) {
        tf.slots[id] = inst.get();
        if (m_.program_.grid(id).is_global) {
          w.global_overrides[id] = inst.get();
        }
        wcs.keepalive.push_back(std::move(inst));
      };
      // Private grids: recycled per-thread instances, re-zeroed in place.
      for (const GridId id : verdict.private_grids) {
        auto copy = w.cached_copy(id);
        w.reinit_into(*copy, m_.program_.grid(id), cs.frame);
        thread_local_copy(id, std::move(copy));
      }
      // Firstprivate: full value copies (buffers recycled).
      for (const GridId id : verdict.firstprivate_grids) {
        auto copy = w.cached_copy(id);
        *copy = *cs.frame.slots[id];
        thread_local_copy(id, std::move(copy));
      }
      // Reductions: identity-initialized copies of the shared instances.
      // Snapshot under the merge mutex: a faster rank may already be
      // combining its results into the shared instance while this rank
      // is still setting up (the racing buffer is refilled with the
      // identity below, but the copy itself must not race the writes).
      for (const ReductionClause& r : verdict.reductions) {
        auto copy = w.cached_copy(r.grid);
        {
          const std::lock_guard<std::mutex> lock(merge_mutex);
          *copy = *cs.frame.slots[r.grid];
        }
        auto& buf = copy->grid->is_struct() ? copy->fields.at(r.field)
                                            : copy->data;
        std::fill(buf.begin(), buf.end(), reduction_identity(r.op));
        thread_local_copy(r.grid, std::move(copy));
      }

      tf.regs.resize(plan.num_regs);
      tf.idx.resize(plan.num_idx);
      tf.returned = false;
      tf.ret_value = 0.0;
      w.bind(wcs, plan);
      Ctx WC{&plan, &wcs, &verdict, true};
      for (std::int64_t k = chunk_begin; k < chunk_end && !tf.returned;
           ++k) {
        // Unflatten k into the collapsed band (row-major, as OMP does).
        std::int64_t rest = k;
        for (std::size_t d = depth; d-- > 0;) {
          const std::int64_t trip = rest % band[d].trips;
          rest /= band[d].trips;
          tf.idx[d] = band[d].begin + trip * band[d].stride;
        }
        if (depth == sp.loops.size()) ++w.stats.loop_iterations;
        w.run_loops(WC, sp, depth);
      }

      {
        const std::lock_guard<std::mutex> lock(merge_mutex);
        for (const ReductionClause& r : verdict.reductions) {
          Instance& shared = *cs.frame.slots[r.grid];
          Instance& local = *tf.slots[r.grid];
          auto& sbuf = shared.grid->is_struct() ? shared.fields.at(r.field)
                                                : shared.data;
          auto& lbuf = local.grid->is_struct() ? local.fields.at(r.field)
                                               : local.data;
          for (std::size_t i = 0; i < sbuf.size(); ++i) {
            sbuf[i] = reduction_combine(r.op, sbuf[i], lbuf[i]);
          }
        }
        stats.loop_iterations += w.stats.loop_iterations;
        stats.function_calls += w.stats.function_calls;
        stats.local_allocations += w.stats.local_allocations;
        stats.steps_executed += w.stats.steps_executed;
      }
      w.release_scratch(wcs);
    } catch (...) {
      // Leave the worker reusable and never exit a chunk holding the
      // machine atomic lock (other chunks would deadlock before the pool
      // rethrows).
      w.reset_after_error();
      throw;
    }
  };
  if (m_.options_.dynamic_schedule) {
    m_.pool_->parallel_for_dynamic(iters, m_.options_.schedule_chunk,
                                   chunk_body);
  } else {
    m_.pool_->parallel_for(iters, chunk_body);
  }
}

// ---- speculative execution (policy v4) -------------------------------------
//
// A profile-promoted step runs its outer loop as static chunks, every rank
// writing to a full private snapshot of each written instance while logging
// element-offset [min, max] access bands per plan ref. After the join the
// bands are validated: overlapping write bands between any two ranks, or an
// earlier rank's write band touching a later rank's read band, mean the
// profile lied and the region is discarded — shared state was never
// written, so a serial re-run on the untouched frame reproduces serial
// behaviour bit for bit and the step is demoted for the rest of the run.
// On success the disjoint write spans commit into the shared buffers in
// rank (== iteration) order.

PlanExecutor::SpecOutcome PlanExecutor::run_step_speculative(
    CallScratch& cs, const FunctionPlan& plan, const StepPlan& sp,
    const StepVerdict& verdict, FunctionId fn_id, std::size_t step_index) {
  // Only the outermost loop is chunked: static chunks make rank order the
  // iteration-band order, which both validation rules and the rank-ordered
  // commit rely on. Bounds that read an index variable would fail the same
  // way serially, so leave those to the serial path.
  if (sp.loops.empty()) return SpecOutcome::kNotRun;
  const LoopPlan& lp = sp.loops[0];
  if (lp.begin.idx_mask != 0 || lp.end.idx_mask != 0 ||
      (lp.has_stride && lp.stride.idx_mask != 0)) {
    return SpecOutcome::kNotRun;
  }

  // The promotion pass (analysis/speculate.cpp) excluded callees and early
  // returns; re-check against the compiled plan — which may encode traps
  // the AST scan did not see — and collect the written grids while at it.
  std::set<GridId> written;
  const auto scan = [&](std::uint32_t begin, std::uint32_t end) -> bool {
    for (std::uint32_t pc = begin; pc < end; ++pc) {
      const PlanInstr& in = plan.code[pc];
      if (in.op == POp::kCallUser || in.op == POp::kCallSub ||
          in.op == POp::kReturnValue || in.op == POp::kReturnVoid) {
        return false;
      }
      if (in.op == POp::kStoreGrid || in.op == POp::kStoreAtomic) {
        written.insert(plan.refs[plan.accesses[in.c].ref].grid);
      }
    }
    return true;
  };
  if (!scan(sp.body_begin, sp.body_end)) return SpecOutcome::kNotRun;
  for (const LoopPlan& l : sp.loops) {
    if (!scan(l.begin.begin, l.begin.end) || !scan(l.end.begin, l.end.end)) {
      return SpecOutcome::kNotRun;
    }
    if (l.has_stride && !scan(l.stride.begin, l.stride.end)) {
      return SpecOutcome::kNotRun;
    }
  }

  // Outer bounds are pure (the scan above rejected calls), so evaluating
  // them here does not perturb the serial fallback that may still run.
  Ctx C{&plan, &cs, &verdict, false};
  const std::int64_t begin = eval_prog_int(C, lp.begin);
  const std::int64_t end = eval_prog_int(C, lp.end);
  const std::int64_t stride = lp.has_stride ? eval_prog_int(C, lp.stride) : 1;
  if (stride == 0) fail("zero loop stride");
  const std::int64_t span = stride > 0 ? end - begin : begin - end;
  const std::int64_t trips = span < 0 ? 0 : span / std::llabs(stride) + 1;
  if (trips < 2) return SpecOutcome::kNotRun;

  PlanFrame& f = cs.frame;
  std::set<const Instance*> written_insts;
  for (const GridId id : written) {
    // An unbound written grid must fail with the serial message.
    if (f.slots[id] == nullptr) return SpecOutcome::kNotRun;
    written_insts.insert(f.slots[id]);
  }
  if (written_insts.empty()) return SpecOutcome::kNotRun;

  // Every slot bound to a written Instance redirects to the same per-rank
  // snapshot — a global passed as a parameter aliases two GridIds onto one
  // instance, and a rank must see its own writes through both names.
  std::vector<GridId> redirect;
  for (std::size_t id = 0; id < f.slots.size(); ++id) {
    if (f.slots[id] != nullptr && written_insts.count(f.slots[id]) != 0) {
      redirect.push_back(static_cast<GridId>(id));
    }
  }

  if (workers_.empty()) {
    workers_.resize(static_cast<std::size_t>(m_.pool_->size()));
  }
  const std::size_t nranks = static_cast<std::size_t>(m_.pool_->size());
  std::vector<SpecLog> logs(nranks);
  for (SpecLog& log : logs) log.refs.assign(plan.refs.size(), SpecRefBands{});
  // scratch[rank]: written shared instance -> this rank's snapshot. Ranks
  // whose static chunk is empty never run and leave their map empty.
  std::vector<std::map<const Instance*, std::shared_ptr<Instance>>> scratch(
      nranks);
  std::vector<InterpStats> rank_stats(nranks);

  ++stats.parallel_regions;
  ++stats.spec_regions;
  bool failed_chunk = false;
  try {
    m_.pool_->parallel_for(
        trips, [&](int rank, std::int64_t cb, std::int64_t ce) {
          PlanExecutor& w = worker(rank);
          w.stats = {};
          w.global_overrides = global_overrides;
          w.saved_locals_local_.clear();
          CallScratch& wcs = w.acquire_scratch();
          try {
            PlanFrame& tf = wcs.frame;
            tf.slots.assign(f.slots.begin(), f.slots.end());
            auto& snap = scratch[static_cast<std::size_t>(rank)];
            for (const GridId id : redirect) {
              Instance* shared = f.slots[id];
              auto it = snap.find(shared);
              if (it == snap.end()) {
                auto copy = w.cached_copy(id);
                *copy = *shared;
                it = snap.emplace(shared, std::move(copy)).first;
              }
              tf.slots[id] = it->second.get();
              if (m_.program_.grid(id).is_global) {
                w.global_overrides[id] = it->second.get();
              }
              wcs.keepalive.push_back(it->second);
            }
            tf.regs.resize(plan.num_regs);
            tf.idx.resize(plan.num_idx);
            tf.returned = false;
            tf.ret_value = 0.0;
            w.bind(wcs, plan);
            Ctx WC{&plan, &wcs, &verdict, false};
            WC.spec = &logs[static_cast<std::size_t>(rank)];
            for (std::int64_t k = cb; k < ce && !tf.returned; ++k) {
              tf.idx[lp.idx_slot] = begin + k * stride;
              if (sp.loops.size() == 1) ++w.stats.loop_iterations;
              w.run_loops(WC, sp, 1);
            }
            rank_stats[static_cast<std::size_t>(rank)] = w.stats;
            w.release_scratch(wcs);
          } catch (...) {
            w.reset_after_error();
            throw;
          }
        });
  } catch (...) {
    // A faulting chunk (e.g. a data-dependent subscript fault serial order
    // might never reach) counts as misspeculation: shared state is still
    // untouched, so the serial re-run below reproduces serial behaviour
    // exactly — including the error, if serial order does hit it.
    failed_chunk = true;
  }

  ++stats.spec_validations;
  bool conflict = failed_chunk;
  if (!conflict && fault::should_fail("interp.spec.validate")) conflict = true;
  if (!conflict) {
    // Merge per-ref bands onto (instance, field) keys so aliased grids and
    // duplicate refs validate as one location, then check:
    //  - write/write overlap between any two ranks — the commit below
    //    copies whole [wmin, wmax] spans whose unwritten gaps hold stale
    //    snapshot values, so overlapping spans cannot merge; and
    //  - an earlier rank's write band touching a later rank's read band —
    //    those iterations consumed pre-step values serial order would
    //    have overwritten.
    // A later rank writing what an earlier rank read is the serial order
    // already: a harmless anti-dependence across bands.
    std::map<std::pair<const Instance*, std::string>,
             std::vector<SpecRefBands>> locs;
    for (std::size_t i = 0; i < plan.refs.size(); ++i) {
      const BoundRef& br = cs.refs[i];
      if (br.inst == nullptr) continue;
      auto& per_rank = locs[{br.inst, plan.refs[i].field}];
      if (per_rank.empty()) per_rank.assign(nranks, SpecRefBands{});
      for (std::size_t r = 0; r < nranks; ++r) {
        const SpecRefBands& b = logs[r].refs[i];
        SpecRefBands& m = per_rank[r];
        m.rmin = std::min(m.rmin, b.rmin);
        m.rmax = std::max(m.rmax, b.rmax);
        m.wmin = std::min(m.wmin, b.wmin);
        m.wmax = std::max(m.wmax, b.wmax);
      }
    }
    const auto overlaps = [](std::int64_t alo, std::int64_t ahi,
                             std::int64_t blo, std::int64_t bhi) {
      return alo <= ahi && blo <= bhi && alo <= bhi && blo <= ahi;
    };
    for (const auto& [key, per_rank] : locs) {
      (void)key;
      for (std::size_t r = 0; r < nranks && !conflict; ++r) {
        const SpecRefBands& a = per_rank[r];
        for (std::size_t later = r + 1; later < nranks; ++later) {
          const SpecRefBands& b = per_rank[later];
          if (overlaps(a.wmin, a.wmax, b.wmin, b.wmax) ||
              overlaps(a.wmin, a.wmax, b.rmin, b.rmax)) {
            conflict = true;
            break;
          }
        }
      }
      if (conflict) break;
    }
  }

  if (!conflict) {
    // Rank-ordered commit: copy each rank's written spans from its
    // snapshot into the shared buffers. Write bands are pairwise disjoint
    // (validated above), so span gaps — snapshot values equal to the
    // shared values — are no-op copies.
    for (std::size_t r = 0; r < nranks; ++r) {
      const auto& snap = scratch[r];
      for (std::size_t i = 0; i < plan.refs.size(); ++i) {
        const SpecRefBands& b = logs[r].refs[i];
        if (b.wmax < b.wmin) continue;
        const BoundRef& br = cs.refs[i];
        const auto it = snap.find(br.inst);
        if (it == snap.end()) continue;
        const Instance& src = *it->second;
        const std::string& field = plan.refs[i].field;
        const std::vector<double>& sbuf =
            field.empty() ? src.data : src.fields.at(field);
        std::copy(sbuf.begin() + b.wmin, sbuf.begin() + b.wmax + 1,
                  br.base + b.wmin);
      }
      stats.loop_iterations += rank_stats[r].loop_iterations;
      stats.function_calls += rank_stats[r].function_calls;
      stats.local_allocations += rank_stats[r].local_allocations;
      stats.steps_executed += rank_stats[r].steps_executed;
    }
    return SpecOutcome::kCommitted;
  }

  // Misspeculation: the snapshots are discarded (worker caches recycle the
  // buffers), the step is demoted for the rest of the run, and the
  // untouched shared frame re-runs serially.
  ++stats.spec_misspeculations;
  m_.spec_demote(fn_id, step_index);
  Ctx S{&plan, &cs, &verdict, false};
  run_loops(S, sp, 0);
  return SpecOutcome::kMisspeculated;
}

// ---- cold-path instance construction --------------------------------------

void PlanExecutor::init_instance(Instance& inst, const Grid& g) {
  const std::size_t n = static_cast<std::size_t>(inst.element_count());
  if (g.is_struct()) {
    for (const Field& fd : g.fields) inst.fields[fd.name].assign(n, 0.0);
  } else {
    inst.data.assign(n, 0.0);
    for (std::size_t i = 0; i < g.init_data.size() && i < n; ++i) {
      inst.data[i] = value_as_double(g.init_data[i]);
    }
  }
}

std::shared_ptr<Instance> PlanExecutor::make_instance(const Grid& g,
                                                      PlanFrame& f) {
  auto inst = std::make_shared<Instance>();
  inst->grid = &g;
  for (const Dim& d : g.dims) {
    const std::int64_t e = to_index(eval_slow(f, *d.extent));
    if (e < 1) {
      fail(cat("non-positive extent ", e, " for grid '", g.name, "'"));
    }
    inst->extents.push_back(e);
  }
  init_instance(*inst, g);
  return inst;
}

void PlanExecutor::reinit_into(Instance& inst, const Grid& g, PlanFrame& f) {
  inst.grid = &g;
  inst.extents.clear();
  for (const Dim& d : g.dims) {
    const std::int64_t e = to_index(eval_slow(f, *d.extent));
    if (e < 1) {
      fail(cat("non-positive extent ", e, " for grid '", g.name, "'"));
    }
    inst.extents.push_back(e);
  }
  init_instance(inst, g);
}

/// Extent expressions run outside any loop, so kIndex always fails —
/// mirroring the tree-walk's empty IndexEnv in make_instance.
double PlanExecutor::eval_slow(PlanFrame& f, const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return value_as_double(e.literal);
    case Expr::Kind::kIndex:
      fail(cat("index variable '", e.index_name, "' not bound"));
    case Expr::Kind::kGridRead: {
      Instance* inst = f.slots[e.grid];
      if (inst == nullptr) {
        fail(cat("grid '", m_.program_.grid(e.grid).name,
                 "' has no storage here"));
      }
      if (e.args.empty() && !inst->grid->dims.empty()) {
        fail(cat("whole-grid read of '", inst->grid->name,
                 "' outside a call argument"));
      }
      std::vector<std::int64_t> idx;
      idx.reserve(e.args.size());
      for (const ExprPtr& s : e.args) idx.push_back(to_index(eval_slow(f, *s)));
      const std::int64_t off = inst->offset(idx);
      const std::vector<double>* buf = &inst->data;
      if (!e.field.empty()) {
        const auto it = inst->fields.find(e.field);
        if (it == inst->fields.end()) {
          fail(cat("no field '", e.field, "' in grid '", inst->grid->name,
                   "'"));
        }
        buf = &it->second;
      }
      return (*buf)[static_cast<std::size_t>(off)];
    }
    case Expr::Kind::kBinary: {
      const double a = eval_slow(f, *e.args[0]);
      const double b = eval_slow(f, *e.args[1]);
      switch (e.bop) {
        case BinOp::kAdd: return a + b;
        case BinOp::kSub: return a - b;
        case BinOp::kMul: return a * b;
        case BinOp::kDiv: {
          if (infer_type(m_.program_, *e.args[0]) == DataType::kInt &&
              infer_type(m_.program_, *e.args[1]) == DataType::kInt) {
            if (b == 0.0) fail("integer division by zero");
            return std::trunc(a / b);
          }
          return a / b;
        }
        case BinOp::kPow: return std::pow(a, b);
        case BinOp::kMod: return std::fmod(a, b);
        case BinOp::kLt: return a < b ? 1.0 : 0.0;
        case BinOp::kLe: return a <= b ? 1.0 : 0.0;
        case BinOp::kGt: return a > b ? 1.0 : 0.0;
        case BinOp::kGe: return a >= b ? 1.0 : 0.0;
        case BinOp::kEq: return a == b ? 1.0 : 0.0;
        case BinOp::kNe: return a != b ? 1.0 : 0.0;
        case BinOp::kAnd: return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
        case BinOp::kOr: return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
      }
      return 0.0;
    }
    case Expr::Kind::kUnary: {
      const double a = eval_slow(f, *e.args[0]);
      return e.uop == UnOp::kNeg ? -a : (a == 0.0 ? 1.0 : 0.0);
    }
    case Expr::Kind::kCall:
      return eval_call_slow(f, e);
  }
  return 0.0;
}

double PlanExecutor::eval_call_slow(PlanFrame& f, const Expr& e) {
  if (const LibFunc* lib = find_lib_func(e.callee)) {
    if (lib->whole_grid) {
      const Expr& arg = *e.args[0];
      if (arg.kind != Expr::Kind::kGridRead || !arg.args.empty()) {
        fail(cat(lib->name, " expects a whole-grid argument"));
      }
      Instance* inst = f.slots[arg.grid];
      if (inst == nullptr) fail(cat("grid has no storage for ", lib->name));
      const std::vector<double>& buf =
          arg.field.empty() ? inst->data : inst->fields.at(arg.field);
      return lib->eval(buf.data(), static_cast<int>(buf.size()));
    }
    double stack_args[8];
    std::vector<double> heap_args;
    double* args = stack_args;
    if (e.args.size() > 8) {
      heap_args.resize(e.args.size());
      args = heap_args.data();
    }
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      args[i] = eval_slow(f, *e.args[i]);
    }
    double result = lib->eval(args, static_cast<int>(e.args.size()));
    if (lib->result == LibResult::kInt ||
        (lib->result == LibResult::kSameAsArg &&
         infer_type(m_.program_, e) == DataType::kInt)) {
      result = std::trunc(result);
      if (lib->name == "NINT") result = std::nearbyint(args[0]);
    }
    return result;
  }
  const Function* target = m_.program_.find_function(e.callee);
  if (target == nullptr) fail(cat("unknown function ", e.callee));
  std::vector<Instance*> argv;
  std::vector<std::shared_ptr<Instance>> temps;
  argv.reserve(e.args.size());
  for (const ExprPtr& a : e.args) {
    if (a->kind == Expr::Kind::kGridRead && a->args.empty()) {
      argv.push_back(f.slots[a->grid]);
    } else {
      if (argv.size() >= target->params.size()) {
        fail(cat("call to '", target->name, "': expected ",
                 target->params.size(), " arguments, got ", e.args.size()));
      }
      auto tmp = std::make_shared<Instance>();
      tmp->grid = &m_.program_.grid(target->params[argv.size()]);
      tmp->data.assign(1, eval_slow(f, *a));
      argv.push_back(tmp.get());
      temps.push_back(std::move(tmp));
    }
  }
  return call_function(m_.plans_->functions[target->id], argv.data(),
                       argv.size());
}

}  // namespace glaf::interp
