#include "interp/report_json.hpp"

#include "support/json.hpp"

namespace glaf {

std::string native_report_json(const NativeReport& report) {
  JsonWriter w;
  w.begin_object();
  w.key("available");
  w.value(report.available);
  w.key("fallback_reason");
  w.value(report.fallback_reason);
  w.key("model");
  w.value(to_string(report.model));
  w.key("native_calls");
  w.value(report.native_calls);
  w.key("fallback_calls");
  w.value(report.fallback_calls);
  w.key("parallel_calls");
  w.value(report.parallel_calls);
  w.key("parallel_regions");
  w.value(report.parallel_regions);
  w.key("gated_serial_regions");
  w.value(report.gated_serial_regions);
  w.key("regions_total");
  w.value(report.regions_total);
  w.key("regions_fused");
  w.value(report.regions_fused);
  w.key("gate_min_units");
  w.value(report.gate_min_units);
  w.key("num_threads");
  w.value(report.num_threads);
  w.key("spec_promoted_steps");
  w.value(report.spec_promoted_steps);
  w.key("spec_demoted_steps");
  w.value(report.spec_demoted_steps);
  w.key("spec_plan_calls");
  w.value(report.spec_plan_calls);
  w.key("spec_profile_rejected");
  w.value(report.spec_profile_rejected);
  w.key("cache_hit");
  w.value(report.cache_hit);
  w.key("object_path");
  w.value(report.object_path);
  w.key("compiler");
  w.value(report.compiler);
  w.key("compiler_version");
  w.value(report.compiler_version);
  w.key("compile_flags");
  w.value(report.compile_flags);
  w.key("host_key");
  w.value(report.host_key);
  w.end_object();
  return std::move(w).str();
}

std::string interp_stats_json(const InterpStats& stats) {
  JsonWriter w;
  w.begin_object();
  w.key("steps_executed");
  w.value(stats.steps_executed);
  w.key("loop_iterations");
  w.value(stats.loop_iterations);
  w.key("local_allocations");
  w.value(stats.local_allocations);
  w.key("parallel_regions");
  w.value(stats.parallel_regions);
  w.key("function_calls");
  w.value(stats.function_calls);
  w.key("spec_regions");
  w.value(stats.spec_regions);
  w.key("spec_validations");
  w.value(stats.spec_validations);
  w.key("spec_misspeculations");
  w.value(stats.spec_misspeculations);
  w.end_object();
  return std::move(w).str();
}

}  // namespace glaf
