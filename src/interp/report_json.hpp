#pragma once
// One JSON schema for the native-engine report, shared by every
// machine-readable surface: `glafc --json` prints it on stdout, the
// serve subsystem's stats endpoint embeds it per session, and CI checks
// grep the same field names in both. Keeping the renderer next to the
// Machine (rather than in each tool) is what keeps the schema single.

#include <string>

#include "interp/machine.hpp"

namespace glaf {

/// `report` as one JSON object. Field names mirror the NativeReport
/// members one-to-one (snake_case, `model` rendered via to_string).
[[nodiscard]] std::string native_report_json(const NativeReport& report);

/// `stats` as one JSON object (steps/iterations/allocations/regions/
/// calls), the run-mode counters that accompany the native report.
[[nodiscard]] std::string interp_stats_json(const InterpStats& stats);

}  // namespace glaf
