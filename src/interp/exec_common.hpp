#pragma once
// Helpers shared by the two execution engines (the tree-walk Executor in
// machine.cpp and the plan VM in vm.cpp). Both must agree exactly on
// error unwinding and reduction algebra, so these live in one place.

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "analysis/reduction.hpp"

namespace glaf::interp {

/// Internal unwinding for runtime errors; converted to Status at the API
/// boundary (Machine::call).
struct InterpError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] inline void fail(const std::string& msg) {
  throw InterpError(msg);
}

inline double reduction_identity(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return 0.0;
    case ReduceOp::kProd: return 1.0;
    case ReduceOp::kMin: return std::numeric_limits<double>::infinity();
    case ReduceOp::kMax: return -std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

inline double reduction_combine(ReduceOp op, double a, double b) {
  switch (op) {
    case ReduceOp::kSum: return a + b;
    case ReduceOp::kProd: return a * b;
    case ReduceOp::kMin: return std::min(a, b);
    case ReduceOp::kMax: return std::max(a, b);
  }
  return a;
}

}  // namespace glaf::interp
