#include "interp/plan.hpp"

#include <bit>
#include <cmath>
#include <map>
#include <optional>
#include <utility>

#include "core/libfuncs.hpp"
#include "core/typecheck.hpp"
#include "support/strings.hpp"

namespace glaf::interp {
namespace {

/// Largest double that still represents every integer exactly.
constexpr double kExactIntLimit = 9007199254740992.0;  // 2^53

bool integral(double v) {
  return std::isfinite(v) && v == std::floor(v) &&
         std::fabs(v) < kExactIntLimit;
}

/// An affine subscript: coeff * idx[slot] + constant (coeff == 0 means a
/// pure constant). Only exact-integer combinations are represented, so
/// evaluating in int64 matches llround(double evaluation) bit for bit.
struct Affine {
  std::int64_t coeff = 0;
  std::int64_t constant = 0;
  std::uint16_t slot = 0;
};

/// Compiles one function into a FunctionPlan. The compiler mirrors the
/// tree-walk Executor's semantics exactly, including its evaluation order
/// and failure behaviour: statements that would fail at run time compile
/// to kTrap instructions carrying the identical message, raised only if
/// actually executed.
class PlanCompiler {
 public:
  PlanCompiler(const Program& program, const ProgramAnalysis& analysis,
               const std::set<GridId>& atomic_grids)
      : program_(program), analysis_(analysis), atomic_grids_(atomic_grids) {}

  FunctionPlan compile(const Function& fn) {
    out_ = FunctionPlan{};
    out_.fn = &fn;
    const_pool_.clear();
    ref_pool_.clear();
    const auto verdict_it = analysis_.verdicts.find(fn.id);
    out_.steps.reserve(fn.steps.size());
    for (std::size_t s = 0; s < fn.steps.size(); ++s) {
      const StepVerdict* verdict =
          verdict_it != analysis_.verdicts.end() &&
                  s < verdict_it->second.size()
              ? &verdict_it->second[s]
              : nullptr;
      compile_step(fn.steps[s], verdict);
    }
    return std::move(out_);
  }

 private:
  // ---- pools -------------------------------------------------------------

  std::uint16_t alloc_reg() {
    const std::uint16_t r = next_reg_++;
    if (next_reg_ > out_.num_regs) out_.num_regs = next_reg_;
    return r;
  }

  std::uint32_t emit(PlanInstr in) {
    out_.code.push_back(in);
    return static_cast<std::uint32_t>(out_.code.size() - 1);
  }

  std::uint32_t add_const(double v) {
    // Key by bit pattern so -0.0 and NaN payloads round-trip exactly.
    const std::uint64_t key = std::bit_cast<std::uint64_t>(v);
    const auto it = const_pool_.find(key);
    if (it != const_pool_.end()) return it->second;
    out_.consts.push_back(v);
    const auto id = static_cast<std::uint32_t>(out_.consts.size() - 1);
    const_pool_.emplace(key, id);
    return id;
  }

  std::uint16_t emit_const(double v) {
    const std::uint16_t r = alloc_reg();
    emit({POp::kConst, 0, r, 0, 0, add_const(v)});
    return r;
  }

  std::uint32_t add_ref(GridId grid, const std::string& field) {
    const auto key = std::make_pair(grid, field);
    const auto it = ref_pool_.find(key);
    if (it != ref_pool_.end()) return it->second;
    out_.refs.push_back(GridRefPlan{grid, field});
    const auto id = static_cast<std::uint32_t>(out_.refs.size() - 1);
    ref_pool_.emplace(key, id);
    return id;
  }

  std::uint32_t add_trap(std::string msg) {
    out_.traps.push_back(std::move(msg));
    return static_cast<std::uint32_t>(out_.traps.size() - 1);
  }

  /// Emit a trap and return a dummy register (the trap unwinds first, but
  /// expression compilation needs a register to thread through).
  std::uint16_t emit_trap(std::string msg) {
    emit({POp::kTrap, 0, 0, 0, 0, add_trap(std::move(msg))});
    return alloc_reg();
  }

  // ---- index slots -------------------------------------------------------

  /// Innermost-binding-wins lookup, mirroring IndexEnv.
  std::optional<std::uint16_t> find_slot(const std::string& name) const {
    for (auto it = idx_names_.rbegin(); it != idx_names_.rend(); ++it) {
      if (*it->first == name) return it->second;
    }
    return std::nullopt;
  }

  void note_idx_use(std::uint16_t slot) {
    if (cur_mask_ == 0) cur_first_idx_ = slot;
    cur_mask_ |= slot < 32 ? (1u << slot) : 0;
  }

  // ---- interpreter-exact constant folding --------------------------------

  /// Folds pure-literal subtrees with the tree-walk evaluator's exact
  /// semantics. Refuses to fold anything the interpreter would fail on
  /// (integer division by zero), so lazy failure is preserved. This is
  /// deliberately NOT core/expr.cpp's fold_constant, whose integer rules
  /// differ from the interpreter (e.g. `1/0` folds to NaN there).
  std::optional<double> try_fold(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kLiteral:
        return value_as_double(e.literal);
      case Expr::Kind::kUnary: {
        const auto a = try_fold(*e.args[0]);
        if (!a) return std::nullopt;
        return e.uop == UnOp::kNeg ? -*a : (*a == 0.0 ? 1.0 : 0.0);
      }
      case Expr::Kind::kBinary: {
        const auto a = try_fold(*e.args[0]);
        const auto b = try_fold(*e.args[1]);
        if (!a || !b) return std::nullopt;
        switch (e.bop) {
          case BinOp::kAdd: return *a + *b;
          case BinOp::kSub: return *a - *b;
          case BinOp::kMul: return *a * *b;
          case BinOp::kDiv:
            if (type_of(*e.args[0]) == DataType::kInt &&
                type_of(*e.args[1]) == DataType::kInt) {
              if (*b == 0.0) return std::nullopt;  // runtime failure
              return std::trunc(*a / *b);
            }
            return *a / *b;
          case BinOp::kPow: return std::pow(*a, *b);
          case BinOp::kMod: return std::fmod(*a, *b);
          case BinOp::kLt: return *a < *b ? 1.0 : 0.0;
          case BinOp::kLe: return *a <= *b ? 1.0 : 0.0;
          case BinOp::kGt: return *a > *b ? 1.0 : 0.0;
          case BinOp::kGe: return *a >= *b ? 1.0 : 0.0;
          case BinOp::kEq: return *a == *b ? 1.0 : 0.0;
          case BinOp::kNe: return *a != *b ? 1.0 : 0.0;
          case BinOp::kAnd: return (*a != 0.0 && *b != 0.0) ? 1.0 : 0.0;
          case BinOp::kOr: return (*a != 0.0 || *b != 0.0) ? 1.0 : 0.0;
        }
        return std::nullopt;
      }
      default:
        return std::nullopt;
    }
  }

  /// Match `e` as an exact-integer affine form over one index slot.
  std::optional<Affine> match_affine(const Expr& e) {
    if (const auto v = try_fold(e)) {
      if (!integral(*v)) return std::nullopt;
      return Affine{0, static_cast<std::int64_t>(*v), 0};
    }
    switch (e.kind) {
      case Expr::Kind::kIndex: {
        const auto slot = find_slot(e.index_name);
        if (!slot) return std::nullopt;
        return Affine{1, 0, *slot};
      }
      case Expr::Kind::kUnary: {
        if (e.uop != UnOp::kNeg) return std::nullopt;
        auto a = match_affine(*e.args[0]);
        if (!a) return std::nullopt;
        a->coeff = -a->coeff;
        a->constant = -a->constant;
        return a;
      }
      case Expr::Kind::kBinary: {
        if (e.bop == BinOp::kAdd || e.bop == BinOp::kSub) {
          auto a = match_affine(*e.args[0]);
          auto b = match_affine(*e.args[1]);
          if (!a || !b) return std::nullopt;
          if (e.bop == BinOp::kSub) {
            b->coeff = -b->coeff;
            b->constant = -b->constant;
          }
          if (a->coeff != 0 && b->coeff != 0 && a->slot != b->slot) {
            return std::nullopt;  // two distinct indices: not 1-D affine
          }
          Affine r;
          r.coeff = a->coeff + b->coeff;
          r.constant = a->constant + b->constant;
          r.slot = a->coeff != 0 ? a->slot : b->slot;
          return r;
        }
        if (e.bop == BinOp::kMul) {
          auto a = match_affine(*e.args[0]);
          auto b = match_affine(*e.args[1]);
          if (!a || !b) return std::nullopt;
          if (a->coeff != 0 && b->coeff != 0) return std::nullopt;
          if (a->coeff == 0) std::swap(a, b);  // a carries the index (if any)
          return Affine{a->coeff * b->constant, a->constant * b->constant,
                        a->slot};
        }
        return std::nullopt;
      }
      default:
        return std::nullopt;
    }
  }

  // ---- expression compilation -------------------------------------------

  std::uint16_t compile_expr(const Expr& e) {
    if (const auto v = try_fold(e)) return emit_const(*v);
    switch (e.kind) {
      case Expr::Kind::kLiteral:
        return emit_const(value_as_double(e.literal));
      case Expr::Kind::kIndex: {
        const auto slot = find_slot(e.index_name);
        if (!slot) {
          return emit_trap(
              cat("index variable '", e.index_name, "' not bound"));
        }
        note_idx_use(*slot);
        const std::uint16_t r = alloc_reg();
        emit({POp::kLoadIdx, 0, r, *slot, 0, 0});
        return r;
      }
      case Expr::Kind::kGridRead: {
        const Grid& g = program_.grid(e.grid);
        if (e.args.empty() && !g.dims.empty()) {
          // Mirror the tree-walk order: missing storage reports first,
          // then the whole-grid-read error.
          const std::uint32_t ref = add_ref(e.grid, e.field);
          emit({POp::kGuardRef, 0, 0, 0, 0, ref});
          return emit_trap(cat("whole-grid read of '", g.name,
                               "' outside a call argument"));
        }
        const std::uint32_t acc = compile_access(e.grid, e.field, e.args);
        const std::uint16_t r = alloc_reg();
        emit({POp::kLoadGrid, 0, r, 0, 0, acc});
        return r;
      }
      case Expr::Kind::kBinary: {
        const std::uint16_t a = compile_expr(*e.args[0]);
        const std::uint16_t b = compile_expr(*e.args[1]);
        POp op = POp::kAdd;
        switch (e.bop) {
          case BinOp::kAdd: op = POp::kAdd; break;
          case BinOp::kSub: op = POp::kSub; break;
          case BinOp::kMul: op = POp::kMul; break;
          case BinOp::kDiv:
            op = type_of(*e.args[0]) == DataType::kInt &&
                         type_of(*e.args[1]) == DataType::kInt
                     ? POp::kIntDiv
                     : POp::kDiv;
            break;
          case BinOp::kPow: op = POp::kPow; break;
          case BinOp::kMod: op = POp::kMod; break;
          case BinOp::kLt: op = POp::kLt; break;
          case BinOp::kLe: op = POp::kLe; break;
          case BinOp::kGt: op = POp::kGt; break;
          case BinOp::kGe: op = POp::kGe; break;
          case BinOp::kEq: op = POp::kEq; break;
          case BinOp::kNe: op = POp::kNe; break;
          case BinOp::kAnd: op = POp::kAnd; break;
          case BinOp::kOr: op = POp::kOr; break;
        }
        const std::uint16_t r = alloc_reg();
        emit({op, 0, r, a, b, 0});
        return r;
      }
      case Expr::Kind::kUnary: {
        const std::uint16_t a = compile_expr(*e.args[0]);
        const std::uint16_t r = alloc_reg();
        emit({e.uop == UnOp::kNeg ? POp::kNeg : POp::kNot, 0, r, a, 0, 0});
        return r;
      }
      case Expr::Kind::kCall:
        return compile_call(e);
    }
    return emit_const(0.0);
  }

  /// Compile a grid element access: classify each subscript as constant,
  /// affine-in-one-index, or dynamic (evaluated into a register).
  std::uint32_t compile_access(GridId grid, const std::string& field,
                               const std::vector<ExprPtr>& subs) {
    AccessPlan ap;
    ap.ref = add_ref(grid, field);
    ap.dims.reserve(subs.size());
    // Classification is pure; emission below preserves evaluation order.
    bool any_dyn = false;
    std::vector<std::optional<Affine>> forms(subs.size());
    for (std::size_t d = 0; d < subs.size(); ++d) {
      forms[d] = match_affine(*subs[d]);
      if (!forms[d]) any_dyn = true;
    }
    if (any_dyn) {
      // The tree-walk checks storage before evaluating subscripts; keep
      // that order visible when a subscript evaluation could itself fail.
      emit({POp::kGuardRef, 0, 0, 0, 0, ap.ref});
    }
    for (std::size_t d = 0; d < subs.size(); ++d) {
      DimPlan dp;
      if (forms[d] && forms[d]->coeff == 0) {
        dp.kind = DimPlan::Kind::kConst;
        dp.constant = forms[d]->constant;
      } else if (forms[d]) {
        dp.kind = DimPlan::Kind::kAffine;
        dp.coeff = forms[d]->coeff;
        dp.constant = forms[d]->constant;
        dp.slot = forms[d]->slot;
        note_idx_use(dp.slot);
      } else {
        dp.kind = DimPlan::Kind::kDyn;
        dp.reg = compile_expr(*subs[d]);
      }
      ap.dims.push_back(dp);
    }
    out_.accesses.push_back(std::move(ap));
    return static_cast<std::uint32_t>(out_.accesses.size() - 1);
  }

  std::uint16_t compile_call(const Expr& e) {
    if (const LibFunc* lib = find_lib_func(e.callee)) {
      if (lib->whole_grid) {
        if (e.args.empty() || e.args[0]->kind != Expr::Kind::kGridRead ||
            !e.args[0]->args.empty()) {
          return emit_trap(cat(lib->name, " expects a whole-grid argument"));
        }
        LibCallPlan lc;
        lc.lib = lib;
        lc.ref = add_ref(e.args[0]->grid, e.args[0]->field);
        out_.lib_calls.push_back(lc);
        const auto id =
            static_cast<std::uint32_t>(out_.lib_calls.size() - 1);
        const std::uint16_t r = alloc_reg();
        emit({POp::kCallLibGrid, 0, r, 0, 0, id});
        return r;
      }
      LibCallPlan lc;
      lc.lib = lib;
      lc.args_begin = static_cast<std::uint32_t>(out_.arg_regs.size());
      lc.argc = static_cast<std::uint32_t>(e.args.size());
      // Reserve the slots first: argument expressions may contain nested
      // lib calls that append to arg_regs themselves.
      out_.arg_regs.resize(out_.arg_regs.size() + e.args.size());
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        out_.arg_regs[lc.args_begin + i] = compile_expr(*e.args[i]);
      }
      std::uint8_t flags = 0;
      if (lib->result == LibResult::kInt ||
          (lib->result == LibResult::kSameAsArg &&
           type_of(e) == DataType::kInt)) {
        flags |= kFlagTruncResult;
        if (lib->name == "NINT") flags |= kFlagNint;
      }
      out_.lib_calls.push_back(lc);
      const auto id = static_cast<std::uint32_t>(out_.lib_calls.size() - 1);
      const std::uint16_t r = alloc_reg();
      emit({POp::kCallLib, flags, r, 0, 0, id});
      return r;
    }
    const Function* target = program_.find_function(e.callee);
    if (target == nullptr) {
      return emit_trap(cat("unknown function ", e.callee));
    }
    const std::uint32_t site = compile_call_args(*target, e.args);
    if (site == UINT32_MAX) {
      return emit_trap(cat("call to '", target->name, "': expected ",
                           target->params.size(), " arguments, got ",
                           e.args.size()));
    }
    const std::uint16_t r = alloc_reg();
    emit({POp::kCallUser, 0, r, 0, 0, site});
    return r;
  }

  /// Compile a call-site argument list; returns UINT32_MAX when a value
  /// argument has no corresponding parameter grid (arity mismatch that the
  /// callee would report anyway — we trap with the same message).
  std::uint32_t compile_call_args(const Function& target,
                                  const std::vector<ExprPtr>& args) {
    CallSitePlan site;
    site.callee = target.id;
    site.args.reserve(args.size());
    for (const ExprPtr& a : args) {
      CallSitePlan::Arg arg;
      if (a->kind == Expr::Kind::kGridRead && a->args.empty()) {
        arg.whole_grid = true;
        arg.grid = a->grid;
      } else {
        if (site.args.size() >= target.params.size()) return UINT32_MAX;
        arg.grid = target.params[site.args.size()];  // temp's grid binding
        arg.reg = compile_expr(*a);
      }
      site.args.push_back(arg);
    }
    out_.call_sites.push_back(std::move(site));
    return static_cast<std::uint32_t>(out_.call_sites.size() - 1);
  }

  // ---- statements --------------------------------------------------------

  void compile_stmt(const Stmt& stmt, const StepVerdict* verdict) {
    next_reg_ = 0;  // registers are statement-scoped
    switch (stmt.kind) {
      case Stmt::Kind::kAssign:
        compile_assign(stmt, verdict);
        return;
      case Stmt::Kind::kIf: {
        std::vector<std::uint32_t> end_jumps;
        for (const IfArm& arm : stmt.arms) {
          next_reg_ = 0;
          const std::uint16_t c = compile_expr(*arm.cond);
          const std::uint32_t jz = emit({POp::kJumpIfZero, 0, 0, c, 0, 0});
          for (const Stmt& s : arm.body) compile_stmt(s, verdict);
          end_jumps.push_back(emit({POp::kJump, 0, 0, 0, 0, 0}));
          out_.code[jz].c = static_cast<std::uint32_t>(out_.code.size());
        }
        for (const Stmt& s : stmt.else_body) compile_stmt(s, verdict);
        for (const std::uint32_t j : end_jumps) {
          out_.code[j].c = static_cast<std::uint32_t>(out_.code.size());
        }
        return;
      }
      case Stmt::Kind::kCallSub: {
        const Function* target = program_.find_function(stmt.callee);
        if (target == nullptr) {
          emit_trap(cat("unknown subroutine ", stmt.callee));
          return;
        }
        const std::uint32_t site = compile_call_args(*target, stmt.args);
        if (site == UINT32_MAX) {
          emit_trap(cat("call to '", target->name, "': expected ",
                        target->params.size(), " arguments, got ",
                        stmt.args.size()));
          return;
        }
        emit({POp::kCallSub, 0, 0, 0, 0, site});
        return;
      }
      case Stmt::Kind::kReturn: {
        if (stmt.ret) {
          const std::uint16_t r = compile_expr(*stmt.ret);
          emit({POp::kReturnValue, 0, 0, r, 0, 0});
        } else {
          emit({POp::kReturnVoid, 0, 0, 0, 0, 0});
        }
        return;
      }
    }
  }

  void compile_assign(const Stmt& stmt, const StepVerdict* verdict) {
    const Grid& g = program_.grid(stmt.lhs.grid);
    const bool trunc = g.field_type(stmt.lhs.field) == DataType::kInt;
    const bool step_atomic =
        verdict != nullptr &&
        std::find(verdict->atomic_grids.begin(), verdict->atomic_grids.end(),
                  stmt.lhs.grid) != verdict->atomic_grids.end();
    const bool machine_atomic = atomic_grids_.count(stmt.lhs.grid) != 0;
    if (!step_atomic && !machine_atomic) {
      const std::uint16_t rhs = compile_expr(*stmt.rhs);
      const std::uint32_t acc =
          compile_access(stmt.lhs.grid, stmt.lhs.field, stmt.lhs.subscripts);
      emit({POp::kStoreGrid, static_cast<std::uint8_t>(trunc ? kFlagTruncStore : 0),
            0, rhs, 0, acc});
      return;
    }
    // Dual lowering: the store site may or may not be atomic depending on
    // run-time context (step parallel-active / inside any parallel
    // region). The two sequences mirror the tree-walk's differing
    // evaluation orders: rhs-then-subscripts without truncation is the
    // atomic path; rhs-then-subscripts WITH truncation is the normal path.
    std::uint8_t jflags = 0;
    if (step_atomic) jflags |= kFlagStepAtomic;
    if (machine_atomic) jflags |= kFlagMachineAtomic;
    const std::uint32_t branch = emit({POp::kJumpIfAtomic, jflags, 0, 0, 0, 0});
    {
      const std::uint16_t rhs = compile_expr(*stmt.rhs);
      const std::uint32_t acc =
          compile_access(stmt.lhs.grid, stmt.lhs.field, stmt.lhs.subscripts);
      emit({POp::kStoreGrid, static_cast<std::uint8_t>(trunc ? kFlagTruncStore : 0),
            0, rhs, 0, acc});
    }
    const std::uint32_t skip = emit({POp::kJump, 0, 0, 0, 0, 0});
    out_.code[branch].c = static_cast<std::uint32_t>(out_.code.size());
    {
      // Atomic path: subscripts before rhs (the tree-walk re-reads the
      // target under the lock), and no INTEGER truncation.
      const std::uint32_t acc =
          compile_access(stmt.lhs.grid, stmt.lhs.field, stmt.lhs.subscripts);
      const std::uint16_t rhs = compile_expr(*stmt.rhs);
      emit({POp::kStoreAtomic, 0, 0, rhs, 0, acc});
    }
    out_.code[skip].c = static_cast<std::uint32_t>(out_.code.size());
  }

  // ---- steps -------------------------------------------------------------

  ExprProg compile_prog(const Expr& e) {
    ExprProg p;
    next_reg_ = 0;
    cur_mask_ = 0;
    cur_first_idx_ = 0;
    p.begin = static_cast<std::uint32_t>(out_.code.size());
    p.reg = compile_expr(e);
    p.end = static_cast<std::uint32_t>(out_.code.size());
    p.idx_mask = cur_mask_;
    p.first_idx = cur_first_idx_;
    if (p.end == p.begin + 1 && out_.code[p.begin].op == POp::kConst) {
      p.is_const = true;
      p.const_value = out_.consts[out_.code[p.begin].c];
    }
    return p;
  }

  void compile_step(const Step& step, const StepVerdict* verdict) {
    StepPlan sp;
    const std::size_t base = idx_names_.size();
    sp.loops.reserve(step.loops.size());
    for (std::size_t d = 0; d < step.loops.size(); ++d) {
      const LoopSpec& loop = step.loops[d];
      LoopPlan lp;
      // Bounds see the outer loops' indices only (the tree-walk evaluates
      // them before pushing this loop's binding).
      lp.begin = compile_prog(*loop.begin);
      lp.end = compile_prog(*loop.end);
      if (loop.stride) {
        lp.has_stride = true;
        lp.stride = compile_prog(*loop.stride);
      }
      lp.idx_slot = static_cast<std::uint16_t>(d);
      idx_names_.emplace_back(&loop.index_var, lp.idx_slot);
      sp.loops.push_back(std::move(lp));
    }
    if (step.loops.size() > out_.num_idx) {
      out_.num_idx = static_cast<std::uint16_t>(step.loops.size());
    }
    sp.body_begin = static_cast<std::uint32_t>(out_.code.size());
    cur_mask_ = 0;
    for (const Stmt& s : step.body) compile_stmt(s, verdict);
    sp.body_end = static_cast<std::uint32_t>(out_.code.size());
    idx_names_.resize(base);
    out_.steps.push_back(std::move(sp));
  }

  DataType type_of(const Expr& e) {
    const auto it = type_cache_.find(&e);
    if (it != type_cache_.end()) return it->second;
    const DataType t = infer_type(program_, e);
    type_cache_.emplace(&e, t);
    return t;
  }

  const Program& program_;
  const ProgramAnalysis& analysis_;
  const std::set<GridId>& atomic_grids_;

  FunctionPlan out_;
  std::map<std::uint64_t, std::uint32_t> const_pool_;
  std::map<std::pair<GridId, std::string>, std::uint32_t> ref_pool_;
  std::vector<std::pair<const std::string*, std::uint16_t>> idx_names_;
  std::uint16_t next_reg_ = 0;
  std::uint32_t cur_mask_ = 0;
  std::uint16_t cur_first_idx_ = 0;
  std::map<const Expr*, DataType> type_cache_;
};

}  // namespace

ProgramPlan compile_plans(const Program& program,
                          const ProgramAnalysis& analysis,
                          const std::set<GridId>& atomic_grids) {
  ProgramPlan plans;
  plans.functions.resize(program.functions.size());
  PlanCompiler compiler(program, analysis, atomic_grids);
  for (const Function& fn : program.functions) {
    plans.functions[fn.id] = compiler.compile(fn);
  }
  return plans;
}

}  // namespace glaf::interp
