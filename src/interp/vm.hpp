#pragma once
// The plan VM: executes FunctionPlans compiled by plan.cpp. One
// PlanExecutor runs one top-level call tree; parallel regions reuse a
// persistent per-rank worker PlanExecutor whose frames, bindings and
// private-copy instances are recycled across chunks and steps — parallel
// dispatch stops copying shared_ptr maps entirely.
//
// The VM must be observably identical to the tree-walk Executor
// (machine.cpp): same results bit for bit, same stats, same trace
// entries, same failure messages. Where it is deliberately cheaper (flat
// offset guard instead of per-dimension subscript checks), the
// GLAF_CHECKED_PLANS build option restores the full checks.

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "interp/machine.hpp"
#include "interp/plan.hpp"

namespace glaf::interp {

/// Element-offset [min, max] access bands of one plan ref for one rank
/// of a speculative execution (empty band: max < min).
struct SpecRefBands {
  std::int64_t rmin = std::numeric_limits<std::int64_t>::max();
  std::int64_t rmax = -1;
  std::int64_t wmin = std::numeric_limits<std::int64_t>::max();
  std::int64_t wmax = -1;
};

/// Per-rank access log of a speculative region (policy v4): every element
/// load/store in the step body widens the owning ref's band; the post-join
/// validator intersects bands across ranks (DESIGN.md §10).
struct SpecLog {
  std::vector<SpecRefBands> refs;

  void note(std::uint32_t ref, std::int64_t off, bool write) {
    SpecRefBands& b = refs[ref];
    if (write) {
      if (off < b.wmin) b.wmin = off;
      if (off > b.wmax) b.wmax = off;
    } else {
      if (off < b.rmin) b.rmin = off;
      if (off > b.rmax) b.rmax = off;
    }
  }
  /// Inclusive range [lo, hi] (whole-grid library reductions).
  void note_range(std::uint32_t ref, std::int64_t lo, std::int64_t hi,
                  bool write) {
    if (hi < lo) return;
    note(ref, lo, write);
    note(ref, hi, write);
  }
};

/// One grid(+field) resolved to a raw buffer for the current call.
struct BoundRef {
  double* base = nullptr;
  std::int64_t size = 0;        ///< buffer element count
  const Instance* inst = nullptr;
  std::uint8_t err = 0;         ///< 0 ok, 1 no storage, 2 missing field
};

/// One folded offset term: scale * (idx[src] or llround(regs[src])).
struct BoundTerm {
  std::int64_t scale = 0;
  std::uint16_t src = 0;
  bool dyn = false;
};

/// An access with constant parts folded and strides pre-multiplied.
struct BoundAccess {
  std::uint32_t ref = 0;
  std::int64_t folded = 0;  ///< loop-invariant part of the flat offset
  std::uint32_t terms_begin = 0;
  std::uint32_t terms_end = 0;
  bool arity_bad = false;   ///< subscript count != instance rank
};

/// Execution frame: raw slot pointers, a register file and index slots.
struct PlanFrame {
  std::vector<Instance*> slots;     ///< indexed by GridId
  std::vector<double> regs;
  std::vector<std::int64_t> idx;
  bool returned = false;
  double ret_value = 0.0;
};

/// Per-call-depth scratch, pooled and reused across calls.
struct CallScratch {
  PlanFrame frame;
  std::vector<BoundRef> refs;
  std::vector<BoundAccess> accesses;
  std::vector<BoundTerm> terms;
  /// Owners for per-call instances (locals, thread copies); the frame's
  /// raw pointers stay valid exactly as long as these do.
  std::vector<std::shared_ptr<Instance>> keepalive;
  std::vector<Instance*> call_args;
  /// Reusable scalar temporaries for by-value call arguments.
  std::vector<std::shared_ptr<Instance>> temp_pool;
  std::size_t temps_used = 0;
};

class PlanExecutor {
 public:
  explicit PlanExecutor(Machine& m);
  ~PlanExecutor();

  PlanExecutor(const PlanExecutor&) = delete;
  PlanExecutor& operator=(const PlanExecutor&) = delete;

  /// Execute one function; `args` are the bound parameter instances.
  double call_function(const FunctionPlan& plan, Instance* const* args,
                       std::size_t nargs);

  InterpStats stats;

  /// See Executor::global_overrides / in_parallel_region (machine.cpp):
  /// identical semantics, raw pointers (owned by the worker's caches).
  std::map<GridId, Instance*> global_overrides;
  bool in_parallel_region = false;

 private:
  struct Ctx {
    const FunctionPlan* plan = nullptr;
    CallScratch* cs = nullptr;
    const StepVerdict* verdict = nullptr;
    bool parallel_active = false;
    /// Observation hooks on the element-access choke points (both null on
    /// the common path): the dependence profiler (profile_deps runs) and
    /// the per-rank band logger (speculative executions).
    DepProfiler* prof = nullptr;
    SpecLog* spec = nullptr;
  };

  /// What a speculative dispatch did (policy v4).
  enum class SpecOutcome {
    kNotRun,         ///< shape not speculatable here; caller runs serial
    kCommitted,      ///< validation passed, scratch merged in rank order
    kMisspeculated,  ///< conflict: scratch discarded, step re-run serially
  };

  CallScratch& acquire_scratch();
  void release_scratch(CallScratch& cs);
  void reset_after_error();

  void bind(CallScratch& cs, const FunctionPlan& plan);
  double* elem_addr(Ctx& C, std::uint32_t access);
  [[noreturn]] void ref_fail(Ctx& C, std::uint32_t ref_idx);

  void run_range(Ctx& C, std::uint32_t begin, std::uint32_t end);
  std::int64_t eval_prog_int(Ctx& C, const ExprProg& p);
  void run_loops(Ctx& C, const StepPlan& sp, std::size_t depth);
  void run_step_parallel(CallScratch& cs, const FunctionPlan& plan,
                         const StepPlan& sp, const Step& step,
                         const StepVerdict& verdict);
  /// Speculative parallel execution with post-join band validation
  /// (policy v4; see DESIGN.md §10 for the protocol).
  SpecOutcome run_step_speculative(CallScratch& cs, const FunctionPlan& plan,
                                   const StepPlan& sp,
                                   const StepVerdict& verdict,
                                   FunctionId fn_id, std::size_t step_index);
  /// Cold observation path behind Ctx::prof / Ctx::spec.
  void note_access(Ctx& C, std::uint32_t access, const double* p, bool write);

  void run_call_site(Ctx& C, const PlanInstr& in, double* result);

  /// Cold-path recursive evaluator for local-grid extents (mirrors the
  /// tree-walk's make_instance semantics, including failure messages).
  double eval_slow(PlanFrame& f, const Expr& e);
  double eval_call_slow(PlanFrame& f, const Expr& e);
  std::shared_ptr<Instance> make_instance(const Grid& g, PlanFrame& f);
  void init_instance(Instance& inst, const Grid& g);
  /// Rebuild a recycled private-copy instance in place (extents re-derived
  /// from the enclosing frame, buffers reused when shapes match).
  void reinit_into(Instance& inst, const Grid& g, PlanFrame& f);

  /// Parallel-region copy cache (the reusable scratch of the tentpole):
  /// private/firstprivate/reduction instances recycled across chunks.
  std::shared_ptr<Instance> cached_copy(GridId id);
  PlanExecutor& worker(int rank);

  Machine& m_;
  std::vector<std::unique_ptr<CallScratch>> scratch_;
  std::size_t depth_ = 0;

  std::vector<std::unique_ptr<PlanExecutor>> workers_;
  std::map<GridId, std::shared_ptr<Instance>> copy_cache_;
  std::map<GridId, std::shared_ptr<Instance>> saved_locals_local_;

  std::unique_lock<std::mutex> atomic_lock_;
  int atomic_depth_ = 0;

  friend class ::glaf::Machine;
};

}  // namespace glaf::interp
