#pragma once
// The plan VM: executes FunctionPlans compiled by plan.cpp. One
// PlanExecutor runs one top-level call tree; parallel regions reuse a
// persistent per-rank worker PlanExecutor whose frames, bindings and
// private-copy instances are recycled across chunks and steps — parallel
// dispatch stops copying shared_ptr maps entirely.
//
// The VM must be observably identical to the tree-walk Executor
// (machine.cpp): same results bit for bit, same stats, same trace
// entries, same failure messages. Where it is deliberately cheaper (flat
// offset guard instead of per-dimension subscript checks), the
// GLAF_CHECKED_PLANS build option restores the full checks.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "interp/machine.hpp"
#include "interp/plan.hpp"

namespace glaf::interp {

/// One grid(+field) resolved to a raw buffer for the current call.
struct BoundRef {
  double* base = nullptr;
  std::int64_t size = 0;        ///< buffer element count
  const Instance* inst = nullptr;
  std::uint8_t err = 0;         ///< 0 ok, 1 no storage, 2 missing field
};

/// One folded offset term: scale * (idx[src] or llround(regs[src])).
struct BoundTerm {
  std::int64_t scale = 0;
  std::uint16_t src = 0;
  bool dyn = false;
};

/// An access with constant parts folded and strides pre-multiplied.
struct BoundAccess {
  std::uint32_t ref = 0;
  std::int64_t folded = 0;  ///< loop-invariant part of the flat offset
  std::uint32_t terms_begin = 0;
  std::uint32_t terms_end = 0;
  bool arity_bad = false;   ///< subscript count != instance rank
};

/// Execution frame: raw slot pointers, a register file and index slots.
struct PlanFrame {
  std::vector<Instance*> slots;     ///< indexed by GridId
  std::vector<double> regs;
  std::vector<std::int64_t> idx;
  bool returned = false;
  double ret_value = 0.0;
};

/// Per-call-depth scratch, pooled and reused across calls.
struct CallScratch {
  PlanFrame frame;
  std::vector<BoundRef> refs;
  std::vector<BoundAccess> accesses;
  std::vector<BoundTerm> terms;
  /// Owners for per-call instances (locals, thread copies); the frame's
  /// raw pointers stay valid exactly as long as these do.
  std::vector<std::shared_ptr<Instance>> keepalive;
  std::vector<Instance*> call_args;
  /// Reusable scalar temporaries for by-value call arguments.
  std::vector<std::shared_ptr<Instance>> temp_pool;
  std::size_t temps_used = 0;
};

class PlanExecutor {
 public:
  explicit PlanExecutor(Machine& m);
  ~PlanExecutor();

  PlanExecutor(const PlanExecutor&) = delete;
  PlanExecutor& operator=(const PlanExecutor&) = delete;

  /// Execute one function; `args` are the bound parameter instances.
  double call_function(const FunctionPlan& plan, Instance* const* args,
                       std::size_t nargs);

  InterpStats stats;

  /// See Executor::global_overrides / in_parallel_region (machine.cpp):
  /// identical semantics, raw pointers (owned by the worker's caches).
  std::map<GridId, Instance*> global_overrides;
  bool in_parallel_region = false;

 private:
  struct Ctx {
    const FunctionPlan* plan = nullptr;
    CallScratch* cs = nullptr;
    const StepVerdict* verdict = nullptr;
    bool parallel_active = false;
  };

  CallScratch& acquire_scratch();
  void release_scratch(CallScratch& cs);
  void reset_after_error();

  void bind(CallScratch& cs, const FunctionPlan& plan);
  double* elem_addr(Ctx& C, std::uint32_t access);
  [[noreturn]] void ref_fail(Ctx& C, std::uint32_t ref_idx);

  void run_range(Ctx& C, std::uint32_t begin, std::uint32_t end);
  std::int64_t eval_prog_int(Ctx& C, const ExprProg& p);
  void run_loops(Ctx& C, const StepPlan& sp, std::size_t depth);
  void run_step_parallel(CallScratch& cs, const FunctionPlan& plan,
                         const StepPlan& sp, const Step& step,
                         const StepVerdict& verdict);

  void run_call_site(Ctx& C, const PlanInstr& in, double* result);

  /// Cold-path recursive evaluator for local-grid extents (mirrors the
  /// tree-walk's make_instance semantics, including failure messages).
  double eval_slow(PlanFrame& f, const Expr& e);
  double eval_call_slow(PlanFrame& f, const Expr& e);
  std::shared_ptr<Instance> make_instance(const Grid& g, PlanFrame& f);
  void init_instance(Instance& inst, const Grid& g);
  /// Rebuild a recycled private-copy instance in place (extents re-derived
  /// from the enclosing frame, buffers reused when shapes match).
  void reinit_into(Instance& inst, const Grid& g, PlanFrame& f);

  /// Parallel-region copy cache (the reusable scratch of the tentpole):
  /// private/firstprivate/reduction instances recycled across chunks.
  std::shared_ptr<Instance> cached_copy(GridId id);
  PlanExecutor& worker(int rank);

  Machine& m_;
  std::vector<std::unique_ptr<CallScratch>> scratch_;
  std::size_t depth_ = 0;

  std::vector<std::unique_ptr<PlanExecutor>> workers_;
  std::map<GridId, std::shared_ptr<Instance>> copy_cache_;
  std::map<GridId, std::shared_ptr<Instance>> saved_locals_local_;

  std::unique_lock<std::mutex> atomic_lock_;
  int atomic_depth_ = 0;

  friend class ::glaf::Machine;
};

}  // namespace glaf::interp
