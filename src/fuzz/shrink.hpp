#pragma once
// Greedy, deterministic test-case shrinker. Given a program and a
// predicate ("still interesting" — typically "the oracle still reports a
// divergence"), it repeatedly applies the smallest-first reductions
//
//   drop whole functions -> drop steps -> drop loop levels (pinning the
//   index to the loop's begin) -> drop statements / flatten conditionals
//   -> simplify expressions (hoist a subtree or replace with a literal)
//   -> shrink size parameters (re-slicing dependent initial data)
//
// keeping a candidate only when it (1) still validates, (2) strictly
// decreases a well-founded size measure, and (3) still satisfies the
// predicate. The measure ordering guarantees termination; candidate
// enumeration order is fixed, so shrinking is reproducible.

#include <cstdint>
#include <functional>
#include <string>

#include "core/program.hpp"

namespace glaf::fuzz {

/// Returns true while the candidate remains "interesting". Called only on
/// programs that already passed validation.
using ShrinkPredicate = std::function<bool(const Program&)>;

struct ShrinkOptions {
  /// Function that must never be dropped (the oracle's entry point).
  std::string protected_function;
  /// Safety valve on predicate evaluations (each may compile and run the
  /// program, so this bounds total shrink cost).
  int max_candidates = 4000;
};

struct ShrinkStats {
  int rounds = 0;
  int candidates_tried = 0;
  int candidates_accepted = 0;
};

/// Shrink `program` as far as the predicate allows. The input program
/// itself must satisfy the predicate; the result always does.
Program shrink_program(Program program, const ShrinkPredicate& predicate,
                       const ShrinkOptions& opts = {},
                       ShrinkStats* stats = nullptr);

}  // namespace glaf::fuzz
