#include "fuzz/generator.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/builder.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace glaf::fuzz {
namespace {

// A grid visible to expression/statement generation, with folded extents
// so subscripts and loop ranges can be kept provably in bounds.
struct GridInfo {
  GridHandle handle;
  std::string name;
  DataType type = DataType::kDouble;
  std::vector<std::int64_t> extents;   // folded values; empty for scalars
  std::vector<ExprPtr> extent_exprs;   // the IR extent expressions
  bool writable = true;

  [[nodiscard]] bool is_array() const { return !extents.empty(); }
};

// Reduction accumulators get a fixed operator for their whole lifetime so
// every step updating one is a recognizable reduction on that operator.
enum class AccKind { kSum, kMin, kMax, kSumInt };

struct AccInfo {
  GridHandle handle;
  AccKind kind = AccKind::kSum;
};

struct ValueFn {
  std::string name;
  std::vector<DataType> params;
};

struct SubInfo {
  std::string name;
  int target = 0;  // index into data grids: the global bound to the array param
  bool has_scalar_param = false;
};

// Everything readable/writable at the current generation point. Temps are
// entry/subroutine locals; a temp may be read only after an unconditional
// write earlier in the same step body (otherwise the C backend could read
// an uninitialized stack slot where the interpreter reads zero).
struct Scope {
  std::vector<std::pair<std::string, std::int64_t>> indices;  // name, bound
  std::vector<const GridInfo*> scalars;  // readable scalar grids
  std::vector<const GridInfo*> arrays;   // readable/writable array grids
  std::vector<std::pair<GridHandle, bool>> temps;  // handle, written?
  bool allow_calls = true;      // value-function calls inside expressions
  bool allow_reductions = false;
};

class Generator {
 public:
  Generator(std::uint64_t seed, const GeneratorOptions& opts)
      : rng_(seed), opts_(opts), pb_("fz_mod") {}

  StatusOr<FuzzProgram> run() {
    make_size_params();
    make_data_grids();
    if (opts_.use_reductions) make_accumulators();
    if (opts_.use_calls) {
      make_value_fns();
      make_subroutines();
    }
    make_entry();
    StatusOr<Program> prog = pb_.build();
    if (!prog.is_ok()) return prog.status();
    return FuzzProgram{std::move(prog).value(), kEntryName};
  }

 private:
  // ---- randomness helpers -------------------------------------------
  int irange(int lo, int hi) {
    return lo + static_cast<int>(rng_.next_below(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  }
  bool chance(int pct) { return static_cast<int>(rng_.next_below(100)) < pct; }
  double dlit() {
    // Two-decimal literals in [-2, 2]: exact in binary-safe range for the
    // serializer round-trip and small enough to keep products tame.
    return irange(-200, 200) / 100.0;
  }

  // ---- program skeleton ---------------------------------------------
  void make_size_params() {
    for (int i = 0; i < 2; ++i) {
      GridInfo info;
      info.name = cat("fz_n", i);
      info.type = DataType::kInt;
      // Never written: array extents fold through these in every backend.
      info.writable = false;
      const std::int64_t value = irange(2, 6);
      info.handle = pb_.global(info.name, DataType::kInt, {},
                               {.init = {Value{value}}});
      size_params_.push_back(std::move(info));
      size_values_.push_back(value);
    }
  }

  // One extent for a grid dimension: a literal, or (for non-external
  // grids) a read of a never-written size parameter so constant folding
  // across globals is exercised in every backend.
  void pick_extent(bool allow_size_param, std::int64_t* value, ExprPtr* expr) {
    if (allow_size_param && chance(35)) {
      const int sp = irange(0, 1);
      *value = size_values_[static_cast<std::size_t>(sp)];
      *expr = E(size_params_[static_cast<std::size_t>(sp)].handle).node();
      return;
    }
    *value = irange(2, 6);
    *expr = liti(*value).node();
  }

  void make_data_grids() {
    const int n = irange(opts_.min_data_grids, opts_.max_data_grids);
    for (int i = 0; i < n; ++i) {
      GridInfo info;
      info.name = cat("fz_g", i);

      // Force grid 0 to be a Double array: loop steps and the Double
      // expression grammar always have material to work with.
      const int type_roll = irange(0, 99);
      info.type = (i == 0 || type_roll < 55) ? DataType::kDouble
                  : type_roll < 85           ? DataType::kInt
                                             : DataType::kLogical;
      const int rank_roll = irange(0, 99);
      const int rank = (i == 0) ? irange(1, 2)
                       : rank_roll < 25 ? 0
                       : rank_roll < 65 ? 1
                                        : 2;

      // §3 integration surface: most grids are owned by the generated
      // module, the rest live in imported modules / COMMON blocks or are
      // marked module-scope. Logical grids stay owned (the external C
      // harness feeds numeric inputs).
      enum { kOwned, kModuleScope, kImported, kCommon } kind = kOwned;
      if (opts_.use_external && info.type != DataType::kLogical) {
        const int kind_roll = irange(0, 99);
        kind = kind_roll < 60   ? kOwned
               : kind_roll < 70 ? kModuleScope
               : kind_roll < 85 ? kImported
                                : kCommon;
      } else if (chance(10)) {
        kind = kModuleScope;
      }

      std::int64_t elements = 1;
      std::vector<E> dims;
      for (int d = 0; d < rank; ++d) {
        std::int64_t value = 0;
        ExprPtr expr;
        pick_extent(/*allow_size_param=*/kind == kOwned || kind == kModuleScope,
                    &value, &expr);
        info.extents.push_back(value);
        info.extent_exprs.push_back(expr);
        dims.emplace_back(expr);
        elements *= value;
      }

      GridOpts gopts;
      switch (kind) {
        case kImported:
          gopts.from_module = "fz_extmod";
          break;
        case kCommon:
          gopts.common_block = cat("fzblk", i % 2);
          break;
        case kModuleScope:
          gopts.module_scope = true;
          [[fallthrough]];
        case kOwned:
          for (std::int64_t e = 0; e < elements; ++e) {
            switch (info.type) {
              case DataType::kDouble:
                gopts.init.push_back(Value{dlit()});
                break;
              case DataType::kInt:
                gopts.init.push_back(
                    Value{static_cast<std::int64_t>(irange(-9, 9))});
                break;
              default:
                gopts.init.push_back(Value{chance(50)});
                break;
            }
          }
          break;
      }

      info.handle = pb_.global(info.name, info.type, std::move(dims),
                               std::move(gopts));
      grids_.push_back(std::move(info));
    }
  }

  void make_accumulators() {
    const int n = irange(1, 3);
    for (int i = 0; i < n; ++i) {
      AccInfo acc;
      acc.kind = (i == 0) ? AccKind::kSum
                          : static_cast<AccKind>(irange(0, 3));
      const bool is_int = acc.kind == AccKind::kSumInt;
      acc.handle = pb_.global(
          cat("fz_acc", i), is_int ? DataType::kInt : DataType::kDouble, {},
          {.init = {is_int ? Value{std::int64_t{0}} : Value{0.0}}});
      accs_.push_back(acc);
    }
  }

  // ---- expression grammar -------------------------------------------
  // Clamp a Double expression into [-3, 3]. With the aligned MIN/MAX
  // semantics (a<b?a:b in every backend) this also maps NaN to a finite
  // value identically everywhere, so reduction inputs are always finite.
  static E clamp3(E x) {
    return call("MIN", {call("MAX", {std::move(x), lit(-3.0)}), lit(3.0)});
  }

  // Bound an Int expression into (-997, 997) before it is stored.
  static E bound_int(E x) { return call("MOD", {std::move(x), liti(997)}); }

  std::vector<const GridInfo*> typed_scalars(const Scope& sc, DataType t) {
    std::vector<const GridInfo*> out;
    for (const GridInfo* g : sc.scalars) {
      if (g->type == t) out.push_back(g);
    }
    return out;
  }
  std::vector<const GridInfo*> typed_arrays(const Scope& sc, DataType t) {
    std::vector<const GridInfo*> out;
    for (const GridInfo* g : sc.arrays) {
      if (g->type == t) out.push_back(g);
    }
    return out;
  }
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[rng_.next_below(v.size())];
  }

  // Subscripts guaranteed in bounds using only loop variables (when their
  // range fits the dimension) and literals. Used inside expression leaves
  // where recursing into the full Int grammar would not terminate.
  std::vector<E> simple_subscripts(const GridInfo& g, const Scope& sc) {
    std::vector<E> subs;
    for (std::size_t d = 0; d < g.extents.size(); ++d) {
      const std::int64_t ext = g.extents[d];
      std::vector<std::string> fitting;
      for (const auto& [name, bound] : sc.indices) {
        if (bound <= ext) fitting.push_back(name);
      }
      if (!fitting.empty() && chance(75)) {
        subs.push_back(idx(pick(fitting)));
      } else {
        subs.push_back(liti(irange(0, static_cast<int>(ext) - 1)));
      }
    }
    return subs;
  }

  // Full subscript generator: loop variables, MOD(ABS(e), extent) hashes
  // of arbitrary Int expressions, or literals — always in [0, extent).
  std::vector<E> gen_subscripts(const GridInfo& g, Scope& sc) {
    std::vector<E> subs;
    for (std::size_t d = 0; d < g.extents.size(); ++d) {
      const std::int64_t ext = g.extents[d];
      std::vector<std::string> fitting;
      for (const auto& [name, bound] : sc.indices) {
        if (bound <= ext) fitting.push_back(name);
      }
      const int roll = irange(0, 99);
      if (!fitting.empty() && roll < 60) {
        subs.push_back(idx(pick(fitting)));
      } else if (roll < 80) {
        subs.push_back(
            call("MOD", {call("ABS", {gen_int(1, sc)}), liti(ext)}));
      } else {
        subs.push_back(liti(irange(0, static_cast<int>(ext) - 1)));
      }
    }
    return subs;
  }

  E int_leaf(Scope& sc) {
    const auto scalars = typed_scalars(sc, DataType::kInt);
    const auto arrays = typed_arrays(sc, DataType::kInt);
    for (int attempt = 0; attempt < 3; ++attempt) {
      switch (irange(0, 3)) {
        case 0:
          return liti(irange(-9, 9));
        case 1:
          if (!sc.indices.empty()) return idx(pick(sc.indices).first);
          break;
        case 2:
          if (!scalars.empty()) return E(pick(scalars)->handle);
          break;
        default:
          if (!arrays.empty()) {
            const GridInfo& g = *pick(arrays);
            return Access(g.handle.id(), {}, to_nodes(simple_subscripts(g, sc)));
          }
          break;
      }
    }
    return liti(irange(-9, 9));
  }

  // Int values are bounded by construction: leaves are at most 996 in
  // magnitude (stores are MOD-997-wrapped), products only combine leaves,
  // and division is guarded — the tree never approaches 2^53, so the
  // interpreter's double arithmetic is exact.
  E gen_int(int depth, Scope& sc) {
    if (depth <= 0 || chance(30)) return int_leaf(sc);
    switch (irange(0, 6)) {
      case 0:
        return gen_int(depth - 1, sc) + gen_int(depth - 1, sc);
      case 1:
        return gen_int(depth - 1, sc) - gen_int(depth - 1, sc);
      case 2:
        return int_leaf(sc) * int_leaf(sc);
      case 3:
        return call("MOD", {gen_int(depth - 1, sc), liti(irange(2, 9))});
      case 4:
        return call("ABS", {gen_int(depth - 1, sc)});
      case 5:
        return call(chance(50) ? "MIN" : "MAX",
                    {gen_int(depth - 1, sc), gen_int(depth - 1, sc)});
      default:
        return gen_int(depth - 1, sc) /
               (call("ABS", {int_leaf(sc)}) + liti(1));
    }
  }

  E dbl_leaf(Scope& sc) {
    const auto scalars = typed_scalars(sc, DataType::kDouble);
    const auto arrays = typed_arrays(sc, DataType::kDouble);
    std::vector<std::size_t> written_temps;
    for (std::size_t i = 0; i < sc.temps.size(); ++i) {
      if (sc.temps[i].second) written_temps.push_back(i);
    }
    for (int attempt = 0; attempt < 3; ++attempt) {
      switch (irange(0, 3)) {
        case 0:
          return lit(dlit());
        case 1:
          if (!scalars.empty()) return E(pick(scalars)->handle);
          break;
        case 2:
          if (!arrays.empty()) {
            const GridInfo& g = *pick(arrays);
            return Access(g.handle.id(), {}, to_nodes(simple_subscripts(g, sc)));
          }
          break;
        default:
          if (!written_temps.empty()) {
            return E(sc.temps[pick(written_temps)].first);
          }
          break;
      }
    }
    return lit(dlit());
  }

  E gen_dbl(int depth, Scope& sc) {
    if (depth <= 0 || chance(25)) return dbl_leaf(sc);
    switch (irange(0, 9)) {
      case 0:
        return gen_dbl(depth - 1, sc) + gen_dbl(depth - 1, sc);
      case 1:
        return gen_dbl(depth - 1, sc) - gen_dbl(depth - 1, sc);
      case 2:
        return gen_dbl(depth - 1, sc) * gen_dbl(depth - 1, sc);
      case 3:
        return gen_dbl(depth - 1, sc) /
               (call("ABS", {dbl_leaf(sc)}) + lit(1.0));
      case 4:
        return call("ABS", {gen_dbl(depth - 1, sc)});
      case 5:
        return call(chance(50) ? "MIN" : "MAX",
                    {gen_dbl(depth - 1, sc), gen_dbl(depth - 1, sc)});
      case 6:
        return call(chance(50) ? "SIN" : "COS", {gen_dbl(depth - 1, sc)});
      case 7:
        return call("SQRT", {call("ABS", {gen_dbl(depth - 1, sc)}) + lit(0.5)});
      case 8:
        return call("TANH", {gen_dbl(depth - 1, sc)});
      default:
        if (sc.allow_calls && !value_fns_.empty()) {
          const ValueFn& fn = pick(value_fns_);
          std::vector<E> args;
          for (const DataType t : fn.params) {
            args.push_back(t == DataType::kInt ? int_leaf(sc) : dbl_leaf(sc));
          }
          return call(fn.name, std::move(args));
        }
        return gen_dbl(depth - 1, sc) * dbl_leaf(sc);
    }
  }

  E gen_log(int depth, Scope& sc) {
    const auto log_scalars = typed_scalars(sc, DataType::kLogical);
    const auto log_arrays = typed_arrays(sc, DataType::kLogical);
    switch (irange(0, 5)) {
      case 0: {
        const E a = gen_dbl(1, sc);
        const E b = gen_dbl(1, sc);
        switch (irange(0, 3)) {
          case 0: return a < b;
          case 1: return a <= b;
          case 2: return a > b;
          default: return a >= b;
        }
      }
      case 1: {
        const E a = gen_int(1, sc);
        const E b = gen_int(1, sc);
        switch (irange(0, 2)) {
          case 0: return a == b;
          case 1: return a != b;
          default: return a < b;
        }
      }
      case 2:
        if (!log_scalars.empty()) return E(pick(log_scalars)->handle);
        if (!log_arrays.empty()) {
          const GridInfo& g = *pick(log_arrays);
          return Access(g.handle.id(), {}, to_nodes(simple_subscripts(g, sc)));
        }
        return gen_dbl(1, sc) < gen_dbl(1, sc);
      case 3:
        if (depth > 0) {
          const E a = gen_log(depth - 1, sc);
          const E b = gen_log(depth - 1, sc);
          return chance(50) ? (a && b) : (a || b);
        }
        return gen_int(1, sc) != gen_int(1, sc);
      default:
        if (depth > 0) return lnot(gen_log(depth - 1, sc));
        return gen_dbl(1, sc) > gen_dbl(1, sc);
    }
  }

  E gen_typed(DataType t, int depth, Scope& sc) {
    switch (t) {
      case DataType::kInt:
        return bound_int(gen_int(depth, sc));
      case DataType::kLogical:
        return gen_log(2, sc);
      default:
        return gen_dbl(depth, sc);
    }
  }

  static std::vector<ExprPtr> to_nodes(std::vector<E> es) {
    std::vector<ExprPtr> nodes;
    nodes.reserve(es.size());
    for (E& e : es) nodes.push_back(e.node());
    return nodes;
  }

  // ---- statements ----------------------------------------------------
  void gen_stmt(BodyBuilder& body, Scope& sc, int if_budget) {
    const int roll = irange(0, 99);
    if (roll < 30) {  // array element store
      if (!sc.arrays.empty()) {
        const GridInfo& g = *pick(sc.arrays);
        Access lhs(g.handle.id(), {}, to_nodes(gen_subscripts(g, sc)));
        if (g.type != DataType::kLogical && chance(30)) {
          // Self-update a[s] = a[s] op e with identical subscripts: feeds
          // the dependence analysis recognizable update patterns.
          Access same = lhs;
          E update = g.type == DataType::kInt
                         ? bound_int(E(same) + gen_int(1, sc))
                         : E(same) + call("TANH", {gen_dbl(1, sc)});
          body.assign(lhs, std::move(update));
        } else {
          body.assign(lhs, gen_typed(g.type, opts_.max_expr_depth, sc));
        }
        return;
      }
    } else if (roll < 42) {  // temp definition (always unconditional write)
      if (!sc.temps.empty()) {
        auto& [handle, written] = sc.temps[rng_.next_below(sc.temps.size())];
        body.assign(handle, gen_dbl(opts_.max_expr_depth, sc));
        written = true;
        return;
      }
    } else if (roll < 55) {  // reduction update
      if (sc.allow_reductions && !accs_.empty()) {
        const AccInfo& acc = pick(accs_);
        switch (acc.kind) {
          case AccKind::kSum:
            body.assign(acc.handle, E(acc.handle) + clamp3(gen_dbl(2, sc)));
            break;
          case AccKind::kMin:
            body.assign(acc.handle,
                        call("MIN", {E(acc.handle), clamp3(gen_dbl(2, sc))}));
            break;
          case AccKind::kMax:
            body.assign(acc.handle,
                        call("MAX", {E(acc.handle), clamp3(gen_dbl(2, sc))}));
            break;
          case AccKind::kSumInt:
            body.assign(acc.handle,
                        E(acc.handle) + call("MOD", {gen_int(2, sc), liti(97)}));
            break;
        }
        return;
      }
    } else if (roll < 70) {  // conditional
      if (if_budget > 0) {
        const E cond = gen_log(2, sc);
        const int then_count = irange(1, 2);
        const bool with_else = chance(40);
        // Writes inside an arm are conditional: they must not unlock temp
        // reads for later statements, so probe-write eligibility is saved
        // and restored around the arms.
        std::vector<std::pair<GridHandle, bool>> saved = sc.temps;
        body.if_(
            cond,
            [&](BodyBuilder& then_body) {
              for (int i = 0; i < then_count; ++i) {
                gen_stmt(then_body, sc, if_budget - 1);
              }
            },
            with_else ? std::function<void(BodyBuilder&)>(
                            [&](BodyBuilder& else_body) {
                              gen_stmt(else_body, sc, if_budget - 1);
                            })
                      : std::function<void(BodyBuilder&)>{});
        sc.temps = std::move(saved);
        return;
      }
    } else if (roll < 80) {  // whole-grid reduction into a Double scalar
      std::vector<const GridInfo*> targets;
      for (const GridInfo* g : sc.scalars) {
        if (g->type == DataType::kDouble && g->writable) targets.push_back(g);
      }
      std::vector<const GridInfo*> sources;
      for (const GridInfo* g : sc.arrays) {
        if (g->type != DataType::kLogical) sources.push_back(g);
      }
      if (!targets.empty() && !sources.empty()) {
        static constexpr const char* kWhole[] = {"SUM", "MINVAL", "MAXVAL"};
        body.assign(pick(targets)->handle,
                    call(kWhole[irange(0, 2)], {E(pick(sources)->handle)}));
        return;
      }
    }
    // Fallback: scalar store (always possible when any writable scalar
    // exists; otherwise an array store; otherwise a temp write).
    std::vector<const GridInfo*> writable;
    for (const GridInfo* g : sc.scalars) {
      if (g->writable) writable.push_back(g);
    }
    if (!writable.empty()) {
      const GridInfo& g = *pick(writable);
      body.assign(g.handle, gen_typed(g.type, opts_.max_expr_depth, sc));
    } else if (!sc.arrays.empty()) {
      const GridInfo& g = *pick(sc.arrays);
      body.assign(Access(g.handle.id(), {}, to_nodes(gen_subscripts(g, sc))),
                  gen_typed(g.type, opts_.max_expr_depth, sc));
    } else if (!sc.temps.empty()) {
      auto& [handle, written] = sc.temps[rng_.next_below(sc.temps.size())];
      body.assign(handle, gen_dbl(2, sc));
      written = true;
    }
  }

  // ---- functions -----------------------------------------------------
  void make_value_fns() {
    const int n = irange(0, opts_.max_aux_functions);
    for (int i = 0; i < n; ++i) {
      ValueFn fn;
      fn.name = cat("fz_fun", i);
      const int nparams = irange(1, 2);
      FunctionBuilder fb = pb_.function(fn.name, DataType::kDouble);
      std::vector<GridInfo> param_infos;
      for (int p = 0; p < nparams; ++p) {
        GridInfo info;
        info.type = chance(70) ? DataType::kDouble : DataType::kInt;
        info.name = cat("fz_a", p);
        info.handle = fb.param(info.name, info.type);
        fn.params.push_back(info.type);
        param_infos.push_back(std::move(info));
      }
      Scope sc;
      for (const GridInfo& p : param_infos) sc.scalars.push_back(&p);
      sc.allow_calls = false;  // keeps the call graph acyclic trivially
      StepBuilder st = fb.step("body");
      if (chance(50)) {
        const E cond = gen_log(1, sc);
        E early = gen_dbl(2, sc);
        st.if_(cond, [&](BodyBuilder& b) { b.ret(early); });
      }
      st.ret(gen_dbl(2, sc));
      value_fns_.push_back(std::move(fn));
    }
  }

  void make_subroutines() {
    std::vector<int> targets;
    for (std::size_t i = 0; i < grids_.size(); ++i) {
      if (grids_[i].is_array() && grids_[i].type != DataType::kLogical) {
        targets.push_back(static_cast<int>(i));
      }
    }
    if (targets.empty()) return;
    const int n = irange(0, opts_.max_aux_functions);
    for (int i = 0; i < n; ++i) {
      SubInfo sub;
      sub.name = cat("fz_sub", i);
      sub.target = pick(targets);
      sub.has_scalar_param = chance(50);
      const GridInfo& target = grids_[static_cast<std::size_t>(sub.target)];

      FunctionBuilder fb = pb_.function(sub.name);
      // The array parameter mirrors its bound global exactly (type and
      // literal extents) so flat addressing matches in the C backend.
      GridInfo param;
      param.name = "fz_p0";
      param.type = target.type;
      param.extents = target.extents;
      std::vector<E> dims;
      for (const std::int64_t ext : target.extents) {
        dims.push_back(liti(ext));
        param.extent_exprs.push_back(liti(ext).node());
      }
      param.handle = fb.param(param.name, param.type, std::move(dims));

      GridInfo scalar_param;
      if (sub.has_scalar_param) {
        scalar_param.name = "fz_s0";
        scalar_param.type = DataType::kDouble;
        scalar_param.writable = false;  // C passes scalars by value
        scalar_param.handle = fb.param(scalar_param.name, scalar_param.type);
      }
      GridHandle temp = fb.local("fz_t0", DataType::kDouble);

      const int nsteps = irange(1, 2);
      for (int s = 0; s < nsteps; ++s) {
        StepBuilder st = fb.step(cat("s", s));
        Scope sc;
        // No direct access to the bound global inside the subroutine: the
        // parameter aliases it, and mixed access would make the program's
        // meaning depend on the backend's argument-passing strategy.
        sc.arrays.push_back(&param);
        for (const GridInfo& g : grids_) {
          if (!g.is_array()) sc.scalars.push_back(&g);
        }
        for (const GridInfo& sp : size_params_) sc.scalars.push_back(&sp);
        if (sub.has_scalar_param) sc.scalars.push_back(&scalar_param);
        sc.temps.emplace_back(temp, false);
        sc.allow_calls = !value_fns_.empty();

        const int depth =
            std::min<int>(static_cast<int>(param.extents.size()), 2);
        for (int d = 0; d < depth; ++d) {
          const std::string var = cat("i", d);
          st.foreach_(var, liti(0), liti(param.extents[static_cast<std::size_t>(d)] - 1));
          sc.indices.emplace_back(var, param.extents[static_cast<std::size_t>(d)]);
        }
        const int nstmts = irange(1, 3);
        for (int k = 0; k < nstmts; ++k) gen_stmt(st, sc, 1);
      }
      subs_.push_back(std::move(sub));
    }
  }

  void make_entry() {
    FunctionBuilder fb = pb_.function(kEntryName);
    std::vector<GridHandle> temps;
    const int ntemps = irange(1, 2);
    for (int t = 0; t < ntemps; ++t) {
      temps.push_back(fb.local(cat("fz_t", t), DataType::kDouble));
    }

    const int nsteps = irange(1, opts_.max_steps);
    for (int s = 0; s < nsteps; ++s) {
      Scope sc;
      for (const GridInfo& g : grids_) {
        (g.is_array() ? sc.arrays : sc.scalars).push_back(&g);
      }
      for (const GridInfo& sp : size_params_) sc.scalars.push_back(&sp);
      for (const GridHandle& t : temps) sc.temps.emplace_back(t, false);
      sc.allow_calls = !value_fns_.empty();

      if (!subs_.empty() && chance(30)) {
        make_call_step(fb, s, sc);
      } else if (chance(15)) {
        make_straightline_step(fb, s, sc);
      } else {
        make_loop_step(fb, s, sc);
      }
    }
  }

  void make_call_step(FunctionBuilder& fb, int index, Scope& sc) {
    StepBuilder st = fb.step(cat("call", index));
    const SubInfo& sub = pick(subs_);
    std::vector<E> args;
    args.push_back(E(grids_[static_cast<std::size_t>(sub.target)].handle));
    if (sub.has_scalar_param) args.push_back(lit(dlit()));
    st.call_sub(sub.name, std::move(args));
    if (chance(50)) gen_stmt(st, sc, 0);
  }

  void make_straightline_step(FunctionBuilder& fb, int index, Scope& sc) {
    StepBuilder st = fb.step(cat("seq", index));
    // Occasional guarded early return: later steps are skipped under the
    // same condition in every backend.
    if (chance(25)) {
      const E cond = gen_log(1, sc);
      st.if_(cond, [](BodyBuilder& b) { b.ret(); });
    }
    const int nstmts = irange(1, 3);
    for (int k = 0; k < nstmts; ++k) gen_stmt(st, sc, 1);
  }

  void make_loop_step(FunctionBuilder& fb, int index, Scope& sc) {
    StepBuilder st = fb.step(cat("loop", index));
    const int depth = irange(1, opts_.max_loop_depth);
    for (int d = 0; d < depth; ++d) {
      std::int64_t bound = 0;
      ExprPtr extent;
      // Loop ranges usually follow a grid dimension (the common GLAF
      // idiom); sometimes an independent literal range.
      if (!sc.arrays.empty() && chance(70)) {
        const GridInfo& g = *pick(sc.arrays);
        const std::size_t dim = rng_.next_below(g.extents.size());
        bound = g.extents[dim];
        extent = g.extent_exprs[dim];
      } else {
        bound = irange(2, 6);
        extent = liti(bound).node();
      }
      const std::string var = cat("i", d);
      if (depth == 1 && chance(10)) {
        st.foreach_(var, liti(0), E(extent) - liti(1), liti(2));
      } else {
        st.foreach_(var, liti(0), E(extent) - liti(1));
      }
      sc.indices.emplace_back(var, bound);
    }
    sc.allow_reductions = opts_.use_reductions;
    const int nstmts = irange(1, opts_.max_stmts_per_step);
    for (int k = 0; k < nstmts; ++k) gen_stmt(st, sc, 1);
  }

  SplitMix64 rng_;
  GeneratorOptions opts_;
  ProgramBuilder pb_;
  std::vector<GridInfo> grids_;
  std::vector<GridInfo> size_params_;
  std::vector<std::int64_t> size_values_;
  std::vector<AccInfo> accs_;
  std::vector<ValueFn> value_fns_;
  std::vector<SubInfo> subs_;
};

}  // namespace

StatusOr<FuzzProgram> generate_program(std::uint64_t seed,
                                       const GeneratorOptions& opts) {
  Generator gen(seed, opts);
  return gen.run();
}

}  // namespace glaf::fuzz
