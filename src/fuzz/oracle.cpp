#include "fuzz/oracle.hpp"

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <map>
#include <optional>

#include "analysis/parallelize.hpp"
#include "analysis/speculate.hpp"
#include "codegen/c.hpp"
#include "fuzz/generator.hpp"
#include "interp/machine.hpp"
#include "support/fault.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/subprocess.hpp"
#include "support/ulp.hpp"

namespace glaf::fuzz {
namespace {

constexpr int kMaxDivergencesPerBackend = 16;

std::string fmt17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// One comparable global: its grid and folded element count.
struct GlobalSpec {
  const Grid* grid = nullptr;
  std::int64_t elements = 1;
};

StatusOr<std::vector<GlobalSpec>> global_specs(const Program& p) {
  std::vector<GlobalSpec> specs;
  for (const GridId id : p.global_grids) {
    const Grid& g = p.grid(id);
    if (g.is_struct()) {
      return unimplemented(
          cat("oracle: struct grid '", g.name, "' is not supported"));
    }
    GlobalSpec spec;
    spec.grid = &g;
    for (const Dim& d : g.dims) {
      const auto v = fold_with_globals(p, *d.extent);
      if (!v) {
        return unimplemented(
            cat("oracle: grid '", g.name, "' has a non-constant extent"));
      }
      spec.elements *= static_cast<std::int64_t>(value_as_double(*v));
    }
    specs.push_back(spec);
  }
  return specs;
}

/// Deterministic inputs for external grids, derived from the grid *name*
/// so corpus replays are reproducible without knowing the original seed.
std::vector<double> external_inputs(const Grid& g, std::int64_t elements) {
  SplitMix64 rng(fnv1a64(g.name));
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(elements));
  for (std::int64_t i = 0; i < elements; ++i) {
    switch (g.elem_type) {
      case DataType::kInt:
        values.push_back(
            static_cast<double>(static_cast<std::int64_t>(rng.next_below(19)) - 9));
        break;
      case DataType::kLogical:
        values.push_back(static_cast<double>(rng.next_below(2)));
        break;
      default:
        values.push_back(rng.next_double() * 4.0 - 2.0);
        break;
    }
  }
  return values;
}

/// Final values of every global, in global_grids order.
using Snapshot = std::vector<std::vector<double>>;

StatusOr<Snapshot> run_interpreter(const Program& program,
                                   const std::string& entry,
                                   const std::vector<GlobalSpec>& specs,
                                   const InterpOptions& options,
                                   DepProfile* profile_out = nullptr) {
  try {
    Machine m(program, options);
    for (const GlobalSpec& spec : specs) {
      if (spec.grid->external == ExternalKind::kNone) continue;
      const std::vector<double> inputs =
          external_inputs(*spec.grid, spec.elements);
      Status s = spec.grid->dims.empty()
                     ? m.set_scalar(spec.grid->name, inputs[0])
                     : m.set_array(spec.grid->name, inputs);
      if (!s.is_ok()) return s;
    }
    const StatusOr<double> result = m.call(entry);
    if (!result.is_ok()) return result.status();
    if (profile_out != nullptr) *profile_out = m.dep_profile();
    Snapshot snap;
    for (const GlobalSpec& spec : specs) {
      if (spec.grid->dims.empty()) {
        const StatusOr<double> v = m.scalar(spec.grid->name);
        if (!v.is_ok()) return v.status();
        snap.push_back({v.value()});
      } else {
        StatusOr<std::vector<double>> v = m.array(spec.grid->name);
        if (!v.is_ok()) return v.status();
        snap.push_back(std::move(v).value());
      }
    }
    return snap;
  } catch (const std::exception& e) {
    return internal_error(cat("interpreter exception: ", e.what()));
  }
}

std::string c_elem_type(DataType t) {
  switch (t) {
    case DataType::kInt: return "long";
    case DataType::kReal: return "float";
    case DataType::kLogical: return "int";
    default: return "double";
  }
}

std::string c_base_name(const Grid& g) {
  if (g.external == ExternalKind::kCommon) {
    return cat(g.common_block, "_.", g.name);
  }
  return g.name;
}

/// The appended driver: defines storage for external grids (the role the
/// legacy FORTRAN objects play in the paper), feeds the deterministic
/// inputs, calls the entry point and prints every global element-wise.
std::string harness_text(const std::string& entry,
                         const std::vector<GlobalSpec>& specs) {
  std::vector<std::string> out;
  out.push_back("");
  out.push_back("/* ---- differential-oracle harness ---- */");
  out.push_back("#include <stdio.h>");
  // Storage definitions for imported-module variables and COMMON blocks.
  std::map<std::string, bool> common_defined;
  for (const GlobalSpec& spec : specs) {
    const Grid& g = *spec.grid;
    if (g.external == ExternalKind::kModule) {
      const std::string suffix =
          g.dims.empty() ? "" : cat("[", spec.elements, "]");
      out.push_back(cat(c_elem_type(g.elem_type), " ", g.name, suffix, ";"));
    } else if (g.external == ExternalKind::kCommon &&
               !common_defined[g.common_block]) {
      common_defined[g.common_block] = true;
      out.push_back(cat("struct ", g.common_block, "_common ",
                        g.common_block, "_;"));
    }
  }
  out.push_back("int main(void) {");
  for (const GlobalSpec& spec : specs) {
    const Grid& g = *spec.grid;
    if (g.external == ExternalKind::kNone) continue;
    const std::vector<double> inputs = external_inputs(g, spec.elements);
    for (std::int64_t i = 0; i < spec.elements; ++i) {
      const std::string lhs =
          g.dims.empty() ? c_base_name(g) : cat(c_base_name(g), "[", i, "]");
      out.push_back(cat("  ", lhs, " = (", c_elem_type(g.elem_type), ")",
                        fmt17(inputs[static_cast<std::size_t>(i)]), ";"));
    }
  }
  out.push_back(cat("  ", entry, "();"));
  for (const GlobalSpec& spec : specs) {
    const Grid& g = *spec.grid;
    if (g.dims.empty()) {
      out.push_back(cat("  printf(\"%.17g\\n\", (double)", c_base_name(g),
                        ");"));
    } else {
      out.push_back(cat("  { long i; for (i = 0; i < ", spec.elements,
                        "; ++i) printf(\"%.17g\\n\", (double)", c_base_name(g),
                        "[i]); }"));
    }
  }
  out.push_back("  return 0;");
  out.push_back("}");
  return join(out, "\n");
}

StatusOr<Snapshot> run_compiled_c(const Program& program,
                                  const std::string& entry,
                                  const std::vector<GlobalSpec>& specs,
                                  const OracleOptions& opts) {
  const ProgramAnalysis analysis = analyze_program(program);
  CodegenOptions copts;
  copts.language = Language::kC;
  copts.enable_openmp = false;  // the serial C build of §4.1.1
  copts.emit_comments = false;
  std::string source = generate_c(program, analysis, copts).source;
  if (opts.c_source_transform) source = opts.c_source_transform(source);
  source += harness_text(entry, specs);

  static std::atomic<int> counter{0};
  const std::string stem = cat(opts.work_dir, "/glaf_fuzz_", getpid(), "_",
                               counter.fetch_add(1));
  const std::string src_path = cat(stem, ".c");
  const std::string bin_path = cat(stem, ".bin");
  {
    std::ofstream out(src_path);
    if (!out) return internal_error(cat("cannot write ", src_path));
    out << source;
  }
  // -ffp-contract=off: FMA contraction would produce differently-rounded
  // results than the interpreter's plain double arithmetic.
  const RunResult compile = run_command(cat(
      opts.cc, " -O1 -ffp-contract=off -o ", bin_path, " ", src_path, " -lm"));
  if (!compile.ok()) {
    std::remove(src_path.c_str());
    if (!compile.started) {
      return internal_error("C compilation failed: compiler did not start");
    }
    return internal_error(
        cat("C compilation failed: ", compile.output.substr(0, 2000)));
  }
  const RunResult run = run_command(bin_path);
  std::remove(src_path.c_str());
  std::remove(bin_path.c_str());
  if (!run.ok()) {
    if (!run.started) {
      return internal_error("compiled program did not start");
    }
    return internal_error(cat("compiled program exited with status ",
                                run.exit_code));
  }

  std::vector<double> values;
  const char* cursor = run.output.c_str();
  char* end = nullptr;
  for (double v = std::strtod(cursor, &end); end != cursor;
       v = std::strtod(cursor, &end)) {
    values.push_back(v);
    cursor = end;
  }
  std::int64_t expected = 0;
  for (const GlobalSpec& spec : specs) expected += spec.elements;
  if (static_cast<std::int64_t>(values.size()) != expected) {
    return internal_error(cat("compiled program printed ", values.size(),
                                " values, expected ", expected));
  }
  Snapshot snap;
  std::size_t at = 0;
  for (const GlobalSpec& spec : specs) {
    snap.emplace_back(values.begin() + static_cast<std::ptrdiff_t>(at),
                      values.begin() +
                          static_cast<std::ptrdiff_t>(at + spec.elements));
    at += static_cast<std::size_t>(spec.elements);
  }
  return snap;
}

/// The in-process native leg: the program is JIT-compiled to a shared
/// object (src/jit) and the entry call runs inside this process. Any
/// fallback is an oracle error — for programs that pass global_specs the
/// kernel must compile, load and dispatch, or the engine has a bug.
/// `parallel` runs the host-driven parallel kernel under `policy`; its
/// results must still be bit-identical to the serial reference.
StatusOr<Snapshot> run_native(const Program& program, const std::string& entry,
                              const std::vector<GlobalSpec>& specs,
                              const OracleOptions& opts, bool parallel,
                              DirectivePolicy policy, bool fuse = false,
                              NumericModel model = NumericModel::kInterp) {
  try {
    InterpOptions nopts;
    nopts.engine = ExecEngine::kNative;
    nopts.parallel = parallel;
    nopts.num_threads = opts.num_threads;
    nopts.policy = policy;
    nopts.deterministic_parallel = parallel;
    nopts.fuse_regions = fuse;
    nopts.native_model = model;
    // The oracle exists to exercise the dispatch paths, so the profit
    // gate must not divert regions to serial (on a small host the
    // calibrated gate would serialize every fuzz-sized kernel).
    nopts.gate_min_units = 0;
    nopts.native_cc = opts.cc;
    nopts.native_cache_dir = opts.native_cache_dir.empty()
                                 ? cat(opts.work_dir, "/glaf-fuzz-kernels")
                                 : opts.native_cache_dir;
    Machine m(program, nopts);
    if (!m.native_report().available) {
      return internal_error(
          cat("kernel unavailable: ", m.native_report().fallback_reason));
    }
    for (const GlobalSpec& spec : specs) {
      if (spec.grid->external == ExternalKind::kNone) continue;
      const std::vector<double> inputs =
          external_inputs(*spec.grid, spec.elements);
      Status s = spec.grid->dims.empty()
                     ? m.set_scalar(spec.grid->name, inputs[0])
                     : m.set_array(spec.grid->name, inputs);
      if (!s.is_ok()) return s;
    }
    const StatusOr<double> result = m.call(entry);
    if (!result.is_ok()) return result.status();
    if (m.native_report().native_calls == 0) {
      return internal_error("entry call fell back to the plan engine");
    }
    Snapshot snap;
    for (const GlobalSpec& spec : specs) {
      if (spec.grid->dims.empty()) {
        const StatusOr<double> v = m.scalar(spec.grid->name);
        if (!v.is_ok()) return v.status();
        snap.push_back({v.value()});
      } else {
        StatusOr<std::vector<double>> v = m.array(spec.grid->name);
        if (!v.is_ok()) return v.status();
        snap.push_back(std::move(v).value());
      }
    }
    return snap;
  } catch (const std::exception& e) {
    return internal_error(cat("native engine exception: ", e.what()));
  }
}

/// How a backend's snapshot is held to the reference. The bitwise and
/// tolerance modes are rtol/atol with NaN==NaN (rtol=atol=0 for exact
/// backends); the opt tier instead forks to the ulp comparator, whose
/// budget is the numeric contract that emission tier advertises.
struct Comparator {
  double rtol = 0.0;
  double atol = 0.0;
  bool use_ulp = false;
  std::uint64_t max_ulp = 0;
};

bool values_close(double a, double b, const Comparator& cmp) {
  if (cmp.use_ulp) return ulp_close(a, b, cmp.max_ulp, cmp.rtol, cmp.atol);
  if (std::isnan(a) && std::isnan(b)) return true;
  if (a == b) return true;  // covers equal infinities
  return std::fabs(a - b) <=
         cmp.atol + cmp.rtol * std::max(std::fabs(a), std::fabs(b));
}

void compare_snapshots(const std::string& backend, const Snapshot& reference,
                       const Snapshot& actual,
                       const std::vector<GlobalSpec>& specs,
                       const Comparator& cmp, OracleReport* report) {
  ++report->backends_compared;
  int reported = 0;
  for (std::size_t g = 0; g < specs.size(); ++g) {
    for (std::size_t i = 0; i < reference[g].size(); ++i) {
      if (values_close(reference[g][i], actual[g][i], cmp)) continue;
      if (reported++ >= kMaxDivergencesPerBackend) return;
      report->divergences.push_back(Divergence{
          backend, specs[g].grid->name, static_cast<std::int64_t>(i),
          reference[g][i], actual[g][i]});
    }
  }
}

}  // namespace

StatusOr<std::string> find_entry(const Program& program) {
  for (const Function& fn : program.functions) {
    if (fn.name == kEntryName) return std::string(fn.name);
  }
  for (const Function& fn : program.functions) {
    if (fn.return_type == DataType::kVoid && fn.params.empty()) {
      return std::string(fn.name);
    }
  }
  return not_found("no zero-parameter subroutine to use as entry");
}

OracleReport run_oracle(const Program& program, const std::string& entry,
                        const OracleOptions& opts) {
  OracleReport report;
  StatusOr<std::vector<GlobalSpec>> specs = global_specs(program);
  if (!specs.is_ok()) {
    report.errors.push_back(std::string(specs.status().message()));
    return report;
  }

  // Interpreter-family and subprocess-C legs merge parallel reductions
  // within the configured tolerance; exact backends are bitwise.
  const Comparator tol{opts.rtol, opts.atol, false, 0};

  // The reference is always the serial tree-walk: it is the semantic
  // definition both the plan engine and the generated code must match.
  InterpOptions serial;
  serial.engine = ExecEngine::kTreeWalk;
  serial.parallel = false;
  const StatusOr<Snapshot> reference =
      run_interpreter(program, entry, specs.value(), serial);
  if (!reference.is_ok()) {
    report.errors.push_back(
        cat("serial interpreter: ", reference.status().message()));
    return report;
  }

  if (opts.run_plan) {
    InterpOptions plan_serial;
    plan_serial.engine = ExecEngine::kPlan;
    plan_serial.parallel = false;
    const StatusOr<Snapshot> snap =
        run_interpreter(program, entry, specs.value(), plan_serial);
    if (!snap.is_ok()) {
      report.errors.push_back(cat("plan: ", snap.status().message()));
    } else {
      compare_snapshots("plan", reference.value(), snap.value(),
                        specs.value(), tol, &report);
    }
  }

  if (opts.run_parallel) {
    for (const DirectivePolicy policy : opts.policies) {
      struct EngineLeg {
        ExecEngine engine;
        const char* suffix;
        bool enabled;
      };
      const EngineLeg legs[] = {
          {ExecEngine::kTreeWalk, "", opts.run_treewalk_parallel},
          {ExecEngine::kPlan, "-plan", opts.run_plan},
      };
      for (const EngineLeg& leg : legs) {
        if (!leg.enabled) continue;
        InterpOptions popts;
        popts.engine = leg.engine;
        popts.parallel = true;
        popts.num_threads = opts.num_threads;
        popts.policy = policy;
        const StatusOr<Snapshot> snap =
            run_interpreter(program, entry, specs.value(), popts);
        const std::string backend =
            cat("parallel-", to_string(policy), leg.suffix);
        if (!snap.is_ok()) {
          report.errors.push_back(cat(backend, ": ", snap.status().message()));
          continue;
        }
        compare_snapshots(backend, reference.value(), snap.value(),
                          specs.value(), tol, &report);
      }
    }
  }

  // interp_math emission promises bit-identical arithmetic, so the
  // native legs — serial and parallel alike — are held to exact
  // equality (NaN==NaN), not the reassociation tolerance above.
  const Comparator exact{};

  if (opts.run_speculative) {
    // Policy-v4 legs. First a serial profiling run: the observation
    // hooks must be transparent, so it is held bitwise. Its recorded
    // profile then feeds the speculative parallel plan leg — and the
    // same leg with the validation fault site armed, which forces
    // misspeculation, demotion and serial re-runs. Speculation commits
    // disjoint write bands in rank order, so all three legs are exact.
    InterpOptions prof_opts;
    prof_opts.engine = ExecEngine::kPlan;
    prof_opts.parallel = false;
    prof_opts.profile_deps = true;
    DepProfile recorded;
    const StatusOr<Snapshot> prof_snap =
        run_interpreter(program, entry, specs.value(), prof_opts, &recorded);
    if (!prof_snap.is_ok()) {
      report.errors.push_back(
          cat("profile-serial: ", prof_snap.status().message()));
    } else {
      compare_snapshots("profile-serial", reference.value(),
                        prof_snap.value(), specs.value(), exact, &report);
      const auto profile = std::make_shared<DepProfile>(std::move(recorded));
      InterpOptions sopts;
      sopts.engine = ExecEngine::kPlan;
      sopts.parallel = true;
      sopts.num_threads = opts.num_threads;
      sopts.policy = DirectivePolicy::kV4;
      sopts.deterministic_parallel = true;
      sopts.dep_profile = profile;
      const StatusOr<Snapshot> spec_snap =
          run_interpreter(program, entry, specs.value(), sopts);
      if (!spec_snap.is_ok()) {
        report.errors.push_back(
            cat("parallel-v4-spec: ", spec_snap.status().message()));
      } else {
        compare_snapshots("parallel-v4-spec", reference.value(),
                          spec_snap.value(), specs.value(), exact, &report);
      }
      const Status armed = fault::configure("interp.spec.validate:0.5",
                                            opts.spec_fault_seed);
      if (!armed.is_ok()) {
        report.errors.push_back(
            cat("parallel-v4-spec-fault: ", armed.message()));
      } else {
        const StatusOr<Snapshot> fault_snap =
            run_interpreter(program, entry, specs.value(), sopts);
        fault::clear();
        if (!fault_snap.is_ok()) {
          report.errors.push_back(
              cat("parallel-v4-spec-fault: ", fault_snap.status().message()));
        } else {
          compare_snapshots("parallel-v4-spec-fault", reference.value(),
                            fault_snap.value(), specs.value(), exact,
                            &report);
        }
      }
    }
  }

  if (opts.run_native && cc_available(opts.cc)) {
    const StatusOr<Snapshot> snap = run_native(
        program, entry, specs.value(), opts, false, DirectivePolicy::kV0);
    if (!snap.is_ok()) {
      report.errors.push_back(cat("native: ", snap.status().message()));
    } else {
      report.native_backend_ran = true;
      compare_snapshots("native", reference.value(), snap.value(),
                        specs.value(), exact, &report);
    }
  }

  if (opts.run_native_parallel && cc_available(opts.cc)) {
    for (const DirectivePolicy policy : opts.policies) {
      // The parallel kernel: threaded range functions for bit-exact
      // steps, serial execution for everything else — bitwise equal to
      // the serial reference by construction.
      const std::string backend =
          cat("parallel-", to_string(policy), "-native");
      const StatusOr<Snapshot> snap =
          run_native(program, entry, specs.value(), opts, true, policy);
      if (!snap.is_ok()) {
        report.errors.push_back(cat(backend, ": ", snap.status().message()));
      } else {
        report.native_backend_ran = true;
        compare_snapshots(backend, reference.value(), snap.value(),
                          specs.value(), exact, &report);
      }
      // The plan engine under the same deterministic contract closes
      // the triangle: parallel-native == reference == parallel-plan-det.
      InterpOptions dopts;
      dopts.engine = ExecEngine::kPlan;
      dopts.parallel = true;
      dopts.num_threads = opts.num_threads;
      dopts.policy = policy;
      dopts.deterministic_parallel = true;
      const std::string det_backend =
          cat("parallel-", to_string(policy), "-plan-det");
      const StatusOr<Snapshot> det_snap =
          run_interpreter(program, entry, specs.value(), dopts);
      if (!det_snap.is_ok()) {
        report.errors.push_back(
            cat(det_backend, ": ", det_snap.status().message()));
      } else {
        compare_snapshots(det_backend, reference.value(), det_snap.value(),
                          specs.value(), exact, &report);
      }
    }
  }

  if (opts.run_native_fused && cc_available(opts.cc)) {
    for (const DirectivePolicy policy : opts.policies) {
      // The same parallel kernel with adjacent fusable steps merged
      // into single range entry points (ABI v3): fusion only changes
      // how many fork/joins the dispatch costs, so the leg is held to
      // the same bitwise contract as the unfused one.
      const std::string backend =
          cat("parallel-", to_string(policy), "-fused-native");
      const StatusOr<Snapshot> snap = run_native(
          program, entry, specs.value(), opts, true, policy, true);
      if (!snap.is_ok()) {
        report.errors.push_back(cat(backend, ": ", snap.status().message()));
      } else {
        report.native_backend_ran = true;
        compare_snapshots(backend, reference.value(), snap.value(),
                          specs.value(), exact, &report);
      }
    }
  }

  if (opts.run_native_opt && cc_available(opts.cc)) {
    // The opt tier rounds differently by design (-O3, contraction on,
    // typed storage), so this is the one native leg the comparator
    // forks away from bitwise: each element must land within the ulp
    // budget (plus any configured rtol/atol band) of the reference.
    const Comparator ulp{opts.opt_rtol, opts.opt_atol, true,
                         opts.opt_max_ulp};
    const StatusOr<Snapshot> snap =
        run_native(program, entry, specs.value(), opts, false,
                   DirectivePolicy::kV0, false, NumericModel::kOpt);
    if (!snap.is_ok()) {
      report.errors.push_back(cat("native-opt: ", snap.status().message()));
    } else {
      report.opt_backend_ran = true;
      compare_snapshots("native-opt", reference.value(), snap.value(),
                        specs.value(), ulp, &report);
    }
  }

  if (opts.run_compiled_c && cc_available(opts.cc)) {
    const StatusOr<Snapshot> snap =
        run_compiled_c(program, entry, specs.value(), opts);
    if (!snap.is_ok()) {
      report.errors.push_back(cat("c: ", snap.status().message()));
    } else {
      report.c_backend_ran = true;
      compare_snapshots("c", reference.value(), snap.value(), specs.value(), tol, &report);
    }
  }
  return report;
}

}  // namespace glaf::fuzz
