#include "fuzz/repro.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/serialize.hpp"
#include "core/validate.hpp"

namespace glaf::fuzz {

Status write_repro(const std::string& path, const Program& program,
                   const ReproInfo& info) {
  std::ofstream out(path);
  if (!out) return internal_error("cannot open " + path + " for writing");
  out << "; glaf-fuzz repro\n";
  out << "; seed: " << info.seed << "\n";
  if (!info.note.empty()) out << "; note: " << info.note << "\n";
  out << serialize_program(program);
  out.close();
  if (!out) return internal_error("write to " + path + " failed");
  return Status();
}

StatusOr<Program> load_repro(const std::string& path) {
  std::ifstream in(path);
  if (!in) return not_found("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  auto parsed = parse_program(text.str());
  if (!parsed.is_ok()) return parsed;
  Program program = std::move(parsed).value();
  const auto diags = validate(program);
  if (!is_valid(diags)) {
    return invalid_argument(path + ": " + render_diagnostics(diags));
  }
  return program;
}

std::vector<std::string> list_corpus(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".glaf") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace glaf::fuzz
