#pragma once
// Multi-backend differential oracle — the paper's §4.1.1 validation
// methodology ("a code-wide side-by-side comparison of the results")
// mechanized: one program is executed by
//
//   1. the serial tree-walk interpreter (the reference),
//   2. the serial plan engine (compiled flat plans on the VM),
//   3. the parallel interpreter under each directive policy v0..v3,
//      on both execution engines,
//   4. the native JIT engine (src/jit) running the kernel in-process —
//      compared *bitwise* against the reference, since interp_math
//      emission promises bit-identical arithmetic,
//   5. (opt-in) the *parallel* native kernel under each policy, plus the
//      plan engine in deterministic-parallel mode — also compared
//      bitwise: threaded bit-exact steps must not change a single bit,
//   6. the generated C translation unit compiled with the system
//      compiler and run in a subprocess,
//   7. (opt-in) the opt-tier native kernel — typed storage, restrict,
//      -O3 with contraction — compared under a per-element ulp budget
//      instead of bitwise, the numeric contract that tier advertises,
//
// and every Global Scope grid is compared element-wise afterwards.
// Agreement is |a-b| <= atol + rtol*max(|a|,|b|), with NaN==NaN; exact
// backends match bitwise, while parallel reduction merges may
// reassociate within the tolerance.
//
// External (imported-module / COMMON) grids receive deterministic
// pseudo-random inputs derived from the *grid name*, so a corpus replay
// feeds identical inputs regardless of which seed produced the program.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "codegen/options.hpp"
#include "core/program.hpp"
#include "support/status.hpp"
#include "support/subprocess.hpp"  // cc_available, for backend gating

namespace glaf::fuzz {

struct OracleOptions {
  double rtol = 1e-9;
  double atol = 1e-9;
  int num_threads = 4;
  bool run_parallel = true;   ///< parallel interpreter backends
  bool run_compiled_c = true; ///< compile-and-execute C backend
  /// In-process native JIT leg (gated on cc availability, like the C
  /// backend, but with no subprocess round-trip). Compared bitwise.
  bool run_native = true;
  /// Parallel native legs ("parallel-vK-native"), one per policy, plus
  /// deterministic parallel plan legs ("parallel-vK-plan-det") — every
  /// one held to bitwise equality against the serial reference (and so,
  /// transitively, against the serial native kernel and each other).
  /// Off by default: each policy costs an extra kernel compile.
  /// These legs run with region fusion *off* — per-step dispatch, the
  /// historical ABI-v2 shape.
  bool run_native_parallel = false;
  /// Fused-region parallel native legs ("parallel-vK-fused-native"):
  /// the same kernels with adjacent fusable steps merged into single
  /// range entry points (ABI v3), also compared bitwise. Together with
  /// run_native_parallel this differentially pins fusion as a pure
  /// dispatch-cost optimization. Off by default (extra compiles).
  bool run_native_fused = false;
  /// Opt-tier native leg ("native-opt"): the same program JIT-compiled
  /// under NumericModel::kOpt — typed storage, restrict pointers,
  /// -O3 -ffp-contract=fast -march=native. Unlike every other native
  /// leg this one is *not* bitwise: contraction and vectorization round
  /// differently, so the comparator forks to a per-element ulp budget
  /// (ulp_close with opt_max_ulp, plus an optional rtol/atol band).
  /// Off by default: an extra kernel compile per program.
  bool run_native_opt = false;
  std::uint64_t opt_max_ulp = 64;  ///< per-element budget for the opt leg
  double opt_rtol = 0.0;           ///< optional relative band on top
  double opt_atol = 0.0;           ///< optional absolute band on top
  /// Speculative legs (policy v4): a serial dependence-profiling run
  /// ("profile-serial", held bitwise — observation must be transparent),
  /// then the plan engine speculating on the recorded profile
  /// ("parallel-v4-spec") and the same run with the validation fault
  /// site armed at probability 0.5 ("parallel-v4-spec-fault") so regions
  /// misspeculate, demote and re-run serially. All three are exact:
  /// speculation commits disjoint write bands in rank order, so a single
  /// changed bit is a bug. Off by default (three extra runs).
  bool run_speculative = false;
  std::uint64_t spec_fault_seed = 1;  ///< seed for the fault-armed leg
  /// Plan-engine legs: serial "plan" plus "parallel-vK-plan" per policy.
  bool run_plan = true;
  /// Tree-walk parallel legs ("parallel-vK"). Off + run_plan = plan-only
  /// parallel testing (the glaf-fuzz --engine=plan mode).
  bool run_treewalk_parallel = true;
  std::vector<DirectivePolicy> policies = {
      DirectivePolicy::kV0, DirectivePolicy::kV1, DirectivePolicy::kV2,
      DirectivePolicy::kV3};
  std::string cc = "cc";        ///< system compiler command
  std::string work_dir = "/tmp";
  /// Kernel-cache directory for the native leg. Empty = a fuzz-private
  /// directory under work_dir, so one-off fuzz kernels never pollute the
  /// user's ~/.cache/glaf/kernels.
  std::string native_cache_dir;
  /// Test hook: rewrite the generated C source before compiling (used to
  /// inject semantic bugs and prove the oracle catches them).
  std::function<std::string(const std::string&)> c_source_transform;
};

/// One element-level disagreement against the serial reference.
struct Divergence {
  std::string backend;  ///< "plan", "parallel-v2", ..., "native", "c"
  std::string grid;
  std::int64_t index = 0;  ///< flat element index
  double expected = 0.0;   ///< serial reference value
  double actual = 0.0;
};

struct OracleReport {
  std::vector<Divergence> divergences;  ///< capped per backend
  std::vector<std::string> errors;      ///< infrastructure failures
  bool c_backend_ran = false;
  bool native_backend_ran = false;
  bool opt_backend_ran = false;
  int backends_compared = 0;

  /// All executed backends matched the reference and nothing failed.
  [[nodiscard]] bool agreed() const {
    return divergences.empty() && errors.empty();
  }
};

/// Run every enabled backend and compare against the serial interpreter.
OracleReport run_oracle(const Program& program, const std::string& entry,
                        const OracleOptions& opts = {});

/// The entry point for a program: `fz_main` when present, otherwise the
/// first zero-parameter SUBROUTINE.
StatusOr<std::string> find_entry(const Program& program);

}  // namespace glaf::fuzz
