#include "fuzz/shrink.hpp"

#include <array>
#include <utility>
#include <vector>

#include "core/rewrite.hpp"
#include "core/typecheck.hpp"
#include "core/validate.hpp"

namespace glaf::fuzz {
namespace {

// ---- size measure --------------------------------------------------------
// Lexicographic tuple; every accepted reduction strictly decreases it, so
// shrinking terminates. Components, most significant first:
//   statements, steps, loop levels, functions,
//   weighted expression nodes (non-literals count double, so replacing a
//   grid read by a literal is a decrease even at equal node count),
//   sum of scalar-Int initial values (size parameters).
using Measure = std::array<long long, 6>;

Measure measure_of(const Program& p) {
  Measure m{};
  m[0] = count_statements(p);
  for (const Function& fn : p.functions) {
    m[1] += static_cast<long long>(fn.steps.size());
    for (const Step& step : fn.steps) {
      m[2] += static_cast<long long>(step.loops.size());
    }
  }
  m[3] = static_cast<long long>(p.functions.size());
  long long weighted = 0;
  Program copy = p;  // rewrite_* wants mutable access; nodes are shared
  rewrite_program_exprs(copy, [&weighted](const ExprPtr& e) -> ExprPtr {
    weighted += e->kind == Expr::Kind::kLiteral ? 1 : 2;
    return nullptr;
  });
  m[4] = weighted;
  for (const GridId id : p.global_grids) {
    const Grid& g = p.grid(id);
    if (g.is_scalar() && g.elem_type == DataType::kInt && !g.init_data.empty()) {
      m[5] += static_cast<long long>(value_as_double(g.init_data[0]));
    }
  }
  return m;
}

// ---- statement coordinates ----------------------------------------------
// A path from a step body to one statement: (index, descend) pairs where
// descend -1 means "this is the target", a >= 0 descends into if-arm a,
// and -2 descends into the else body.
struct StmtCoord {
  int fn = 0;
  int step = 0;
  std::vector<std::pair<int, int>> path;
};

enum class StmtAction { kDrop, kFlattenThen, kFlattenElse };

void enumerate_stmts(const std::vector<Stmt>& body,
                     const StmtCoord& prefix,
                     std::vector<std::pair<StmtCoord, StmtAction>>* out) {
  for (int i = 0; i < static_cast<int>(body.size()); ++i) {
    StmtCoord here = prefix;
    here.path.emplace_back(i, -1);
    out->emplace_back(here, StmtAction::kDrop);
    const Stmt& s = body[static_cast<std::size_t>(i)];
    if (s.kind != Stmt::Kind::kIf) continue;
    out->emplace_back(here, StmtAction::kFlattenThen);
    if (!s.else_body.empty()) out->emplace_back(here, StmtAction::kFlattenElse);
    for (int a = 0; a < static_cast<int>(s.arms.size()); ++a) {
      StmtCoord down = prefix;
      down.path.emplace_back(i, a);
      enumerate_stmts(s.arms[static_cast<std::size_t>(a)].body, down, out);
    }
    if (!s.else_body.empty()) {
      StmtCoord down = prefix;
      down.path.emplace_back(i, -2);
      enumerate_stmts(s.else_body, down, out);
    }
  }
}

/// The body containing the coordinate's target statement (nullptr if the
/// coordinate no longer resolves).
std::vector<Stmt>* resolve_body(Program* p, const StmtCoord& c) {
  if (c.fn >= static_cast<int>(p->functions.size())) return nullptr;
  Function& fn = p->functions[static_cast<std::size_t>(c.fn)];
  if (c.step >= static_cast<int>(fn.steps.size())) return nullptr;
  std::vector<Stmt>* body = &fn.steps[static_cast<std::size_t>(c.step)].body;
  for (std::size_t d = 0; d + 1 < c.path.size(); ++d) {
    const auto [index, descend] = c.path[d];
    if (index >= static_cast<int>(body->size())) return nullptr;
    Stmt& s = (*body)[static_cast<std::size_t>(index)];
    if (s.kind != Stmt::Kind::kIf) return nullptr;
    if (descend == -2) {
      body = &s.else_body;
    } else if (descend >= 0 && descend < static_cast<int>(s.arms.size())) {
      body = &s.arms[static_cast<std::size_t>(descend)].body;
    } else {
      return nullptr;
    }
  }
  return body;
}

bool apply_stmt_action(Program* p, const StmtCoord& c, StmtAction action) {
  std::vector<Stmt>* body = resolve_body(p, c);
  if (body == nullptr || c.path.empty()) return false;
  const int index = c.path.back().first;
  if (index >= static_cast<int>(body->size())) return false;
  const auto it = body->begin() + index;
  if (action == StmtAction::kDrop) {
    body->erase(it);
    return true;
  }
  if (it->kind != Stmt::Kind::kIf) return false;
  std::vector<Stmt> replacement;
  if (action == StmtAction::kFlattenThen) {
    if (it->arms.empty()) return false;
    replacement = it->arms[0].body;
  } else {
    replacement = it->else_body;
  }
  const auto at = body->erase(it);
  body->insert(at, replacement.begin(), replacement.end());
  return true;
}

// ---- expression simplification -------------------------------------------
// Expression slots are addressed as (statement coordinate, slot index);
// nodes within a slot by preorder position.
std::vector<ExprPtr*> stmt_slots(Stmt* s) {
  std::vector<ExprPtr*> slots;
  switch (s->kind) {
    case Stmt::Kind::kAssign:
      for (ExprPtr& sub : s->lhs.subscripts) slots.push_back(&sub);
      slots.push_back(&s->rhs);
      break;
    case Stmt::Kind::kIf:
      for (IfArm& arm : s->arms) slots.push_back(&arm.cond);
      break;
    case Stmt::Kind::kCallSub:
      for (ExprPtr& a : s->args) slots.push_back(&a);
      break;
    case Stmt::Kind::kReturn:
      if (s->ret) slots.push_back(&s->ret);
      break;
  }
  return slots;
}

const ExprPtr* find_preorder(const ExprPtr& root, int target, int* counter) {
  if (!root) return nullptr;
  if ((*counter)++ == target) return &root;
  for (const ExprPtr& a : root->args) {
    if (const ExprPtr* hit = find_preorder(a, target, counter)) return hit;
  }
  return nullptr;
}

ExprPtr replace_preorder(const ExprPtr& root, int target, int* counter,
                         const ExprPtr& replacement) {
  if (!root) return root;
  if ((*counter)++ == target) return replacement;
  auto copy = std::make_shared<Expr>(*root);
  for (ExprPtr& a : copy->args) a = replace_preorder(a, target, counter, replacement);
  return copy;
}

/// Candidate replacements for one node: each argument of matching type
/// (hoisting), then the simplest literal of the node's type.
std::vector<ExprPtr> replacements_for(const Program& p, const ExprPtr& node) {
  std::vector<ExprPtr> out;
  const DataType t = infer_type(p, *node);
  for (const ExprPtr& a : node->args) {
    if (a && infer_type(p, *a) == t) out.push_back(a);
  }
  if (node->kind != Expr::Kind::kLiteral) {
    switch (t) {
      case DataType::kInt:
        out.push_back(make_int(1));
        break;
      case DataType::kLogical:
        out.push_back(make_bool(false));
        out.push_back(make_bool(true));
        break;
      case DataType::kVoid:
        break;
      default:
        out.push_back(make_real(1.0));
        break;
    }
  }
  return out;
}

// ---- size-parameter shrinking --------------------------------------------

std::optional<std::vector<std::int64_t>> folded_extents(const Program& p,
                                                        const Grid& g) {
  std::vector<std::int64_t> exts;
  for (const Dim& d : g.dims) {
    const auto v = fold_with_globals(p, *d.extent);
    if (!v) return std::nullopt;
    exts.push_back(static_cast<std::int64_t>(value_as_double(*v)));
  }
  return exts;
}

/// After a size parameter changed, cut every dependent grid's initial data
/// down to the sub-box that survives (row-major re-slice).
bool reslice_init_data(Program* candidate,
                       const std::vector<std::vector<std::int64_t>>& before) {
  for (std::size_t i = 0; i < candidate->grids.size(); ++i) {
    Grid& g = candidate->grids[i];
    if (g.dims.empty() || g.init_data.empty()) continue;
    const auto after = folded_extents(*candidate, g);
    if (!after) return false;
    if (*after == before[i]) continue;
    const std::vector<std::int64_t>& old_ext = before[i];
    if (after->size() != old_ext.size()) return false;
    std::int64_t new_total = 1;
    for (std::size_t d = 0; d < after->size(); ++d) {
      if ((*after)[d] > old_ext[d]) return false;
      new_total *= (*after)[d];
    }
    std::vector<Value> sliced;
    sliced.reserve(static_cast<std::size_t>(new_total));
    std::vector<std::int64_t> index(after->size(), 0);
    for (std::int64_t n = 0; n < new_total; ++n) {
      std::int64_t flat = 0;
      for (std::size_t d = 0; d < old_ext.size(); ++d) {
        flat = flat * old_ext[d] + index[d];
      }
      sliced.push_back(g.init_data[static_cast<std::size_t>(flat)]);
      for (std::size_t d = after->size(); d-- > 0;) {
        if (++index[d] < (*after)[d]) break;
        index[d] = 0;
      }
    }
    g.init_data = std::move(sliced);
  }
  return true;
}

// ---- the shrink driver ----------------------------------------------------

class Shrinker {
 public:
  Shrinker(Program program, const ShrinkPredicate& predicate,
           const ShrinkOptions& opts, ShrinkStats* stats)
      : current_(std::move(program)),
        predicate_(predicate),
        opts_(opts),
        stats_(stats) {}

  Program run() {
    measure_ = measure_of(current_);
    bool changed = true;
    while (changed && budget_left()) {
      if (stats_ != nullptr) ++stats_->rounds;
      changed = false;
      changed = pass_drop_functions() || changed;
      changed = pass_drop_steps() || changed;
      changed = pass_drop_loops() || changed;
      changed = pass_stmt_actions() || changed;
      changed = pass_simplify_exprs() || changed;
      changed = pass_shrink_sizes() || changed;
    }
    return std::move(current_);
  }

 private:
  [[nodiscard]] bool budget_left() const {
    return stats_ == nullptr || stats_->candidates_tried < opts_.max_candidates;
  }

  /// Gate a candidate: valid, strictly smaller, still interesting.
  bool accept(Program candidate) {
    if (stats_ != nullptr) {
      if (!budget_left()) return false;
      ++stats_->candidates_tried;
    }
    const Measure m = measure_of(candidate);
    if (!(m < measure_)) return false;
    if (!is_valid(validate(candidate))) return false;
    if (!predicate_(candidate)) return false;
    current_ = std::move(candidate);
    measure_ = m;
    if (stats_ != nullptr) ++stats_->candidates_accepted;
    return true;
  }

  bool pass_drop_functions() {
    bool any = false;
    bool applied = true;
    while (applied && budget_left()) {
      applied = false;
      for (std::size_t i = 0; i < current_.functions.size(); ++i) {
        if (current_.functions[i].name == opts_.protected_function) continue;
        Program candidate = current_;
        candidate.functions.erase(candidate.functions.begin() +
                                  static_cast<std::ptrdiff_t>(i));
        // FunctionId is the vector index: renumber so function(id) stays
        // coherent (nothing else stores FunctionIds).
        for (std::size_t j = 0; j < candidate.functions.size(); ++j) {
          candidate.functions[j].id = static_cast<FunctionId>(j);
        }
        if (accept(std::move(candidate))) {
          any = applied = true;
          break;
        }
      }
    }
    return any;
  }

  bool pass_drop_steps() {
    bool any = false;
    bool applied = true;
    while (applied && budget_left()) {
      applied = false;
      for (std::size_t f = 0; f < current_.functions.size() && !applied; ++f) {
        const std::size_t nsteps = current_.functions[f].steps.size();
        for (std::size_t s = 0; s < nsteps; ++s) {
          Program candidate = current_;
          auto& steps = candidate.functions[f].steps;
          steps.erase(steps.begin() + static_cast<std::ptrdiff_t>(s));
          if (accept(std::move(candidate))) {
            any = applied = true;
            break;
          }
        }
      }
    }
    return any;
  }

  bool pass_drop_loops() {
    bool any = false;
    bool applied = true;
    while (applied && budget_left()) {
      applied = false;
      for (std::size_t f = 0; f < current_.functions.size() && !applied; ++f) {
        for (std::size_t s = 0; s < current_.functions[f].steps.size() && !applied;
             ++s) {
          const std::size_t nloops =
              current_.functions[f].steps[s].loops.size();
          for (std::size_t l = 0; l < nloops; ++l) {
            Program candidate = current_;
            Step& step = candidate.functions[f].steps[s];
            const LoopSpec dropped = step.loops[l];
            step.loops.erase(step.loops.begin() +
                             static_cast<std::ptrdiff_t>(l));
            // Pin the index to the loop's begin everywhere it was visible:
            // later loop bounds and the whole body.
            for (std::size_t j = l; j < step.loops.size(); ++j) {
              LoopSpec& inner = step.loops[j];
              inner.begin =
                  substitute_index(inner.begin, dropped.index_var, dropped.begin);
              inner.end =
                  substitute_index(inner.end, dropped.index_var, dropped.begin);
              inner.stride = substitute_index(inner.stride, dropped.index_var,
                                              dropped.begin);
            }
            rewrite_body_exprs(step.body, [&](const ExprPtr& e) -> ExprPtr {
              if (e->kind == Expr::Kind::kIndex &&
                  e->index_name == dropped.index_var) {
                return dropped.begin;
              }
              return nullptr;
            });
            if (accept(std::move(candidate))) {
              any = applied = true;
              break;
            }
          }
        }
      }
    }
    return any;
  }

  bool pass_stmt_actions() {
    bool any = false;
    bool applied = true;
    while (applied && budget_left()) {
      applied = false;
      std::vector<std::pair<StmtCoord, StmtAction>> actions;
      for (int f = 0; f < static_cast<int>(current_.functions.size()); ++f) {
        const Function& fn = current_.functions[static_cast<std::size_t>(f)];
        for (int s = 0; s < static_cast<int>(fn.steps.size()); ++s) {
          StmtCoord prefix;
          prefix.fn = f;
          prefix.step = s;
          enumerate_stmts(fn.steps[static_cast<std::size_t>(s)].body, prefix,
                          &actions);
        }
      }
      for (const auto& [coord, action] : actions) {
        Program candidate = current_;
        if (!apply_stmt_action(&candidate, coord, action)) continue;
        if (accept(std::move(candidate))) {
          any = applied = true;
          break;
        }
      }
    }
    return any;
  }

  bool pass_simplify_exprs() {
    bool any = false;
    bool applied = true;
    while (applied && budget_left()) {
      applied = false;
      std::vector<StmtCoord> coords;
      {
        std::vector<std::pair<StmtCoord, StmtAction>> actions;
        for (int f = 0; f < static_cast<int>(current_.functions.size()); ++f) {
          const Function& fn = current_.functions[static_cast<std::size_t>(f)];
          for (int s = 0; s < static_cast<int>(fn.steps.size()); ++s) {
            StmtCoord prefix;
            prefix.fn = f;
            prefix.step = s;
            enumerate_stmts(fn.steps[static_cast<std::size_t>(s)].body, prefix,
                            &actions);
          }
        }
        for (const auto& [coord, action] : actions) {
          if (action == StmtAction::kDrop) coords.push_back(coord);
        }
      }
      for (const StmtCoord& coord : coords) {
        if (try_simplify_stmt(coord)) {
          any = applied = true;
          break;
        }
      }
    }
    return any;
  }

  bool try_simplify_stmt(const StmtCoord& coord) {
    std::vector<Stmt>* body = resolve_body(&current_, coord);
    if (body == nullptr || coord.path.empty()) return false;
    const int index = coord.path.back().first;
    if (index >= static_cast<int>(body->size())) return false;
    Stmt probe = (*body)[static_cast<std::size_t>(index)];
    const std::vector<ExprPtr*> slots = stmt_slots(&probe);
    for (std::size_t slot = 0; slot < slots.size(); ++slot) {
      const ExprPtr root = *slots[slot];
      const int nodes = count_expr_nodes(root);
      for (int n = 0; n < nodes; ++n) {
        int counter = 0;
        const ExprPtr* node = find_preorder(root, n, &counter);
        if (node == nullptr) continue;
        for (const ExprPtr& replacement : replacements_for(current_, *node)) {
          if (!budget_left()) return false;
          int rebuild_counter = 0;
          const ExprPtr rebuilt =
              replace_preorder(root, n, &rebuild_counter, replacement);
          Program candidate = current_;
          std::vector<Stmt>* cbody = resolve_body(&candidate, coord);
          if (cbody == nullptr) return false;
          Stmt& target = (*cbody)[static_cast<std::size_t>(index)];
          *stmt_slots(&target)[slot] = rebuilt;
          if (accept(std::move(candidate))) return true;
        }
      }
    }
    return false;
  }

  bool pass_shrink_sizes() {
    bool any = false;
    bool applied = true;
    while (applied && budget_left()) {
      applied = false;
      for (const GridId id : current_.global_grids) {
        const Grid& g = current_.grid(id);
        if (!g.is_scalar() || g.elem_type != DataType::kInt ||
            g.init_data.empty()) {
          continue;
        }
        const auto value =
            static_cast<std::int64_t>(value_as_double(g.init_data[0]));
        if (value <= 2) continue;
        for (const std::int64_t target : {std::int64_t{2}, value - 1}) {
          if (target >= value) continue;
          std::vector<std::vector<std::int64_t>> before;
          bool foldable = true;
          for (const Grid& grid : current_.grids) {
            const auto exts = folded_extents(current_, grid);
            if (!exts) {
              foldable = false;
              break;
            }
            before.push_back(*exts);
          }
          if (!foldable) break;
          Program candidate = current_;
          candidate.grids[id].init_data[0] = Value{target};
          if (!reslice_init_data(&candidate, before)) continue;
          if (accept(std::move(candidate))) {
            any = applied = true;
            break;
          }
        }
        if (applied) break;
      }
    }
    return any;
  }

  Program current_;
  const ShrinkPredicate& predicate_;
  ShrinkOptions opts_;
  ShrinkStats* stats_;
  Measure measure_{};
};

}  // namespace

Program shrink_program(Program program, const ShrinkPredicate& predicate,
                       const ShrinkOptions& opts, ShrinkStats* stats) {
  ShrinkStats local;
  Shrinker shrinker(std::move(program), predicate, opts,
                    stats != nullptr ? stats : &local);
  return shrinker.run();
}

}  // namespace glaf::fuzz
