#pragma once
// Whole-program fuzzing generator: emits random but *valid* GLAF programs
// for differential testing of the execution pipeline (IR -> dependence
// analysis -> auto-parallelization -> codegen / interpretation).
//
// The generated programs exercise the paper's feature surface:
//   - multi-dimensional grids (Int / Double / Logical) with manual
//     initial data, driven by scalar size parameters;
//   - the §3 integration attributes: module-scope variables, variables
//     from imported FORTRAN modules, and COMMON-block variables;
//   - loop nests (with occasional non-unit strides), conditionals,
//     reduction statements (sum / min / max), early returns;
//   - SUBROUTINE definitions with array parameters plus CALL sites
//     (§3.4) and value-returning functions used inside expressions;
//   - library functions (ABS, MIN/MAX, SIN, SQRT, EXP, TANH, MOD and
//     the whole-grid reductions SUM / MINVAL / MAXVAL, §3.6).
//
// Programs are numerically tame by construction so that all backends
// must agree within a small tolerance: integer stores are wrapped in
// MOD(.., 997), divisions are guarded, transcendental inputs bounded,
// and reduction contributions clamped — the only values that may differ
// between serial and parallel execution are reduction accumulators,
// whose merge order is not defined (they reassociate within a few ULP).
// Accumulator grids are therefore never read back by generated code.

#include <cstdint>

#include "core/program.hpp"
#include "support/status.hpp"

namespace glaf::fuzz {

/// Knobs for the program generator. Defaults match the glaf-fuzz CLI.
struct GeneratorOptions {
  int min_data_grids = 3;
  int max_data_grids = 7;
  int max_aux_functions = 2;  ///< value functions AND subroutines, each
  int max_steps = 3;          ///< steps in the entry function
  int max_stmts_per_step = 5;
  int max_loop_depth = 2;
  int max_expr_depth = 3;
  bool use_external = true;    ///< imported-module and COMMON grids (§3.1/3.2)
  bool use_calls = true;       ///< subroutines + value functions (§3.4)
  bool use_reductions = true;  ///< sum/min/max accumulator statements
};

/// Name of the generated zero-argument entry subroutine.
inline constexpr const char* kEntryName = "fz_main";

/// A generated program plus the entry point the oracle should call.
struct FuzzProgram {
  Program program;
  std::string entry = kEntryName;
};

/// Generate the program for `seed`. Every seed must produce a program
/// that passes validation; a non-OK status is a generator bug.
StatusOr<FuzzProgram> generate_program(std::uint64_t seed,
                                       const GeneratorOptions& opts = {});

}  // namespace glaf::fuzz
