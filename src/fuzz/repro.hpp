#pragma once
// Reproduction files: a failing fuzz case persisted as a serialized GLAF
// program with a comment header recording provenance (generator seed,
// divergence note). Repro files double as the regression corpus under
// tests/fuzz/corpus/.

#include <cstdint>
#include <string>
#include <vector>

#include "core/program.hpp"
#include "support/status.hpp"

namespace glaf::fuzz {

struct ReproInfo {
  std::uint64_t seed = 0;
  std::string note;  ///< one line: what diverged, or why this case matters
};

/// Write `program` to `path` with a `;` comment header carrying `info`.
Status write_repro(const std::string& path, const Program& program,
                   const ReproInfo& info);

/// Parse and validate a repro file (header comments are skipped by the
/// serializer's lexer).
StatusOr<Program> load_repro(const std::string& path);

/// Sorted paths of every `*.glaf` file directly inside `dir`. An absent
/// directory yields an empty list (not an error).
std::vector<std::string> list_corpus(const std::string& dir);

}  // namespace glaf::fuzz
