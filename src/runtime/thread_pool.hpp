#pragma once
// A small fixed-size thread pool with a blocking parallel_for — the
// reproduction's stand-in for the OpenMP runtime. Work is divided into
// static contiguous chunks (one per worker), matching OMP's default static
// schedule for PARALLEL DO.
//
// The public entry points are templates over the callable: a job is
// published to the workers as a raw function pointer plus an opaque
// context pointer (a function_ref, in effect), so dispatching a parallel
// region never allocates or copies a std::function. The callable only has
// to outlive the call, which it does — parallel_for blocks.
//
// Concurrency discipline (Core Guidelines CP.2/CP.3): workers share only
// the immutable job descriptor and a per-job atomic cursor; user code is
// responsible for the independence of its chunks, which in this project is
// established by the auto-parallelization verdicts.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace glaf {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>=1). The calling thread also executes
  /// chunks, so total parallelism is num_threads (workers = n-1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return num_threads_; }

  /// Run fn(thread_rank, begin, end) over a static partition of [0, n)
  /// into size() chunks. Blocks until every chunk finished. Exceptions
  /// from chunks are captured and the first one is rethrown here.
  template <typename F>
  void parallel_for(std::int64_t n, F&& fn) {
    // The const_cast round-trips const callables through the opaque ctx
    // pointer; the trampoline restores the exact deduced type.
    dispatch(
        n,
        [](void* ctx, int rank, std::int64_t begin, std::int64_t end) {
          (*static_cast<std::remove_reference_t<F>*>(ctx))(rank, begin, end);
        },
        const_cast<void*>(static_cast<const void*>(&fn)));
  }

  /// OMP SCHEDULE(DYNAMIC, chunk): work is handed out in `chunk`-sized
  /// pieces from a shared cursor, so uneven iteration costs balance.
  /// Same calling convention and error behaviour as parallel_for.
  template <typename F>
  void parallel_for_dynamic(std::int64_t n, std::int64_t chunk, F&& fn) {
    if (n <= 0) return;
    chunk = std::max<std::int64_t>(1, chunk);
    std::atomic<std::int64_t> cursor{0};
    // One static slot per worker; each slot drains the shared cursor.
    parallel_for(num_threads_,
                 [&](int rank, std::int64_t /*begin*/, std::int64_t /*end*/) {
                   while (true) {
                     const std::int64_t start =
                         cursor.fetch_add(chunk, std::memory_order_relaxed);
                     if (start >= n) break;
                     fn(rank, start,
                        std::min<std::int64_t>(n, start + chunk));
                   }
                 });
  }

  /// Process-wide pool sized to the hardware (lazily constructed).
  static ThreadPool& shared();

 private:
  /// Type-erased chunk invoker: ctx is the caller's callable.
  using ChunkFn = void (*)(void* ctx, int rank, std::int64_t begin,
                           std::int64_t end);

  struct Job {
    ChunkFn invoke = nullptr;
    void* ctx = nullptr;
    std::int64_t n = 0;
    int chunks = 0;
    std::int64_t generation = 0;
  };

  void dispatch(std::int64_t n, ChunkFn invoke, void* ctx);
  void worker_main(int rank);
  void run_chunk(const Job& job, int chunk);
  static void chunk_bounds(std::int64_t n, int chunks, int chunk,
                           std::int64_t* begin, std::int64_t* end);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  Job job_;
  std::int64_t generation_ = 0;
  int pending_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace glaf
