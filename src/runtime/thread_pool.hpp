#pragma once
// A small fixed-size thread pool with a blocking parallel_for — the
// reproduction's stand-in for the OpenMP runtime. Work is divided into
// static contiguous chunks (one per worker), matching OMP's default static
// schedule for PARALLEL DO.
//
// Concurrency discipline (Core Guidelines CP.2/CP.3): workers share only
// the immutable job descriptor and a per-job atomic cursor; user code is
// responsible for the independence of its chunks, which in this project is
// established by the auto-parallelization verdicts.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace glaf {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>=1). The calling thread also executes
  /// chunks, so total parallelism is num_threads (workers = n-1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return num_threads_; }

  /// Run fn(thread_rank, begin, end) over a static partition of [0, n)
  /// into size() chunks. Blocks until every chunk finished. Exceptions
  /// from chunks are captured and the first one is rethrown here.
  void parallel_for(
      std::int64_t n,
      const std::function<void(int, std::int64_t, std::int64_t)>& fn);

  /// OMP SCHEDULE(DYNAMIC, chunk): work is handed out in `chunk`-sized
  /// pieces from a shared cursor, so uneven iteration costs balance.
  /// Same calling convention and error behaviour as parallel_for.
  void parallel_for_dynamic(
      std::int64_t n, std::int64_t chunk,
      const std::function<void(int, std::int64_t, std::int64_t)>& fn);

  /// Process-wide pool sized to the hardware (lazily constructed).
  static ThreadPool& shared();

 private:
  struct Job {
    const std::function<void(int, std::int64_t, std::int64_t)>* fn = nullptr;
    std::int64_t n = 0;
    int chunks = 0;
    std::int64_t generation = 0;
  };

  void worker_main(int rank);
  void run_chunk(const Job& job, int chunk);
  static void chunk_bounds(std::int64_t n, int chunks, int chunk,
                           std::int64_t* begin, std::int64_t* end);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  Job job_;
  std::int64_t generation_ = 0;
  int pending_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace glaf
