#pragma once
// A small fixed-size thread pool with a blocking parallel_for — the
// reproduction's stand-in for the OpenMP runtime. Work is divided into
// static contiguous chunks (one per worker), matching OMP's default static
// schedule for PARALLEL DO.
//
// Workers are persistent: spawned once in the constructor, they spin
// briefly on the job generation counter between dispatches (catching
// back-to-back parallel regions — e.g. fused-region kernels issuing one
// dispatch per call — without a syscall) and park on a condition variable
// only after the spin budget runs out. The dispatcher bumps the
// generation under the pool mutex and notifies only when someone is
// actually parked, so a hot pool pays two atomic transitions per region
// and an idle pool costs no CPU.
//
// The public entry points are templates over the callable: a job is
// published to the workers as a raw function pointer plus an opaque
// context pointer (a function_ref, in effect), so dispatching a parallel
// region never allocates or copies a std::function. The callable only has
// to outlive the call, which it does — parallel_for blocks.
//
// Concurrency discipline (Core Guidelines CP.2/CP.3): workers share only
// the immutable job descriptor and a per-job atomic cursor; user code is
// responsible for the independence of its chunks, which in this project is
// established by the auto-parallelization verdicts.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace glaf {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>=1). The calling thread also executes
  /// chunks, so total parallelism is num_threads (workers = n-1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return num_threads_; }

  /// Run fn(thread_rank, begin, end) over a static partition of [0, n)
  /// into size() chunks. Blocks until every chunk finished. Exceptions
  /// from chunks are captured and the first one is rethrown here.
  template <typename F>
  void parallel_for(std::int64_t n, F&& fn) {
    // The const_cast round-trips const callables through the opaque ctx
    // pointer; the trampoline restores the exact deduced type.
    dispatch(
        n,
        [](void* ctx, int rank, std::int64_t begin, std::int64_t end) {
          (*static_cast<std::remove_reference_t<F>*>(ctx))(rank, begin, end);
        },
        const_cast<void*>(static_cast<const void*>(&fn)));
  }

  /// OMP SCHEDULE(DYNAMIC, chunk): work is handed out in `chunk`-sized
  /// pieces from a shared cursor, so uneven iteration costs balance.
  /// Same calling convention and error behaviour as parallel_for.
  template <typename F>
  void parallel_for_dynamic(std::int64_t n, std::int64_t chunk, F&& fn) {
    if (n <= 0) return;
    chunk = std::max<std::int64_t>(1, chunk);
    std::atomic<std::int64_t> cursor{0};
    // One static slot per worker; each slot drains the shared cursor.
    parallel_for(num_threads_,
                 [&](int rank, std::int64_t /*begin*/, std::int64_t /*end*/) {
                   while (true) {
                     const std::int64_t start =
                         cursor.fetch_add(chunk, std::memory_order_relaxed);
                     if (start >= n) break;
                     fn(rank, start,
                        std::min<std::int64_t>(n, start + chunk));
                   }
                 });
  }

  /// Multi-thread dispatches issued so far (single-thread pools run
  /// inline and do not count). Diagnostics for the persistent-worker
  /// tests; relaxed reads, exact only when the pool is quiescent.
  [[nodiscard]] std::uint64_t dispatches() const {
    return dispatches_.load(std::memory_order_relaxed);
  }
  /// Times any worker exhausted its spin budget and blocked on the
  /// condition variable. dispatches() x workers minus parks() is the
  /// number of wakeups the spin phase absorbed without a syscall.
  [[nodiscard]] std::uint64_t parks() const {
    return parks_.load(std::memory_order_relaxed);
  }

  /// Process-wide pool sized to the hardware (lazily constructed).
  static ThreadPool& shared();

 private:
  /// Type-erased chunk invoker: ctx is the caller's callable.
  using ChunkFn = void (*)(void* ctx, int rank, std::int64_t begin,
                           std::int64_t end);

  struct Job {
    ChunkFn invoke = nullptr;
    void* ctx = nullptr;
    std::int64_t n = 0;
    int chunks = 0;
  };

  /// Relaxed generation probes a worker makes before parking. Roughly
  /// tens of microseconds of spinning — enough to bridge the gap between
  /// the regions of one kernel call, short enough that an idle pool
  /// parks promptly.
  static constexpr int kSpinIterations = 4096;

  void dispatch(std::int64_t n, ChunkFn invoke, void* ctx);
  void worker_main(int rank);
  void run_chunk(const Job& job, int chunk);
  static void chunk_bounds(std::int64_t n, int chunks, int chunk,
                           std::int64_t* begin, std::int64_t* end);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  Job job_;
  /// Job sequence number. Written under mutex_; read with relaxed loads
  /// in the workers' spin phase (acquire on the transition) so spinning
  /// never touches the lock.
  std::atomic<std::int64_t> generation_{0};
  /// Chunks of the current job not yet finished (workers only; the
  /// caller runs chunk 0 itself).
  std::atomic<int> pending_{0};
  /// Workers currently blocked in start_cv_.wait (maintained under
  /// mutex_): the dispatcher skips notify_all when every worker is still
  /// spinning.
  int parked_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
  std::atomic<std::uint64_t> dispatches_{0};
  std::atomic<std::uint64_t> parks_{0};
};

}  // namespace glaf
