#include "runtime/thread_pool.hpp"

#include <algorithm>

namespace glaf {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int rank = 1; rank < num_threads_; ++rank) {
    workers_.emplace_back([this, rank] { worker_main(rank); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::chunk_bounds(std::int64_t n, int chunks, int chunk,
                              std::int64_t* begin, std::int64_t* end) {
  const std::int64_t base = n / chunks;
  const std::int64_t extra = n % chunks;
  *begin = chunk * base + std::min<std::int64_t>(chunk, extra);
  *end = *begin + base + (chunk < extra ? 1 : 0);
}

void ThreadPool::run_chunk(const Job& job, int chunk) {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  chunk_bounds(job.n, job.chunks, chunk, &begin, &end);
  if (begin >= end) return;
  try {
    job.invoke(job.ctx, chunk, begin, end);
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::worker_main(int rank) {
  std::int64_t seen_generation = 0;
  while (true) {
    // Spin phase: lock-free relaxed probes of the generation counter.
    // Back-to-back dispatches (a fused-region kernel issuing its next
    // region, the benchmark loop's next call) land here and never pay a
    // futex wakeup.
    for (int i = 0; i < kSpinIterations; ++i) {
      if (generation_.load(std::memory_order_acquire) != seen_generation) {
        break;
      }
    }
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!stop_ &&
          generation_.load(std::memory_order_relaxed) == seen_generation) {
        // Spin budget exhausted with no new job: park. parked_ is
        // maintained under the mutex, and the dispatcher bumps the
        // generation under the same mutex, so the park decision cannot
        // race a concurrent dispatch into a missed wakeup.
        ++parked_;
        parks_.fetch_add(1, std::memory_order_relaxed);
        start_cv_.wait(lock, [&] {
          return stop_ || generation_.load(std::memory_order_relaxed) !=
                              seen_generation;
        });
        --parked_;
      }
      if (stop_) return;
      seen_generation = generation_.load(std::memory_order_relaxed);
      job = job_;
    }
    run_chunk(job, rank);
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last chunk done: wake the caller. Taking the mutex before the
      // notify pairs with the caller's predicate check under the same
      // mutex, closing the missed-wakeup window.
      const std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::dispatch(std::int64_t n, ChunkFn invoke, void* ctx) {
  if (n <= 0) return;
  if (num_threads_ == 1) {
    invoke(ctx, 0, 0, n);
    return;
  }
  dispatches_.fetch_add(1, std::memory_order_relaxed);
  bool anyone_parked = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_.invoke = invoke;
    job_.ctx = ctx;
    job_.n = n;
    job_.chunks = num_threads_;
    first_error_ = nullptr;
    pending_.store(num_threads_ - 1, std::memory_order_relaxed);
    // Publish last, with release: a spinning worker that observes the
    // new generation sees the whole job descriptor.
    generation_.fetch_add(1, std::memory_order_release);
    anyone_parked = parked_ > 0;
  }
  if (anyone_parked) start_cv_.notify_all();
  run_chunk(job_, 0);  // rank 0 = calling thread
  // Spin for the workers' tails before blocking: with chunks this even,
  // they finish within the budget almost always.
  for (int i = 0; i < kSpinIterations; ++i) {
    if (pending_.load(std::memory_order_acquire) == 0) break;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return pending_.load(std::memory_order_relaxed) == 0;
    });
    if (first_error_) {
      std::exception_ptr e = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(e);
    }
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency())));
  return pool;
}

}  // namespace glaf
