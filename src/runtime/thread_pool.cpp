#include "runtime/thread_pool.hpp"

#include <algorithm>

namespace glaf {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int rank = 1; rank < num_threads_; ++rank) {
    workers_.emplace_back([this, rank] { worker_main(rank); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::chunk_bounds(std::int64_t n, int chunks, int chunk,
                              std::int64_t* begin, std::int64_t* end) {
  const std::int64_t base = n / chunks;
  const std::int64_t extra = n % chunks;
  *begin = chunk * base + std::min<std::int64_t>(chunk, extra);
  *end = *begin + base + (chunk < extra ? 1 : 0);
}

void ThreadPool::run_chunk(const Job& job, int chunk) {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  chunk_bounds(job.n, job.chunks, chunk, &begin, &end);
  if (begin >= end) return;
  try {
    job.invoke(job.ctx, chunk, begin, end);
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::worker_main(int rank) {
  std::int64_t seen_generation = 0;
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
    }
    run_chunk(job, rank);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::dispatch(std::int64_t n, ChunkFn invoke, void* ctx) {
  if (n <= 0) return;
  if (num_threads_ == 1) {
    invoke(ctx, 0, 0, n);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_.invoke = invoke;
    job_.ctx = ctx;
    job_.n = n;
    job_.chunks = num_threads_;
    ++generation_;
    pending_ = num_threads_ - 1;
    first_error_ = nullptr;
  }
  start_cv_.notify_all();
  run_chunk(job_, 0);  // rank 0 = calling thread
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    if (first_error_) {
      std::exception_ptr e = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(e);
    }
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency())));
  return pool;
}

}  // namespace glaf
