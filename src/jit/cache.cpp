#include "jit/cache.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "jit/emit.hpp"
#include "support/fault.hpp"
#include "support/hash.hpp"
#include "support/strings.hpp"
#include "support/subprocess.hpp"

namespace glaf::jit {
namespace {

struct AtomicStats {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> compiles{0};
  std::atomic<std::uint64_t> corrupt_discards{0};
};

AtomicStats& stats() {
  static AtomicStats s;
  return s;
}

/// mkdir -p, permissive about pre-existing components.
void make_dirs(const std::string& path) {
  std::string at;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (path[i] == '/' && i > 0) mkdir(at.c_str(), 0755);
    at += path[i];
  }
  if (!at.empty()) mkdir(at.c_str(), 0755);
}

std::string default_dir() {
  if (const char* env = std::getenv("GLAF_KERNEL_CACHE");
      env != nullptr && *env != '\0') {
    return env;
  }
  if (const char* xdg = std::getenv("XDG_CACHE_HOME");
      xdg != nullptr && *xdg != '\0') {
    return cat(xdg, "/glaf/kernels");
  }
  const char* home = std::getenv("HOME");
  return cat(home != nullptr && *home != '\0' ? home : "/tmp",
             "/.cache/glaf/kernels");
}

/// A published entry must at least still be an ELF object; truncated or
/// overwritten files are discarded (dlopen failures are reported back
/// via invalidate()).
bool looks_valid(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[4] = {};
  in.read(magic, 4);
  return in.gcount() == 4 && magic[0] == '\x7f' && magic[1] == 'E' &&
         magic[2] == 'L' && magic[3] == 'F';
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return stat(path.c_str(), &st) == 0;
}

/// fsync one path (a file, or a directory to persist a rename). Publish
/// must not report success for bytes the kernel may still lose: a host
/// crash after rename but before writeback would otherwise leave a
/// zero-length/truncated "valid" entry under the final name.
Status sync_path(const std::string& path, bool directory) {
  const int fd =
      ::open(path.c_str(), directory ? O_RDONLY | O_DIRECTORY : O_RDONLY);
  if (fd < 0) {
    return internal_error(cat("cannot open ", path, " for fsync"));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return internal_error(cat("fsync ", path, " failed"));
  return Status::ok();
}

}  // namespace

KernelCacheStats kernel_cache_stats() {
  const AtomicStats& s = stats();
  return {s.hits.load(), s.misses.load(), s.compiles.load(),
          s.corrupt_discards.load()};
}

void reset_kernel_cache_stats() {
  AtomicStats& s = stats();
  s.hits = 0;
  s.misses = 0;
  s.compiles = 0;
  s.corrupt_discards = 0;
}

KernelCache::KernelCache(std::string dir)
    : dir_(dir.empty() ? default_dir() : std::move(dir)) {}

std::string KernelCache::key(const std::string& source, const std::string& cc,
                             const std::string& flags,
                             const std::string& config) {
  // Field separators ('\0') keep (a,bc) and (ab,c) from colliding.
  Hash128 h = fnv1a128(cat("glaf-nat-abi-", kAbiVersion));
  h = fnv1a128(std::string(1, '\0'), h);
  h = fnv1a128(source, h);
  h = fnv1a128(std::string(1, '\0'), h);
  h = fnv1a128(compiler_identity(cc), h);
  h = fnv1a128(std::string(1, '\0'), h);
  h = fnv1a128(flags, h);
  h = fnv1a128(std::string(1, '\0'), h);
  h = fnv1a128(config, h);
  return hex_digest(h);
}

StatusOr<std::string> KernelCache::object_for(const std::string& source,
                                              const std::string& cc,
                                              const std::string& flags,
                                              bool* was_hit,
                                              const std::string& config) {
  if (was_hit != nullptr) *was_hit = false;
  if (!cc_available(cc)) {
    return failed_precondition(cat("compiler '", cc, "' is not available"));
  }
  make_dirs(dir_);
  const std::string digest = key(source, cc, flags, config);
  const std::string object = cat(dir_, "/", digest, ".so");
  if (file_exists(object)) {
    // The fault site treats this lookup's entry as corrupt (the chaos
    // path for on-disk damage the ELF sniff would catch).
    if (!fault::should_fail("jit.cache.load") && looks_valid(object)) {
      ++stats().hits;
      if (was_hit != nullptr) *was_hit = true;
      return object;
    }
    ++stats().corrupt_discards;
    std::remove(object.c_str());
  }
  ++stats().misses;

  // Compile to unique temp names, then rename() the object into place:
  // concurrent writers each publish a complete file and the last rename
  // wins without any reader ever seeing a partial object.
  const std::string stem = cat(dir_, "/", digest, ".tmp", getpid());
  const std::string src_tmp = cat(stem, ".c");
  {
    std::ofstream out(src_tmp);
    if (!out) return internal_error(cat("cannot write ", src_tmp));
    out << source;
  }
  const std::string obj_tmp = cat(stem, ".so");
  ++stats().compiles;
  const RunResult compile =
      run_command(cat(cc, " ", flags, " -o ", obj_tmp, " ", src_tmp, " -lm"));
  if (!compile.ok()) {
    std::remove(src_tmp.c_str());
    std::remove(obj_tmp.c_str());
    if (!compile.started) {
      return internal_error("could not spawn the compiler");
    }
    return internal_error(
        cat("kernel compilation failed: ", compile.output.substr(0, 2000)));
  }
  // Keep the source beside the object for debugging (best-effort, not
  // synced — it is never loaded).
  std::rename(src_tmp.c_str(), cat(dir_, "/", digest, ".c").c_str());
  if (fault::should_fail("jit.cache.publish")) {
    // Simulates the crash window this fsync exists to close: the object
    // is published truncated, as if the rename hit disk but the data
    // never did. Readers must detect and rebuild it.
    (void)::truncate(obj_tmp.c_str(), 2);
  } else if (Status s = sync_path(obj_tmp, /*directory=*/false);
             !s.is_ok()) {
    std::remove(obj_tmp.c_str());
    return s;
  }
  if (std::rename(obj_tmp.c_str(), object.c_str()) != 0) {
    std::remove(obj_tmp.c_str());
    return internal_error(cat("cannot publish ", object));
  }
  // Persist the rename itself; failure here is not fatal for THIS
  // process (the entry is visible), it only weakens crash durability.
  (void)sync_path(dir_, /*directory=*/true);
  return object;
}

void KernelCache::invalidate(const std::string& object_path) {
  if (std::remove(object_path.c_str()) == 0) ++stats().corrupt_discards;
}

}  // namespace glaf::jit
