#include "jit/engine.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include <thread>

#include "jit/cache.hpp"
#include "perfmodel/machine_model.hpp"
#include "support/fault.hpp"
#include "support/strings.hpp"
#include "support/subprocess.hpp"

namespace glaf::jit {
namespace {

/// Host mirror of the emitted glaf_nat_args struct (emit.cpp keeps the
/// layouts in lockstep; both are plain C-compatible PODs).
struct NatArgs {
  double* const* grids;
  const long* extents;
  const double* scalars;
  long num_threads;
  double result;
};

using WrapperFn = long (*)(NatArgs*);
using MetaFn = long (*)(void);

// C-side pfor callback types (must match the emitted typedefs).
using RangeFn = void (*)(void* ctx, long lo, long hi, long rank);
using PforFn = void (*)(void* hctx, RangeFn fn, void* ctx, long n);
using SetPforFn = void (*)(PforFn pf, void* hctx, long nranks, long gate);

/// The trampoline the kernel calls for every ranged step: partitions
/// [0, n) across the host pool. Static chunks match OMP's default
/// schedule; dynamic drains chunk-sized pieces from a shared cursor.
/// Either way each rank only ever touches its own reduction scratch
/// row, and the kernel combines rows in rank order afterwards, so the
/// result is identical to running the range serially.
void pfor_trampoline(void* hctx, RangeFn fn, void* ctx, long n) {
  auto* host = static_cast<PforHost*>(hctx);
  host->regions.fetch_add(1, std::memory_order_relaxed);
  if (host->pool == nullptr || n <= 1) {
    fn(ctx, 0, n, 0);
    return;
  }
  if (host->dynamic_schedule) {
    host->pool->parallel_for_dynamic(
        n, host->schedule_chunk,
        [&](int rank, std::int64_t begin, std::int64_t end) {
          fn(ctx, begin, end, rank);
        });
    return;
  }
  host->pool->parallel_for(n,
                           [&](int rank, std::int64_t begin, std::int64_t end) {
                             if (begin < end) fn(ctx, begin, end, rank);
                           });
}


/// Copy the published object to a private temp file and dlopen that
/// (see the header: per-engine static state), unlinking immediately so
/// the copy lives exactly as long as the handle.
StatusOr<void*> open_private_copy(const std::string& object_path) {
  std::string copy_path = cat("/tmp/glaf_nat_", getpid(), "_XXXXXX");
  const int fd = mkstemp(copy_path.data());
  if (fd < 0) return internal_error("cannot create private kernel copy");
  {
    std::ifstream in(object_path, std::ios::binary);
    std::ofstream out(copy_path, std::ios::binary);
    out << in.rdbuf();
    if (!in || !out) {
      close(fd);
      std::remove(copy_path.c_str());
      return internal_error(cat("cannot copy ", object_path));
    }
  }
  close(fd);
  void* handle = dlopen(copy_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  std::remove(copy_path.c_str());
  if (handle == nullptr) {
    const char* err = dlerror();
    return internal_error(
        cat("dlopen failed: ", err != nullptr ? err : "unknown error"));
  }
  return handle;
}

}  // namespace

StatusOr<std::unique_ptr<NativeEngine>> NativeEngine::create(
    const Program& program, const ProgramAnalysis& analysis,
    const Options& options) {
  StatusOr<CompiledKernel> compiled =
      compile_object(program, analysis, options);
  if (!compiled.is_ok()) return compiled.status();
  return load_compiled(std::move(compiled).value(), options);
}

StatusOr<CompiledKernel> NativeEngine::compile_object(
    const Program& program, const ProgramAnalysis& analysis,
    const Options& options) {
  // The opt tier is serial by construction (emit.cpp clamps the same
  // way); resolve it once here so the ABI check, the pfor installation
  // and the cache key all agree.
  const bool opt_tier = options.model == NumericModel::kOpt;
  const bool parallel = options.parallel && !opt_tier;

  EmitOptions eopts;
  eopts.parallel = parallel;
  eopts.policy = options.policy;
  eopts.save_temporaries = options.save_temporaries;
  eopts.dynamic_schedule = options.dynamic_schedule;
  eopts.schedule_chunk = options.schedule_chunk;
  eopts.fuse_regions = options.fuse_regions;
  eopts.model = options.model;
  StatusOr<KernelUnit> unit = emit_kernel_unit(program, analysis, eopts);
  if (!unit.is_ok()) return unit.status();

  const std::string cc = default_cc(options.cc);
  const bool portable =
      options.portable || std::getenv("GLAF_NATIVE_PORTABLE") != nullptr;
  // interp tier: -ffp-contract=off because FMA contraction would round
  // differently than the interpreter's plain double arithmetic, breaking
  // bit-identity; -fno-builtin because the compiler constant-folds libm
  // calls on literal arguments (correctly rounded via MPFR), which can
  // differ by an ulp from the runtime libm the interpreter calls.
  // opt tier: the opposite trade — typed storage, -O3 with contraction
  // on, -fno-math-errno so libm calls vectorize, and -march=native
  // unless a portable object was requested. Its output is compared
  // under ulp budgets, never bitwise.
  const std::string flags =
      opt_tier
          ? cat("-shared -fPIC -O3 -ffp-contract=fast -fno-math-errno",
                portable ? "" : " -march=native")
          : "-shared -fPIC -O2 -ffp-contract=off -fno-builtin";
  // The emitted source already encodes the parallel partitioning, but
  // folding the engine configuration into the key as well keeps serial
  // and parallel objects (and per-policy / per-schedule / per-tier
  // variants) as distinct cache entries even when their sources
  // coincide. -march=native objects additionally key the host CPU
  // fingerprint, so a cache directory shared across hosts can never
  // serve an incompatible object (the compiler identity is already part
  // of every key via KernelCache::key).
  // The gate threshold is installed at run time through glaf_set_pfor
  // and deliberately NOT part of the key: retuning the gate must never
  // recompile or split the cache.
  const std::string host_key =
      opt_tier && !portable ? host_arch_fingerprint() : std::string();
  const std::string config =
      cat("parallel=", parallel ? 1 : 0, ";policy=",
          to_string(options.policy), ";sched=",
          options.dynamic_schedule ? "dynamic" : "static", ";chunk=",
          options.schedule_chunk, ";fuse=", options.fuse_regions ? 1 : 0,
          ";model=", to_string(options.model), ";host=", host_key,
          ";emit=", kAbiVersion);

  CompiledKernel compiled;
  compiled.unit = std::move(unit).value();
  compiled.parallel = parallel;
  compiled.cc = cc;
  compiled.cc_identity = compiler_identity(cc);
  compiled.flags = flags;
  compiled.host_key = host_key;
  compiled.config = config;

  KernelCache cache(options.cache_dir);
  compiled.cache_dir = cache.dir();
  StatusOr<std::string> object = cache.object_for(
      compiled.unit.source, cc, flags, &compiled.cache_hit, config);
  if (!object.is_ok()) return object.status();
  compiled.object_path = std::move(object).value();
  return compiled;
}

StatusOr<std::unique_ptr<NativeEngine>> NativeEngine::load_compiled(
    CompiledKernel compiled, const Options& options) {
  if (fault::should_fail("jit.engine.load")) {
    return internal_error("fault injected: kernel load refused");
  }
  const bool opt_tier = options.model == NumericModel::kOpt;
  const bool parallel = compiled.parallel;

  auto engine = std::unique_ptr<NativeEngine>(new NativeEngine());
  engine->unit_ = std::move(compiled.unit);
  engine->options_ = options;
  engine->cc_ = compiled.cc;
  engine->cc_identity_ = compiled.cc_identity;
  engine->flags_ = compiled.flags;
  engine->host_key_ = compiled.host_key;
  engine->cache_hit_ = compiled.cache_hit;
  engine->object_path_ = std::move(compiled.object_path);

  StatusOr<void*> handle = open_private_copy(engine->object_path_);
  if (!handle.is_ok()) {
    // The published entry may be stale or corrupted in a way the ELF
    // sniff missed: discard it and rebuild once.
    KernelCache cache(compiled.cache_dir);
    cache.invalidate(engine->object_path_);
    StatusOr<std::string> object =
        cache.object_for(engine->unit_.source, compiled.cc, compiled.flags,
                         nullptr, compiled.config);
    if (!object.is_ok()) return object.status();
    engine->cache_hit_ = false;
    engine->object_path_ = std::move(object).value();
    handle = open_private_copy(engine->object_path_);
    if (!handle.is_ok()) return handle.status();
  }
  engine->handle_ = handle.value();

  // ABI sanity before any call goes through.
  const auto meta = [&](const char* symbol) -> long {
    auto* fn =
        reinterpret_cast<MetaFn>(dlsym(engine->handle_, symbol));
    return fn != nullptr ? fn() : -1;
  };
  if (meta("glaf_nat_abi_version") != kAbiVersion) {
    return internal_error("kernel ABI version mismatch");
  }
  if (meta("glaf_nat_num_slots") !=
      static_cast<long>(engine->unit_.slots.size())) {
    return internal_error("kernel slot count mismatch");
  }
  if (meta("glaf_nat_parallel") != (parallel ? 1 : 0)) {
    return internal_error("kernel parallel-mode mismatch");
  }
  if (meta("glaf_nat_model") != (opt_tier ? 1 : 0)) {
    return internal_error("kernel numeric-model mismatch");
  }
  if (parallel) {
    auto* set_pfor = reinterpret_cast<SetPforFn>(
        dlsym(engine->handle_, "glaf_set_pfor"));
    if (set_pfor == nullptr) {
      return internal_error("parallel kernel lacks glaf_set_pfor");
    }
    engine->pfor_host_ = std::make_unique<PforHost>();
    engine->pfor_host_->pool = options.pool;
    engine->pfor_host_->dynamic_schedule = options.dynamic_schedule;
    engine->pfor_host_->schedule_chunk = options.schedule_chunk;
    const int ranks = options.pool != nullptr ? options.pool->size() : 1;
    engine->gate_units_ = resolve_gate_units(
        options.gate_min_units, ranks, std::thread::hardware_concurrency());
    set_pfor(pfor_trampoline, engine->pfor_host_.get(), ranks,
             engine->gate_units_);
    engine->gated_fn_ = reinterpret_cast<long (*)()>(
        dlsym(engine->handle_, "glaf_nat_gated"));
    if (engine->gated_fn_ == nullptr) {
      return internal_error("parallel kernel lacks glaf_nat_gated");
    }
  }
  engine->entry_points_.resize(engine->unit_.functions.size(), nullptr);
  for (std::size_t i = 0; i < engine->unit_.functions.size(); ++i) {
    const AbiFunction& fn = engine->unit_.functions[i];
    if (!fn.supported) continue;
    void* sym = dlsym(engine->handle_, fn.symbol.c_str());
    if (sym == nullptr) {
      return internal_error(cat("missing kernel symbol ", fn.symbol));
    }
    engine->entry_points_[i] = sym;
  }
  return engine;
}

NativeEngine::~NativeEngine() {
  if (handle_ != nullptr) dlclose(handle_);
}

const AbiFunction* NativeEngine::find(const std::string& function) const {
  for (const AbiFunction& fn : unit_.functions) {
    if (fn.name == function) return &fn;
  }
  return nullptr;
}

StatusOr<double> NativeEngine::call(const AbiFunction& fn,
                                    const std::vector<double>& scalars,
                                    const std::vector<GlobalBinding>& bindings) {
  if (bindings.size() != unit_.slots.size()) {
    return invalid_argument(cat("native call bound ", bindings.size(),
                                " globals, kernel has ",
                                unit_.slots.size()));
  }
  const std::ptrdiff_t index = &fn - unit_.functions.data();
  if (index < 0 ||
      index >= static_cast<std::ptrdiff_t>(entry_points_.size()) ||
      entry_points_[index] == nullptr) {
    return failed_precondition(cat("'", fn.name, "' has no native entry"));
  }
  std::vector<double*> grids(bindings.size());
  std::vector<long> extents(bindings.size());
  for (std::size_t i = 0; i < bindings.size(); ++i) {
    grids[i] = bindings[i].data;
    extents[i] = static_cast<long>(bindings[i].elements);
  }
  NatArgs args{grids.data(), extents.data(), scalars.data(),
               options_.num_threads, 0.0};
  const long status =
      reinterpret_cast<WrapperFn>(entry_points_[index])(&args);
  if (status != 0) {
    return internal_error(cat("native kernel rejected slot ", status - 1,
                              " of '", fn.name, "' (extent mismatch)"));
  }
  return args.result;
}

std::int64_t resolve_gate_units(std::int64_t requested, int pool_threads,
                                unsigned hardware_threads) {
  if (requested >= 0) return requested;
  if (pool_threads <= 1 || hardware_threads <= 1) {
    return ParallelGate::kAlwaysSerialUnits;
  }
  return ParallelGate{}.threshold_units(pool_threads);
}

}  // namespace glaf::jit
