#pragma once
// The native execution engine: compiles the emitted kernel unit with the
// system C compiler (through the content-addressed KernelCache), loads
// the shared object with dlopen, and calls functions in-process through
// the flat-argument-block ABI.
//
// Isolation: the cached object is copied to a private temp file before
// dlopen (then unlinked). glibc dedupes dlopen by inode, so loading the
// cache file directly would share one copy of the unit's static state
// (SAVE'd locals, owned globals) between every Machine in the process;
// the private copy gives each engine fresh statics, mirroring the
// interpreter's per-Machine saved_locals_. Compilation — the expensive
// step — is still shared through the cache.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/parallelize.hpp"
#include "core/program.hpp"
#include "jit/emit.hpp"
#include "runtime/thread_pool.hpp"
#include "support/status.hpp"

namespace glaf::jit {

/// Host context behind the kernel's exported glaf_set_pfor hook: the
/// thread pool and dispatch knobs the trampoline consults, plus a count
/// of parallel regions actually dispatched. Heap-held by the engine so
/// its address stays stable for the kernel's whole lifetime.
struct PforHost {
  ThreadPool* pool = nullptr;
  bool dynamic_schedule = false;
  std::int64_t schedule_chunk = 4;
  std::atomic<std::uint64_t> regions{0};
};

/// Host-side view of one global's storage (kept free of interpreter
/// types: glaf_interp links glaf_jit, not the other way around).
struct GlobalBinding {
  double* data = nullptr;
  std::int64_t elements = 0;
};

/// A compiled-but-not-loaded kernel: the emitted unit plus the published
/// cache object and the exact build identity it was keyed under. Produced
/// by NativeEngine::compile_object (which never dlopens — safe on a
/// background thread) and consumed by NativeEngine::load_compiled.
struct CompiledKernel {
  KernelUnit unit;
  std::string object_path;  ///< published cache entry
  bool cache_hit = false;   ///< compilation skipped (entry already valid)
  /// The engine-level parallel mode the unit was emitted with (the opt
  /// tier clamps Options::parallel to serial; this is the resolved value
  /// the load half must trust).
  bool parallel = false;
  /// Build provenance / cache identity: resolved compiler command, its
  /// --version line, the flag string, the host fingerprint (opt tier,
  /// non-portable only) and the full cache-key config string.
  std::string cc;
  std::string cc_identity;
  std::string flags;
  std::string host_key;
  std::string config;
  /// Cache directory the object was published into (resolved, so the
  /// load half rebuilds through the same cache on a stale entry).
  std::string cache_dir;
};

class NativeEngine {
 public:
  struct Options {
    bool parallel = false;
    int num_threads = 4;
    DirectivePolicy policy = DirectivePolicy::kV0;
    bool save_temporaries = false;
    bool dynamic_schedule = false;
    std::int64_t schedule_chunk = 4;
    /// Fuse adjacent fusable ranged steps into one region entry point
    /// (one fork/join per region instead of per step).
    bool fuse_regions = true;
    /// Profit-gate threshold in plan_profit work units: a region
    /// dispatches to the pool only when trip_count x units reaches it.
    /// 0 disables gating (always dispatch); -1 resolves a calibrated
    /// default from the pool size and the hardware (always-serial on a
    /// single-core host). Installed at load time, so it never splits the
    /// kernel cache.
    std::int64_t gate_min_units = -1;
    /// Pool for parallel kernels (borrowed, must outlive the engine).
    /// nullptr runs parallel units serially through the same range
    /// functions — results are identical either way.
    ThreadPool* pool = nullptr;
    /// Compiler command; "" resolves $GLAF_CC, then "cc".
    std::string cc;
    /// Cache directory override ("" = $GLAF_KERNEL_CACHE / XDG default).
    std::string cache_dir;
    /// Numeric model of the emitted unit: kInterp compiles the
    /// bit-identical all-double tier (-O2, contraction off); kOpt
    /// compiles the typed tier with -O3 -march=native and contraction
    /// on — its results are ulp-close, not bitwise. kOpt units are
    /// always serial (the range ABI is an interp-tier feature).
    NumericModel model = NumericModel::kInterp;
    /// Compile the opt tier without -march=native (generic -O3), for
    /// cache directories or objects that must run on any host. Also
    /// forced by the GLAF_NATIVE_PORTABLE environment variable.
    bool portable = false;
  };

  /// Emit, compile (or reuse the cached object) and load the program.
  /// Any failure here means the whole engine is unavailable and the
  /// caller should fall back. Equivalent to compile_object() followed by
  /// load_compiled() — the synchronous path and the serve subsystem's
  /// async compile queue share those two halves.
  static StatusOr<std::unique_ptr<NativeEngine>> create(
      const Program& program, const ProgramAnalysis& analysis,
      const Options& options);

  /// Compile-only half: emit the kernel unit and compile (or reuse) the
  /// cached object, WITHOUT dlopening it. Safe to run on a background
  /// thread; the returned record carries everything load_compiled()
  /// needs, and the published cache path means a later create() with the
  /// same options is a pure cache hit.
  static StatusOr<CompiledKernel> compile_object(
      const Program& program, const ProgramAnalysis& analysis,
      const Options& options);

  /// Load half: dlopen a compiled kernel (private copy) and wire the
  /// ABI. Recompiles once through the cache when the published object
  /// turns out stale or corrupt. `options` must be the ones the kernel
  /// was compiled with (the dispatch knobs — pool, gate, schedule — are
  /// consumed here; the emission knobs were consumed by compile_object).
  static StatusOr<std::unique_ptr<NativeEngine>> load_compiled(
      CompiledKernel compiled, const Options& options);

  ~NativeEngine();
  NativeEngine(const NativeEngine&) = delete;
  NativeEngine& operator=(const NativeEngine&) = delete;

  /// ABI record for `function`, or nullptr when unknown. A record with
  /// !supported means per-call fallback (with its reason).
  [[nodiscard]] const AbiFunction* find(const std::string& function) const;

  /// Call a supported function. `bindings` must follow slots() order;
  /// `scalars` are the entry call's literal arguments.
  StatusOr<double> call(const AbiFunction& fn,
                        const std::vector<double>& scalars,
                        const std::vector<GlobalBinding>& bindings);

  [[nodiscard]] const std::vector<AbiSlot>& slots() const {
    return unit_.slots;
  }
  /// Parallel regions dispatched through the pfor trampoline so far
  /// (0 for serial units).
  [[nodiscard]] std::uint64_t parallel_regions() const {
    return pfor_host_ != nullptr
               ? pfor_host_->regions.load(std::memory_order_relaxed)
               : 0;
  }
  /// Region dispatches the profit gate kept on the calling thread so far
  /// (0 for serial units).
  [[nodiscard]] std::uint64_t gated_regions() const {
    return gated_fn_ != nullptr ? static_cast<std::uint64_t>(gated_fn_())
                                : 0;
  }
  /// Static dispatch regions in the unit, and how many fused >= 2 steps.
  [[nodiscard]] std::size_t regions_total() const {
    return unit_.regions.size();
  }
  [[nodiscard]] std::size_t fused_regions() const {
    std::size_t fused = 0;
    for (const ParallelRegion& r : unit_.regions) {
      if (r.step_count >= 2) ++fused;
    }
    return fused;
  }
  /// The gate threshold actually installed into the kernel.
  [[nodiscard]] std::int64_t gate_min_units() const { return gate_units_; }
  /// Compilation was skipped because a valid cached object existed.
  [[nodiscard]] bool cache_hit() const { return cache_hit_; }
  [[nodiscard]] const std::string& object_path() const {
    return object_path_;
  }
  [[nodiscard]] const std::string& source() const { return unit_.source; }
  /// Numeric model the unit was emitted with.
  [[nodiscard]] NumericModel model() const { return options_.model; }
  /// Build provenance, recorded into NativeReport: the resolved compiler
  /// command, its --version identity, the exact flag string, and the
  /// host fingerprint keyed for -march=native objects ("" when the
  /// object is portable).
  [[nodiscard]] const std::string& compiler() const { return cc_; }
  [[nodiscard]] const std::string& compiler_version() const {
    return cc_identity_;
  }
  [[nodiscard]] const std::string& compile_flags() const { return flags_; }
  [[nodiscard]] const std::string& host_key() const { return host_key_; }

 private:
  NativeEngine() = default;

  KernelUnit unit_;
  Options options_;
  std::string object_path_;  ///< published cache entry
  bool cache_hit_ = false;
  /// Build provenance (see the accessors above).
  std::string cc_;
  std::string cc_identity_;
  std::string flags_;
  std::string host_key_;
  void* handle_ = nullptr;   ///< dlopen handle of the private copy
  /// Set when the unit was emitted parallel: the context installed via
  /// the kernel's glaf_set_pfor.
  std::unique_ptr<PforHost> pfor_host_;
  /// Resolved kernel-side gated-region counter (glaf_nat_gated) and the
  /// gate threshold installed at load time.
  long (*gated_fn_)() = nullptr;
  std::int64_t gate_units_ = 0;
  /// Resolved wrapper entry points, parallel to unit_.functions
  /// (nullptr for unsupported entries) — the in-memory handle table
  /// that makes repeat binds symbol-lookup-free.
  std::vector<void*> entry_points_;
};

/// Resolve an Options::gate_min_units request against the execution
/// environment: explicit values (>= 0) pass through; auto (-1) is
/// always-serial when only one rank could run (pool_threads <= 1 or a
/// single-core host) and the calibrated ParallelGate break-even
/// threshold for `pool_threads` ranks otherwise. Pure — exposed for the
/// gating tests.
std::int64_t resolve_gate_units(std::int64_t requested, int pool_threads,
                                unsigned hardware_threads);

}  // namespace glaf::jit
