#pragma once
// The native execution engine: compiles the emitted kernel unit with the
// system C compiler (through the content-addressed KernelCache), loads
// the shared object with dlopen, and calls functions in-process through
// the flat-argument-block ABI.
//
// Isolation: the cached object is copied to a private temp file before
// dlopen (then unlinked). glibc dedupes dlopen by inode, so loading the
// cache file directly would share one copy of the unit's static state
// (SAVE'd locals, owned globals) between every Machine in the process;
// the private copy gives each engine fresh statics, mirroring the
// interpreter's per-Machine saved_locals_. Compilation — the expensive
// step — is still shared through the cache.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/parallelize.hpp"
#include "core/program.hpp"
#include "jit/emit.hpp"
#include "support/status.hpp"

namespace glaf::jit {

/// Host-side view of one global's storage (kept free of interpreter
/// types: glaf_interp links glaf_jit, not the other way around).
struct GlobalBinding {
  double* data = nullptr;
  std::int64_t elements = 0;
};

class NativeEngine {
 public:
  struct Options {
    bool parallel = false;
    int num_threads = 4;
    DirectivePolicy policy = DirectivePolicy::kV0;
    bool save_temporaries = false;
    bool dynamic_schedule = false;
    std::int64_t schedule_chunk = 4;
    /// Compiler command; "" resolves $GLAF_CC, then "cc".
    std::string cc;
    /// Cache directory override ("" = $GLAF_KERNEL_CACHE / XDG default).
    std::string cache_dir;
  };

  /// Emit, compile (or reuse the cached object) and load the program.
  /// Any failure here means the whole engine is unavailable and the
  /// caller should fall back.
  static StatusOr<std::unique_ptr<NativeEngine>> create(
      const Program& program, const ProgramAnalysis& analysis,
      const Options& options);

  ~NativeEngine();
  NativeEngine(const NativeEngine&) = delete;
  NativeEngine& operator=(const NativeEngine&) = delete;

  /// ABI record for `function`, or nullptr when unknown. A record with
  /// !supported means per-call fallback (with its reason).
  [[nodiscard]] const AbiFunction* find(const std::string& function) const;

  /// Call a supported function. `bindings` must follow slots() order;
  /// `scalars` are the entry call's literal arguments.
  StatusOr<double> call(const AbiFunction& fn,
                        const std::vector<double>& scalars,
                        const std::vector<GlobalBinding>& bindings);

  [[nodiscard]] const std::vector<AbiSlot>& slots() const {
    return unit_.slots;
  }
  /// Compilation was skipped because a valid cached object existed.
  [[nodiscard]] bool cache_hit() const { return cache_hit_; }
  [[nodiscard]] const std::string& object_path() const {
    return object_path_;
  }
  [[nodiscard]] const std::string& source() const { return unit_.source; }

 private:
  NativeEngine() = default;

  KernelUnit unit_;
  Options options_;
  std::string object_path_;  ///< published cache entry
  bool cache_hit_ = false;
  void* handle_ = nullptr;   ///< dlopen handle of the private copy
  /// Resolved wrapper entry points, parallel to unit_.functions
  /// (nullptr for unsupported entries) — the in-memory handle table
  /// that makes repeat binds symbol-lookup-free.
  std::vector<void*> entry_points_;
};

}  // namespace glaf::jit
