#pragma once
// Native-engine kernel emission: lower a whole GLAF program to one
// self-contained C translation unit built around the C back-end's
// numeric models (CodegenOptions::NumericModel — the bit-identical
// kInterp tier or the typed, ulp-bounded kOpt tier), plus an
// extern-"C" ABI wrapper per function. The wrapper takes a flat argument
// block — grid base pointers in global_grids order, their element
// counts, and the entry call's scalar arguments — copies the host's
// global state into the unit's own storage, runs the function, and
// copies it back out. Keeping storage inside the unit lets one emission
// strategy cover every global kind (owned statics, module externs,
// COMMON members, TYPE elements) with the copy as the only ABI surface.

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/parallelize.hpp"
#include "codegen/options.hpp"
#include "core/program.hpp"
#include "support/status.hpp"

namespace glaf::jit {

/// The ABI version baked into emitted units and checked after dlopen;
/// bump on any layout or naming change so stale cached objects miss.
/// v2: host-driven parallel ranges (glaf_set_pfor / glaf_nat_parallel).
/// v3: fused region entry points (glaf_rg_*), the profit gate
///     (glaf_set_pfor grew a gate argument; glaf_nat_gated counter) and
///     region metadata (glaf_nat_regions / glaf_nat_fused_regions).
/// v4: numeric-model tiers — opt units store grids in native widths and
///     convert element-wise at the copy-in/copy-out boundary (the host
///     block stays double*); glaf_nat_model() reports the tier.
inline constexpr long kAbiVersion = 4;

/// One comparable/copyable global: position in the flat argument block
/// is its position in program.global_grids.
struct AbiSlot {
  GridId grid = 0;
  std::string name;
  std::int64_t elements = 1;  ///< folded element count (1 for scalars)
};

/// Call surface of one GLAF function inside the unit.
struct AbiFunction {
  std::string name;        ///< GLAF function name
  std::string symbol;      ///< wrapper symbol ("glaf_nat_call_<name>")
  bool supported = false;  ///< callable through the flat-args wrapper
  std::string reason;      ///< why not, when !supported
  int num_scalar_params = 0;
  bool returns_value = false;
};

/// A lowered program: complete C source plus its ABI description.
struct KernelUnit {
  std::string source;
  std::vector<AbiSlot> slots;          ///< global_grids order
  std::vector<AbiFunction> functions;  ///< program.functions order
  /// Host-parallel dispatch regions the unit was emitted with (empty
  /// for serial units).
  std::vector<ParallelRegion> regions;
};

/// Options controlling the lowered unit (mirrors InterpOptions).
struct EmitOptions {
  /// Emit host-driven parallel range functions for bit-exact steps (the
  /// engine installs its thread pool through the exported glaf_set_pfor).
  bool parallel = false;
  DirectivePolicy policy = DirectivePolicy::kV0;
  bool save_temporaries = false;
  /// Fuse adjacent fusable ranged steps into single region entry points
  /// (codegen fuse_regions); changes the emitted source, so the engine
  /// also folds it into the cache key.
  bool fuse_regions = true;
  /// Host-side dispatch knobs (they do not change the emitted source —
  /// the engine folds them into the cache-key config instead).
  bool dynamic_schedule = false;
  std::int64_t schedule_chunk = 4;
  /// Numeric model of the lowered unit. kInterp is the bit-identical
  /// tier; kOpt stores grids in native widths, restrict-qualifies
  /// pointers, and applies the S4 interchange pass — its results are
  /// compared under ulp budgets. kOpt units are always serial (the
  /// host-parallel range ABI is an interp-tier feature).
  NumericModel model = NumericModel::kInterp;
};

/// Lower `program` to a native kernel unit. Fails (whole-engine
/// fallback) when a global grid is a struct or has a non-foldable
/// extent — the flat argument block cannot describe those.
StatusOr<KernelUnit> emit_kernel_unit(const Program& program,
                                      const ProgramAnalysis& analysis,
                                      const EmitOptions& options = {});

}  // namespace glaf::jit
