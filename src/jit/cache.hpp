#pragma once
// Content-addressed on-disk kernel cache. Compiled shared objects are
// keyed by a stable 128-bit digest of (ABI version, emitted source,
// compiler identity, compiler flags, engine config — the config carries
// the numeric model and, for -march=native objects, the host CPU
// fingerprint), so a source, toolchain, tier, or host change misses
// cleanly and two processes — or two hosts sharing a network cache
// directory — can share one cache without ever serving an incompatible
// object.
// Publication is single-writer-safe: compile to a temp file in the cache
// directory, then rename() into place (atomic on POSIX within one
// filesystem). Corrupted entries (truncated/overwritten objects that no
// longer look like ELF, or that later fail to dlopen) are discarded and
// rebuilt.
//
// Location: $GLAF_KERNEL_CACHE when set, else ~/.cache/glaf/kernels
// (XDG_CACHE_HOME honoured), resolved per KernelCache instance so tests
// can redirect it.

#include <cstdint>
#include <string>

#include "support/status.hpp"

namespace glaf::jit {

/// Process-wide cache counters (atomics behind the scenes).
struct KernelCacheStats {
  std::uint64_t hits = 0;      ///< valid cached object reused
  std::uint64_t misses = 0;    ///< no entry for the key
  std::uint64_t compiles = 0;  ///< compiler actually invoked
  std::uint64_t corrupt_discards = 0;  ///< invalid entries unlinked
};

KernelCacheStats kernel_cache_stats();
void reset_kernel_cache_stats();

class KernelCache {
 public:
  /// `dir` == "" resolves $GLAF_KERNEL_CACHE / XDG default at
  /// construction time.
  explicit KernelCache(std::string dir = "");

  /// Content key for one compile: hex digest over ABI version, source,
  /// `cc`'s identity line, `flags`, and an engine-configuration string
  /// (parallel mode, directive policy, emit version) so serial and
  /// parallel objects of one program coexist in the cache.
  static std::string key(const std::string& source, const std::string& cc,
                         const std::string& flags,
                         const std::string& config = "");

  /// Path of the cached shared object for (source, cc, flags, config),
  /// compiling and publishing it on a miss. Also writes `<key>.c` beside
  /// it for debugging. `was_hit` (optional) reports whether compilation
  /// was skipped. Fails when the compiler is unavailable or errors.
  StatusOr<std::string> object_for(const std::string& source,
                                   const std::string& cc,
                                   const std::string& flags,
                                   bool* was_hit = nullptr,
                                   const std::string& config = "");

  /// Discard one published object (e.g. it failed to dlopen); the next
  /// object_for() recompiles it.
  void invalidate(const std::string& object_path);

  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

}  // namespace glaf::jit
