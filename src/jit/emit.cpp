#include "jit/emit.hpp"

#include <map>
#include <vector>

#include "analysis/access.hpp"
#include "codegen/c.hpp"
#include "codegen/optpass.hpp"
#include "support/strings.hpp"

namespace glaf::jit {
namespace {

/// The C spelling of a slot's storage inside the unit (mirrors the C
/// back-end's base_name): COMMON members live in the interop struct,
/// TYPE elements in their parent variable.
std::string storage_name(const Grid& g) {
  if (g.external == ExternalKind::kCommon) {
    return cat(g.common_block, "_.", g.name);
  }
  if (!g.type_parent.empty()) return cat(g.type_parent, ".", g.name);
  return g.name;
}

/// Storage type of one grid inside the unit: the interp tier stores
/// everything as double (the interpreter's model); the opt tier uses the
/// native width the typed C back-end would pick. Must agree with
/// CGen::ctype for the same numeric model.
std::string nat_type(DataType t, NumericModel model) {
  if (model != NumericModel::kOpt) return "double";
  switch (t) {
    case DataType::kInt: return "long";
    case DataType::kReal: return "float";
    case DataType::kDouble: return "double";
    case DataType::kLogical: return "int";
    case DataType::kVoid: break;
  }
  return "double";
}

/// Definitions the generated TU leaves to "the legacy objects": TYPE
/// parent variables (prepended — functions access parent.member), plus
/// storage for module externs and COMMON blocks (appended).
std::string prelude_text(const Program& p, const std::vector<AbiSlot>& slots,
                         NumericModel model) {
  // Group TYPE elements by parent variable, in global_grids order.
  std::vector<std::string> parents;
  std::map<std::string, std::vector<const Grid*>> members;
  for (const AbiSlot& slot : slots) {
    const Grid& g = p.grid(slot.grid);
    if (g.type_parent.empty()) continue;
    if (members[g.type_parent].empty()) parents.push_back(g.type_parent);
    members[g.type_parent].push_back(&g);
  }
  if (parents.empty()) return "";
  std::vector<std::string> out;
  out.push_back("/* TYPE parent variables (storage the legacy module"
                " would provide) */");
  for (const std::string& parent : parents) {
    out.push_back(cat("static struct {"));
    for (const Grid* g : members[parent]) {
      const std::string ty = nat_type(g->elem_type, model);
      std::int64_t elems = 1;
      for (const AbiSlot& slot : slots) {
        if (&p.grid(slot.grid) == g) elems = slot.elements;
      }
      out.push_back(g->dims.empty()
                        ? cat("  ", ty, " ", g->name, ";")
                        : cat("  ", ty, " ", g->name, "[", elems, "];"));
    }
    out.push_back(cat("} ", parent, ";"));
  }
  out.push_back("");
  return join(out, "\n") + "\n";
}

std::string wrapper_text(const Program& p, const std::vector<AbiSlot>& slots,
                         const std::vector<AbiFunction>& functions,
                         bool parallel,
                         const std::vector<ParallelRegion>& regions,
                         NumericModel model) {
  std::vector<std::string> out;
  out.push_back("");
  out.push_back("/* ---- native-engine ABI wrapper ---- */");
  out.push_back("#include <string.h>");
  out.push_back("");
  // Storage for module externs and COMMON blocks (harness role).
  std::map<std::string, bool> common_defined;
  for (const AbiSlot& slot : slots) {
    const Grid& g = p.grid(slot.grid);
    if (g.external == ExternalKind::kModule && g.type_parent.empty()) {
      const std::string ty = nat_type(g.elem_type, model);
      out.push_back(g.dims.empty()
                        ? cat(ty, " ", g.name, ";")
                        : cat(ty, " ", g.name, "[", slot.elements, "];"));
    } else if (g.external == ExternalKind::kCommon &&
               !common_defined[g.common_block]) {
      common_defined[g.common_block] = true;
      out.push_back(cat("struct ", g.common_block, "_common ",
                        g.common_block, "_;"));
    }
  }
  out.push_back("");
  // The flat argument block. Must match NativeEngine's host-side mirror
  // (src/jit/engine.cpp) field for field.
  out.push_back("typedef struct {");
  out.push_back("  double* const* grids;   /* base pointer per slot */");
  out.push_back("  const long* extents;    /* element count per slot */");
  out.push_back("  const double* scalars;  /* entry call scalar args */");
  out.push_back("  long num_threads;");
  out.push_back("  double result;");
  out.push_back("} glaf_nat_args;");
  out.push_back("");
  out.push_back(cat("long glaf_nat_abi_version(void) { return ", kAbiVersion,
                    "; }"));
  out.push_back(cat("long glaf_nat_num_slots(void) { return ", slots.size(),
                    "; }"));
  // Whether this unit was emitted with host-driven parallel ranges (the
  // engine installs its pool through glaf_set_pfor when so).
  out.push_back(cat("long glaf_nat_parallel(void) { return ",
                    parallel ? 1 : 0, "; }"));
  // Static region metadata: how many dispatch regions the unit carries
  // and how many of them fused two or more steps into one fork/join.
  std::size_t fused = 0;
  for (const ParallelRegion& r : regions) {
    if (r.step_count >= 2) ++fused;
  }
  out.push_back(cat("long glaf_nat_regions(void) { return ", regions.size(),
                    "; }"));
  out.push_back(cat("long glaf_nat_fused_regions(void) { return ", fused,
                    "; }"));
  // Numeric-model tier of this unit (0 = interp/bit-identical, 1 = opt/
  // typed): the engine refuses a cached object whose tier disagrees with
  // the one it was asked to run.
  out.push_back(cat("long glaf_nat_model(void) { return ",
                    model == NumericModel::kOpt ? 1 : 0, "; }"));
  out.push_back("");
  // Copy-in validates every slot's element count first (a nonzero return
  // is 1 + the offending slot index), then copies host state into the
  // unit's storage; copy-out is the mirror image. The host block is
  // always double*: the interp tier memcpys it straight through, the opt
  // tier converts element-wise into the slot's native width here — this
  // boundary is the only place the two storage models meet.
  //
  // The opt tier additionally threads a per-entry slot mask through both
  // copies: entry wrappers only move the globals their function
  // (transitively) touches — copy-in for any access, copy-out for
  // writes. Written grids always appear in the copy-in mask too, so a
  // partial write exports the host's own values for untouched elements.
  // Small entry points over large programs would otherwise be dominated
  // by boundary traffic rather than kernel work.
  const bool masked = model == NumericModel::kOpt;
  const char* mask_param =
      masked ? ", const unsigned char* restrict glaf_nat_m" : "";
  auto guard = [&](std::size_t i, const std::string& line) {
    return masked ? cat("  if (glaf_nat_m[", i, "]) {", line.substr(1), " }")
                  : line;
  };
  out.push_back(cat("static long glaf_nat_copy_in(const glaf_nat_args* "
                    "glaf_nat_a", mask_param, ") {"));
  for (std::size_t i = 0; i < slots.size(); ++i) {
    out.push_back(cat("  if (glaf_nat_a->extents[", i, "] != ", slots[i].elements,
                      ") return ", i + 1, ";"));
  }
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const Grid& g = p.grid(slots[i].grid);
    const std::string name = storage_name(g);
    const std::string ty = nat_type(g.elem_type, model);
    if (g.dims.empty()) {
      out.push_back(guard(i, cat("  ", name, " = (", ty,
                                 ")glaf_nat_a->grids[", i, "][0];")));
    } else if (ty == "double") {
      out.push_back(guard(i, cat("  memcpy(", name, ", glaf_nat_a->grids[", i,
                                 "], ", slots[i].elements,
                                 " * sizeof(double));")));
    } else {
      out.push_back(guard(i, cat("  { const double* restrict glaf_s = "
                                 "glaf_nat_a->grids[", i, "]; ", ty,
                                 "* restrict glaf_d = ", name, "; long glaf_k; "
                                 "for (glaf_k = 0; glaf_k < ",
                                 slots[i].elements,
                                 "; ++glaf_k) glaf_d[glaf_k] = (", ty,
                                 ")glaf_s[glaf_k]; }")));
    }
  }
  out.push_back("  return 0;");
  out.push_back("}");
  out.push_back("");
  out.push_back(cat("static void glaf_nat_copy_out(const glaf_nat_args* "
                    "glaf_nat_a", mask_param, ") {"));
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const Grid& g = p.grid(slots[i].grid);
    const std::string name = storage_name(g);
    const std::string ty = nat_type(g.elem_type, model);
    if (g.dims.empty()) {
      out.push_back(guard(i, cat("  glaf_nat_a->grids[", i, "][0] = (double)",
                                 name, ";")));
    } else if (ty == "double") {
      out.push_back(guard(i, cat("  memcpy(glaf_nat_a->grids[", i, "], ",
                                 name, ", ", slots[i].elements,
                                 " * sizeof(double));")));
    } else {
      out.push_back(guard(i, cat("  { const ", ty, "* restrict glaf_s = ",
                                 name,
                                 "; double* restrict glaf_d = "
                                 "glaf_nat_a->grids[", i,
                                 "]; long glaf_k; for (glaf_k = 0; glaf_k < ",
                                 slots[i].elements,
                                 "; ++glaf_k) glaf_d[glaf_k] = "
                                 "(double)glaf_s[glaf_k]; }")));
    }
  }
  out.push_back("}");
  const EffectsMap effects = masked ? compute_effects(p) : EffectsMap{};
  for (const AbiFunction& fn : functions) {
    if (!fn.supported) continue;
    out.push_back("");
    std::string touch_arg;
    std::string write_arg;
    if (masked) {
      // Transitive side-effect summary of this entry; a missing summary
      // degrades to copying everything, never to skipping a live slot.
      const Function* f = p.find_function(fn.name);
      const auto it = f != nullptr ? effects.find(f->id) : effects.end();
      std::vector<std::string> touch(slots.size(), "1");
      std::vector<std::string> write(slots.size(), "1");
      if (it != effects.end()) {
        for (std::size_t i = 0; i < slots.size(); ++i) {
          const bool reads = it->second.global_reads.count(slots[i].grid) > 0;
          const bool writes =
              it->second.global_writes.count(slots[i].grid) > 0;
          touch[i] = reads || writes ? "1" : "0";
          write[i] = writes ? "1" : "0";
        }
      }
      out.push_back(cat("static const unsigned char glaf_nat_touch_",
                        fn.symbol, "[] = {", join(touch, ","), "};"));
      out.push_back(cat("static const unsigned char glaf_nat_write_",
                        fn.symbol, "[] = {", join(write, ","), "};"));
      touch_arg = cat(", glaf_nat_touch_", fn.symbol);
      write_arg = cat(", glaf_nat_write_", fn.symbol);
    }
    out.push_back(cat("long ", fn.symbol, "(glaf_nat_args* glaf_nat_a) {"));
    out.push_back(cat("  long status = glaf_nat_copy_in(glaf_nat_a",
                      touch_arg, ");"));
    out.push_back("  if (status) return status;");
    std::vector<std::string> args;
    for (int i = 0; i < fn.num_scalar_params; ++i) {
      args.push_back(cat("glaf_nat_a->scalars[", i, "]"));
    }
    const std::string call = cat(fn.name, "(", join(args, ", "), ")");
    if (fn.returns_value) {
      out.push_back(cat("  glaf_nat_a->result = ", call, ";"));
    } else {
      out.push_back(cat("  ", call, ";"));
      out.push_back("  glaf_nat_a->result = 0.0;");
    }
    out.push_back(cat("  glaf_nat_copy_out(glaf_nat_a", write_arg, ");"));
    out.push_back("  return 0;");
    out.push_back("}");
  }
  out.push_back("");
  return join(out, "\n");
}

}  // namespace

StatusOr<KernelUnit> emit_kernel_unit(const Program& program,
                                      const ProgramAnalysis& analysis,
                                      const EmitOptions& options) {
  KernelUnit unit;
  for (const GridId id : program.global_grids) {
    const Grid& g = program.grid(id);
    if (g.is_struct()) {
      return unimplemented(cat("native: struct global grid '", g.name,
                               "' has no flat-argument-block layout"));
    }
    AbiSlot slot;
    slot.grid = id;
    slot.name = g.name;
    for (const Dim& d : g.dims) {
      const auto v = fold_with_globals(program, *d.extent);
      if (!v) {
        return unimplemented(cat("native: global grid '", g.name,
                                 "' has a non-constant extent"));
      }
      slot.elements *= static_cast<std::int64_t>(value_as_double(*v));
    }
    unit.slots.push_back(std::move(slot));
  }

  for (const Function& fn : program.functions) {
    AbiFunction abi;
    abi.name = fn.name;
    abi.symbol = cat("glaf_nat_call_", fn.name);
    abi.num_scalar_params = static_cast<int>(fn.params.size());
    abi.returns_value = fn.return_type != DataType::kVoid;
    abi.supported = true;
    for (const GridId id : fn.params) {
      const Grid& g = program.grid(id);
      if (!g.dims.empty() || g.is_struct()) {
        // C passes scalar parameters by value; array/struct parameters
        // would need host instances bound by name — per-call fallback.
        abi.supported = false;
        abi.reason = cat("parameter '", g.name, "' is not a plain scalar");
        break;
      }
    }
    unit.functions.push_back(std::move(abi));
  }

  // The opt tier applies the S4 interchange pass before lowering; a
  // reordered program needs a fresh analysis (verdict collapse depths and
  // partition dimensions are positional).
  const Program* prog = &program;
  const ProgramAnalysis* anal = &analysis;
  Program transformed;
  ProgramAnalysis reanalysis;
  if (options.model == NumericModel::kOpt) {
    OptPassResult pass = apply_opt_loop_transforms(program);
    if (pass.interchanged_steps > 0) {
      transformed = std::move(pass.program);
      reanalysis = analyze_program(transformed);
      prog = &transformed;
      anal = &reanalysis;
    }
  }

  // The host-parallel range ABI is an interp-tier feature (its bit-exact
  // partitioning argument is meaningless under reordered typed math), so
  // opt units are always serial.
  const bool parallel =
      options.parallel && options.model != NumericModel::kOpt;

  CodegenOptions copts;
  copts.language = Language::kC;
  copts.numeric_model = options.model;
  copts.emit_comments = false;
  // Parallel units are host-driven: bit-exact steps become range
  // functions dispatched through glaf_set_pfor. No OpenMP pragmas are
  // emitted — the schedule is the host pool's choice, not the kernel's.
  copts.enable_openmp = false;
  copts.host_parallel = parallel;
  copts.fuse_regions = options.fuse_regions;
  copts.policy = options.policy;
  copts.save_temporaries = options.save_temporaries;
  GeneratedCode code = generate_c(*prog, *anal, copts);
  unit.regions = code.regions;
  unit.source = cat(prelude_text(*prog, unit.slots, options.model),
                    code.source,
                    wrapper_text(*prog, unit.slots, unit.functions, parallel,
                                 unit.regions, options.model));
  return unit;
}

}  // namespace glaf::jit
