#include "jit/emit.hpp"

#include <map>
#include <vector>

#include "codegen/c.hpp"
#include "support/strings.hpp"

namespace glaf::jit {
namespace {

/// The C spelling of a slot's storage inside the unit (mirrors the C
/// back-end's base_name): COMMON members live in the interop struct,
/// TYPE elements in their parent variable.
std::string storage_name(const Grid& g) {
  if (g.external == ExternalKind::kCommon) {
    return cat(g.common_block, "_.", g.name);
  }
  if (!g.type_parent.empty()) return cat(g.type_parent, ".", g.name);
  return g.name;
}

/// Definitions the generated TU leaves to "the legacy objects": TYPE
/// parent variables (prepended — functions access parent.member), plus
/// storage for module externs and COMMON blocks (appended).
std::string prelude_text(const Program& p,
                         const std::vector<AbiSlot>& slots) {
  // Group TYPE elements by parent variable, in global_grids order.
  std::vector<std::string> parents;
  std::map<std::string, std::vector<const Grid*>> members;
  for (const AbiSlot& slot : slots) {
    const Grid& g = p.grid(slot.grid);
    if (g.type_parent.empty()) continue;
    if (members[g.type_parent].empty()) parents.push_back(g.type_parent);
    members[g.type_parent].push_back(&g);
  }
  if (parents.empty()) return "";
  std::vector<std::string> out;
  out.push_back("/* TYPE parent variables (storage the legacy module"
                " would provide) */");
  for (const std::string& parent : parents) {
    out.push_back(cat("static struct {"));
    for (const Grid* g : members[parent]) {
      // interp_math storage: everything is a double.
      std::int64_t elems = 1;
      for (const AbiSlot& slot : slots) {
        if (&p.grid(slot.grid) == g) elems = slot.elements;
      }
      out.push_back(g->dims.empty()
                        ? cat("  double ", g->name, ";")
                        : cat("  double ", g->name, "[", elems, "];"));
    }
    out.push_back(cat("} ", parent, ";"));
  }
  out.push_back("");
  return join(out, "\n") + "\n";
}

std::string wrapper_text(const Program& p, const std::vector<AbiSlot>& slots,
                         const std::vector<AbiFunction>& functions,
                         bool parallel,
                         const std::vector<ParallelRegion>& regions) {
  std::vector<std::string> out;
  out.push_back("");
  out.push_back("/* ---- native-engine ABI wrapper ---- */");
  out.push_back("#include <string.h>");
  out.push_back("");
  // Storage for module externs and COMMON blocks (harness role).
  std::map<std::string, bool> common_defined;
  for (const AbiSlot& slot : slots) {
    const Grid& g = p.grid(slot.grid);
    if (g.external == ExternalKind::kModule && g.type_parent.empty()) {
      out.push_back(g.dims.empty()
                        ? cat("double ", g.name, ";")
                        : cat("double ", g.name, "[", slot.elements, "];"));
    } else if (g.external == ExternalKind::kCommon &&
               !common_defined[g.common_block]) {
      common_defined[g.common_block] = true;
      out.push_back(cat("struct ", g.common_block, "_common ",
                        g.common_block, "_;"));
    }
  }
  out.push_back("");
  // The flat argument block. Must match NativeEngine's host-side mirror
  // (src/jit/engine.cpp) field for field.
  out.push_back("typedef struct {");
  out.push_back("  double* const* grids;   /* base pointer per slot */");
  out.push_back("  const long* extents;    /* element count per slot */");
  out.push_back("  const double* scalars;  /* entry call scalar args */");
  out.push_back("  long num_threads;");
  out.push_back("  double result;");
  out.push_back("} glaf_nat_args;");
  out.push_back("");
  out.push_back(cat("long glaf_nat_abi_version(void) { return ", kAbiVersion,
                    "; }"));
  out.push_back(cat("long glaf_nat_num_slots(void) { return ", slots.size(),
                    "; }"));
  // Whether this unit was emitted with host-driven parallel ranges (the
  // engine installs its pool through glaf_set_pfor when so).
  out.push_back(cat("long glaf_nat_parallel(void) { return ",
                    parallel ? 1 : 0, "; }"));
  // Static region metadata: how many dispatch regions the unit carries
  // and how many of them fused two or more steps into one fork/join.
  std::size_t fused = 0;
  for (const ParallelRegion& r : regions) {
    if (r.step_count >= 2) ++fused;
  }
  out.push_back(cat("long glaf_nat_regions(void) { return ", regions.size(),
                    "; }"));
  out.push_back(cat("long glaf_nat_fused_regions(void) { return ", fused,
                    "; }"));
  out.push_back("");
  // Copy-in validates every slot's element count first (a nonzero return
  // is 1 + the offending slot index), then copies host state into the
  // unit's storage; copy-out is the mirror image.
  out.push_back("static long glaf_nat_copy_in(const glaf_nat_args* glaf_nat_a) {");
  for (std::size_t i = 0; i < slots.size(); ++i) {
    out.push_back(cat("  if (glaf_nat_a->extents[", i, "] != ", slots[i].elements,
                      ") return ", i + 1, ";"));
  }
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const Grid& g = p.grid(slots[i].grid);
    const std::string name = storage_name(g);
    out.push_back(g.dims.empty()
                      ? cat("  ", name, " = glaf_nat_a->grids[", i, "][0];")
                      : cat("  memcpy(", name, ", glaf_nat_a->grids[", i, "], ",
                            slots[i].elements, " * sizeof(double));"));
  }
  out.push_back("  return 0;");
  out.push_back("}");
  out.push_back("");
  out.push_back("static void glaf_nat_copy_out(const glaf_nat_args* glaf_nat_a) {");
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const Grid& g = p.grid(slots[i].grid);
    const std::string name = storage_name(g);
    out.push_back(g.dims.empty()
                      ? cat("  glaf_nat_a->grids[", i, "][0] = ", name, ";")
                      : cat("  memcpy(glaf_nat_a->grids[", i, "], ", name, ", ",
                            slots[i].elements, " * sizeof(double));"));
  }
  out.push_back("}");
  for (const AbiFunction& fn : functions) {
    if (!fn.supported) continue;
    out.push_back("");
    out.push_back(cat("long ", fn.symbol, "(glaf_nat_args* glaf_nat_a) {"));
    out.push_back("  long status = glaf_nat_copy_in(glaf_nat_a);");
    out.push_back("  if (status) return status;");
    std::vector<std::string> args;
    for (int i = 0; i < fn.num_scalar_params; ++i) {
      args.push_back(cat("glaf_nat_a->scalars[", i, "]"));
    }
    const std::string call = cat(fn.name, "(", join(args, ", "), ")");
    if (fn.returns_value) {
      out.push_back(cat("  glaf_nat_a->result = ", call, ";"));
    } else {
      out.push_back(cat("  ", call, ";"));
      out.push_back("  glaf_nat_a->result = 0.0;");
    }
    out.push_back("  glaf_nat_copy_out(glaf_nat_a);");
    out.push_back("  return 0;");
    out.push_back("}");
  }
  out.push_back("");
  return join(out, "\n");
}

}  // namespace

StatusOr<KernelUnit> emit_kernel_unit(const Program& program,
                                      const ProgramAnalysis& analysis,
                                      const EmitOptions& options) {
  KernelUnit unit;
  for (const GridId id : program.global_grids) {
    const Grid& g = program.grid(id);
    if (g.is_struct()) {
      return unimplemented(cat("native: struct global grid '", g.name,
                               "' has no flat-argument-block layout"));
    }
    AbiSlot slot;
    slot.grid = id;
    slot.name = g.name;
    for (const Dim& d : g.dims) {
      const auto v = fold_with_globals(program, *d.extent);
      if (!v) {
        return unimplemented(cat("native: global grid '", g.name,
                                 "' has a non-constant extent"));
      }
      slot.elements *= static_cast<std::int64_t>(value_as_double(*v));
    }
    unit.slots.push_back(std::move(slot));
  }

  for (const Function& fn : program.functions) {
    AbiFunction abi;
    abi.name = fn.name;
    abi.symbol = cat("glaf_nat_call_", fn.name);
    abi.num_scalar_params = static_cast<int>(fn.params.size());
    abi.returns_value = fn.return_type != DataType::kVoid;
    abi.supported = true;
    for (const GridId id : fn.params) {
      const Grid& g = program.grid(id);
      if (!g.dims.empty() || g.is_struct()) {
        // C passes scalar parameters by value; array/struct parameters
        // would need host instances bound by name — per-call fallback.
        abi.supported = false;
        abi.reason = cat("parameter '", g.name, "' is not a plain scalar");
        break;
      }
    }
    unit.functions.push_back(std::move(abi));
  }

  CodegenOptions copts;
  copts.language = Language::kC;
  copts.interp_math = true;
  copts.emit_comments = false;
  // Parallel units are host-driven: bit-exact steps become range
  // functions dispatched through glaf_set_pfor. No OpenMP pragmas are
  // emitted — the schedule is the host pool's choice, not the kernel's.
  copts.enable_openmp = false;
  copts.host_parallel = options.parallel;
  copts.fuse_regions = options.fuse_regions;
  copts.policy = options.policy;
  copts.save_temporaries = options.save_temporaries;
  GeneratedCode code = generate_c(program, analysis, copts);
  unit.regions = code.regions;
  unit.source = cat(prelude_text(program, unit.slots), code.source,
                    wrapper_text(program, unit.slots, unit.functions,
                                 options.parallel, unit.regions));
  return unit;
}

}  // namespace glaf::jit
