#include "analysis/access.hpp"

#include <functional>

#include "core/libfuncs.hpp"

namespace glaf {
namespace {

/// Walks a step's statements, recording accesses.
class Collector {
 public:
  Collector(const Program& p, const EffectsMap& effects,
            std::set<std::string> index_vars, StepAccesses* out)
      : p_(p), effects_(effects), index_vars_(std::move(index_vars)),
        out_(out) {}

  void walk_body(const std::vector<Stmt>& body, bool conditional) {
    for (std::size_t i = 0; i < body.size(); ++i) {
      // Top-level ordinal only advances at depth 0; nested statements share
      // their ancestor's ordinal for before/after reasoning.
      if (depth_ == 0) stmt_index_ = i;
      walk_stmt(body[i], conditional);
    }
  }

 private:
  void walk_stmt(const Stmt& s, bool conditional) {
    switch (s.kind) {
      case Stmt::Kind::kAssign: {
        for (const ExprPtr& sub : s.lhs.subscripts) {
          collect_reads(*sub, conditional);
        }
        collect_reads(*s.rhs, conditional);
        add_access(s.lhs.grid, s.lhs.field, /*write=*/true, conditional,
                   s.lhs.subscripts);
        break;
      }
      case Stmt::Kind::kIf: {
        for (const IfArm& arm : s.arms) {
          collect_reads(*arm.cond, conditional);
          ++depth_;
          walk_body(arm.body, /*conditional=*/true);
          --depth_;
        }
        ++depth_;
        walk_body(s.else_body, /*conditional=*/true);
        --depth_;
        break;
      }
      case Stmt::Kind::kCallSub:
        handle_call(s.callee, s.args, conditional);
        break;
      case Stmt::Kind::kReturn:
        out_->has_return = true;
        if (s.ret) collect_reads(*s.ret, conditional);
        break;
    }
  }

  void collect_reads(const Expr& e, bool conditional) {
    switch (e.kind) {
      case Expr::Kind::kGridRead: {
        for (const ExprPtr& sub : e.args) collect_reads(*sub, conditional);
        add_access(e.grid, e.field, /*write=*/false, conditional, e.args);
        return;
      }
      case Expr::Kind::kCall: {
        if (find_lib_func(e.callee) != nullptr) {
          for (const ExprPtr& a : e.args) collect_reads(*a, conditional);
          return;
        }
        handle_call(e.callee, e.args, conditional);
        return;
      }
      default:
        for (const ExprPtr& a : e.args) collect_reads(*a, conditional);
        return;
    }
  }

  void handle_call(const std::string& callee,
                   const std::vector<ExprPtr>& args, bool conditional) {
    out_->callees.push_back(callee);
    const Function* target = p_.find_function(callee);
    const FunctionEffects* fx = nullptr;
    if (target != nullptr) {
      const auto it = effects_.find(target->id);
      if (it != effects_.end()) fx = &it->second;
    }
    for (std::size_t i = 0; i < args.size(); ++i) {
      const Expr& a = *args[i];
      const bool whole =
          a.kind == Expr::Kind::kGridRead && a.args.empty() &&
          !p_.grid(a.grid).is_scalar();
      if (whole) {
        const bool read = fx == nullptr || i >= fx->param_read.size() ||
                          fx->param_read[i];
        const bool written = fx == nullptr || i >= fx->param_written.size() ||
                             fx->param_written[i];
        if (read) add_whole_access(a.grid, a.field, false, conditional);
        if (written) add_whole_access(a.grid, a.field, true, conditional);
      } else {
        collect_reads(a, conditional);
      }
    }
    // Globals the callee touches behave like unanalyzable whole-grid
    // accesses from this loop's perspective.
    if (fx != nullptr) {
      for (const GridId g : fx->global_reads) {
        add_whole_access(g, {}, false, conditional);
      }
      for (const GridId g : fx->global_writes) {
        add_whole_access(g, {}, true, conditional);
      }
    }
  }

  void add_access(GridId grid, const std::string& field, bool write,
                  bool conditional, const std::vector<ExprPtr>& subscripts) {
    if (grid == kInvalidGridId) return;
    ArrayAccess acc;
    acc.grid = grid;
    acc.field = field;
    acc.is_write = write;
    acc.conditional = conditional;
    acc.stmt_index = stmt_index_;
    if (subscripts.empty() && !p_.grid(grid).is_scalar()) {
      acc.whole_grid = true;
    } else {
      acc.subs.reserve(subscripts.size());
      for (const ExprPtr& sub : subscripts) {
        acc.subs.push_back(extract_affine(*sub, index_vars_));
      }
    }
    out_->accesses.push_back(std::move(acc));
  }

  void add_whole_access(GridId grid, const std::string& field, bool write,
                        bool conditional) {
    ArrayAccess acc;
    acc.grid = grid;
    acc.field = field;
    acc.is_write = write;
    acc.conditional = conditional;
    acc.whole_grid = !p_.grid(grid).is_scalar();
    acc.stmt_index = stmt_index_;
    out_->accesses.push_back(std::move(acc));
  }

  const Program& p_;
  const EffectsMap& effects_;
  std::set<std::string> index_vars_;
  StepAccesses* out_;
  std::size_t stmt_index_ = 0;
  int depth_ = 0;
};

}  // namespace

StepAccesses collect_step_accesses(const Program& program, const Step& step,
                                   const EffectsMap& effects) {
  std::set<std::string> index_vars;
  for (const LoopSpec& loop : step.loops) index_vars.insert(loop.index_var);
  StepAccesses out;
  Collector collector(program, effects, std::move(index_vars), &out);
  collector.walk_body(step.body, /*conditional=*/false);
  return out;
}

namespace {

void merge_callee_effects(const Program& p, const Function& caller,
                          const FunctionEffects& callee_fx,
                          const std::vector<ExprPtr>& args,
                          FunctionEffects* out) {
  const auto classify = [&](GridId g, bool write) {
    const Grid& grid = p.grid(g);
    if (grid.is_global) {
      (write ? out->global_writes : out->global_reads).insert(g);
      return;
    }
    if (grid.is_param()) {
      for (std::size_t i = 0; i < caller.params.size(); ++i) {
        if (caller.params[i] == g) {
          (write ? out->param_written : out->param_read)[i] = true;
        }
      }
    }
    // locals of the caller: invisible outside
  };
  for (const GridId g : callee_fx.global_reads) classify(g, false);
  for (const GridId g : callee_fx.global_writes) classify(g, true);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const Expr& a = *args[i];
    if (a.kind == Expr::Kind::kGridRead && a.args.empty() &&
        !p.grid(a.grid).is_scalar()) {
      if (i < callee_fx.param_read.size() && callee_fx.param_read[i]) {
        classify(a.grid, false);
      }
      if (i < callee_fx.param_written.size() && callee_fx.param_written[i]) {
        classify(a.grid, true);
      }
    }
  }
}

void compute_one(const Program& p, const Function& fn, EffectsMap* map);

const FunctionEffects& effects_of(const Program& p, const std::string& name,
                                  EffectsMap* map) {
  static const FunctionEffects kEmpty;
  const Function* fn = p.find_function(name);
  if (fn == nullptr) return kEmpty;
  if (map->count(fn->id) == 0) compute_one(p, *fn, map);
  return map->at(fn->id);
}

void compute_one(const Program& p, const Function& fn, EffectsMap* map) {
  FunctionEffects fx;
  fx.param_read.assign(fn.params.size(), false);
  fx.param_written.assign(fn.params.size(), false);
  // Seed to break accidental cycles defensively (validator rejects them).
  (*map)[fn.id] = fx;

  const auto classify = [&](GridId g, bool write) {
    const Grid& grid = p.grid(g);
    if (grid.is_global) {
      (write ? fx.global_writes : fx.global_reads).insert(g);
      return;
    }
    if (grid.is_param()) {
      for (std::size_t i = 0; i < fn.params.size(); ++i) {
        if (fn.params[i] == g) {
          (write ? fx.param_written : fx.param_read)[i] = true;
        }
      }
    }
  };

  const std::function<void(const Expr&)> scan_reads = [&](const Expr& e) {
    if (e.kind == Expr::Kind::kGridRead) {
      classify(e.grid, false);
    } else if (e.kind == Expr::Kind::kCall &&
               find_lib_func(e.callee) == nullptr) {
      merge_callee_effects(p, fn, effects_of(p, e.callee, map), e.args, &fx);
      for (const ExprPtr& a : e.args) {
        // Scalar args are reads; whole-grid args handled by the merge.
        if (!(a->kind == Expr::Kind::kGridRead && a->args.empty() &&
              !p.grid(a->grid).is_scalar())) {
          scan_reads(*a);
        }
      }
      return;
    }
    for (const ExprPtr& a : e.args) scan_reads(*a);
  };

  for (const Step& step : fn.steps) {
    for (const LoopSpec& loop : step.loops) {
      for (const ExprPtr& b : {loop.begin, loop.end, loop.stride}) {
        if (b) scan_reads(*b);
      }
    }
    visit_stmts(step.body, [&](const Stmt& s) {
      switch (s.kind) {
        case Stmt::Kind::kAssign:
          classify(s.lhs.grid, true);
          for (const ExprPtr& sub : s.lhs.subscripts) scan_reads(*sub);
          scan_reads(*s.rhs);
          break;
        case Stmt::Kind::kIf:
          for (const IfArm& arm : s.arms) scan_reads(*arm.cond);
          break;
        case Stmt::Kind::kCallSub:
          merge_callee_effects(p, fn, effects_of(p, s.callee, map), s.args,
                               &fx);
          for (const ExprPtr& a : s.args) {
            if (!(a->kind == Expr::Kind::kGridRead && a->args.empty() &&
                  !p.grid(a->grid).is_scalar())) {
              scan_reads(*a);
            }
          }
          break;
        case Stmt::Kind::kReturn:
          if (s.ret) scan_reads(*s.ret);
          break;
      }
    });
    // Local grid extents may read size parameters.
  }
  (*map)[fn.id] = std::move(fx);
}

}  // namespace

EffectsMap compute_effects(const Program& program) {
  EffectsMap map;
  for (const Function& fn : program.functions) {
    if (map.count(fn.id) == 0) compute_one(program, fn, &map);
  }
  return map;
}

}  // namespace glaf
