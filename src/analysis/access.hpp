#pragma once
// Read/write-set extraction for steps and whole-function side-effect
// summaries (used to reason about steps whose loops contain subprogram
// calls — GLAF models interior loop nests as separate functions, §3.3, so
// interprocedural summaries are essential for parallelizing outer loops).

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/affine.hpp"
#include "core/program.hpp"

namespace glaf {

/// One array/scalar reference found in a step.
struct ArrayAccess {
  GridId grid = kInvalidGridId;
  std::string field;              ///< struct field ("" = none)
  bool is_write = false;
  bool whole_grid = false;        ///< passed whole to a call
  bool conditional = false;       ///< under an if-arm
  std::vector<AffineForm> subs;   ///< one per dimension (empty for scalars)
  std::size_t stmt_index = 0;     ///< top-level statement ordinal in the step
};

/// Location key: a (grid, field) pair — distinct fields of a struct grid
/// are distinct storage.
using LocationKey = std::pair<GridId, std::string>;

/// All accesses of a step, plus call information.
struct StepAccesses {
  std::vector<ArrayAccess> accesses;
  std::vector<std::string> callees;   ///< user functions called (any depth)
  bool has_return = false;            ///< early return inside the body
};

/// Side-effect summary of one function: which Global Scope grids it reads
/// or writes (transitively, through callees) and which of its parameters
/// it reads/writes.
struct FunctionEffects {
  std::set<GridId> global_reads;
  std::set<GridId> global_writes;
  std::vector<bool> param_read;
  std::vector<bool> param_written;
};

using EffectsMap = std::map<FunctionId, FunctionEffects>;

/// Collect every access in `step`, with affine forms relative to the
/// step's own index variables. Calls contribute accesses for their
/// whole-grid arguments and (via `effects`) the globals the callee touches.
StepAccesses collect_step_accesses(const Program& program, const Step& step,
                                   const EffectsMap& effects);

/// Bottom-up interprocedural effect computation (call graph is acyclic —
/// guaranteed by validation).
EffectsMap compute_effects(const Program& program);

}  // namespace glaf
