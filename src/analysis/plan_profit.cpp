#include "analysis/plan_profit.hpp"

#include <algorithm>

#include "core/expr.hpp"

namespace glaf {
namespace {

constexpr std::int64_t kUnknownTrips = 16;
constexpr std::int64_t kCallWeight = 16;

/// Node-count weight of an expression; library/user calls count extra
/// for the transfer and the (unseen) callee body.
std::int64_t expr_units(const ExprPtr& e) {
  if (!e) return 0;
  std::int64_t units = 0;
  visit_exprs(e, [&](const Expr& node) {
    units += node.kind == Expr::Kind::kCall ? 8 : 1;
  });
  return units;
}

std::int64_t body_units(const std::vector<Stmt>& body);

std::int64_t stmt_units(const Stmt& s) {
  switch (s.kind) {
    case Stmt::Kind::kAssign: {
      std::int64_t units = 1 + expr_units(s.rhs);
      for (const ExprPtr& sub : s.lhs.subscripts) units += expr_units(sub);
      return units;
    }
    case Stmt::Kind::kIf: {
      // One arm executes: cost the condition chain plus the widest arm.
      std::int64_t units = 0;
      std::int64_t widest = body_units(s.else_body);
      for (const IfArm& arm : s.arms) {
        units += expr_units(arm.cond);
        widest = std::max(widest, body_units(arm.body));
      }
      return units + widest;
    }
    case Stmt::Kind::kCallSub: {
      std::int64_t units = kCallWeight;
      for (const ExprPtr& a : s.args) units += expr_units(a);
      return units;
    }
    case Stmt::Kind::kReturn:
      return 1 + expr_units(s.ret);
  }
  return 1;
}

std::int64_t body_units(const std::vector<Stmt>& body) {
  std::int64_t units = 0;
  for (const Stmt& s : body) units += stmt_units(s);
  return units;
}

/// Trip count of one loop, folded through never-written globals;
/// unfoldable bounds get a nominal estimate.
std::int64_t loop_trips(const Program& program, const LoopSpec& loop) {
  const auto fold = [&](const ExprPtr& e) -> std::optional<std::int64_t> {
    if (!e) return std::nullopt;
    const auto v = fold_with_globals(program, *e);
    if (!v) return std::nullopt;
    return static_cast<std::int64_t>(value_as_double(*v));
  };
  const auto begin = fold(loop.begin);
  const auto end = fold(loop.end);
  const std::int64_t stride = loop.stride ? fold(loop.stride).value_or(1) : 1;
  if (!begin || !end || stride == 0) return kUnknownTrips;
  const std::int64_t span = stride > 0 ? *end - *begin : *begin - *end;
  if (span < 0) return 0;
  return span / (stride < 0 ? -stride : stride) + 1;
}

}  // namespace

std::int64_t step_units_per_iter(const Program& program, const Step& step,
                                 const StepVerdict& v) {
  const std::size_t depth = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(v.collapse, 1)), step.loops.size());
  std::int64_t units = std::max<std::int64_t>(1, body_units(step.body));
  for (std::size_t d = 0; d < step.loops.size(); ++d) {
    // Loops covered by the dispatch range contribute no per-iteration
    // multiplier: the owner dimension for banded steps, the whole
    // collapse band for flat dispatch.
    const bool covered = v.exact_partition_dim >= 0
                             ? static_cast<int>(d) == v.exact_partition_dim
                             : d < depth;
    if (covered) continue;
    const std::int64_t trips =
        std::max<std::int64_t>(0, loop_trips(program, step.loops[d]));
    units *= std::min<std::int64_t>(std::max<std::int64_t>(trips, 1),
                                    kMaxUnitsPerIter);
    if (units >= kMaxUnitsPerIter) return kMaxUnitsPerIter;
  }
  return std::min(std::max<std::int64_t>(units, 1), kMaxUnitsPerIter);
}

}  // namespace glaf
