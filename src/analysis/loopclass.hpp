#pragma once
// Loop classification used by the Table 2 directive policies.
//
// §4.1.2 of the paper removes OpenMP directives from three successive
// classes of loops (producing GLAF-parallel v1, v2, v3):
//   v1: initializations to zero, and single-value (broadcast) loads;
//   v2: remaining simple single loops (few assignments, incl. reductions);
//   v3: simple double loops without control structure.
// Everything else ("complex": the two large longwave_entropy_model loops)
// keeps its directives. This header assigns each step one of those classes.

#include "core/program.hpp"

namespace glaf {

enum class LoopClass : std::uint8_t {
  kStraightLine,  ///< step has no loops
  kInitZero,      ///< every assignment stores literal zero
  kBroadcast,     ///< single assignment of a loop-invariant value
  kSimpleSingle,  ///< one loop, <=4 plain assignments, no control flow
  kSimpleDouble,  ///< two nested loops, <=4 plain assignments, no control flow
  kComplex,       ///< anything else (ifs, calls, many statements, 3+ deep)
};

const char* to_string(LoopClass c);

/// Classify a step. Purely syntactic; independent of the dependence
/// analysis verdict.
LoopClass classify_loop(const Program& program, const Step& step);

}  // namespace glaf
