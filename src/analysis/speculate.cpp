#include "analysis/speculate.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "analysis/access.hpp"
#include "core/serialize.hpp"
#include "support/hash.hpp"
#include "support/strings.hpp"

namespace glaf {

namespace {

/// Sentinel iteration: the step's outer loop has not started yet.
constexpr std::int64_t kPreLoop = std::numeric_limits<std::int64_t>::min();

}  // namespace

std::uint64_t dep_profile_program_hash(const Program& program) {
  return fnv1a64(serialize_program(program));
}

// --- DepProfiler -----------------------------------------------------------

void DepProfiler::begin_step(const std::string& function, std::size_t step) {
  DepProfileStep* agg = &steps_[{function, step}];
  ++agg->invocations;
  Active a;
  a.agg = agg;
  a.iter = kPreLoop;
  stack_.push_back(std::move(a));
}

void DepProfiler::set_iteration(std::int64_t iter) {
  if (stack_.empty()) return;
  Active& a = stack_.back();
  a.iter = iter;
  a.in_loop = true;
  ++a.agg->iterations;
}

void DepProfiler::record(const void* addr, bool is_write) {
  if (stack_.empty()) return;
  Active& a = stack_.back();
  if (!a.in_loop) return;
  auto [it, fresh] = a.elems.try_emplace(addr);
  Elem& e = it->second;
  if (fresh) {
    e.iter = a.iter;
    e.wrote = is_write;
    return;
  }
  if (e.iter != a.iter) e.multi = true;
  e.wrote = e.wrote || is_write;
  if (e.multi && e.wrote && !e.counted) {
    e.counted = true;
    ++a.agg->conflicts;
  }
}

void DepProfiler::record_range(const double* base, std::int64_t count,
                               bool is_write) {
  if (stack_.empty() || !stack_.back().in_loop) return;
  for (std::int64_t i = 0; i < count; ++i) record(base + i, is_write);
}

void DepProfiler::end_step() {
  if (!stack_.empty()) stack_.pop_back();
}

DepProfile DepProfiler::profile(std::uint64_t program_hash) const {
  DepProfile p;
  p.program_hash = program_hash;
  p.steps = steps_;
  return p;
}

// --- serialization ---------------------------------------------------------

std::string serialize_dep_profile(const DepProfile& profile) {
  std::ostringstream os;
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016" PRIx64, profile.program_hash);
  os << "glaf-dep-profile 1\n";
  os << "program " << hex << "\n";
  for (const auto& [key, s] : profile.steps) {
    os << "step " << key.first << " " << key.second << " " << s.invocations
       << " " << s.iterations << " " << s.conflicts << "\n";
  }
  return os.str();
}

StatusOr<DepProfile> parse_dep_profile(const std::string& text) {
  DepProfile profile;
  bool saw_header = false;
  bool saw_program = false;
  std::size_t line_no = 0;
  for (const std::string& raw : split_lines(text)) {
    ++line_no;
    const std::string line(trim(raw));
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header) {
      if (line != "glaf-dep-profile 1") {
        return invalid_argument(
            cat("dep profile: bad header on line ", line_no,
                " (want \"glaf-dep-profile 1\", got \"", line, "\")"));
      }
      saw_header = true;
      continue;
    }
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    if (tag == "program") {
      std::string hex;
      is >> hex;
      if (hex.empty() || is.fail()) {
        return invalid_argument(
            cat("dep profile: malformed program line ", line_no));
      }
      char* end = nullptr;
      profile.program_hash = std::strtoull(hex.c_str(), &end, 16);
      if (end == nullptr || *end != '\0') {
        return invalid_argument(
            cat("dep profile: bad program hash \"", hex, "\" on line ",
                line_no));
      }
      saw_program = true;
    } else if (tag == "step") {
      std::string fn;
      std::size_t index = 0;
      DepProfileStep s;
      is >> fn >> index >> s.invocations >> s.iterations >> s.conflicts;
      if (fn.empty() || is.fail()) {
        return invalid_argument(
            cat("dep profile: malformed step line ", line_no));
      }
      profile.steps[{fn, index}] = s;
    } else {
      return invalid_argument(
          cat("dep profile: unknown record \"", tag, "\" on line ", line_no));
    }
  }
  if (!saw_header) return invalid_argument("dep profile: empty input");
  if (!saw_program) {
    return invalid_argument("dep profile: missing program hash line");
  }
  return profile;
}

// --- planner pass ----------------------------------------------------------

StatusOr<SpeculationSummary> apply_speculation(const Program& program,
                                               ProgramAnalysis* analysis,
                                               const DepProfile& profile) {
  const std::uint64_t want = dep_profile_program_hash(program);
  if (profile.program_hash != want) {
    char got_hex[32];
    char want_hex[32];
    std::snprintf(got_hex, sizeof(got_hex), "%016" PRIx64,
                  profile.program_hash);
    std::snprintf(want_hex, sizeof(want_hex), "%016" PRIx64, want);
    return failed_precondition(
        cat("dependence profile was recorded for a different program "
            "(profile hash ", got_hex, ", program hash ", want_hex, ")"));
  }

  SpeculationSummary summary;
  for (const Function& fn : program.functions) {
    auto verdicts = analysis->verdicts.find(fn.id);
    if (verdicts == analysis->verdicts.end()) continue;
    for (std::size_t s = 0; s < fn.steps.size(); ++s) {
      if (s >= verdicts->second.size()) break;
      StepVerdict& v = verdicts->second[s];
      // Candidates: steps the static analysis blocked, in shapes the
      // validation leg can safely re-run — a loop with no callees, no
      // early return, and no critical section.
      if (!v.has_loop || v.parallelizable || v.needs_critical) continue;
      const StepAccesses accesses =
          collect_step_accesses(program, fn.steps[s], analysis->effects);
      if (!accesses.callees.empty() || accesses.has_return) continue;
      const auto prof = profile.steps.find({fn.name, s});
      if (prof == profile.steps.end() || prof->second.invocations == 0 ||
          prof->second.iterations == 0) {
        ++summary.unprofiled;
        v.notes.push_back("speculation: no profile coverage");
        continue;
      }
      if (prof->second.conflicts > 0) {
        ++summary.conflicted;
        v.notes.push_back(
            cat("speculation rejected: ", prof->second.conflicts,
                " observed cross-iteration conflict(s)"));
        continue;
      }
      // Profile-clean: promote, and record the (grid, field) locations
      // whose per-rank access bands the runtime validator must check.
      std::map<LocationKey, bool> touched;
      for (const ArrayAccess& a : accesses.accesses) {
        bool& written = touched[{a.grid, a.field}];
        written = written || a.is_write;
      }
      v.speculative = true;
      v.spec_bands.clear();
      for (const auto& [key, written] : touched) {
        StepVerdict::SpecBand band;
        band.grid = key.first;
        band.field = key.second;
        band.written = written;
        v.spec_bands.push_back(band);
      }
      v.notes.push_back(
          cat("speculative: profile clean over ", prof->second.iterations,
              " iteration(s) in ", prof->second.invocations,
              " invocation(s)"));
      ++summary.promoted;
    }
  }
  return summary;
}

}  // namespace glaf
