#pragma once
// Reduction-pattern recognition: statements of the form
//     acc = acc + expr        (also -, *, MIN, MAX)
// where `acc` is loop-invariant. Loops whose only carried dependences are
// such accumulations are parallelized with an OpenMP REDUCTION clause
// (the paper notes loops "that contain reductions (and that have been
// identified as such by GLAF auto-parallelization back-end)", §4.1.2).

#include <optional>
#include <set>
#include <string>

#include "core/program.hpp"

namespace glaf {

/// Supported reduction operators.
enum class ReduceOp : std::uint8_t { kSum, kProd, kMin, kMax };

const char* to_string(ReduceOp op);
/// OpenMP clause spelling: "+", "*", "min", "max".
const char* omp_spelling(ReduceOp op);

/// A recognized reduction statement.
struct ReductionMatch {
  GridId grid = kInvalidGridId;
  std::string field;
  ReduceOp op = ReduceOp::kSum;
};

/// Try to match `assign` as a reduction w.r.t. the given loop indices:
/// the target's subscripts must be invariant, the right-hand side must
/// combine the target's own value exactly once with an expression that
/// does not otherwise reference the target grid.
std::optional<ReductionMatch> match_reduction(
    const Program& program, const Stmt& assign,
    const std::set<std::string>& loop_vars);

/// Matches the atomic-update shape: target = target +/- expr where the
/// subscripts *vary* with the loop (possibly through indirection) and the
/// rhs does not otherwise use the target. Such updates are emitted with
/// OMP ATOMIC (paper §4.2.1: "Atomic update clauses are added to parallel
/// updates to module-scope arrays").
bool matches_atomic_update(const Program& program, const Stmt& assign);

}  // namespace glaf
