#pragma once
// IR transformations of the code-optimization back-end.
//
// Paper §2.1: "Code optimization includes options for guiding the code
// generation by providing different data layout (array-of-structures vs.
// structure-of-arrays), loop collapsing, or loop interchange options."
// Data layout and collapsing are CodegenOptions (they only change emitted
// code); loop interchange reorders the IR itself and must be proven
// legal first.

#include "core/program.hpp"
#include "support/status.hpp"

namespace glaf {

/// Can loops `a` and `b` of this step be exchanged?
///
/// Legality (conservative): both positions exist; no loop in [min(a,b),
/// max(a,b)] has bounds referencing an index variable of another loop in
/// that range (perfect rectangular sub-nest); and the step carries no
/// dependence on either index — established by requiring the analyzed
/// collapse depth to cover both loops (a fully parallel band permits any
/// permutation).
Status can_interchange(const Program& program, const Function& fn,
                       std::size_t step_index, std::size_t a, std::size_t b);

/// Return a copy of `program` with loops `a` and `b` of the named
/// function's step exchanged. Fails with the legality diagnostic when the
/// transform cannot be proven safe.
StatusOr<Program> interchange_loops(const Program& program,
                                    const std::string& function,
                                    const std::string& step, std::size_t a,
                                    std::size_t b);

/// Result of the inlining pass.
struct InlineResult {
  Program program;
  int inlined_calls = 0;
};

/// Inline trivial subroutine calls: CALLs whose callee is void, has no
/// locals, exactly one loop-free step, no nested calls or returns, and
/// whose arguments are all plain grid references (whole grids or
/// scalars). The callee's statements replace the CALL with parameters
/// substituted by the argument grids.
///
/// §4.1.2 discusses exactly this effect: GLAF's enforced structure
/// creates many small functions, and "smaller functions can be
/// automatically inlined by the compiler"; this pass performs the same
/// transformation at the IR level so every back-end benefits.
InlineResult inline_trivial_calls(const Program& program);

/// Result of the constant-folding pass.
struct FoldResult {
  Program program;
  int folded_exprs = 0;  ///< subtrees replaced by literals
};

/// Fold constant subexpressions throughout the program — including reads
/// of never-written global scalars with initial data (size parameters),
/// via fold_with_globals. Loop bounds, subscripts, conditions and
/// right-hand sides are all folded; a folded condition does NOT eliminate
/// branches (that is left to the reader of the report — removing user
/// statements silently would hide authoring mistakes).
FoldResult fold_constants(const Program& program);

}  // namespace glaf
