#pragma once
// The auto-parallelization back-end's decision procedure: for each step,
// decide whether its loop nest can run in parallel and with which OpenMP
// clauses (PRIVATE, REDUCTION, ATOMIC, CRITICAL, COLLAPSE).
//
// GLAF produced a first automatic cut; the paper's FUN3D case study then
// applied a small set of manual tweaks (§4.2.1: SAVE attributes, private /
// thread-private declarations, copyprivate pointers, multi-variable
// reductions, atomic updates, a critical section in ioff_search). The
// `ManualTweaks` structure reproduces exactly that interface.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/access.hpp"
#include "analysis/loopclass.hpp"
#include "analysis/reduction.hpp"
#include "core/program.hpp"

namespace glaf {

/// One REDUCTION clause entry.
struct ReductionClause {
  GridId grid = kInvalidGridId;
  std::string field;
  ReduceOp op = ReduceOp::kSum;
};

/// The §4.2.1 manual adjustments, applied per function.
struct ManualTweaks {
  std::set<GridId> force_private;      ///< declare private/threadprivate
  std::set<GridId> force_firstprivate; ///< copyprivate-style sharing inward
  std::set<GridId> force_atomic;       ///< allow atomic accumulation
  bool allow_critical = true;          ///< wrap early-return in OMP CRITICAL
};

/// Per-step analysis result.
struct StepVerdict {
  bool has_loop = false;
  bool parallelizable = false;
  int collapse = 1;  ///< perfectly-nested parallel depth (COLLAPSE clause)

  std::vector<GridId> private_grids;
  std::vector<GridId> firstprivate_grids;
  std::vector<ReductionClause> reductions;
  std::vector<GridId> atomic_grids;
  bool needs_critical = false;  ///< early-return section (ioff_search case)

  LoopClass loop_class = LoopClass::kStraightLine;
  std::int64_t trip_count = -1;  ///< product of constant extents, -1 unknown
  std::int64_t outer_trip_count = -1;  ///< outermost loop's trip alone
  bool compiler_vectorizable = false;

  /// Bitwise-deterministic parallel execution is possible: no critical
  /// section, no callees or early returns, only exact reductions
  /// (+/min/max over integer or logical elements — order-independent in
  /// double arithmetic), and every atomic grid covered by an ownership
  /// dimension (below). Such a step produces results identical to serial
  /// execution under any partition of the validated iteration space.
  bool bit_exact = false;
  /// Partition constraint that makes `bit_exact` hold: -1 = the collapsed
  /// flat iteration space may be split freely; >= 0 = split only along
  /// this loop dimension, whose index variable appears as a plain
  /// subscript at one common position in every access of every atomic
  /// grid — each element is then updated by exactly one band, in serial
  /// program order, so the "atomic" float sums need no atomics at all.
  int exact_partition_dim = -1;

  /// One (grid, field) location the runtime validator must band-check
  /// when a speculative step executes (analysis/speculate.hpp).
  struct SpecBand {
    GridId grid = kInvalidGridId;
    std::string field;
    bool written = false;  ///< any write reaches this location in the step
  };

  /// Profile-guided speculation (policy v4): the static analysis left
  /// the step serial, but a dependence profile observed no
  /// cross-iteration conflict, so the engines may run it speculatively
  /// in parallel — logging per-rank access bands over `spec_bands`,
  /// validating after the join, and re-running serially on conflict.
  bool speculative = false;
  std::vector<SpecBand> spec_bands;

  std::vector<std::string> notes;  ///< human-readable reasoning trail
};

/// Analyze one step of `fn` with optional manual tweaks.
StepVerdict analyze_step(const Program& program, const Function& fn,
                         const Step& step, const EffectsMap& effects,
                         const ManualTweaks* tweaks = nullptr);

/// Whole-program analysis: effects + one verdict per (function, step).
struct ProgramAnalysis {
  EffectsMap effects;
  std::map<FunctionId, std::vector<StepVerdict>> verdicts;

  [[nodiscard]] const StepVerdict& verdict(FunctionId fn,
                                           std::size_t step) const {
    return verdicts.at(fn).at(step);
  }
};

/// Tweaks are keyed by function name ("" applies to every function).
using TweaksByFunction = std::map<std::string, ManualTweaks>;

ProgramAnalysis analyze_program(const Program& program,
                                const TweaksByFunction& tweaks = {});

/// Render a one-line summary of a verdict ("parallel collapse(2)
/// private(a,b) reduction(+:s)") for reports and tests.
std::string verdict_to_string(const Program& program, const StepVerdict& v);

}  // namespace glaf
