#include "analysis/parallelize.hpp"

#include <algorithm>
#include <map>

#include "analysis/dependence.hpp"
#include "support/strings.hpp"

namespace glaf {
namespace {

using Buckets = std::map<LocationKey, std::vector<const ArrayAccess*>>;

Buckets bucket_by_location(const StepAccesses& accesses) {
  Buckets buckets;
  for (const ArrayAccess& a : accesses.accesses) {
    buckets[{a.grid, a.field}].push_back(&a);
  }
  return buckets;
}

bool any_write(const std::vector<const ArrayAccess*>& accs) {
  return std::any_of(accs.begin(), accs.end(),
                     [](const ArrayAccess* a) { return a->is_write; });
}

/// Constant trip count of one loop (inclusive bounds), or -1. Bounds fold
/// through never-written global size parameters (fold_with_globals), so
/// loops like "DO k = 0, n_levels-1" get concrete trip counts.
std::int64_t loop_trip_count(const Program& p, const LoopSpec& loop) {
  if (!loop.begin || !loop.end) return -1;
  const auto b = fold_with_globals(p, *loop.begin);
  const auto e = fold_with_globals(p, *loop.end);
  if (!b || !e) return -1;
  std::int64_t stride = 1;
  if (loop.stride) {
    const auto s = fold_with_globals(p, *loop.stride);
    if (!s) return -1;
    stride = static_cast<std::int64_t>(value_as_double(*s));
    if (stride == 0) return -1;
  }
  const auto lo = static_cast<std::int64_t>(value_as_double(*b));
  const auto hi = static_cast<std::int64_t>(value_as_double(*e));
  const std::int64_t span = stride > 0 ? hi - lo : lo - hi;
  if (span < 0) return 0;
  return span / std::llabs(stride) + 1;
}

bool expr_uses_vars(const ExprPtr& e, const std::set<std::string>& vars) {
  if (!e) return false;
  bool used = false;
  visit_exprs(e, [&](const Expr& node) {
    if (node.kind == Expr::Kind::kIndex && vars.count(node.index_name) != 0) {
      used = true;
    }
  });
  return used;
}

/// Scans a step body classifying every statement that touches `loc`:
/// returns true when ALL writes are reductions of one common operator and
/// no other statement reads the location.
class ReductionScan {
 public:
  ReductionScan(const Program& p, const LocationKey& loc,
                const std::set<std::string>& loop_vars)
      : p_(p), loc_(loc), loop_vars_(loop_vars) {}

  bool scan(const std::vector<Stmt>& body) {
    walk(body);
    return ok_ && saw_write_;
  }
  [[nodiscard]] ReduceOp op() const { return op_; }

 private:
  void walk(const std::vector<Stmt>& body) {
    for (const Stmt& s : body) {
      switch (s.kind) {
        case Stmt::Kind::kAssign: {
          const bool writes_loc =
              s.lhs.grid == loc_.first && s.lhs.field == loc_.second;
          if (writes_loc) {
            const auto m = match_reduction(p_, s, loop_vars_);
            if (!m || (saw_write_ && m->op != op_)) {
              ok_ = false;
            } else {
              op_ = m->op;
              saw_write_ = true;
            }
            // The self-read inside the reduction is fine; subscripts and
            // the combined expression must not read the location (already
            // enforced by match_reduction for rhs).
            for (const ExprPtr& sub : s.lhs.subscripts) check_expr(*sub);
          } else {
            if (reads_loc(*s.rhs)) ok_ = false;
            for (const ExprPtr& sub : s.lhs.subscripts) check_expr(*sub);
          }
          break;
        }
        case Stmt::Kind::kIf:
          for (const IfArm& arm : s.arms) {
            check_expr(*arm.cond);
            walk(arm.body);
          }
          walk(s.else_body);
          break;
        case Stmt::Kind::kCallSub:
          for (const ExprPtr& a : s.args) check_expr(*a);
          break;
        case Stmt::Kind::kReturn:
          if (s.ret) check_expr(*s.ret);
          break;
      }
    }
  }

  bool reads_loc(const Expr& e) const {
    if (e.kind == Expr::Kind::kGridRead && e.grid == loc_.first &&
        e.field == loc_.second) {
      return true;
    }
    for (const ExprPtr& a : e.args) {
      if (reads_loc(*a)) return true;
    }
    return false;
  }

  void check_expr(const Expr& e) {
    if (reads_loc(e)) ok_ = false;
  }

  const Program& p_;
  LocationKey loc_;
  const std::set<std::string>& loop_vars_;
  bool ok_ = true;
  bool saw_write_ = false;
  ReduceOp op_ = ReduceOp::kSum;
};

/// True when every write to `loc` in the body is an atomic-update shape
/// and no other statement reads the location.
bool all_writes_atomic(const Program& p, const std::vector<Stmt>& body,
                       const LocationKey& loc) {
  bool ok = true;
  bool saw = false;
  std::function<bool(const Expr&)> reads_loc = [&](const Expr& e) {
    if (e.kind == Expr::Kind::kGridRead && e.grid == loc.first &&
        e.field == loc.second) {
      return true;
    }
    for (const ExprPtr& a : e.args) {
      if (reads_loc(*a)) return true;
    }
    return false;
  };
  visit_stmts(body, [&](const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kAssign: {
        const bool writes_loc =
            s.lhs.grid == loc.first && s.lhs.field == loc.second;
        if (writes_loc) {
          if (!matches_atomic_update(p, s)) ok = false;
          saw = true;
        } else if (reads_loc(*s.rhs)) {
          ok = false;
        }
        break;
      }
      case Stmt::Kind::kIf:
        for (const IfArm& arm : s.arms) {
          if (reads_loc(*arm.cond)) ok = false;
        }
        break;
      case Stmt::Kind::kCallSub:
        for (const ExprPtr& a : s.args) {
          if (reads_loc(*a)) ok = false;
        }
        break;
      case Stmt::Kind::kReturn:
        if (s.ret && reads_loc(*s.ret)) ok = false;
        break;
    }
  });
  return ok && saw;
}

/// Ownership dimension for a step's atomic grids: a loop dimension p
/// inside the collapse band whose index variable is the *entire*
/// subscript (coefficient 1, no constant, no symbol) at one position
/// common to every access of each atomic grid. Partitioning iterations
/// along p then assigns every element of those grids to exactly one
/// band — updates happen in serial program order with no synchronization,
/// so even float sums stay bitwise identical to serial execution. The
/// common-position requirement matters: two accesses carrying the
/// variable at different positions (A(v,c) and A(d,v)) can alias across
/// bands. Returns -1 when no such dimension exists.
int find_ownership_dim(const Step& step, const StepVerdict& v,
                       const Buckets& buckets) {
  const std::size_t band = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(v.collapse, 1)), step.loops.size());
  for (std::size_t p = 0; p < band; ++p) {
    const std::string& var = step.loops[p].index_var;
    bool covers_all = true;
    for (const GridId gid : v.atomic_grids) {
      // Positions where the subscript is exactly `var`, intersected over
      // every access of the grid (reads included: a band then only reads
      // elements it owns, so it sees exactly the serial-order values).
      std::uint64_t common = ~std::uint64_t{0};
      bool saw_access = false;
      for (const auto& [loc, accs] : buckets) {
        if (loc.first != gid) continue;
        for (const ArrayAccess* a : accs) {
          saw_access = true;
          std::uint64_t mask = 0;
          if (!a->whole_grid) {
            for (std::size_t s = 0; s < a->subs.size() && s < 64; ++s) {
              const AffineForm& f = a->subs[s];
              if (f.affine && f.constant == 0 && f.symbol.empty() &&
                  f.coeffs.size() == 1 &&
                  f.coeffs.begin()->first == var &&
                  f.coeffs.begin()->second == 1) {
                mask |= std::uint64_t{1} << s;
              }
            }
          }
          common &= mask;
        }
      }
      if (!saw_access || common == 0) {
        covers_all = false;
        break;
      }
    }
    if (covers_all) return static_cast<int>(p);
  }
  return -1;
}

/// Is `grid` a local of `fn` (not a parameter, not global)?
bool is_function_local(const Function& fn, GridId grid) {
  return std::find(fn.locals.begin(), fn.locals.end(), grid) !=
         fn.locals.end();
}

/// True if any step of `fn` OTHER than `current` references `grid` —
/// which makes the grid live across steps and therefore unsafe to
/// privatize (a private copy's final value is discarded at region end).
bool referenced_outside_step(const Function& fn, const Step& current,
                             GridId grid) {
  for (const Step& other : fn.steps) {
    if (&other == &current) continue;
    bool found = false;
    const auto scan = [&](const ExprPtr& e) {
      if (!e) return;
      visit_exprs(e, [&](const Expr& node) {
        if (node.kind == Expr::Kind::kGridRead && node.grid == grid) {
          found = true;
        }
      });
    };
    for (const LoopSpec& loop : other.loops) {
      scan(loop.begin);
      scan(loop.end);
      scan(loop.stride);
    }
    visit_stmts(other.body, [&](const Stmt& s) {
      switch (s.kind) {
        case Stmt::Kind::kAssign:
          if (s.lhs.grid == grid) found = true;
          for (const ExprPtr& sub : s.lhs.subscripts) scan(sub);
          scan(s.rhs);
          break;
        case Stmt::Kind::kIf:
          for (const IfArm& arm : s.arms) scan(arm.cond);
          break;
        case Stmt::Kind::kCallSub:
          for (const ExprPtr& a : s.args) scan(a);
          break;
        case Stmt::Kind::kReturn:
          scan(s.ret);
          break;
      }
    });
    if (found) return true;
  }
  return false;
}

}  // namespace

StepVerdict analyze_step(const Program& program, const Function& fn,
                         const Step& step, const EffectsMap& effects,
                         const ManualTweaks* tweaks) {
  StepVerdict v;
  v.loop_class = classify_loop(program, step);
  if (step.loops.empty()) {
    v.notes.push_back("straight-line step: nothing to parallelize");
    return v;
  }
  v.has_loop = true;

  // Trip count = product of constant per-loop trips.
  v.trip_count = 1;
  for (const LoopSpec& loop : step.loops) {
    const std::int64_t t = loop_trip_count(program, loop);
    if (t < 0) {
      v.trip_count = -1;
      break;
    }
    v.trip_count *= t;
  }
  v.outer_trip_count = loop_trip_count(program, step.loops.front());

  const StepAccesses accesses = collect_step_accesses(program, step, effects);
  const Buckets buckets = bucket_by_location(accesses);

  std::set<std::string> loop_vars;
  for (const LoopSpec& loop : step.loops) loop_vars.insert(loop.index_var);

  // Resolve each written location to a clause or leave it for the
  // dependence tests.
  std::set<LocationKey> clause_resolved;
  bool blocked = false;
  for (const auto& [loc, accs] : buckets) {
    if (!any_write(accs)) continue;
    const Grid& g = program.grid(loc.first);

    if (tweaks != nullptr && tweaks->force_private.count(loc.first) != 0) {
      v.private_grids.push_back(loc.first);
      clause_resolved.insert(loc);
      v.notes.push_back(cat("private(", g.name, ") [manual tweak]"));
      continue;
    }
    if (tweaks != nullptr &&
        tweaks->force_firstprivate.count(loc.first) != 0) {
      v.firstprivate_grids.push_back(loc.first);
      clause_resolved.insert(loc);
      v.notes.push_back(cat("firstprivate(", g.name, ") [manual tweak]"));
      continue;
    }

    // Reduction recognition.
    ReductionScan scan(program, loc, loop_vars);
    if (scan.scan(step.body)) {
      v.reductions.push_back(ReductionClause{loc.first, loc.second, scan.op()});
      clause_resolved.insert(loc);
      v.notes.push_back(cat("reduction(", omp_spelling(scan.op()), ":",
                            g.name, ")"));
      continue;
    }

    // Privatization heuristic: local grid whose first access in program
    // order is an unconditional write. SAVE'd grids are never privatized
    // (their value must persist across calls), and neither are grids
    // referenced by other steps (live across the region boundary).
    if (is_function_local(fn, loc.first) &&
        !program.grid(loc.first).save_attr &&
        !referenced_outside_step(fn, step, loc.first)) {
      const ArrayAccess* first = nullptr;
      for (const ArrayAccess* a : accs) {
        if (first == nullptr || a->stmt_index < first->stmt_index) first = a;
      }
      // Accesses are recorded in evaluation order (reads of a statement
      // before its write), so a leading unconditional write means the
      // iteration defines the value before any use.
      const ArrayAccess* first_in_order = accs.front();
      if (first_in_order->is_write && !first_in_order->conditional &&
          !first_in_order->whole_grid) {
        v.private_grids.push_back(loc.first);
        clause_resolved.insert(loc);
        v.notes.push_back(cat("private(", g.name, ")"));
        continue;
      }
    }
    (void)effects;
  }

  // Dependence tests per loop variable for unresolved written locations.
  std::map<std::string, std::int64_t> trip_by_var;
  for (const LoopSpec& loop : step.loops) {
    trip_by_var[loop.index_var] = loop_trip_count(program, loop);
  }
  const auto var_is_parallel = [&](const std::string& var,
                                   std::string* reason) {
    const std::int64_t trip =
        trip_by_var.count(var) != 0 ? trip_by_var.at(var) : -1;
    for (const auto& [loc, accs] : buckets) {
      if (!any_write(accs)) continue;
      if (clause_resolved.count(loc) != 0) continue;
      const Grid& g = program.grid(loc.first);
      for (const ArrayAccess* w : accs) {
        if (!w->is_write) continue;
        for (const ArrayAccess* x : accs) {
          const DepResult r = test_dependence(*w, *x, var, trip);
          if (r == DepResult::kCarried) {
            // Last resort: atomic accumulation.
            if ((tweaks != nullptr &&
                 tweaks->force_atomic.count(loc.first) != 0) ||
                all_writes_atomic(program, step.body, loc)) {
              if (std::find(v.atomic_grids.begin(), v.atomic_grids.end(),
                            loc.first) == v.atomic_grids.end()) {
                v.atomic_grids.push_back(loc.first);
                v.notes.push_back(cat("atomic updates to ", g.name));
              }
              goto next_location;
            }
            *reason = cat("loop-carried dependence on '", g.name,
                          "' w.r.t. ", var);
            return false;
          }
        }
      }
    next_location:;
    }
    return true;
  };

  std::string reason;
  if (!var_is_parallel(step.loops.front().index_var, &reason)) {
    blocked = true;
    v.notes.push_back(reason);
  }

  // Early return (the ioff_search pattern) requires a critical section,
  // which GLAF only emits under the manual tweak (§4.2.1).
  if (accesses.has_return) {
    v.needs_critical = true;
    if (tweaks == nullptr || !tweaks->allow_critical) {
      blocked = true;
      v.notes.push_back(
          "early return inside loop (needs OMP CRITICAL; enable via manual "
          "tweak)");
    } else {
      v.notes.push_back("early-return section wrapped in OMP CRITICAL");
    }
  }

  v.parallelizable = !blocked;

  // Collapse depth: consecutive perfectly-nested parallel loops whose
  // bounds are invariant w.r.t. the outer indices.
  if (v.parallelizable) {
    std::set<std::string> outer;
    outer.insert(step.loops.front().index_var);
    int depth = 1;
    for (std::size_t k = 1; k < step.loops.size(); ++k) {
      const LoopSpec& loop = step.loops[k];
      if (expr_uses_vars(loop.begin, outer) ||
          expr_uses_vars(loop.end, outer) ||
          expr_uses_vars(loop.stride, outer)) {
        break;
      }
      std::string inner_reason;
      if (!var_is_parallel(loop.index_var, &inner_reason)) break;
      ++depth;
      outer.insert(loop.index_var);
    }
    v.collapse = depth;
  }

  // Vectorizability by the compiler (drives the perf model): simple loops
  // without calls / control exits.
  v.compiler_vectorizable = accesses.callees.empty() &&
                            !accesses.has_return &&
                            v.loop_class != LoopClass::kComplex;

  // Bitwise-deterministic classification (consumed by the parallel
  // native engine and the deterministic interpreter mode). Exact
  // reductions are +/min/max over integer-valued elements: the
  // interpreter stores them as doubles, where small-integer sums are
  // associative and min/max carry no ±0 ties, so any combine order
  // reproduces the serial result bitwise. Callees are excluded both for
  // exactness (hidden state) and because nested dispatch would re-enter
  // the single-job thread pool.
  if (v.parallelizable && !v.needs_critical && accesses.callees.empty() &&
      !accesses.has_return) {
    bool exact = true;
    for (const ReductionClause& r : v.reductions) {
      const DataType t = program.grid(r.grid).field_type(r.field);
      const bool int_valued = t == DataType::kInt || t == DataType::kLogical;
      if (!int_valued || r.op == ReduceOp::kProd) {
        exact = false;
        break;
      }
    }
    int owner_dim = -1;
    if (exact && !v.atomic_grids.empty()) {
      owner_dim = find_ownership_dim(step, v, buckets);
      if (owner_dim < 0) exact = false;
    }
    if (exact) {
      v.bit_exact = true;
      v.exact_partition_dim = owner_dim;
      v.notes.push_back(
          owner_dim < 0
              ? "bit-exact under any partition"
              : cat("bit-exact when banded on '",
                    step.loops[static_cast<std::size_t>(owner_dim)].index_var,
                    "'"));
    }
  }

  return v;
}

ProgramAnalysis analyze_program(const Program& program,
                                const TweaksByFunction& tweaks) {
  ProgramAnalysis out;
  out.effects = compute_effects(program);
  for (const Function& fn : program.functions) {
    const ManualTweaks* fn_tweaks = nullptr;
    auto it = tweaks.find(fn.name);
    if (it == tweaks.end()) it = tweaks.find("");
    if (it != tweaks.end()) fn_tweaks = &it->second;
    std::vector<StepVerdict>& verdicts = out.verdicts[fn.id];
    verdicts.reserve(fn.steps.size());
    for (const Step& step : fn.steps) {
      verdicts.push_back(
          analyze_step(program, fn, step, out.effects, fn_tweaks));
    }
  }
  return out;
}

std::string verdict_to_string(const Program& program, const StepVerdict& v) {
  if (!v.has_loop) return "straight-line";
  if (!v.parallelizable) return "serial";
  std::string out = "parallel";
  if (v.collapse > 1) out += cat(" collapse(", v.collapse, ")");
  if (!v.private_grids.empty()) {
    std::vector<std::string> names;
    names.reserve(v.private_grids.size());
    for (const GridId g : v.private_grids) names.push_back(program.grid(g).name);
    out += cat(" private(", join(names, ","), ")");
  }
  if (!v.firstprivate_grids.empty()) {
    std::vector<std::string> names;
    for (const GridId g : v.firstprivate_grids) {
      names.push_back(program.grid(g).name);
    }
    out += cat(" firstprivate(", join(names, ","), ")");
  }
  for (const ReductionClause& r : v.reductions) {
    out += cat(" reduction(", omp_spelling(r.op), ":", program.grid(r.grid).name,
               r.field.empty() ? "" : "." + r.field, ")");
  }
  if (!v.atomic_grids.empty()) {
    std::vector<std::string> names;
    for (const GridId g : v.atomic_grids) names.push_back(program.grid(g).name);
    out += cat(" atomic(", join(names, ","), ")");
  }
  if (v.needs_critical) out += " critical";
  if (v.bit_exact) {
    out += v.exact_partition_dim < 0
               ? " bit-exact"
               : cat(" bit-exact[dim=", v.exact_partition_dim, "]");
  }
  return out;
}

}  // namespace glaf
