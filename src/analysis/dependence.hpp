#pragma once
// Pairwise data-dependence tests (ZIV / strong-SIV / GCD) between two array
// accesses, asked with respect to one loop index variable. These are the
// classical tests the auto-parallelization back-end uses to decide whether
// a loop may be annotated with OpenMP directives.

#include <cstdint>
#include <string>

#include "analysis/access.hpp"

namespace glaf {

/// Outcome of a dependence test between two accesses w.r.t. one loop.
enum class DepResult : std::uint8_t {
  kIndependent,      ///< proven: never the same element
  kLoopIndependent,  ///< same element only within one iteration (distance 0)
  kCarried,          ///< proven or assumed loop-carried dependence
};

const char* to_string(DepResult r);

/// Test accesses `a` and `b` (same location; at least one is a write) for
/// dependence carried by `loop_var`. `trip_count` (-1 if unknown) allows
/// ruling out dependences whose distance exceeds the iteration space.
///
/// Conservative: anything the affine tests cannot prove independent or
/// distance-0 is reported as kCarried.
DepResult test_dependence(const ArrayAccess& a, const ArrayAccess& b,
                          const std::string& loop_var,
                          std::int64_t trip_count);

}  // namespace glaf
