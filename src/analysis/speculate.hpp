#pragma once
// Profile-guided speculative parallelization (directive policy v4).
//
// The static verdicts in analysis/parallelize.cpp are conservative by
// design: any may-dependence leaves a step serial forever. Following
// CPF/Perspective (ASPLOS '20) and its LAMP memory profiler, this module
// adds the offline half of a speculate-and-validate pipeline:
//
//   1. `DepProfiler` — driven by the plan VM when
//      `InterpOptions::profile_deps` is set — observes every element
//      load/store of every executed step and aggregates, per
//      (function, step), how many elements were touched in two or more
//      distinct outermost-loop iterations with at least one write
//      (a *conflict*: evidence of a real loop-carried dependence).
//   2. `DepProfile` is the serializable result, bound to the program it
//      was recorded against by an fnv1a64 content hash.
//   3. `apply_speculation` promotes profile-clean candidates — steps the
//      static analysis blocked, with no callees, early returns, or
//      critical sections — by setting `StepVerdict::speculative` and
//      recording the (grid, field) bands the runtime validator checks.
//
// The runtime half (per-rank band logging, post-join validation,
// misspeculation → discard + serial re-run + demotion) lives in the plan
// VM (interp/vm.cpp); DESIGN.md §10 describes the whole protocol.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/parallelize.hpp"
#include "core/program.hpp"
#include "support/status.hpp"

namespace glaf {

/// Aggregated observations for one (function, step) across every
/// profiled invocation.
struct DepProfileStep {
  std::uint64_t invocations = 0;
  /// Outermost-loop trips observed (across all invocations).
  std::uint64_t iterations = 0;
  /// Elements touched in >= 2 distinct outermost-loop iterations with at
  /// least one write — each such element is an observed cross-iteration
  /// dependence, so conflicts == 0 means "never seen to conflict".
  std::uint64_t conflicts = 0;
};

/// A serializable dependence profile: one entry per executed
/// (function name, step index), bound to a program content hash.
struct DepProfile {
  std::uint64_t program_hash = 0;
  std::map<std::pair<std::string, std::size_t>, DepProfileStep> steps;
};

/// fnv1a64 over the canonical serialized program — the identity a
/// profile is bound to (and validated against before promotion).
std::uint64_t dep_profile_program_hash(const Program& program);

/// Text round-trip so profiles survive as files next to the programs
/// they describe:
///   glaf-dep-profile 1
///   program <16-hex-digit hash>
///   step <function> <index> <invocations> <iterations> <conflicts>
std::string serialize_dep_profile(const DepProfile& profile);
StatusOr<DepProfile> parse_dep_profile(const std::string& text);

/// Runtime collector behind `InterpOptions::profile_deps` (LAMP analog).
/// The plan VM drives it: begin_step/end_step bracket each executed step
/// (nested calls nest a fresh record), set_iteration marks each
/// outermost-loop trip, and record() is called per element load/store
/// with the element's *address* — addresses disambiguate aliased grids
/// for free. Accesses before the first set_iteration of a step
/// (loop-bound evaluation, straight-line steps) carry no cross-iteration
/// information and are ignored.
class DepProfiler {
 public:
  void begin_step(const std::string& function, std::size_t step);
  void set_iteration(std::int64_t iter);
  void record(const void* addr, bool is_write);
  /// Whole-buffer access (library reductions like SUM over a grid).
  void record_range(const double* base, std::int64_t count, bool is_write);
  void end_step();

  /// Snapshot the aggregate, stamped with the program hash.
  [[nodiscard]] DepProfile profile(std::uint64_t program_hash) const;

 private:
  struct Elem {
    std::int64_t iter = 0;  ///< outer iteration of the first access
    bool multi = false;     ///< seen in >= 2 distinct outer iterations
    bool wrote = false;     ///< any access was a write
    bool counted = false;   ///< already counted as a conflict
  };
  struct Active {
    DepProfileStep* agg = nullptr;
    std::int64_t iter = 0;  ///< current outer iteration (kPreLoop before)
    bool in_loop = false;
    std::map<const void*, Elem> elems;
  };
  std::vector<Active> stack_;
  std::map<std::pair<std::string, std::size_t>, DepProfileStep> steps_;
};

/// What apply_speculation did, for reports and tests.
struct SpeculationSummary {
  int promoted = 0;    ///< candidates marked StepVerdict::speculative
  int conflicted = 0;  ///< candidates rejected by observed conflicts
  int unprofiled = 0;  ///< candidates the profile never saw execute
};

/// Promote profile-clean blocked steps in `analysis` to speculative.
/// A candidate is a step with a loop that the static analysis left
/// serial, with no callees, no early return, and no critical section —
/// the shapes the runtime validation leg can re-run safely. Rejects the
/// whole profile with kFailedPrecondition when its program hash does not
/// match `program`.
StatusOr<SpeculationSummary> apply_speculation(const Program& program,
                                               ProgramAnalysis* analysis,
                                               const DepProfile& profile);

}  // namespace glaf
