#include "analysis/affine.hpp"

#include "support/strings.hpp"

namespace glaf {
namespace {

bool contains_index(const Expr& e, const std::set<std::string>& index_vars) {
  if (e.kind == Expr::Kind::kIndex) return index_vars.count(e.index_name) != 0;
  for (const ExprPtr& a : e.args) {
    if (contains_index(*a, index_vars)) return true;
  }
  return false;
}

AffineForm non_affine() { return AffineForm{}; }

AffineForm constant_form(std::int64_t c) {
  AffineForm f;
  f.affine = true;
  f.constant = c;
  return f;
}

AffineForm symbol_form(const Expr& e) {
  AffineForm f;
  f.affine = true;
  // Canonical textual form; grid ids keep it unambiguous.
  f.symbol = expr_to_string(e);
  return f;
}

AffineForm add(AffineForm a, const AffineForm& b, std::int64_t sign) {
  if (!a.affine || !b.affine) return non_affine();
  a.constant += sign * b.constant;
  for (const auto& [var, coeff] : b.coeffs) {
    a.coeffs[var] += sign * coeff;
    if (a.coeffs[var] == 0) a.coeffs.erase(var);
  }
  if (!b.symbol.empty()) {
    // Combine symbolic parts textually (canonical, order-preserving).
    const std::string piece =
        sign >= 0 ? (a.symbol.empty() ? b.symbol : "+" + b.symbol)
                  : "-" + b.symbol;
    a.symbol += piece;
  }
  return a;
}

AffineForm scale(AffineForm a, std::int64_t k) {
  if (!a.affine) return non_affine();
  if (!a.symbol.empty()) {
    if (k == 1) return a;
    // k * (sym + ...) — keep affine only when it stays a pure symbol.
    if (a.constant == 0 && a.coeffs.empty()) {
      a.symbol = cat(k, "*(", a.symbol, ")");
      return a;
    }
    return non_affine();
  }
  a.constant *= k;
  for (auto& [var, coeff] : a.coeffs) coeff *= k;
  return a;
}

}  // namespace

AffineForm extract_affine(const Expr& e,
                          const std::set<std::string>& index_vars) {
  switch (e.kind) {
    case Expr::Kind::kLiteral: {
      if (const auto* i = std::get_if<std::int64_t>(&e.literal)) {
        return constant_form(*i);
      }
      return non_affine();  // float subscript: not a valid index anyway
    }
    case Expr::Kind::kIndex: {
      if (index_vars.count(e.index_name) == 0) {
        return symbol_form(e);  // index of an enclosing scope: invariant here
      }
      AffineForm f;
      f.affine = true;
      f.coeffs[e.index_name] = 1;
      return f;
    }
    case Expr::Kind::kGridRead:
    case Expr::Kind::kCall: {
      // Loop-invariant memory reads join the symbolic part; anything that
      // varies with an index (indirection) is non-affine.
      if (contains_index(e, index_vars)) return non_affine();
      return symbol_form(e);
    }
    case Expr::Kind::kBinary: {
      const AffineForm lhs = extract_affine(*e.args[0], index_vars);
      const AffineForm rhs = extract_affine(*e.args[1], index_vars);
      switch (e.bop) {
        case BinOp::kAdd:
          return add(lhs, rhs, +1);
        case BinOp::kSub:
          return add(lhs, rhs, -1);
        case BinOp::kMul: {
          // One side must be a pure integer constant.
          if (lhs.affine && lhs.coeffs.empty() && lhs.symbol.empty()) {
            return scale(rhs, lhs.constant);
          }
          if (rhs.affine && rhs.coeffs.empty() && rhs.symbol.empty()) {
            return scale(lhs, rhs.constant);
          }
          if (!contains_index(e, index_vars)) return symbol_form(e);
          return non_affine();
        }
        default:
          if (!contains_index(e, index_vars)) return symbol_form(e);
          return non_affine();
      }
    }
    case Expr::Kind::kUnary: {
      if (e.uop == UnOp::kNeg) {
        return scale(extract_affine(*e.args[0], index_vars), -1);
      }
      if (!contains_index(e, index_vars)) return symbol_form(e);
      return non_affine();
    }
  }
  return non_affine();
}

std::string affine_to_string(const AffineForm& form) {
  if (!form.affine) return "<non-affine>";
  std::string out;
  for (const auto& [var, coeff] : form.coeffs) {
    if (!out.empty()) out += " + ";
    if (coeff == 1) {
      out += var;
    } else {
      out += cat(coeff, "*", var);
    }
  }
  if (form.constant != 0 || out.empty()) {
    if (!out.empty()) out += " + ";
    out += std::to_string(form.constant);
  }
  if (!form.symbol.empty()) out += cat(" [+", form.symbol, "]");
  return out;
}

}  // namespace glaf
