#include "analysis/transform.hpp"

#include <algorithm>

#include "analysis/parallelize.hpp"
#include "support/strings.hpp"

namespace glaf {
namespace {

bool bounds_reference_vars(const LoopSpec& loop,
                           const std::set<std::string>& vars) {
  const auto uses = [&](const ExprPtr& e) {
    if (!e) return false;
    bool used = false;
    visit_exprs(e, [&](const Expr& node) {
      if (node.kind == Expr::Kind::kIndex &&
          vars.count(node.index_name) != 0) {
        used = true;
      }
    });
    return used;
  };
  return uses(loop.begin) || uses(loop.end) || uses(loop.stride);
}

}  // namespace

Status can_interchange(const Program& program, const Function& fn,
                       std::size_t step_index, std::size_t a,
                       std::size_t b) {
  if (step_index >= fn.steps.size()) {
    return invalid_argument(cat("function '", fn.name, "' has no step #",
                                step_index));
  }
  const Step& step = fn.steps[step_index];
  if (a == b) return invalid_argument("identical loop positions");
  const std::size_t lo = std::min(a, b);
  const std::size_t hi = std::max(a, b);
  if (hi >= step.loops.size()) {
    return invalid_argument(cat("step '", step.name, "' has only ",
                                step.loops.size(), " loops"));
  }

  // The band [lo, hi] must be rectangular: no bound in the band may
  // reference another band index (triangular nests cannot be exchanged).
  std::set<std::string> band_vars;
  for (std::size_t i = lo; i <= hi; ++i) {
    band_vars.insert(step.loops[i].index_var);
  }
  for (std::size_t i = lo; i <= hi; ++i) {
    std::set<std::string> others = band_vars;
    others.erase(step.loops[i].index_var);
    if (bounds_reference_vars(step.loops[i], others)) {
      return failed_precondition(
          cat("loop '", step.loops[i].index_var,
              "' has bounds depending on another loop in the band "
              "(triangular nest)"));
    }
  }

  // Dependence legality: a fully parallel band admits any permutation.
  // The analyzed collapse depth is exactly the size of the leading
  // parallel rectangular band.
  const EffectsMap effects = compute_effects(program);
  const StepVerdict verdict = analyze_step(program, fn, step, effects);
  if (!verdict.parallelizable ||
      static_cast<std::size_t>(verdict.collapse) <= hi) {
    return failed_precondition(
        cat("cannot prove independence of the loop band (collapse depth ",
            verdict.collapse, ", need > ", hi, ")"));
  }
  return Status::ok();
}

namespace {

/// Rebuild an expression with grid ids remapped.
ExprPtr remap_expr(const ExprPtr& e,
                   const std::map<GridId, GridId>& remap) {
  if (!e) return e;
  Expr copy = *e;
  if (copy.kind == Expr::Kind::kGridRead) {
    const auto it = remap.find(copy.grid);
    if (it != remap.end()) copy.grid = it->second;
  }
  for (ExprPtr& arg : copy.args) arg = remap_expr(arg, remap);
  return std::make_shared<Expr>(std::move(copy));
}

std::vector<Stmt> remap_stmts(const std::vector<Stmt>& body,
                              const std::map<GridId, GridId>& remap);

Stmt remap_stmt(const Stmt& s, const std::map<GridId, GridId>& remap) {
  Stmt copy = s;
  switch (copy.kind) {
    case Stmt::Kind::kAssign: {
      const auto it = remap.find(copy.lhs.grid);
      if (it != remap.end()) copy.lhs.grid = it->second;
      for (ExprPtr& sub : copy.lhs.subscripts) sub = remap_expr(sub, remap);
      copy.rhs = remap_expr(copy.rhs, remap);
      break;
    }
    case Stmt::Kind::kIf:
      for (IfArm& arm : copy.arms) {
        arm.cond = remap_expr(arm.cond, remap);
        arm.body = remap_stmts(arm.body, remap);
      }
      copy.else_body = remap_stmts(copy.else_body, remap);
      break;
    case Stmt::Kind::kCallSub:
      for (ExprPtr& a : copy.args) a = remap_expr(a, remap);
      break;
    case Stmt::Kind::kReturn:
      copy.ret = remap_expr(copy.ret, remap);
      break;
  }
  return copy;
}

std::vector<Stmt> remap_stmts(const std::vector<Stmt>& body,
                              const std::map<GridId, GridId>& remap) {
  std::vector<Stmt> out;
  out.reserve(body.size());
  for (const Stmt& s : body) out.push_back(remap_stmt(s, remap));
  return out;
}

/// Is this callee trivial enough to inline?
bool inlinable(const Function& callee) {
  if (callee.return_type != DataType::kVoid) return false;
  if (!callee.locals.empty()) return false;
  if (callee.steps.size() != 1) return false;
  const Step& step = callee.steps[0];
  if (!step.loops.empty()) return false;
  bool clean = true;
  visit_stmts(step.body, [&](const Stmt& s) {
    if (s.kind == Stmt::Kind::kCallSub || s.kind == Stmt::Kind::kReturn) {
      clean = false;
    }
  });
  return clean;
}

/// All arguments must be plain grid references for direct substitution.
bool args_are_plain_grids(const std::vector<ExprPtr>& args) {
  for (const ExprPtr& a : args) {
    if (a->kind != Expr::Kind::kGridRead || !a->args.empty() ||
        !a->field.empty()) {
      return false;
    }
  }
  return true;
}

/// Expand eligible CALLs in a body; returns the new body.
std::vector<Stmt> inline_in_body(const Program& p,
                                 const std::vector<Stmt>& body,
                                 int* inlined) {
  std::vector<Stmt> out;
  for (const Stmt& s : body) {
    if (s.kind == Stmt::Kind::kIf) {
      Stmt copy = s;
      for (IfArm& arm : copy.arms) {
        arm.body = inline_in_body(p, arm.body, inlined);
      }
      copy.else_body = inline_in_body(p, copy.else_body, inlined);
      out.push_back(std::move(copy));
      continue;
    }
    if (s.kind != Stmt::Kind::kCallSub) {
      out.push_back(s);
      continue;
    }
    const Function* callee = p.find_function(s.callee);
    if (callee == nullptr || !inlinable(*callee) ||
        !args_are_plain_grids(s.args) ||
        s.args.size() != callee->params.size()) {
      out.push_back(s);
      continue;
    }
    std::map<GridId, GridId> remap;
    for (std::size_t i = 0; i < callee->params.size(); ++i) {
      remap[callee->params[i]] = s.args[i]->grid;
    }
    for (const Stmt& inner : callee->steps[0].body) {
      out.push_back(remap_stmt(inner, remap));
    }
    ++*inlined;
  }
  return out;
}

}  // namespace

InlineResult inline_trivial_calls(const Program& program) {
  InlineResult result;
  result.program = program;
  for (Function& fn : result.program.functions) {
    for (Step& step : fn.steps) {
      step.body = inline_in_body(program, step.body, &result.inlined_calls);
    }
  }
  return result;
}

namespace {

/// Fold one expression bottom-up; counts replaced non-literal subtrees.
ExprPtr fold_expr(const Program& p, const std::set<GridId>& written,
                  const ExprPtr& e, int* folded);

ExprPtr fold_children(const Program& p, const std::set<GridId>& written,
                      const ExprPtr& e, int* folded) {
  Expr copy = *e;
  for (ExprPtr& arg : copy.args) arg = fold_expr(p, written, arg, folded);
  return std::make_shared<Expr>(std::move(copy));
}

ExprPtr fold_expr(const Program& p, const std::set<GridId>& written,
                  const ExprPtr& e, int* folded) {
  if (!e) return e;
  if (e->kind == Expr::Kind::kLiteral) return e;
  // Whole-grid reads (call arguments) must not be replaced even when the
  // grid is a foldable scalar... scalars are never whole-grid, so only
  // skip folding where the read has array rank.
  if (e->kind == Expr::Kind::kGridRead && !e->args.empty()) {
    return fold_children(p, written, e, folded);
  }
  // Try the global-aware fold on this subtree.
  const ExprPtr with_folded_children = fold_children(p, written, e, folded);
  if (const auto v = fold_with_globals(p, *with_folded_children)) {
    ++*folded;
    return make_literal(*v);
  }
  return with_folded_children;
}

void fold_body(const Program& p, const std::set<GridId>& written,
               std::vector<Stmt>* body, int* folded) {
  for (Stmt& s : *body) {
    switch (s.kind) {
      case Stmt::Kind::kAssign:
        for (ExprPtr& sub : s.lhs.subscripts) {
          sub = fold_expr(p, written, sub, folded);
        }
        s.rhs = fold_expr(p, written, s.rhs, folded);
        break;
      case Stmt::Kind::kIf:
        for (IfArm& arm : s.arms) {
          arm.cond = fold_expr(p, written, arm.cond, folded);
          fold_body(p, written, &arm.body, folded);
        }
        fold_body(p, written, &s.else_body, folded);
        break;
      case Stmt::Kind::kCallSub:
        for (ExprPtr& a : s.args) a = fold_expr(p, written, a, folded);
        break;
      case Stmt::Kind::kReturn:
        if (s.ret) s.ret = fold_expr(p, written, s.ret, folded);
        break;
    }
  }
}

}  // namespace

FoldResult fold_constants(const Program& program) {
  FoldResult result;
  result.program = program;
  const std::set<GridId> written = written_grids(program);
  int* folded = &result.folded_exprs;
  for (Function& fn : result.program.functions) {
    for (Step& step : fn.steps) {
      for (LoopSpec& loop : step.loops) {
        loop.begin = fold_expr(result.program, written, loop.begin, folded);
        loop.end = fold_expr(result.program, written, loop.end, folded);
        if (loop.stride) {
          loop.stride = fold_expr(result.program, written, loop.stride, folded);
        }
      }
      fold_body(result.program, written, &step.body, folded);
    }
  }
  return result;
}

StatusOr<Program> interchange_loops(const Program& program,
                                    const std::string& function,
                                    const std::string& step, std::size_t a,
                                    std::size_t b) {
  const Function* fn = program.find_function(function);
  if (fn == nullptr) {
    return not_found(cat("function '", function, "'"));
  }
  std::size_t step_index = fn->steps.size();
  for (std::size_t s = 0; s < fn->steps.size(); ++s) {
    if (fn->steps[s].name == step) step_index = s;
  }
  if (step_index == fn->steps.size()) {
    return not_found(cat("step '", step, "' in function '", function, "'"));
  }
  if (Status legal = can_interchange(program, *fn, step_index, a, b);
      !legal) {
    return legal;
  }
  Program out = program;
  Step& target = out.functions[fn->id].steps[step_index];
  std::swap(target.loops[a], target.loops[b]);
  return out;
}

}  // namespace glaf
