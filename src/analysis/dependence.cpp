#include "analysis/dependence.hpp"

#include <cstdlib>
#include <numeric>

namespace glaf {

const char* to_string(DepResult r) {
  switch (r) {
    case DepResult::kIndependent: return "independent";
    case DepResult::kLoopIndependent: return "loop-independent";
    case DepResult::kCarried: return "carried";
  }
  return "?";
}

namespace {

/// Per-dimension verdict; combined across dimensions below.
enum class DimResult { kIndependent, kDistanceZero, kCarried, kUnknown };

/// True if the two forms have identical coefficients for every index
/// variable other than `loop_var`, and identical symbolic parts.
bool other_parts_match(const AffineForm& a, const AffineForm& b,
                       const std::string& loop_var) {
  if (a.symbol != b.symbol) return false;
  for (const auto& [var, coeff] : a.coeffs) {
    if (var == loop_var) continue;
    if (b.coeff(var) != coeff) return false;
  }
  for (const auto& [var, coeff] : b.coeffs) {
    if (var == loop_var) continue;
    if (a.coeff(var) != coeff) return false;
  }
  return true;
}

/// True if no index variable other than `loop_var` appears in either form.
bool only_loop_var(const AffineForm& a, const AffineForm& b,
                   const std::string& loop_var) {
  for (const auto& [var, coeff] : a.coeffs) {
    if (var != loop_var && coeff != 0) return false;
  }
  for (const auto& [var, coeff] : b.coeffs) {
    if (var != loop_var && coeff != 0) return false;
  }
  return true;
}

DimResult test_dim(const AffineForm& fa, const AffineForm& fb,
                   const std::string& loop_var, std::int64_t trip_count) {
  if (!fa.affine || !fb.affine) return DimResult::kUnknown;
  const std::int64_t ca = fa.coeff(loop_var);
  const std::int64_t cb = fb.coeff(loop_var);
  const std::int64_t delta = fb.constant - fa.constant;
  const bool pure = only_loop_var(fa, fb, loop_var) && fa.symbol == fb.symbol;

  if (ca == 0 && cb == 0) {
    // ZIV: subscripts do not involve the tested loop.
    if (pure) {
      // Fixed elements: distinct constants can never alias.
      return delta != 0 ? DimResult::kIndependent : DimResult::kDistanceZero;
    }
    if (other_parts_match(fa, fb, loop_var)) {
      // Same function of inner indices/symbols, differing by a constant:
      // inner loops can realign them across outer iterations, so only the
      // delta == 0 case is safe to call distance-0.
      return delta == 0 ? DimResult::kDistanceZero : DimResult::kUnknown;
    }
    return DimResult::kUnknown;
  }

  if (ca == cb) {
    // Strong SIV.
    if (!other_parts_match(fa, fb, loop_var)) return DimResult::kUnknown;
    if (delta % ca != 0) return DimResult::kIndependent;
    const std::int64_t distance = delta / ca;
    if (distance == 0) return DimResult::kDistanceZero;
    if (trip_count > 0 && std::llabs(distance) >= trip_count) {
      return DimResult::kIndependent;
    }
    return DimResult::kCarried;
  }

  // Weak SIV / MIV: fall back to the GCD test when the symbolic parts agree.
  if (!pure) return DimResult::kUnknown;
  const std::int64_t g = std::gcd(std::llabs(ca), std::llabs(cb));
  if (g != 0 && delta % g != 0) return DimResult::kIndependent;
  return DimResult::kUnknown;
}

}  // namespace

DepResult test_dependence(const ArrayAccess& a, const ArrayAccess& b,
                          const std::string& loop_var,
                          std::int64_t trip_count) {
  if (a.whole_grid || b.whole_grid) return DepResult::kCarried;
  if (a.subs.size() != b.subs.size()) return DepResult::kCarried;
  if (a.subs.empty()) {
    // Scalars: the same single location in every iteration.
    return DepResult::kCarried;
  }

  bool all_distance_zero = true;
  bool varies_with_loop = false;
  for (std::size_t d = 0; d < a.subs.size(); ++d) {
    if (a.subs[d].affine && a.subs[d].coeff(loop_var) != 0) {
      varies_with_loop = true;
    }
    switch (test_dim(a.subs[d], b.subs[d], loop_var, trip_count)) {
      case DimResult::kIndependent:
        // One dimension proving disjointness is enough for the whole pair.
        return DepResult::kIndependent;
      case DimResult::kDistanceZero:
        break;
      case DimResult::kCarried:
      case DimResult::kUnknown:
        all_distance_zero = false;
        break;
    }
  }
  // Distance 0 in every dimension means "same element within an iteration".
  // That is only safe when the element actually varies with the tested
  // loop; otherwise every iteration touches one shared element (the array
  // behaves like a scalar) and the dependence is carried.
  return all_distance_zero && varies_with_loop ? DepResult::kLoopIndependent
                                               : DepResult::kCarried;
}

}  // namespace glaf
