#include "analysis/reduction.hpp"

#include "analysis/affine.hpp"
#include "core/libfuncs.hpp"
#include "support/strings.hpp"

namespace glaf {

const char* to_string(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return "sum";
    case ReduceOp::kProd: return "prod";
    case ReduceOp::kMin: return "min";
    case ReduceOp::kMax: return "max";
  }
  return "?";
}

const char* omp_spelling(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return "+";
    case ReduceOp::kProd: return "*";
    case ReduceOp::kMin: return "min";
    case ReduceOp::kMax: return "max";
  }
  return "?";
}

namespace {

/// True if the expression contains a user-function call (which may have
/// arbitrary side effects — unsafe inside a recognized reduction).
bool contains_user_call(const Expr& e) {
  if (e.kind == Expr::Kind::kCall && find_lib_func(e.callee) == nullptr) {
    return true;
  }
  for (const ExprPtr& a : e.args) {
    if (contains_user_call(*a)) return true;
  }
  return false;
}

/// True when `e` is a read of exactly the access `target` (same grid,
/// field, structurally equal subscripts).
bool reads_same_element(const Expr& e, const GridAccess& target) {
  if (e.kind != Expr::Kind::kGridRead) return false;
  if (e.grid != target.grid || e.field != target.field) return false;
  if (e.args.size() != target.subscripts.size()) return false;
  for (std::size_t i = 0; i < e.args.size(); ++i) {
    if (!expr_equal(*e.args[i], *target.subscripts[i])) return false;
  }
  return true;
}

bool references_grid(const Expr& e, GridId grid) {
  if (e.kind == Expr::Kind::kGridRead && e.grid == grid) return true;
  for (const ExprPtr& a : e.args) {
    if (references_grid(*a, grid)) return true;
  }
  return false;
}

/// Decompose rhs as target ⊕ other (either operand order for commutative
/// operators). Returns the "other" side, or nullptr when not matching.
const Expr* split_self_update(const Expr& rhs, const GridAccess& target,
                              ReduceOp* op) {
  if (rhs.kind == Expr::Kind::kBinary) {
    const bool lhs_is_self = reads_same_element(*rhs.args[0], target);
    const bool rhs_is_self = reads_same_element(*rhs.args[1], target);
    if (rhs.bop == BinOp::kAdd && (lhs_is_self != rhs_is_self)) {
      *op = ReduceOp::kSum;
      return lhs_is_self ? rhs.args[1].get() : rhs.args[0].get();
    }
    // acc = acc - expr is a sum reduction of the negated expression; the
    // non-commutative direction (expr - acc) is not.
    if (rhs.bop == BinOp::kSub && lhs_is_self && !rhs_is_self) {
      *op = ReduceOp::kSum;
      return rhs.args[1].get();
    }
    if (rhs.bop == BinOp::kMul && (lhs_is_self != rhs_is_self)) {
      *op = ReduceOp::kProd;
      return lhs_is_self ? rhs.args[1].get() : rhs.args[0].get();
    }
    return nullptr;
  }
  if (rhs.kind == Expr::Kind::kCall && rhs.args.size() == 2) {
    const std::string name = to_upper(rhs.callee);
    if (name != "MIN" && name != "MAX") return nullptr;
    const bool a_self = reads_same_element(*rhs.args[0], target);
    const bool b_self = reads_same_element(*rhs.args[1], target);
    if (a_self == b_self) return nullptr;
    *op = name == "MIN" ? ReduceOp::kMin : ReduceOp::kMax;
    return a_self ? rhs.args[1].get() : rhs.args[0].get();
  }
  return nullptr;
}

}  // namespace

std::optional<ReductionMatch> match_reduction(
    const Program& program, const Stmt& assign,
    const std::set<std::string>& loop_vars) {
  (void)program;
  if (assign.kind != Stmt::Kind::kAssign) return std::nullopt;
  // Target subscripts must be loop-invariant.
  for (const ExprPtr& sub : assign.lhs.subscripts) {
    const AffineForm f = extract_affine(*sub, loop_vars);
    if (!f.affine || !f.invariant()) return std::nullopt;
  }
  ReduceOp op = ReduceOp::kSum;
  const Expr* other = split_self_update(*assign.rhs, assign.lhs, &op);
  if (other == nullptr) return std::nullopt;
  if (references_grid(*other, assign.lhs.grid)) return std::nullopt;
  // A user call in the combined expression may itself touch the target
  // (or carry other side effects): not a recognizable reduction.
  if (contains_user_call(*other)) return std::nullopt;
  return ReductionMatch{assign.lhs.grid, assign.lhs.field, op};
}

bool matches_atomic_update(const Program& program, const Stmt& assign) {
  (void)program;
  if (assign.kind != Stmt::Kind::kAssign) return false;
  ReduceOp op = ReduceOp::kSum;
  const Expr* other = split_self_update(*assign.rhs, assign.lhs, &op);
  if (other == nullptr) return false;
  // OMP ATOMIC supports the simple arithmetic updates only.
  if (op != ReduceOp::kSum && op != ReduceOp::kProd) return false;
  return !references_grid(*other, assign.lhs.grid);
}

}  // namespace glaf
