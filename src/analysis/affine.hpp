#pragma once
// Affine subscript forms for dependence testing.
//
// The auto-parallelization back-end reasons about array subscripts as
// affine combinations of the step's loop index variables:
//
//     c0 + sum_i (a_i * index_i) + <loop-invariant symbolic part>
//
// Subscripts that do not fit this shape (e.g. indirection through another
// array, as in unstructured-mesh codes like FUN3D) are marked non-affine
// and handled conservatively.

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "core/expr.hpp"

namespace glaf {

/// An affine subscript form. When `affine` is false the other members are
/// meaningless. The symbolic part collects loop-invariant subexpressions
/// (e.g. a size parameter) in a canonical textual form so two forms can be
/// compared for equality of their invariant components.
struct AffineForm {
  bool affine = false;
  std::int64_t constant = 0;
  std::map<std::string, std::int64_t> coeffs;  ///< index var -> coefficient
  std::string symbol;  ///< canonical invariant part; "" when purely numeric

  /// Coefficient of `var` (0 when absent).
  [[nodiscard]] std::int64_t coeff(const std::string& var) const {
    const auto it = coeffs.find(var);
    return it == coeffs.end() ? 0 : it->second;
  }

  /// True if no index variable appears (the subscript is loop-invariant).
  [[nodiscard]] bool invariant() const { return affine && coeffs.empty(); }

  /// True if the invariant parts (constant + symbol) of two forms match.
  [[nodiscard]] bool same_invariant_part(const AffineForm& other) const {
    return constant == other.constant && symbol == other.symbol;
  }
};

/// Extract the affine form of `e` with respect to `index_vars`. Reads of
/// grids (even scalars) and calls become part of the symbolic invariant
/// component when they involve no index variable, and make the form
/// non-affine otherwise.
AffineForm extract_affine(const Expr& e, const std::set<std::string>& index_vars);

/// Readable rendering for diagnostics/tests, e.g. "2*i + j + 3 [+n]".
std::string affine_to_string(const AffineForm& form);

}  // namespace glaf
