#pragma once
// Fusion legality for host-parallel range dispatch: decide which maximal
// runs of adjacent parallelizable steps may share one fork/join. Two
// steps fuse when their partitioned loops are interchangeable (identical
// canonical bounds over a single loop) and every storage location one
// step writes and the other touches is partition-aligned in both — each
// rank then covers the same element set in every member step, so fused
// execution replays serial program order per element and the bit-identity
// contract of the range ABI survives fusion.
//
// This module is policy-free: the caller (the C back-end) decides which
// steps are actually emitted as range units under the active directive
// policy and passes that in as the `ranged` mask.

#include <string>
#include <vector>

#include "analysis/access.hpp"
#include "analysis/parallelize.hpp"
#include "core/program.hpp"

namespace glaf {

/// A run of adjacent steps dispatched as one parallel region (singletons
/// included — `step_count == 1` covers serial and lone-ranged steps).
struct FusedRegion {
  std::size_t first_step = 0;
  std::size_t step_count = 1;
};

/// The partition signature of a ranged step: which loop the dispatch
/// range [lo, hi) covers, and a canonical serialization of that loop's
/// bounds. Steps whose dispatch spans more than one collapsed loop
/// (flat multi-dimensional banding) have no signature and never fuse.
struct PartitionSig {
  bool valid = false;
  std::size_t loop_index = 0;  ///< partitioned loop within the step
  std::string bounds;          ///< canonical "begin;end;stride"
};

/// Compute the partition signature of `step` under its verdict.
/// Ownership-banded steps partition the exact dimension; otherwise the
/// step must collapse to a single loop.
PartitionSig partition_signature(const Step& step, const StepVerdict& v);

/// Can steps `earlier` and `later` (indices into `fn.steps`, earlier <
/// later in program order) legally share one parallel region? Checks
/// partition-signature equality, partition alignment of every shared
/// written location, and that no reduction target, private copy, or
/// host-evaluated loop bound crosses the step boundary.
bool steps_fusable(const Program& program, const Function& fn,
                   std::size_t earlier, std::size_t later,
                   const std::vector<StepVerdict>& verdicts,
                   const EffectsMap& effects);

/// Partition every step of `fn` into regions: maximal runs of adjacent
/// ranged steps that are pairwise fusable (each candidate is checked
/// against every step already in the region, not just its neighbour),
/// with non-ranged steps as singleton regions. The returned regions
/// cover fn.steps exactly, in order.
std::vector<FusedRegion> plan_fused_regions(
    const Program& program, const Function& fn,
    const std::vector<StepVerdict>& verdicts,
    const std::vector<bool>& ranged, const EffectsMap& effects);

}  // namespace glaf
