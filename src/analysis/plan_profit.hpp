#pragma once
// Static work estimate for gated parallel dispatch: abstract "units" of
// work per partitioned iteration of a ranged step. The JIT bakes the
// estimate into each region's dispatch guard; at run time the guard
// compares trip_count x units against a calibrated threshold
// (perfmodel/machine_model.hpp ParallelGate) and keeps sub-threshold
// regions on the calling thread, so tiny kernels never pay a fork/join
// they cannot amortize.

#include <cstdint>

#include "analysis/parallelize.hpp"
#include "core/program.hpp"

namespace glaf {

/// Units of work one iteration of the dispatch range performs: the
/// step's per-statement weight multiplied by the trip counts of every
/// loop *not* covered by the dispatch range (inner loops below the
/// collapse band; for ownership-banded steps, the non-owner band
/// dimensions too). Trip counts fold through never-written globals;
/// an unfoldable bound contributes a nominal 16 iterations. The result
/// is clamped to [1, 2^20] so `n * units` never overflows the guard's
/// long arithmetic.
std::int64_t step_units_per_iter(const Program& program, const Step& step,
                                 const StepVerdict& v);

inline constexpr std::int64_t kMaxUnitsPerIter = std::int64_t{1} << 20;

}  // namespace glaf
