#include "analysis/fuse.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>

#include "core/expr.hpp"

namespace glaf {
namespace {

/// Canonical text of a bound expression. Grids print by id ("g#7"), so
/// two steps naming the same storage serialize identically regardless of
/// any local aliasing; loop bounds are invariant in the step's own index
/// variables (collapse legality), so index names never appear.
std::string bound_text(const ExprPtr& e) {
  if (!e) return "1";
  return expr_to_string(*e);
}

bool id_in(const std::vector<GridId>& v, GridId id) {
  return std::find(v.begin(), v.end(), id) != v.end();
}

bool is_reduction_target(const StepVerdict& v, GridId id) {
  for (const ReductionClause& r : v.reductions) {
    if (r.grid == id) return true;
  }
  return false;
}

/// Is the affine form exactly the loop variable `var` (coefficient 1,
/// no constant, no symbolic part)? Mirrors the ownership-dimension test
/// in parallelize.cpp: such a subscript assigns every element touched at
/// that position to exactly one partition chunk.
bool is_pure_var(const AffineForm& f, const std::string& var) {
  return f.affine && f.constant == 0 && f.symbol.empty() &&
         f.coeffs.size() == 1 && f.coeffs.begin()->first == var &&
         f.coeffs.begin()->second == 1;
}

/// Bitmask of subscript positions where *every* access of `grid` in the
/// step carries the partition variable purely. A whole-grid access (or a
/// scalar) yields 0 — no position pins it to a chunk.
std::uint64_t alignment_mask(const StepAccesses& accesses, GridId grid,
                             const std::string& var) {
  std::uint64_t common = ~std::uint64_t{0};
  bool saw = false;
  for (const ArrayAccess& a : accesses.accesses) {
    if (a.grid != grid) continue;
    saw = true;
    std::uint64_t mask = 0;
    if (!a.whole_grid) {
      for (std::size_t s = 0; s < a.subs.size() && s < 64; ++s) {
        if (is_pure_var(a.subs[s], var)) mask |= std::uint64_t{1} << s;
      }
    }
    common &= mask;
  }
  return saw ? common : 0;
}

/// Grids read by any loop bound of `step`. Region dispatch evaluates all
/// member bounds on the host before forking, so a later step's bounds
/// must not depend on storage an earlier member writes.
std::set<GridId> bound_reads(const Step& step) {
  std::set<GridId> ids;
  const auto scan = [&](const ExprPtr& e) {
    if (!e) return;
    visit_exprs(e, [&](const Expr& node) {
      if (node.kind == Expr::Kind::kGridRead) ids.insert(node.grid);
    });
  };
  for (const LoopSpec& loop : step.loops) {
    scan(loop.begin);
    scan(loop.end);
    scan(loop.stride);
  }
  return ids;
}

struct StepSummary {
  PartitionSig sig;
  StepAccesses accesses;
  std::set<GridId> writes;     ///< written grids, reduction targets included
  std::set<GridId> touched;    ///< every accessed grid
  std::set<GridId> bound_grids;
};

StepSummary summarize(const Program& program, const Step& step,
                      const StepVerdict& v, const EffectsMap& effects) {
  StepSummary s;
  s.sig = partition_signature(step, v);
  s.accesses = collect_step_accesses(program, step, effects);
  for (const ArrayAccess& a : s.accesses.accesses) {
    s.touched.insert(a.grid);
    if (a.is_write) s.writes.insert(a.grid);
  }
  for (const ReductionClause& r : v.reductions) s.writes.insert(r.grid);
  s.bound_grids = bound_reads(step);
  return s;
}

bool fusable(const Step& sa, const StepVerdict& va, const StepSummary& a,
             const Step& sb, const StepVerdict& vb, const StepSummary& b) {
  if (!a.sig.valid || !b.sig.valid) return false;
  if (a.sig.bounds != b.sig.bounds) return false;
  // An early RETURN inside a fused block would skip the remaining member
  // steps for one rank only — never fuse around control exits.
  if (a.accesses.has_return || b.accesses.has_return) return false;
  // Later bounds are host-evaluated before the earlier step runs.
  for (const GridId g : b.bound_grids) {
    if (a.writes.count(g) != 0) return false;
  }
  const std::string& var_a = sa.loops[a.sig.loop_index].index_var;
  const std::string& var_b = sb.loops[b.sig.loop_index].index_var;
  for (const GridId g : a.touched) {
    if (b.touched.count(g) == 0) continue;
    const bool written = a.writes.count(g) != 0 || b.writes.count(g) != 0;
    if (!written) continue;  // shared read-only data never conflicts
    // Reduction scratch combines after the region's join; private and
    // firstprivate copies snapshot shared storage at block entry. Either
    // one interleaving with the other step's writes reorders against
    // serial execution, so all three split the region.
    if (is_reduction_target(va, g) || is_reduction_target(vb, g)) {
      return false;
    }
    if (id_in(va.private_grids, g) || id_in(vb.private_grids, g) ||
        id_in(va.firstprivate_grids, g) || id_in(vb.firstprivate_grids, g)) {
      return false;
    }
    // Both steps must pin the location to the partition chunk at one
    // common subscript position: rank r then touches the same element
    // set in both steps, preserving per-element serial order.
    if ((alignment_mask(a.accesses, g, var_a) &
         alignment_mask(b.accesses, g, var_b)) == 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

PartitionSig partition_signature(const Step& step, const StepVerdict& v) {
  PartitionSig sig;
  if (!v.has_loop || step.loops.empty()) return sig;
  const std::size_t depth = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(v.collapse, 1)), step.loops.size());
  if (v.exact_partition_dim >= 0) {
    if (static_cast<std::size_t>(v.exact_partition_dim) >= depth) return sig;
    sig.loop_index = static_cast<std::size_t>(v.exact_partition_dim);
  } else if (depth == 1) {
    sig.loop_index = 0;
  } else {
    return sig;  // flat multi-dimensional dispatch: no single loop
  }
  const LoopSpec& loop = step.loops[sig.loop_index];
  sig.bounds = bound_text(loop.begin) + ";" + bound_text(loop.end) + ";" +
               bound_text(loop.stride);
  sig.valid = true;
  return sig;
}

bool steps_fusable(const Program& program, const Function& fn,
                   std::size_t earlier, std::size_t later,
                   const std::vector<StepVerdict>& verdicts,
                   const EffectsMap& effects) {
  if (earlier >= later || later >= fn.steps.size() ||
      later >= verdicts.size()) {
    return false;
  }
  const Step& sa = fn.steps[earlier];
  const Step& sb = fn.steps[later];
  const StepVerdict& va = verdicts[earlier];
  const StepVerdict& vb = verdicts[later];
  return fusable(sa, va, summarize(program, sa, va, effects), sb, vb,
                 summarize(program, sb, vb, effects));
}

std::vector<FusedRegion> plan_fused_regions(
    const Program& program, const Function& fn,
    const std::vector<StepVerdict>& verdicts,
    const std::vector<bool>& ranged, const EffectsMap& effects) {
  std::vector<FusedRegion> out;
  std::map<std::size_t, StepSummary> cache;
  const auto summary = [&](std::size_t s) -> const StepSummary& {
    auto it = cache.find(s);
    if (it == cache.end()) {
      it = cache
               .emplace(s, summarize(program, fn.steps[s], verdicts[s],
                                     effects))
               .first;
    }
    return it->second;
  };
  const auto is_ranged = [&](std::size_t s) {
    return s < ranged.size() && ranged[s] && s < verdicts.size();
  };
  std::size_t i = 0;
  while (i < fn.steps.size()) {
    FusedRegion region{i, 1};
    if (is_ranged(i)) {
      std::size_t next = i + 1;
      while (next < fn.steps.size() && is_ranged(next)) {
        bool ok = true;
        for (std::size_t j = region.first_step; j < next && ok; ++j) {
          ok = fusable(fn.steps[j], verdicts[j], summary(j), fn.steps[next],
                       verdicts[next], summary(next));
        }
        if (!ok) break;
        ++region.step_count;
        ++next;
      }
    }
    out.push_back(region);
    i += region.step_count;
  }
  return out;
}

}  // namespace glaf
