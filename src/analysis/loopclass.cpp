#include "analysis/loopclass.hpp"

#include <set>

namespace glaf {

const char* to_string(LoopClass c) {
  switch (c) {
    case LoopClass::kStraightLine: return "straight-line";
    case LoopClass::kInitZero: return "init-zero";
    case LoopClass::kBroadcast: return "broadcast";
    case LoopClass::kSimpleSingle: return "simple-single";
    case LoopClass::kSimpleDouble: return "simple-double";
    case LoopClass::kComplex: return "complex";
  }
  return "?";
}

namespace {

bool is_literal_zero(const Expr& e) {
  if (e.kind != Expr::Kind::kLiteral) return false;
  return value_as_double(e.literal) == 0.0;
}

bool contains_loop_index(const Expr& e, const std::set<std::string>& vars) {
  if (e.kind == Expr::Kind::kIndex) return vars.count(e.index_name) != 0;
  for (const ExprPtr& a : e.args) {
    if (contains_loop_index(*a, vars)) return true;
  }
  return false;
}

}  // namespace

LoopClass classify_loop(const Program& program, const Step& step) {
  if (step.loops.empty()) return LoopClass::kStraightLine;
  if (step.loops.size() > 2) return LoopClass::kComplex;

  std::set<std::string> vars;
  for (const LoopSpec& l : step.loops) vars.insert(l.index_var);

  // Any non-assignment statement (if, call, return) makes the loop complex;
  // so does a user-function call inside an expression.
  bool only_assigns = true;
  bool any_user_call = false;
  visit_stmts(step.body, [&](const Stmt& s) {
    if (s.kind != Stmt::Kind::kAssign) only_assigns = false;
    const auto scan = [&](const ExprPtr& e) {
      if (!e) return;
      visit_exprs(e, [&](const Expr& node) {
        if (node.kind == Expr::Kind::kCall &&
            program.find_function(node.callee) != nullptr) {
          any_user_call = true;
        }
      });
    };
    if (s.kind == Stmt::Kind::kAssign) {
      scan(s.rhs);
      for (const ExprPtr& sub : s.lhs.subscripts) scan(sub);
    }
  });
  if (!only_assigns || any_user_call) return LoopClass::kComplex;
  if (step.body.size() > 4) return LoopClass::kComplex;

  bool all_zero = true;
  for (const Stmt& s : step.body) {
    if (!is_literal_zero(*s.rhs)) all_zero = false;
  }
  if (all_zero && !step.body.empty()) return LoopClass::kInitZero;

  if (step.body.size() == 1 &&
      !contains_loop_index(*step.body[0].rhs, vars)) {
    return LoopClass::kBroadcast;
  }

  return step.loops.size() == 1 ? LoopClass::kSimpleSingle
                                : LoopClass::kSimpleDouble;
}

}  // namespace glaf
