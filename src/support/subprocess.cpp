#include "support/subprocess.hpp"

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace glaf {

RunResult run_command(const std::string& command) {
  RunResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;  // started stays false
  result.started = true;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) result.output += buf;
  const int status = pclose(pipe);
  if (status == -1) {
    result.exit_code = -1;
  } else if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.exit_code = 128 + WTERMSIG(status);
  } else {
    result.exit_code = -1;
  }
  return result;
}

namespace {

struct CompilerProbe {
  bool available = false;
  std::string identity;
};

const CompilerProbe& probe_compiler(const std::string& cc) {
  static std::map<std::string, CompilerProbe> cache;
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock(mutex);
  const auto it = cache.find(cc);
  if (it != cache.end()) return it->second;
  CompilerProbe probe;
  // Reject commands with shell metacharacters outright: the probe (and
  // every later compile) interpolates `cc` into a shell line.
  if (cc.find_first_of(";|&$`<>(){}!\n\"'") == std::string::npos &&
      !cc.empty()) {
    const RunResult r = run_command(cc + " --version");
    probe.available = r.ok();
    if (probe.available) {
      const std::size_t eol = r.output.find('\n');
      probe.identity = r.output.substr(0, eol);
    }
  }
  return cache.emplace(cc, std::move(probe)).first->second;
}

}  // namespace

bool cc_available(const std::string& cc) { return probe_compiler(cc).available; }

const std::string& compiler_identity(const std::string& cc) {
  return probe_compiler(cc).identity;
}

std::string default_cc(const std::string& preferred) {
  if (!preferred.empty()) return preferred;
  if (const char* env = std::getenv("GLAF_CC");
      env != nullptr && *env != '\0') {
    return env;
  }
  return "cc";
}

}  // namespace glaf
