#include "support/subprocess.hpp"

#include <sys/utsname.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace glaf {

RunResult run_command(const std::string& command) {
  RunResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;  // started stays false
  result.started = true;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) result.output += buf;
  const int status = pclose(pipe);
  if (status == -1) {
    result.exit_code = -1;
  } else if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.exit_code = 128 + WTERMSIG(status);
  } else {
    result.exit_code = -1;
  }
  return result;
}

namespace {

struct CompilerProbe {
  bool available = false;
  std::string identity;
};

const CompilerProbe& probe_compiler(const std::string& cc) {
  static std::map<std::string, CompilerProbe> cache;
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock(mutex);
  const auto it = cache.find(cc);
  if (it != cache.end()) return it->second;
  CompilerProbe probe;
  // Reject commands with shell metacharacters outright: the probe (and
  // every later compile) interpolates `cc` into a shell line.
  if (cc.find_first_of(";|&$`<>(){}!\n\"'") == std::string::npos &&
      !cc.empty()) {
    const RunResult r = run_command(cc + " --version");
    probe.available = r.ok();
    if (probe.available) {
      const std::size_t eol = r.output.find('\n');
      probe.identity = r.output.substr(0, eol);
    }
  }
  return cache.emplace(cc, std::move(probe)).first->second;
}

}  // namespace

bool cc_available(const std::string& cc) { return probe_compiler(cc).available; }

const std::string& compiler_identity(const std::string& cc) {
  return probe_compiler(cc).identity;
}

const std::string& host_arch_fingerprint() {
  static const std::string fingerprint = [] {
    std::string arch = "unknown";
    utsname u{};
    if (uname(&u) == 0) arch = u.machine;
    // First "model name" line of /proc/cpuinfo (absent on some
    // architectures; the uname machine field alone still keys those).
    std::string model;
    if (std::FILE* f = std::fopen("/proc/cpuinfo", "r")) {
      char buf[512];
      while (std::fgets(buf, sizeof(buf), f) != nullptr) {
        std::string line(buf);
        if (line.rfind("model name", 0) != 0) continue;
        const std::size_t colon = line.find(':');
        if (colon != std::string::npos) {
          model = line.substr(colon + 1);
          // Trim whitespace and the trailing newline.
          const std::size_t lo = model.find_first_not_of(" \t\n");
          const std::size_t hi = model.find_last_not_of(" \t\n");
          model = lo == std::string::npos
                      ? std::string()
                      : model.substr(lo, hi - lo + 1);
        }
        break;
      }
      std::fclose(f);
    }
    return model.empty() ? arch : arch + ":" + model;
  }();
  return fingerprint;
}

std::string default_cc(const std::string& preferred) {
  if (!preferred.empty()) return preferred;
  if (const char* env = std::getenv("GLAF_CC");
      env != nullptr && *env != '\0') {
    return env;
  }
  return "cc";
}

}  // namespace glaf
