#pragma once
// Lightweight status / error-reporting vocabulary used across GLAF++.
//
// The framework's public entry points (builder finalization, validation,
// code generation, interpretation) report recoverable failures through
// Status / StatusOr rather than exceptions, so that callers embedding the
// library into larger drivers can surface diagnostics without unwinding.

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace glaf {

/// Broad classification of a failure; the message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something structurally wrong
  kNotFound,          ///< name/id lookup failed
  kFailedPrecondition,///< program state does not allow the operation
  kUnimplemented,     ///< feature intentionally unsupported
  kInternal,          ///< invariant violation inside the framework
  kDeadlineExceeded,  ///< the request's deadline elapsed before completion
  kBusy,              ///< service overloaded or draining; retry later
};

/// The highest valid StatusCode — callers decoding codes from the wire
/// clamp against this instead of casting arbitrary integers.
inline constexpr StatusCode kMaxStatusCode = StatusCode::kBusy;

/// Human-readable name for a StatusCode (stable, for logs and tests).
const char* to_string(StatusCode code);

/// A success-or-error result with a message. Cheap to copy on success.
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  [[nodiscard]] std::string to_string() const;

  explicit operator bool() const { return is_ok(); }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status invalid_argument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status not_found(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status failed_precondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status unimplemented(std::string msg) {
  return {StatusCode::kUnimplemented, std::move(msg)};
}
inline Status internal_error(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}
inline Status deadline_exceeded(std::string msg) {
  return {StatusCode::kDeadlineExceeded, std::move(msg)};
}
inline Status busy(std::string msg) {
  return {StatusCode::kBusy, std::move(msg)};
}

/// Either a value or an error Status. Accessing value() on error asserts.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {   // NOLINT(google-explicit-constructor)
    assert(!status_.is_ok() && "StatusOr(Status) requires an error status");
  }

  [[nodiscard]] bool is_ok() const { return status_.is_ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(is_ok());
    return std::move(*value_);
  }

  explicit operator bool() const { return is_ok(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace glaf
